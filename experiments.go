package palermo

import (
	"fmt"
	"sort"
	"strings"

	"palermo/internal/core"
	"palermo/internal/ctrl"
	"palermo/internal/dram"
	"palermo/internal/exp"
	"palermo/internal/hwmodel"
	"palermo/internal/oram"
	"palermo/internal/rng"
	"palermo/internal/security"
	"palermo/internal/sim"
	"palermo/internal/stats"
	"palermo/internal/workload"
)

// This file regenerates every table and figure of the paper's evaluation
// (§III and §VIII). Each Fig*/Table* function declares its simulation grid
// (protocol × workload × sweep-point), submits the cells to the exp worker
// pool (sized by Options.Workers), and aggregates the collected results in
// grid order — so a parallel sweep produces bit-identical output to a
// serial one. Each function returns a result struct whose String method
// renders the figure as a text table; EXPERIMENTS.md records
// paper-vs-measured values.

// runner returns the sweep runner configured by Options.Workers.
func (o Options) runner() exp.Runner { return exp.Runner{Workers: o.Workers} }

// Fig3Workloads are the workloads the paper uses for the RingORAM analysis.
var Fig3Workloads = []string{"mcf", "pr", "llm", "rand"}

// Fig9Workloads are the workloads of the security/latency study.
var Fig9Workloads = []string{"mcf", "pr", "llm", "redis"}

// Fig3Result reproduces Fig 3: RingORAM bandwidth utilization per workload
// and the memory-cycle breakdown (dram vs ORAM-sync per hierarchy level).
type Fig3Result struct {
	Workloads []string
	Bandwidth []float64 // fraction of peak per workload
	// Breakdown fractions over total cycles, paper labels:
	// Pos2-dram, Pos2-sync, Pos1-dram, Pos1-sync, data-dram, data-sync.
	DramFrac []float64 // [level] aggregated across workloads
	SyncFrac []float64
	RowHit   float64
	QueueOcc float64
}

// Fig3 runs the analysis: one RingORAM cell per workload.
func Fig3(o Options) (Fig3Result, error) {
	res := Fig3Result{Workloads: Fig3Workloads, DramFrac: make([]float64, 3), SyncFrac: make([]float64, 3)}
	runs, err := exp.Map(o.runner(), len(Fig3Workloads), func(i int) (RunResult, error) {
		return Run(ProtoRingORAM, Fig3Workloads[i], o)
	})
	if err != nil {
		return res, err
	}
	var totalCycles float64
	var hit, qocc stats.Mean
	for _, r := range runs {
		res.Bandwidth = append(res.Bandwidth, r.Mem.BandwidthUtil)
		hit.Add(r.Mem.RowHitRate)
		qocc.Add(r.Mem.AvgQueueOcc * 4) // per-channel -> all channels
		for l, lc := range r.Levels {
			res.DramFrac[l] += float64(lc.Dram)
			res.SyncFrac[l] += float64(lc.Sync)
			totalCycles += float64(lc.Dram + lc.Sync)
		}
	}
	for l := 0; l < 3; l++ {
		res.DramFrac[l] /= totalCycles
		res.SyncFrac[l] /= totalCycles
	}
	res.RowHit = hit.Value()
	res.QueueOcc = qocc.Value()
	return res, nil
}

// SyncTotal returns the aggregate ORAM-sync share (paper: 72.4%).
func (r Fig3Result) SyncTotal() float64 {
	var s float64
	for _, v := range r.SyncFrac {
		s += v
	}
	return s
}

// String renders the figure.
func (r Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3a — RingORAM bandwidth utilization (paper: <30%%, homogeneous)\n")
	for i, wl := range r.Workloads {
		fmt.Fprintf(&b, "  %-6s %5.1f%%\n", wl, r.Bandwidth[i]*100)
	}
	fmt.Fprintf(&b, "Fig 3b — memory cycle breakdown (paper: sync 72.4%% total)\n")
	labels := []string{"data", "Pos1", "Pos2"}
	for l := 2; l >= 0; l-- {
		fmt.Fprintf(&b, "  %s-dram %5.1f%%  %s-sync %5.1f%%\n",
			labels[l], r.DramFrac[l]*100, labels[l], r.SyncFrac[l]*100)
	}
	fmt.Fprintf(&b, "  total sync %.1f%%, row-hit %.1f%% (paper 48.2%%), queue occ %.1f (paper 21.1)\n",
		r.SyncTotal()*100, r.RowHit*100, r.QueueOcc)
	return b.String()
}

// Fig4Result reproduces Fig 4: PrORAM and LAORAM (fat tree) on stm across
// prefetch lengths — normalized speedup and dummy-request ratio.
type Fig4Result struct {
	Lengths    []int
	PrSpeedup  []float64 // vs pf=1, plain PrORAM
	PrDummy    []float64
	FatSpeedup []float64 // vs pf=1, with fat tree (LAORAM)
	FatDummy   []float64
}

// Fig4 runs the sweep: the grid is {plain, fat-tree} × prefetch length.
func Fig4(o Options) (Fig4Result, error) {
	res := Fig4Result{Lengths: []int{1, 2, 4, 8, 16}}
	fats := []bool{false, true}
	runs, err := exp.Map2(o.runner(), len(fats), len(res.Lengths), func(f, p int) (RunResult, error) {
		oo := o
		oo.Prefetch = res.Lengths[p]
		return runPrORAM(oo, "stm", fats[f])
	})
	if err != nil {
		return res, err
	}
	var prBase, fatBase float64
	for f, fat := range fats {
		for p, pf := range res.Lengths {
			thr := runs[f][p].Throughput()
			dummy := runs[f][p].DummyFraction()
			if fat {
				if pf == 1 {
					fatBase = thr
				}
				res.FatSpeedup = append(res.FatSpeedup, thr/fatBase)
				res.FatDummy = append(res.FatDummy, dummy)
			} else {
				if pf == 1 {
					prBase = thr
				}
				res.PrSpeedup = append(res.PrSpeedup, thr/prBase)
				res.PrDummy = append(res.PrDummy, dummy)
			}
		}
	}
	return res, nil
}

// String renders the figure.
func (r Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4 — PrORAM/LAORAM on stm vs prefetch length (paper: dummy ratio caps scaling, LAORAM <= 3.2x)\n")
	fmt.Fprintf(&b, "  %-6s %14s %12s %14s %12s\n", "pf", "PrORAM speedup", "dummy%", "LAORAM speedup", "dummy%")
	for i, pf := range r.Lengths {
		fmt.Fprintf(&b, "  %-6d %13.2fx %11.1f%% %13.2fx %11.1f%%\n",
			pf, r.PrSpeedup[i], r.PrDummy[i]*100, r.FatSpeedup[i], r.FatDummy[i]*100)
	}
	return b.String()
}

// Fig9Row is one workload's security measurements (Fig 9 + its table).
type Fig9Row struct {
	Workload   string
	RowHit     float64
	BankConf   float64
	MutualInfo float64
	P1, P2     float64
	LatMedian  float64 // ticks
	LatP10     float64
	LatP90     float64
	LeafChi2P  float64 // uniformity p-value of the exposed leaf stream
	LeafCorr   float64
}

// Fig9Result reproduces Fig 9.
type Fig9Result struct{ Rows []Fig9Row }

// Fig9 runs the security analysis on Palermo, one cell per workload (the
// security analyses run inside the cell). The mutual-information estimate
// needs enough stash-resident observations to converge (the paper uses up
// to 50M requests), so the request count is floored at 2500.
func Fig9(o Options) (Fig9Result, error) {
	o.KeepLatency = true
	if o.Requests < 2500 {
		o.Requests = 2500
	}
	var res Fig9Result
	rows, err := exp.Map(o.runner(), len(Fig9Workloads), func(i int) (Fig9Row, error) {
		wl := Fig9Workloads[i]
		r, err := Run(ProtoPalermo, wl, o)
		if err != nil {
			return Fig9Row{}, err
		}
		tim, err := security.AnalyzeTiming(r.RespLat.Samples(), r.FromStash)
		if err != nil {
			return Fig9Row{}, err
		}
		leaf, err := security.AnalyzeLeaves(r.Leaves, r.NumLeaves, 64)
		if err != nil {
			return Fig9Row{}, err
		}
		return Fig9Row{
			Workload:   wl,
			RowHit:     r.Mem.RowHitRate,
			BankConf:   r.Mem.RowConflictRate,
			MutualInfo: tim.MutualInfo,
			P1:         tim.P1,
			P2:         tim.P2,
			LatMedian:  r.RespLat.Median(),
			LatP10:     r.RespLat.Percentile(10),
			LatP90:     r.RespLat.Percentile(90),
			LeafChi2P:  leaf.PValue,
			LeafCorr:   leaf.SerialCorr,
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// String renders the figure's table.
func (r Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9 — attacker observations on Palermo (paper: row-hit ~59.5%%, conflict ~37.9%%, MI ~0)\n")
	fmt.Fprintf(&b, "  %-6s %8s %9s %12s %8s %8s %16s %9s\n",
		"wl", "rowhit%", "conflict%", "mutual-info", "p1", "p2", "latency p10/p90", "leaf-p")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-6s %7.1f%% %8.1f%% %12.2g %8.3f %8.3f %7.0f/%-8.0f %9.3f\n",
			row.Workload, row.RowHit*100, row.BankConf*100, row.MutualInfo,
			row.P1, row.P2, row.LatP10, row.LatP90, row.LeafChi2P)
	}
	return b.String()
}

// Fig10Result reproduces Fig 10: end-to-end speedup of every design over
// PathORAM on every Table II workload, plus the geometric mean.
type Fig10Result struct {
	Workloads []string
	Protocols []Protocol
	// Speedup[p][w] is protocol p's throughput over PathORAM's on workload w.
	Speedup [][]float64
	GMean   []float64
	// BestPF[w] is the swept prefetch length used by PrORAM and Palermo+PF.
	BestPF []int
	// AbsMissesPerSec[p] averages the absolute service rate (paper §VIII-A:
	// Palermo 3.8E6 vs RingORAM 1.7E6).
	AbsMissesPerSec []float64
}

// fig10PFSweep is the per-workload prefetch sweep of the paper's
// methodology (§VIII-A).
var fig10PFSweep = []int{1, 2, 4, 8}

// Fig10 runs the full comparison in two parallel phases. Phase 1 submits,
// per workload, the PathORAM baseline and the PrORAM prefetch sweep; the
// best prefetch length is then selected in sweep order (ties to the
// shorter length, exactly as a serial scan would). Phase 2 submits the
// remaining protocol × workload cells, reusing the phase-1 results for
// PathORAM and PrORAM and giving Palermo+PF the swept length, matching the
// paper's methodology.
func Fig10(o Options) (Fig10Result, error) {
	res := Fig10Result{Workloads: workload.Names(), Protocols: Protocols()}
	res.Speedup = make([][]float64, len(res.Protocols))
	res.AbsMissesPerSec = make([]float64, len(res.Protocols))
	for i := range res.Speedup {
		res.Speedup[i] = make([]float64, len(res.Workloads))
	}

	// Phase 1: per workload, col 0 is the PathORAM baseline and cols 1..
	// are the PrORAM sweep points.
	sweep, err := exp.Map2(o.runner(), len(res.Workloads), 1+len(fig10PFSweep),
		func(w, c int) (RunResult, error) {
			if c == 0 {
				return Run(ProtoPathORAM, res.Workloads[w], o)
			}
			oo := o
			oo.Prefetch = fig10PFSweep[c-1]
			return Run(ProtoPrORAM, res.Workloads[w], oo)
		})
	if err != nil {
		return res, err
	}
	for w := range res.Workloads {
		bestPF, bestThr := 1, 0.0
		for i, pf := range fig10PFSweep {
			if thr := sweep[w][1+i].Throughput(); thr > bestThr {
				bestThr, bestPF = thr, pf
			}
		}
		res.BestPF = append(res.BestPF, bestPF)
	}

	// Phase 2: the remaining protocol grid. PathORAM and PrORAM reuse
	// their phase-1 cells (identical configuration => identical result).
	grid, err := exp.Map2(o.runner(), len(res.Workloads), len(res.Protocols),
		func(w, p int) (RunResult, error) {
			proto := res.Protocols[p]
			switch proto {
			case ProtoPathORAM:
				return sweep[w][0], nil
			case ProtoPrORAM:
				for i, pf := range fig10PFSweep {
					if pf == res.BestPF[w] {
						return sweep[w][1+i], nil
					}
				}
			}
			oo := o
			if proto == ProtoPalermoPF {
				oo.Prefetch = res.BestPF[w]
			}
			return Run(proto, res.Workloads[w], oo)
		})
	if err != nil {
		return res, err
	}
	for w := range res.Workloads {
		base := grid[w][0].Throughput()
		for p := range res.Protocols {
			res.Speedup[p][w] = grid[w][p].Throughput() / base
			res.AbsMissesPerSec[p] += grid[w][p].MissesPerSecond() / float64(len(res.Workloads))
		}
	}
	for p := range res.Protocols {
		res.GMean = append(res.GMean, stats.GeoMean(res.Speedup[p]))
	}
	return res, nil
}

// String renders the figure.
func (r Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10 — end-to-end speedup over PathORAM (paper gmeans: Ring 1.1, Page 1.2, PrORAM 1.7, IR 1.1, SW 1.2, Palermo 2.4, +PF 3.1)\n")
	fmt.Fprintf(&b, "  %-11s", "protocol")
	for _, wl := range r.Workloads {
		fmt.Fprintf(&b, "%7s", wl)
	}
	fmt.Fprintf(&b, "%7s %12s\n", "gmean", "Mmiss/s")
	for p, proto := range r.Protocols {
		fmt.Fprintf(&b, "  %-11s", proto)
		for w := range r.Workloads {
			fmt.Fprintf(&b, "%6.2fx", r.Speedup[p][w])
		}
		fmt.Fprintf(&b, "%6.2fx %12.2f\n", r.GMean[p], r.AbsMissesPerSec[p]/1e6)
	}
	fmt.Fprintf(&b, "  swept prefetch per workload: %v\n", r.BestPF)
	return b.String()
}

// Fig11Result reproduces Fig 11: bandwidth utilization and outstanding
// DRAM requests, RingORAM vs Palermo (no prefetch).
type Fig11Result struct {
	Workloads []string
	RingBW    []float64
	PalBW     []float64
	RingOut   []float64
	PalOut    []float64
}

// Fig11 runs the comparison: the grid is workload × {RingORAM, Palermo}.
func Fig11(o Options) (Fig11Result, error) {
	res := Fig11Result{Workloads: Fig9Workloads}
	protos := []Protocol{ProtoRingORAM, ProtoPalermo}
	runs, err := exp.Map2(o.runner(), len(Fig9Workloads), len(protos), func(w, p int) (RunResult, error) {
		return Run(protos[p], Fig9Workloads[w], o)
	})
	if err != nil {
		return res, err
	}
	for w := range Fig9Workloads {
		ring, pal := runs[w][0], runs[w][1]
		res.RingBW = append(res.RingBW, ring.Mem.BandwidthUtil)
		res.PalBW = append(res.PalBW, pal.Mem.BandwidthUtil)
		res.RingOut = append(res.RingOut, ring.Mem.AvgQueueOcc*4)
		res.PalOut = append(res.PalOut, pal.Mem.AvgQueueOcc*4)
	}
	return res, nil
}

// Ratios returns the average outstanding and bandwidth improvement factors
// (paper: 2.8x outstanding, 2.2x bandwidth).
func (r Fig11Result) Ratios() (outRatio, bwRatio float64) {
	var or, br stats.Mean
	for i := range r.Workloads {
		or.Add(r.PalOut[i] / r.RingOut[i])
		br.Add(r.PalBW[i] / r.RingBW[i])
	}
	return or.Value(), br.Value()
}

// String renders the figure.
func (r Fig11Result) String() string {
	var b strings.Builder
	outR, bwR := r.Ratios()
	fmt.Fprintf(&b, "Fig 11 — bandwidth + outstanding DRAM requests, Ring vs Palermo (paper: 2.8x outstanding -> 2.2x bandwidth)\n")
	fmt.Fprintf(&b, "  %-6s %10s %10s %12s %12s\n", "wl", "Ring BW", "Palermo BW", "Ring outst.", "Pal outst.")
	for i, wl := range r.Workloads {
		fmt.Fprintf(&b, "  %-6s %9.1f%% %9.1f%% %12.1f %12.1f\n",
			wl, r.RingBW[i]*100, r.PalBW[i]*100, r.RingOut[i], r.PalOut[i])
	}
	fmt.Fprintf(&b, "  ratios: outstanding %.1fx, bandwidth %.1fx\n", outR, bwR)
	return b.String()
}

// Fig12Result reproduces Fig 12: Palermo stash occupancy over execution.
type Fig12Result struct {
	Workloads []string
	Samples   [][]int // per workload: data-level stash size per 1% progress
	Max       []int
}

// Fig12 runs the stash study, one Palermo cell per workload.
func Fig12(o Options) (Fig12Result, error) {
	o.TrackStash = true
	var res Fig12Result
	runs, err := exp.Map(o.runner(), len(Fig9Workloads), func(i int) (RunResult, error) {
		return Run(ProtoPalermo, Fig9Workloads[i], o)
	})
	if err != nil {
		return res, err
	}
	for i, r := range runs {
		res.Workloads = append(res.Workloads, Fig9Workloads[i])
		res.Samples = append(res.Samples, r.StashTrace[0])
		res.Max = append(res.Max, r.StashMax[0])
	}
	return res, nil
}

// String renders the figure.
func (r Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 12 — Palermo stash occupancy (paper: bounded, max 228-237 < 256)\n")
	for i, wl := range r.Workloads {
		fmt.Fprintf(&b, "  %-6s max=%d samples(head)=%v\n", wl, r.Max[i], head(r.Samples[i], 8))
	}
	return b.String()
}

func head(s []int, n int) []int {
	if len(s) < n {
		return s
	}
	return s[:n]
}

// Fig13Result reproduces Fig 13: Palermo prefetch-length sensitivity.
type Fig13Result struct {
	Workloads []string
	Lengths   []int
	// Speedup[w][i] is Palermo at Lengths[i] vs PathORAM on workload w.
	Speedup [][]float64
}

// Fig13 runs the sweep: per workload, col 0 is the PathORAM baseline and
// cols 1.. are the Palermo+PF prefetch points.
func Fig13(o Options) (Fig13Result, error) {
	res := Fig13Result{Workloads: Fig9Workloads, Lengths: []int{1, 2, 4, 8}}
	runs, err := exp.Map2(o.runner(), len(res.Workloads), 1+len(res.Lengths),
		func(w, c int) (RunResult, error) {
			if c == 0 {
				return Run(ProtoPathORAM, res.Workloads[w], o)
			}
			oo := o
			oo.Prefetch = res.Lengths[c-1]
			return Run(ProtoPalermoPF, res.Workloads[w], oo)
		})
	if err != nil {
		return res, err
	}
	for w := range res.Workloads {
		base := runs[w][0].Throughput()
		var row []float64
		for i := range res.Lengths {
			row = append(row, runs[w][1+i].Throughput()/base)
		}
		res.Speedup = append(res.Speedup, row)
	}
	return res, nil
}

// String renders the figure.
func (r Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 13 — Palermo prefetch sensitivity vs PathORAM (paper: moderate for mcf/pr/redis; llm rises with row length)\n")
	fmt.Fprintf(&b, "  %-6s", "wl")
	for _, pf := range r.Lengths {
		fmt.Fprintf(&b, "  pf=%-4d", pf)
	}
	fmt.Fprintln(&b)
	for i, wl := range r.Workloads {
		fmt.Fprintf(&b, "  %-6s", wl)
		for _, v := range r.Speedup[i] {
			fmt.Fprintf(&b, " %6.2fx", v)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// ZSASweep lists the valid (Z,S,A) points of Fig 14a, from the RingORAM
// parameterization.
var ZSASweep = [][3]int{{4, 5, 3}, {8, 12, 8}, {16, 27, 20}, {32, 56, 42}}

// Fig14aResult reproduces Fig 14a: Palermo speedup vs protocol parameters.
type Fig14aResult struct {
	ZSA     [][3]int
	Speedup []float64 // vs the (4,5,3) point
	Stash   []int
}

// Fig14a runs the sweep on rand, one cell per (Z,S,A) point.
func Fig14a(o Options) (Fig14aResult, error) {
	res := Fig14aResult{ZSA: ZSASweep}
	runs, err := exp.Map(o.runner(), len(ZSASweep), func(i int) (RunResult, error) {
		oo := o
		oo.Z, oo.S, oo.A = ZSASweep[i][0], ZSASweep[i][1], ZSASweep[i][2]
		return Run(ProtoPalermo, "rand", oo)
	})
	if err != nil {
		return res, err
	}
	base := runs[0].Throughput()
	for _, r := range runs {
		res.Speedup = append(res.Speedup, r.Throughput()/base)
		res.Stash = append(res.Stash, r.StashMax[0])
	}
	return res, nil
}

// String renders the figure.
func (r Fig14aResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 14a — Palermo (Z,S,A) sweep on rand (paper: up to 1.8x over (4,5,3); adopts (16,27,20))\n")
	for i, zsa := range r.ZSA {
		fmt.Fprintf(&b, "  Z=%-3d S=%-3d A=%-3d  %5.2fx  stash max %d\n",
			zsa[0], zsa[1], zsa[2], r.Speedup[i], r.Stash[i])
	}
	return b.String()
}

// Fig14bResult reproduces Fig 14b: Palermo speedup vs PE column count.
type Fig14bResult struct {
	Columns []int
	Speedup []float64 // vs 1 column
	BW      []float64
}

// Fig14b runs the sweep on rand, one cell per column count.
func Fig14b(o Options) (Fig14bResult, error) {
	res := Fig14bResult{Columns: []int{1, 2, 4, 8, 16, 32}}
	runs, err := exp.Map(o.runner(), len(res.Columns), func(i int) (RunResult, error) {
		oo := o
		oo.Columns = res.Columns[i]
		return Run(ProtoPalermo, "rand", oo)
	})
	if err != nil {
		return res, err
	}
	base := runs[0].Throughput()
	for _, r := range runs {
		res.Speedup = append(res.Speedup, r.Throughput()/base)
		res.BW = append(res.BW, r.Mem.BandwidthUtil)
	}
	return res, nil
}

// String renders the figure.
func (r Fig14bResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 14b — Palermo PE-column sweep on rand (paper: saturates near 3x8 PEs at ~2.2x over 3x1)\n")
	for i, c := range r.Columns {
		fmt.Fprintf(&b, "  3x%-3d %5.2fx  BW %5.1f%%\n", c, r.Speedup[i], r.BW[i]*100)
	}
	return b.String()
}

// Fig15 reproduces the area/power table via the analytical model.
func Fig15(columns int) hwmodel.Model { return hwmodel.New(columns) }

// TableII renders the workload registry.
func TableII() string {
	desc := map[string]string{
		"mcf": "SPEC17 route planning", "lbm": "SPEC17 fluid dynamics",
		"pr": "PageRank on power-law graph", "motif": "temporal motif mining",
		"rm1": "DLRM memory-bound embedding gathers", "rm2": "DLRM balanced",
		"llm": "GPT-2 token embedding rows", "redis": "Zipfian KV access",
		"stm": "synthetic streaming", "rand": "synthetic uniform random",
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — real-world services that demand obliviousness\n")
	for _, wl := range workload.Names() {
		fmt.Fprintf(&b, "  %-6s %s\n", wl, desc[wl])
	}
	return b.String()
}

// TableIII renders the modeled system configuration.
func TableIII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — Palermo system configuration\n")
	rows := [][2]string{
		{"Protected memory space", "16 GB user data (2^28 cache lines)"},
		{"Hierarchy", "Data + PosMap1 + PosMap2 ORAM trees, PosMap3 on-chip"},
		{"Tree-top caches", "256 KB per level"},
		{"Stash", "bounded 256 tags per level"},
		{"Protocol parameters", "(Z,S,A) = (16,27,20), RingORAM baseline same"},
		{"PE layout", "3 rows x 8 columns at 1.6 GHz"},
		{"Outsourced DRAM", "4-channel DDR4-3200, 102.4 GB/s peak"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %s\n", r[0], r[1])
	}
	return b.String()
}

// AblationResult quantifies one design choice called out in DESIGN.md.
type AblationResult struct {
	Name     string
	Baseline float64 // throughput without the feature
	With     float64 // throughput with the feature
}

// Gain returns the feature's speedup.
func (a AblationResult) Gain() float64 {
	if a.Baseline == 0 {
		return 0
	}
	return a.With / a.Baseline
}

// String renders the ablation row.
func (a AblationResult) String() string {
	return fmt.Sprintf("ablation %-22s %.2fx", a.Name, a.Gain())
}

// ablationPair runs the {baseline, with-feature} arms of an ablation as a
// two-cell grid.
func ablationPair(o Options, name string, arm func(with bool) (float64, error)) (AblationResult, error) {
	thr, err := exp.Map(o.runner(), 2, func(i int) (float64, error) {
		return arm(i == 1)
	})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: name, Baseline: thr[0], With: thr[1]}, nil
}

// AblationHoisting measures Algorithm 2's EarlyReshuffle hoisting: the PE
// mesh running baseline-ordered RingORAM plans (reshuffle after the read
// path) against the Palermo ordering (reshuffle hoisted before it). The
// hoisting is what releases the west→east dependency early (§IV-B).
func AblationHoisting(o Options) (AblationResult, error) {
	o.defaults()
	return ablationPair(o, "ER hoisting (Alg 2)", func(with bool) (float64, error) {
		variant := oram.VariantBaseline
		if with {
			variant = oram.VariantPalermo
		}
		cfg := oram.PalermoRingConfig()
		cfg.NLines = o.Lines
		cfg.Seed = o.Seed
		cfg.Variant = variant
		e, err := oram.NewRing(cfg)
		if err != nil {
			return 0, err
		}
		gen, err := workload.New("rand", o.Lines, o.Seed)
		if err != nil {
			return 0, err
		}
		var eng sim.Engine
		mem := dram.New(&eng, dram.DefaultConfig())
		src := ctrl.FuncSource(func() (uint64, bool) { return gen.Next() })
		res := core.Mesh{Name: "mesh", Columns: o.Columns}.Run(&eng, mem, e, src,
			ctrl.RunConfig{Requests: o.Requests, Warmup: o.Warmup})
		return res.Throughput(), nil
	})
}

// AblationTreeTop measures the tree-top cache: Palermo with the Table III
// 256 KB per-level scratchpad against no cache at all.
func AblationTreeTop(o Options) (AblationResult, error) {
	o.defaults()
	return ablationPair(o, "tree-top cache 256KB", func(with bool) (float64, error) {
		capacity := uint64(1) // 1 byte: caches nothing
		if with {
			capacity = 256 << 10
		}
		cfg := oram.PalermoRingConfig()
		cfg.NLines = o.Lines
		cfg.Seed = o.Seed
		cfg.TreeTopBytes = capacity
		e, err := oram.NewRing(cfg)
		if err != nil {
			return 0, err
		}
		gen, err := workload.New("rand", o.Lines, o.Seed)
		if err != nil {
			return 0, err
		}
		var eng sim.Engine
		mem := dram.New(&eng, dram.DefaultConfig())
		src := ctrl.FuncSource(func() (uint64, bool) { return gen.Next() })
		res := core.Mesh{Name: "mesh", Columns: o.Columns}.Run(&eng, mem, e, src,
			ctrl.RunConfig{Requests: o.Requests, Warmup: o.Warmup})
		return res.Throughput(), nil
	})
}

// AblationCommitGranularity compares Palermo-SW modelled two ways: the
// serial coarse-lock software (the paper's Palermo-SW) against a
// hypothetical fine-grained software with per-level clears and synchronous
// writes — an upper bound on what software-only synchronization could
// reach, showing how much of Palermo's gain requires the hardware mesh.
func AblationCommitGranularity(o Options) (AblationResult, error) {
	o.defaults()
	return ablationPair(o, "fine-grained SW sync", func(fine bool) (float64, error) {
		e, err := buildPalermoRing(o, 1)
		if err != nil {
			return 0, err
		}
		gen, err := workload.New("rand", o.Lines, o.Seed)
		if err != nil {
			return 0, err
		}
		var eng sim.Engine
		mem := dram.New(&eng, dram.DefaultConfig())
		src := ctrl.FuncSource(func() (uint64, bool) { return gen.Next() })
		rc := ctrl.RunConfig{Requests: o.Requests, Warmup: o.Warmup}
		var res ctrl.Result
		if fine {
			res = core.Mesh{Name: "sw-fine", Columns: o.Columns, SoftwareCoarse: true}.Run(&eng, mem, e, src, rc)
		} else {
			res = ctrl.Serial{Name: "sw-coarse", OverlapDataRP: true}.Run(&eng, mem, e, src, rc)
		}
		return res.Throughput(), nil
	})
}

// AblationPathMesh tests §IV-E's claim that applying the Palermo mesh
// strategy to PathORAM gains little: PathORAM has no access-exclusivity
// guarantee, so the whole write-back serializes same-level requests, and
// its traffic has few dependency bubbles to begin with. Returns the mesh's
// gain over the serial controller for PathORAM and, for contrast, for
// RingORAM (the Palermo protocol). All four arms run as one grid.
func AblationPathMesh(o Options) (pathGain, ringGain AblationResult, err error) {
	o.defaults()
	runPath := func(mesh bool) (float64, error) {
		cfg := oram.DefaultPathConfig()
		cfg.NLines = o.Lines
		cfg.Seed = o.Seed
		e, err := oram.NewPath(cfg)
		if err != nil {
			return 0, err
		}
		gen, err := workload.New("rand", o.Lines, o.Seed)
		if err != nil {
			return 0, err
		}
		var eng sim.Engine
		mem := dram.New(&eng, dram.DefaultConfig())
		src := ctrl.FuncSource(func() (uint64, bool) { return gen.Next() })
		rc := ctrl.RunConfig{Requests: o.Requests, Warmup: o.Warmup}
		var res ctrl.Result
		if mesh {
			res = core.Mesh{Name: "path-mesh", Columns: o.Columns}.Run(&eng, mem, e, src, rc)
		} else {
			res = ctrl.Serial{Name: "path-serial"}.Run(&eng, mem, e, src, rc)
		}
		return res.Throughput(), nil
	}
	thr, err := exp.Map(o.runner(), 4, func(i int) (float64, error) {
		switch i {
		case 0:
			return runPath(false)
		case 1:
			return runPath(true)
		case 2:
			r, err := Run(ProtoRingORAM, "rand", o)
			if err != nil {
				return 0, err
			}
			return r.Throughput(), nil
		default:
			r, err := Run(ProtoPalermo, "rand", o)
			if err != nil {
				return 0, err
			}
			return r.Throughput(), nil
		}
	})
	if err != nil {
		return pathGain, ringGain, err
	}
	pathGain = AblationResult{Name: "mesh on PathORAM", Baseline: thr[0], With: thr[1]}
	ringGain = AblationResult{Name: "mesh on RingORAM", Baseline: thr[2], With: thr[3]}
	return pathGain, ringGain, nil
}

// TenantReport is the multi-process isolation analysis of §VI: several
// co-located tenants share the Palermo controller; obliviousness requires
// that response latency reveals nothing about which tenant issued a
// request.
type TenantReport struct {
	Tenants    []string
	Medians    []float64 // per-tenant median response latency, ticks
	MutualInfo float64   // bits between (tenant == Tenants[0]) and latency
	Padding    uint64    // dummy requests injected to hold the issue rate
}

// String renders the report.
func (r TenantReport) String() string {
	s := fmt.Sprintf("tenant isolation: MI=%.3g bits, %d padding dummies\n", r.MutualInfo, r.Padding)
	for i, name := range r.Tenants {
		s += fmt.Sprintf("  %-8s median latency %.0f ticks\n", name, r.Medians[i])
	}
	return s
}

// TenantIsolation runs two tenants with very different native behaviour
// (llm's streaming rows vs redis's scattered keys) through one Palermo
// controller, with a bursty front end forcing constant-rate dummy padding,
// and measures whether latency leaks tenant identity. This is a single
// simulation cell (the tenants share one engine), so it does not fan out.
func TenantIsolation(o Options) (TenantReport, error) {
	o.defaults()
	o.KeepLatency = true
	if o.Requests < 2000 {
		o.Requests = 2000
	}
	names := []string{"llm", "redis"}
	var gens []workload.Generator
	for _, n := range names {
		g, err := workload.New(n, o.Lines, o.Seed)
		if err != nil {
			return TenantReport{}, err
		}
		gens = append(gens, g)
	}
	mix := workload.NewTenants(rng.New(o.Seed^0x7e4a47), gens...)
	src := workload.NewBursty(mix, 3, 4) // 75% duty: padding required

	e, err := buildPalermoRing(o, 1)
	if err != nil {
		return TenantReport{}, err
	}
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	res := core.Mesh{Name: "palermo", Columns: o.Columns}.Run(&eng, mem, e, src,
		ctrl.RunConfig{Requests: o.Requests, Warmup: o.Warmup, KeepLatency: true})

	lat := res.RespLat.Samples()
	if len(lat) != len(res.Tags) {
		return TenantReport{}, fmt.Errorf("palermo: %d latencies vs %d tags", len(lat), len(res.Tags))
	}
	isFirst := make([]bool, len(res.Tags))
	var perTenant [2][]float64
	for i, tg := range res.Tags {
		isFirst[i] = tg == 0
		if tg >= 0 && tg < 2 {
			perTenant[tg] = append(perTenant[tg], lat[i])
		}
	}
	tim, err := security.AnalyzeTiming(lat, isFirst)
	if err != nil {
		return TenantReport{}, err
	}
	rep := TenantReport{Tenants: names, MutualInfo: tim.MutualInfo, Padding: res.Dummies}
	for t := 0; t < 2; t++ {
		rep.Medians = append(rep.Medians, median(perTenant[t]))
	}
	return rep, nil
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := make([]float64, len(v))
	copy(s, v)
	sort.Float64s(s)
	return s[len(s)/2]
}

// runPrORAM is the Fig 4 helper that selects the plain or fat-tree variant.
func runPrORAM(o Options, wl string, fatTree bool) (RunResult, error) {
	o.noFatTree = !fatTree
	return Run(ProtoPrORAM, wl, o)
}
