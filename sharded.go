package palermo

// ShardedStore is the concurrent, sharded form of Store: block ids are
// deterministically striped across S independent ORAM shards (each with a
// private Ring engine, sealer counter-domain, and derived seed), and each
// shard is served by a dedicated worker goroutine behind a bounded request
// queue. Unlike Store it is safe for concurrent use from any number of
// goroutines and its throughput scales with shards × cores.
//
//	st, _ := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 20, Shards: 4})
//	defer st.Close()
//	st.Write(42, payload)
//	data, _ := st.Read(42)
//	blocks, _ := st.ReadBatch([]uint64{1, 2, 3, 1}) // the two id-1 reads share one ORAM access
//
// Routing depends only on the public block id, so per-shard obliviousness
// is exactly the single-store guarantee; DESIGN.md §6 states the argument
// (and what the backend additionally learns: the id's residue mod Shards).

import (
	"fmt"
	"time"

	"palermo/internal/backend"
	"palermo/internal/serve"
	"palermo/internal/shard"
)

// MaxShards bounds ShardedStoreConfig.Shards: beyond a few thousand
// workers the per-shard trees are tiny and goroutine overhead dominates.
const MaxShards = 1024

// ShardedStoreConfig configures a sharded oblivious store.
type ShardedStoreConfig struct {
	Blocks uint64 // total capacity in 64-byte blocks (default 2^20)
	Shards int    // independent ORAM shards (default 4)
	Key    []byte // AES key, 16/24/32 bytes (default: the Store demo key)
	Seed   uint64 // base seed; each shard derives its own (default 1)

	// QueueDepth bounds each shard's request queue (in submissions);
	// a full queue blocks submitters (back-pressure). Default 256.
	QueueDepth int
	// MaxBatch caps how many queued operations one shard worker coalesces
	// into a single dedup window. Default 64.
	MaxBatch int
	// AdmissionDeadline sheds overload: a request that waited in its shard
	// queue longer than this is dropped by the worker *before any engine
	// access* and fails with an error satisfying errors.Is(err, ErrRetry).
	// Because shed requests never reach the ORAM, shedding is invisible in
	// the §6 adversary's view. 0 (the default) disables shedding — queues
	// apply pure back-pressure and every admitted request executes.
	AdmissionDeadline time.Duration

	// Engine selects the storage engine: BackendMemory (default),
	// BackendWAL, or BackendBlockfile (durable engines require Dir; each
	// shard owns a sub-directory). See StoreConfig for the full semantics.
	Engine string
	// Backend is the original name of the Engine knob, kept as an alias
	// so existing callers and configs keep working. Setting both to
	// different values is an error.
	Backend string
	// Dir is the durable store directory (durable engines only). Its
	// manifest pins Blocks, Shards, and the engine, so reopening with a
	// different geometry fails instead of silently mis-routing ids.
	Dir string
	// CheckpointEvery is the minimum per-shard writes between automatic
	// WAL-compaction checkpoints (default 4096; <0 disables periodic
	// checkpoints; compaction also waits for the log tail to reach a
	// quarter of the shard's stored blocks — see StoreConfig).
	CheckpointEvery int
	// GroupCommit is WAL appends per fsync batch (default 32).
	GroupCommit int
	// PipelineDepth is each shard worker's in-flight access window: while
	// request k's backend block vector (and WAL commit) is in flight,
	// the worker runs request k+1's engine stage. 1 = strictly serial
	// workers (the pre-pipeline behavior, bit-identical leaf traces and
	// counters at every depth). Default 2; max MaxPipelineDepth. See
	// StoreConfig.PipelineDepth for the durability interaction.
	PipelineDepth int
	// TreeTopLevels pins each shard engine's resident tree-top cache to
	// exactly this many levels (0 = hardware byte-budget default; max
	// MaxTreeTopLevels). Access-pattern-neutral: per-shard leaf traces,
	// payloads, and checkpoints are bit-identical at any setting — only
	// backend/DRAM traffic shrinks. See StoreConfig.TreeTopLevels.
	TreeTopLevels int
	// Prefetch turns on the batch-admission prefetch planner: each shard
	// worker announces an admitted batch's upcoming reads so their sealed-
	// payload fetches run through the I/O goroutine ahead of the accesses'
	// engine stages (DESIGN.md §10). Requires PipelineDepth > 1 to have
	// any effect. Purely a scheduling change: served payloads, leaf
	// traces, and dedup semantics are identical with it on or off.
	Prefetch bool
	// PrefetchDepth extends the planner's horizon to this many predicted
	// served batches: queued submissions are chunked by the worker's own
	// coalescing rule and each predicted batch's read set is announced
	// before the current batch finishes executing (DESIGN.md §14). 0 or 1
	// keeps the one-batch planner bit-exactly; requires Prefetch,
	// otherwise it is ignored. Max MaxPrefetchDepth. Default 1.
	PrefetchDepth int
	// PosmapPrefetch additionally announces each planned read's
	// position-map-group siblings — the contiguous data lines its level-1
	// posmap line covers — so one announce warms the recursive hierarchy's
	// backend lines (DESIGN.md §14). Speculative lines nobody reads are
	// dropped after the planning horizon. Access-pattern-neutral like
	// Prefetch; requires Prefetch, otherwise it is ignored. Default off.
	PosmapPrefetch bool
	// CryptoWorkers offloads each shard's seal/unseal AES transforms to a
	// bounded worker pool hung off its I/O stage (capped at GOMAXPROCS
	// per shard; 0 = inline; requires PipelineDepth > 1). Determinism is
	// unchanged at every worker count — see StoreConfig.CryptoWorkers.
	CryptoWorkers int
	// SlotCacheBytes budgets each shard blockfile backend's slot-level
	// read cache (per shard, not total). Served bytes are identical at
	// every budget; see StoreConfig.SlotCacheBytes. Requires Engine
	// BackendBlockfile. Default 0 (off).
	SlotCacheBytes int
}

func (c *ShardedStoreConfig) defaults() {
	if c.Blocks == 0 {
		c.Blocks = 1 << 20
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Key == nil {
		c.Key = []byte("palermo-demo-key")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PipelineDepth == 0 {
		c.PipelineDepth = 2
	}
}

// ShardedStore is a concurrent oblivious 64-byte-block store.
type ShardedStore struct {
	router shard.Router
	shards []*shard.Shard
	svc    *serve.Service
	bes    []backend.Backend // per-shard storage backends, kept for FsyncLag
}

// NewShardedStore builds the shards and starts their workers.
func NewShardedStore(cfg ShardedStoreConfig) (*ShardedStore, error) {
	if err := validatePipelineDepth(cfg.PipelineDepth); err != nil {
		return nil, err
	}
	if err := validateTreeTopLevels(cfg.TreeTopLevels); err != nil {
		return nil, err
	}
	if err := validateCryptoWorkers(cfg.CryptoWorkers); err != nil {
		return nil, err
	}
	if err := validatePrefetchDepth(cfg.PrefetchDepth); err != nil {
		return nil, err
	}
	engine, err := resolveEngine(cfg.Engine, cfg.Backend)
	if err != nil {
		return nil, err
	}
	cfg.Backend = engine
	cfg.Engine = ""
	cfg.defaults()
	if err := validateStoreParams(cfg.Blocks, cfg.Key); err != nil {
		return nil, err
	}
	if cfg.Shards < 1 || cfg.Shards > MaxShards {
		return nil, fmt.Errorf("palermo: Shards must be in [1, %d], got %d", MaxShards, cfg.Shards)
	}
	if cfg.QueueDepth < 0 || cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("palermo: QueueDepth/MaxBatch must be >= 0")
	}
	router, err := shard.NewRouter(cfg.Blocks, cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("palermo: %w", err)
	}
	if cfg.Backend == "" {
		cfg.Backend = BackendMemory
	}
	if err := validateSlotCacheBytes(cfg.SlotCacheBytes, cfg.Backend); err != nil {
		return nil, err
	}
	bes, err := openBackends(cfg.Backend, cfg.Dir, cfg.Blocks, cfg.Shards, cfg.GroupCommit, cfg.PipelineDepth, cfg.SlotCacheBytes)
	if err != nil {
		return nil, err
	}
	st := &ShardedStore{router: router, bes: bes}
	backends := make([]serve.Backend, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		sh, err := shard.New(i, cfg.Shards, router.ShardBlocks(i), cfg.Key, shard.DeriveSeed(cfg.Seed, i), bes[i])
		if err != nil {
			for _, be := range bes {
				if be != nil {
					be.Close()
				}
			}
			return nil, fmt.Errorf("palermo: %w", err)
		}
		applyCheckpointEvery(sh, cfg.CheckpointEvery)
		sh.SetTreeTopLevels(cfg.TreeTopLevels)
		sh.EnablePipeline(cfg.PipelineDepth)
		sh.EnableCryptoPool(cfg.CryptoWorkers)
		if cfg.Prefetch {
			sh.EnablePrefetch(prefetchWindow(cfg.MaxBatch, cfg.PrefetchDepth, cfg.PosmapPrefetch))
		}
		st.shards = append(st.shards, sh)
		backends[i] = stagedShard{sh}
	}
	st.svc = serve.New(backends, serve.Config{
		QueueDepth:        cfg.QueueDepth,
		MaxBatch:          cfg.MaxBatch,
		PipelineDepth:     cfg.PipelineDepth,
		Prefetch:          cfg.Prefetch,
		PrefetchDepth:     cfg.PrefetchDepth,
		PosmapPrefetch:    cfg.PosmapPrefetch,
		AdmissionDeadline: cfg.AdmissionDeadline,
	})
	return st, nil
}

// serveDefaultMaxBatch mirrors serve.Config's MaxBatch default for sizing
// the shard prefetch window when the config leaves MaxBatch zero.
const serveDefaultMaxBatch = 64

// prefetchWindow sizes a shard's announce window for the planner's
// horizon: one batch of distinct reads per predicted batch (the one-batch
// planner never declines mid-plan at depth 1), doubled when posmap-group
// siblings ride along. Sizing is a throughput knob, not correctness —
// PrefetchSet declines gracefully past the window.
func prefetchWindow(maxBatch, depth int, posmap bool) int {
	w := maxInt(maxBatch, serveDefaultMaxBatch) * maxInt(depth, 1)
	if posmap {
		w *= 2
	}
	return w
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// stagedShard adapts *shard.Shard to serve.StagedBackend: the shard's
// concrete Access pointer becomes the service-layer Access interface. The
// serve worker only drives the staged methods when the shard's pipeline is
// enabled (PipelineDepth > 1 — both are wired from the same config knob).
type stagedShard struct{ *shard.Shard }

func (s stagedShard) BeginRead(id uint64) (serve.Access, error) {
	return s.Shard.BeginRead(id)
}

func (s stagedShard) BeginWrite(id uint64, data []byte) (serve.Access, error) {
	return s.Shard.BeginWrite(id, data)
}

// Blocks returns the total capacity in blocks.
func (s *ShardedStore) Blocks() uint64 { return s.router.Blocks() }

// Shards returns the shard count.
func (s *ShardedStore) Shards() int { return s.router.Shards() }

// Write stores a 64-byte block obliviously under the given block id. Safe
// for concurrent use; writes to the same id from different goroutines are
// serialized by the id's shard worker in arrival order.
func (s *ShardedStore) Write(id uint64, data []byte) error {
	if id >= s.Blocks() {
		return fmt.Errorf("palermo: block %d outside capacity %d", id, s.Blocks())
	}
	if len(data) != BlockSize {
		return fmt.Errorf("palermo: block must be %d bytes, got %d", BlockSize, len(data))
	}
	sh, local := s.router.Route(id)
	return s.svc.Write(sh, local, data)
}

// Read fetches a block obliviously. Reading a never-written block returns a
// zero block after a full-protocol access, like Store.Read.
func (s *ShardedStore) Read(id uint64) ([]byte, error) {
	if id >= s.Blocks() {
		return nil, fmt.Errorf("palermo: block %d outside capacity %d", id, s.Blocks())
	}
	sh, local := s.router.Route(id)
	return s.svc.Read(sh, local)
}

// ReadBatch fetches many blocks, submitting each shard's subset as one
// atomic batch: duplicate ids inside the call are served by a single ORAM
// access whose payload fans out to every position. Results are returned in
// input order; on error, the first failure is returned after every
// submitted request has completed.
func (s *ShardedStore) ReadBatch(ids []uint64) ([][]byte, error) {
	out := make([][]byte, len(ids))
	for _, id := range ids {
		if id >= s.Blocks() {
			return nil, fmt.Errorf("palermo: block %d outside capacity %d", id, s.Blocks())
		}
	}
	perShard := make([][]serve.Req, s.Shards())
	perShardPos := make([][]int, s.Shards())
	for i, id := range ids {
		sh, local := s.router.Route(id)
		perShard[sh] = append(perShard[sh], serve.Req{Op: serve.OpRead, ID: local})
		perShardPos[sh] = append(perShardPos[sh], i)
	}
	return out, s.waitBatches(perShard, perShardPos, out)
}

// WriteBatch stores blocks[i] under ids[i] for every i, submitting each
// shard's subset as one atomic batch. Ordering between entries targeting
// the same id follows their position in the call.
func (s *ShardedStore) WriteBatch(ids []uint64, blocks [][]byte) error {
	if len(ids) != len(blocks) {
		return fmt.Errorf("palermo: WriteBatch got %d ids but %d blocks", len(ids), len(blocks))
	}
	for i, id := range ids {
		if id >= s.Blocks() {
			return fmt.Errorf("palermo: block %d outside capacity %d", id, s.Blocks())
		}
		if len(blocks[i]) != BlockSize {
			return fmt.Errorf("palermo: block must be %d bytes, got %d", BlockSize, len(blocks[i]))
		}
	}
	perShard := make([][]serve.Req, s.Shards())
	perShardPos := make([][]int, s.Shards())
	for i, id := range ids {
		sh, local := s.router.Route(id)
		perShard[sh] = append(perShard[sh], serve.Req{Op: serve.OpWrite, ID: local, Data: blocks[i]})
		perShardPos[sh] = append(perShardPos[sh], i)
	}
	return s.waitBatches(perShard, perShardPos, nil)
}

// waitBatches submits every shard's sub-batch, then waits for all futures,
// scattering read payloads into out (when non-nil) by original position.
func (s *ShardedStore) waitBatches(perShard [][]serve.Req, perShardPos [][]int, out [][]byte) error {
	futs := make([][]*serve.Future, len(perShard))
	var firstErr error
	for sh, reqs := range perShard {
		if len(reqs) == 0 {
			continue
		}
		fs, err := s.svc.SubmitBatch(sh, reqs)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		futs[sh] = fs
	}
	for sh, fs := range futs {
		for j, f := range fs {
			data, err := f.Wait()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if out != nil && err == nil {
				out[perShardPos[sh][j]] = data
			}
		}
	}
	return firstErr
}

// ServiceStats is the service-layer snapshot ShardedStore.Stats returns:
// completed operations, dedup fan-out hits, and latency summaries.
type ServiceStats = serve.Stats

// LatencySummary is one operation class's latency condensation inside
// ServiceStats (count, mean, bucketed p50/p99 in microseconds).
type LatencySummary = serve.LatencySummary

// Stats returns the service-layer snapshot: completed operations, dedup
// fan-out hits, and latency percentiles. Safe to call at any time.
func (s *ShardedStore) Stats() ServiceStats { return s.svc.Stats() }

// QueueDepths reports each shard's instantaneous request-queue occupancy
// (in queued submissions, index = shard). It is a point-in-time gauge for
// operability surfaces, not a synchronized snapshot.
func (s *ShardedStore) QueueDepths() []int { return s.svc.QueueDepths() }

// FsyncLag aggregates the durable backends' fsync telemetry: how many
// fsyncs the store has issued and the cumulative time spent waiting on
// them. Backends without fsync telemetry (the memory engine) contribute
// zero, so a memory store always reports (0, 0).
func (s *ShardedStore) FsyncLag() (count uint64, total time.Duration) {
	for _, be := range s.bes {
		if fs, ok := be.(interface {
			FsyncStats() (uint64, time.Duration)
		}); ok {
			n, d := fs.FsyncStats()
			count += n
			total += d
		}
	}
	return count, total
}

// Snapshot returns Stats and Traffic together. It exists so in-process
// stores and remote Clients satisfy one observation interface
// (internal/loadgen.Target): a Client fetches both in a single wire op,
// and the error reports a lost connection — which an in-process store
// cannot experience, hence always nil here.
func (s *ShardedStore) Snapshot() (ServiceStats, TrafficReport, error) {
	return s.Stats(), s.Traffic(), nil
}

// Traffic aggregates the per-shard TrafficReports into the Store report
// shape. Shard counters are snapshotted on each shard's own worker (via a
// queue barrier), so the report is consistent with every operation that
// completed before the call; after Close the counters are read directly.
func (s *ShardedStore) Traffic() TrafficReport {
	var rep TrafficReport
	for i, sh := range s.shards {
		var c shard.Counters
		if err := s.svc.Sync(i, func() { c = sh.Snapshot() }); err != nil {
			// Service closed: wait out any still-draining workers (Close
			// may be concurrent), then the direct read is race-free.
			s.svc.WaitClosed()
			c = sh.Snapshot()
		}
		rep.Reads += c.Reads
		rep.Writes += c.Writes
		rep.DRAMReads += c.DRAMReads
		rep.DRAMWrites += c.DRAMWrites
		rep.TreeTopHits += c.TreeTopHits
		rep.PrefetchIssued += c.PrefetchIssued
		rep.PrefetchUsed += c.PrefetchUsed
		rep.PrefetchStale += c.PrefetchStale
		if c.StashPeak > rep.StashPeak {
			rep.StashPeak = c.StashPeak
		}
	}
	if ops := rep.Reads + rep.Writes; ops > 0 {
		rep.AmplificationFactor = float64(rep.DRAMReads+rep.DRAMWrites) / float64(ops)
	}
	for _, be := range s.bes {
		h, m := slotCacheStats(be)
		rep.SlotCacheHits += h
		rep.SlotCacheMisses += m
	}
	return rep
}

// EnableTraces starts recording every shard's operation/leaf trace (the
// attacker-visible path randomness each access exposes). Call before the
// store starts serving; the traces grow without bound, so this is a
// measurement/audit mode, not a production default.
func (s *ShardedStore) EnableTraces() {
	for _, sh := range s.shards {
		sh.EnableTrace()
	}
}

// LeafTrace is one shard's recorded serving trace for security analysis:
// the leaf each engine access exposed, and the shard's data-tree leaf
// count (the uniformity modulus).
type LeafTrace struct {
	Shard     int      `json:"shard"`
	NumLeaves uint64   `json:"num_leaves"`
	Leaves    []uint64 `json:"leaves"`
}

// LeafTraces snapshots every shard's recorded leaf trace (nil Leaves for
// shards without EnableTraces). Traces are copied on each shard's own
// worker goroutine, so the call is safe while the store is serving.
func (s *ShardedStore) LeafTraces() []LeafTrace {
	out := make([]LeafTrace, len(s.shards))
	for i, sh := range s.shards {
		i, sh := i, sh
		copyTrace := func() {
			out[i].Shard = i
			out[i].NumLeaves = sh.DataLeaves()
			if tr := sh.Trace(); tr != nil {
				out[i].Leaves = append([]uint64(nil), tr.Leaves...)
			}
		}
		if err := s.svc.Sync(i, copyTrace); err != nil {
			s.svc.WaitClosed()
			copyTrace()
		}
	}
	return out
}

// Close stops accepting requests, drains everything already queued,
// flushes and checkpoints each shard's backend on its own worker, and
// waits for the workers to exit. Idempotent; operations submitted after
// Close return an error satisfying errors.Is(err, ErrClosed). With the
// WAL backend, a store reopened from the same Dir resumes exactly where
// Close left it — payloads, protocol state, and traffic counters.
func (s *ShardedStore) Close() error { return s.svc.Close() }
