package palermo

// Determinism regression tests for the parallel sweep runner: a sweep
// fanned out across workers must produce results bit-identical to a forced
// serial run (Workers: 1) — same speedups, same geomeans, same stash peaks
// and traces. Each simulation cell owns a private engine, DRAM model, and
// seeded RNG, and internal/exp collects results in grid order, so any
// divergence here means shared mutable state leaked between cells.

import (
	"reflect"
	"testing"
)

// detOpts keeps the grids small enough for CI while still covering every
// protocol (Fig10) and a multi-point sweep (Fig13).
func detOpts(workers int) Options {
	return Options{Requests: 60, Warmup: 60, Workers: workers}
}

func TestFig10ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid experiment")
	}
	serial, err := Fig10(detOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig10(detOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Speedup, par.Speedup) {
		t.Errorf("speedups diverge:\nserial %v\nparallel %v", serial.Speedup, par.Speedup)
	}
	if !reflect.DeepEqual(serial.GMean, par.GMean) {
		t.Errorf("geomeans diverge:\nserial %v\nparallel %v", serial.GMean, par.GMean)
	}
	if !reflect.DeepEqual(serial.BestPF, par.BestPF) {
		t.Errorf("swept prefetch diverges:\nserial %v\nparallel %v", serial.BestPF, par.BestPF)
	}
	if !reflect.DeepEqual(serial.AbsMissesPerSec, par.AbsMissesPerSec) {
		t.Errorf("absolute rates diverge:\nserial %v\nparallel %v", serial.AbsMissesPerSec, par.AbsMissesPerSec)
	}
}

func TestFig13ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid experiment")
	}
	serial, err := Fig13(detOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig13(detOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("Fig13 diverges:\nserial %+v\nparallel %+v", serial, par)
	}
}

func TestFig12ParallelStashPeaksMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid experiment")
	}
	serial, err := Fig12(detOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig12(detOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Max, par.Max) {
		t.Errorf("stash peaks diverge:\nserial %v\nparallel %v", serial.Max, par.Max)
	}
	if !reflect.DeepEqual(serial.Samples, par.Samples) {
		t.Errorf("stash traces diverge")
	}
}
