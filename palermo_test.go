package palermo

import (
	"strings"
	"testing"

	"palermo/internal/security"
)

// Small, fast options for API-level tests.
func testOpts() Options {
	return Options{Lines: 1 << 22, Requests: 250}
}

func TestRunAllProtocols(t *testing.T) {
	for _, p := range Protocols() {
		r, err := Run(p, "rand", testOpts())
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if r.Requests == 0 || r.Cycles == 0 {
			t.Fatalf("%v: empty result %+v", p, r.Result)
		}
		if r.Protocol != p || r.Workload != "rand" {
			t.Fatalf("%v: identity fields wrong", p)
		}
		if r.Mem.BandwidthUtil <= 0 || r.Mem.BandwidthUtil >= 1 {
			t.Fatalf("%v: bandwidth %f out of range", p, r.Mem.BandwidthUtil)
		}
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(ProtoPalermo, "bogus", testOpts()); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(ProtoPalermo, "pr", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(ProtoPalermo, "pr", testOpts())
	if a.Cycles != b.Cycles || a.PlanReads != b.PlanReads {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Cycles, a.PlanReads, b.Cycles, b.PlanReads)
	}
	o := testOpts()
	o.Seed = 99
	c, _ := Run(ProtoPalermo, "pr", o)
	if c.Cycles == a.Cycles && c.PlanReads == a.PlanReads {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestHeadlineSpeedups(t *testing.T) {
	// The paper's core claims, at test scale: Palermo beats RingORAM by a
	// wide margin; the hardware co-design beats the software-only variant;
	// prefetch helps on a streaming workload.
	o := Options{Lines: 1 << 24, Requests: 500}
	ring, err := Run(ProtoRingORAM, "stm", o)
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := Run(ProtoPalermoSW, "stm", o)
	pal, _ := Run(ProtoPalermo, "stm", o)
	pf, _ := Run(ProtoPalermoPF, "stm", o)

	if pal.Throughput() < 1.5*ring.Throughput() {
		t.Fatalf("Palermo/Ring = %.2fx, want > 1.5x",
			pal.Throughput()/ring.Throughput())
	}
	if pal.Throughput() <= sw.Throughput() {
		t.Fatal("hardware mesh must beat software-only Palermo")
	}
	if pf.Throughput() <= pal.Throughput() {
		t.Fatal("prefetch must help on stm")
	}
}

func TestPalermoStashBoundedAtScale(t *testing.T) {
	r, err := Run(ProtoPalermo, "redis", Options{Requests: 800})
	if err != nil {
		t.Fatal(err)
	}
	for l, m := range r.StashMax {
		if m > 256 {
			t.Fatalf("level %d stash peaked at %d", l, m)
		}
	}
}

func TestPrORAMDummiesOnStreaming(t *testing.T) {
	o := Options{Lines: 1 << 24, Requests: 600, Prefetch: 8, noFatTree: true}
	r, err := Run(ProtoPrORAM, "stm", o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dummies == 0 {
		t.Fatal("plain PrORAM at pf=8 on stm must trigger background evictions")
	}
	if r.LLCHits == 0 {
		t.Fatal("prefetch filter produced no LLC hits on stm")
	}
}

func TestPalermoPFNoDummies(t *testing.T) {
	o := Options{Lines: 1 << 24, Requests: 600, Prefetch: 8}
	r, err := Run(ProtoPalermoPF, "stm", o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dummies != 0 {
		t.Fatalf("Palermo prefetch must not need dummies, got %d (§V-C)", r.Dummies)
	}
	if r.StashMax[0] > 256 {
		t.Fatalf("stash tags peaked at %d with prefetch", r.StashMax[0])
	}
}

func TestSecurityEndToEnd(t *testing.T) {
	o := Options{Lines: 1 << 24, Requests: 2000, KeepLatency: true}
	r, err := Run(ProtoPalermo, "redis", o)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := security.AnalyzeLeaves(r.Leaves, r.NumLeaves, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !leaf.Uniform(0.001) {
		t.Fatalf("leaf stream rejected as non-uniform: %v", leaf)
	}
	tim, err := security.AnalyzeTiming(r.RespLat.Samples(), r.FromStash)
	if err != nil {
		t.Fatal(err)
	}
	if tim.MutualInfo > 0.05 {
		t.Fatalf("mutual information %v too high at n=%d", tim.MutualInfo, len(r.Leaves))
	}
}

func TestDefaultPrefetch(t *testing.T) {
	if DefaultPrefetch("llm") != 8 || DefaultPrefetch("rm2") != 8 {
		t.Fatal("embedding workloads must prefetch by row (capped at 8)")
	}
	if DefaultPrefetch("rand") != 1 || DefaultPrefetch("redis") != 1 {
		t.Fatal("low-locality workloads must not prefetch")
	}
}

func TestProtocolStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Protocols() {
		s := p.String()
		if s == "" || strings.HasPrefix(s, "Protocol(") || seen[s] {
			t.Fatalf("bad or duplicate protocol name %q", s)
		}
		seen[s] = true
	}
}

func TestTables(t *testing.T) {
	if !strings.Contains(TableII(), "llm") {
		t.Fatal("Table II missing workloads")
	}
	if !strings.Contains(TableIII(), "DDR4-3200") {
		t.Fatal("Table III missing memory config")
	}
	if !strings.Contains(Fig15(8).String(), "5.78") {
		t.Fatal("Fig 15 missing calibrated area")
	}
}

func TestFig14aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	res, err := Fig14a(Options{Requests: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Larger (Z,S,A) must help (fewer write barriers, §VIII-C) and the
	// stash must stay bounded.
	if res.Speedup[2] < 1.3 {
		t.Fatalf("(16,27,20) speedup = %.2f, want > 1.3 over (4,5,3)", res.Speedup[2])
	}
	for i, s := range res.Stash {
		if s > 256 {
			t.Fatalf("config %d stash %d over budget", i, s)
		}
	}
}

func TestFig14bSaturates(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	res, err := Fig14b(Options{Requests: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup[3] < 1.5 { // 8 columns vs 1
		t.Fatalf("3x8 speedup = %.2f, want > 1.5", res.Speedup[3])
	}
	if res.Speedup[5] > res.Speedup[3]*1.25 {
		t.Fatalf("throughput must saturate near 8 columns: %v", res.Speedup)
	}
}
