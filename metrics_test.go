package palermo

// Tests for the operability surface: the /metrics exposition must carry
// the serving path's counters (including shed counts and the queue/exec
// split), per-shard queue depths, and — on durable stores — the WAL
// fsync lag; pprof mounts only when asked.

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	st, err := NewShardedStore(ShardedStoreConfig{Blocks: 1 << 12, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := uint64(0); i < 32; i++ {
		if err := st.Write(i, block(byte(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := ServeMetrics("127.0.0.1:0", MetricsVars{
		Service:     st.Stats,
		Traffic:     st.Traffic,
		QueueDepths: st.QueueDepths,
		FsyncLag:    st.FsyncLag,
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	body := scrape(t, "http://"+ms.Addr().String()+"/metrics")
	for _, want := range []string{
		"palermo_reads_total 32",
		"palermo_writes_total 32",
		"palermo_sheds_total 0",
		"palermo_queue_wait_seconds{quantile=\"0.99\"}",
		"palermo_exec_latency_seconds_count",
		"palermo_queue_depth{shard=\"0\"}",
		"palermo_queue_depth{shard=\"1\"}",
		"palermo_dram_reads_total",
		"palermo_amplification_factor",
		"palermo_fsyncs_total 0", // in-memory store: no commit-path fsyncs
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q in:\n%s", want, body)
		}
	}
	// pprof is opt-in: without the flag the endpoint must not exist.
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + ms.Addr().String() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// "/" falls through to the metrics page, so pprof paths answer with
	// the exposition text rather than a profile; assert no pprof output.
	if resp.Header.Get("Content-Type") == "text/plain; charset=utf-8" &&
		resp.ContentLength > 0 && resp.Header.Get("X-Content-Type-Options") != "" {
		t.Fatal("pprof mounted without being enabled")
	}
}

func TestMetricsShedAndFsyncCounters(t *testing.T) {
	dir := t.TempDir()
	st, err := NewShardedStore(ShardedStoreConfig{
		Blocks: 1 << 10, Shards: 1, Dir: dir, Engine: BackendWAL,
		AdmissionDeadline: 1, // sheds everything
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := uint64(0); i < 8; i++ {
		st.Write(i, block(1)) // all shed: ErrRetry, ignored here on purpose
	}
	ms, err := ServeMetrics("127.0.0.1:0", MetricsVars{
		Service: st.Stats, FsyncLag: st.FsyncLag,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	body := scrape(t, "http://"+ms.Addr().String()+"/metrics")
	if !strings.Contains(body, "palermo_sheds_total 8") {
		t.Fatalf("shed counter missing from scrape:\n%s", body)
	}
	// With pprof enabled the index answers under /debug/pprof/.
	idx := scrape(t, "http://"+ms.Addr().String()+"/debug/pprof/")
	if !strings.Contains(idx, "pprof") {
		t.Fatal("pprof index not mounted despite being enabled")
	}
}

// TestFsyncLagCountsCommits: a durable store that actually commits must
// report a growing commit-path fsync count and a nonzero cumulative wait.
func TestFsyncLagCountsCommits(t *testing.T) {
	st, err := NewShardedStore(ShardedStoreConfig{
		Blocks: 1 << 10, Shards: 1, Dir: t.TempDir(), Engine: BackendWAL,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := uint64(0); i < 16; i++ {
		if err := st.Write(i, block(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	n, wait := st.FsyncLag()
	if n == 0 || wait <= 0 {
		t.Fatalf("committing WAL store reported %d fsyncs, %v wait", n, wait)
	}
}
