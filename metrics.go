package palermo

// Metrics is the plain-text operability surface: a /metrics-style HTTP
// handler exporting the serving path's counters and gauges in the
// Prometheus text exposition format (counter/gauge lines only — no
// client library, no dependency). palermo-server mounts it with
// -metrics addr; embedders can mount it on their own mux.
//
// Everything exported here is derived from snapshots the store already
// exposes (Stats/Traffic/QueueDepths/FsyncLag) — the endpoint observes
// exactly what an in-process caller can, so scraping adds nothing to
// the §6 adversary's view beyond the traffic of the scrape itself.

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// MetricsVars supplies the snapshot sources for a metrics handler. Any
// nil field's metrics are simply omitted, so one handler shape serves
// both the standalone store and a cluster node (whose Stats method
// returns the wire shape instead of ServiceStats).
type MetricsVars struct {
	// Service returns the service-layer snapshot: operation counts,
	// dedup hits, shed counts, and the queue/exec latency split.
	Service func() ServiceStats
	// Traffic returns the engine counters (ORAM and DRAM traffic,
	// tree-top hits, prefetch accounting).
	Traffic func() TrafficReport
	// QueueDepths returns each shard's instantaneous queue occupancy.
	QueueDepths func() []int
	// FsyncLag returns the durable backends' commit-path fsync count and
	// cumulative wait (the WAL fsync lag).
	FsyncLag func() (uint64, time.Duration)
}

// NewMetricsHandler builds the /metrics handler over v.
func NewMetricsHandler(v MetricsVars) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b strings.Builder
		writeMetrics(&b, v)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(b.String()))
	})
}

func writeMetrics(b *strings.Builder, v MetricsVars) {
	counter := func(name string, val uint64) {
		fmt.Fprintf(b, "# TYPE %s counter\n%s %d\n", name, name, val)
	}
	gauge := func(name string, val float64) {
		fmt.Fprintf(b, "# TYPE %s gauge\n%s %g\n", name, name, val)
	}
	if v.Service != nil {
		ss := v.Service()
		counter("palermo_reads_total", ss.Reads)
		counter("palermo_writes_total", ss.Writes)
		counter("palermo_sheds_total", ss.Sheds)
		counter("palermo_dedup_hits_total", ss.DedupHits)
		lat := func(name string, l LatencySummary) {
			fmt.Fprintf(b, "# TYPE %s summary\n", name)
			fmt.Fprintf(b, "%s{quantile=\"0.5\"} %g\n", name, float64(l.P50Us)/1e6)
			fmt.Fprintf(b, "%s{quantile=\"0.99\"} %g\n", name, float64(l.P99Us)/1e6)
			fmt.Fprintf(b, "%s_sum %g\n", name, l.MeanUs*float64(l.N)/1e6)
			fmt.Fprintf(b, "%s_count %d\n", name, l.N)
		}
		lat("palermo_read_latency_seconds", ss.ReadLat)
		lat("palermo_write_latency_seconds", ss.WriteLat)
		lat("palermo_queue_wait_seconds", ss.QueueLat)
		lat("palermo_exec_latency_seconds", ss.ExecLat)
	}
	if v.QueueDepths != nil {
		depths := v.QueueDepths()
		fmt.Fprintf(b, "# TYPE palermo_queue_depth gauge\n")
		for i, d := range depths {
			fmt.Fprintf(b, "palermo_queue_depth{shard=\"%d\"} %d\n", i, d)
		}
	}
	if v.Traffic != nil {
		tr := v.Traffic()
		counter("palermo_engine_reads_total", tr.Reads)
		counter("palermo_engine_writes_total", tr.Writes)
		counter("palermo_dram_reads_total", tr.DRAMReads)
		counter("palermo_dram_writes_total", tr.DRAMWrites)
		counter("palermo_treetop_hits_total", tr.TreeTopHits)
		counter("palermo_prefetch_issued_total", tr.PrefetchIssued)
		counter("palermo_prefetch_used_total", tr.PrefetchUsed)
		counter("palermo_prefetch_stale_total", tr.PrefetchStale)
		counter("palermo_slot_cache_hits_total", tr.SlotCacheHits)
		counter("palermo_slot_cache_misses_total", tr.SlotCacheMisses)
		gauge("palermo_stash_peak", float64(tr.StashPeak))
		gauge("palermo_amplification_factor", tr.AmplificationFactor)
	}
	if v.FsyncLag != nil {
		n, d := v.FsyncLag()
		counter("palermo_fsyncs_total", n)
		gauge("palermo_fsync_wait_seconds_total", d.Seconds())
	}
}

// MetricsServer is a started operability listener (ServeMetrics).
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the listener's bound address (useful with ":0").
func (m *MetricsServer) Addr() net.Addr { return m.ln.Addr() }

// Close stops the listener. In-flight scrapes are abandoned — the
// operability surface needs no graceful drain.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// ServeMetrics binds addr and serves /metrics from v in a background
// goroutine. With pprofOn, the standard net/http/pprof profiling
// handlers are mounted under /debug/pprof/ on the same listener — keep
// the address private; profiles expose internals far beyond the
// metrics page.
func ServeMetrics(addr string, v MetricsVars, pprofOn bool) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("palermo: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	h := NewMetricsHandler(v)
	mux.Handle("/metrics", h)
	mux.Handle("/", h) // a bare scrape of the root works too
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &MetricsServer{ln: ln, srv: srv}, nil
}
