package security

import (
	"math"
	"testing"

	"palermo/internal/rng"
)

func TestAnalyzeTimingIndistinguishable(t *testing.T) {
	// Latencies independent of the stash label: MI must be ~0.
	r := rng.New(1)
	n := 20000
	lat := make([]float64, n)
	lab := make([]bool, n)
	for i := range lat {
		lat[i] = 100 + r.Float64()*50
		lab[i] = r.Float64() < 0.3
	}
	rep, err := AnalyzeTiming(lat, lab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MutualInfo > 0.001 {
		t.Fatalf("MI = %v for independent labels, want ~0", rep.MutualInfo)
	}
	if math.Abs(rep.P1-0.5) > 0.05 || math.Abs(rep.P2-0.5) > 0.05 {
		t.Fatalf("p1=%.3f p2=%.3f, want ~0.5", rep.P1, rep.P2)
	}
}

func TestAnalyzeTimingLeaky(t *testing.T) {
	// A design where stash hits return visibly faster leaks ~1 bit.
	r := rng.New(2)
	n := 10000
	lat := make([]float64, n)
	lab := make([]bool, n)
	for i := range lat {
		lab[i] = r.Float64() < 0.5
		if lab[i] {
			lat[i] = 10
		} else {
			lat[i] = 1000
		}
	}
	rep, err := AnalyzeTiming(lat, lab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MutualInfo < 0.9 {
		t.Fatalf("MI = %v for a fully leaky design, want ~1", rep.MutualInfo)
	}
}

func TestAnalyzeTimingDegenerate(t *testing.T) {
	rep, err := AnalyzeTiming([]float64{1, 2, 3}, []bool{false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MutualInfo != 0 {
		t.Fatal("single-class labels must report MI 0")
	}
	if _, err := AnalyzeTiming([]float64{1}, []bool{true, false}); err == nil {
		t.Fatal("mismatched lengths must error")
	}
	if _, err := AnalyzeTiming(nil, nil); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestAnalyzeLeavesUniform(t *testing.T) {
	r := rng.New(3)
	const numLeaves = 1 << 20
	leaves := make([]uint64, 50000)
	for i := range leaves {
		leaves[i] = r.Uint64n(numLeaves)
	}
	rep, err := AnalyzeLeaves(leaves, numLeaves, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Uniform(0.001) {
		t.Fatalf("uniform stream rejected: %v", rep)
	}
	if math.Abs(rep.SerialCorr) > 0.02 {
		t.Fatalf("serial correlation %v on independent stream", rep.SerialCorr)
	}
}

func TestAnalyzeLeavesSkewedRejected(t *testing.T) {
	r := rng.New(4)
	const numLeaves = 1 << 20
	leaves := make([]uint64, 50000)
	for i := range leaves {
		leaves[i] = r.Uint64n(numLeaves / 16) // concentrated in one bucket span
	}
	rep, err := AnalyzeLeaves(leaves, numLeaves, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Uniform(0.001) {
		t.Fatalf("skewed stream accepted: %v", rep)
	}
}

func TestAnalyzeLeavesCorrelatedDetected(t *testing.T) {
	r := rng.New(5)
	const numLeaves = 1 << 20
	leaves := make([]uint64, 50000)
	cur := r.Uint64n(numLeaves)
	for i := range leaves {
		// Random walk: heavy lag-1 correlation but near-uniform marginals.
		cur = (cur + r.Uint64n(numLeaves/64)) % numLeaves
		leaves[i] = cur
	}
	rep, err := AnalyzeLeaves(leaves, numLeaves, 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.SerialCorr) < 0.5 {
		t.Fatalf("random-walk stream not flagged: corr=%v", rep.SerialCorr)
	}
}

func TestChiSquareSF(t *testing.T) {
	// The mean of a chi-square is its dof: SF(dof) should be near 0.5.
	if p := chiSquareSF(63, 63); p < 0.4 || p > 0.6 {
		t.Fatalf("SF(dof) = %v, want ~0.5", p)
	}
	if p := chiSquareSF(200, 63); p > 1e-6 {
		t.Fatalf("SF(200,63) = %v, want ~0", p)
	}
	if p := chiSquareSF(10, 63); p < 0.999 {
		t.Fatalf("SF(10,63) = %v, want ~1", p)
	}
}
