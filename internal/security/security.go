// Package security implements the paper's §VI analyses: the quantitative
// mutual-information bound on what an attacker learns from ORAM response
// timings (Table I, Eq. 1, Fig 9) and the qualitative indistinguishability
// checks on the attacker-visible leaf stream.
package security

import (
	"fmt"
	"math"
	"sort"

	"palermo/internal/stats"
)

// TimingReport quantifies the attacker's information gain from response
// latencies, following Table I: the attacker observes whether each latency
// is above the median and guesses whether the victim's requested block was
// in the stash (B = stash) or in the ORAM tree (B = tree).
type TimingReport struct {
	Median     float64
	P1         float64 // P(longer than median | block was in stash)
	P2         float64 // P(longer than median | block was in tree)
	MutualInfo float64 // Eq. 1, bits; ~0 means no information leaks
	NStash     int
	NTree      int
}

// String formats the report like the Fig 9 table rows.
func (r TimingReport) String() string {
	return fmt.Sprintf("median=%.0f p1=%.3f p2=%.3f MI=%.2g (n=%d/%d)",
		r.Median, r.P1, r.P2, r.MutualInfo, r.NStash, r.NTree)
}

// AnalyzeTiming computes the report from aligned latency samples and
// victim-behaviour labels (ctrl.Result.RespLat samples + FromStash).
func AnalyzeTiming(latencies []float64, fromStash []bool) (TimingReport, error) {
	if len(latencies) != len(fromStash) {
		return TimingReport{}, fmt.Errorf("security: %d latencies vs %d labels", len(latencies), len(fromStash))
	}
	if len(latencies) == 0 {
		return TimingReport{}, fmt.Errorf("security: no samples")
	}
	sorted := make([]float64, len(latencies))
	copy(sorted, latencies)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]

	var longStash, longTree, nStash, nTree int
	for i, lat := range latencies {
		long := lat > median
		if fromStash[i] {
			nStash++
			if long {
				longStash++
			}
		} else {
			nTree++
			if long {
				longTree++
			}
		}
	}
	rep := TimingReport{Median: median, NStash: nStash, NTree: nTree}
	if nStash > 0 {
		rep.P1 = float64(longStash) / float64(nStash)
	}
	if nTree > 0 {
		rep.P2 = float64(longTree) / float64(nTree)
	}
	// With no stash-resident observations the attacker's conditional view
	// degenerates; report the unconditional ~0 information.
	if nStash == 0 || nTree == 0 {
		rep.MutualInfo = 0
		return rep, nil
	}
	rep.MutualInfo = stats.MutualInfo(rep.P1, rep.P2)
	return rep, nil
}

// LeafReport summarizes the uniformity of the attacker-visible leaf stream.
type LeafReport struct {
	N          int
	Buckets    int
	Chi2       float64
	Dof        int
	PValue     float64 // probability of a chi2 this large under uniformity
	SerialCorr float64 // lag-1 correlation of leaf values (should be ~0)
}

// Uniform reports whether the stream passes at significance alpha.
func (r LeafReport) Uniform(alpha float64) bool { return r.PValue > alpha }

// String formats the report.
func (r LeafReport) String() string {
	return fmt.Sprintf("chi2=%.1f dof=%d p=%.3f serial=%.4f over %d leaves",
		r.Chi2, r.Dof, r.PValue, r.SerialCorr, r.N)
}

// AnalyzeLeaves tests that observed leaf selections are indistinguishable
// from uniform: a chi-square goodness-of-fit over numBuckets cells plus a
// lag-1 serial-correlation check (remapping must make successive paths
// independent).
func AnalyzeLeaves(leaves []uint64, numLeaves uint64, numBuckets int) (LeafReport, error) {
	if len(leaves) == 0 || numLeaves == 0 || numBuckets < 2 {
		return LeafReport{}, fmt.Errorf("security: invalid leaf analysis input")
	}
	counts := make([]uint64, numBuckets)
	for _, l := range leaves {
		counts[int(l*uint64(numBuckets)/numLeaves)]++
	}
	chi2, dof := stats.ChiSquareUniform(counts)

	// Lag-1 serial correlation on normalized leaf values.
	var meanV float64
	vals := make([]float64, len(leaves))
	for i, l := range leaves {
		vals[i] = float64(l) / float64(numLeaves)
		meanV += vals[i]
	}
	meanV /= float64(len(vals))
	var num, den float64
	for i := range vals {
		d := vals[i] - meanV
		den += d * d
		if i > 0 {
			num += d * (vals[i-1] - meanV)
		}
	}
	corr := 0.0
	if den > 0 {
		corr = num / den
	}
	return LeafReport{
		N: len(leaves), Buckets: numBuckets,
		Chi2: chi2, Dof: dof,
		PValue:     chiSquareSF(chi2, dof),
		SerialCorr: corr,
	}, nil
}

// chiSquareSF approximates the chi-square survival function (1 - CDF) with
// the Wilson-Hilferty cube-root normal approximation, which is accurate to
// a few decimal places for dof >= 10 — all this package needs for
// pass/fail significance testing.
func chiSquareSF(x float64, dof int) float64 {
	if dof <= 0 {
		return 1
	}
	k := float64(dof)
	z := (math.Cbrt(x/k) - (1 - 2/(9*k))) / math.Sqrt(2/(9*k))
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
