package cache

import (
	"testing"
	"testing/quick"

	"palermo/internal/rng"
)

func mustCache(t *testing.T, l Level) *Cache {
	t.Helper()
	c, err := NewCache(l)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheHitMiss(t *testing.T) {
	c := mustCache(t, Level{Name: "t", Capacity: 4096, Ways: 4})
	if hit, _, _ := c.Access(1); hit {
		t.Fatal("cold access must miss")
	}
	if hit, _, _ := c.Access(1); !hit {
		t.Fatal("second access must hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 4 ways, 16 sets: lines 0,16,32,... share set 0.
	c := mustCache(t, Level{Name: "t", Capacity: 4096, Ways: 4})
	for i := uint64(0); i < 4; i++ {
		c.Access(i * 16)
	}
	c.Access(0) // refresh line 0 to MRU
	_, victim, evicted := c.Access(4 * 16)
	if !evicted || victim != 16 {
		t.Fatalf("expected LRU victim 16, got %d (evicted=%v)", victim, evicted)
	}
	if !c.Contains(0) {
		t.Fatal("refreshed line must survive")
	}
}

func TestCacheInstallNoCount(t *testing.T) {
	c := mustCache(t, Level{Name: "t", Capacity: 4096, Ways: 4})
	c.Install(5)
	if c.Hits+c.Misses != 0 {
		t.Fatal("Install must not count as an access")
	}
	if hit, _, _ := c.Access(5); !hit {
		t.Fatal("installed line must hit")
	}
}

func TestCacheInvalidConfig(t *testing.T) {
	if _, err := NewCache(Level{Capacity: 0, Ways: 4}); err == nil {
		t.Fatal("zero capacity must error")
	}
	if _, err := NewCache(Level{Capacity: 64, Ways: 4}); err == nil {
		t.Fatal("fewer lines than ways must error")
	}
}

func TestHierarchyInclusiveFill(t *testing.T) {
	h, err := NewHierarchy(Table3Hierarchy())
	if err != nil {
		t.Fatal(err)
	}
	if miss := h.Access(42); !miss {
		t.Fatal("cold reference must be an LLC miss")
	}
	for _, c := range h.Levels() {
		if !c.Contains(42) {
			t.Fatalf("%s missing line after fill", c.Level().Name)
		}
	}
	if miss := h.Access(42); miss {
		t.Fatal("hot reference must hit")
	}
	if h.Refs != 2 || h.LLCMisses != 1 {
		t.Fatalf("refs=%d misses=%d", h.Refs, h.LLCMisses)
	}
}

func TestHierarchyL3HitAfterL1Eviction(t *testing.T) {
	h, _ := NewHierarchy(Table3Hierarchy())
	h.Access(0)
	// Blow the L1 set of line 0 with conflicting lines (L1: 128 sets).
	for i := uint64(1); i <= 8; i++ {
		h.Access(i * 128)
	}
	before := h.LLCMisses
	if miss := h.Access(0); miss {
		t.Fatal("line must still hit in an outer level")
	}
	if h.LLCMisses != before {
		t.Fatal("outer-level hit must not count an LLC miss")
	}
}

func TestHierarchyInstallGroupFillsLLCOnly(t *testing.T) {
	h, _ := NewHierarchy(Table3Hierarchy())
	h.InstallGroup(1000, 8)
	llc := h.Levels()[2]
	for i := uint64(1000); i < 1008; i++ {
		if !llc.Contains(i) {
			t.Fatalf("LLC missing prefetched line %d", i)
		}
	}
	if h.Levels()[0].Contains(1000) {
		t.Fatal("prefetch must not pollute L1")
	}
	if miss := h.Access(1003); miss {
		t.Fatal("prefetched line must not miss the LLC")
	}
}

func TestHierarchyMissRateStreaming(t *testing.T) {
	h, _ := NewHierarchy(Table3Hierarchy())
	// A working set far beyond 8 MB: every reference distinct -> all miss.
	for i := uint64(0); i < 300000; i++ {
		h.Access(i * 7)
	}
	if mr := h.MissRate(); mr < 0.99 {
		t.Fatalf("streaming miss rate = %f, want ~1", mr)
	}
	// A tiny working set: almost everything hits after warmup.
	h2, _ := NewHierarchy(Table3Hierarchy())
	r := rng.New(1)
	for i := 0; i < 100000; i++ {
		h2.Access(r.Uint64n(1000))
	}
	if mr := h2.MissRate(); mr > 0.05 {
		t.Fatalf("resident working-set miss rate = %f, want ~0", mr)
	}
}

// Property: Contains agrees with Access-hit, and occupancy never exceeds
// ways per set.
func TestCacheConsistencyProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		c, _ := NewCache(Level{Name: "t", Capacity: 2048, Ways: 2})
		for _, l := range lines {
			line := uint64(l % 512)
			want := c.Contains(line)
			hit, _, _ := c.Access(line)
			if hit != want {
				return false
			}
		}
		for _, s := range c.sets {
			if len(s.tags) > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h, _ := NewHierarchy(Table3Hierarchy())
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		h.Access(r.Uint64n(1 << 20))
	}
}
