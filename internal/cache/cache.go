// Package cache models the processor-side cache hierarchy of Table III —
// 32 KB 4-way L1s, 256 KB 8-way L2s, and an 8 MB 16-way shared L3 — the
// substitute for the paper's Sniper core model (DESIGN.md §1). Its job in
// this repository is to turn program-level memory reference streams into
// the LLC miss traces the ORAM controller serves, and to model the
// prefetch-fill effect (an ORAM access that returns a group of lines
// installs all of them, so later references hit on-chip and bypass ORAM).
package cache

import "fmt"

// LineBytes is the cache line size.
const LineBytes = 64

// Level describes one cache level's geometry.
type Level struct {
	Name     string
	Capacity uint64 // bytes
	Ways     int
}

// Table3Hierarchy returns the paper's three-level hierarchy (per-core L1/L2
// plus the shared L3; single-stream simulation folds the private levels).
func Table3Hierarchy() []Level {
	return []Level{
		{Name: "L1", Capacity: 32 << 10, Ways: 4},
		{Name: "L2", Capacity: 256 << 10, Ways: 8},
		{Name: "L3", Capacity: 8 << 20, Ways: 16},
	}
}

// set is one associative set with LRU order (front = LRU victim).
type set struct {
	tags []uint64
}

// Cache is a single set-associative, write-allocate, LRU cache operating on
// line addresses.
type Cache struct {
	level Level
	nSets uint64
	sets  []set

	Hits, Misses uint64
}

// NewCache builds a cache from a level spec.
func NewCache(l Level) (*Cache, error) {
	if l.Capacity == 0 || l.Ways <= 0 {
		return nil, fmt.Errorf("cache: invalid level %+v", l)
	}
	lines := l.Capacity / LineBytes
	nSets := lines / uint64(l.Ways)
	if nSets == 0 {
		return nil, fmt.Errorf("cache: %s has fewer lines than ways", l.Name)
	}
	c := &Cache{level: l, nSets: nSets, sets: make([]set, nSets)}
	return c, nil
}

// Level returns the cache's geometry.
func (c *Cache) Level() Level { return c.level }

// Access looks line up, updating LRU state; on a miss the line is
// installed (write-allocate) and the victim line is returned with
// evicted=true if a valid line was displaced.
func (c *Cache) Access(line uint64) (hit bool, victim uint64, evicted bool) {
	s := &c.sets[line%c.nSets]
	for i, tg := range s.tags {
		if tg == line {
			c.Hits++
			s.tags = append(append(s.tags[:i], s.tags[i+1:]...), line)
			return true, 0, false
		}
	}
	c.Misses++
	if len(s.tags) >= c.level.Ways {
		victim = s.tags[0]
		s.tags = s.tags[1:]
		evicted = true
	}
	s.tags = append(s.tags, line)
	return false, victim, evicted
}

// Install inserts a line without counting an access (prefetch fill). It
// reports the displaced victim, if any.
func (c *Cache) Install(line uint64) (victim uint64, evicted bool) {
	s := &c.sets[line%c.nSets]
	for i, tg := range s.tags {
		if tg == line {
			s.tags = append(append(s.tags[:i], s.tags[i+1:]...), line)
			return 0, false
		}
	}
	if len(s.tags) >= c.level.Ways {
		victim = s.tags[0]
		s.tags = s.tags[1:]
		evicted = true
	}
	s.tags = append(s.tags, line)
	return victim, evicted
}

// Contains reports residence without touching LRU state.
func (c *Cache) Contains(line uint64) bool {
	s := &c.sets[line%c.nSets]
	for _, tg := range s.tags {
		if tg == line {
			return true
		}
	}
	return false
}

// HitRate returns hits / (hits + misses).
func (c *Cache) HitRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Hits) / float64(t)
}

// Hierarchy chains cache levels; an access walks L1→L2→L3 and reports
// whether it missed all levels (an LLC miss that the ORAM controller must
// serve). Fills install the line at every level (inclusive hierarchy).
type Hierarchy struct {
	levels []*Cache

	Refs      uint64
	LLCMisses uint64
}

// NewHierarchy builds a hierarchy from level specs (outermost last).
func NewHierarchy(levels []Level) (*Hierarchy, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("cache: empty hierarchy")
	}
	h := &Hierarchy{}
	for _, l := range levels {
		c, err := NewCache(l)
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, c)
	}
	return h, nil
}

// Levels returns the constituent caches, innermost first.
func (h *Hierarchy) Levels() []*Cache { return h.levels }

// Access performs one reference; it returns true when the reference misses
// every level and must go to (ORAM-protected) memory. The line is installed
// at all levels on the way back.
func (h *Hierarchy) Access(line uint64) (llcMiss bool) {
	h.Refs++
	for i, c := range h.levels {
		hit, _, _ := c.Access(line)
		if hit {
			// Fill the inner levels (they already installed on their miss
			// path via write-allocate in Access).
			_ = i
			return false
		}
	}
	h.LLCMisses++
	return true
}

// InstallGroup installs a prefetched group of lines into every level that
// can hold it (outer levels always; the paper's prefetch fills the LLC).
// Only the LLC is filled to avoid polluting the tiny L1/L2 with bulk
// prefetch data.
func (h *Hierarchy) InstallGroup(first uint64, n int) {
	llc := h.levels[len(h.levels)-1]
	for i := 0; i < n; i++ {
		llc.Install(first + uint64(i))
	}
}

// MissRate returns LLC misses per reference.
func (h *Hierarchy) MissRate() float64 {
	if h.Refs == 0 {
		return 0
	}
	return float64(h.LLCMisses) / float64(h.Refs)
}
