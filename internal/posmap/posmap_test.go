package posmap

import (
	"testing"
	"testing/quick"

	"palermo/internal/rng"
)

func newHier() *Hierarchy {
	h := New(1<<16, 2, rng.New(42))
	for l := 0; l < h.Levels(); l++ {
		h.Attach(l, 1<<10)
	}
	return h
}

func TestLevelSizing(t *testing.T) {
	h := New(1<<16, 2, rng.New(1))
	if h.Levels() != 3 {
		t.Fatalf("levels = %d", h.Levels())
	}
	if h.Blocks(0) != 1<<16 || h.Blocks(1) != 1<<12 || h.Blocks(2) != 1<<8 {
		t.Fatalf("blocks = %d %d %d", h.Blocks(0), h.Blocks(1), h.Blocks(2))
	}
}

func TestLevelSizingRoundsUp(t *testing.T) {
	h := New(17, 1, rng.New(1))
	if h.Blocks(1) != 2 {
		t.Fatalf("blocks(1) = %d, want 2 (ceil 17/16)", h.Blocks(1))
	}
}

func TestIndex(t *testing.T) {
	h := newHier()
	if h.Index(0, 12345) != 12345 {
		t.Fatal("level-0 index must be identity")
	}
	if h.Index(1, 12345) != 12345/16 {
		t.Fatalf("level-1 index = %d", h.Index(1, 12345))
	}
	if h.Index(2, 12345) != 12345/256 {
		t.Fatalf("level-2 index = %d", h.Index(2, 12345))
	}
}

func TestLeafStableUntilRemap(t *testing.T) {
	h := newHier()
	a := h.Leaf(0, 100)
	b := h.Leaf(0, 100)
	if a != b {
		t.Fatal("Leaf must be stable without Remap")
	}
	h.Remap(0, 100)
	c := h.Leaf(0, 100)
	// Remap draws uniformly; equality is possible but the mapping must be
	// whatever Remap returned.
	if c >= 1<<10 {
		t.Fatalf("leaf %d out of range", c)
	}
}

func TestRemapReturnsStoredValue(t *testing.T) {
	h := newHier()
	leaf := h.Remap(1, 5)
	if got := h.Leaf(1, 5); got != leaf {
		t.Fatalf("Leaf = %d, want remapped %d", got, leaf)
	}
}

func TestSetLeaf(t *testing.T) {
	h := newHier()
	h.SetLeaf(0, 7, 123)
	if h.Leaf(0, 7) != 123 {
		t.Fatal("SetLeaf not honored")
	}
}

func TestLeafRangeProperty(t *testing.T) {
	h := newHier()
	f := func(idx uint16) bool {
		return h.Leaf(0, uint64(idx)) < 1<<10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeafUniformity(t *testing.T) {
	h := New(1<<20, 0, rng.New(9))
	h.Attach(0, 16)
	counts := make([]int, 16)
	for i := uint64(0); i < 160000; i++ {
		counts[h.Leaf(0, i)]++
	}
	for leaf, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("leaf %d count %d deviates >10%% from uniform", leaf, c)
		}
	}
}

func TestPendingNesting(t *testing.T) {
	h := newHier()
	if h.Pending(0, 3) {
		t.Fatal("fresh index must not be pending")
	}
	h.MarkPending(0, 3)
	h.MarkPending(0, 3)
	h.ClearPending(0, 3)
	if !h.Pending(0, 3) {
		t.Fatal("still one pending reference")
	}
	h.ClearPending(0, 3)
	if h.Pending(0, 3) {
		t.Fatal("pending must clear at zero references")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	h := newHier()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Leaf(2, 1<<20)
}

func TestUnattachedPanics(t *testing.T) {
	h := New(1024, 1, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Leaf(0, 1)
}
