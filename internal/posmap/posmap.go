// Package posmap implements the hierarchical position-map structure of
// practical ORAM (§II-D of the paper): the leaf mapping for a 16 GB space is
// far too large for on-chip storage, so PosMap1 (tracking data blocks) is
// itself stored in a smaller ORAM, tracked by PosMap2, whose own map
// (PosMap3) finally fits on-chip.
//
// Functionally, the leaf assignments at every level live here; the protocol
// engines decide which tree accesses the *storage* of those assignments
// costs. Mappings are materialized lazily with uniformly random initial
// leaves, so full-scale spaces need memory proportional to the touched set.
package posmap

import (
	"fmt"

	"palermo/internal/rng"
)

// EntriesPerBlock is how many leaf entries one 64-byte posmap block holds
// (4-byte entries, as in the paper's 2 GB PosMap for a 16 GB space).
const EntriesPerBlock = 16

// Level names. Level 0 is the protected data space; levels 1..n-1 are
// posmap ORAMs; the final level is on-chip.
const (
	LevelData = 0
	LevelPos1 = 1
	LevelPos2 = 2
)

// Hierarchy tracks leaf assignments for the data space and every recursive
// posmap space.
type Hierarchy struct {
	levels  int      // number of spaces with leaf assignments (incl. on-chip top)
	blocks  []uint64 // logical block count per level
	leaves  []uint64 // tree leaf count per level (set by Attach)
	maps    []map[uint64]uint32
	pending []map[uint64]int // reference-counted pending PAs (Palermo)
	r       *rng.Rand
}

// New creates a hierarchy for nDataBlocks logical data blocks with the given
// number of ORAM-resident posmap levels (the paper uses 2: PosMap1 and
// PosMap2, with PosMap3 on-chip). Level block counts shrink by
// EntriesPerBlock per level.
func New(nDataBlocks uint64, posLevels int, r *rng.Rand) *Hierarchy {
	if nDataBlocks == 0 || posLevels < 0 {
		panic(fmt.Sprintf("posmap: invalid sizing n=%d levels=%d", nDataBlocks, posLevels))
	}
	h := &Hierarchy{levels: posLevels + 1, r: r}
	n := nDataBlocks
	for l := 0; l <= posLevels; l++ {
		h.blocks = append(h.blocks, n)
		h.maps = append(h.maps, make(map[uint64]uint32))
		h.pending = append(h.pending, make(map[uint64]int))
		n = (n + EntriesPerBlock - 1) / EntriesPerBlock
	}
	h.leaves = make([]uint64, posLevels+1)
	return h
}

// Levels returns the number of spaces (data + ORAM posmap levels). The
// on-chip map is the assignment table of the deepest space and has no space
// of its own.
func (h *Hierarchy) Levels() int { return h.levels }

// Blocks returns the logical block count of level l.
func (h *Hierarchy) Blocks(l int) uint64 { return h.blocks[l] }

// Attach records the tree leaf count used for level l's assignments; must be
// called before Leaf/Remap for that level.
func (h *Hierarchy) Attach(l int, numLeaves uint64) {
	h.leaves[l] = numLeaves
}

// Index returns the block index at posmap level l covering data block pa:
// pa / 16^l.
func (h *Hierarchy) Index(l int, pa uint64) uint64 {
	idx := pa
	for i := 0; i < l; i++ {
		idx /= EntriesPerBlock
	}
	return idx
}

// Leaf returns the current mapped leaf of block idx at level l,
// materializing a uniformly random assignment on first touch.
func (h *Hierarchy) Leaf(l int, idx uint64) uint64 {
	if idx >= h.blocks[l] {
		panic(fmt.Sprintf("posmap: level %d index %d out of range %d", l, idx, h.blocks[l]))
	}
	if leaf, ok := h.maps[l][idx]; ok {
		return uint64(leaf)
	}
	if h.leaves[l] == 0 {
		panic(fmt.Sprintf("posmap: level %d not attached", l))
	}
	leaf := uint32(h.r.Uint64n(h.leaves[l]))
	h.maps[l][idx] = leaf
	return uint64(leaf)
}

// Remap assigns a fresh uniformly random leaf to block idx at level l and
// returns it (RingORAM remaps on every access).
func (h *Hierarchy) Remap(l int, idx uint64) uint64 {
	if h.leaves[l] == 0 {
		panic(fmt.Sprintf("posmap: level %d not attached", l))
	}
	leaf := uint32(h.r.Uint64n(h.leaves[l]))
	h.maps[l][idx] = leaf
	return uint64(leaf)
}

// SetLeaf forces a specific assignment (PrORAM maps a whole prefetch group
// to one leaf).
func (h *Hierarchy) SetLeaf(l int, idx uint64, leaf uint64) {
	h.maps[l][idx] = uint32(leaf)
}

// State deep-copies the materialized leaf assignments of every level for a
// durable-store checkpoint. Pending marks are transient protocol state and
// are not captured; checkpoints run at quiescence.
func (h *Hierarchy) State() []map[uint64]uint32 {
	out := make([]map[uint64]uint32, h.levels)
	for l, m := range h.maps {
		cp := make(map[uint64]uint32, len(m))
		for k, v := range m {
			cp[k] = v
		}
		out[l] = cp
	}
	return out
}

// Restore replaces the leaf assignments with a previously exported State.
func (h *Hierarchy) Restore(maps []map[uint64]uint32) error {
	if len(maps) != h.levels {
		return fmt.Errorf("posmap: checkpoint has %d levels, hierarchy has %d", len(maps), h.levels)
	}
	for l, m := range maps {
		cp := make(map[uint64]uint32, len(m))
		for k, v := range m {
			if k >= h.blocks[l] {
				return fmt.Errorf("posmap: checkpoint level %d index %d out of range %d", l, k, h.blocks[l])
			}
			cp[k] = v
		}
		h.maps[l] = cp
	}
	return nil
}

// MarkPending notes an in-flight access to block idx at level l (Palermo
// Algorithm 2 marks PAs pending between remap and eviction). Calls nest.
func (h *Hierarchy) MarkPending(l int, idx uint64) {
	h.pending[l][idx]++
}

// ClearPending releases one pending reference.
func (h *Hierarchy) ClearPending(l int, idx uint64) {
	c := h.pending[l][idx]
	if c <= 1 {
		delete(h.pending[l], idx)
		return
	}
	h.pending[l][idx] = c - 1
}

// Pending reports whether block idx at level l has an in-flight access.
func (h *Hierarchy) Pending(l int, idx uint64) bool {
	return h.pending[l][idx] > 0
}
