// Package analytic implements the paper's back-of-envelope bandwidth model
// from §III-A, used there to sanity-check the cycle-accurate simulation:
//
//	"The DRAM request latency for row-hits and row-misses are tCL and
//	 (tCL+tRP+tRCD). ... the average bandwidth we find is
//	 64B × 21.1 / 46.9ns = 28.8 GB/s ... close to 28.1% utilization."
//
// This repository uses it the same way: the simulator's measured bandwidth
// must agree with the estimate computed from its own occupancy/latency
// statistics (see the validation test in the root package).
package analytic

import "palermo/internal/dram"

// ExpectedServiceNS returns the average DRAM service latency implied by a
// row-hit rate under the given timing configuration, in nanoseconds,
// following the paper's two-class model (hits pay tCL, everything else
// pays tCL+tRP+tRCD), plus the burst transfer.
func ExpectedServiceNS(cfg dram.Config, rowHitRate float64) float64 {
	tick := 0.625
	hit := float64(cfg.TCL+cfg.TBurst) * tick
	miss := float64(cfg.TCL+cfg.TRP+cfg.TRCD+cfg.TBurst) * tick
	return rowHitRate*hit + (1-rowHitRate)*miss
}

// BandwidthGBs returns the Little's-law bandwidth estimate: outstanding
// requests each delivering 64 bytes per service latency.
func BandwidthGBs(avgOutstanding, serviceNS float64) float64 {
	if serviceNS <= 0 {
		return 0
	}
	return dram.BlockBytes * avgOutstanding / serviceNS // bytes/ns == GB/s
}

// UtilizationEstimate combines the two against the configured peak, giving
// the paper's §III-A utilization figure from measured occupancy and row-hit
// statistics.
func UtilizationEstimate(cfg dram.Config, avgOutstanding, rowHitRate float64) float64 {
	bw := BandwidthGBs(avgOutstanding, ExpectedServiceNS(cfg, rowHitRate))
	return bw / cfg.PeakBandwidthGBs()
}

// PaperExample reproduces the exact numbers quoted in §III-A: occupancy
// 21.1, 48.2% row hits, DDR4-3200 timings.
func PaperExample() (bandwidthGBs, utilization float64) {
	cfg := dram.DefaultConfig()
	service := ExpectedServiceNS(cfg, 0.482)
	bw := BandwidthGBs(21.1, service)
	return bw, bw / cfg.PeakBandwidthGBs()
}

// LittleLawError measures the simulator's internal consistency: by
// Little's law, the time-averaged outstanding read count must equal read
// throughput times average read latency. Returns the relative error
// |L − λW| / L; a correct steady-state simulation keeps this near zero.
func LittleLawError(avgReadsOutstanding float64, reads uint64, elapsedTicks uint64, avgReadLatencyTicks float64) float64 {
	if avgReadsOutstanding == 0 || elapsedTicks == 0 {
		return 0
	}
	lambda := float64(reads) / float64(elapsedTicks)
	predicted := lambda * avgReadLatencyTicks
	return abs(avgReadsOutstanding-predicted) / avgReadsOutstanding
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
