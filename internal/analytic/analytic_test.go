package analytic

import (
	"testing"

	"palermo/internal/dram"
)

func TestExpectedServiceNS(t *testing.T) {
	cfg := dram.DefaultConfig()
	allHit := ExpectedServiceNS(cfg, 1.0)
	allMiss := ExpectedServiceNS(cfg, 0.0)
	if allHit >= allMiss {
		t.Fatal("hits must be faster than misses")
	}
	// tCL+tBurst = 26 ticks = 16.25 ns.
	if allHit < 16 || allHit > 17 {
		t.Fatalf("all-hit latency = %v ns", allHit)
	}
	// tCL+tRP+tRCD+tBurst = 70 ticks = 43.75 ns.
	if allMiss < 43 || allMiss > 44 {
		t.Fatalf("all-miss latency = %v ns", allMiss)
	}
}

func TestPaperExampleBallpark(t *testing.T) {
	// §III-A quotes 28.8 GB/s and ~28% utilization for occupancy 21.1 at
	// 48.2% row hits. Our timing constants differ slightly from theirs
	// (they include queueing in the 46.9 ns), so accept the ballpark.
	bw, util := PaperExample()
	if bw < 25 || bw > 50 {
		t.Fatalf("paper example bandwidth = %.1f GB/s, want ~30-45", bw)
	}
	if util < 0.25 || util > 0.5 {
		t.Fatalf("paper example utilization = %.2f", util)
	}
}

func TestBandwidthZeroGuard(t *testing.T) {
	if BandwidthGBs(10, 0) != 0 {
		t.Fatal("zero latency must not divide")
	}
}

func TestUtilizationMonotoneInOccupancy(t *testing.T) {
	cfg := dram.DefaultConfig()
	lo := UtilizationEstimate(cfg, 10, 0.5)
	hi := UtilizationEstimate(cfg, 30, 0.5)
	if hi <= lo {
		t.Fatal("more outstanding requests must estimate more bandwidth")
	}
}
