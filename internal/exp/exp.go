// Package exp is the experiment sweep runner: it executes independent
// simulation cells (protocol × workload × sweep-point) across a worker
// pool with deterministic, order-stable result collection.
//
// Every cell of the paper's evaluation owns its private sim.Engine, DRAM
// model, and seeded RNG, so a sweep is embarrassingly parallel; the only
// requirements for reproducibility are that (a) each cell's configuration
// is a pure function of its grid coordinates, and (b) results are consumed
// in grid order, never completion order. Map and Map2 enforce (b) by
// writing each cell's result into its own slot; the caller's aggregation
// loop then observes exactly the sequence a serial run would have
// produced, making parallel sweeps bit-identical to Workers=1.
package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner configures sweep execution. The zero value uses every core.
type Runner struct {
	// Workers is the worker-pool size: 0 (or negative) means
	// runtime.GOMAXPROCS(0); 1 forces fully serial in-order execution,
	// which is the reference for determinism tests.
	Workers int
}

// workers resolves the effective pool size for n cells.
func (r Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Map runs fn(i) for every i in [0, n) on the runner's worker pool and
// returns the results indexed by i. If any cell fails, the error of the
// lowest-indexed failing cell is returned (matching what a serial loop
// would have reported); once a failure is observed, workers stop claiming
// new cells.
func Map[T any](r Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if r.workers(n) == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for k := r.workers(n); k > 0; k-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				out[i], errs[i] = fn(i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Map2 runs fn(i, j) over the rows×cols grid and returns results indexed
// [i][j]. Cells are scheduled row-major; error selection follows row-major
// order like Map.
func Map2[T any](r Runner, rows, cols int, fn func(i, j int) (T, error)) ([][]T, error) {
	flat, err := Map(r, rows*cols, func(k int) (T, error) {
		return fn(k/cols, k%cols)
	})
	out := make([][]T, rows)
	for i := range out {
		out[i] = flat[i*cols : (i+1)*cols]
	}
	return out, err
}
