package exp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderStable(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(Runner{Workers: workers}, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(Runner{}, 0, func(i int) (int, error) { return 0, errors.New("boom") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapLowestIndexedError(t *testing.T) {
	// Cells 30 and 60 both fail; the reported error must be cell 30's, the
	// one a serial loop would have hit first, regardless of worker count.
	for _, workers := range []int{1, 4} {
		_, err := Map(Runner{Workers: workers}, 100, func(i int) (int, error) {
			if i == 30 || i == 60 {
				return 0, fmt.Errorf("cell %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "cell 30" {
			t.Fatalf("workers=%d: err = %v, want cell 30", workers, err)
		}
	}
}

func TestMapUsesWorkers(t *testing.T) {
	// Rendezvous: every cell blocks until a second worker has entered fn,
	// so the Map can only complete if at least two workers run cells
	// concurrently. A blocked worker parks its goroutine, so with
	// Workers: 4 the runtime is free to schedule another one even on a
	// single core; the timeout arm only trips if Map degenerated to a
	// single worker.
	var entered atomic.Int64
	ready := make(chan struct{})
	_, err := Map(Runner{Workers: 4}, 64, func(i int) (int, error) {
		if entered.Add(1) == 2 {
			close(ready)
		}
		select {
		case <-ready:
			return i, nil
		case <-time.After(10 * time.Second):
			return 0, errors.New("no second concurrent worker entered within 10s")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMap2Shape(t *testing.T) {
	got, err := Map2(Runner{Workers: 3}, 4, 5, func(i, j int) (string, error) {
		return fmt.Sprintf("%d.%d", i, j), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range got {
		for j := range got[i] {
			if want := fmt.Sprintf("%d.%d", i, j); got[i][j] != want {
				t.Fatalf("[%d][%d] = %q, want %q", i, j, got[i][j], want)
			}
		}
	}
}
