// Package sim provides a small discrete-event simulation kernel shared by
// the DRAM model and the ORAM timing controllers.
//
// All simulated components run in a single clock domain of 0.625 ns ticks:
// the Palermo controller clocks at 1.6 GHz and the DDR4-3200 command clock
// at 1600 MHz, which have identical periods (see DESIGN.md §4.2).
package sim

import "container/heap"

// Tick is a point in simulated time, measured in 0.625 ns controller cycles.
type Tick uint64

// TickNS converts a tick count to nanoseconds.
func TickNS(t Tick) float64 { return float64(t) * 0.625 }

// Event is a callback scheduled to run at a particular tick.
type event struct {
	at  Tick
	seq uint64 // tie-breaker: FIFO among events at the same tick
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() (Tick, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now    Tick
	seq    uint64
	events eventHeap
}

// Now returns the current simulated time.
func (e *Engine) Now() Tick { return e.now }

// At schedules fn to run at absolute tick t. Scheduling in the past runs fn
// at the current time (on the next Run step), never before already-pending
// events at earlier ticks.
func (e *Engine) At(t Tick, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Tick, fn func()) { e.At(e.now+d, fn) }

// Step runs the next pending event, advancing the clock. It reports whether
// an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= limit. Events scheduled beyond
// limit remain pending. It reports whether any pending events remain.
func (e *Engine) RunUntil(limit Tick) bool {
	for {
		at, ok := e.events.peek()
		if !ok {
			return false
		}
		if at > limit {
			return true
		}
		e.Step()
	}
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Signal is a one-shot dependency token: callbacks registered with Wait run
// when Fire is called (immediately if already fired). It is the building
// block for protocol dependencies (west→east PE sibling clears, CP responses,
// tree-write locks).
type Signal struct {
	eng     *Engine
	fired   bool
	firedAt Tick
	waiters []func()
}

// NewSignal creates a Signal bound to the engine.
func NewSignal(eng *Engine) *Signal { return &Signal{eng: eng} }

// NewFiredSignal creates a Signal that is already fired (a satisfied
// dependency).
func NewFiredSignal(eng *Engine) *Signal {
	return &Signal{eng: eng, fired: true, firedAt: eng.Now()}
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// FiredAt returns the tick at which the signal fired; valid only if Fired.
func (s *Signal) FiredAt() Tick { return s.firedAt }

// Fire marks the dependency satisfied and schedules all waiters at the
// current tick. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	s.firedAt = s.eng.Now()
	for _, fn := range s.waiters {
		s.eng.At(s.eng.Now(), fn)
	}
	s.waiters = nil
}

// Wait registers fn to run once the signal fires. If the signal has already
// fired, fn is scheduled immediately.
func (s *Signal) Wait(fn func()) {
	if s.fired {
		s.eng.At(s.eng.Now(), fn)
		return
	}
	s.waiters = append(s.waiters, fn)
}

// WaitAll invokes fn after every signal in deps has fired. An empty deps
// slice schedules fn immediately.
func WaitAll(eng *Engine, deps []*Signal, fn func()) {
	n := 0
	for _, d := range deps {
		if !d.Fired() {
			n++
		}
	}
	if n == 0 {
		eng.At(eng.Now(), fn)
		return
	}
	remaining := n
	for _, d := range deps {
		if d.Fired() {
			continue
		}
		d.Wait(func() {
			remaining--
			if remaining == 0 {
				fn()
			}
		})
	}
}

// Batch is a countdown barrier: Done is called once per expected completion
// and the attached signal fires when the count reaches zero. A Batch with
// zero expected completions fires immediately upon Arm.
type Batch struct {
	remaining int
	sig       *Signal
}

// NewBatch creates a batch expecting n completions.
func NewBatch(eng *Engine, n int) *Batch {
	b := &Batch{remaining: n, sig: NewSignal(eng)}
	if n == 0 {
		b.sig.Fire()
	}
	return b
}

// Done records one completion.
func (b *Batch) Done() {
	if b.remaining <= 0 {
		return
	}
	b.remaining--
	if b.remaining == 0 {
		b.sig.Fire()
	}
}

// Sig returns the signal that fires when the batch completes.
func (b *Batch) Sig() *Signal { return b.sig }
