// Package sim provides a small discrete-event simulation kernel shared by
// the DRAM model and the ORAM timing controllers.
//
// All simulated components run in a single clock domain of 0.625 ns ticks:
// the Palermo controller clocks at 1.6 GHz and the DDR4-3200 command clock
// at 1600 MHz, which have identical periods (see DESIGN.md §4.2).
//
// The kernel is allocation-lean by design: the event queue is a concrete
// binary heap (no container/heap interface boxing), Signals and Batches are
// carved from engine-owned slabs, and drained waiter slices are recycled
// through a free list. A full sweep dispatches tens of millions of events,
// so per-event allocations dominate harness overhead if left unchecked
// (DESIGN.md §4.2). An Engine and everything allocated from it must be
// confined to one goroutine; the sweep runner (internal/exp) gives each
// simulation cell its own Engine.
package sim

// Tick is a point in simulated time, measured in 0.625 ns controller cycles.
type Tick uint64

// TickNS converts a tick count to nanoseconds.
func TickNS(t Tick) float64 { return float64(t) * 0.625 }

// event is a callback scheduled to run at a particular tick.
type event struct {
	at  Tick
	seq uint64 // tie-breaker: FIFO among events at the same tick
	fn  func()
}

// before reports whether a sorts strictly before b: earlier tick first,
// FIFO within a tick.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// slabChunk is how many Signals/Batches one slab allocation amortizes over.
const slabChunk = 64

// Engine is a discrete-event simulator. The zero value is ready to use.
// An Engine is not safe for concurrent use; run one Engine per goroutine.
type Engine struct {
	now    Tick
	seq    uint64
	events []event // concrete binary min-heap ordered by event.before

	sigSlab    []Signal   // bump-allocated backing store for NewSignal
	batchSlab  []Batch    // bump-allocated backing store for NewBatch
	waiterPool [][]func() // recycled waiter slices, returned by Signal.Fire
}

// Now returns the current simulated time.
func (e *Engine) Now() Tick { return e.now }

// push inserts ev into the heap (sift-up).
func (e *Engine) push(ev event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].before(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.events = h
}

// pop removes and returns the minimum event (sift-down).
func (e *Engine) pop() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the closure to the GC
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].before(h[l]) {
			m = r
		}
		if !h[m].before(h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e.events = h
	return top
}

// At schedules fn to run at absolute tick t. Scheduling in the past runs fn
// at the current time (on the next Run step), never before already-pending
// events at earlier ticks.
func (e *Engine) At(t Tick, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Tick, fn func()) { e.At(e.now+d, fn) }

// Step runs the next pending event, advancing the clock. It reports whether
// an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= limit. Events scheduled beyond
// limit remain pending. It reports whether any pending events remain.
func (e *Engine) RunUntil(limit Tick) bool {
	for {
		if len(e.events) == 0 {
			return false
		}
		if e.events[0].at > limit {
			return true
		}
		e.Step()
	}
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// allocSignal carves a Signal from the engine's slab.
func (e *Engine) allocSignal() *Signal {
	if len(e.sigSlab) == 0 {
		e.sigSlab = make([]Signal, slabChunk)
	}
	s := &e.sigSlab[0]
	e.sigSlab = e.sigSlab[1:]
	return s
}

// allocBatch carves a Batch from the engine's slab.
func (e *Engine) allocBatch() *Batch {
	if len(e.batchSlab) == 0 {
		e.batchSlab = make([]Batch, slabChunk)
	}
	b := &e.batchSlab[0]
	e.batchSlab = e.batchSlab[1:]
	return b
}

// getWaiters hands out a recycled waiter slice, if one is available.
func (e *Engine) getWaiters() []func() {
	if n := len(e.waiterPool); n > 0 {
		w := e.waiterPool[n-1]
		e.waiterPool = e.waiterPool[:n-1]
		return w
	}
	return nil
}

// putWaiters returns a drained waiter slice to the pool.
func (e *Engine) putWaiters(w []func()) {
	for i := range w {
		w[i] = nil
	}
	if cap(w) > 0 && len(e.waiterPool) < 64 {
		e.waiterPool = append(e.waiterPool, w[:0])
	}
}

// Signal is a one-shot dependency token: callbacks registered with Wait run
// when Fire is called (immediately if already fired). It is the building
// block for protocol dependencies (west→east PE sibling clears, CP responses,
// tree-write locks).
type Signal struct {
	eng     *Engine
	fired   bool
	firedAt Tick
	waiters []func()
}

// NewSignal creates a Signal bound to the engine.
func NewSignal(eng *Engine) *Signal {
	s := eng.allocSignal()
	s.eng = eng
	return s
}

// NewFiredSignal creates a Signal that is already fired (a satisfied
// dependency).
func NewFiredSignal(eng *Engine) *Signal {
	s := NewSignal(eng)
	s.fired = true
	s.firedAt = eng.Now()
	return s
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// FiredAt returns the tick at which the signal fired; valid only if Fired.
func (s *Signal) FiredAt() Tick { return s.firedAt }

// Fire marks the dependency satisfied and schedules all waiters at the
// current tick. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	s.firedAt = s.eng.Now()
	for _, fn := range s.waiters {
		s.eng.At(s.eng.Now(), fn)
	}
	if s.waiters != nil {
		s.eng.putWaiters(s.waiters)
		s.waiters = nil
	}
}

// Wait registers fn to run once the signal fires. If the signal has already
// fired, fn is scheduled immediately.
func (s *Signal) Wait(fn func()) {
	if s.fired {
		s.eng.At(s.eng.Now(), fn)
		return
	}
	if s.waiters == nil {
		s.waiters = s.eng.getWaiters()
	}
	s.waiters = append(s.waiters, fn)
}

// WaitAll invokes fn after every signal in deps has fired. An empty deps
// slice schedules fn immediately.
func WaitAll(eng *Engine, deps []*Signal, fn func()) {
	n := 0
	for _, d := range deps {
		if !d.Fired() {
			n++
		}
	}
	if n == 0 {
		eng.At(eng.Now(), fn)
		return
	}
	remaining := n
	for _, d := range deps {
		if d.Fired() {
			continue
		}
		d.Wait(func() {
			remaining--
			if remaining == 0 {
				fn()
			}
		})
	}
}

// Batch is a countdown barrier: Done is called once per expected completion
// and the attached signal fires when the count reaches zero. A Batch with
// zero expected completions fires immediately upon Arm.
type Batch struct {
	remaining int
	sig       *Signal
}

// NewBatch creates a batch expecting n completions.
func NewBatch(eng *Engine, n int) *Batch {
	b := eng.allocBatch()
	b.remaining = n
	b.sig = NewSignal(eng)
	if n == 0 {
		b.sig.Fire()
	}
	return b
}

// Done records one completion.
func (b *Batch) Done() {
	if b.remaining <= 0 {
		return
	}
	b.remaining--
	if b.remaining == 0 {
		b.sig.Fire()
	}
}

// Sig returns the signal that fires when the batch completes.
func (b *Batch) Sig() *Signal { return b.sig }
