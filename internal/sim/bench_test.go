package sim

import "testing"

// BenchmarkEngineSchedule measures the schedule/dispatch hot path: every
// DRAM command and protocol phase in a run goes through Engine.At and
// Engine.Step, so allocs/op here multiply by tens of millions of events in
// a full sweep.
func BenchmarkEngineSchedule(b *testing.B) {
	const events = 1024
	nop := func() {}
	var eng Engine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < events; j++ {
			eng.After(Tick(uint64(j)*2654435761%977), nop)
		}
		eng.Run()
	}
}

// BenchmarkEngineNested mixes scheduling and execution the way controllers
// do: each executed event schedules a follow-up until a depth budget runs
// out, keeping the heap occupied while it is mutated.
func BenchmarkEngineNested(b *testing.B) {
	var eng Engine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var spawn func(depth int) func()
		spawn = func(depth int) func() {
			return func() {
				if depth > 0 {
					eng.After(3, spawn(depth-1))
					eng.After(7, spawn(depth-1))
				}
			}
		}
		eng.After(1, spawn(6))
		eng.Run()
	}
}

// BenchmarkSignalFire measures the dependency-token path (Wait/Fire), which
// the mesh controller exercises once per protocol phase per PE.
func BenchmarkSignalFire(b *testing.B) {
	nop := func() {}
	var eng Engine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			s := NewSignal(&eng)
			for k := 0; k < 4; k++ {
				s.Wait(nop)
			}
			s.Fire()
		}
		eng.Run()
	}
}

// BenchmarkBatch measures the countdown-barrier path used for every DRAM
// read burst.
func BenchmarkBatch(b *testing.B) {
	nop := func() {}
	var eng Engine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			bt := NewBatch(&eng, 8)
			bt.Sig().Wait(nop)
			for k := 0; k < 8; k++ {
				bt.Done()
			}
		}
		eng.Run()
	}
}
