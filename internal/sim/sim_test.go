package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(5, func() { got = append(got, 5) })
	e.At(1, func() { got = append(got, 1) })
	e.At(3, func() { got = append(got, 3) })
	e.Run()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %d, want 5", e.Now())
	}
}

func TestEngineFIFOWithinTick(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-tick events not FIFO: %v", got)
		}
	}
}

func TestEnginePastScheduling(t *testing.T) {
	var e Engine
	ran := false
	e.At(10, func() {
		e.At(3, func() { ran = true }) // in the past; must clamp to now
	})
	e.Run()
	if !ran {
		t.Fatal("past-scheduled event did not run")
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.After(1, rec)
		}
	}
	e.At(0, rec)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("Now = %d, want 99", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var got []Tick
	for _, at := range []Tick{2, 4, 6, 8} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	more := e.RunUntil(5)
	if !more {
		t.Fatal("RunUntil(5) should report pending events")
	}
	if len(got) != 2 {
		t.Fatalf("ran %d events by tick 5, want 2", len(got))
	}
	more = e.RunUntil(100)
	if more {
		t.Fatal("RunUntil(100) should drain the queue")
	}
	if len(got) != 4 {
		t.Fatalf("ran %d events total, want 4", len(got))
	}
}

func TestSignalFireBefore(t *testing.T) {
	var e Engine
	s := NewSignal(&e)
	ran := false
	s.Wait(func() { ran = true })
	if ran {
		t.Fatal("waiter ran before fire")
	}
	s.Fire()
	e.Run()
	if !ran {
		t.Fatal("waiter did not run after fire")
	}
}

func TestSignalFireAfter(t *testing.T) {
	var e Engine
	s := NewSignal(&e)
	s.Fire()
	ran := false
	s.Wait(func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("waiter on fired signal did not run")
	}
}

func TestSignalDoubleFire(t *testing.T) {
	var e Engine
	s := NewSignal(&e)
	n := 0
	s.Wait(func() { n++ })
	s.Fire()
	s.Fire()
	e.Run()
	if n != 1 {
		t.Fatalf("waiter ran %d times, want 1", n)
	}
}

func TestSignalFiredAt(t *testing.T) {
	var e Engine
	s := NewSignal(&e)
	e.At(42, func() { s.Fire() })
	e.Run()
	if !s.Fired() || s.FiredAt() != 42 {
		t.Fatalf("FiredAt = %d, want 42", s.FiredAt())
	}
}

func TestWaitAll(t *testing.T) {
	var e Engine
	a, b, c := NewSignal(&e), NewSignal(&e), NewFiredSignal(&e)
	ran := false
	WaitAll(&e, []*Signal{a, b, c}, func() { ran = true })
	e.At(1, func() { a.Fire() })
	e.RunUntil(1)
	e.Run()
	if ran {
		t.Fatal("WaitAll fired before all deps")
	}
	b.Fire()
	e.Run()
	if !ran {
		t.Fatal("WaitAll did not fire after all deps")
	}
}

func TestWaitAllEmpty(t *testing.T) {
	var e Engine
	ran := false
	WaitAll(&e, nil, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("WaitAll with no deps must fire")
	}
}

func TestBatch(t *testing.T) {
	var e Engine
	b := NewBatch(&e, 3)
	ran := false
	b.Sig().Wait(func() { ran = true })
	b.Done()
	b.Done()
	e.Run()
	if ran {
		t.Fatal("batch fired early")
	}
	b.Done()
	e.Run()
	if !ran {
		t.Fatal("batch did not fire")
	}
	b.Done() // extra Done must be harmless
}

func TestBatchZero(t *testing.T) {
	var e Engine
	b := NewBatch(&e, 0)
	if !b.Sig().Fired() {
		t.Fatal("zero batch must fire on creation")
	}
}

// Property: for any set of scheduled times, events execute in sorted order
// and the clock never moves backwards.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var e Engine
		var ran []Tick
		for _, tm := range times {
			at := Tick(tm)
			e.At(at, func() { ran = append(ran, e.Now()) })
		}
		e.Run()
		if len(ran) != len(times) {
			return false
		}
		sorted := make([]uint16, len(times))
		copy(sorted, times)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, v := range ran {
			if v != Tick(sorted[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTickNS(t *testing.T) {
	if got := TickNS(1600); got != 1000 {
		t.Fatalf("1600 ticks = %v ns, want 1000 (1.6 GHz)", got)
	}
}
