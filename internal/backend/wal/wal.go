// Package wal is the durable block-state backend: a CRC-framed append-only
// log of sealed writes with group-committed fsync, compacted periodically
// into an atomically-replaced snapshot file, and replayed on open so a
// store survives restarts and crashes.
//
// On-disk layout (one directory per shard):
//
//	snapshot   magic | seq | metaEpoch | metaLen | meta | nBlocks |
//	           nBlocks × (local, epoch, ct[64]) | crc32(all preceding)
//	wal.log    magic | seq | crc32(header), then records:
//	           local(8) | epoch(8) | ct(64) | crc32(record)   = 84 bytes
//
// Both files are written through temp-file + rename, so each is either the
// old version or the new one, never a torn mixture. The log's seq ties it
// to the snapshot it follows: a crash between snapshot rename and log
// reset leaves an older-seq log whose records are already folded into the
// snapshot, and recovery discards it instead of double-applying.
//
// Recovery on Open loads the snapshot (if any), then replays log records
// until the first short or CRC-failing record — the torn group-commit
// tail a crash can leave — and truncates the file there, folding in a
// durable epoch reservation covering the discarded records. A CRC failure
// *followed by intact records* is storage corruption rather than a crash
// tail, and Open refuses it instead of silently dropping the acknowledged
// writes behind it. What a crash loses is therefore exactly the writes
// the group-commit policy had not yet fsynced, and nothing else.
//
// The log records only (local id, ciphertext, epoch) in access order —
// precisely the view the untrusted storage of the paper's §VI threat model
// already observes — so durability adds no leakage (DESIGN.md §7). The
// snapshot's metadata blob is controller state and arrives pre-sealed.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"palermo/internal/backend"
	"palermo/internal/crypt"
)

const (
	logMagic  = "PALWAL01"
	snapMagic = "PALSNP01"

	headerSize = 8 + 8 + 4                    // magic, seq, crc
	recordSize = 8 + 8 + crypt.BlockBytes + 4 // local, epoch, ct, crc
	logName    = "wal.log"
	snapName   = "snapshot"

	// DefaultGroupCommit is how many appended records share one fsync.
	DefaultGroupCommit = 32
)

// Options tunes a WAL backend.
type Options struct {
	// GroupCommit is the number of Put records per fsync batch (default
	// DefaultGroupCommit; 1 = synchronous durability for every write).
	GroupCommit int
}

// MaxGroupCommit caps the fsync batch (and with it the write buffer and
// the worst-case crash-loss window).
const MaxGroupCommit = 1 << 16

func (o *Options) defaults() {
	if o.GroupCommit <= 0 {
		o.GroupCommit = DefaultGroupCommit
	}
	if o.GroupCommit > MaxGroupCommit {
		o.GroupCommit = MaxGroupCommit
	}
}

// Backend is a durable block-state backend over one directory.
type Backend struct {
	dir string
	opt Options

	blocks map[uint64]backend.Sealed

	meta      []byte // sealed metadata blob of the last checkpoint (nil if none)
	metaEpoch uint64
	tail      []backend.TailOp // log records recovered after the last checkpoint
	seq       uint64           // checkpoint sequence the current log follows

	logF    *os.File
	lockF   *os.File // holds the directory's exclusive flock
	bw      *bufio.Writer
	pending int   // records appended since the last fsync
	closed  bool  // Close called, or the backend wedged mid-operation
	failErr error // the wedging error, surfaced again by Close
}

// Open creates or recovers the backend rooted at dir. The directory is
// exclusively locked for the backend's lifetime; a second concurrent Open
// (same or different process) fails instead of corrupting the live log.
func Open(dir string, opt Options) (*Backend, error) {
	opt.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	b := &Backend{dir: dir, opt: opt, lockF: lock, blocks: make(map[uint64]backend.Sealed)}
	fail := func(err error) (*Backend, error) {
		b.unlock()
		return nil, err
	}
	if err := b.loadSnapshot(); err != nil {
		return fail(err)
	}
	if err := b.recoverLog(); err != nil {
		return fail(err)
	}
	f, err := os.OpenFile(b.path(logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	b.logF = f
	b.bw = bufio.NewWriterSize(f, b.opt.GroupCommit*recordSize+recordSize)
	return b, nil
}

// unlock releases the directory lock (closing the fd drops the flock).
func (b *Backend) unlock() {
	if b.lockF != nil {
		b.lockF.Close()
		b.lockF = nil
	}
}

func (b *Backend) path(name string) string { return filepath.Join(b.dir, name) }

// Get implements backend.Backend.
func (b *Backend) Get(local uint64) (backend.Sealed, bool) {
	sb, ok := b.blocks[local]
	return sb, ok
}

// Len implements backend.Backend.
func (b *Backend) Len() int { return len(b.blocks) }

// Durable implements backend.Backend.
func (b *Backend) Durable() bool { return true }

// Recovered implements backend.Backend.
func (b *Backend) Recovered() ([]byte, uint64, []backend.TailOp) {
	return b.meta, b.metaEpoch, b.tail
}

// closedErr is the failure every operation on a closed backend returns:
// the wedging root cause when there is one, a plain closed error else.
func (b *Backend) closedErr() error {
	if b.failErr != nil {
		return b.failErr
	}
	return fmt.Errorf("wal: backend is closed")
}

// Put implements backend.Backend: append a CRC-framed record and fsync
// once every GroupCommit records.
func (b *Backend) Put(local uint64, sb backend.Sealed) error {
	if b.closed {
		return b.closedErr()
	}
	if len(sb.Ct) != crypt.BlockBytes {
		return fmt.Errorf("wal: ciphertext must be %d bytes, got %d", crypt.BlockBytes, len(sb.Ct))
	}
	if local == backend.EpochReserveLocal {
		return fmt.Errorf("wal: block id %d is reserved", local)
	}
	if err := b.appendRecord(local, sb.Epoch, sb.Ct); err != nil {
		return err
	}
	b.pending++
	if b.pending >= b.opt.GroupCommit {
		if err := b.Flush(); err != nil {
			// Leave the in-memory map untouched: the engine above has not
			// applied this write either, so live state stays consistent
			// even though the record may land after a restart.
			return err
		}
	}
	b.blocks[local] = sb
	return nil
}

// frameRecord builds one CRC-framed log record.
func frameRecord(local, epoch uint64, ct []byte) [recordSize]byte {
	var rec [recordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], local)
	binary.LittleEndian.PutUint64(rec[8:16], epoch)
	copy(rec[16:16+crypt.BlockBytes], ct)
	crc := crc32.ChecksumIEEE(rec[:recordSize-4])
	binary.LittleEndian.PutUint32(rec[recordSize-4:], crc)
	return rec
}

// appendRecord frames and buffers one log record.
func (b *Backend) appendRecord(local, epoch uint64, ct []byte) error {
	rec := frameRecord(local, epoch, ct)
	if _, err := b.bw.Write(rec[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Flush implements backend.Backend: drain the buffer and fsync the log.
// On a closed or wedged backend it fails like Put does — returning nil
// would let a caller believe buffered records reached stable storage.
// Any flush or fsync failure wedges the backend: after a failed fsync
// the kernel may discard dirty pages, and records already handed to the
// page cache could otherwise become durable later even though their
// writes were reported failed — acknowledgments and disk state would
// diverge (the classic fsync-retry trap).
func (b *Backend) Flush() error {
	if b.closed {
		return b.closedErr()
	}
	if err := b.bw.Flush(); err != nil {
		return b.fail(fmt.Errorf("wal: %w", err))
	}
	if err := b.logF.Sync(); err != nil {
		return b.fail(fmt.Errorf("wal: %w", err))
	}
	b.pending = 0
	return nil
}

// Checkpoint implements backend.Backend: write a fresh snapshot of every
// stored block plus the sealed metadata blob, then reset the log. The
// snapshot lands first (temp + rename); only then is the log replaced with
// an empty one carrying the new sequence number.
func (b *Backend) Checkpoint(meta []byte, metaEpoch uint64) error {
	if b.closed {
		return b.closedErr()
	}
	// Durably reserve the blob's sealing epoch in the *current* log before
	// any sealed snapshot byte reaches disk: if we crash mid-checkpoint,
	// recovery folds the reservation in and the restored sealer can never
	// re-issue this checkpoint's IV for different plaintext.
	if err := b.appendRecord(backend.EpochReserveLocal, metaEpoch, make([]byte, crypt.BlockBytes)); err != nil {
		return err
	}
	if err := b.Flush(); err != nil {
		return err
	}
	newSeq := b.seq + 1
	if err := b.writeSnapshot(newSeq, meta, metaEpoch); err != nil {
		return err
	}
	// The snapshot now carries newSeq. If the log cannot be swapped to
	// match, the backend must wedge: appending to the old-seq log would
	// acknowledge writes that a later recovery discards as pre-snapshot.
	if err := b.resetLog(newSeq); err != nil {
		return b.fail(err)
	}
	b.seq = newSeq
	b.meta = append([]byte(nil), meta...)
	b.metaEpoch = metaEpoch
	b.tail = nil
	return nil
}

// Close implements backend.Backend: flush, fsync, release the log and the
// directory lock. Idempotent; a backend that wedged mid-operation
// surfaces its wedging error here too.
func (b *Backend) Close() error {
	if b.closed {
		return b.failErr
	}
	err := b.Flush()
	if b.closed {
		// Flush wedged the backend and already released every resource.
		return b.failErr
	}
	b.closed = true
	if cerr := b.logF.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	b.failErr = err // error-idempotent: a retried Close reports the same outcome
	b.unlock()
	return err
}

// writeSnapshot persists the full block set + metadata atomically.
func (b *Backend) writeSnapshot(seq uint64, meta []byte, metaEpoch uint64) error {
	tmp := b.path(snapName + ".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	crc := crc32.NewIEEE()
	w := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<16)

	put64 := func(v uint64) error {
		var u [8]byte
		binary.LittleEndian.PutUint64(u[:], v)
		_, err := w.Write(u[:])
		return err
	}
	put32 := func(v uint32) error {
		var u [4]byte
		binary.LittleEndian.PutUint32(u[:], v)
		_, err := w.Write(u[:])
		return err
	}

	writeErr := func() error {
		if _, err := w.Write([]byte(snapMagic)); err != nil {
			return err
		}
		if err := put64(seq); err != nil {
			return err
		}
		if err := put64(metaEpoch); err != nil {
			return err
		}
		if err := put32(uint32(len(meta))); err != nil {
			return err
		}
		if _, err := w.Write(meta); err != nil {
			return err
		}
		if err := put64(uint64(len(b.blocks))); err != nil {
			return err
		}
		for local, sb := range b.blocks {
			if err := put64(local); err != nil {
				return err
			}
			if err := put64(sb.Epoch); err != nil {
				return err
			}
			if _, err := w.Write(sb.Ct); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		// Trailer CRC covers everything written so far; it does not pass
		// through the hashing writer (w is already flushed).
		var u [4]byte
		binary.LittleEndian.PutUint32(u[:], crc.Sum32())
		if _, err := f.Write(u[:]); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); writeErr == nil {
		writeErr = cerr
	}
	if writeErr != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", writeErr)
	}
	if err := os.Rename(tmp, b.path(snapName)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(b.dir)
}

// resetLog atomically replaces the log with an empty one at seq, pointing
// the append handle at the new file. Buffered records are discarded — the
// snapshot written just before already folds them in. Any failure is
// non-recoverable for the caller (Checkpoint wedges the backend): the
// on-disk snapshot already carries seq, so continuing to append to an
// older-seq log would feed writes a later recovery throws away.
func (b *Backend) resetLog(seq uint64) error {
	tmp := b.path(logName + ".tmp")
	if err := writeLogHeader(tmp, seq); err != nil {
		return err
	}
	if err := os.Rename(tmp, b.path(logName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(b.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(b.path(logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	b.logF.Close()
	b.logF = f
	b.bw.Reset(f)
	b.pending = 0
	return nil
}

// fail wedges the backend after a non-recoverable mid-operation error:
// every later operation fails fast instead of acknowledging writes that
// can never durably land. Close re-surfaces the wedging error.
func (b *Backend) fail(err error) error {
	if !b.closed {
		b.closed = true
		b.failErr = err
	}
	if b.logF != nil {
		b.logF.Close()
		b.logF = nil
	}
	b.unlock()
	return err
}

func writeLogHeader(path string, seq uint64) error {
	var hdr [headerSize]byte
	copy(hdr[0:8], logMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[:16]))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	_, werr := f.Write(hdr[:])
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path)
		return fmt.Errorf("wal: %w", werr)
	}
	return nil
}

// loadSnapshot reads and verifies the snapshot file, if present.
func (b *Backend) loadSnapshot() error {
	data, err := os.ReadFile(b.path(snapName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if len(data) < 8+8+8+4+8+4 || string(data[:8]) != snapMagic {
		return fmt.Errorf("wal: %s is not a palermo snapshot", b.path(snapName))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return fmt.Errorf("wal: snapshot CRC mismatch (corrupt %s)", b.path(snapName))
	}
	off := 8
	b.seq = binary.LittleEndian.Uint64(body[off:])
	off += 8
	b.metaEpoch = binary.LittleEndian.Uint64(body[off:])
	off += 8
	metaLen := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if off+metaLen > len(body) {
		return fmt.Errorf("wal: snapshot metadata overruns file")
	}
	if metaLen > 0 {
		b.meta = append([]byte(nil), body[off:off+metaLen]...)
	}
	off += metaLen
	if off+8 > len(body) {
		return fmt.Errorf("wal: snapshot block count overruns file")
	}
	n := binary.LittleEndian.Uint64(body[off:])
	off += 8
	const blockRec = 8 + 8 + crypt.BlockBytes
	// Divide instead of multiplying: an absurd n would overflow n*blockRec
	// and turn this validation into a slice-bounds panic below.
	if rest := uint64(len(body) - off); rest/blockRec != n || rest%blockRec != 0 {
		return fmt.Errorf("wal: snapshot holds %d bytes of blocks, expected %d records", len(body)-off, n)
	}
	for i := uint64(0); i < n; i++ {
		local := binary.LittleEndian.Uint64(body[off:])
		epoch := binary.LittleEndian.Uint64(body[off+8:])
		ct := append([]byte(nil), body[off+16:off+16+crypt.BlockBytes]...)
		b.blocks[local] = backend.Sealed{Ct: ct, Epoch: epoch}
		off += blockRec
	}
	return nil
}

// recoverLog replays the record tail of the current log, truncating at the
// first torn or corrupt record, and discards a stale pre-checkpoint log.
func (b *Backend) recoverLog() error {
	path := b.path(logName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if b.seq > 0 {
			// No crash ordering this code produces leaves a snapshot
			// without a log (resetLog replaces it via rename) — the log
			// was removed externally, along with any acknowledged
			// post-checkpoint writes it held. Refuse rather than silently
			// reinitializing over them.
			return fmt.Errorf("wal: %s is missing but a checkpoint-%d snapshot exists (log removed externally)", path, b.seq)
		}
		return b.resetLogInit()
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if len(data) < headerSize || string(data[:8]) != logMagic ||
		crc32.ChecksumIEEE(data[:16]) != binary.LittleEndian.Uint32(data[16:20]) {
		return fmt.Errorf("wal: %s has a corrupt header", path)
	}
	seq := binary.LittleEndian.Uint64(data[8:16])
	if seq < b.seq {
		// Crash between snapshot rename and log reset: every record in
		// this log is already folded into the snapshot. Discard it.
		return b.resetLogInit()
	}
	if seq > b.seq {
		// A log ahead of the snapshot cannot come from any crash ordering
		// this code produces (the log is reset strictly after the snapshot
		// rename) — the snapshot is missing or rolled back. Refuse rather
		// than silently reinitializing over acknowledged writes.
		return fmt.Errorf("wal: %s is at checkpoint %d but the snapshot is at %d (missing or rolled-back snapshot)",
			path, seq, b.seq)
	}
	off := headerSize
	for off+recordSize <= len(data) {
		rec := data[off : off+recordSize]
		if crc32.ChecksumIEEE(rec[:recordSize-4]) != binary.LittleEndian.Uint32(rec[recordSize-4:]) {
			// A torn tail ends the log; a bad record *followed by intact
			// ones* is mid-log corruption of acknowledged writes (records
			// are fixed-size, so alignment survives). Truncating through
			// corruption would silently drop the valid records behind it —
			// fail loudly and leave the file for inspection instead.
			for o := off + recordSize; o+recordSize <= len(data); o += recordSize {
				r2 := data[o : o+recordSize]
				if crc32.ChecksumIEEE(r2[:recordSize-4]) == binary.LittleEndian.Uint32(r2[recordSize-4:]) {
					return fmt.Errorf("wal: %s is corrupt at offset %d (intact records follow — not a crash tail)", path, off)
				}
			}
			break
		}
		local := binary.LittleEndian.Uint64(rec[0:8])
		epoch := binary.LittleEndian.Uint64(rec[8:16])
		if local != backend.EpochReserveLocal {
			ct := append([]byte(nil), rec[16:16+crypt.BlockBytes]...)
			b.blocks[local] = backend.Sealed{Ct: ct, Epoch: epoch}
		}
		b.tail = append(b.tail, backend.TailOp{Local: local, Epoch: epoch})
		off += recordSize
	}
	if off < len(data) {
		// Torn group-commit tail: truncate to the last intact record. The
		// discarded bytes were nevertheless observed by the (untrusted)
		// disk, and every appended record consumes exactly one sealing
		// epoch, so the crashed process consumed at most one epoch per
		// discarded record past the last recovered one. Surface that bound
		// as a synthetic reservation so the shard's sealer skips the
		// observed-but-lost epochs instead of re-issuing their IVs.
		torn := (uint64(len(data)-off) + recordSize - 1) / recordSize
		last := b.metaEpoch
		for _, op := range b.tail {
			if op.Epoch > last {
				last = op.Epoch
			}
		}
		b.tail = append(b.tail, backend.TailOp{Local: backend.EpochReserveLocal, Epoch: last + torn})
		// Persist the reservation over the torn bytes BEFORE truncating:
		// a second crash at any point in this sequence either still sees
		// the torn bytes (and recomputes the same bound) or sees the
		// durable reservation — the disk-observed epochs are never
		// forgotten. Only then is the leftover garbage cut off.
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		rec := frameRecord(backend.EpochReserveLocal, last+torn, make([]byte, crypt.BlockBytes))
		_, werr := f.WriteAt(rec[:], int64(off))
		if werr == nil {
			werr = f.Sync()
		}
		if werr == nil {
			werr = f.Truncate(int64(off + recordSize))
		}
		if werr == nil {
			werr = f.Sync()
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("wal: %w", werr)
		}
	}
	return nil
}

// resetLogInit writes a fresh empty log during Open (no handle yet).
func (b *Backend) resetLogInit() error {
	tmp := b.path(logName + ".tmp")
	if err := writeLogHeader(tmp, b.seq); err != nil {
		return err
	}
	if err := os.Rename(tmp, b.path(logName)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(b.dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
