// Package wal is the durable block-state backend: a CRC-framed append-only
// log of sealed writes with group-committed fsync, compacted periodically
// into an atomically-replaced snapshot file, and replayed on open so a
// store survives restarts and crashes.
//
// On-disk layout (one directory per shard):
//
//	snapshot   magic | seq | metaEpoch | metaLen | meta | nBlocks |
//	           nBlocks × (local, epoch, ct[64]) | crc32(all preceding)
//	wal.log    magic | seq | crc32(header), then records:
//	           local(8) | epoch(8) | ct(64) | crc32(record)   = 84 bytes
//
// A PutMany vector of more than one block is framed as a record *batch*:
// a header record (local = batchLocal, epoch = member count) followed by
// the members as ordinary records. Batches are atomic under recovery —
// applied only when every member is intact, discarded whole when a crash
// tears them — so half a path write can never persist. Group commit
// counts records, not calls, so commit cadence matches the scalar path;
// with Options.CommitDepth > 1 the fsync itself runs on a committer
// goroutine (the §9 commit pipeline), overlapping the next accesses'
// engine work, with Flush/Checkpoint/Close acting as full barriers.
//
// Both files are written through temp-file + rename, so each is either the
// old version or the new one, never a torn mixture. The log's seq ties it
// to the snapshot it follows: a crash between snapshot rename and log
// reset leaves an older-seq log whose records are already folded into the
// snapshot, and recovery discards it instead of double-applying.
//
// Recovery on Open loads the snapshot (if any), then replays log records
// until the first short or CRC-failing record — the torn group-commit
// tail a crash can leave — and truncates the file there, folding in a
// durable epoch reservation covering the discarded records. A CRC failure
// *followed by intact records* is storage corruption rather than a crash
// tail, and Open refuses it instead of silently dropping the acknowledged
// writes behind it. What a crash loses is therefore exactly the writes
// the group-commit policy had not yet fsynced, and nothing else.
//
// The log records only (local id, ciphertext, epoch) in access order —
// precisely the view the untrusted storage of the paper's §VI threat model
// already observes — so durability adds no leakage (DESIGN.md §7). The
// snapshot's metadata blob is controller state and arrives pre-sealed.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"palermo/internal/backend"
	"palermo/internal/crypt"
)

const (
	logMagic  = "PALWAL01"
	snapMagic = "PALSNP01"

	headerSize = 8 + 8 + 4                    // magic, seq, crc
	recordSize = 8 + 8 + crypt.BlockBytes + 4 // local, epoch, ct, crc
	logName    = "wal.log"
	snapName   = "snapshot"

	// DefaultGroupCommit is how many appended records share one fsync.
	DefaultGroupCommit = 32

	// batchLocal is the reserved Local value of a batch header record: the
	// record's epoch field carries the count of records that follow as one
	// atomic batch (a whole access's path write, appended by PutMany).
	// Recovery applies a batch only if every member record is intact; a
	// batch cut short by a crash is discarded whole, so a torn tail can
	// never persist half a path write. Like EpochReserveLocal, real block
	// ids (capped at 2^40) can never collide with it.
	batchLocal = ^uint64(0) - 1
)

// Options tunes a WAL backend.
type Options struct {
	// GroupCommit is the number of Put records per fsync batch (default
	// DefaultGroupCommit; 1 = synchronous durability for every write).
	GroupCommit int
	// CommitDepth enables the commit pipeline: when > 1 (and GroupCommit
	// > 1), a filled group-commit batch is flushed to the file by the
	// owner goroutine and fsynced on a dedicated committer goroutine, so
	// the owner overlaps the next accesses' engine work with the previous
	// batch's fsync. Up to CommitDepth-1 fsyncs may be in flight; a full
	// pipeline blocks the owner (bounded crash window). 0 or 1 keeps
	// every fsync synchronous — bit-identical to the pre-pipeline
	// behavior. GroupCommit == 1 always commits synchronously: it is the
	// per-write durability promise, which an in-flight fsync would break.
	CommitDepth int
}

// MaxGroupCommit caps the fsync batch (and with it the write buffer and
// the worst-case crash-loss window).
const MaxGroupCommit = 1 << 16

// MaxCommitDepth caps the commit pipeline (and with it how many fsync
// batches a crash can lose beyond the buffered tail).
const MaxCommitDepth = 64

func (o *Options) defaults() {
	if o.GroupCommit <= 0 {
		o.GroupCommit = DefaultGroupCommit
	}
	if o.GroupCommit > MaxGroupCommit {
		o.GroupCommit = MaxGroupCommit
	}
	if o.CommitDepth > MaxCommitDepth {
		o.CommitDepth = MaxCommitDepth
	}
	if o.GroupCommit == 1 {
		o.CommitDepth = 0 // per-write durability: never pipeline the fsync
	}
}

// Backend is a durable block-state backend over one directory.
type Backend struct {
	dir string
	opt Options

	blocks map[uint64]backend.Sealed

	meta      []byte // sealed metadata blob of the last checkpoint (nil if none)
	metaEpoch uint64
	tail      []backend.TailOp // log records recovered after the last checkpoint
	seq       uint64           // checkpoint sequence the current log follows

	logF    *os.File
	lockF   *os.File // holds the directory's exclusive flock
	bw      *bufio.Writer
	pending int   // records appended since the last fsync
	closed  bool  // Close called, or the backend wedged mid-operation
	failErr error // the wedging error, surfaced again by Close

	// Commit pipeline (CommitDepth > 1): the owner goroutine flushes a
	// filled batch to the file and hands the fsync to the committer, so
	// the next accesses run while the batch reaches stable storage.
	commitq     chan commitReq
	committerWG chan struct{}
	cmu         sync.Mutex
	commitErr   error // first asynchronous fsync failure (wedges on next op)

	// Commit-path fsync telemetry (atomics: FsyncStats reads them from
	// any goroutine while the owner or committer is mid-sync).
	fsyncN     atomic.Uint64
	fsyncNanos atomic.Uint64
}

// commitReq is one fsync handed to the committer goroutine. A non-nil
// done makes the request a barrier: the sender receives this fsync's
// outcome after every earlier request has completed.
type commitReq struct {
	f    *os.File
	done chan error
}

// Open creates or recovers the backend rooted at dir. The directory is
// exclusively locked for the backend's lifetime; a second concurrent Open
// (same or different process) fails instead of corrupting the live log.
func Open(dir string, opt Options) (*Backend, error) {
	opt.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	b := &Backend{dir: dir, opt: opt, lockF: lock, blocks: make(map[uint64]backend.Sealed)}
	fail := func(err error) (*Backend, error) {
		b.unlock()
		return nil, err
	}
	if err := b.loadSnapshot(); err != nil {
		return fail(err)
	}
	if err := b.recoverLog(); err != nil {
		return fail(err)
	}
	f, err := os.OpenFile(b.path(logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	b.logF = f
	b.bw = bufio.NewWriterSize(f, b.opt.GroupCommit*recordSize+recordSize)
	if b.opt.CommitDepth > 1 {
		b.commitq = make(chan commitReq, b.opt.CommitDepth-1)
		b.committerWG = make(chan struct{})
		go b.committer()
	}
	return b, nil
}

// committer is the fsync stage of the commit pipeline: it syncs batches in
// submission order and records the first failure, which wedges the backend
// on its next operation (the fsync-retry trap applies to pipelined commits
// exactly as to synchronous ones).
func (b *Backend) committer() {
	defer close(b.committerWG)
	for req := range b.commitq {
		err := b.timedSync(req.f)
		if err != nil {
			err = fmt.Errorf("wal: pipelined commit: %w", err)
			b.cmu.Lock()
			if b.commitErr == nil {
				b.commitErr = err
			}
			b.cmu.Unlock()
		}
		if req.done != nil {
			req.done <- err
		}
	}
}

// timedSync fsyncs f and charges the wait to the backend's commit-path
// fsync telemetry.
func (b *Backend) timedSync(f *os.File) error {
	t0 := time.Now()
	err := f.Sync()
	b.fsyncN.Add(1)
	b.fsyncNanos.Add(uint64(time.Since(t0)))
	return err
}

// FsyncStats reports how many commit-path (log) fsyncs the backend has
// issued and the cumulative time spent waiting on them — the durability
// lag an operability surface wants to watch. Checkpoint and recovery
// fsyncs are rare one-offs and are not counted. Safe to call from any
// goroutine at any time.
func (b *Backend) FsyncStats() (count uint64, total time.Duration) {
	return b.fsyncN.Load(), time.Duration(b.fsyncNanos.Load())
}

// asyncErr returns the first pipelined-commit failure, if any.
func (b *Backend) asyncErr() error {
	if b.commitq == nil {
		return nil
	}
	b.cmu.Lock()
	defer b.cmu.Unlock()
	return b.commitErr
}

// stopCommitter shuts the commit pipeline down and waits for it to drain.
// Idempotent; safe when the pipeline was never started.
func (b *Backend) stopCommitter() {
	if b.commitq != nil {
		close(b.commitq)
		<-b.committerWG
		b.commitq = nil
	}
}

// unlock releases the directory lock (closing the fd drops the flock).
func (b *Backend) unlock() {
	if b.lockF != nil {
		b.lockF.Close()
		b.lockF = nil
	}
}

func (b *Backend) path(name string) string { return filepath.Join(b.dir, name) }

// Get implements backend.Backend.
func (b *Backend) Get(local uint64) (backend.Sealed, bool) {
	sb, ok := b.blocks[local]
	return sb, ok
}

// Len implements backend.Backend.
func (b *Backend) Len() int { return len(b.blocks) }

// Durable implements backend.Backend.
func (b *Backend) Durable() bool { return true }

// Recovered implements backend.Backend.
func (b *Backend) Recovered() ([]byte, uint64, []backend.TailOp) {
	return b.meta, b.metaEpoch, b.tail
}

// closedErr is the failure every operation on a closed backend returns:
// the wedging root cause when there is one, a plain closed error else.
func (b *Backend) closedErr() error {
	if b.failErr != nil {
		return b.failErr
	}
	return fmt.Errorf("wal: backend is closed")
}

// validatePut rejects malformed or reserved-id puts before any byte is
// framed.
func validatePut(local uint64, sb backend.Sealed) error {
	if len(sb.Ct) != crypt.BlockBytes {
		return fmt.Errorf("wal: ciphertext must be %d bytes, got %d", crypt.BlockBytes, len(sb.Ct))
	}
	if local == backend.EpochReserveLocal || local == batchLocal {
		return fmt.Errorf("wal: block id %d is reserved", local)
	}
	return nil
}

// Put implements backend.Backend: append a CRC-framed record and commit
// (fsync, possibly pipelined) once every GroupCommit records.
func (b *Backend) Put(local uint64, sb backend.Sealed) error {
	if b.closed {
		return b.closedErr()
	}
	if err := validatePut(local, sb); err != nil {
		return err
	}
	if err := b.appendRecord(local, sb.Epoch, sb.Ct); err != nil {
		return err
	}
	b.pending++
	if b.pending >= b.opt.GroupCommit {
		if err := b.commit(); err != nil {
			// Leave the in-memory map untouched: the engine above has not
			// applied this write either, so live state stays consistent
			// even though the record may land after a restart.
			return err
		}
	}
	b.blocks[local] = sb
	return nil
}

// GetMany implements backend.VectorBackend with direct map lookups.
func (b *Backend) GetMany(locals []uint64, out []backend.Sealed, ok []bool) {
	for i, local := range locals {
		out[i], ok[i] = b.blocks[local]
	}
}

// PutMany implements backend.VectorBackend: the whole vector is appended
// as one CRC-framed record batch — a batch header naming the count, then
// one record per block, recovered all-or-nothing — and counts len(ops)
// records toward the group-commit policy (commit cadence is identical to
// len(ops) scalar Puts; only the framing and the fsync overlap differ).
// A single-op vector appends a plain record, byte-identical to Put.
func (b *Backend) PutMany(ops []backend.PutOp) error {
	if b.closed {
		return b.closedErr()
	}
	if len(ops) == 0 {
		return nil
	}
	if len(ops) > MaxGroupCommit {
		// The batch header's count shares the recovery sanity bound; a
		// larger vector would be acknowledged now and rejected as mid-log
		// corruption at the next Open.
		return fmt.Errorf("wal: vector of %d blocks exceeds the %d-record batch limit", len(ops), MaxGroupCommit)
	}
	for _, op := range ops {
		if err := validatePut(op.Local, op.Sb); err != nil {
			return err
		}
	}
	if len(ops) > 1 {
		if err := b.appendRecord(batchLocal, uint64(len(ops)), zeroBlock[:]); err != nil {
			return err
		}
	}
	for _, op := range ops {
		if err := b.appendRecord(op.Local, op.Sb.Epoch, op.Sb.Ct); err != nil {
			return err
		}
	}
	b.pending += len(ops)
	if b.pending >= b.opt.GroupCommit {
		if err := b.commit(); err != nil {
			return err
		}
	}
	for _, op := range ops {
		b.blocks[op.Local] = op.Sb
	}
	return nil
}

// zeroBlock is the payload of header-only records (batch headers, epoch
// reservations).
var zeroBlock [crypt.BlockBytes]byte

// commit completes one group-commit batch: synchronously (Flush) without a
// pipeline, or by flushing the buffer and handing the fsync to the
// committer goroutine with one. A full pipeline blocks here — bounding how
// many acknowledged-but-unsynced batches a crash can lose.
func (b *Backend) commit() error {
	if b.commitq == nil {
		return b.Flush()
	}
	if err := b.asyncErr(); err != nil {
		return b.fail(err)
	}
	if err := b.bw.Flush(); err != nil {
		return b.fail(fmt.Errorf("wal: %w", err))
	}
	b.commitq <- commitReq{f: b.logF}
	b.pending = 0
	return nil
}

// frameRecord builds one CRC-framed log record.
func frameRecord(local, epoch uint64, ct []byte) [recordSize]byte {
	var rec [recordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], local)
	binary.LittleEndian.PutUint64(rec[8:16], epoch)
	copy(rec[16:16+crypt.BlockBytes], ct)
	crc := crc32.ChecksumIEEE(rec[:recordSize-4])
	binary.LittleEndian.PutUint32(rec[recordSize-4:], crc)
	return rec
}

// appendRecord frames and buffers one log record.
func (b *Backend) appendRecord(local, epoch uint64, ct []byte) error {
	rec := frameRecord(local, epoch, ct)
	if _, err := b.bw.Write(rec[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Flush implements backend.Backend: drain the buffer and fsync the log.
// On a closed or wedged backend it fails like Put does — returning nil
// would let a caller believe buffered records reached stable storage.
// Any flush or fsync failure wedges the backend: after a failed fsync
// the kernel may discard dirty pages, and records already handed to the
// page cache could otherwise become durable later even though their
// writes were reported failed — acknowledgments and disk state would
// diverge (the classic fsync-retry trap).
func (b *Backend) Flush() error {
	if b.closed {
		return b.closedErr()
	}
	if err := b.asyncErr(); err != nil {
		return b.fail(err)
	}
	if err := b.bw.Flush(); err != nil {
		return b.fail(fmt.Errorf("wal: %w", err))
	}
	if b.commitq != nil {
		// Full barrier: the fsync is enqueued behind every pipelined commit
		// and its outcome received, so when Flush returns, every record the
		// backend ever acknowledged is on stable storage (or the backend is
		// wedged).
		done := make(chan error, 1)
		b.commitq <- commitReq{f: b.logF, done: done}
		if err := <-done; err != nil {
			return b.fail(err)
		}
	} else if err := b.timedSync(b.logF); err != nil {
		return b.fail(fmt.Errorf("wal: %w", err))
	}
	b.pending = 0
	return nil
}

// Checkpoint implements backend.Backend: write a fresh snapshot of every
// stored block plus the sealed metadata blob, then reset the log. The
// snapshot lands first (temp + rename); only then is the log replaced with
// an empty one carrying the new sequence number.
func (b *Backend) Checkpoint(meta []byte, metaEpoch uint64) error {
	if b.closed {
		return b.closedErr()
	}
	// Durably reserve the blob's sealing epoch in the *current* log before
	// any sealed snapshot byte reaches disk: if we crash mid-checkpoint,
	// recovery folds the reservation in and the restored sealer can never
	// re-issue this checkpoint's IV for different plaintext.
	if err := b.appendRecord(backend.EpochReserveLocal, metaEpoch, make([]byte, crypt.BlockBytes)); err != nil {
		return err
	}
	if err := b.Flush(); err != nil {
		return err
	}
	newSeq := b.seq + 1
	if err := b.writeSnapshot(newSeq, meta, metaEpoch); err != nil {
		return err
	}
	// The snapshot now carries newSeq. If the log cannot be swapped to
	// match, the backend must wedge: appending to the old-seq log would
	// acknowledge writes that a later recovery discards as pre-snapshot.
	if err := b.resetLog(newSeq); err != nil {
		return b.fail(err)
	}
	b.seq = newSeq
	b.meta = append([]byte(nil), meta...)
	b.metaEpoch = metaEpoch
	b.tail = nil
	return nil
}

// Close implements backend.Backend: flush, fsync, release the log and the
// directory lock. Idempotent; a backend that wedged mid-operation
// surfaces its wedging error here too.
func (b *Backend) Close() error {
	if b.closed {
		return b.failErr
	}
	err := b.Flush()
	if b.closed {
		// Flush wedged the backend and already released every resource.
		return b.failErr
	}
	b.closed = true
	b.stopCommitter()
	if cerr := b.logF.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	b.failErr = err // error-idempotent: a retried Close reports the same outcome
	b.unlock()
	return err
}

// writeSnapshot persists the full block set + metadata atomically.
func (b *Backend) writeSnapshot(seq uint64, meta []byte, metaEpoch uint64) error {
	tmp := b.path(snapName + ".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	crc := crc32.NewIEEE()
	w := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<16)

	put64 := func(v uint64) error {
		var u [8]byte
		binary.LittleEndian.PutUint64(u[:], v)
		_, err := w.Write(u[:])
		return err
	}
	put32 := func(v uint32) error {
		var u [4]byte
		binary.LittleEndian.PutUint32(u[:], v)
		_, err := w.Write(u[:])
		return err
	}

	writeErr := func() error {
		if _, err := w.Write([]byte(snapMagic)); err != nil {
			return err
		}
		if err := put64(seq); err != nil {
			return err
		}
		if err := put64(metaEpoch); err != nil {
			return err
		}
		if err := put32(uint32(len(meta))); err != nil {
			return err
		}
		if _, err := w.Write(meta); err != nil {
			return err
		}
		if err := put64(uint64(len(b.blocks))); err != nil {
			return err
		}
		for local, sb := range b.blocks {
			if err := put64(local); err != nil {
				return err
			}
			if err := put64(sb.Epoch); err != nil {
				return err
			}
			if _, err := w.Write(sb.Ct); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		// Trailer CRC covers everything written so far; it does not pass
		// through the hashing writer (w is already flushed).
		var u [4]byte
		binary.LittleEndian.PutUint32(u[:], crc.Sum32())
		if _, err := f.Write(u[:]); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); writeErr == nil {
		writeErr = cerr
	}
	if writeErr != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", writeErr)
	}
	if err := os.Rename(tmp, b.path(snapName)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(b.dir)
}

// resetLog atomically replaces the log with an empty one at seq, pointing
// the append handle at the new file. Buffered records are discarded — the
// snapshot written just before already folds them in. Any failure is
// non-recoverable for the caller (Checkpoint wedges the backend): the
// on-disk snapshot already carries seq, so continuing to append to an
// older-seq log would feed writes a later recovery throws away.
func (b *Backend) resetLog(seq uint64) error {
	tmp := b.path(logName + ".tmp")
	if err := writeLogHeader(tmp, seq); err != nil {
		return err
	}
	if err := os.Rename(tmp, b.path(logName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(b.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(b.path(logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	b.logF.Close()
	b.logF = f
	b.bw.Reset(f)
	b.pending = 0
	return nil
}

// fail wedges the backend after a non-recoverable mid-operation error:
// every later operation fails fast instead of acknowledging writes that
// can never durably land. Close re-surfaces the wedging error.
func (b *Backend) fail(err error) error {
	if !b.closed {
		b.closed = true
		b.failErr = err
	}
	b.stopCommitter()
	if b.logF != nil {
		b.logF.Close()
		b.logF = nil
	}
	b.unlock()
	return err
}

func writeLogHeader(path string, seq uint64) error {
	var hdr [headerSize]byte
	copy(hdr[0:8], logMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[:16]))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	_, werr := f.Write(hdr[:])
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path)
		return fmt.Errorf("wal: %w", werr)
	}
	return nil
}

// loadSnapshot reads and verifies the snapshot file, if present.
func (b *Backend) loadSnapshot() error {
	data, err := os.ReadFile(b.path(snapName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if len(data) < 8+8+8+4+8+4 || string(data[:8]) != snapMagic {
		return fmt.Errorf("wal: %s is not a palermo snapshot", b.path(snapName))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return fmt.Errorf("wal: snapshot CRC mismatch (corrupt %s)", b.path(snapName))
	}
	off := 8
	b.seq = binary.LittleEndian.Uint64(body[off:])
	off += 8
	b.metaEpoch = binary.LittleEndian.Uint64(body[off:])
	off += 8
	metaLen := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if off+metaLen > len(body) {
		return fmt.Errorf("wal: snapshot metadata overruns file")
	}
	if metaLen > 0 {
		b.meta = append([]byte(nil), body[off:off+metaLen]...)
	}
	off += metaLen
	if off+8 > len(body) {
		return fmt.Errorf("wal: snapshot block count overruns file")
	}
	n := binary.LittleEndian.Uint64(body[off:])
	off += 8
	const blockRec = 8 + 8 + crypt.BlockBytes
	// Divide instead of multiplying: an absurd n would overflow n*blockRec
	// and turn this validation into a slice-bounds panic below.
	if rest := uint64(len(body) - off); rest/blockRec != n || rest%blockRec != 0 {
		return fmt.Errorf("wal: snapshot holds %d bytes of blocks, expected %d records", len(body)-off, n)
	}
	for i := uint64(0); i < n; i++ {
		local := binary.LittleEndian.Uint64(body[off:])
		epoch := binary.LittleEndian.Uint64(body[off+8:])
		ct := append([]byte(nil), body[off+16:off+16+crypt.BlockBytes]...)
		b.blocks[local] = backend.Sealed{Ct: ct, Epoch: epoch}
		off += blockRec
	}
	return nil
}

// recoverLog replays the record tail of the current log, truncating at the
// first torn or corrupt record, and discards a stale pre-checkpoint log.
func (b *Backend) recoverLog() error {
	path := b.path(logName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if b.seq > 0 {
			// No crash ordering this code produces leaves a snapshot
			// without a log (resetLog replaces it via rename) — the log
			// was removed externally, along with any acknowledged
			// post-checkpoint writes it held. Refuse rather than silently
			// reinitializing over them.
			return fmt.Errorf("wal: %s is missing but a checkpoint-%d snapshot exists (log removed externally)", path, b.seq)
		}
		return b.resetLogInit()
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if len(data) < headerSize || string(data[:8]) != logMagic ||
		crc32.ChecksumIEEE(data[:16]) != binary.LittleEndian.Uint32(data[16:20]) {
		return fmt.Errorf("wal: %s has a corrupt header", path)
	}
	seq := binary.LittleEndian.Uint64(data[8:16])
	if seq < b.seq {
		// Crash between snapshot rename and log reset: every record in
		// this log is already folded into the snapshot. Discard it.
		return b.resetLogInit()
	}
	if seq > b.seq {
		// A log ahead of the snapshot cannot come from any crash ordering
		// this code produces (the log is reset strictly after the snapshot
		// rename) — the snapshot is missing or rolled back. Refuse rather
		// than silently reinitializing over acknowledged writes.
		return fmt.Errorf("wal: %s is at checkpoint %d but the snapshot is at %d (missing or rolled-back snapshot)",
			path, seq, b.seq)
	}
	off := headerSize
scan:
	for off+recordSize <= len(data) {
		rec := data[off : off+recordSize]
		if !recordIntact(rec) {
			// A torn tail ends the log; a bad record *followed by intact
			// ones* is mid-log corruption of acknowledged writes (records
			// are fixed-size, so alignment survives). Truncating through
			// corruption would silently drop the valid records behind it —
			// fail loudly and leave the file for inspection instead.
			if err := corruptionCheck(data, off, off+recordSize, path); err != nil {
				return err
			}
			break
		}
		local := binary.LittleEndian.Uint64(rec[0:8])
		epoch := binary.LittleEndian.Uint64(rec[8:16])
		if local == batchLocal {
			// Batch header: the next `epoch` records form one atomic batch
			// (a whole access's path write). Apply it only when every
			// member is intact; a batch the crash cut short is discarded
			// whole, so recovery never persists half an access.
			n := int(epoch)
			if epoch == 0 || epoch > MaxGroupCommit {
				if err := corruptionCheck(data, off, off+recordSize, path); err != nil {
					return err
				}
				break
			}
			if off+(n+1)*recordSize > len(data) {
				break // file ends inside the batch: torn at the header
			}
			for j := 0; j < n; j++ {
				mOff := off + (j+1)*recordSize
				if !recordIntact(data[mOff : mOff+recordSize]) {
					if err := corruptionCheck(data, mOff, mOff+recordSize, path); err != nil {
						return err
					}
					break scan // torn inside the batch: truncate at the header
				}
			}
			for j := 0; j < n; j++ {
				m := data[off+(j+1)*recordSize:]
				mLocal := binary.LittleEndian.Uint64(m[0:8])
				mEpoch := binary.LittleEndian.Uint64(m[8:16])
				if mLocal != backend.EpochReserveLocal {
					ct := append([]byte(nil), m[16:16+crypt.BlockBytes]...)
					b.blocks[mLocal] = backend.Sealed{Ct: ct, Epoch: mEpoch}
				}
				b.tail = append(b.tail, backend.TailOp{Local: mLocal, Epoch: mEpoch})
			}
			off += (n + 1) * recordSize
			continue
		}
		if local != backend.EpochReserveLocal {
			ct := append([]byte(nil), rec[16:16+crypt.BlockBytes]...)
			b.blocks[local] = backend.Sealed{Ct: ct, Epoch: epoch}
		}
		b.tail = append(b.tail, backend.TailOp{Local: local, Epoch: epoch})
		off += recordSize
	}
	if off < len(data) {
		// Torn group-commit tail: truncate to the last intact record. The
		// discarded bytes were nevertheless observed by the (untrusted)
		// disk, and every appended record consumes exactly one sealing
		// epoch, so the crashed process consumed at most one epoch per
		// discarded record past the last recovered one. Surface that bound
		// as a synthetic reservation so the shard's sealer skips the
		// observed-but-lost epochs instead of re-issuing their IVs.
		torn := (uint64(len(data)-off) + recordSize - 1) / recordSize
		last := b.metaEpoch
		for _, op := range b.tail {
			if op.Epoch > last {
				last = op.Epoch
			}
		}
		b.tail = append(b.tail, backend.TailOp{Local: backend.EpochReserveLocal, Epoch: last + torn})
		// Persist the reservation over the torn bytes BEFORE truncating:
		// a second crash at any point in this sequence either still sees
		// the torn bytes (and recomputes the same bound) or sees the
		// durable reservation — the disk-observed epochs are never
		// forgotten. Only then is the leftover garbage cut off.
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		rec := frameRecord(backend.EpochReserveLocal, last+torn, make([]byte, crypt.BlockBytes))
		_, werr := f.WriteAt(rec[:], int64(off))
		if werr == nil {
			werr = f.Sync()
		}
		if werr == nil {
			werr = f.Truncate(int64(off + recordSize))
		}
		if werr == nil {
			werr = f.Sync()
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("wal: %w", werr)
		}
	}
	return nil
}

// recordIntact reports whether one fixed-size record passes its CRC.
func recordIntact(rec []byte) bool {
	return crc32.ChecksumIEEE(rec[:recordSize-4]) == binary.LittleEndian.Uint32(rec[recordSize-4:])
}

// corruptionCheck distinguishes a crash tail from mid-log corruption: a
// bad record at badOff is a truncatable tail only if no intact record
// follows scanFrom. Fixed-size framing keeps alignment, so any intact
// record beyond the damage proves acknowledged writes would be dropped by
// truncation — refuse instead.
func corruptionCheck(data []byte, badOff, scanFrom int, path string) error {
	for o := scanFrom; o+recordSize <= len(data); o += recordSize {
		if recordIntact(data[o : o+recordSize]) {
			return fmt.Errorf("wal: %s is corrupt at offset %d (intact records follow — not a crash tail)", path, badOff)
		}
	}
	return nil
}

// resetLogInit writes a fresh empty log during Open (no handle yet).
func (b *Backend) resetLogInit() error {
	tmp := b.path(logName + ".tmp")
	if err := writeLogHeader(tmp, b.seq); err != nil {
		return err
	}
	if err := os.Rename(tmp, b.path(logName)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(b.dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
