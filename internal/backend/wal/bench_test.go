package wal

import (
	"bytes"
	"fmt"
	"testing"

	"palermo/internal/backend"
	"palermo/internal/crypt"
)

// BenchmarkWALAppend measures the durable write path in isolation: one
// CRC-framed 84-byte record per Put, fsynced every GroupCommit records.
// The group-commit sweep shows the fsync amortization the serving path
// relies on (BENCH_persist.json tracks the gc=32 point).
func BenchmarkWALAppend(b *testing.B) {
	payload := bytes.Repeat([]byte{0xA5}, crypt.BlockBytes)
	for _, gc := range []int{1, 32, 256} {
		b.Run(fmt.Sprintf("groupcommit=%d", gc), func(b *testing.B) {
			w, err := Open(b.TempDir(), Options{GroupCommit: gc})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(recordSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Put(uint64(i)%4096, backend.Sealed{Ct: payload, Epoch: uint64(i) + 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
