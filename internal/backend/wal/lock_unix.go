//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/LOCK so a second
// process (or a second Open in this one) fails loudly instead of
// truncating and appending to a live log. The lock dies with the process,
// so a crashed owner never blocks recovery.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %s is in use by another store instance", dir)
	}
	return f, nil
}
