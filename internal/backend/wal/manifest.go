package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Manifest pins a durable store directory to the configuration that
// created it. Reopening with a different shard count would silently route
// ids to the wrong per-shard logs, so the store verifies the manifest on
// every open. The key is secret and deliberately absent: a wrong key
// surfaces as a checkpoint-decode failure instead.
type Manifest struct {
	Version int    `json:"version"`
	Blocks  uint64 `json:"blocks"`
	Shards  int    `json:"shards"`
	// Engine names the storage engine that owns the per-shard
	// sub-directories ("wal" or "blockfile"). Empty means "wal":
	// directories written before the field existed keep reopening
	// unchanged. Mixing engines over one directory would mis-read the
	// per-shard files, so a mismatch is refused like any other
	// geometry change.
	Engine string `json:"engine,omitempty"`
}

// ManifestVersion is the current on-disk layout version.
const ManifestVersion = 1

const manifestName = "manifest.json"

// EnsureManifest writes the manifest on first open of dir and verifies it
// against m on every later open. Creation is atomic AND exclusive
// (durable temp file + hard link, which fails on an existing name), so
// two concurrent first opens with different geometries cannot overwrite
// each other — the loser falls through to verification and errors out.
func EnsureManifest(dir string, m Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		buf, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		f, err := os.CreateTemp(dir, manifestName+"-*.tmp")
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		tmp := f.Name()
		_, werr := f.Write(append(buf, '\n'))
		if werr == nil {
			werr = f.Sync() // contents durable before the name is
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			os.Remove(tmp)
			return fmt.Errorf("wal: %w", werr)
		}
		linkErr := os.Link(tmp, path)
		os.Remove(tmp)
		if linkErr == nil {
			return syncDir(dir)
		}
		if !os.IsExist(linkErr) {
			return fmt.Errorf("wal: %w", linkErr)
		}
		// Lost the creation race: verify against the winner's manifest.
		if data, err = os.ReadFile(path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	} else if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		return fmt.Errorf("wal: corrupt %s: %w", path, err)
	}
	if got.Version != m.Version {
		return fmt.Errorf("wal: %s was written by layout version %d, this build reads %d", dir, got.Version, m.Version)
	}
	if got.Blocks != m.Blocks || got.Shards != m.Shards {
		return fmt.Errorf("wal: %s holds a %d-block/%d-shard store, config asks for %d/%d",
			dir, got.Blocks, got.Shards, m.Blocks, m.Shards)
	}
	if normalizeEngine(got.Engine) != normalizeEngine(m.Engine) {
		return fmt.Errorf("wal: %s holds a %q-engine store, config asks for %q",
			dir, normalizeEngine(got.Engine), normalizeEngine(m.Engine))
	}
	return nil
}

// normalizeEngine maps the pre-engine-field manifests onto "wal".
func normalizeEngine(e string) string {
	if e == "" {
		return "wal"
	}
	return e
}

// ReadManifest loads dir's manifest, so tools (palermo-load -verify,
// server reopen) can auto-detect the engine and geometry of an existing
// store instead of requiring the operator to restate them.
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("wal: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("wal: corrupt %s: %w", filepath.Join(dir, manifestName), err)
	}
	m.Engine = normalizeEngine(m.Engine)
	return m, nil
}
