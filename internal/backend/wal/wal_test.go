package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"palermo/internal/backend"
	"palermo/internal/crypt"
)

func ct(fill byte) []byte { return bytes.Repeat([]byte{fill}, crypt.BlockBytes) }

func mustOpen(t *testing.T, dir string, opt Options) *Backend {
	t.Helper()
	b, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWALRoundTripAfterClose(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 4})
	for i := uint64(0); i < 10; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one id: recovery must surface the later value.
	if err := b.Put(3, backend.Sealed{Ct: ct(0xEE), Epoch: 99}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	meta, _, tail := r.Recovered()
	if meta != nil {
		t.Fatalf("no checkpoint was written, got %d-byte meta", len(meta))
	}
	if len(tail) != 11 {
		t.Fatalf("tail = %d records, want 11 (every logged write, in order)", len(tail))
	}
	if tail[10].Local != 3 || tail[10].Epoch != 99 {
		t.Fatalf("last tail op = %+v, want local 3 epoch 99", tail[10])
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	sb, ok := r.Get(3)
	if !ok || sb.Epoch != 99 || !bytes.Equal(sb.Ct, ct(0xEE)) {
		t.Fatalf("Get(3) = %+v ok=%v, want overwritten value", sb, ok)
	}
}

func TestWALCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 2})
	for i := uint64(0); i < 8; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	metaBlob := []byte("sealed-controller-state")
	if err := b.Checkpoint(metaBlob, 77); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes form the new tail.
	if err := b.Put(100, backend.Sealed{Ct: ct(0xAB), Epoch: 200}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	meta, metaEpoch, tail := r.Recovered()
	if !bytes.Equal(meta, metaBlob) || metaEpoch != 77 {
		t.Fatalf("recovered meta %q/%d, want %q/77", meta, metaEpoch, metaBlob)
	}
	if len(tail) != 1 || tail[0].Local != 100 {
		t.Fatalf("tail = %+v, want exactly the post-checkpoint write", tail)
	}
	if r.Len() != 9 {
		t.Fatalf("Len = %d, want 9 (8 snapshotted + 1 replayed)", r.Len())
	}
	for i := uint64(0); i < 8; i++ {
		if sb, ok := r.Get(i); !ok || !bytes.Equal(sb.Ct, ct(byte(i))) {
			t.Fatalf("snapshotted block %d not recovered", i)
		}
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 1}) // every Put fsynced
	for i := uint64(0); i < 5; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop the last record in half.
	path := filepath.Join(dir, logName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-recordSize/2); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	_, _, tail := r.Recovered()
	// 4 intact writes plus the synthetic epoch reservation covering the
	// torn record the disk observed (its epoch, 5, must never be reused).
	if len(tail) != 5 {
		t.Fatalf("tail = %d records after torn write, want 4 writes + 1 reservation", len(tail))
	}
	if last := tail[4]; last.Local != backend.EpochReserveLocal || last.Epoch != 5 {
		t.Fatalf("torn-tail reservation = %+v, want {Local: reserve, Epoch: 5}", last)
	}
	if _, ok := r.Get(4); ok {
		t.Fatal("torn record must not be recovered")
	}
	// The log now holds the 4 intact records plus the durably persisted
	// reservation that replaced the torn bytes — so a second crash before
	// any further write still cannot forget the observed epochs.
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(headerSize + 5*recordSize); fi.Size() != want {
		t.Fatalf("log size %d after truncation, want %d (4 records + persisted reservation)", fi.Size(), want)
	}
	r.Close()
	again := mustOpen(t, dir, Options{})
	defer again.Close()
	_, _, tail2 := again.Recovered()
	if len(tail2) != 5 || tail2[4].Local != backend.EpochReserveLocal || tail2[4].Epoch != 5 {
		t.Fatalf("second recovery tail = %+v, want the persisted reservation last", tail2)
	}
}

func TestWALMidLogCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 1})
	for i := uint64(0); i < 6; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one ciphertext byte inside record 3. Intact, acknowledged
	// records follow it, so this is storage corruption, not a crash tail:
	// Open must refuse (truncating would silently drop records 4-6)
	// and must leave the file bytes untouched for inspection.
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+3*recordSize+20] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("mid-log corruption with intact records after it must fail open")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, data) {
		t.Fatal("failed open must not modify the corrupt log")
	}
}

func TestWALStaleLogDiscarded(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 1})
	if err := b.Put(1, backend.Sealed{Ct: ct(1), Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Checkpoint([]byte("m1"), 5); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash between snapshot rename and log reset: regress the
	// log to a pre-checkpoint one holding a record already in the snapshot.
	stale := filepath.Join(dir, logName)
	if err := writeLogHeader(stale+".stale", 0); err != nil {
		t.Fatal(err)
	}
	// A well-formed record that would regress block 1 if replayed.
	var rec [recordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], 1)
	binary.LittleEndian.PutUint64(rec[8:16], 0)
	copy(rec[16:16+crypt.BlockBytes], ct(0xBD))
	binary.LittleEndian.PutUint32(rec[recordSize-4:], crc32.ChecksumIEEE(rec[:recordSize-4]))
	f, err := os.OpenFile(stale+".stale", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.Rename(stale+".stale", stale); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	_, _, tail := r.Recovered()
	if len(tail) != 0 {
		t.Fatalf("stale log replayed %d records, want 0", len(tail))
	}
	if sb, ok := r.Get(1); !ok || sb.Epoch != 1 {
		t.Fatalf("block 1 = %+v ok=%v, want the snapshotted epoch-1 value", sb, ok)
	}
}

func TestWALEpochReservationRecovered(t *testing.T) {
	// A crash after Checkpoint durably reserved its blob epoch but before
	// the snapshot landed leaves the reservation as the last log record.
	// Recovery must surface it in the tail (so the shard advances its
	// sealer) without inventing a block.
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 1})
	if err := b.Put(4, backend.Sealed{Ct: ct(4), Epoch: 4}); err != nil {
		t.Fatal(err)
	}
	if err := b.appendRecord(backend.EpochReserveLocal, 99, make([]byte, crypt.BlockBytes)); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: no snapshot follows the reservation.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	_, _, tail := r.Recovered()
	if len(tail) != 2 || tail[1].Local != backend.EpochReserveLocal || tail[1].Epoch != 99 {
		t.Fatalf("tail = %+v, want the write plus the epoch-99 reservation", tail)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (reservations carry no block)", r.Len())
	}
	if err := r.Put(backend.EpochReserveLocal, backend.Sealed{Ct: ct(0), Epoch: 1}); err == nil {
		t.Fatal("Put must reject the reserved id")
	}
}

func TestWALDirSingleOwner(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{})
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a live directory must fail")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	r.Close()
}

func TestManifestGuardsConfig(t *testing.T) {
	dir := t.TempDir()
	m := Manifest{Version: ManifestVersion, Blocks: 1 << 10, Shards: 4}
	if err := EnsureManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if err := EnsureManifest(dir, m); err != nil {
		t.Fatalf("matching reopen rejected: %v", err)
	}
	bad := m
	bad.Shards = 8
	if err := EnsureManifest(dir, bad); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	bad = m
	bad.Blocks = 1 << 11
	if err := EnsureManifest(dir, bad); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
}

// crashWithoutSync simulates the process dying between append and fsync:
// buffered records reach the OS through the file write (a killed process
// does not lose the page cache) but no fsync runs, no Close checkpoint is
// written, and the directory lock drops as it would on process exit.
func crashWithoutSync(b *Backend) {
	b.bw.Flush()
	b.stopCommitter()
	b.logF.Close()
	b.closed = true
	b.unlock()
}

// TestPutManyBatchRoundTrip: a vector put lands as one batch-framed unit
// and recovers record for record, interleaved correctly with scalar puts.
func TestPutManyBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 64})
	if err := b.Put(1, backend.Sealed{Ct: ct(1), Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	batch := []backend.PutOp{
		{Local: 2, Sb: backend.Sealed{Ct: ct(2), Epoch: 2}},
		{Local: 3, Sb: backend.Sealed{Ct: ct(3), Epoch: 3}},
		{Local: 2, Sb: backend.Sealed{Ct: ct(4), Epoch: 4}}, // same id twice: order matters
	}
	if err := b.PutMany(batch); err != nil {
		t.Fatal(err)
	}
	if err := b.PutMany([]backend.PutOp{{Local: 9, Sb: backend.Sealed{Ct: ct(9), Epoch: 5}}}); err != nil {
		t.Fatal(err) // single-op vector: plain record, byte-identical to Put
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	_, _, tail := r.Recovered()
	want := []backend.TailOp{
		{Local: 1, Epoch: 1}, {Local: 2, Epoch: 2}, {Local: 3, Epoch: 3},
		{Local: 2, Epoch: 4}, {Local: 9, Epoch: 5},
	}
	if len(tail) != len(want) {
		t.Fatalf("tail = %d records, want %d", len(tail), len(want))
	}
	for i, op := range want {
		if tail[i] != op {
			t.Fatalf("tail[%d] = %+v, want %+v", i, tail[i], op)
		}
	}
	if sb, ok := r.Get(2); !ok || sb.Epoch != 4 || !bytes.Equal(sb.Ct, ct(4)) {
		t.Fatalf("Get(2) = %+v ok=%v, want the batch's later value", sb, ok)
	}
}

// TestPutManyRejectsBadOps: validation covers every vector member before
// any byte is framed.
func TestPutManyRejectsBadOps(t *testing.T) {
	b := mustOpen(t, t.TempDir(), Options{})
	defer b.Close()
	if err := b.PutMany([]backend.PutOp{
		{Local: 1, Sb: backend.Sealed{Ct: ct(1), Epoch: 1}},
		{Local: 2, Sb: backend.Sealed{Ct: []byte("short"), Epoch: 2}},
	}); err == nil {
		t.Fatal("undersized ciphertext accepted in a vector")
	}
	if err := b.PutMany([]backend.PutOp{{Local: batchLocal, Sb: backend.Sealed{Ct: ct(1), Epoch: 1}}}); err == nil {
		t.Fatal("reserved batch-header id accepted")
	}
	if err := b.Put(batchLocal, backend.Sealed{Ct: ct(1), Epoch: 1}); err == nil {
		t.Fatal("reserved batch-header id accepted by Put")
	}
	if tail := len(b.tail); tail != 0 {
		t.Fatalf("rejected puts left %d tail records", tail)
	}
	if err := b.PutMany(nil); err != nil {
		t.Fatalf("empty vector: %v", err)
	}
}

// TestCrashMidPipelineBatchRecovery is the satellite scenario: a batch is
// appended (reaching the OS) but the process dies before its group
// commit's fsync. Recovery must replay the log to exactly the state a
// serial, synchronously-committed executor would have produced for the
// same acknowledged writes.
func TestCrashMidPipelineBatchRecovery(t *testing.T) {
	dir := t.TempDir()
	// GroupCommit 64 with a commit pipeline: nothing is fsynced during the
	// run; the crash lands squarely between append and fsync.
	b := mustOpen(t, dir, Options{GroupCommit: 64, CommitDepth: 4})
	if err := b.Put(1, backend.Sealed{Ct: ct(1), Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutMany([]backend.PutOp{
		{Local: 2, Sb: backend.Sealed{Ct: ct(2), Epoch: 2}},
		{Local: 3, Sb: backend.Sealed{Ct: ct(3), Epoch: 3}},
	}); err != nil {
		t.Fatal(err)
	}
	crashWithoutSync(b)

	// Serial reference: the same writes through a synchronous executor
	// with a clean crash at the same point.
	refDir := t.TempDir()
	ref := mustOpen(t, refDir, Options{GroupCommit: 1})
	for _, op := range []backend.TailOp{{Local: 1, Epoch: 1}, {Local: 2, Epoch: 2}, {Local: 3, Epoch: 3}} {
		if err := ref.Put(op.Local, backend.Sealed{Ct: ct(byte(op.Epoch)), Epoch: op.Epoch}); err != nil {
			t.Fatal(err)
		}
	}
	crashWithoutSync(ref)

	r, refR := mustOpen(t, dir, Options{}), mustOpen(t, refDir, Options{})
	defer r.Close()
	defer refR.Close()
	_, _, tail := r.Recovered()
	_, _, refTail := refR.Recovered()
	if len(tail) != len(refTail) {
		t.Fatalf("pipelined crash recovered %d tail records, serial %d", len(tail), len(refTail))
	}
	for i := range refTail {
		if tail[i] != refTail[i] {
			t.Fatalf("tail[%d] = %+v, serial-equivalent %+v", i, tail[i], refTail[i])
		}
	}
	if r.Len() != refR.Len() {
		t.Fatalf("recovered %d blocks, serial-equivalent %d", r.Len(), refR.Len())
	}
}

// TestTornBatchDiscardedWhole: a batch whose tail record the crash tore
// off is discarded entirely (never half an access), with a durable epoch
// reservation covering the observed-but-lost records.
func TestTornBatchDiscardedWhole(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 64})
	if err := b.Put(1, backend.Sealed{Ct: ct(1), Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutMany([]backend.PutOp{
		{Local: 2, Sb: backend.Sealed{Ct: ct(2), Epoch: 2}},
		{Local: 3, Sb: backend.Sealed{Ct: ct(3), Epoch: 3}},
	}); err != nil {
		t.Fatal(err)
	}
	crashWithoutSync(b)

	// Tear the batch: cut the log mid-way through its last member record.
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-recordSize/2], 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	_, _, tail := r.Recovered()
	// Only the pre-batch write survives, plus the synthetic epoch
	// reservation for the torn frames.
	if len(tail) < 2 || tail[0] != (backend.TailOp{Local: 1, Epoch: 1}) {
		t.Fatalf("tail = %+v, want the pre-batch record first", tail)
	}
	last := tail[len(tail)-1]
	if last.Local != backend.EpochReserveLocal || last.Epoch < 3 {
		t.Fatalf("torn batch left no covering epoch reservation: %+v", last)
	}
	if _, ok := r.Get(2); ok {
		t.Fatal("half-applied batch: member 2 survived a torn batch")
	}
	if _, ok := r.Get(3); ok {
		t.Fatal("half-applied batch: member 3 survived a torn batch")
	}
}

// TestCommitPipelineFlushBarrier: Flush on a pipelined backend is a full
// barrier — after it returns, reopening the directory (even after a
// simulated power cut discarding un-synced writes is impossible to fake
// here, so we assert the pending counter and sync path) sees every record.
func TestCommitPipelineFlushBarrier(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 8, CommitDepth: 4})
	for i := uint64(0); i < 20; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if b.pending != 0 {
		t.Fatalf("pending = %d after Flush barrier", b.pending)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if r.Len() != 20 {
		t.Fatalf("recovered %d blocks, want 20", r.Len())
	}
}

// TestGroupCommitOneStaysSynchronous: GroupCommit 1 is the per-write
// durability promise; a requested commit pipeline must be ignored.
func TestGroupCommitOneStaysSynchronous(t *testing.T) {
	b := mustOpen(t, t.TempDir(), Options{GroupCommit: 1, CommitDepth: 8})
	defer b.Close()
	if b.commitq != nil {
		t.Fatal("GroupCommit 1 started a commit pipeline")
	}
	if err := b.Put(1, backend.Sealed{Ct: ct(1), Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if b.pending != 0 {
		t.Fatalf("pending = %d after a synchronous gc=1 Put", b.pending)
	}
}
