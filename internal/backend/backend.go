// Package backend defines the pluggable block-state storage interface of
// the oblivious store: the untrusted party of the paper's threat model
// (§VI), which holds sealed payloads and — for durable implementations —
// an opaque, controller-sealed metadata checkpoint.
//
// A Backend stores exactly the view the untrusted storage of §VI already
// observes: (shard-local id, ciphertext, epoch) triples in access order.
// Ids are public routing state (the client presented them in plaintext at
// the trusted service boundary), ciphertexts are AES-CTR sealed under
// per-seal unique IVs, and epochs are sealing counters the bucket headers
// of a real design expose anyway. Persisting that view is therefore
// obliviousness-neutral; DESIGN.md §7 states the full argument. Controller
// metadata (position maps, stash residency) is the opposite — trusted
// secrets — so Checkpoint only ever receives it pre-sealed as an opaque
// blob.
//
// Implementations: memory (the process-private map the store always had —
// the default) and wal (a CRC-framed append-only log with group-committed
// fsync and compacted snapshots, surviving restarts and crashes).
//
// A Backend is confined to its shard's worker goroutine, exactly like the
// ORAM engine above it, so implementations need no internal locking.
package backend

// Sealed is one sealed block as the untrusted storage sees it. Put takes
// ownership of Ct and Get returns the stored slice; callers must not
// mutate either (the sealing layer allocates a fresh ciphertext per seal).
type Sealed struct {
	Ct    []byte
	Epoch uint64
}

// EpochReserveLocal is the reserved Local value marking an epoch
// reservation in a recovered tail: no block was written, but the sealing
// counter must advance to at least Epoch. Durable backends log one before
// persisting each checkpoint so that a crash mid-checkpoint can never
// lead a recovered sealer to re-issue the checkpoint blob's IV. Real ids
// can never collide with it (capacities are capped far below 2^64).
const EpochReserveLocal = ^uint64(0)

// TailOp is one logged write a durable backend recovered after the last
// checkpoint. The shard replays tail ops through its ORAM engine so the
// protocol metadata (leaf maps, stash, bucket counters) re-converges with
// the recovered sealed payloads. A TailOp with Local == EpochReserveLocal
// carries no payload and only advances the sealing counter.
type TailOp struct {
	Local uint64
	Epoch uint64
}

// Backend stores a shard's sealed blocks keyed by shard-local id, plus the
// shard's sealed metadata checkpoints.
type Backend interface {
	// Get returns the sealed block stored under local, if any.
	Get(local uint64) (Sealed, bool)
	// Put stores a sealed block under local, overwriting any prior value.
	// Durable implementations append the write to stable storage subject to
	// their group-commit policy; an un-fsynced tail may be lost on crash.
	Put(local uint64, sb Sealed) error
	// Len returns the number of distinct ids currently stored.
	Len() int
	// Durable reports whether the backend survives process exit. Shards
	// skip checkpoint encoding entirely for non-durable backends.
	Durable() bool
	// Checkpoint durably persists meta (an opaque, controller-sealed
	// metadata blob encrypted under metaEpoch) together with every sealed
	// block currently stored, then compacts the log. After a successful
	// Checkpoint, recovery needs no tail replay.
	Checkpoint(meta []byte, metaEpoch uint64) error
	// Recovered returns what opening the backend found: the meta blob of
	// the last completed Checkpoint (nil if none) and the ordered log tail
	// written after it (empty after a clean Close).
	Recovered() (meta []byte, metaEpoch uint64, tail []TailOp)
	// Flush forces buffered writes to stable storage (no-op when not
	// durable).
	Flush() error
	// Close flushes and releases resources. The backend is unusable after.
	Close() error
}
