// Package backend defines the pluggable block-state storage interface of
// the oblivious store: the untrusted party of the paper's threat model
// (§VI), which holds sealed payloads and — for durable implementations —
// an opaque, controller-sealed metadata checkpoint.
//
// A Backend stores exactly the view the untrusted storage of §VI already
// observes: (shard-local id, ciphertext, epoch) triples in access order.
// Ids are public routing state (the client presented them in plaintext at
// the trusted service boundary), ciphertexts are AES-CTR sealed under
// per-seal unique IVs, and epochs are sealing counters the bucket headers
// of a real design expose anyway. Persisting that view is therefore
// obliviousness-neutral; DESIGN.md §7 states the full argument. Controller
// metadata (position maps, stash residency) is the opposite — trusted
// secrets — so Checkpoint only ever receives it pre-sealed as an opaque
// blob.
//
// Implementations: memory (the process-private map the store always had —
// the default) and wal (a CRC-framed append-only log with group-committed
// fsync and compacted snapshots, surviving restarts and crashes).
//
// A Backend is confined to its shard's worker goroutine, exactly like the
// ORAM engine above it, so implementations need no internal locking.
package backend

// Sealed is one sealed block as the untrusted storage sees it. Put takes
// ownership of Ct and Get returns the stored slice; callers must not
// mutate either (the sealing layer allocates a fresh ciphertext per seal).
type Sealed struct {
	Ct    []byte
	Epoch uint64
}

// EpochReserveLocal is the reserved Local value marking an epoch
// reservation in a recovered tail: no block was written, but the sealing
// counter must advance to at least Epoch. Durable backends log one before
// persisting each checkpoint so that a crash mid-checkpoint can never
// lead a recovered sealer to re-issue the checkpoint blob's IV. Real ids
// can never collide with it (capacities are capped far below 2^64).
const EpochReserveLocal = ^uint64(0)

// TailOp is one logged write a durable backend recovered after the last
// checkpoint. The shard replays tail ops through its ORAM engine so the
// protocol metadata (leaf maps, stash, bucket counters) re-converges with
// the recovered sealed payloads. A TailOp with Local == EpochReserveLocal
// carries no payload and only advances the sealing counter.
type TailOp struct {
	Local uint64
	Epoch uint64
}

// PutOp is one sealed-block store of a vector put: the unit a whole-access
// (or whole-batch) path write is expressed in.
type PutOp struct {
	Local uint64
	Sb    Sealed
}

// VectorBackend is the vector extension of Backend: whole-access block
// sets move in one call instead of one call per block, so a durable
// implementation can frame and commit them as a unit (the WAL appends one
// CRC-framed record batch per PutMany and group-commits per access rather
// than per block) and a remote one could round-trip them in one message.
// Backends that do not implement it are adapted by Vector with per-block
// loops.
type VectorBackend interface {
	Backend
	// GetMany looks up locals[i] into out[i]/ok[i] for every i. The three
	// slices must have equal length; out and ok are caller-allocated so a
	// hot path can reuse them.
	GetMany(locals []uint64, out []Sealed, ok []bool)
	// PutMany stores every op, in order, as one unit. Durable
	// implementations append the whole vector under a single batch frame
	// and count it as one unit of the group-commit policy. On error the
	// backend's single-Put failure semantics apply to the whole vector (a
	// durable backend wedges; the in-memory state is not partially
	// updated unless the implementation documents otherwise).
	PutMany(ops []PutOp) error
}

// Vector returns b's native vector form when it implements VectorBackend,
// or a loop adapter otherwise — so third-party Backend implementations
// keep working under the pipelined executor unchanged.
func Vector(b Backend) VectorBackend {
	if vb, ok := b.(VectorBackend); ok {
		return vb
	}
	return loopVector{b}
}

// loopVector adapts a scalar Backend with per-block loops. PutMany is not
// atomic: a mid-vector error leaves earlier puts applied (exactly what N
// scalar Puts would have done).
type loopVector struct{ Backend }

func (v loopVector) GetMany(locals []uint64, out []Sealed, ok []bool) {
	for i, local := range locals {
		out[i], ok[i] = v.Get(local)
	}
}

func (v loopVector) PutMany(ops []PutOp) error {
	for _, op := range ops {
		if err := v.Put(op.Local, op.Sb); err != nil {
			return err
		}
	}
	return nil
}

// Backend stores a shard's sealed blocks keyed by shard-local id, plus the
// shard's sealed metadata checkpoints.
type Backend interface {
	// Get returns the sealed block stored under local, if any.
	Get(local uint64) (Sealed, bool)
	// Put stores a sealed block under local, overwriting any prior value.
	// Durable implementations append the write to stable storage subject to
	// their group-commit policy; an un-fsynced tail may be lost on crash.
	Put(local uint64, sb Sealed) error
	// Len returns the number of distinct ids currently stored.
	Len() int
	// Durable reports whether the backend survives process exit. Shards
	// skip checkpoint encoding entirely for non-durable backends.
	Durable() bool
	// Checkpoint durably persists meta (an opaque, controller-sealed
	// metadata blob encrypted under metaEpoch) together with every sealed
	// block currently stored, then compacts the log. After a successful
	// Checkpoint, recovery needs no tail replay.
	Checkpoint(meta []byte, metaEpoch uint64) error
	// Recovered returns what opening the backend found: the meta blob of
	// the last completed Checkpoint (nil if none) and the ordered log tail
	// written after it (empty after a clean Close).
	Recovered() (meta []byte, metaEpoch uint64, tail []TailOp)
	// Flush forces buffered writes to stable storage (no-op when not
	// durable).
	Flush() error
	// Close flushes and releases resources. The backend is unusable after.
	Close() error
}
