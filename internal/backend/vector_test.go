// Cross-backend vector property test: GetMany/PutMany must mean exactly
// "N scalar Gets/Puts" on every implementation — the memory map, the WAL
// log, the blockfile slot file, and the loop adapter backend.Vector wraps
// around scalar-only backends. Duplicate and aliasing locals inside one
// vector are the sharp edge: a run-coalescing implementation (blockfile)
// or a batch-framing one (wal) must still give last-write-wins within a
// PutMany and position-wise consistent answers from a GetMany.
package backend_test

import (
	"bytes"
	"fmt"
	"testing"

	"palermo/internal/backend"
	"palermo/internal/backend/blockfile"
	"palermo/internal/backend/memory"
	"palermo/internal/backend/wal"
	"palermo/internal/rng"
)

// scalarOnly hides a backend's native vector methods, so backend.Vector
// must fall back to the per-block loop adapter.
type scalarOnly struct{ backend.Backend }

// vecCT builds the deterministic 64-byte ciphertext stand-in for a
// (local, epoch) pair, so value comparisons across backends are exact.
func vecCT(local, epoch uint64) []byte {
	b := make([]byte, 64)
	for i := range b {
		b[i] = byte(local*7 + epoch*31 + uint64(i))
	}
	return b
}

// vecScript is the shared deterministic op sequence: PutMany vectors with
// intra-vector duplicates (last-wins) interleaved with scalar Puts,
// epochs strictly increasing in submission order like a real sealer.
type vecPut struct {
	vector bool
	ops    []backend.PutOp
}

func vecScript() (puts []vecPut, queries [][]uint64) {
	const writtenLocals = 96 // queries probe up to 128: a tail of absent ids
	r := rng.New(20250807)
	epoch := uint64(0)
	for round := 0; round < 40; round++ {
		if r.Uint64n(4) == 0 { // scalar put
			epoch++
			local := r.Uint64n(writtenLocals)
			puts = append(puts, vecPut{ops: []backend.PutOp{
				{Local: local, Sb: backend.Sealed{Ct: vecCT(local, epoch), Epoch: epoch}},
			}})
			continue
		}
		n := 1 + int(r.Uint64n(8))
		ops := make([]backend.PutOp, n)
		for i := range ops {
			var local uint64
			if i > 0 && r.Uint64n(3) == 0 {
				local = ops[i-1].Local // intra-vector duplicate: last-wins
			} else {
				local = r.Uint64n(writtenLocals)
			}
			epoch++
			ops[i] = backend.PutOp{Local: local, Sb: backend.Sealed{Ct: vecCT(local, epoch), Epoch: epoch}}
		}
		puts = append(puts, vecPut{vector: true, ops: ops})
	}
	for q := 0; q < 60; q++ {
		locals := make([]uint64, 1+r.Uint64n(12))
		for i := range locals {
			if i > 0 && r.Uint64n(3) == 0 {
				locals[i] = locals[i-1] // aliasing query positions
			} else {
				locals[i] = r.Uint64n(128) // includes never-written ids
			}
		}
		queries = append(queries, locals)
	}
	return puts, queries
}

func TestGetManyDuplicateAliasingConsistency(t *testing.T) {
	flavors := []struct {
		name string
		open func(t *testing.T) backend.VectorBackend
	}{
		{"memory", func(t *testing.T) backend.VectorBackend {
			return backend.Vector(memory.New())
		}},
		{"memory-loop", func(t *testing.T) backend.VectorBackend {
			return backend.Vector(scalarOnly{memory.New()})
		}},
		{"wal", func(t *testing.T) backend.VectorBackend {
			b, err := wal.Open(t.TempDir(), wal.Options{GroupCommit: 4})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { b.Close() })
			return backend.Vector(b)
		}},
		{"wal-loop", func(t *testing.T) backend.VectorBackend {
			b, err := wal.Open(t.TempDir(), wal.Options{GroupCommit: 4})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { b.Close() })
			return backend.Vector(scalarOnly{b})
		}},
		{"blockfile", func(t *testing.T) backend.VectorBackend {
			b, err := blockfile.Open(t.TempDir(), blockfile.Options{GroupCommit: 4})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { b.Close() })
			return backend.Vector(b)
		}},
		{"blockfile-loop", func(t *testing.T) backend.VectorBackend {
			b, err := blockfile.Open(t.TempDir(), blockfile.Options{GroupCommit: 4})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { b.Close() })
			return backend.Vector(scalarOnly{b})
		}},
	}

	puts, queries := vecScript()

	// digests[flavor] is the flavor's full answer transcript; all flavors
	// must produce the same one.
	digests := make([]string, len(flavors))
	for fi, fl := range flavors {
		t.Run(fl.name, func(t *testing.T) {
			vb := fl.open(t)
			expect := make(map[uint64]backend.Sealed) // model: last-wins
			for _, p := range puts {
				if p.vector {
					if err := vb.PutMany(p.ops); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := vb.Put(p.ops[0].Local, p.ops[0].Sb); err != nil {
						t.Fatal(err)
					}
				}
				for _, op := range p.ops {
					expect[op.Local] = op.Sb
				}
			}
			if got, want := vb.Len(), len(expect); got != want {
				t.Fatalf("Len() = %d, want %d distinct locals", got, want)
			}

			var digest bytes.Buffer
			for qi, locals := range queries {
				out := make([]backend.Sealed, len(locals))
				ok := make([]bool, len(locals))
				vb.GetMany(locals, out, ok)
				for i, local := range locals {
					// Position-wise agreement with the model and with the
					// scalar path.
					want, present := expect[local]
					if ok[i] != present {
						t.Fatalf("query %d pos %d (local %d): ok=%v, model present=%v", qi, i, local, ok[i], present)
					}
					sOut, sOK := vb.Get(local)
					if sOK != ok[i] {
						t.Fatalf("query %d pos %d (local %d): GetMany ok=%v but Get ok=%v", qi, i, local, ok[i], sOK)
					}
					if !present {
						continue
					}
					if out[i].Epoch != want.Epoch || !bytes.Equal(out[i].Ct, want.Ct) {
						t.Fatalf("query %d pos %d (local %d): GetMany returned epoch %d, want epoch %d (last-wins)",
							qi, i, local, out[i].Epoch, want.Epoch)
					}
					if sOut.Epoch != out[i].Epoch || !bytes.Equal(sOut.Ct, out[i].Ct) {
						t.Fatalf("query %d pos %d (local %d): GetMany and Get disagree", qi, i, local)
					}
					// Aliasing positions must answer identically.
					if i > 0 && locals[i-1] == local &&
						(out[i].Epoch != out[i-1].Epoch || !bytes.Equal(out[i].Ct, out[i-1].Ct)) {
						t.Fatalf("query %d: duplicate positions %d and %d (local %d) disagree", qi, i-1, i, local)
					}
					fmt.Fprintf(&digest, "%d:%d:%x ", local, out[i].Epoch, out[i].Ct[:8])
				}
			}
			digests[fi] = digest.String()
		})
	}
	for fi := 1; fi < len(flavors); fi++ {
		if digests[fi] == "" || digests[0] == "" {
			t.Fatal("a flavor subtest did not run")
		}
		if digests[fi] != digests[0] {
			t.Fatalf("%s answered differently than %s for the same script", flavors[fi].name, flavors[0].name)
		}
	}
}
