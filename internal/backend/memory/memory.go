// Package memory is the default block-state backend: the process-private
// map the store has always used, extracted behind the backend interface.
// It is byte-identical in behavior to the pre-backend store (the shard
// determinism and replay tests enforce this) and evaporates on process
// exit.
package memory

import "palermo/internal/backend"

// Backend holds sealed blocks in a Go map.
type Backend struct {
	blocks map[uint64]backend.Sealed
}

// New creates an empty in-memory backend.
func New() *Backend {
	return &Backend{blocks: make(map[uint64]backend.Sealed)}
}

// Get implements backend.Backend.
func (b *Backend) Get(local uint64) (backend.Sealed, bool) {
	sb, ok := b.blocks[local]
	return sb, ok
}

// Put implements backend.Backend.
func (b *Backend) Put(local uint64, sb backend.Sealed) error {
	b.blocks[local] = sb
	return nil
}

// GetMany implements backend.VectorBackend with direct map lookups.
func (b *Backend) GetMany(locals []uint64, out []backend.Sealed, ok []bool) {
	for i, local := range locals {
		out[i], ok[i] = b.blocks[local]
	}
}

// PutMany implements backend.VectorBackend: the whole vector lands in the
// map in order (never partially — map stores cannot fail).
func (b *Backend) PutMany(ops []backend.PutOp) error {
	for _, op := range ops {
		b.blocks[op.Local] = op.Sb
	}
	return nil
}

// Len implements backend.Backend.
func (b *Backend) Len() int { return len(b.blocks) }

// Durable implements backend.Backend: memory never survives exit.
func (b *Backend) Durable() bool { return false }

// Checkpoint implements backend.Backend as a no-op (there is no stable
// storage to compact; shards skip metadata encoding when !Durable).
func (b *Backend) Checkpoint(meta []byte, metaEpoch uint64) error { return nil }

// Recovered implements backend.Backend: a fresh map never recovers state.
func (b *Backend) Recovered() ([]byte, uint64, []backend.TailOp) { return nil, 0, nil }

// Flush implements backend.Backend as a no-op.
func (b *Backend) Flush() error { return nil }

// Close implements backend.Backend as a no-op.
func (b *Backend) Close() error { return nil }
