package blockfile

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"palermo/internal/backend"
	"palermo/internal/crypt"
)

func ct(fill byte) []byte { return bytes.Repeat([]byte{fill}, crypt.BlockBytes) }

func mustOpen(t *testing.T, dir string, opt Options) *Backend {
	t.Helper()
	b, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// crash simulates kill -9: every issued pwrite (slot WriteAt, flushed
// log bytes) survives in the page cache, while records still buffered
// in userspace are lost with the process.
func crash(b *Backend) {
	b.logF.Close()
	b.dataF.Close()
	b.closed = true
	b.unlock()
}

func TestRoundTripAfterClose(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 4})
	for i := uint64(0); i < 10; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one id: recovery must surface the later value.
	if err := b.Put(3, backend.Sealed{Ct: ct(0xEE), Epoch: 99}); err != nil {
		t.Fatal(err)
	}
	if !b.Durable() {
		t.Fatal("blockfile backend must report durable")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	meta, _, tail := r.Recovered()
	if meta != nil {
		t.Fatalf("no checkpoint was written, got %d-byte meta", len(meta))
	}
	// 11 write records plus the trailing epoch-reservation bound.
	if len(tail) != 12 {
		t.Fatalf("tail = %d ops, want 11 writes + 1 reservation", len(tail))
	}
	if tail[10].Local != 3 || tail[10].Epoch != 99 {
		t.Fatalf("last write op = %+v, want local 3 epoch 99", tail[10])
	}
	last := tail[11]
	if last.Local != backend.EpochReserveLocal || last.Epoch < 99 {
		t.Fatalf("trailing op = %+v, want covering reservation", last)
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	sb, ok := r.Get(3)
	if !ok || sb.Epoch != 99 || !bytes.Equal(sb.Ct, ct(0xEE)) {
		t.Fatalf("Get(3) = %+v ok=%v, want overwritten value", sb, ok)
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 2})
	for i := uint64(0); i < 200; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	metaBlob := []byte("sealed-controller-state")
	if err := b.Checkpoint(metaBlob, 777); err != nil {
		t.Fatal(err)
	}
	// The snapshot carries metadata only — its size must not scale with
	// the 200 stored payloads (that is the whole point of this engine).
	fi, err := os.Stat(filepath.Join(dir, snapName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 1024 {
		t.Fatalf("snapshot is %d bytes — payloads leaked into it", fi.Size())
	}
	if lfi, err := os.Stat(filepath.Join(dir, logName)); err != nil || lfi.Size() != headerSize {
		t.Fatalf("log not reset after checkpoint (size %d, err %v)", lfi.Size(), err)
	}
	// Post-checkpoint writes form the new tail.
	if err := b.Put(300, backend.Sealed{Ct: ct(0xAB), Epoch: 900}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	meta, metaEpoch, tail := r.Recovered()
	if !bytes.Equal(meta, metaBlob) || metaEpoch != 777 {
		t.Fatalf("recovered meta %q/%d, want %q/777", meta, metaEpoch, metaBlob)
	}
	var writes []backend.TailOp
	for _, op := range tail {
		if op.Local != backend.EpochReserveLocal {
			writes = append(writes, op)
		}
	}
	if len(writes) != 1 || writes[0].Local != 300 {
		t.Fatalf("tail writes = %+v, want exactly the post-checkpoint write", writes)
	}
	if r.Len() != 201 {
		t.Fatalf("Len = %d, want 201", r.Len())
	}
	for i := uint64(0); i < 200; i++ {
		if sb, ok := r.Get(i); !ok || !bytes.Equal(sb.Ct, ct(byte(i))) {
			t.Fatalf("pre-checkpoint block %d not recovered from its slot", i)
		}
	}
}

// TestOrphanSlotsSynthesized: a kill -9 takes the buffered metadata
// records but the slot pwrites landed — recovery must synthesize the
// lost writes from the slot headers, in epoch order.
func TestOrphanSlotsSynthesized(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 64}) // records stay buffered
	for i := uint64(0); i < 5; i++ {
		if err := b.Put(10+i, backend.Sealed{Ct: ct(byte(i)), Epoch: 100 + i}); err != nil {
			t.Fatal(err)
		}
	}
	crash(b)

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	_, _, tail := r.Recovered()
	if len(tail) != 6 {
		t.Fatalf("tail = %+v, want 5 synthesized orphans + reservation", tail)
	}
	for i := uint64(0); i < 5; i++ {
		if tail[i].Local != 10+i || tail[i].Epoch != 100+i {
			t.Fatalf("orphan %d = %+v, want local %d epoch %d", i, tail[i], 10+i, 100+i)
		}
	}
	if tail[5].Local != backend.EpochReserveLocal || tail[5].Epoch < 104 {
		t.Fatalf("trailing op = %+v, want covering reservation", tail[5])
	}
	if sb, ok := r.Get(12); !ok || !bytes.Equal(sb.Ct, ct(2)) {
		t.Fatalf("orphaned block not served: %+v %v", sb, ok)
	}
}

// TestTornSlotDiscardedUnderReservation: a power loss tears a slot
// mid-sector after its record was lost too. Recovery must discard the
// whole slot, serve nothing from it, and still cover its epoch with the
// durable reservation so the sealer can never reuse the IV.
func TestTornSlotDiscardedUnderReservation(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 64})
	if err := b.Put(7, backend.Sealed{Ct: ct(0x77), Epoch: 500}); err != nil {
		t.Fatal(err)
	}
	crash(b) // record lost; slot pwrite landed

	// Tear the slot: flip bytes mid-payload.
	path := filepath.Join(dir, dataName)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF}, 7*SlotBytes+40); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if _, ok := r.Get(7); ok {
		t.Fatal("torn slot was served")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
	_, _, tail := r.Recovered()
	if len(tail) != 1 || tail[0].Local != backend.EpochReserveLocal || tail[0].Epoch < 500 {
		t.Fatalf("tail = %+v, want only a reservation covering epoch 500", tail)
	}
	// The slot must have been durably zeroed, not left to resurface.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !allZero(data[7*SlotBytes : 8*SlotBytes]) {
		t.Fatal("torn slot not zeroed on disk")
	}
}

func TestTornLogTailTruncated(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 1})
	for i := uint64(0); i < 5; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	path := filepath.Join(dir, logName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-recSize/2); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	// The chopped record's write survives anyway: its slot is intact, so
	// it comes back as an orphan. Blocks 0..3 are logged, 4 is orphaned.
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	_, _, tail := r.Recovered()
	var writes []backend.TailOp
	for _, op := range tail {
		if op.Local != backend.EpochReserveLocal {
			writes = append(writes, op)
		}
	}
	if len(writes) != 5 || writes[4].Local != 4 {
		t.Fatalf("tail writes = %+v, want blocks 0..4 in epoch order", writes)
	}
}

func TestMidLogCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 1})
	for i := uint64(0); i < 5; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the second record; intact records follow, so this is
	// corruption, not a crash tail — recovery must refuse.
	if _, err := f.WriteAt([]byte{0xAA}, headerSize+recSize+recSize+4); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-log corruption not refused: %v", err)
	}
}

func TestLogRemovedRefused(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{})
	if err := b.Put(1, backend.Sealed{Ct: ct(1), Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Checkpoint([]byte("meta"), 9); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if err := os.Remove(filepath.Join(dir, logName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("removed log not refused: %v", err)
	}
}

func TestSnapshotRolledBackRefused(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{})
	if err := b.Put(1, backend.Sealed{Ct: ct(1), Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Checkpoint([]byte("meta"), 9); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if err := os.Remove(filepath.Join(dir, snapName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("rolled-back snapshot not refused: %v", err)
	}
}

// TestStaleLogDiscarded: crash between snapshot rename and log reset
// leaves the previous checkpoint's log next to the new snapshot. Its
// records are already folded into the snapshot's metadata; recovery
// must discard them — the payloads live on in their slots regardless.
func TestStaleLogDiscarded(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 1})
	for i := uint64(0); i < 4; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	oldLog, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Checkpoint([]byte("meta"), 50); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if err := os.WriteFile(filepath.Join(dir, logName), oldLog, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	meta, metaEpoch, tail := r.Recovered()
	if string(meta) != "meta" || metaEpoch != 50 {
		t.Fatalf("recovered %q/%d, want meta/50", meta, metaEpoch)
	}
	if len(tail) != 0 {
		t.Fatalf("tail = %+v, want empty (stale log discarded)", tail)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (slots survive the discard)", r.Len())
	}
	for i := uint64(0); i < 4; i++ {
		if sb, ok := r.Get(i); !ok || !bytes.Equal(sb.Ct, ct(byte(i))) {
			t.Fatalf("block %d lost", i)
		}
	}
}

func TestSecondOpenLocked(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{})
	defer b.Close()
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "in use") {
		t.Fatalf("second open not excluded: %v", err)
	}
}

func TestPutManyCoalescedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 64})
	ops := []backend.PutOp{
		{Local: 5, Sb: backend.Sealed{Ct: ct(5), Epoch: 1}},
		{Local: 6, Sb: backend.Sealed{Ct: ct(6), Epoch: 2}},
		{Local: 7, Sb: backend.Sealed{Ct: ct(7), Epoch: 3}},
		{Local: 2, Sb: backend.Sealed{Ct: ct(2), Epoch: 4}},
		{Local: 6, Sb: backend.Sealed{Ct: ct(0xBB), Epoch: 5}}, // duplicate id: last wins
	}
	if err := b.PutMany(ops); err != nil {
		t.Fatal(err)
	}
	if sb, ok := b.Get(6); !ok || !bytes.Equal(sb.Ct, ct(0xBB)) || sb.Epoch != 5 {
		t.Fatalf("Get(6) = %+v %v, want the later duplicate", sb, ok)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	_, _, tail := r.Recovered()
	var writes []backend.TailOp
	for _, op := range tail {
		if op.Local != backend.EpochReserveLocal {
			writes = append(writes, op)
		}
	}
	if len(writes) != 5 || writes[4].Local != 6 || writes[4].Epoch != 5 {
		t.Fatalf("tail writes = %+v, want all 5 in submission order", writes)
	}
	if sb, ok := r.Get(6); !ok || !bytes.Equal(sb.Ct, ct(0xBB)) {
		t.Fatalf("duplicate overwrite lost across reopen: %+v %v", sb, ok)
	}
}

// TestCrashAfterPutManyRecoversAll: the vector's slot pwrites were all
// issued before the crash took the buffered records — every block must
// come back, epoch-ordered, as orphans.
func TestCrashAfterPutManyRecoversAll(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 1 << 10})
	ops := make([]backend.PutOp, 20)
	for i := range ops {
		ops[i] = backend.PutOp{Local: uint64(i), Sb: backend.Sealed{Ct: ct(byte(i)), Epoch: uint64(i) + 1}}
	}
	if err := b.PutMany(ops); err != nil {
		t.Fatal(err)
	}
	crash(b)

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if r.Len() != 20 {
		t.Fatalf("Len = %d, want 20", r.Len())
	}
	_, _, tail := r.Recovered()
	prev := uint64(0)
	writes := 0
	for _, op := range tail {
		if op.Local == backend.EpochReserveLocal {
			continue
		}
		if op.Epoch <= prev {
			t.Fatalf("tail not epoch-ordered: %+v", tail)
		}
		prev = op.Epoch
		writes++
	}
	if writes != 20 {
		t.Fatalf("recovered %d writes, want 20", writes)
	}
}

func TestGetManyDuplicatesAndRuns(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{})
	defer b.Close()
	for i := uint64(0); i < 8; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	locals := []uint64{3, 4, 5, 3, 3, 100, 6, 7, 0}
	out := make([]backend.Sealed, len(locals))
	ok := make([]bool, len(locals))
	b.GetMany(locals, out, ok)
	for i, l := range locals {
		want, wok := b.Get(l)
		if ok[i] != wok {
			t.Fatalf("pos %d (local %d): ok %v, Get says %v", i, l, ok[i], wok)
		}
		if wok && (!bytes.Equal(out[i].Ct, want.Ct) || out[i].Epoch != want.Epoch) {
			t.Fatalf("pos %d (local %d): GetMany disagrees with Get", i, l)
		}
	}
	// Each position must hold an independent copy, even for duplicates.
	out[3].Ct[0] ^= 0xFF
	if out[4].Ct[0] == out[3].Ct[0] {
		t.Fatal("duplicate positions alias one buffer")
	}
}

func TestValidateAndClosedErrors(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{})
	if err := b.Put(1, backend.Sealed{Ct: []byte{1, 2}, Epoch: 1}); err == nil {
		t.Fatal("short ciphertext accepted")
	}
	if err := b.Put(maxSlots, backend.Sealed{Ct: ct(1), Epoch: 1}); err == nil {
		t.Fatal("out-of-range local accepted")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
	if err := b.Put(1, backend.Sealed{Ct: ct(1), Epoch: 1}); err == nil {
		t.Fatal("Put after Close accepted")
	}
	if err := b.Flush(); err == nil {
		t.Fatal("Flush after Close accepted")
	}
}

// TestBufferedAndDirectInterchange: a directory written with buffered
// I/O reopens under the default (possibly O_DIRECT) mode and vice
// versa — the format is identical.
func TestBufferedAndDirectInterchange(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{NoDirect: true})
	for i := uint64(0); i < 6; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	t.Logf("reopened direct=%v", r.Direct())
	for i := uint64(0); i < 6; i++ {
		if sb, ok := r.Get(i); !ok || !bytes.Equal(sb.Ct, ct(byte(i))) {
			t.Fatalf("block %d lost across I/O-mode switch", i)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
