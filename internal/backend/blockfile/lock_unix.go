//go:build unix

package blockfile

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/LOCK so a second
// process (or a second Open in this one) fails loudly instead of
// scribbling over a live slot file. The lock dies with the process, so
// a crashed owner never blocks recovery. Same discipline as the WAL
// backend's.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockfile: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("blockfile: %s is in use by another store instance", dir)
	}
	return f, nil
}
