package blockfile

// Slot read cache tests: served bytes must be identical at every budget
// (including zero), writes must invalidate, checkpoints must clear, a
// vectored run must never mix cached and pread slots, and the CLOCK
// budget must hold. The differential suite at the repo root proves the
// same properties end to end through the ORAM engine; these pin the
// backend-local contract directly.

import (
	"bytes"
	"testing"

	"palermo/internal/backend"
	"palermo/internal/rng"
)

func cacheStats(t *testing.T, b *Backend) (hits, misses uint64) {
	t.Helper()
	return b.SlotCacheStats()
}

func TestSlotCacheHitMissCounting(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{CacheBytes: 64 * SlotBytes})
	defer b.Close()
	if err := b.Put(5, backend.Sealed{Ct: ct(0xAB), Epoch: 7}); err != nil {
		t.Fatal(err)
	}
	first, ok := b.Get(5)
	if !ok || first.Epoch != 7 || !bytes.Equal(first.Ct, ct(0xAB)) {
		t.Fatalf("first Get = %+v ok=%v", first, ok)
	}
	if h, m := cacheStats(t, b); h != 0 || m != 1 {
		t.Fatalf("after cold read: hits=%d misses=%d, want 0/1", h, m)
	}
	second, ok := b.Get(5)
	if !ok || second.Epoch != first.Epoch || !bytes.Equal(second.Ct, first.Ct) {
		t.Fatal("cached Get diverged from the pread")
	}
	if h, m := cacheStats(t, b); h != 1 || m != 1 {
		t.Fatalf("after warm read: hits=%d misses=%d, want 1/1", h, m)
	}
	// The returned buffer is a private copy: mutating it must not poison
	// the resident entry.
	second.Ct[0] ^= 0xFF
	third, _ := b.Get(5)
	if !bytes.Equal(third.Ct, ct(0xAB)) {
		t.Fatal("caller's mutation reached the resident copy")
	}
	// An absent slot is not a cache event.
	if _, ok := b.Get(99); ok {
		t.Fatal("absent slot reported present")
	}
	if h, m := cacheStats(t, b); h+m != 3 {
		t.Fatalf("absent slot counted as a cache event: hits=%d misses=%d", h, m)
	}
}

func TestSlotCacheInvalidateOnWrite(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{CacheBytes: 64 * SlotBytes})
	defer b.Close()
	if err := b.Put(3, backend.Sealed{Ct: ct(0x11), Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get(3); !ok { // make it resident
		t.Fatal("slot 3 absent")
	}
	if err := b.Put(3, backend.Sealed{Ct: ct(0x22), Epoch: 2}); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get(3)
	if !ok || got.Epoch != 2 || !bytes.Equal(got.Ct, ct(0x22)) {
		t.Fatalf("Get after overwrite = %+v, want the new value (stale cache?)", got)
	}
	if h, m := cacheStats(t, b); h != 0 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2: the overwrite must invalidate", h, m)
	}
	// PutMany rides the same writeRun choke point.
	if _, ok := b.Get(3); !ok {
		t.Fatal("slot 3 absent")
	}
	if err := b.PutMany([]backend.PutOp{
		{Local: 3, Sb: backend.Sealed{Ct: ct(0x33), Epoch: 3}},
		{Local: 4, Sb: backend.Sealed{Ct: ct(0x44), Epoch: 3}},
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = b.Get(3)
	if got.Epoch != 3 || !bytes.Equal(got.Ct, ct(0x33)) {
		t.Fatal("Get after PutMany served a stale resident copy")
	}
}

func TestSlotCacheClearOnCheckpoint(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{GroupCommit: 2, CacheBytes: 64 * SlotBytes})
	defer b.Close()
	for i := uint64(0); i < 6; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
		if _, ok := b.Get(i); !ok {
			t.Fatal("slot absent")
		}
	}
	if err := b.Checkpoint([]byte("meta"), 100); err != nil {
		t.Fatal(err)
	}
	h0, m0 := cacheStats(t, b)
	for i := uint64(0); i < 6; i++ {
		got, ok := b.Get(i)
		if !ok || !bytes.Equal(got.Ct, ct(byte(i))) {
			t.Fatalf("slot %d lost across checkpoint", i)
		}
	}
	h1, m1 := cacheStats(t, b)
	if h1 != h0 || m1-m0 != 6 {
		t.Fatalf("post-checkpoint reads: hits +%d misses +%d, want +0/+6 (cache must clear)", h1-h0, m1-m0)
	}
}

func TestSlotCacheRunCoherence(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{CacheBytes: 64 * SlotBytes})
	defer b.Close()
	for i := uint64(0); i < 8; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(0x40 + i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	locals := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	check := func(tag string) {
		t.Helper()
		out := make([]backend.Sealed, len(locals))
		ok := make([]bool, len(locals))
		b.GetMany(locals, out, ok)
		for i, l := range locals {
			if !ok[i] || out[i].Epoch != l+1 || !bytes.Equal(out[i].Ct, ct(byte(0x40+l))) {
				t.Fatalf("%s: run slot %d = %+v ok=%v", tag, l, out[i], ok[i])
			}
		}
	}
	check("cold")
	if h, m := cacheStats(t, b); h != 0 || m != 8 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/8", h, m)
	}
	check("warm") // fully resident: served without a pread
	if h, m := cacheStats(t, b); h != 8 || m != 8 {
		t.Fatalf("warm run: hits=%d misses=%d, want 8/8", h, m)
	}
	// Invalidate one slot mid-run: the whole run must fall back to the
	// coalesced pread (no cached/pread mixing) and refill.
	if err := b.Put(3, backend.Sealed{Ct: ct(0x43), Epoch: 4}); err != nil {
		t.Fatal(err)
	}
	check("partial")
	if h, m := cacheStats(t, b); h != 8 || m != 16 {
		t.Fatalf("partial-resident run: hits=%d misses=%d, want 8/16 (full pread)", h, m)
	}
	check("rewarm")
	if h, m := cacheStats(t, b); h != 16 || m != 16 {
		t.Fatalf("rewarmed run: hits=%d misses=%d, want 16/16", h, m)
	}
	// A run with absent slots is cache-servable as long as every present
	// slot is resident: absent positions report false either way.
	sparse := []uint64{6, 7, 8, 9}
	out := make([]backend.Sealed, len(sparse))
	okv := make([]bool, len(sparse))
	b.GetMany(sparse, out, okv)
	if !okv[0] || !okv[1] || okv[2] || okv[3] {
		t.Fatalf("sparse run presence = %v, want [true true false false]", okv)
	}
}

func TestSlotCacheBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	b := mustOpen(t, dir, Options{CacheBytes: 2 * SlotBytes}) // two resident slots
	defer b.Close()
	for i := uint64(0); i < 4; i++ {
		if err := b.Put(i, backend.Sealed{Ct: ct(byte(i)), Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Cycle through 4 slots repeatedly: the 2-slot budget forces CLOCK
	// evictions, and every read must still return the right bytes.
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 4; i++ {
			got, ok := b.Get(i)
			if !ok || !bytes.Equal(got.Ct, ct(byte(i))) || got.Epoch != i+1 {
				t.Fatalf("round %d slot %d = %+v ok=%v", round, i, got, ok)
			}
		}
	}
	if len(b.cache.idx) > 2 {
		t.Fatalf("budget of 2 slots holds %d residents", len(b.cache.idx))
	}
	h, m := cacheStats(t, b)
	if h+m != 12 {
		t.Fatalf("hits=%d misses=%d, want 12 total slot reads", h, m)
	}

	// A budget below one slot disables the cache outright.
	dir2 := t.TempDir()
	b2 := mustOpen(t, dir2, Options{CacheBytes: SlotBytes - 1})
	defer b2.Close()
	if b2.cache != nil {
		t.Fatal("sub-slot budget built a cache")
	}
	if err := b2.Put(0, backend.Sealed{Ct: ct(1), Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	b2.Get(0)
	b2.Get(0)
	if hh, mm := b2.SlotCacheStats(); hh != 0 || mm != 0 {
		t.Fatalf("disabled cache counted %d/%d", hh, mm)
	}
}

// TestSlotCacheByteIdenticalWorkload drives an identical randomized
// Put/Get/GetMany/Checkpoint sequence through a cached and an uncached
// backend and demands byte-identical results at every step — the cache
// must be invisible in served data.
func TestSlotCacheByteIdenticalWorkload(t *testing.T) {
	plain := mustOpen(t, t.TempDir(), Options{GroupCommit: 4})
	defer plain.Close()
	cached := mustOpen(t, t.TempDir(), Options{GroupCommit: 4, CacheBytes: 8 * SlotBytes}) // small: evictions churn
	defer cached.Close()

	r := rng.New(99)
	epoch := uint64(1)
	for i := 0; i < 2000; i++ {
		switch r.Uint64n(10) {
		case 0, 1, 2:
			l := r.Uint64n(64)
			sb := backend.Sealed{Ct: ct(byte(r.Uint64())), Epoch: epoch}
			epoch++
			if err := plain.Put(l, sb); err != nil {
				t.Fatal(err)
			}
			if err := cached.Put(l, sb); err != nil {
				t.Fatal(err)
			}
		case 3:
			if err := plain.Checkpoint([]byte("m"), epoch); err != nil {
				t.Fatal(err)
			}
			if err := cached.Checkpoint([]byte("m"), epoch); err != nil {
				t.Fatal(err)
			}
			epoch++
		case 4, 5:
			start := r.Uint64n(60)
			n := 1 + r.Uint64n(6)
			locals := make([]uint64, n)
			for j := range locals {
				locals[j] = start + uint64(j)
			}
			wantOut := make([]backend.Sealed, n)
			wantOk := make([]bool, n)
			gotOut := make([]backend.Sealed, n)
			gotOk := make([]bool, n)
			plain.GetMany(locals, wantOut, wantOk)
			cached.GetMany(locals, gotOut, gotOk)
			for j := range locals {
				if wantOk[j] != gotOk[j] {
					t.Fatalf("op %d: run pos %d presence diverged", i, j)
				}
				if wantOk[j] && (wantOut[j].Epoch != gotOut[j].Epoch || !bytes.Equal(wantOut[j].Ct, gotOut[j].Ct)) {
					t.Fatalf("op %d: run pos %d bytes diverged with cache on", i, j)
				}
			}
		default:
			l := r.Uint64n(64)
			want, wok := plain.Get(l)
			got, gok := cached.Get(l)
			if wok != gok {
				t.Fatalf("op %d: local %d presence diverged", i, l)
			}
			if wok && (want.Epoch != got.Epoch || !bytes.Equal(want.Ct, got.Ct)) {
				t.Fatalf("op %d: local %d bytes diverged with cache on", i, l)
			}
		}
	}
	if h, _ := cached.SlotCacheStats(); h == 0 {
		t.Fatal("workload never hit the cache; the equivalence is vacuous")
	}
}
