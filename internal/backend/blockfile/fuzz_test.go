package blockfile

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"palermo/internal/backend"
	"palermo/internal/crypt"
)

// FuzzBlockfileSlot throws arbitrary slot images at the decoder — torn,
// bit-flipped, short, cross-linked — and checks the recovery-scan
// invariants: never panic, never classify an unverifiable image as
// valid, and round-trip every image the decoder does accept.
func FuzzBlockfileSlot(f *testing.F) {
	// Seed corpus: a well-formed slot, truncations, a bit flip, a
	// cross-linked id, an empty slot, and a short garbage run.
	valid := make([]byte, SlotBytes)
	encodeSlot(valid, 42, backend.Sealed{Ct: bytes.Repeat([]byte{0xA5}, crypt.BlockBytes), Epoch: 7})
	f.Add(valid, uint64(42))
	f.Add(valid[:slotUsed-1], uint64(42)) // chopped mid-CRC
	f.Add(valid[:37], uint64(42))         // chopped mid-payload
	flipped := append([]byte(nil), valid...)
	flipped[30] ^= 0x01
	f.Add(flipped, uint64(42))
	f.Add(valid, uint64(43)) // right bytes, wrong offset: cross-linked
	f.Add(make([]byte, SlotBytes), uint64(0))
	f.Add([]byte{1, 2, 3}, uint64(9))

	f.Fuzz(func(t *testing.T, data []byte, local uint64) {
		sb, st := decodeSlot(data, local)
		switch st {
		case slotEmpty:
			n := len(data)
			if n > SlotBytes {
				n = SlotBytes
			}
			if !allZero(data[:n]) {
				t.Fatalf("nonzero image classified empty")
			}
		case slotValid:
			// A valid verdict must be backed by the full frame: magic,
			// matching id, and a CRC that covers header and payload.
			if len(data) < slotUsed {
				t.Fatalf("short image classified valid")
			}
			if binary.LittleEndian.Uint64(data[8:16]) != local {
				t.Fatalf("cross-linked id classified valid")
			}
			if crc32.ChecksumIEEE(data[:slotUsed-4]) != binary.LittleEndian.Uint32(data[slotUsed-4:slotUsed]) {
				t.Fatalf("bad CRC classified valid")
			}
			if len(sb.Ct) != crypt.BlockBytes {
				t.Fatalf("valid decode returned %d-byte ciphertext", len(sb.Ct))
			}
			// Round-trip: re-encoding the decoded value reproduces the
			// canonical frame, and it decodes back identically.
			re := make([]byte, SlotBytes)
			encodeSlot(re, local, sb)
			if !bytes.Equal(re[:slotUsed], data[:slotUsed]) {
				t.Fatalf("re-encode diverges from accepted frame")
			}
			sb2, st2 := decodeSlot(re, local)
			if st2 != slotValid || sb2.Epoch != sb.Epoch || !bytes.Equal(sb2.Ct, sb.Ct) {
				t.Fatalf("round-trip decode diverges")
			}
			// The decoded ciphertext must be a copy, never an alias.
			if len(data) > 24 {
				data[24] ^= 0xFF
				if sb.Ct[0] == data[24] {
					t.Fatalf("decoded ciphertext aliases the input buffer")
				}
			}
		case slotTorn:
			// Discarded whole; nothing to check beyond not panicking.
		default:
			t.Fatalf("unknown slot status %d", st)
		}
	})
}
