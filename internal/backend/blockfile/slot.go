package blockfile

import (
	"encoding/binary"
	"hash/crc32"

	"palermo/internal/backend"
	"palermo/internal/crypt"
)

// SlotBytes is the fixed on-disk slot size: one logical disk sector, the
// alignment and torn-write granularity of direct I/O. A block's slot
// offset is local × SlotBytes, so addressing needs no index structure
// and a slot rewrite never touches a neighbor.
const SlotBytes = 512

const (
	slotMagic = "PBSL"
	// Slot layout: magic(4) | reserved(4, zero) | local(8) | epoch(8) |
	// ct(64) | crc32(4, over everything before it); the rest of the slot
	// is zero padding to the sector boundary.
	slotUsed = 4 + 4 + 8 + 8 + crypt.BlockBytes + 4
)

// slotStatus classifies one slot image during the recovery scan.
type slotStatus uint8

const (
	// slotEmpty: every byte zero — the block was never written (sparse
	// file holes read back as zeros).
	slotEmpty slotStatus = iota
	// slotValid: header, id, and CRC all verify.
	slotValid
	// slotTorn: nonzero bytes that do not verify — a write a power loss
	// cut mid-sector, or external corruption. Recovery discards the
	// whole slot under the covering epoch reservation.
	slotTorn
)

// encodeSlot frames one sealed block into dst[:SlotBytes]. The embedded
// local id guards against offset-arithmetic bugs and cross-linked
// sectors: a slot that verifies but carries the wrong id is treated as
// torn, never served as another block's payload.
func encodeSlot(dst []byte, local uint64, sb backend.Sealed) {
	for i := range dst[:SlotBytes] {
		dst[i] = 0
	}
	copy(dst[0:4], slotMagic)
	binary.LittleEndian.PutUint64(dst[8:16], local)
	binary.LittleEndian.PutUint64(dst[16:24], sb.Epoch)
	copy(dst[24:24+crypt.BlockBytes], sb.Ct)
	binary.LittleEndian.PutUint32(dst[slotUsed-4:slotUsed], crc32.ChecksumIEEE(dst[:slotUsed-4]))
}

// decodeSlot parses and verifies one slot image against the local id its
// offset implies. buf may be shorter than SlotBytes (a file truncated
// mid-slot); a short or otherwise unverifiable nonzero image is torn.
// The sealed ciphertext is copied out, never aliased into buf.
func decodeSlot(buf []byte, local uint64) (backend.Sealed, slotStatus) {
	n := len(buf)
	if n > SlotBytes {
		n = SlotBytes
		buf = buf[:SlotBytes]
	}
	if allZero(buf) {
		return backend.Sealed{}, slotEmpty
	}
	if n < slotUsed || string(buf[0:4]) != slotMagic {
		return backend.Sealed{}, slotTorn
	}
	if crc32.ChecksumIEEE(buf[:slotUsed-4]) != binary.LittleEndian.Uint32(buf[slotUsed-4:slotUsed]) {
		return backend.Sealed{}, slotTorn
	}
	if binary.LittleEndian.Uint64(buf[8:16]) != local {
		return backend.Sealed{}, slotTorn
	}
	ct := append([]byte(nil), buf[24:24+crypt.BlockBytes]...)
	return backend.Sealed{Ct: ct, Epoch: binary.LittleEndian.Uint64(buf[16:24])}, slotValid
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
