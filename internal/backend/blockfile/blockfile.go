// Package blockfile is the paged direct-I/O block-state backend: sealed
// blocks live in a fixed-slot file addressed by shard-local id (slot
// offset = id × SlotBytes), and the append-only log holds only tiny
// metadata records — so checkpoint compaction rewrites the metadata
// snapshot alone, never the payloads, and capacity is disk-bound instead
// of RAM-bound (the WAL backend keeps every sealed block in a map and
// rewrites all of them per snapshot).
//
// On-disk layout (one directory per shard):
//
//	blocks.dat  fixed SlotBytes slots; slot i at offset i*SlotBytes:
//	            magic | reserved | local(8) | epoch(8) | ct[64] |
//	            crc32(header+payload) | zero padding to the sector
//	meta.log    magic | seq | crc32(header), then 20-byte records:
//	            local(8) | epoch(8) | crc32(record)
//	meta.snap   magic | seq | metaEpoch | metaLen | meta | crc32
//
// blocks.dat is opened with O_DIRECT where the filesystem supports it
// (buffered fallback elsewhere — same format, so directories move
// between modes freely). Slot writes are issued as vectored pwrites:
// runs of consecutive locals coalesce into single sector-aligned
// WriteAt calls, and GetMany preads coalesce the same way.
//
// Write protocol: each Put pwrites the slot, then appends a metadata
// record naming (local, epoch); a group commit syncs blocks.dat before
// meta.log, so a durable log record always implies a durable slot. A
// record with local == backend.EpochReserveLocal is an epoch
// reservation: before any slot carrying epoch e > reserved is pwritten,
// a reservation for e + reserveChunk is appended and fsynced. Every
// epoch the disk could ever have observed — including in a slot a power
// loss tore mid-sector — is therefore bounded by a durable reservation,
// and recovery can discard torn slots whole without trusting their
// epoch fields, while the restored sealer skips past the reservation so
// no observed IV is ever reused.
//
// Recovery on Open replays the metadata log (truncating a torn tail;
// refusing mid-log corruption, exactly the WAL discipline), then scans
// every slot header against it. A valid slot whose epoch exceeds both
// the checkpoint and its last logged record is an orphan: its pwrite
// completed but the crash took the buffered log record — the slot
// itself is the durable evidence, so recovery synthesizes its tail op,
// ordered by epoch (the per-shard sealing counter is a monotone LSN:
// epoch order is submission order). Torn or stale slots are zeroed —
// discarded whole, never served half-written — under the covering
// reservation. Wrong-key reopens are rejected above this layer by the
// shard's checkpoint decode, as with the WAL.
//
// The slot file stores exactly the view the untrusted storage of the
// paper's §VI threat model already observes — (local id, ciphertext,
// epoch) — and its access pattern is the uniform fixed-slot pattern the
// ORAM engine already exposes, so the engine's obliviousness argument
// carries over unchanged (DESIGN.md §12).
package blockfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"palermo/internal/backend"
	"palermo/internal/crypt"
)

const (
	logMagic  = "PBFLOG01"
	snapMagic = "PBFSNP01"

	headerSize = 8 + 8 + 4 // magic, seq, crc
	recSize    = 8 + 8 + 4 // local, epoch, crc

	dataName = "blocks.dat"
	logName  = "meta.log"
	snapName = "meta.snap"

	// DefaultGroupCommit is how many metadata records share one
	// data+log sync pair (matches the WAL backend's cadence).
	DefaultGroupCommit = 32

	// reserveChunk is how far ahead of the highest assigned epoch each
	// reservation record reaches: one reservation fsync covers the next
	// reserveChunk slot writes, so the IV-safety cost is amortized to
	// ~1/4096 of an fsync per write.
	reserveChunk = 4096

	// maxRunSlots caps one coalesced read/write run (and the aligned
	// scratch buffer) at 64 KiB.
	maxRunSlots = 128

	// maxSlots bounds accepted locals: matches the store's 2^40-block
	// capacity cap and keeps slot offsets far from int64 overflow.
	maxSlots = 1 << 40
)

// MaxGroupCommit caps the group-commit batch (same bound as the WAL).
const MaxGroupCommit = 1 << 16

// Options tunes a blockfile backend.
type Options struct {
	// GroupCommit is the number of put records per sync pair (default
	// DefaultGroupCommit; 1 = synchronous durability for every write).
	GroupCommit int
	// NoDirect forces buffered I/O even where O_DIRECT is available
	// (benchmark comparisons; the format is identical).
	NoDirect bool
	// CacheBytes budgets the slot-level read cache: recently read slots
	// stay resident in decoded form (CLOCK eviction, SlotBytes charged
	// per slot) so repeated reads skip the pread. Writes invalidate
	// their slots and Checkpoint clears the cache, so served bytes are
	// identical at every budget. 0 (the default) disables the cache.
	CacheBytes int
}

func (o *Options) defaults() {
	if o.GroupCommit <= 0 {
		o.GroupCommit = DefaultGroupCommit
	}
	if o.GroupCommit > MaxGroupCommit {
		o.GroupCommit = MaxGroupCommit
	}
}

// Backend is a durable paged block-state backend over one directory.
type Backend struct {
	dir string
	opt Options

	dataF  *os.File // blocks.dat, O_DIRECT when supported
	direct bool
	logF   *os.File
	lockF  *os.File
	bw     *bufio.Writer

	present []uint64 // bitmap of stored slots (the only per-block RAM)
	count   int

	scratch []byte // sector-aligned I/O buffer, maxRunSlots slots

	cache *slotCache // resident decoded slots (nil: cache off)

	reserved uint64 // highest durably reserved sealing epoch

	meta      []byte
	metaEpoch uint64
	tail      []backend.TailOp
	seq       uint64

	pending int
	closed  bool
	failErr error

	// Commit-path fsync telemetry (atomics: FsyncStats reads them from
	// any goroutine while the owner is mid-sync).
	fsyncN     atomic.Uint64
	fsyncNanos atomic.Uint64
}

// Open creates or recovers the backend rooted at dir. The directory is
// exclusively locked for the backend's lifetime.
func Open(dir string, opt Options) (*Backend, error) {
	opt.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockfile: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	b := &Backend{dir: dir, opt: opt, lockF: lock}
	fail := func(err error) (*Backend, error) {
		b.unlock()
		return nil, err
	}
	if err := b.loadSnapshot(); err != nil {
		return fail(err)
	}
	recs, maxReserve, err := b.recoverLog()
	if err != nil {
		return fail(err)
	}
	orphans, err := b.scanSlots(recs)
	if err != nil {
		return fail(err)
	}
	b.tail = mergeByEpoch(recs, orphans)
	if maxReserve > 0 {
		// Surface the durable reservation bound so the restored sealer
		// skips every epoch the disk could have observed, including any
		// a torn slot carried before recovery zeroed it.
		b.tail = append(b.tail, backend.TailOp{Local: backend.EpochReserveLocal, Epoch: maxReserve})
	}
	b.reserved = maxUint64(maxReserve, b.metaEpoch)

	f, direct, err := openDataFile(b.path(dataName), opt.NoDirect)
	if err != nil {
		return fail(fmt.Errorf("blockfile: %w", err))
	}
	b.dataF, b.direct = f, direct
	b.scratch = alignedBuf(maxRunSlots * SlotBytes)
	b.cache = newSlotCache(opt.CacheBytes)
	lf, err := os.OpenFile(b.path(logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		f.Close()
		return fail(fmt.Errorf("blockfile: %w", err))
	}
	b.logF = lf
	b.bw = bufio.NewWriterSize(lf, b.opt.GroupCommit*recSize+recSize)
	return b, nil
}

// Direct reports whether the slot file is open with O_DIRECT.
func (b *Backend) Direct() bool { return b.direct }

func (b *Backend) path(name string) string { return filepath.Join(b.dir, name) }

func (b *Backend) unlock() {
	if b.lockF != nil {
		b.lockF.Close()
		b.lockF = nil
	}
}

func maxUint64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// --- presence bitmap ---------------------------------------------------

func (b *Backend) isPresent(local uint64) bool {
	w := local >> 6
	return w < uint64(len(b.present)) && b.present[w]>>(local&63)&1 == 1
}

func (b *Backend) markPresent(local uint64) {
	w := local >> 6
	for uint64(len(b.present)) <= w {
		b.present = append(b.present, 0)
	}
	if b.present[w]>>(local&63)&1 == 0 {
		b.present[w] |= 1 << (local & 63)
		b.count++
	}
}

// --- Backend interface -------------------------------------------------

// Len implements backend.Backend.
func (b *Backend) Len() int { return b.count }

// Durable implements backend.Backend.
func (b *Backend) Durable() bool { return true }

// Recovered implements backend.Backend.
func (b *Backend) Recovered() ([]byte, uint64, []backend.TailOp) {
	return b.meta, b.metaEpoch, b.tail
}

func (b *Backend) closedErr() error {
	if b.failErr != nil {
		return b.failErr
	}
	return fmt.Errorf("blockfile: backend is closed")
}

func validatePut(local uint64, sb backend.Sealed) error {
	if len(sb.Ct) != crypt.BlockBytes {
		return fmt.Errorf("blockfile: ciphertext must be %d bytes, got %d", crypt.BlockBytes, len(sb.Ct))
	}
	if local >= maxSlots {
		return fmt.Errorf("blockfile: block id %d is out of slot range", local)
	}
	return nil
}

// Get implements backend.Backend: one slot pread. Runtime reads parse
// the header without re-verifying the CRC — torn detection is the
// recovery scan's job, and integrity of a served payload is enforced
// above this layer by the protocol's epoch-consistency check (a
// mismatched epoch fails the read loudly). An I/O error on a present
// slot surfaces the same way: the impossible epoch below can never
// match the engine's expectation.
func (b *Backend) Get(local uint64) (backend.Sealed, bool) {
	if b.closed || !b.isPresent(local) {
		return backend.Sealed{}, false
	}
	if b.cache != nil {
		if sb, hit := b.cache.get(local); hit {
			b.cache.hits.Add(1)
			return sb, true
		}
	}
	buf := b.scratch[:SlotBytes]
	if _, err := b.dataF.ReadAt(buf, int64(local)*SlotBytes); err != nil {
		return backend.Sealed{Ct: make([]byte, crypt.BlockBytes), Epoch: ^uint64(0)}, true
	}
	ct := append([]byte(nil), buf[24:24+crypt.BlockBytes]...)
	sb := backend.Sealed{Ct: ct, Epoch: binary.LittleEndian.Uint64(buf[16:24])}
	if b.cache != nil {
		b.cache.misses.Add(1)
		b.cache.put(local, sb.Epoch, ct)
	}
	return sb, true
}

// SlotCacheStats reports how many slots vectored and single Gets served
// from the resident cache versus slots that paid a pread (always (0, 0)
// with the cache off). Safe to call from any goroutine at any time.
func (b *Backend) SlotCacheStats() (hits, misses uint64) {
	if b.cache == nil {
		return 0, 0
	}
	return b.cache.hits.Load(), b.cache.misses.Load()
}

// GetMany implements backend.VectorBackend: runs of consecutive locals
// coalesce into single preads. Duplicate or aliasing ids simply read
// the same slot again — each position gets an independent copy.
func (b *Backend) GetMany(locals []uint64, out []backend.Sealed, ok []bool) {
	for start := 0; start < len(locals); {
		end := start + 1
		for end < len(locals) && end-start < maxRunSlots && locals[end] == locals[end-1]+1 {
			end++
		}
		b.readRun(locals[start:end], out[start:end], ok[start:end])
		start = end
	}
}

// readRun serves one consecutive-locals run from a single pread.
func (b *Backend) readRun(locals []uint64, out []backend.Sealed, ok []bool) {
	any := false
	for _, l := range locals {
		if !b.closed && b.isPresent(l) {
			any = true
			break
		}
	}
	if !any {
		for i := range out {
			out[i], ok[i] = backend.Sealed{}, false
		}
		return
	}
	if b.cache != nil && b.readRunCached(locals, out, ok) {
		return
	}
	buf := b.scratch[:len(locals)*SlotBytes]
	n, err := b.dataF.ReadAt(buf, int64(locals[0])*SlotBytes)
	if err != nil && err != io.EOF {
		for i, l := range locals {
			out[i], ok[i] = b.Get(l) // per-slot fallback surfaces errors like Get
		}
		return
	}
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
	served := uint64(0)
	for i, l := range locals {
		if !b.isPresent(l) {
			out[i], ok[i] = backend.Sealed{}, false
			continue
		}
		s := buf[i*SlotBytes : (i+1)*SlotBytes]
		ct := append([]byte(nil), s[24:24+crypt.BlockBytes]...)
		out[i], ok[i] = backend.Sealed{Ct: ct, Epoch: binary.LittleEndian.Uint64(s[16:24])}, true
		if b.cache != nil {
			b.cache.put(l, out[i].Epoch, ct)
			served++
		}
	}
	if b.cache != nil {
		b.cache.misses.Add(served)
	}
}

// readRunCached serves one consecutive-locals run entirely from the
// resident cache, or reports false without touching anything if any
// present slot of the run is missing (the run then pays its one
// coalesced pread and refills, so a partial hit never splits the run
// into extra syscalls).
func (b *Backend) readRunCached(locals []uint64, out []backend.Sealed, ok []bool) bool {
	for _, l := range locals {
		if b.isPresent(l) && !b.cache.has(l) {
			return false
		}
	}
	served := uint64(0)
	for i, l := range locals {
		if !b.isPresent(l) {
			out[i], ok[i] = backend.Sealed{}, false
			continue
		}
		out[i], ok[i] = b.cache.get(l)
		served++
	}
	b.cache.hits.Add(served)
	return true
}

// Put implements backend.Backend: reserve the epoch if needed, pwrite
// the slot, append the metadata record, and commit per the group-commit
// policy.
func (b *Backend) Put(local uint64, sb backend.Sealed) error {
	if b.closed {
		return b.closedErr()
	}
	if err := validatePut(local, sb); err != nil {
		return err
	}
	if err := b.ensureReserved(sb.Epoch); err != nil {
		return err
	}
	one := [1]backend.PutOp{{Local: local, Sb: sb}}
	if err := b.writeRun(one[:]); err != nil {
		return err
	}
	if err := b.appendRecord(local, sb.Epoch); err != nil {
		return err
	}
	b.pending++
	if b.pending >= b.opt.GroupCommit {
		if err := b.commit(); err != nil {
			return err
		}
	}
	b.markPresent(local)
	return nil
}

// PutMany implements backend.VectorBackend: slots are written as
// vectored pwrites (runs of consecutive locals in one aligned WriteAt),
// then the metadata records append in op order. Duplicates within the
// vector land last-writer-wins because runs are issued in scan order.
// The vector counts len(ops) records toward the group-commit policy,
// exactly like the WAL.
func (b *Backend) PutMany(ops []backend.PutOp) error {
	if b.closed {
		return b.closedErr()
	}
	if len(ops) == 0 {
		return nil
	}
	maxE := uint64(0)
	for _, op := range ops {
		if err := validatePut(op.Local, op.Sb); err != nil {
			return err
		}
		if op.Sb.Epoch > maxE {
			maxE = op.Sb.Epoch
		}
	}
	if err := b.ensureReserved(maxE); err != nil {
		return err
	}
	for start := 0; start < len(ops); {
		end := start + 1
		for end < len(ops) && end-start < maxRunSlots && ops[end].Local == ops[end-1].Local+1 {
			end++
		}
		if err := b.writeRun(ops[start:end]); err != nil {
			return err
		}
		start = end
	}
	for _, op := range ops {
		if err := b.appendRecord(op.Local, op.Sb.Epoch); err != nil {
			return err
		}
	}
	b.pending += len(ops)
	if b.pending >= b.opt.GroupCommit {
		if err := b.commit(); err != nil {
			return err
		}
	}
	for _, op := range ops {
		b.markPresent(op.Local)
	}
	return nil
}

// writeRun pwrites one consecutive-locals run as a single aligned
// WriteAt. A failed slot write is non-recoverable (the file may hold a
// partial run), so it wedges the backend.
func (b *Backend) writeRun(ops []backend.PutOp) error {
	buf := b.scratch[:len(ops)*SlotBytes]
	for i, op := range ops {
		encodeSlot(buf[i*SlotBytes:(i+1)*SlotBytes], op.Local, op.Sb)
	}
	if _, err := b.dataF.WriteAt(buf, int64(ops[0].Local)*SlotBytes); err != nil {
		return b.fail(fmt.Errorf("blockfile: slot write: %w", err))
	}
	if b.cache != nil {
		// writeRun is the single choke point for slot mutation, so
		// invalidating here keeps the read cache coherent for every Put
		// and PutMany shape (the next read refills from the new bytes).
		for _, op := range ops {
			b.cache.invalidate(op.Local)
		}
	}
	return nil
}

// ensureReserved makes sure a durable reservation record covers epoch
// before any slot carrying it is pwritten: if a power loss tears the
// slot mid-sector, recovery discards it whole and the reservation still
// bounds every epoch the disk observed, so no IV is ever reused. The
// reservation reaches reserveChunk ahead, amortizing its sync pair.
func (b *Backend) ensureReserved(epoch uint64) error {
	if epoch <= b.reserved {
		return nil
	}
	r := epoch + reserveChunk
	if err := b.appendRecord(backend.EpochReserveLocal, r); err != nil {
		return err
	}
	// Full commit ordering (data before log): records already buffered
	// ahead of the reservation become durable here, and their slots
	// must be durable first — a durable log record always implies a
	// durable slot.
	if err := b.commit(); err != nil {
		return err
	}
	b.reserved = r
	return nil
}

// frameRec builds one CRC-framed metadata record.
func frameRec(local, epoch uint64) [recSize]byte {
	var rec [recSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], local)
	binary.LittleEndian.PutUint64(rec[8:16], epoch)
	binary.LittleEndian.PutUint32(rec[16:20], crc32.ChecksumIEEE(rec[:16]))
	return rec
}

func recIntact(rec []byte) bool {
	return crc32.ChecksumIEEE(rec[:recSize-4]) == binary.LittleEndian.Uint32(rec[recSize-4:])
}

func (b *Backend) appendRecord(local, epoch uint64) error {
	rec := frameRec(local, epoch)
	if _, err := b.bw.Write(rec[:]); err != nil {
		return b.fail(fmt.Errorf("blockfile: %w", err))
	}
	return nil
}

// commit completes one group-commit batch: flush buffered records, sync
// the slot file, then the log — in that order, so a record never
// becomes durable before its slot data.
func (b *Backend) commit() error {
	if err := b.bw.Flush(); err != nil {
		return b.fail(fmt.Errorf("blockfile: %w", err))
	}
	if err := b.timedSync(b.dataF); err != nil {
		return b.fail(fmt.Errorf("blockfile: %w", err))
	}
	if err := b.timedSync(b.logF); err != nil {
		return b.fail(fmt.Errorf("blockfile: %w", err))
	}
	b.pending = 0
	return nil
}

// timedSync fsyncs f and charges the wait to the backend's commit-path
// fsync telemetry.
func (b *Backend) timedSync(f *os.File) error {
	t0 := time.Now()
	err := f.Sync()
	b.fsyncN.Add(1)
	b.fsyncNanos.Add(uint64(time.Since(t0)))
	return err
}

// FsyncStats reports how many commit-path (data+log) fsyncs the backend
// has issued and the cumulative time spent waiting on them. Checkpoint
// and recovery fsyncs are rare one-offs and are not counted. Safe to
// call from any goroutine at any time.
func (b *Backend) FsyncStats() (count uint64, total time.Duration) {
	return b.fsyncN.Load(), time.Duration(b.fsyncNanos.Load())
}

// Flush implements backend.Backend. Failure semantics follow the WAL:
// any flush or sync failure wedges the backend (the fsync-retry trap).
func (b *Backend) Flush() error {
	if b.closed {
		return b.closedErr()
	}
	return b.commit()
}

// Checkpoint implements backend.Backend: O(metadata) — the snapshot
// holds only the sealed metadata blob, never payload bytes (those are
// already in their slots), so compaction cost is independent of how
// many blocks the store holds.
func (b *Backend) Checkpoint(meta []byte, metaEpoch uint64) error {
	if b.closed {
		return b.closedErr()
	}
	// Durably reserve the blob's sealing epoch in the *current* log
	// before any sealed snapshot byte reaches disk: a crash
	// mid-checkpoint recovers the old snapshot plus this reservation,
	// so the restored sealer can never re-issue the blob's IV.
	if err := b.ensureReserved(metaEpoch); err != nil {
		return err
	}
	if err := b.commit(); err != nil {
		return err
	}
	newSeq := b.seq + 1
	if err := b.writeSnapshot(newSeq, meta, metaEpoch); err != nil {
		return err
	}
	if err := b.resetLog(newSeq); err != nil {
		return b.fail(err)
	}
	b.seq = newSeq
	b.meta = append([]byte(nil), meta...)
	b.metaEpoch = metaEpoch
	b.tail = nil
	if b.cache != nil {
		// Checkpoints change no slot bytes, but they are the natural
		// epoch boundary for discarding resident state wholesale — the
		// conservative coherence rule DESIGN.md §14 documents.
		b.cache.clear()
	}
	// The reset dropped the old log's reservation records. metaEpoch
	// exceeds every epoch assigned so far, so it is the new floor; the
	// next put re-reserves into the fresh log.
	b.reserved = metaEpoch
	return nil
}

// Close implements backend.Backend: flush, sync, release files and the
// directory lock. Idempotent; a wedged backend re-surfaces its error.
func (b *Backend) Close() error {
	if b.closed {
		return b.failErr
	}
	err := b.Flush()
	if b.closed {
		// Flush wedged the backend and already released everything.
		return b.failErr
	}
	b.closed = true
	if cerr := b.logF.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("blockfile: %w", cerr)
	}
	if cerr := b.dataF.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("blockfile: %w", cerr)
	}
	b.failErr = err
	b.unlock()
	return err
}

// fail wedges the backend after a non-recoverable mid-operation error.
func (b *Backend) fail(err error) error {
	if !b.closed {
		b.closed = true
		b.failErr = err
	}
	if b.logF != nil {
		b.logF.Close()
		b.logF = nil
	}
	if b.dataF != nil {
		b.dataF.Close()
		b.dataF = nil
	}
	b.unlock()
	return err
}

// --- snapshot ----------------------------------------------------------

// writeSnapshot persists the sealed metadata blob atomically (temp +
// rename + dirsync). No payload bytes: the slots are the payload store.
func (b *Backend) writeSnapshot(seq uint64, meta []byte, metaEpoch uint64) error {
	tmp := b.path(snapName + ".tmp")
	buf := make([]byte, 0, 8+8+8+4+len(meta)+4)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, metaEpoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(meta)))
	buf = append(buf, meta...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("blockfile: %w", err)
	}
	_, werr := f.Write(buf)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("blockfile: snapshot: %w", werr)
	}
	if err := os.Rename(tmp, b.path(snapName)); err != nil {
		return fmt.Errorf("blockfile: %w", err)
	}
	return syncDir(b.dir)
}

func (b *Backend) loadSnapshot() error {
	data, err := os.ReadFile(b.path(snapName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("blockfile: %w", err)
	}
	if len(data) < 8+8+8+4+4 || string(data[:8]) != snapMagic {
		return fmt.Errorf("blockfile: %s is not a palermo metadata snapshot", b.path(snapName))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return fmt.Errorf("blockfile: snapshot CRC mismatch (corrupt %s)", b.path(snapName))
	}
	b.seq = binary.LittleEndian.Uint64(body[8:16])
	b.metaEpoch = binary.LittleEndian.Uint64(body[16:24])
	metaLen := int(binary.LittleEndian.Uint32(body[24:28]))
	if 28+metaLen != len(body) {
		return fmt.Errorf("blockfile: snapshot metadata length %d does not match file", metaLen)
	}
	if metaLen > 0 {
		b.meta = append([]byte(nil), body[28:28+metaLen]...)
	}
	return nil
}

// --- log recovery ------------------------------------------------------

// recoverLog replays the metadata log: write records in order, plus the
// highest reservation bound. A torn tail is truncated (no synthetic
// reservation is needed, unlike the WAL: a reservation record is only
// acknowledged after its own sync completes, so a torn one never had
// dependent slot writes, and torn write records' epochs are covered by
// their slots — valid slots replay as orphans, torn slots fall under
// the standing reservation). Mid-log corruption is refused.
func (b *Backend) recoverLog() (recs []backend.TailOp, maxReserve uint64, err error) {
	path := b.path(logName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if b.seq > 0 {
			return nil, 0, fmt.Errorf("blockfile: %s is missing but a checkpoint-%d snapshot exists (log removed externally)", path, b.seq)
		}
		return nil, 0, b.resetLogInit()
	}
	if err != nil {
		return nil, 0, fmt.Errorf("blockfile: %w", err)
	}
	if len(data) < headerSize || string(data[:8]) != logMagic ||
		crc32.ChecksumIEEE(data[:16]) != binary.LittleEndian.Uint32(data[16:20]) {
		return nil, 0, fmt.Errorf("blockfile: %s has a corrupt header", path)
	}
	seq := binary.LittleEndian.Uint64(data[8:16])
	if seq < b.seq {
		// Crash between snapshot rename and log reset: every record here
		// is already folded into the snapshot's metadata. Discard.
		return nil, 0, b.resetLogInit()
	}
	if seq > b.seq {
		return nil, 0, fmt.Errorf("blockfile: %s is at checkpoint %d but the snapshot is at %d (missing or rolled-back snapshot)",
			path, seq, b.seq)
	}
	off := headerSize
	for off+recSize <= len(data) {
		rec := data[off : off+recSize]
		if !recIntact(rec) {
			if err := corruptionCheck(data, off, path); err != nil {
				return nil, 0, err
			}
			break
		}
		local := binary.LittleEndian.Uint64(rec[0:8])
		epoch := binary.LittleEndian.Uint64(rec[8:16])
		if local == backend.EpochReserveLocal {
			if epoch > maxReserve {
				maxReserve = epoch
			}
		} else {
			recs = append(recs, backend.TailOp{Local: local, Epoch: epoch})
		}
		off += recSize
	}
	if off < len(data) {
		// Torn group-commit tail: truncate to the last intact record.
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, 0, fmt.Errorf("blockfile: %w", err)
		}
		werr := f.Truncate(int64(off))
		if werr == nil {
			werr = f.Sync()
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return nil, 0, fmt.Errorf("blockfile: %w", werr)
		}
	}
	return recs, maxReserve, nil
}

// corruptionCheck distinguishes a crash tail from mid-log corruption:
// fixed-size framing keeps alignment, so any intact record beyond the
// damage proves acknowledged writes would be dropped by truncation —
// refuse instead (the WAL's rule).
func corruptionCheck(data []byte, badOff int, path string) error {
	for o := badOff + recSize; o+recSize <= len(data); o += recSize {
		if recIntact(data[o : o+recSize]) {
			return fmt.Errorf("blockfile: %s is corrupt at offset %d (intact records follow — not a crash tail)", path, badOff)
		}
	}
	return nil
}

func writeLogHeader(path string, seq uint64) error {
	var hdr [headerSize]byte
	copy(hdr[0:8], logMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[:16]))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("blockfile: %w", err)
	}
	_, werr := f.Write(hdr[:])
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path)
		return fmt.Errorf("blockfile: %w", werr)
	}
	return nil
}

// resetLogInit writes a fresh empty log during Open (no handle yet).
func (b *Backend) resetLogInit() error {
	tmp := b.path(logName + ".tmp")
	if err := writeLogHeader(tmp, b.seq); err != nil {
		return err
	}
	if err := os.Rename(tmp, b.path(logName)); err != nil {
		return fmt.Errorf("blockfile: %w", err)
	}
	return syncDir(b.dir)
}

// resetLog atomically replaces the log with an empty one at seq. Any
// failure is non-recoverable (Checkpoint wedges): the snapshot already
// carries seq, so appending to an older-seq log would feed writes a
// later recovery throws away.
func (b *Backend) resetLog(seq uint64) error {
	tmp := b.path(logName + ".tmp")
	if err := writeLogHeader(tmp, seq); err != nil {
		return err
	}
	if err := os.Rename(tmp, b.path(logName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("blockfile: %w", err)
	}
	if err := syncDir(b.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(b.path(logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("blockfile: %w", err)
	}
	b.logF.Close()
	b.logF = f
	b.bw.Reset(f)
	b.pending = 0
	return nil
}

// --- slot scan ---------------------------------------------------------

// scanSlots walks every slot header against the recovered log, building
// the presence bitmap and collecting orphans — valid slots whose epoch
// exceeds both the checkpoint and their last logged record (the pwrite
// landed; the crash took the buffered record). Torn slots, and slots
// stale relative to an acknowledged logged write, are zeroed: discarded
// whole under the covering reservation.
func (b *Backend) scanSlots(recs []backend.TailOp) ([]backend.TailOp, error) {
	lastLogged := make(map[uint64]uint64, len(recs))
	for _, r := range recs {
		if r.Epoch > lastLogged[r.Local] {
			lastLogged[r.Local] = r.Epoch
		}
	}
	f, err := os.OpenFile(b.path(dataName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockfile: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("blockfile: %w", err)
	}
	size := fi.Size()
	var orphans []backend.TailOp
	var discard []uint64
	buf := make([]byte, 512*SlotBytes)
	for base := int64(0); base < size; base += int64(len(buf)) {
		n, err := f.ReadAt(buf, base)
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("blockfile: slot scan: %w", err)
		}
		for off := 0; off < n; off += SlotBytes {
			local := uint64(base/SlotBytes) + uint64(off/SlotBytes)
			end := off + SlotBytes
			if end > n {
				end = n
			}
			sb, st := decodeSlot(buf[off:end], local)
			if st == slotEmpty {
				continue
			}
			if st == slotTorn {
				discard = append(discard, local)
				continue
			}
			last, logged := lastLogged[local]
			switch {
			case logged && sb.Epoch == last,
				!logged && sb.Epoch <= b.metaEpoch:
				// Consistent with the log (or pre-checkpoint).
				b.markPresent(local)
			case sb.Epoch > b.metaEpoch && (!logged || sb.Epoch > last):
				// Orphan: durable slot, lost record. The slot is the
				// evidence; synthesize its tail op.
				b.markPresent(local)
				orphans = append(orphans, backend.TailOp{Local: local, Epoch: sb.Epoch})
			default:
				// Stale: an acknowledged logged write's newer payload is
				// gone (possible only under external corruption — commit
				// order makes durable records imply durable slots).
				// Discard whole rather than serve the superseded bytes.
				discard = append(discard, local)
			}
		}
	}
	if len(discard) > 0 {
		zero := make([]byte, SlotBytes)
		for _, l := range discard {
			if _, err := f.WriteAt(zero, int64(l)*SlotBytes); err != nil {
				return nil, fmt.Errorf("blockfile: discarding slot %d: %w", l, err)
			}
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("blockfile: %w", err)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].Epoch < orphans[j].Epoch })
	return orphans, nil
}

// mergeByEpoch interleaves logged records and orphans into one
// epoch-ordered tail. Epochs are the shard's sealing counter — a
// monotone LSN assigned in submission order — so epoch order IS
// submission order; both inputs arrive epoch-sorted.
func mergeByEpoch(recs, orphans []backend.TailOp) []backend.TailOp {
	if len(orphans) == 0 {
		return recs
	}
	out := make([]backend.TailOp, 0, len(recs)+len(orphans))
	i, j := 0, 0
	for i < len(recs) && j < len(orphans) {
		if recs[i].Epoch <= orphans[j].Epoch {
			out = append(out, recs[i])
			i++
		} else {
			out = append(out, orphans[j])
			j++
		}
	}
	out = append(out, recs[i:]...)
	return append(out, orphans[j:]...)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("blockfile: %w", err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("blockfile: %w", err)
	}
	return nil
}
