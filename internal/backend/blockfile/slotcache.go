package blockfile

// The slot read cache keeps recently read slots resident in decoded form
// (ciphertext + epoch) so repeated tree-top and posmap-group reads skip
// the pread entirely — the RAM-sized-store gap between this engine and
// the WAL's full RAM mirror, closed for exactly the hot fraction a
// byte budget admits (DESIGN.md §14).
//
// Coherence is trivial because the backend is single-owner: every Get,
// Put, and Checkpoint runs on the shard's I/O goroutine, so the cache
// needs no locks and can never race a write. Writes invalidate their
// slots (the next read refills from disk), checkpoints clear the cache
// outright, and a vectored run is served from the cache only when every
// present slot of the run is resident — a partial hit pays the full
// coalesced pread (which is one syscall regardless) and refills. Served
// bytes are therefore byte-identical at every budget, including zero.
//
// Eviction is CLOCK: a ref bit per entry, a sweeping hand that clears
// ref bits until it finds a cold entry. Each resident slot is charged
// SlotBytes against Options.CacheBytes — the budget reads as "how much
// of blocks.dat stays hot" — so a budget below one slot disables the
// cache. Hit/miss counters are atomics: the owner goroutine writes them,
// SlotCacheStats reads them from any goroutine (the FsyncStats pattern).

import (
	"sync/atomic"

	"palermo/internal/backend"
	"palermo/internal/crypt"
)

// slotEnt is one resident decoded slot.
type slotEnt struct {
	local uint64
	epoch uint64
	ct    [crypt.BlockBytes]byte
	used  bool
	ref   bool
}

// slotCache is the CLOCK-evicted resident-slot set. All methods except
// the stats loads are owner-goroutine only.
type slotCache struct {
	ents []slotEnt
	idx  map[uint64]int // local -> ents index
	hand int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// newSlotCache sizes a cache for a byte budget, charging SlotBytes per
// resident slot. Budgets below one slot return nil (cache off).
func newSlotCache(cacheBytes int) *slotCache {
	n := cacheBytes / SlotBytes
	if n < 1 {
		return nil
	}
	return &slotCache{
		ents: make([]slotEnt, n),
		idx:  make(map[uint64]int, n),
	}
}

// get returns the resident copy of local, if any, marking it recently
// used. The returned ciphertext is a fresh allocation: callers up the
// stack own their Sealed buffers (Get documents the same contract).
func (c *slotCache) get(local uint64) (backend.Sealed, bool) {
	i, ok := c.idx[local]
	if !ok {
		return backend.Sealed{}, false
	}
	c.ents[i].ref = true
	return backend.Sealed{
		Ct:    append([]byte(nil), c.ents[i].ct[:]...),
		Epoch: c.ents[i].epoch,
	}, true
}

// has reports residency without touching the ref bit (the all-resident
// probe of a vectored run).
func (c *slotCache) has(local uint64) bool {
	_, ok := c.idx[local]
	return ok
}

// put makes local resident with the given decoded contents, evicting a
// cold entry if the budget is full.
func (c *slotCache) put(local, epoch uint64, ct []byte) {
	if i, ok := c.idx[local]; ok {
		c.ents[i].epoch = epoch
		copy(c.ents[i].ct[:], ct)
		c.ents[i].ref = true
		return
	}
	for {
		e := &c.ents[c.hand]
		if e.used && e.ref {
			e.ref = false
			c.hand = (c.hand + 1) % len(c.ents)
			continue
		}
		if e.used {
			delete(c.idx, e.local)
		}
		*e = slotEnt{local: local, epoch: epoch, used: true, ref: true}
		copy(e.ct[:], ct)
		c.idx[local] = c.hand
		c.hand = (c.hand + 1) % len(c.ents)
		return
	}
}

// invalidate drops local's resident copy, if any (a slot write).
func (c *slotCache) invalidate(local uint64) {
	if i, ok := c.idx[local]; ok {
		c.ents[i] = slotEnt{}
		delete(c.idx, local)
	}
}

// clear drops everything (a checkpoint).
func (c *slotCache) clear() {
	clear(c.ents)
	clear(c.idx)
	c.hand = 0
}
