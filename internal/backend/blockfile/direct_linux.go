//go:build linux

package blockfile

import (
	"os"
	"syscall"
	"unsafe"
)

// openDataFile opens the slot file with O_DIRECT where the filesystem
// supports it, falling back to buffered I/O otherwise (tmpfs and some
// network filesystems reject the flag at open time with EINVAL). The
// file format is identical either way; only the page-cache behavior
// differs, so a directory written in one mode reopens in the other.
func openDataFile(path string, noDirect bool) (*os.File, bool, error) {
	if !noDirect {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|syscall.O_DIRECT, 0o644)
		if err == nil {
			return f, true, nil
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	return f, false, err
}

// alignedBuf returns an n-byte buffer whose base address is sector-
// aligned, as O_DIRECT transfers require. The returned slice keeps its
// over-allocated backing array alive, so the alignment is stable.
func alignedBuf(n int) []byte {
	buf := make([]byte, n+SlotBytes)
	off := int((SlotBytes - uintptr(unsafe.Pointer(&buf[0]))%SlotBytes) % SlotBytes)
	return buf[off : off+n]
}
