package blockfile

import (
	"bytes"
	"fmt"
	"testing"

	"palermo/internal/backend"
	"palermo/internal/crypt"
)

// BenchmarkBlockfilePutMany measures the paged durable write path: one
// 512-byte slot pwrite per block (consecutive locals coalesced into
// vectored writes) plus a 20-byte metadata record, synced every
// GroupCommit records. Comparable point for BenchmarkWALAppend's
// groupcommit sweep (BENCH_engine.json tracks gc=32).
func BenchmarkBlockfilePutMany(b *testing.B) {
	payload := bytes.Repeat([]byte{0xA5}, crypt.BlockBytes)
	const batch = 8 // one Ring ORAM path's worth of evictions
	for _, gc := range []int{1, 32, 256} {
		b.Run(fmt.Sprintf("groupcommit=%d", gc), func(b *testing.B) {
			w, err := Open(b.TempDir(), Options{GroupCommit: gc})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			ops := make([]backend.PutOp, batch)
			b.SetBytes(batch * SlotBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := uint64(i*batch) % 4096
				for j := range ops {
					ops[j] = backend.PutOp{
						Local: base + uint64(j),
						Sb:    backend.Sealed{Ct: payload, Epoch: uint64(i*batch+j) + 1},
					}
				}
				if err := w.PutMany(ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBlockfilePut is the scalar point, directly comparable to
// BenchmarkWALAppend record for record.
func BenchmarkBlockfilePut(b *testing.B) {
	payload := bytes.Repeat([]byte{0xA5}, crypt.BlockBytes)
	for _, gc := range []int{1, 32, 256} {
		b.Run(fmt.Sprintf("groupcommit=%d", gc), func(b *testing.B) {
			w, err := Open(b.TempDir(), Options{GroupCommit: gc})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(SlotBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Put(uint64(i)%4096, backend.Sealed{Ct: payload, Epoch: uint64(i) + 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBlockfileGetMany measures the vectored read path over a
// populated file, alternating coalescable runs and scattered ids.
func BenchmarkBlockfileGetMany(b *testing.B) {
	payload := bytes.Repeat([]byte{0xA5}, crypt.BlockBytes)
	w, err := Open(b.TempDir(), Options{GroupCommit: 256})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	for i := uint64(0); i < 4096; i++ {
		if err := w.Put(i, backend.Sealed{Ct: payload, Epoch: i + 1}); err != nil {
			b.Fatal(err)
		}
	}
	const batch = 16
	locals := make([]uint64, batch)
	out := make([]backend.Sealed, batch)
	ok := make([]bool, batch)
	b.SetBytes(batch * SlotBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(i*7) % 2048
		for j := range locals {
			if j%2 == 0 {
				locals[j] = base + uint64(j) // run half: coalesces
			} else {
				locals[j] = (base*31 + uint64(j)*997) % 4096 // scatter half
			}
		}
		w.GetMany(locals, out, ok)
	}
}
