//go:build !unix

package blockfile

import "os"

// lockDir is a no-op on platforms without flock semantics; single-process
// ownership of a store directory is then the operator's responsibility.
func lockDir(dir string) (*os.File, error) { return nil, nil }
