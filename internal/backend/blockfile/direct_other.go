//go:build !linux

package blockfile

import "os"

// openDataFile opens the slot file buffered on platforms without an
// O_DIRECT equivalent wired up; the on-disk format is identical.
func openDataFile(path string, noDirect bool) (*os.File, bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	return f, false, err
}

// alignedBuf needs no special alignment for buffered I/O.
func alignedBuf(n int) []byte { return make([]byte, n) }
