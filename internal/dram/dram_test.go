package dram

import (
	"testing"
	"testing/quick"

	"palermo/internal/sim"
)

func testCfg() Config {
	c := DefaultConfig()
	return c
}

func TestDecodeRoundTrip(t *testing.T) {
	var e sim.Engine
	m := New(&e, testCfg())
	// Sequential cache lines must round-robin channels.
	for i := uint64(0); i < 8; i++ {
		ch, _, _ := m.decode(i * BlockBytes)
		if ch != int(i%4) {
			t.Fatalf("line %d mapped to channel %d", i, ch)
		}
	}
	// Blocks within one row (per channel) share bank and row.
	ch0, b0, r0 := m.decode(0)
	ch1, b1, r1 := m.decode(4 * BlockBytes) // next block on channel 0
	if ch0 != ch1 || b0 != b1 || r0 != r1 {
		t.Fatal("adjacent blocks on a channel must share a row")
	}
}

func TestDecodeBanksRotateAcrossRows(t *testing.T) {
	var e sim.Engine
	cfg := testCfg()
	m := New(&e, cfg)
	_, b0, _ := m.decode(0)
	// One full row further on channel 0.
	_, b1, _ := m.decode(uint64(cfg.RowBlocks*cfg.Channels) * BlockBytes)
	if b0 == b1 {
		t.Fatal("consecutive rows must map to different banks")
	}
}

func TestSingleReadLatency(t *testing.T) {
	var e sim.Engine
	cfg := testCfg()
	m := New(&e, cfg)
	var done sim.Tick
	m.Submit(&Request{Addr: 0, OnDone: func(at sim.Tick) { done = at }})
	e.Run()
	want := cfg.TRCD + cfg.TCL + cfg.TBurst // closed bank: ACT + CAS + burst
	if done != want {
		t.Fatalf("cold read latency = %d, want %d", done, want)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	var e sim.Engine
	cfg := testCfg()
	m := New(&e, cfg)

	var hitDone, confDone sim.Tick
	m.Submit(&Request{Addr: 0, OnDone: func(at sim.Tick) {
		// Same row again: hit. Different row, same bank: conflict.
		start := at
		m.Submit(&Request{Addr: 4 * BlockBytes, OnDone: func(a2 sim.Tick) { hitDone = a2 - start }})
	}})
	e.Run()

	m2 := New(&e, cfg)
	m2.Submit(&Request{Addr: 0, OnDone: func(at sim.Tick) {
		start := at
		conflictAddr := uint64(cfg.RowBlocks*cfg.Channels*cfg.Banks) * BlockBytes // same bank, next row
		m2.Submit(&Request{Addr: conflictAddr, OnDone: func(a2 sim.Tick) { confDone = a2 - start }})
	}})
	e.Run()

	if hitDone == 0 || confDone == 0 {
		t.Fatal("callbacks did not run")
	}
	if hitDone >= confDone {
		t.Fatalf("row hit (%d) must be faster than conflict (%d)", hitDone, confDone)
	}
	if confDone-hitDone < cfg.TRP {
		t.Fatalf("conflict penalty %d smaller than tRP", confDone-hitDone)
	}
}

func TestOutcomeCounters(t *testing.T) {
	var e sim.Engine
	cfg := testCfg()
	m := New(&e, cfg)
	// Two accesses to the same row on channel 0: miss then hit.
	m.Submit(&Request{Addr: 0})
	m.Submit(&Request{Addr: 4 * BlockBytes})
	e.Run()
	s := m.Stats()
	if m.st.RowMisses != 1 || m.st.RowHits != 1 {
		t.Fatalf("hits=%d misses=%d conflicts=%d", m.st.RowHits, m.st.RowMisses, m.st.RowConflicts)
	}
	if s.Reads != 2 {
		t.Fatalf("reads = %d", s.Reads)
	}
}

func TestSequentialStreamHighUtilization(t *testing.T) {
	var e sim.Engine
	m := New(&e, testCfg())
	const n = 4096
	for i := uint64(0); i < n; i++ {
		m.Submit(&Request{Addr: i * BlockBytes})
	}
	e.Run()
	s := m.Stats()
	if s.RowHitRate < 0.9 {
		t.Fatalf("sequential stream row-hit rate = %.2f, want > 0.9", s.RowHitRate)
	}
	if s.BandwidthUtil < 0.7 {
		t.Fatalf("sequential stream bandwidth util = %.2f, want > 0.7", s.BandwidthUtil)
	}
}

func TestRandomStreamLowerUtilization(t *testing.T) {
	var e sim.Engine
	m := New(&e, testCfg())
	const n = 4096
	// Strided pattern touching a new row every access on one bank pattern.
	addrs := make([]uint64, n)
	x := uint64(88172645463325252)
	for i := range addrs {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		addrs[i] = (x % (1 << 30)) &^ (BlockBytes - 1)
	}
	for _, a := range addrs {
		m.Submit(&Request{Addr: a})
	}
	e.Run()
	s := m.Stats()
	if s.RowHitRate > 0.5 {
		t.Fatalf("random stream row-hit rate = %.2f, want low", s.RowHitRate)
	}

	var e2 sim.Engine
	m2 := New(&e2, testCfg())
	for i := uint64(0); i < n; i++ {
		m2.Submit(&Request{Addr: i * BlockBytes})
	}
	e2.Run()
	if m2.Stats().Elapsed >= s.Elapsed {
		t.Fatal("sequential stream should finish faster than random")
	}
}

func TestBackpressureOverflow(t *testing.T) {
	var e sim.Engine
	cfg := testCfg()
	m := New(&e, cfg)
	// Flood one channel far beyond QueueCap; all requests must complete.
	const n = 1000
	completed := 0
	for i := 0; i < n; i++ {
		row := uint64(i) * uint64(cfg.RowBlocks*cfg.Channels*cfg.Banks) * BlockBytes
		m.Submit(&Request{Addr: row, OnDone: func(sim.Tick) { completed++ }})
	}
	e.Run()
	if completed != n {
		t.Fatalf("completed %d/%d requests", completed, n)
	}
	if m.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain", m.Outstanding())
	}
	s := m.Stats()
	if s.AvgQueueOcc > float64(cfg.QueueCap) {
		t.Fatalf("avg queue occupancy %f exceeds cap %d", s.AvgQueueOcc, cfg.QueueCap)
	}
}

func TestWritesComplete(t *testing.T) {
	var e sim.Engine
	m := New(&e, testCfg())
	done := 0
	for i := uint64(0); i < 128; i++ {
		m.Submit(&Request{Addr: i * BlockBytes, Write: i%2 == 0, OnDone: func(sim.Tick) { done++ }})
	}
	e.Run()
	s := m.Stats()
	if done != 128 || s.Reads != 64 || s.Writes != 64 {
		t.Fatalf("done=%d reads=%d writes=%d", done, s.Reads, s.Writes)
	}
}

func TestResetStats(t *testing.T) {
	var e sim.Engine
	m := New(&e, testCfg())
	for i := uint64(0); i < 64; i++ {
		m.Submit(&Request{Addr: i * BlockBytes})
	}
	e.Run()
	m.ResetStats()
	s := m.Stats()
	if s.Reads != 0 || s.BandwidthUtil != 0 {
		t.Fatalf("stats not cleared: %+v", s)
	}
	for i := uint64(0); i < 64; i++ {
		m.Submit(&Request{Addr: i * BlockBytes})
	}
	e.Run()
	if m.Stats().Reads != 64 {
		t.Fatal("stats after reset not counting")
	}
}

func TestPeakBandwidth(t *testing.T) {
	got := DefaultConfig().PeakBandwidthGBs()
	if got < 102 || got > 103 {
		t.Fatalf("peak bandwidth = %.1f GB/s, want 102.4 (Table III)", got)
	}
}

// Property: completion time is always at least submission time plus the
// minimum service latency, and all callbacks fire exactly once.
func TestCompletionMonotoneProperty(t *testing.T) {
	cfg := testCfg()
	minLat := cfg.TCL + cfg.TBurst
	f := func(raw []uint32) bool {
		if len(raw) == 0 || len(raw) > 200 {
			return true
		}
		var e sim.Engine
		m := New(&e, cfg)
		fired := 0
		ok := true
		for _, v := range raw {
			addr := (uint64(v) % (1 << 28)) &^ (BlockBytes - 1)
			sub := m.eng.Now()
			m.Submit(&Request{Addr: addr, OnDone: func(at sim.Tick) {
				fired++
				if at < sub+minLat {
					ok = false
				}
			}})
		}
		e.Run()
		return ok && fired == len(raw) && m.Outstanding() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMemoryThroughput(b *testing.B) {
	var e sim.Engine
	m := New(&e, testCfg())
	for i := 0; i < b.N; i++ {
		m.Submit(&Request{Addr: uint64(i) * 977 * BlockBytes})
		if i%64 == 0 {
			e.Run()
		}
	}
	e.Run()
}

func TestRefreshClosesRows(t *testing.T) {
	var e sim.Engine
	cfg := testCfg()
	m := New(&e, cfg)
	m.Submit(&Request{Addr: 0})
	e.Run()
	// Jump past a refresh boundary; the previously open row must be closed.
	e.At(cfg.TREFI+cfg.TRFC+10, func() {
		m.Submit(&Request{Addr: 4 * BlockBytes}) // same row as before
	})
	e.Run()
	if m.st.RowHits != 0 {
		t.Fatalf("row hit across a refresh boundary (hits=%d)", m.st.RowHits)
	}
	if m.st.RowMisses != 2 {
		t.Fatalf("misses = %d, want 2", m.st.RowMisses)
	}
}

func TestRefreshDelaysRequestInWindow(t *testing.T) {
	var e sim.Engine
	cfg := testCfg()
	m := New(&e, cfg)
	var done sim.Tick
	// Land exactly on the refresh boundary: service waits out tRFC.
	e.At(cfg.TREFI, func() {
		m.Submit(&Request{Addr: 0, OnDone: func(at sim.Tick) { done = at }})
	})
	e.Run()
	earliest := cfg.TREFI + cfg.TRFC + cfg.TRCD + cfg.TCL + cfg.TBurst
	if done < earliest {
		t.Fatalf("request finished at %d, refresh should push it past %d", done, earliest)
	}
}

func TestRefreshDisabled(t *testing.T) {
	var e sim.Engine
	cfg := testCfg()
	cfg.TREFI = 0
	m := New(&e, cfg)
	m.Submit(&Request{Addr: 0})
	e.Run()
	e.At(100000, func() { m.Submit(&Request{Addr: 4 * BlockBytes}) })
	e.Run()
	if m.st.RowHits != 1 {
		t.Fatalf("with refresh disabled the row must stay open (hits=%d)", m.st.RowHits)
	}
}

func TestWriteDrainWatermark(t *testing.T) {
	var e sim.Engine
	cfg := testCfg()
	m := New(&e, cfg)
	// Saturate the write buffer of channel 0 well past the high watermark,
	// then submit a read; the read must still complete reasonably soon
	// (drain bursts bounded by the low watermark).
	for i := 0; i < 200; i++ {
		row := uint64(i) * uint64(cfg.RowBlocks*cfg.Channels) * BlockBytes
		m.Submit(&Request{Addr: row, Write: true})
	}
	var readDone sim.Tick
	m.Submit(&Request{Addr: 0, OnDone: func(at sim.Tick) { readDone = at }})
	e.Run()
	if readDone == 0 {
		t.Fatal("read never completed")
	}
	s := m.Stats()
	if s.Reads != 1 || s.Writes != 200 {
		t.Fatalf("reads=%d writes=%d", s.Reads, s.Writes)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	var e sim.Engine
	cfg := testCfg()
	cfg.InflightMax = 1 // serialize issue so queue order is observable
	m := New(&e, cfg)

	rowSpan := uint64(cfg.RowBlocks*cfg.Channels) * BlockBytes
	bankSpan := rowSpan * uint64(cfg.Banks)

	var order []string
	// The first request opens row 0 of bank 0 and occupies the single
	// inflight slot, so the two contenders queue together: the older one
	// conflicts (same bank, different row), the younger one hits the open
	// row. FR-FCFS must serve the hit first.
	m.Submit(&Request{Addr: 0})
	m.Submit(&Request{Addr: bankSpan, OnDone: func(sim.Tick) { order = append(order, "conflict") }})
	m.Submit(&Request{Addr: 4 * BlockBytes, OnDone: func(sim.Tick) { order = append(order, "hit") }})
	e.Run()
	if len(order) != 2 || order[0] != "hit" {
		t.Fatalf("service order = %v, want row hit first", order)
	}
}

func TestReadPriorityOverWrites(t *testing.T) {
	var e sim.Engine
	cfg := testCfg()
	cfg.InflightMax = 1
	m := New(&e, cfg)

	var order []string
	// A blocker occupies the single inflight slot; a handful of writes
	// (below the drain watermark) and a read queue behind it.
	m.Submit(&Request{Addr: 0})
	for i := uint64(1); i <= 4; i++ {
		m.Submit(&Request{Addr: i * 4 * BlockBytes, Write: true,
			OnDone: func(sim.Tick) { order = append(order, "write") }})
	}
	m.Submit(&Request{Addr: 8 * BlockBytes, OnDone: func(sim.Tick) { order = append(order, "read") }})
	e.Run()
	if len(order) != 5 || order[0] != "read" {
		t.Fatalf("service order = %v, want the read first", order)
	}
}
