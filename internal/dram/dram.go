// Package dram models the untrusted outsourced memory: a multi-channel
// DDR4-3200 memory system with per-bank row-buffer state, FR-FCFS request
// scheduling, bounded controller queues, and data-bus occupancy.
//
// The model is event-driven rather than per-cycle: when a request is picked
// by the scheduler its command timing (PRE/ACT/CAS) is computed analytically
// from the bank and bus state, which reproduces the phenomena the Palermo
// paper measures — row-buffer hit rates, bank conflicts, bandwidth
// utilization, queue occupancy, and memory-level parallelism — at a small
// fraction of a cycle-accurate simulator's cost (DESIGN.md §1).
package dram

import (
	"fmt"

	"palermo/internal/sim"
	"palermo/internal/stats"
)

// BlockBytes is the DRAM access granularity (one cache line per burst).
const BlockBytes = 64

// Config describes the memory system geometry and timing. Timings are in
// 0.625 ns ticks (DDR4-3200 command-clock cycles).
type Config struct {
	Channels        int // independent 64-bit channels
	Banks           int // banks per channel
	RowBlocks       int // 64-byte blocks per row within one channel
	QueueCap        int // scheduling-window entries per channel
	InflightMax     int // requests with issued commands per channel
	TCL             sim.Tick
	TRCD            sim.Tick
	TRP             sim.Tick
	TCCD            sim.Tick // column-to-column delay (bank-group-friendly mapping assumed)
	TBurst          sim.Tick // data-bus occupancy of one 64B burst (BL8)
	WriteTurnaround sim.Tick // extra bus gap charged when switching to a write
	TREFI           sim.Tick // all-bank refresh interval (0 disables refresh)
	TRFC            sim.Tick // refresh cycle time (banks blocked, rows closed)
}

// DefaultConfig returns the paper's Table III memory system: 4-channel
// DDR4-3200 with 102.4 GB/s peak bandwidth.
func DefaultConfig() Config {
	return Config{
		Channels:        4,
		Banks:           16,
		RowBlocks:       128, // 8 KB row per channel
		QueueCap:        64,
		InflightMax:     24,
		TCL:             22,
		TRCD:            22,
		TRP:             22,
		TCCD:            4,
		TBurst:          4,
		WriteTurnaround: 2,
		TREFI:           12480, // 7.8 us
		TRFC:            560,   // 350 ns
	}
}

// PeakBandwidthGBs returns the theoretical peak bandwidth in GB/s.
func (c Config) PeakBandwidthGBs() float64 {
	// One 64B burst per TBurst ticks per channel.
	bytesPerNS := float64(BlockBytes) / (float64(c.TBurst) * 0.625) * float64(c.Channels)
	return bytesPerNS // GB/s == bytes/ns
}

// Request is a single 64-byte DRAM access.
type Request struct {
	Addr   uint64 // byte address
	Write  bool
	OnDone func(done sim.Tick) // invoked at data completion; may be nil

	submitted sim.Tick
	channel   int
	bank      int
	row       uint64
}

// RowOutcome classifies a request's row-buffer interaction.
type RowOutcome int

// Row-buffer outcomes.
const (
	RowHit      RowOutcome = iota // row already open
	RowMiss                       // bank closed, activate needed
	RowConflict                   // different row open, precharge + activate
)

type bank struct {
	openRow  int64 // -1 = closed
	casReady sim.Tick
}

type channel struct {
	readQ       []*Request
	writeQ      []*Request
	overflow    []*Request // spill beyond the scheduling windows, FIFO
	banks       []bank
	busFree     sim.Tick
	inflight    int
	lastWrite   bool
	draining    bool     // write-drain burst in progress
	nextRefresh sim.Tick // next all-bank refresh boundary

	queueOcc stats.TimeWeighted
}

func (ch *channel) queued() int { return len(ch.readQ) + len(ch.writeQ) }

// Stats aggregates memory-system measurements. Counters can be snapshotted
// and reset at warmup boundaries.
type Stats struct {
	Reads, Writes uint64
	RowHits       uint64
	RowMisses     uint64
	RowConflicts  uint64
	BusBusy       sim.Tick // summed across channels
	ReadLatency   stats.Mean
	statsStart    sim.Tick
}

// Memory is the full multi-channel memory system.
type Memory struct {
	eng      *sim.Engine
	cfg      Config
	channels []*channel
	st       Stats

	outstanding    int
	outstandingOcc stats.TimeWeighted
	readsOut       int
	readsOutOcc    stats.TimeWeighted
}

// New creates a memory system on the given simulation engine.
func New(eng *sim.Engine, cfg Config) *Memory {
	if cfg.Channels <= 0 || cfg.Banks <= 0 || cfg.RowBlocks <= 0 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	m := &Memory{eng: eng, cfg: cfg}
	for i := 0; i < cfg.Channels; i++ {
		ch := &channel{banks: make([]bank, cfg.Banks), nextRefresh: cfg.TREFI}
		for b := range ch.banks {
			ch.banks[b].openRow = -1
		}
		m.channels = append(m.channels, ch)
	}
	return m
}

// Config returns the memory configuration.
func (m *Memory) Config() Config { return m.cfg }

// decode splits a byte address into channel/bank/row coordinates. Channels
// interleave at cache-line granularity; banks interleave at row granularity
// so sequential streams hop banks between rows.
func (m *Memory) decode(addr uint64) (ch, bk int, row uint64) {
	block := addr / BlockBytes
	ch = int(block % uint64(m.cfg.Channels))
	perCh := block / uint64(m.cfg.Channels)
	rowIdx := perCh / uint64(m.cfg.RowBlocks)
	bk = int(rowIdx % uint64(m.cfg.Banks))
	row = rowIdx / uint64(m.cfg.Banks)
	return ch, bk, row
}

// Submit enqueues a request. Requests beyond the channel's scheduling
// windows wait in an overflow FIFO (modelling the requester-side output
// buffer), so queue-occupancy statistics reflect the bounded hardware queue.
func (m *Memory) Submit(r *Request) {
	r.submitted = m.eng.Now()
	r.channel, r.bank, r.row = m.decode(r.Addr)
	ch := m.channels[r.channel]
	m.outstanding++
	m.outstandingOcc.Set(uint64(m.eng.Now()), float64(m.outstanding))
	if !r.Write {
		m.readsOut++
		m.readsOutOcc.Set(uint64(m.eng.Now()), float64(m.readsOut))
	}
	m.admit(ch, r)
	m.pump(r.channel)
}

// admit places a request in its scheduling window or the overflow FIFO.
// Reads and writes have separate windows (QueueCap each), as in real
// controllers with read queues and write buffers.
func (m *Memory) admit(ch *channel, r *Request) {
	if r.Write {
		if len(ch.writeQ) < m.cfg.QueueCap {
			ch.writeQ = append(ch.writeQ, r)
			return
		}
	} else if len(ch.readQ) < m.cfg.QueueCap {
		ch.readQ = append(ch.readQ, r)
		return
	}
	ch.overflow = append(ch.overflow, r)
}

// frfcfs removes and returns the best request from q: the oldest row hit,
// else the oldest.
func (ch *channel) frfcfs(q *[]*Request) *Request {
	pick := -1
	for i, r := range *q {
		if ch.banks[r.bank].openRow == int64(r.row) {
			pick = i
			break
		}
	}
	if pick < 0 {
		pick = 0
	}
	r := (*q)[pick]
	*q = append((*q)[:pick], (*q)[pick+1:]...)
	return r
}

// pump issues as many requests as the channel's command pipeline allows.
// Reads have priority (they gate forward progress of the ORAM pipeline);
// writes drain opportunistically when no reads are queued, or in bursts
// once the write buffer passes its high watermark — the standard
// write-drain policy of DDR controllers.
func (m *Memory) pump(chIdx int) {
	ch := m.channels[chIdx]
	hi := m.cfg.QueueCap * 3 / 4
	lo := m.cfg.QueueCap / 4
	for ch.inflight < m.cfg.InflightMax && ch.queued() > 0 {
		if ch.draining && len(ch.writeQ) <= lo {
			ch.draining = false
		}
		if !ch.draining && len(ch.writeQ) >= hi {
			ch.draining = true
		}
		var r *Request
		switch {
		case ch.draining && len(ch.writeQ) > 0:
			r = ch.frfcfs(&ch.writeQ)
		case len(ch.readQ) > 0:
			r = ch.frfcfs(&ch.readQ)
		default:
			r = ch.frfcfs(&ch.writeQ)
		}
		m.issue(ch, r)
	}
	ch.queueOcc.Set(uint64(m.eng.Now()), float64(ch.queued()))
}

// applyRefresh lazily accounts all-bank refresh: any refresh boundaries that
// have passed close every row, and a request landing inside a refresh cycle
// is pushed past it. Lazy application (charged on the next issue) keeps the
// event queue free of perpetual timers while preserving the throughput tax
// and the row-closure effect.
func (m *Memory) applyRefresh(ch *channel, now sim.Tick) {
	if m.cfg.TREFI == 0 {
		return
	}
	for now >= ch.nextRefresh {
		refreshEnd := ch.nextRefresh + m.cfg.TRFC
		for i := range ch.banks {
			ch.banks[i].openRow = -1
			if ch.banks[i].casReady < refreshEnd {
				ch.banks[i].casReady = refreshEnd
			}
		}
		ch.nextRefresh += m.cfg.TREFI
	}
}

// issue computes the request's command timing against bank and bus state and
// schedules its completion.
func (m *Memory) issue(ch *channel, r *Request) {
	now := m.eng.Now()
	m.applyRefresh(ch, now)
	b := &ch.banks[r.bank]

	var cas sim.Tick
	switch {
	case b.openRow == int64(r.row):
		m.st.RowHits++
		cas = maxTick(now, b.casReady)
	case b.openRow == -1:
		m.st.RowMisses++
		cas = maxTick(now, b.casReady) + m.cfg.TRCD
	default:
		m.st.RowConflicts++
		cas = maxTick(now, b.casReady) + m.cfg.TRP + m.cfg.TRCD
	}
	dataStart := cas + m.cfg.TCL
	if r.Write && !ch.lastWrite {
		dataStart += m.cfg.WriteTurnaround
	}
	dataStart = maxTick(dataStart, ch.busFree)
	done := dataStart + m.cfg.TBurst

	b.openRow = int64(r.row)
	b.casReady = maxTick(cas+m.cfg.TCCD, dataStart+m.cfg.TBurst-m.cfg.TCL)
	ch.busFree = done
	ch.lastWrite = r.Write
	ch.inflight++
	m.st.BusBusy += m.cfg.TBurst
	if r.Write {
		m.st.Writes++
	} else {
		m.st.Reads++
	}

	m.eng.At(done, func() {
		ch.inflight--
		m.outstanding--
		m.outstandingOcc.Set(uint64(m.eng.Now()), float64(m.outstanding))
		if !r.Write {
			m.readsOut--
			m.readsOutOcc.Set(uint64(m.eng.Now()), float64(m.readsOut))
			m.st.ReadLatency.Add(float64(done - r.submitted))
		}
		for len(ch.overflow) > 0 {
			nr := ch.overflow[0]
			if nr.Write {
				if len(ch.writeQ) >= m.cfg.QueueCap {
					break
				}
				ch.writeQ = append(ch.writeQ, nr)
			} else {
				if len(ch.readQ) >= m.cfg.QueueCap {
					break
				}
				ch.readQ = append(ch.readQ, nr)
			}
			ch.overflow = ch.overflow[1:]
		}
		m.pump(r.channel)
		if r.OnDone != nil {
			r.OnDone(done)
		}
	})
}

func maxTick(a, b sim.Tick) sim.Tick {
	if a > b {
		return a
	}
	return b
}

// Outstanding returns the number of submitted-but-incomplete requests.
func (m *Memory) Outstanding() int { return m.outstanding }

// ResetStats clears counters at a warmup boundary; time-weighted statistics
// restart from the current tick.
func (m *Memory) ResetStats() {
	now := uint64(m.eng.Now())
	m.st = Stats{statsStart: m.eng.Now()}
	m.outstandingOcc.Reset(now)
	m.outstandingOcc.Set(now, float64(m.outstanding))
	m.readsOutOcc.Reset(now)
	m.readsOutOcc.Set(now, float64(m.readsOut))
	for _, ch := range m.channels {
		ch.queueOcc.Reset(now)
		ch.queueOcc.Set(now, float64(ch.queued()))
	}
}

// Snapshot summarizes measurements over [last reset, now].
type Snapshot struct {
	Reads, Writes   uint64
	RowHitRate      float64 // fraction of accesses hitting an open row
	RowMissRate     float64
	RowConflictRate float64
	BandwidthUtil   float64 // bus-busy fraction of peak
	AvgReadLatency  float64 // ticks
	AvgQueueOcc     float64 // per-channel average entries
	AvgOutstanding  float64 // system-wide average in-flight requests
	AvgReadsOut     float64 // system-wide average outstanding reads
	Elapsed         sim.Tick
	BytesMoved      uint64
}

// Stats returns the current measurement snapshot.
func (m *Memory) Stats() Snapshot {
	now := m.eng.Now()
	elapsed := now - m.st.statsStart
	s := Snapshot{
		Reads:   m.st.Reads,
		Writes:  m.st.Writes,
		Elapsed: elapsed,
	}
	total := float64(m.st.RowHits + m.st.RowMisses + m.st.RowConflicts)
	if total > 0 {
		s.RowHitRate = float64(m.st.RowHits) / total
		s.RowMissRate = float64(m.st.RowMisses) / total
		s.RowConflictRate = float64(m.st.RowConflicts) / total
	}
	if elapsed > 0 {
		s.BandwidthUtil = float64(m.st.BusBusy) / (float64(elapsed) * float64(m.cfg.Channels))
	}
	s.AvgReadLatency = m.st.ReadLatency.Value()
	var qsum float64
	for _, ch := range m.channels {
		qsum += ch.queueOcc.Avg(uint64(now))
	}
	s.AvgQueueOcc = qsum / float64(m.cfg.Channels)
	s.AvgOutstanding = m.outstandingOcc.Avg(uint64(now))
	s.AvgReadsOut = m.readsOutOcc.Avg(uint64(now))
	s.BytesMoved = (m.st.Reads + m.st.Writes) * BlockBytes
	return s
}

// BusBusy returns the accumulated data-bus busy ticks (across channels)
// since the last stats reset. Controllers use deltas of this to attribute
// dram-active vs. sync-stall cycles per protocol phase (Fig 3b).
func (m *Memory) BusBusy() sim.Tick { return m.st.BusBusy }
