package crypt

import (
	"bytes"
	"testing"
	"testing/quick"
)

var key = []byte("0123456789abcdef")

func TestSealOpenRoundTrip(t *testing.T) {
	s, err := NewSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	pt := bytes.Repeat([]byte{0xAB}, BlockBytes)
	ct, epoch, err := s.Seal(42, pt)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
	got, err := s.Open(42, epoch, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("round trip failed")
	}
}

func TestFreshness(t *testing.T) {
	s, _ := NewSealer(key)
	pt := make([]byte, BlockBytes)
	c1, _, _ := s.Seal(7, pt)
	c2, _, _ := s.Seal(7, pt)
	if bytes.Equal(c1, c2) {
		t.Fatal("re-sealing the same block must produce fresh ciphertext")
	}
}

func TestWrongEpochGarbles(t *testing.T) {
	s, _ := NewSealer(key)
	pt := bytes.Repeat([]byte{1}, BlockBytes)
	ct, epoch, _ := s.Seal(7, pt)
	got, _ := s.Open(7, epoch+1, ct)
	if bytes.Equal(got, pt) {
		t.Fatal("wrong epoch must not decrypt")
	}
}

func TestBadSizes(t *testing.T) {
	s, _ := NewSealer(key)
	if _, _, err := s.Seal(0, make([]byte, 32)); err == nil {
		t.Fatal("short plaintext must error")
	}
	if _, err := s.Open(0, 1, make([]byte, 32)); err == nil {
		t.Fatal("short ciphertext must error")
	}
	if _, err := NewSealer([]byte("short")); err == nil {
		t.Fatal("bad key must error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	s, _ := NewSealer(key)
	f := func(addr uint64, data [BlockBytes]byte) bool {
		ct, epoch, err := s.Seal(addr, data[:])
		if err != nil {
			return false
		}
		got, err := s.Open(addr, epoch, ct)
		return err == nil && bytes.Equal(got, data[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
