package crypt

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

var key = []byte("0123456789abcdef")

func TestSealOpenRoundTrip(t *testing.T) {
	s, err := NewSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	pt := bytes.Repeat([]byte{0xAB}, BlockBytes)
	ct, epoch, err := s.Seal(42, pt)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
	got, err := s.Open(42, epoch, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("round trip failed")
	}
}

func TestFreshness(t *testing.T) {
	s, _ := NewSealer(key)
	pt := make([]byte, BlockBytes)
	c1, _, _ := s.Seal(7, pt)
	c2, _, _ := s.Seal(7, pt)
	if bytes.Equal(c1, c2) {
		t.Fatal("re-sealing the same block must produce fresh ciphertext")
	}
}

func TestWrongEpochGarbles(t *testing.T) {
	s, _ := NewSealer(key)
	pt := bytes.Repeat([]byte{1}, BlockBytes)
	ct, epoch, _ := s.Seal(7, pt)
	got, _ := s.Open(7, epoch+1, ct)
	if bytes.Equal(got, pt) {
		t.Fatal("wrong epoch must not decrypt")
	}
}

func TestBadSizes(t *testing.T) {
	s, _ := NewSealer(key)
	if _, _, err := s.Seal(0, make([]byte, 32)); err == nil {
		t.Fatal("short plaintext must error")
	}
	if _, err := s.Open(0, 1, make([]byte, 32)); err == nil {
		t.Fatal("short ciphertext must error")
	}
	if _, err := NewSealer([]byte("short")); err == nil {
		t.Fatal("bad key must error")
	}
}

func TestAssignSealAtMatchesSeal(t *testing.T) {
	// Seal must be exactly Assign + SealAt: same counter stream, same
	// bytes. The staged executor relies on this to move the transform
	// off-thread without changing a single ciphertext.
	a, _ := NewSealer(key)
	b, _ := NewSealer(key)
	pt := bytes.Repeat([]byte{0x5C}, BlockBytes)
	for i := 0; i < 10; i++ {
		addr := uint64(i * 37)
		ct1, e1, err := a.Seal(addr, pt)
		if err != nil {
			t.Fatal(err)
		}
		e2 := b.Assign()
		ct2, err := b.SealAt(addr, e2, pt)
		if err != nil {
			t.Fatal(err)
		}
		if e1 != e2 {
			t.Fatalf("epoch diverged: Seal %d, Assign %d", e1, e2)
		}
		if !bytes.Equal(ct1, ct2) {
			t.Fatalf("ciphertext diverged at op %d", i)
		}
	}
	if a.Epoch() != b.Epoch() {
		t.Fatalf("counter diverged: %d vs %d", a.Epoch(), b.Epoch())
	}
}

func TestConcurrentSealAtOpen(t *testing.T) {
	// SealAt and Open are pure transforms over the immutable cipher
	// block: N goroutines sealing and opening disjoint (addr, epoch)
	// pairs must race-cleanly produce the same bytes the serial path
	// does (run under -race in CI).
	s, _ := NewSealer(key)
	ref, _ := NewSealer(key)
	const n = 8
	done := make(chan error, n)
	for g := 0; g < n; g++ {
		go func(g int) {
			pt := bytes.Repeat([]byte{byte(g)}, BlockBytes)
			for i := 0; i < 100; i++ {
				addr, epoch := uint64(g*1000+i), uint64(i+1)
				ct, err := s.SealAt(addr, epoch, pt)
				if err != nil {
					done <- err
					return
				}
				got, err := s.Open(addr, epoch, ct)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(got, pt) {
					done <- fmt.Errorf("goroutine %d: round trip failed at op %d", g, i)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < n; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// The concurrent traffic must not have touched the counter.
	if s.Epoch() != ref.Epoch() {
		t.Fatalf("SealAt/Open moved the epoch counter to %d", s.Epoch())
	}
}

func TestRoundTripProperty(t *testing.T) {
	s, _ := NewSealer(key)
	f := func(addr uint64, data [BlockBytes]byte) bool {
		ct, epoch, err := s.Seal(addr, data[:])
		if err != nil {
			return false
		}
		got, err := s.Open(addr, epoch, ct)
		return err == nil && bytes.Equal(got, data[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
