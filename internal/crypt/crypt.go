// Package crypt provides the block-sealing layer of the trusted ORAM
// controller: every block leaving the secure boundary is encrypted under a
// fresh counter so identical plaintexts never produce identical bus
// contents ("All data is encrypted with different keys", §II-C).
//
// The timing model treats encryption as a pipelined fixed latency (it is
// off the critical DRAM path); this package supplies real AES-CTR sealing
// for the functional examples and for end-to-end correctness tests.
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
)

// BlockBytes is the sealed payload granularity (one cache line).
const BlockBytes = 64

// Sealer encrypts/decrypts 64-byte blocks with AES-CTR under per-seal
// unique counters.
//
// Concurrency: the epoch counter (Assign, Seal, Epoch, SetEpoch, Blob)
// is confined to the sealer's owner goroutine. The pure transforms —
// SealAt and Open — touch only the immutable cipher.Block and are safe
// to call from any number of goroutines concurrently, which is what lets
// a shard's crypto worker pool run seals and unseals off-thread while
// every counter draw stays on the owner in submission order.
type Sealer struct {
	block cipher.Block
	epoch uint64
}

// NewSealer creates a sealer from a 16/24/32-byte key.
func NewSealer(key []byte) (*Sealer, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("crypt: %w", err)
	}
	return &Sealer{block: b}, nil
}

// Seal encrypts plaintext (must be BlockBytes long) in place-safe fashion,
// returning ciphertext and the epoch used. The (addr, epoch) pair forms the
// unique IV; the caller stores epoch alongside the block (real designs keep
// it in the bucket header).
func (s *Sealer) Seal(addr uint64, plaintext []byte) (ciphertext []byte, epoch uint64, err error) {
	epoch = s.Assign()
	ciphertext, err = s.SealAt(addr, epoch, plaintext)
	if err != nil {
		return nil, 0, err
	}
	return ciphertext, epoch, nil
}

// Assign draws the next sealing epoch from the counter without sealing
// anything. Seal is exactly Assign followed by SealAt; splitting them
// lets an executor bump the counter in submission order on the owner
// goroutine while the AES transform itself runs on a worker. Every
// assigned epoch must be sealed (or durably reserved) exactly once —
// an assigned-but-unsealed epoch is a skipped IV, which is safe; an
// epoch sealed twice under one addr would repeat an IV.
func (s *Sealer) Assign() uint64 {
	s.epoch++
	return s.epoch
}

// SealAt encrypts plaintext (must be BlockBytes long) under a
// pre-assigned epoch from Assign. Pure transform: no counter state is
// touched, so concurrent SealAt calls (distinct (addr, epoch) pairs)
// are safe.
func (s *Sealer) SealAt(addr, epoch uint64, plaintext []byte) ([]byte, error) {
	if len(plaintext) != BlockBytes {
		return nil, fmt.Errorf("crypt: plaintext must be %d bytes, got %d", BlockBytes, len(plaintext))
	}
	out := make([]byte, BlockBytes)
	s.xcrypt(addr, epoch, plaintext, out)
	return out, nil
}

// Epoch returns the per-seal counter's current value. The durable store
// checkpoints it so a restored sealer never re-issues an (addr, epoch) IV.
func (s *Sealer) Epoch() uint64 { return s.epoch }

// SetEpoch overwrites the counter. Callers restoring from a checkpoint must
// pass a value at least as large as every epoch already sealed under this
// key and address domain, or IVs would repeat.
func (s *Sealer) SetEpoch(e uint64) { s.epoch = e }

// MaxBlobBytes bounds Blob inputs: the blob IV reserves 3 low bytes of
// counter space, so one (addr, epoch) keystream covers 2^24 AES blocks.
const MaxBlobBytes = (1 << 24) * 16

// Blob applies the AES-CTR keystream bound to (addr, epoch) over in and
// returns the result; sealing and opening a variable-length blob are the
// same operation. It exists for controller metadata (durable-store
// checkpoints hold position maps and stash contents, which the untrusted
// backend must never see in plaintext). The IV layout is the block
// layout; uniqueness rests on two facts the guards enforce. Blob callers
// use addresses disjoint from every block's (shard metadata counts down
// from ^0, block ids are capped at 2^40), so blob and block keystreams
// can never meet. And with epoch < 2^40, IV bytes 13-15 start at zero,
// leaving 2^24 blocks of CTR counter headroom per (addr, epoch) — so two
// blobs under distinct epochs cannot overlap while len(in) is at most
// MaxBlobBytes.
func (s *Sealer) Blob(addr, epoch uint64, in []byte) []byte {
	if len(in) > MaxBlobBytes {
		panic(fmt.Sprintf("crypt: blob of %d bytes exceeds the %d-byte CTR span", len(in), MaxBlobBytes))
	}
	if epoch >= 1<<40 {
		panic(fmt.Sprintf("crypt: blob epoch %d exceeds the 40-bit IV field", epoch))
	}
	out := make([]byte, len(in))
	s.xcrypt(addr, epoch, in, out)
	return out
}

// Open decrypts a block sealed under (addr, epoch).
func (s *Sealer) Open(addr, epoch uint64, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) != BlockBytes {
		return nil, fmt.Errorf("crypt: ciphertext must be %d bytes, got %d", BlockBytes, len(ciphertext))
	}
	out := make([]byte, BlockBytes)
	s.xcrypt(addr, epoch, ciphertext, out)
	return out, nil
}

func (s *Sealer) xcrypt(addr, epoch uint64, in, out []byte) {
	var iv [aes.BlockSize]byte
	binary.LittleEndian.PutUint64(iv[0:8], addr)
	binary.LittleEndian.PutUint64(iv[8:16], epoch)
	cipher.NewCTR(s.block, iv[:]).XORKeyStream(out, in)
}
