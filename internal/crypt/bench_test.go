package crypt

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// BenchmarkSealUnseal measures one block's full crypto round trip — the
// per-access AES cost the serving path pays once per write (seal) and
// once per read (unseal). This is the single-core wall BENCH_engine.json
// sizes the crypto worker pool against.
func BenchmarkSealUnseal(b *testing.B) {
	s, err := NewSealer([]byte("0123456789abcdef"))
	if err != nil {
		b.Fatal(err)
	}
	pt := make([]byte, BlockBytes)
	for i := range pt {
		pt[i] = byte(i)
	}
	b.ReportAllocs()
	b.SetBytes(2 * BlockBytes)
	for i := 0; i < b.N; i++ {
		ct, epoch, err := s.Seal(uint64(i), pt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Open(uint64(i), epoch, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSealAtParallel measures the pure transform (SealAt) spread
// across worker goroutines — the upper bound of what a CryptoWorkers
// pool can recover from the single-core sealing wall.
func BenchmarkSealAtParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			if workers > runtime.GOMAXPROCS(0) {
				b.Skipf("needs %d procs, have %d", workers, runtime.GOMAXPROCS(0))
			}
			s, err := NewSealer([]byte("0123456789abcdef"))
			if err != nil {
				b.Fatal(err)
			}
			pt := make([]byte, BlockBytes)
			b.ReportAllocs()
			b.SetBytes(BlockBytes)
			per := b.N / workers
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := uint64(w) << 32
					for i := 0; i < per; i++ {
						if _, err := s.SealAt(base+uint64(i), uint64(i+1), pt); err != nil {
							panic(err)
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkSealAtGOMAXPROCS is the honest-scaling variant of
// BenchmarkSealAtParallel: instead of fanning goroutines over whatever
// cores happen to be visible, each sub-benchmark pins GOMAXPROCS to the
// worker count, so the reported MB/s is what that many real cores
// deliver. On a 1-core runner every multi-proc point skips and the
// recorded "scaling" is the truthful flat line (the
// crypto_workers_effective_cap note in BENCH_engine.json); on wider
// machines the curve is the pool's genuine speedup ceiling.
func BenchmarkSealAtGOMAXPROCS(b *testing.B) {
	maxProcs := runtime.GOMAXPROCS(0)
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			if procs > maxProcs {
				b.Skipf("needs %d procs, have %d", procs, maxProcs)
			}
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			s, err := NewSealer([]byte("0123456789abcdef"))
			if err != nil {
				b.Fatal(err)
			}
			pt := make([]byte, BlockBytes)
			b.ReportAllocs()
			b.SetBytes(BlockBytes)
			per := b.N / procs
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < procs; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := uint64(w+8) << 32
					for i := 0; i < per; i++ {
						if _, err := s.SealAt(base+uint64(i), uint64(i+1), pt); err != nil {
							panic(err)
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
