// Package serve is the concurrent request layer over a set of sharded
// oblivious-store backends: per-shard worker goroutines, bounded request
// queues with back-pressure, intra-batch same-block read deduplication
// (one ORAM access fans out to every waiter), channel-based futures, and
// latency histograms (internal/stats).
//
// Concurrency discipline: each backend is confined to exactly one worker
// goroutine — the engine-per-goroutine rule the sweep runner already
// follows (DESIGN.md §4.2) — so ORAM engines need no locks and per-shard
// request subsequences execute deterministically. Clients only touch
// channels and their own futures. Back-pressure is the queue send itself:
// when a shard's bounded queue is full, Submit blocks until the worker
// drains, which bounds memory and keeps a closed-loop client honest.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"palermo/internal/stats"
)

// ErrClosed is returned by every operation submitted after Close has
// begun. The public API re-exports it as palermo.ErrClosed, so callers
// test for it with errors.Is instead of matching the message string.
var ErrClosed = errors.New("serve: service is closed")

// Op selects a request kind.
type Op uint8

// Request kinds.
const (
	OpRead Op = iota + 1
	OpWrite
	opSync // run a closure on the worker goroutine (stats snapshots, tests)
)

// Req describes one operation of a batch submission. Data is required for
// OpWrite and must be exactly the backend's block size.
type Req struct {
	Op   Op
	ID   uint64 // shard-local block id
	Data []byte
}

// Backend is one shard's store, owned by its worker goroutine. Close is
// called by the worker itself after its queue has drained, so a durable
// backend flushes and checkpoints on the same goroutine that owns it.
type Backend interface {
	Read(local uint64) ([]byte, error)
	Write(local uint64, data []byte) error
	Close() error
}

// Config tunes the service. The zero value uses the defaults.
type Config struct {
	// QueueDepth bounds each shard's request queue, counted in queued
	// submissions (a batch counts once). Default 256.
	QueueDepth int
	// MaxBatch caps how many operations a worker coalesces into one
	// served batch when draining its queue opportunistically. A single
	// submitted batch is never split, so an atomic SubmitBatch larger than
	// MaxBatch still dedups as one unit. Default 64.
	MaxBatch int
}

func (c *Config) defaults() {
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
}

// result is what a future resolves to.
type result struct {
	data []byte
	err  error
}

// Future resolves to one request's outcome.
type Future struct {
	done chan result
}

// Wait blocks until the request completes and returns its payload (reads)
// and error.
func (f *Future) Wait() ([]byte, error) {
	r := <-f.done
	return r.data, r.err
}

// request is the internal queued form.
type request struct {
	op   Op
	id   uint64
	data []byte
	fn   func() // opSync only
	t0   time.Time
	done chan result
}

// Service routes requests to per-shard workers.
type Service struct {
	cfg     Config
	workers []*worker

	mu       sync.RWMutex // guards closed vs. in-flight queue sends
	closed   bool
	wg       sync.WaitGroup
	errOnce  sync.Once // collects worker close errors exactly once
	closeErr error
}

// worker owns one backend.
type worker struct {
	backend  Backend
	queue    chan []*request
	maxBatch int

	// statMu guards the histograms and counters below; they are written by
	// the worker once per completed request and read by Stats.
	statMu   sync.Mutex
	readLat  *stats.Histogram
	writeLat *stats.Histogram
	dedup    uint64

	// closeErr is the backend's Close result, written by the worker
	// goroutine before it exits and read only after wg.Wait.
	closeErr error
}

// New starts one worker goroutine per backend.
func New(backends []Backend, cfg Config) *Service {
	cfg.defaults()
	s := &Service{cfg: cfg}
	for _, b := range backends {
		w := &worker{
			backend:  b,
			queue:    make(chan []*request, cfg.QueueDepth),
			maxBatch: cfg.MaxBatch,
			readLat:  newLatHistogram(),
			writeLat: newLatHistogram(),
		}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			w.run()
		}()
	}
	return s
}

// newLatHistogram builds a latency histogram in microseconds: 4096
// buckets of 5µs cover [0, ~20ms) with overflow counted. Percentiles come
// from bucket counts (stats.Histogram.Quantile), so service memory stays
// bounded no matter how many requests are served.
func newLatHistogram() *stats.Histogram {
	return stats.NewHistogram(4096, 5)
}

// Shards returns the number of shard workers.
func (s *Service) Shards() int { return len(s.workers) }

// Submit enqueues one operation for a shard and returns its future. It
// blocks while the shard's queue is full (back-pressure). Write data is
// copied, so the caller may reuse its buffer immediately.
func (s *Service) Submit(shard int, op Op, id uint64, data []byte) (*Future, error) {
	if op != OpRead && op != OpWrite {
		return nil, fmt.Errorf("serve: invalid op %d", op)
	}
	r := &request{op: op, id: id, t0: time.Now(), done: make(chan result, 1)}
	if op == OpWrite {
		r.data = append([]byte(nil), data...)
	}
	if err := s.enqueue(shard, []*request{r}); err != nil {
		return nil, err
	}
	return &Future{done: r.done}, nil
}

// SubmitBatch enqueues a batch atomically: the worker serves all of it as
// one unit, so same-block reads inside the batch are guaranteed to
// coalesce into a single ORAM access. Futures are returned in input order.
func (s *Service) SubmitBatch(shard int, reqs []Req) ([]*Future, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	t0 := time.Now()
	batch := make([]*request, len(reqs))
	futs := make([]*Future, len(reqs))
	for i, q := range reqs {
		if q.Op != OpRead && q.Op != OpWrite {
			return nil, fmt.Errorf("serve: invalid op %d at batch index %d", q.Op, i)
		}
		r := &request{op: q.Op, id: q.ID, t0: t0, done: make(chan result, 1)}
		if q.Op == OpWrite {
			r.data = append([]byte(nil), q.Data...)
		}
		batch[i] = r
		futs[i] = &Future{done: r.done}
	}
	if err := s.enqueue(shard, batch); err != nil {
		return nil, err
	}
	return futs, nil
}

// Read performs a synchronous oblivious read on a shard.
func (s *Service) Read(shard int, id uint64) ([]byte, error) {
	f, err := s.Submit(shard, OpRead, id, nil)
	if err != nil {
		return nil, err
	}
	return f.Wait()
}

// Write performs a synchronous oblivious write on a shard.
func (s *Service) Write(shard int, id uint64, data []byte) error {
	f, err := s.Submit(shard, OpWrite, id, data)
	if err != nil {
		return err
	}
	_, err = f.Wait()
	return err
}

// Sync runs fn on the shard's worker goroutine, after every operation
// queued ahead of it, and returns once fn completes. It is the race-free
// way to observe worker-owned state (backend counters, traces) while the
// service is running.
func (s *Service) Sync(shard int, fn func()) error {
	r := &request{op: opSync, fn: fn, t0: time.Now(), done: make(chan result, 1)}
	if err := s.enqueue(shard, []*request{r}); err != nil {
		return err
	}
	<-r.done
	return nil
}

// enqueue sends a batch to a shard's queue under the closed-state guard.
// Holding the read lock across a blocking send is safe: workers drain until
// their queue is closed, and Close cannot close queues until all in-flight
// sends release the lock.
func (s *Service) enqueue(shard int, batch []*request) error {
	if shard < 0 || shard >= len(s.workers) {
		return fmt.Errorf("serve: shard %d out of range [0,%d)", shard, len(s.workers))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.workers[shard].queue <- batch
	return nil
}

// Close stops accepting requests, drains every already-queued request to
// completion, closes each backend on its own worker goroutine (flushing
// and checkpointing durable backends), and waits for all workers to exit.
// Idempotent; every call returns the first backend close error.
func (s *Service) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, w := range s.workers {
			close(w.queue)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.errOnce.Do(func() {
		for _, w := range s.workers {
			if w.closeErr != nil {
				s.closeErr = w.closeErr
				break
			}
		}
	})
	return s.closeErr
}

// Closed reports whether Close has begun.
func (s *Service) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// WaitClosed blocks until every worker goroutine has exited. Only
// meaningful once Close has begun (a concurrent Close may still be
// draining queued requests when other callers observe closed errors);
// calling it on an open service blocks until someone calls Close.
func (s *Service) WaitClosed() { s.wg.Wait() }

// run is the worker loop: receive a batch, opportunistically coalesce more
// queued submissions up to maxBatch operations, serve, repeat. On queue
// close, everything already queued is still served before exiting.
func (w *worker) run() {
	defer func() { w.closeErr = w.backend.Close() }()
	cache := make(map[uint64][]byte)
	for {
		batch, ok := <-w.queue
		if !ok {
			return
		}
		ops := batch
		for len(ops) < w.maxBatch {
			select {
			case more, open := <-w.queue:
				if !open {
					w.serve(ops, cache)
					return
				}
				ops = append(ops, more...)
			default:
				goto full
			}
		}
	full:
		w.serve(ops, cache)
	}
}

// serve executes one coalesced batch in arrival order. cache maps block id
// to the plaintext most recently produced inside this batch; a read whose
// id is cached is served by fan-out instead of a second ORAM access.
func (w *worker) serve(ops []*request, cache map[uint64][]byte) {
	clear(cache)
	for _, r := range ops {
		switch r.op {
		case opSync:
			r.fn()
			r.done <- result{}
		case OpRead:
			if data, ok := cache[r.id]; ok {
				w.statMu.Lock()
				w.dedup++
				w.statMu.Unlock()
				w.finish(r, append([]byte(nil), data...), nil)
				continue
			}
			data, err := w.backend.Read(r.id)
			if err == nil {
				cache[r.id] = append([]byte(nil), data...)
			}
			w.finish(r, data, err)
		case OpWrite:
			err := w.backend.Write(r.id, r.data)
			if err == nil {
				cache[r.id] = append([]byte(nil), r.data...)
			} else {
				delete(cache, r.id) // never serve a stale fan-out after a failed write
			}
			w.finish(r, nil, err)
		}
	}
}

// finish records latency and resolves the future (never blocks: done is
// buffered).
func (w *worker) finish(r *request, data []byte, err error) {
	us := float64(time.Since(r.t0)) / float64(time.Microsecond)
	w.statMu.Lock()
	if r.op == OpRead {
		w.readLat.Add(us)
	} else {
		w.writeLat.Add(us)
	}
	w.statMu.Unlock()
	r.done <- result{data: data, err: err}
}

// LatencySummary condenses one operation class's latency distribution.
type LatencySummary struct {
	N            uint64
	MeanUs       float64
	P50Us, P99Us float64
}

// Stats is a point-in-time service snapshot.
type Stats struct {
	Reads, Writes uint64 // completed operations
	DedupHits     uint64 // reads served by intra-batch fan-out
	ReadLat       LatencySummary
	WriteLat      LatencySummary
}

// Stats aggregates counters and latency percentiles across all shards. Safe
// to call at any time, including while requests are in flight. Percentiles
// are bucketed upper bounds (5µs resolution, clamped at the ~20ms
// histogram range).
func (s *Service) Stats() Stats {
	var out Stats
	reads, writes := newLatHistogram(), newLatHistogram()
	for _, w := range s.workers {
		w.statMu.Lock()
		out.DedupHits += w.dedup
		reads.Merge(w.readLat)
		writes.Merge(w.writeLat)
		w.statMu.Unlock()
	}
	out.Reads = reads.N()
	out.Writes = writes.N()
	out.ReadLat = summarize(reads)
	out.WriteLat = summarize(writes)
	return out
}

func summarize(h *stats.Histogram) LatencySummary {
	return LatencySummary{
		N:      h.N(),
		MeanUs: h.Mean(),
		P50Us:  h.Quantile(0.50),
		P99Us:  h.Quantile(0.99),
	}
}
