// Package serve is the concurrent request layer over a set of sharded
// oblivious-store backends: per-shard worker goroutines, bounded request
// queues with back-pressure, intra-batch same-block read deduplication
// (one ORAM access fans out to every waiter), channel-based futures, and
// latency histograms (internal/stats).
//
// Concurrency discipline: each backend is confined to exactly one worker
// goroutine — the engine-per-goroutine rule the sweep runner already
// follows (DESIGN.md §4.2) — so ORAM engines need no locks and per-shard
// request subsequences execute deterministically. Clients only touch
// channels and their own futures. Back-pressure is the queue send itself:
// when a shard's bounded queue is full, Submit blocks until the worker
// drains, which bounds memory and keeps a closed-loop client honest.
//
// With a StagedBackend and PipelineDepth > 1 the worker becomes a
// depth-D software pipeline (DESIGN.md §9): request k's backend I/O and
// WAL commit are in flight while request k+1's engine stage runs on the
// worker. Engine work never leaves the worker goroutine and completions
// resolve FIFO, so scheduling, dedup semantics, and per-shard
// determinism are identical to the serial worker at every depth.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"palermo/internal/stats"
)

// ErrClosed is returned by every operation submitted after Close has
// begun. The public API re-exports it as palermo.ErrClosed, so callers
// test for it with errors.Is instead of matching the message string.
var ErrClosed = errors.New("serve: service is closed")

// ErrRetry is returned by an operation the service shed under overload:
// its admission deadline (Config.AdmissionDeadline) expired while it sat
// in the shard queue, so the worker dropped it *before any engine access*
// instead of letting the queue grow without bound. The operation did not
// execute — retrying is always safe — and because the drop happens ahead
// of the backend, shedding is invisible to the §6 obliviousness argument.
// The public API re-exports it as palermo.ErrRetry.
var ErrRetry = errors.New("serve: request shed under overload, retry")

// Op selects a request kind.
type Op uint8

// Request kinds.
const (
	OpRead Op = iota + 1
	OpWrite
	opSync // run a closure on the worker goroutine (stats snapshots, tests)
)

// Req describes one operation of a batch submission. Data is required for
// OpWrite and must be exactly the backend's block size.
type Req struct {
	Op   Op
	ID   uint64 // shard-local block id
	Data []byte
}

// Backend is one shard's store, owned by its worker goroutine. Close is
// called by the worker itself after its queue has drained, so a durable
// backend flushes and checkpoints on the same goroutine that owns it.
type Backend interface {
	Read(local uint64) ([]byte, error)
	Write(local uint64, data []byte) error
	Close() error
}

// Access is one staged operation a StagedBackend has begun: the engine
// stage is done, the I/O stage is in flight. Wait resolves it (on the
// worker goroutine).
type Access interface {
	Wait() ([]byte, error)
}

// StagedBackend is the optional Backend extension the pipelined worker
// drives: Begin runs the access's deterministic engine stage and launches
// its backend I/O vector, so the worker can begin the next request's
// engine stage while up to PipelineDepth accesses' I/O (and a durable
// backend's group commit) is in flight. shard.Shard implements it once
// its pipeline is enabled.
type StagedBackend interface {
	Backend
	BeginRead(local uint64) (Access, error)
	BeginWrite(local uint64, data []byte) (Access, error)
}

// PrefetchBackend is the optional StagedBackend extension the batch-
// admission planner drives: PrefetchRead announces an upcoming read so the
// backend can move its payload fetch ahead of the access's engine stage
// (declining — returning false — is always safe). The worker announces
// only distinct ids whose first operation in the admitted batch is a read,
// which is exactly the set its dedup discipline turns into one BeginRead
// each — so every accepted announcement is claimed by the batch it planned.
type PrefetchBackend interface {
	PrefetchRead(local uint64) bool
}

// DeepPrefetchBackend is the multi-line extension the deep planner
// (Config.PrefetchDepth > 1 or Config.PosmapPrefetch) drives. PrefetchSet
// announces a whole fetch set in one vectored request and reports how many
// leading lines were accepted; DropPrefetch releases an accepted announce
// whose read will never materialize (an overload shed, an expired
// speculative line) so announce window slots cannot leak; PosmapGroup
// names the announced id's position-map-group siblings — the contiguous
// data lines its level-1 posmap line covers — for speculative warming.
// shard.Shard implements it.
type DeepPrefetchBackend interface {
	PrefetchBackend
	PrefetchSet(locals []uint64) int
	DropPrefetch(local uint64) bool
	PosmapGroup(local uint64, dst []uint64) []uint64
}

// Config tunes the service. The zero value uses the defaults.
type Config struct {
	// QueueDepth bounds each shard's request queue, counted in queued
	// submissions (a batch counts once). Default 256.
	QueueDepth int
	// MaxBatch caps how many operations a worker coalesces into one
	// served batch when draining its queue opportunistically. A single
	// submitted batch is never split, so an atomic SubmitBatch larger than
	// MaxBatch still dedups as one unit. Default 64.
	MaxBatch int
	// PipelineDepth is how many accesses a shard worker keeps in flight
	// through a StagedBackend: request k's backend I/O and WAL commit
	// overlap request k+1's engine stage. 1 serves strictly serially —
	// bit-identical to the pre-pipeline worker; backends that are not
	// StagedBackends always serve serially. Default 2.
	PipelineDepth int
	// Prefetch turns on the batch-admission planner: when a backend is a
	// PrefetchBackend (and the pipeline is active), each admitted batch's
	// upcoming reads are announced up front so their payload fetches run
	// ahead of the accesses' engine stages. Purely a scheduling change —
	// served payloads, dedup semantics, and per-shard determinism are
	// untouched (the differential suite pins this). Default off.
	Prefetch bool
	// PrefetchDepth is how many predicted served batches ahead the
	// admission planner announces read fetch sets, counted in batches of
	// MaxBatch operations: the worker pulls queued submissions into a
	// backlog, predicts the batch boundaries its own coalescing rule will
	// produce (submitted batches are never split and batches only grow at
	// the tail, so predictions never invalidate), and announces each
	// predicted batch's first-op-read ids before the current batch
	// finishes executing. 0 or 1 keeps today's one-batch planner
	// bit-exactly. Only meaningful with Prefetch and a
	// DeepPrefetchBackend. Default 1.
	PrefetchDepth int
	// PosmapPrefetch additionally announces each planned read's
	// position-map-group siblings (DeepPrefetchBackend.PosmapGroup): the
	// contiguous data lines the access's level-1 posmap line covers, so
	// one announce warms the whole recursive hierarchy's backend lines.
	// Speculative lines nobody reads are dropped after the planning
	// horizon passes. Requires Prefetch. Default off.
	PosmapPrefetch bool
	// AdmissionDeadline bounds how long a request may wait in its shard
	// queue before the worker sheds it: a request picked up more than this
	// long after submission is answered ErrRetry without executing, so an
	// overloaded service degrades by shedding instead of by unbounded
	// queueing delay. Sheds happen strictly before any engine or backend
	// access. 0 (the default) disables shedding — every queued request
	// executes, the pre-overload behavior.
	AdmissionDeadline time.Duration
}

func (c *Config) defaults() {
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.PipelineDepth == 0 {
		c.PipelineDepth = 2
	}
}

// result is what a future resolves to.
type result struct {
	data []byte
	err  error
}

// Future resolves to one request's outcome.
type Future struct {
	done chan result
}

// Wait blocks until the request completes and returns its payload (reads)
// and error.
func (f *Future) Wait() ([]byte, error) {
	r := <-f.done
	return r.data, r.err
}

// request is the internal queued form.
type request struct {
	op    Op
	id    uint64
	data  []byte
	fn    func()    // opSync only
	t0    time.Time // submission (queue entry)
	tExec time.Time // worker pickup (queue exit); set by the worker
	done  chan result
}

// Service routes requests to per-shard workers.
type Service struct {
	cfg     Config
	workers []*worker

	mu       sync.RWMutex // guards closed vs. in-flight queue sends
	closed   bool
	wg       sync.WaitGroup
	errOnce  sync.Once // collects worker close errors exactly once
	closeErr error
}

// worker owns one backend.
type worker struct {
	backend  Backend
	staged   StagedBackend // non-nil: the pipelined executor is active
	depth    int           // accesses kept in flight (PipelineDepth)
	queue    chan []*request
	maxBatch int
	deadline time.Duration // admission deadline (0 = no shedding)

	// Pipeline state (staged executor only). pipe is the in-flight FIFO;
	// inflight counts per-id in-flight accesses begun in the current
	// coalesced batch, so same-batch dedup still collapses duplicate reads
	// onto one ORAM access; batchSeq tags pipe entries with their batch so
	// a completion from a previous batch never pollutes the current
	// batch's dedup cache.
	pipe     []pendingOp
	inflight map[uint64]int
	batchSeq uint64

	// Prefetch planner state (Config.Prefetch with a PrefetchBackend).
	// pfSeen is the per-batch first-op scratch set.
	prefetcher PrefetchBackend
	pfSeen     map[uint64]bool
	planned    uint64 // announcements the backend accepted (under statMu)

	// Claim/drop accounting (a DeepPrefetchBackend). ann is the current
	// batch's accepted-but-unclaimed announce set: a BeginRead of the id
	// claims it, and whatever remains at batch end — a shed read, a failed
	// Begin — is released with DropPrefetch so announce window slots never
	// leak.
	dropper interface{ DropPrefetch(local uint64) bool }
	ann     map[uint64]bool

	// Deep planner state (PrefetchDepth > 1 or PosmapPrefetch). backlog
	// holds queued submissions chunked into the exact batches the
	// coalescing rule will serve; annOut tracks every id with an
	// outstanding announce across all predicted batches (one claim each);
	// spec is the FIFO of speculative posmap-group lines with their expiry
	// batch; serveSeq counts served batches for that expiry.
	deep      DeepPrefetchBackend
	deepDepth int
	posmap    bool
	backlog   []*predBatch
	qClosed   bool
	annOut    map[uint64]bool
	spec      []specLine
	serveSeq  uint64
	annBuf    []uint64 // announce-set scratch, issue order
	annDemand []bool   // parallel to annBuf: demand line (vs speculative sibling)
	groupBuf  []uint64 // PosmapGroup scratch

	// statMu guards the histograms and counters below; they are written by
	// the worker once per completed request and read by Stats.
	statMu   sync.Mutex
	readLat  *stats.Histogram
	writeLat *stats.Histogram
	queueLat *stats.Histogram // submission -> worker pickup
	execLat  *stats.Histogram // worker pickup -> completion
	dedup    uint64
	sheds    uint64 // requests dropped at pickup (admission deadline expired)

	// closeErr is the backend's Close result, written by the worker
	// goroutine before it exits and read only after wg.Wait.
	closeErr error
}

// pendingOp is one in-flight staged access awaiting completion.
type pendingOp struct {
	r    *request
	acc  Access
	id   uint64
	wr   bool
	data []byte // write plaintext, cached on success
	seq  uint64 // batch tag (dedup-cache eligibility)
}

// predBatch is one predicted served batch of the deep planner's backlog:
// the submission groups the coalescing rule will serve as one batch, plus
// the announce set accepted on its behalf. Groups only ever append while
// nops < maxBatch — the same greedy rule the legacy coalescing loop
// applies — so a predicted batch's boundary never moves once the next
// batch starts.
type predBatch struct {
	groups [][]*request
	nops   int
	ann    map[uint64]bool // accepted announces to claim (BeginRead) or drop
}

// specLine is one speculative posmap-group announce: dropped (if still
// unclaimed) once serveSeq passes expire, the planning horizon after its
// announcing batch.
type specLine struct {
	id     uint64
	expire uint64
}

// New starts one worker goroutine per backend.
func New(backends []Backend, cfg Config) *Service {
	cfg.defaults()
	s := &Service{cfg: cfg}
	for _, b := range backends {
		w := &worker{
			backend:  b,
			depth:    cfg.PipelineDepth,
			queue:    make(chan []*request, cfg.QueueDepth),
			maxBatch: cfg.MaxBatch,
			deadline: cfg.AdmissionDeadline,
			readLat:  newLatHistogram(),
			writeLat: newLatHistogram(),
			queueLat: newLatHistogram(),
			execLat:  newLatHistogram(),
		}
		if sb, ok := b.(StagedBackend); ok && cfg.PipelineDepth > 1 {
			w.staged = sb
			w.inflight = make(map[uint64]int)
			if pb, ok := b.(PrefetchBackend); ok && cfg.Prefetch {
				w.prefetcher = pb
				w.pfSeen = make(map[uint64]bool)
				if dp, ok := b.(DeepPrefetchBackend); ok {
					// Claim/drop accounting needs DropPrefetch; backends
					// without it keep the legacy fire-and-forget planner.
					w.dropper = dp
					w.ann = make(map[uint64]bool)
					if cfg.PrefetchDepth > 1 || cfg.PosmapPrefetch {
						w.deep = dp
						w.deepDepth = max(cfg.PrefetchDepth, 1)
						w.posmap = cfg.PosmapPrefetch
						w.annOut = make(map[uint64]bool)
					}
				}
			}
		}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			w.run()
		}()
	}
	return s
}

// newLatHistogram builds a latency histogram in microseconds: 4096
// buckets of 5µs cover [0, ~20ms) with overflow counted. Percentiles come
// from bucket counts (stats.Histogram.Quantile), so service memory stays
// bounded no matter how many requests are served.
func newLatHistogram() *stats.Histogram {
	return stats.NewHistogram(4096, 5)
}

// Shards returns the number of shard workers.
func (s *Service) Shards() int { return len(s.workers) }

// Submit enqueues one operation for a shard and returns its future. It
// blocks while the shard's queue is full (back-pressure). Write data is
// copied, so the caller may reuse its buffer immediately.
func (s *Service) Submit(shard int, op Op, id uint64, data []byte) (*Future, error) {
	if op != OpRead && op != OpWrite {
		return nil, fmt.Errorf("serve: invalid op %d", op)
	}
	r := &request{op: op, id: id, t0: time.Now(), done: make(chan result, 1)}
	if op == OpWrite {
		r.data = append([]byte(nil), data...)
	}
	if err := s.enqueue(shard, []*request{r}); err != nil {
		return nil, err
	}
	return &Future{done: r.done}, nil
}

// SubmitBatch enqueues a batch atomically: the worker serves all of it as
// one unit, so same-block reads inside the batch are guaranteed to
// coalesce into a single ORAM access. Futures are returned in input order.
func (s *Service) SubmitBatch(shard int, reqs []Req) ([]*Future, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	t0 := time.Now()
	batch := make([]*request, len(reqs))
	futs := make([]*Future, len(reqs))
	for i, q := range reqs {
		if q.Op != OpRead && q.Op != OpWrite {
			return nil, fmt.Errorf("serve: invalid op %d at batch index %d", q.Op, i)
		}
		r := &request{op: q.Op, id: q.ID, t0: t0, done: make(chan result, 1)}
		if q.Op == OpWrite {
			r.data = append([]byte(nil), q.Data...)
		}
		batch[i] = r
		futs[i] = &Future{done: r.done}
	}
	if err := s.enqueue(shard, batch); err != nil {
		return nil, err
	}
	return futs, nil
}

// Read performs a synchronous oblivious read on a shard.
func (s *Service) Read(shard int, id uint64) ([]byte, error) {
	f, err := s.Submit(shard, OpRead, id, nil)
	if err != nil {
		return nil, err
	}
	return f.Wait()
}

// Write performs a synchronous oblivious write on a shard.
func (s *Service) Write(shard int, id uint64, data []byte) error {
	f, err := s.Submit(shard, OpWrite, id, data)
	if err != nil {
		return err
	}
	_, err = f.Wait()
	return err
}

// Sync runs fn on the shard's worker goroutine, after every operation
// queued ahead of it, and returns once fn completes. It is the race-free
// way to observe worker-owned state (backend counters, traces) while the
// service is running.
func (s *Service) Sync(shard int, fn func()) error {
	r := &request{op: opSync, fn: fn, t0: time.Now(), done: make(chan result, 1)}
	if err := s.enqueue(shard, []*request{r}); err != nil {
		return err
	}
	<-r.done
	return nil
}

// enqueue sends a batch to a shard's queue under the closed-state guard.
// Holding the read lock across a blocking send is safe: workers drain until
// their queue is closed, and Close cannot close queues until all in-flight
// sends release the lock.
func (s *Service) enqueue(shard int, batch []*request) error {
	if shard < 0 || shard >= len(s.workers) {
		return fmt.Errorf("serve: shard %d out of range [0,%d)", shard, len(s.workers))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.workers[shard].queue <- batch
	return nil
}

// Close stops accepting requests, drains every already-queued request to
// completion, closes each backend on its own worker goroutine (flushing
// and checkpointing durable backends), and waits for all workers to exit.
// Idempotent; every call returns the first backend close error.
func (s *Service) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, w := range s.workers {
			close(w.queue)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.errOnce.Do(func() {
		for _, w := range s.workers {
			if w.closeErr != nil {
				s.closeErr = w.closeErr
				break
			}
		}
	})
	return s.closeErr
}

// Closed reports whether Close has begun.
func (s *Service) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// WaitClosed blocks until every worker goroutine has exited. Only
// meaningful once Close has begun (a concurrent Close may still be
// draining queued requests when other callers observe closed errors);
// calling it on an open service blocks until someone calls Close.
func (s *Service) WaitClosed() { s.wg.Wait() }

// run is the worker loop: receive a batch, opportunistically coalesce more
// queued submissions up to maxBatch operations, serve, repeat. With a
// staged backend, in-flight accesses are carried across batches while the
// queue stays busy — the cross-request overlap of the pipeline — and
// drained whenever the queue goes idle, so a lone request never waits for
// a successor. On queue close, everything already queued is still served
// and the pipeline drained before the backend closes.
func (w *worker) run() {
	cache := make(map[uint64][]byte)
	defer func() {
		w.drainPipe(cache)
		w.closeErr = w.backend.Close()
	}()
	if w.deep != nil {
		w.runDeep(cache)
		return
	}
	for {
		var batch []*request
		var ok bool
		if len(w.pipe) > 0 {
			// Complete in-flight work before parking on an empty queue.
			select {
			case batch, ok = <-w.queue:
			default:
				w.drainPipe(cache)
				batch, ok = <-w.queue
			}
		} else {
			batch, ok = <-w.queue
		}
		if !ok {
			return
		}
		ops := batch
		for len(ops) < w.maxBatch {
			select {
			case more, open := <-w.queue:
				if !open {
					w.serve(ops, cache)
					return
				}
				ops = append(ops, more...)
			default:
				goto full
			}
		}
	full:
		w.serve(ops, cache)
	}
}

// runDeep is the worker loop of the deep planner (PrefetchDepth > 1 or
// PosmapPrefetch): queued submissions are pulled into a backlog chunked by
// the exact coalescing rule the legacy loop applies, fetch sets are
// announced for up to deepDepth predicted batches ahead, and then the
// front batch is served — so batch k+1's (and its posmap groups') backend
// lines are already moving while batch k's engine stages run. Served
// batches, dedup semantics, and engine-stage order are identical to the
// legacy loop; only announce timing differs.
func (w *worker) runDeep(cache map[uint64][]byte) {
	for {
		if len(w.backlog) == 0 {
			var batch []*request
			var ok bool
			if len(w.pipe) > 0 {
				// Complete in-flight work before parking on an empty queue.
				select {
				case batch, ok = <-w.queue:
				default:
					w.drainPipe(cache)
					batch, ok = <-w.queue
				}
			} else {
				batch, ok = <-w.queue
			}
			if !ok {
				return
			}
			w.push(batch)
		}
		w.fill()
		for i, pb := range w.backlog {
			if i >= w.deepDepth {
				break
			}
			w.announceBatch(pb)
		}
		pb := w.backlog[0]
		w.backlog = w.backlog[1:]
		ops := pb.groups[0]
		for _, g := range pb.groups[1:] {
			ops = append(ops, g...)
		}
		w.ann = pb.ann
		w.serve(ops, cache)
		if w.qClosed && len(w.backlog) == 0 {
			return
		}
	}
}

// push appends one submitted group to the backlog under the coalescing
// rule: it joins the last predicted batch while that batch holds fewer
// than maxBatch operations (a submitted batch is never split), otherwise
// it starts the next one.
func (w *worker) push(group []*request) {
	if n := len(w.backlog); n > 0 && w.backlog[n-1].nops < w.maxBatch {
		pb := w.backlog[n-1]
		pb.groups = append(pb.groups, group)
		pb.nops += len(group)
		return
	}
	w.backlog = append(w.backlog, &predBatch{
		groups: [][]*request{group},
		nops:   len(group),
		ann:    make(map[uint64]bool),
	})
}

// fill pulls queued submissions without blocking until the backlog covers
// deepDepth full predicted batches (or the queue is empty/closed), giving
// the announce pass its look-ahead.
func (w *worker) fill() {
	for !w.qClosed {
		if n := len(w.backlog); n > w.deepDepth ||
			(n == w.deepDepth && w.backlog[n-1].nops >= w.maxBatch) {
			return
		}
		select {
		case group, ok := <-w.queue:
			if !ok {
				w.qClosed = true
				return
			}
			w.push(group)
		default:
			return
		}
	}
}

// announceBatch announces one predicted batch's fetch set: each distinct
// id whose first operation in the batch is a read (the legacy plan rule),
// plus — with PosmapPrefetch — its position-map-group siblings as
// speculative lines. Ids with an announce already outstanding anywhere in
// the horizon are skipped (one claim each), so re-running the pass after
// the batch grows announces only the new ids. The whole set goes to the
// backend as one vectored PrefetchSet; the accepted prefix is recorded
// for claim/drop accounting — demand lines on the batch, speculative ones
// on the expiry FIFO.
func (w *worker) announceBatch(pb *predBatch) {
	clear(w.pfSeen)
	w.annBuf, w.annDemand = w.annBuf[:0], w.annDemand[:0]
	for _, g := range pb.groups {
		for _, r := range g {
			if r.op != OpRead && r.op != OpWrite {
				continue
			}
			if w.pfSeen[r.id] {
				continue
			}
			w.pfSeen[r.id] = true
			if r.op != OpRead {
				continue
			}
			if !w.annOut[r.id] {
				w.annOut[r.id] = true
				w.annBuf = append(w.annBuf, r.id)
				w.annDemand = append(w.annDemand, true)
			}
			if w.posmap {
				w.groupBuf = w.deep.PosmapGroup(r.id, w.groupBuf[:0])
				for _, sib := range w.groupBuf {
					if sib == r.id || w.annOut[sib] {
						continue
					}
					w.annOut[sib] = true
					w.annBuf = append(w.annBuf, sib)
					w.annDemand = append(w.annDemand, false)
				}
			}
		}
	}
	if len(w.annBuf) == 0 {
		return
	}
	n := w.deep.PrefetchSet(w.annBuf)
	for i, id := range w.annBuf {
		if i >= n {
			delete(w.annOut, id) // declined (window full): free for a retry
			continue
		}
		if w.annDemand[i] {
			pb.ann[id] = true
		} else {
			w.spec = append(w.spec, specLine{id: id, expire: w.serveSeq + uint64(w.deepDepth)})
		}
	}
	if n > 0 {
		w.statMu.Lock()
		w.planned += uint64(n)
		w.statMu.Unlock()
	}
}

// dropUnclaimed releases every announce the finished batch did not claim —
// a shed read, a failed Begin — plus speculative group lines whose
// planning horizon has passed. DropPrefetch on a line a read consumed in
// the meantime is a no-op, so expiry needs no consumption tracking.
func (w *worker) dropUnclaimed() {
	if w.dropper == nil {
		return
	}
	for id := range w.ann {
		w.dropper.DropPrefetch(id)
		delete(w.annOut, id)
	}
	clear(w.ann)
	w.serveSeq++
	for len(w.spec) > 0 && w.spec[0].expire <= w.serveSeq {
		sl := w.spec[0]
		w.spec = w.spec[1:]
		if w.annOut[sl.id] {
			w.dropper.DropPrefetch(sl.id)
			delete(w.annOut, sl.id)
		}
	}
}

// serve executes one coalesced batch in arrival order. cache maps block id
// to the plaintext most recently produced inside this batch; a read whose
// id is cached is served by fan-out instead of a second ORAM access.
func (w *worker) serve(ops []*request, cache map[uint64][]byte) {
	clear(cache)
	if w.staged != nil {
		w.batchSeq++
		clear(w.inflight) // earlier batches' entries no longer feed this cache
	}
	if w.prefetcher != nil && w.deep == nil {
		// Deep mode announced this batch in runDeep's look-ahead pass (it
		// always re-covers the front batch right before serving).
		w.plan(ops)
	}
	now := time.Now()
	for _, r := range ops {
		r.tExec = now
		// Overload shedding: a read or write whose admission deadline
		// expired while queued is dropped here, before the engine or
		// backend sees it — the request costs no ORAM access, emits no
		// adversary-visible traffic, and is always safe to retry.
		if w.deadline > 0 && r.op != opSync && now.Sub(r.t0) > w.deadline {
			w.statMu.Lock()
			w.sheds++
			w.statMu.Unlock()
			r.done <- result{err: ErrRetry}
			continue
		}
		switch r.op {
		case opSync:
			w.drainPipe(cache)
			r.fn()
			r.done <- result{}
		case OpRead:
			// Order same-id operations: an in-flight access to this id from
			// the current batch must land (populating the cache) before the
			// read is served — the serial executor's arrival-order/dedup
			// semantics, preserved across the pipeline.
			for w.staged != nil && w.inflight[r.id] > 0 {
				w.completeOne(cache)
			}
			if data, ok := cache[r.id]; ok {
				w.statMu.Lock()
				w.dedup++
				w.statMu.Unlock()
				w.finish(r, append([]byte(nil), data...), nil)
				continue
			}
			if w.staged == nil {
				data, err := w.backend.Read(r.id)
				if err == nil {
					cache[r.id] = append([]byte(nil), data...)
				}
				w.finish(r, data, err)
				continue
			}
			if len(w.pipe) >= w.depth {
				w.completeOne(cache)
			}
			acc, err := w.staged.BeginRead(r.id)
			if w.ann != nil && (w.ann[r.id] || w.annOut[r.id]) {
				if err == nil {
					// The Begin claimed this id's outstanding announce (the
					// current batch's demand line, a speculative group line,
					// or a future batch's early announce) — no batch-end
					// drop needed, and the id is free to announce again.
					delete(w.ann, r.id)
					delete(w.annOut, r.id)
				} else if w.ann[r.id] {
					// A failed Begin never reaches the backend's claim path;
					// release the announce immediately.
					delete(w.ann, r.id)
					delete(w.annOut, r.id)
					w.dropper.DropPrefetch(r.id)
				}
			}
			if err != nil {
				w.finish(r, nil, err)
				continue
			}
			w.pipe = append(w.pipe, pendingOp{r: r, acc: acc, id: r.id, seq: w.batchSeq})
			w.inflight[r.id]++
		case OpWrite:
			if w.staged == nil {
				err := w.backend.Write(r.id, r.data)
				if err == nil {
					cache[r.id] = append([]byte(nil), r.data...)
				} else {
					delete(cache, r.id) // never serve a stale fan-out after a failed write
				}
				w.finish(r, nil, err)
				continue
			}
			if len(w.pipe) >= w.depth {
				w.completeOne(cache)
			}
			acc, err := w.staged.BeginWrite(r.id, r.data)
			if err != nil {
				delete(cache, r.id)
				w.finish(r, nil, err)
				continue
			}
			w.pipe = append(w.pipe, pendingOp{r: r, acc: acc, id: r.id, wr: true, data: r.data, seq: w.batchSeq})
			w.inflight[r.id]++
		}
	}
	w.dropUnclaimed()
}

// plan is the batch-admission prefetch pass (DESIGN.md §10): before any of
// the batch executes, announce each distinct id whose first operation is a
// read. Those are exactly the ids the dedup discipline turns into one
// BeginRead each, so every accepted announcement is consumed within the
// batch — unless the read is shed at pickup or its Begin fails, which is
// why accepted ids are also tracked in w.ann (backends with DropPrefetch)
// and released at batch end if unclaimed. Ids first touched by a write are
// skipped (the write would just invalidate the fetched payload).
func (w *worker) plan(ops []*request) {
	clear(w.pfSeen)
	accepted := uint64(0)
	for _, r := range ops {
		if r.op != OpRead && r.op != OpWrite {
			continue
		}
		if w.pfSeen[r.id] {
			continue
		}
		w.pfSeen[r.id] = true
		if r.op == OpRead && w.prefetcher.PrefetchRead(r.id) {
			accepted++
			if w.ann != nil {
				w.ann[r.id] = true
			}
		}
	}
	if accepted > 0 {
		w.statMu.Lock()
		w.planned += accepted
		w.statMu.Unlock()
	}
}

// completeOne resolves the oldest in-flight access: wait out its I/O,
// update the dedup cache (current-batch entries only), and finish its
// future. Futures therefore resolve in begin order.
func (w *worker) completeOne(cache map[uint64][]byte) {
	p := w.pipe[0]
	copy(w.pipe, w.pipe[1:])
	w.pipe = w.pipe[:len(w.pipe)-1]
	data, err := p.acc.Wait()
	if p.seq == w.batchSeq {
		if n := w.inflight[p.id]; n > 1 {
			w.inflight[p.id] = n - 1
		} else {
			delete(w.inflight, p.id)
		}
		switch {
		case p.wr && err == nil:
			cache[p.id] = append([]byte(nil), p.data...)
		case p.wr:
			delete(cache, p.id) // never serve a stale fan-out after a failed write
		case err == nil:
			cache[p.id] = append([]byte(nil), data...)
		}
	}
	w.finish(p.r, data, err)
}

// drainPipe completes every in-flight access.
func (w *worker) drainPipe(cache map[uint64][]byte) {
	for len(w.pipe) > 0 {
		w.completeOne(cache)
	}
}

// finish records latency — total per op class, plus the queue-wait and
// execute split — and resolves the future (never blocks: done is
// buffered).
func (w *worker) finish(r *request, data []byte, err error) {
	now := time.Now()
	us := float64(now.Sub(r.t0)) / float64(time.Microsecond)
	queueUs := float64(r.tExec.Sub(r.t0)) / float64(time.Microsecond)
	execUs := float64(now.Sub(r.tExec)) / float64(time.Microsecond)
	w.statMu.Lock()
	if r.op == OpRead {
		w.readLat.Add(us)
	} else {
		w.writeLat.Add(us)
	}
	w.queueLat.Add(queueUs)
	w.execLat.Add(execUs)
	w.statMu.Unlock()
	r.done <- result{data: data, err: err}
}

// LatencySummary condenses one operation class's latency distribution.
type LatencySummary struct {
	N            uint64
	MeanUs       float64
	P50Us, P99Us float64
}

// Stats is a point-in-time service snapshot. ReadLat/WriteLat are
// submission-to-completion totals per op class; QueueLat/ExecLat split the
// same interval (across both classes) into time spent waiting in the shard
// queue versus executing on the worker, so a pipeline win (shorter
// execute, emptier queue) is attributable from the snapshot alone.
type Stats struct {
	Reads, Writes uint64 // completed operations
	DedupHits     uint64 // reads served by intra-batch fan-out
	// PrefetchPlanned counts batch-admission read announcements the
	// backend accepted (Config.Prefetch). How many were consumed or went
	// stale is the backend's accounting (shard.Counters → TrafficReport).
	PrefetchPlanned uint64
	// Sheds counts requests dropped at worker pickup because their
	// admission deadline (Config.AdmissionDeadline) had expired. Shed
	// requests resolve with ErrRetry, execute nothing, and appear in no
	// latency histogram — Reads/Writes and the percentiles describe
	// admitted operations only.
	Sheds    uint64
	ReadLat  LatencySummary
	WriteLat LatencySummary
	QueueLat LatencySummary // queue entry -> worker pickup
	ExecLat  LatencySummary // worker pickup -> completion
}

// QueueDepths reports each shard's current request-queue occupancy (in
// queued submissions — a batch counts once). A point-in-time operability
// reading for the /metrics surface; safe at any time, including after
// Close (closed queues read 0).
func (s *Service) QueueDepths() []int {
	out := make([]int, len(s.workers))
	for i, w := range s.workers {
		out[i] = len(w.queue)
	}
	return out
}

// Stats aggregates counters and latency percentiles across all shards. Safe
// to call at any time, including while requests are in flight. Percentiles
// are bucketed upper bounds (5µs resolution, clamped at the ~20ms
// histogram range).
func (s *Service) Stats() Stats {
	return MergeStats([]*Service{s})
}

// MergeStats aggregates the snapshots of several Services with exactly the
// arithmetic Stats applies across one Service's workers: counters sum and
// latency histograms merge at the bucket level, so the combined percentiles
// are those of the pooled samples — not a lossy summary-of-summaries. The
// cluster node uses it to report one service snapshot across its per-shard
// Services (including the retired ones of migrated-away shards, whose
// served-operation history stays on this node). Safe at any time; a closed
// Service contributes its final counters.
func MergeStats(svcs []*Service) Stats {
	var out Stats
	reads, writes := newLatHistogram(), newLatHistogram()
	queued, execed := newLatHistogram(), newLatHistogram()
	for _, s := range svcs {
		for _, w := range s.workers {
			w.statMu.Lock()
			out.DedupHits += w.dedup
			out.PrefetchPlanned += w.planned
			out.Sheds += w.sheds
			reads.Merge(w.readLat)
			writes.Merge(w.writeLat)
			queued.Merge(w.queueLat)
			execed.Merge(w.execLat)
			w.statMu.Unlock()
		}
	}
	out.Reads = reads.N()
	out.Writes = writes.N()
	out.ReadLat = summarize(reads)
	out.WriteLat = summarize(writes)
	out.QueueLat = summarize(queued)
	out.ExecLat = summarize(execed)
	return out
}

func summarize(h *stats.Histogram) LatencySummary {
	return LatencySummary{
		N:      h.N(),
		MeanUs: h.Mean(),
		P50Us:  h.Quantile(0.50),
		P99Us:  h.Quantile(0.99),
	}
}
