package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// memBackend is a deterministic in-memory Backend that counts accesses —
// a stand-in for a shard so the service layer's scheduling, dedup, and
// lifecycle can be tested in isolation.
type memBackend struct {
	blocks   map[uint64][]byte
	accesses int // backend touches (what dedup is supposed to save)
	failOn   uint64
	hasFail  bool
	closes   int   // Close calls observed (workers must close exactly once)
	closeErr error // injected Close failure
}

func newMemBackend() *memBackend { return &memBackend{blocks: make(map[uint64][]byte)} }

func (m *memBackend) Read(local uint64) ([]byte, error) {
	m.accesses++
	if m.hasFail && local == m.failOn {
		return nil, fmt.Errorf("backend: injected failure on %d", local)
	}
	if b, ok := m.blocks[local]; ok {
		return append([]byte(nil), b...), nil
	}
	return make([]byte, 64), nil
}

func (m *memBackend) Write(local uint64, data []byte) error {
	m.accesses++
	if m.hasFail && local == m.failOn {
		return fmt.Errorf("backend: injected failure on %d", local)
	}
	m.blocks[local] = append([]byte(nil), data...)
	return nil
}

func (m *memBackend) Close() error {
	m.closes++
	return m.closeErr
}

func payload(v uint64) []byte {
	b := make([]byte, 64)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestServeReadWrite(t *testing.T) {
	b := newMemBackend()
	s := New([]Backend{b}, Config{})
	defer s.Close()
	if err := s.Write(0, 5, payload(42)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(got) != 42 {
		t.Fatal("round trip failed")
	}
	if _, err := s.Read(3, 0); err == nil {
		t.Fatal("out-of-range shard must error")
	}
	if _, err := s.Submit(0, Op(9), 0, nil); err == nil {
		t.Fatal("invalid op must error")
	}
}

func TestServeBatchDedup(t *testing.T) {
	b := newMemBackend()
	s := New([]Backend{b}, Config{})
	defer s.Close()
	if err := s.Write(0, 7, payload(7)); err != nil {
		t.Fatal(err)
	}
	var before int
	if err := s.Sync(0, func() { before = b.accesses }); err != nil {
		t.Fatal(err)
	}

	// 32 reads of the same block submitted atomically: exactly one backend
	// access, every future resolves to an identical private copy.
	reqs := make([]Req, 32)
	for i := range reqs {
		reqs[i] = Req{Op: OpRead, ID: 7}
	}
	futs, err := s.SubmitBatch(0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var results [][]byte
	for _, f := range futs {
		data, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, data)
	}
	var after int
	if err := s.Sync(0, func() { after = b.accesses }); err != nil {
		t.Fatal(err)
	}
	if after-before != 1 {
		t.Fatalf("32 same-block reads cost %d backend accesses, want 1", after-before)
	}
	for i, r := range results {
		if !bytes.Equal(r, results[0]) {
			t.Fatalf("waiter %d got a different payload", i)
		}
	}
	// Fan-out copies are private: mutating one must not affect another.
	results[0][0] ^= 0xFF
	if bytes.Equal(results[0], results[1]) {
		t.Fatal("waiters share a payload buffer")
	}
	if st := s.Stats(); st.DedupHits != 31 {
		t.Fatalf("dedup hits = %d, want 31", st.DedupHits)
	}
}

func TestServeBatchWriteThenRead(t *testing.T) {
	b := newMemBackend()
	s := New([]Backend{b}, Config{})
	defer s.Close()
	// In one atomic batch: write id 3, then read it twice. Reads must see
	// the write (arrival order) and be served from the batch cache.
	futs, err := s.SubmitBatch(0, []Req{
		{Op: OpWrite, ID: 3, Data: payload(99)},
		{Op: OpRead, ID: 3},
		{Op: OpRead, ID: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := futs[0].Wait(); err != nil {
		t.Fatal(err)
	}
	for _, f := range futs[1:] {
		data, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if binary.LittleEndian.Uint64(data) != 99 {
			t.Fatal("read did not observe same-batch write")
		}
	}
	var accesses int
	if err := s.Sync(0, func() { accesses = b.accesses }); err != nil {
		t.Fatal(err)
	}
	if accesses != 1 {
		t.Fatalf("write+2 reads cost %d backend accesses, want 1 (reads fan out from the write)", accesses)
	}
}

func TestServeFailedWriteNotCached(t *testing.T) {
	b := newMemBackend()
	b.hasFail, b.failOn = true, 4
	s := New([]Backend{b}, Config{})
	defer s.Close()
	futs, err := s.SubmitBatch(0, []Req{
		{Op: OpWrite, ID: 4, Data: payload(1)},
		{Op: OpRead, ID: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := futs[0].Wait(); err == nil {
		t.Fatal("injected write failure not reported")
	}
	// The read must hit the backend (and fail itself), never a stale cache.
	if _, err := futs[1].Wait(); err == nil {
		t.Fatal("read after failed write served from cache")
	}
}

func TestServeSyncOrdering(t *testing.T) {
	b := newMemBackend()
	s := New([]Backend{b}, Config{QueueDepth: 64})
	defer s.Close()
	// Sync observes every operation queued ahead of it.
	var futs []*Future
	for i := 0; i < 20; i++ {
		f, err := s.Submit(0, OpWrite, uint64(i), payload(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	var n int
	if err := s.Sync(0, func() { n = len(b.blocks) }); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("Sync ran before queued writes: saw %d blocks", n)
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServeCloseDrainsAndRejects(t *testing.T) {
	b := newMemBackend()
	s := New([]Backend{b}, Config{QueueDepth: 128})
	var futs []*Future
	for i := 0; i < 50; i++ {
		f, err := s.Submit(0, OpWrite, uint64(i), payload(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything queued before Close completed.
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if len(b.blocks) != 50 {
		t.Fatalf("close dropped writes: %d/50 applied", len(b.blocks))
	}
	if _, err := s.Submit(0, OpRead, 0, nil); err == nil {
		t.Fatal("submit after close must error")
	}
	if err := s.Sync(0, func() {}); err == nil {
		t.Fatal("sync after close must error")
	}
	if err := s.Close(); err != nil {
		t.Fatal("close must be idempotent")
	}
	if !s.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if b.closes != 1 {
		t.Fatalf("backend closed %d times, want exactly once", b.closes)
	}
}

func TestServeErrClosedSentinel(t *testing.T) {
	s := New([]Backend{newMemBackend()}, Config{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(0, OpRead, 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want errors.Is(_, ErrClosed)", err)
	}
	if _, err := s.SubmitBatch(0, []Req{{Op: OpRead, ID: 0}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitBatch after Close = %v, want errors.Is(_, ErrClosed)", err)
	}
}

func TestServeClosePropagatesBackendError(t *testing.T) {
	good, bad := newMemBackend(), newMemBackend()
	bad.closeErr = fmt.Errorf("disk full")
	s := New([]Backend{good, bad}, Config{})
	if err := s.Close(); err == nil || err.Error() != "disk full" {
		t.Fatalf("Close = %v, want the backend's close error", err)
	}
	// Repeated Close keeps returning the same error (idempotent outcome),
	// without re-closing backends.
	if err := s.Close(); err == nil || err.Error() != "disk full" {
		t.Fatalf("second Close = %v, want the same error", err)
	}
	if good.closes != 1 || bad.closes != 1 {
		t.Fatalf("backends closed (%d, %d) times, want exactly once each", good.closes, bad.closes)
	}
}

func TestServeConcurrentClients(t *testing.T) {
	// Many clients over few shards with a tiny queue, exercising
	// back-pressure and the race detector across the full submit path.
	backends := []Backend{newMemBackend(), newMemBackend()}
	s := New(backends, Config{QueueDepth: 4, MaxBatch: 8})
	defer s.Close()
	const clients, opsPer = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				// Each client owns a disjoint id range so reads verify
				// exactly against the client's own writes.
				id := uint64(c*opsPer + i%7)
				shard := c % 2
				want := uint64(c<<32) | uint64(i)
				if err := s.Write(shard, id, payload(want)); err != nil {
					errs <- err
					return
				}
				got, err := s.Read(shard, id)
				if err != nil {
					errs <- err
					return
				}
				if binary.LittleEndian.Uint64(got) != want {
					errs <- fmt.Errorf("client %d read stale data", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reads != clients*opsPer || st.Writes != clients*opsPer {
		t.Fatalf("stats ops: %+v", st)
	}
	if st.ReadLat.N != clients*opsPer || st.ReadLat.P99Us < st.ReadLat.P50Us {
		t.Fatalf("latency summary implausible: %+v", st.ReadLat)
	}
}

// stagedMemBackend wraps memBackend with the StagedBackend surface: the
// engine-stage analog (the backend map op and access count) runs at
// Begin on the worker, while completion arrives asynchronously over a
// channel — so the pipelined worker's FIFO, dedup, and ordering logic is
// exercised with genuinely overlapped completions under -race.
type stagedMemBackend struct {
	*memBackend
	beginReads, beginWrites int
}

type fakeAccess struct{ ch chan result }

func (a fakeAccess) Wait() ([]byte, error) {
	r := <-a.ch
	return r.data, r.err
}

func (s *stagedMemBackend) BeginRead(id uint64) (Access, error) {
	s.beginReads++
	data, err := s.memBackend.Read(id)
	ch := make(chan result, 1)
	go func() { ch <- result{data: data, err: err} }()
	return fakeAccess{ch}, nil
}

func (s *stagedMemBackend) BeginWrite(id uint64, data []byte) (Access, error) {
	s.beginWrites++
	err := s.memBackend.Write(id, data)
	ch := make(chan result, 1)
	go func() { ch <- result{err: err} }()
	return fakeAccess{ch}, nil
}

// TestServePipelinedBatchDedup is TestServeBatchDedup through the
// pipelined worker: duplicate reads inside an atomic batch still collapse
// onto one backend access even with accesses in flight.
func TestServePipelinedBatchDedup(t *testing.T) {
	b := &stagedMemBackend{memBackend: newMemBackend()}
	s := New([]Backend{b}, Config{PipelineDepth: 4})
	defer s.Close()
	if err := s.Write(0, 7, payload(7)); err != nil {
		t.Fatal(err)
	}
	var before int
	if err := s.Sync(0, func() { before = b.accesses }); err != nil {
		t.Fatal(err)
	}
	reqs := make([]Req, 32)
	for i := range reqs {
		reqs[i] = Req{Op: OpRead, ID: 7}
	}
	futs, err := s.SubmitBatch(0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var results [][]byte
	for _, f := range futs {
		data, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, data)
	}
	var after int
	if err := s.Sync(0, func() { after = b.accesses }); err != nil {
		t.Fatal(err)
	}
	if after-before != 1 {
		t.Fatalf("32 same-block reads cost %d backend accesses, want 1", after-before)
	}
	for i, r := range results {
		if !bytes.Equal(r, results[0]) {
			t.Fatalf("waiter %d got a different payload", i)
		}
	}
	if st := s.Stats(); st.DedupHits != 31 {
		t.Fatalf("dedup hits = %d, want 31", st.DedupHits)
	}
}

// prefetchMemBackend adds the PrefetchBackend surface to the staged mock:
// announcements are recorded (worker-goroutine calls, like BeginRead, so
// plain fields suffice) and always accepted.
type prefetchMemBackend struct {
	*stagedMemBackend
	announced []uint64
}

func (p *prefetchMemBackend) PrefetchRead(local uint64) bool {
	p.announced = append(p.announced, local)
	return true
}

// TestServePrefetchDedupOneAccess: an intra-batch duplicate read whose
// path the planner prefetched still fans out — the planner announces the
// id once (first-op-read dedup inside plan()), and the batch costs one
// backend access however many waiters share it.
func TestServePrefetchDedupOneAccess(t *testing.T) {
	b := &prefetchMemBackend{stagedMemBackend: &stagedMemBackend{memBackend: newMemBackend()}}
	s := New([]Backend{b}, Config{PipelineDepth: 4, Prefetch: true})
	defer s.Close()
	if err := s.Write(0, 7, payload(7)); err != nil {
		t.Fatal(err)
	}
	var before int
	if err := s.Sync(0, func() { before = b.accesses }); err != nil {
		t.Fatal(err)
	}
	reqs := make([]Req, 32)
	for i := range reqs {
		reqs[i] = Req{Op: OpRead, ID: 7}
	}
	futs, err := s.SubmitBatch(0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		data, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if binary.LittleEndian.Uint64(data) != 7 {
			t.Fatalf("waiter %d read wrong payload", i)
		}
	}
	var after int
	var announced []uint64
	if err := s.Sync(0, func() { after = b.accesses; announced = append([]uint64(nil), b.announced...) }); err != nil {
		t.Fatal(err)
	}
	if after-before != 1 {
		t.Fatalf("32 same-block prefetched reads cost %d backend accesses, want 1", after-before)
	}
	if len(announced) != 1 || announced[0] != 7 {
		t.Fatalf("planner announced %v, want exactly one announcement for id 7", announced)
	}
	st := s.Stats()
	if st.DedupHits != 31 {
		t.Fatalf("dedup hits = %d, want 31", st.DedupHits)
	}
	if st.PrefetchPlanned != 1 {
		t.Fatalf("PrefetchPlanned = %d, want 1", st.PrefetchPlanned)
	}
}

// TestServePrefetchSkipsWriteFirstIds: an id first touched by a write in
// the batch must not be announced — its read would fan out from the write,
// leaving the prefetched path unclaimed.
func TestServePrefetchSkipsWriteFirstIds(t *testing.T) {
	b := &prefetchMemBackend{stagedMemBackend: &stagedMemBackend{memBackend: newMemBackend()}}
	s := New([]Backend{b}, Config{PipelineDepth: 4, Prefetch: true})
	defer s.Close()
	futs, err := s.SubmitBatch(0, []Req{
		{Op: OpWrite, ID: 3, Data: payload(99)},
		{Op: OpRead, ID: 3},
		{Op: OpRead, ID: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	var announced []uint64
	if err := s.Sync(0, func() { announced = append([]uint64(nil), b.announced...) }); err != nil {
		t.Fatal(err)
	}
	if len(announced) != 1 || announced[0] != 5 {
		t.Fatalf("planner announced %v, want only the read-first id 5", announced)
	}
}

// TestServePipelinedWriteThenRead: arrival-order visibility and fan-out
// from an in-flight write, through the pipeline.
func TestServePipelinedWriteThenRead(t *testing.T) {
	b := &stagedMemBackend{memBackend: newMemBackend()}
	s := New([]Backend{b}, Config{PipelineDepth: 4})
	defer s.Close()
	futs, err := s.SubmitBatch(0, []Req{
		{Op: OpWrite, ID: 3, Data: payload(99)},
		{Op: OpRead, ID: 3},
		{Op: OpRead, ID: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := futs[0].Wait(); err != nil {
		t.Fatal(err)
	}
	for _, f := range futs[1:] {
		data, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if binary.LittleEndian.Uint64(data) != 99 {
			t.Fatal("read did not observe same-batch write")
		}
	}
	var accesses int
	if err := s.Sync(0, func() { accesses = b.accesses }); err != nil {
		t.Fatal(err)
	}
	if accesses != 1 {
		t.Fatalf("write+2 reads cost %d backend accesses, want 1 (reads fan out from the write)", accesses)
	}
}

// TestServePipelinedFailedWriteNotCached: a failed in-flight write never
// feeds the fan-out cache.
func TestServePipelinedFailedWriteNotCached(t *testing.T) {
	mb := newMemBackend()
	mb.hasFail, mb.failOn = true, 4
	b := &stagedMemBackend{memBackend: mb}
	s := New([]Backend{b}, Config{PipelineDepth: 4})
	defer s.Close()
	futs, err := s.SubmitBatch(0, []Req{
		{Op: OpWrite, ID: 4, Data: payload(1)},
		{Op: OpRead, ID: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := futs[0].Wait(); err == nil {
		t.Fatal("injected write failure not reported")
	}
	if _, err := futs[1].Wait(); err == nil {
		t.Fatal("read after failed write served from cache")
	}
}

// TestServePipelinedConcurrentClients is the pipelined variant of the
// back-pressure/race audit, with a serial-depth control: the two
// configurations must agree on every client's read-your-write view.
func TestServePipelinedConcurrentClients(t *testing.T) {
	for _, depth := range []int{1, 4} {
		backends := []Backend{
			&stagedMemBackend{memBackend: newMemBackend()},
			&stagedMemBackend{memBackend: newMemBackend()},
		}
		s := New(backends, Config{QueueDepth: 4, MaxBatch: 8, PipelineDepth: depth})
		const clients, opsPer = 8, 150
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < opsPer; i++ {
					id := uint64(c*opsPer + i%7)
					shard := c % 2
					want := uint64(c<<32) | uint64(i)
					if err := s.Write(shard, id, payload(want)); err != nil {
						errs <- err
						return
					}
					got, err := s.Read(shard, id)
					if err != nil {
						errs <- err
						return
					}
					if binary.LittleEndian.Uint64(got) != want {
						errs <- fmt.Errorf("depth %d: client %d read stale data", depth, c)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.Reads != clients*opsPer || st.Writes != clients*opsPer {
			t.Fatalf("depth %d stats ops: %+v", depth, st)
		}
		if st.QueueLat.N != 2*clients*opsPer || st.ExecLat.N != st.QueueLat.N {
			t.Fatalf("depth %d: queue/exec histograms missed ops: %+v", depth, st)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServeStatsBreakdown: the queue-wait/execute split covers every
// completed op and stays internally consistent.
func TestServeStatsBreakdown(t *testing.T) {
	b := newMemBackend()
	s := New([]Backend{b}, Config{})
	defer s.Close()
	for i := 0; i < 40; i++ {
		if err := s.Write(0, uint64(i), payload(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.QueueLat.N != 40 || st.ExecLat.N != 40 {
		t.Fatalf("breakdown N = %d/%d, want 40/40", st.QueueLat.N, st.ExecLat.N)
	}
	if st.QueueLat.P99Us < st.QueueLat.P50Us || st.ExecLat.P99Us < st.ExecLat.P50Us {
		t.Fatalf("implausible breakdown summaries: %+v %+v", st.QueueLat, st.ExecLat)
	}
}

// TestServeAdmissionDeadlineSheds: a deadline no queued request can meet
// drops every op at worker pickup — ErrRetry to the waiter, counted in
// Stats.Sheds, excluded from the completed-op counters and latency
// histograms, and (the §6-relevant property) the backend is never
// touched: a shed is invisible in the adversary's access view.
func TestServeAdmissionDeadlineSheds(t *testing.T) {
	b := newMemBackend()
	s := New([]Backend{b}, Config{AdmissionDeadline: 1}) // 1ns
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.Write(0, uint64(i), payload(uint64(i))); !errors.Is(err, ErrRetry) {
			t.Fatalf("write %d under 1ns deadline = %v, want ErrRetry", i, err)
		}
		if _, err := s.Read(0, uint64(i)); !errors.Is(err, ErrRetry) {
			t.Fatalf("read %d under 1ns deadline = %v, want ErrRetry", i, err)
		}
	}
	st := s.Stats()
	if st.Sheds != 16 {
		t.Fatalf("Sheds = %d, want 16", st.Sheds)
	}
	if st.Reads != 0 || st.Writes != 0 {
		t.Fatalf("shed ops counted as completed: %d reads, %d writes", st.Reads, st.Writes)
	}
	if st.ReadLat.N != 0 || st.WriteLat.N != 0 || st.ExecLat.N != 0 {
		t.Fatalf("shed ops leaked into latency histograms: %+v %+v %+v",
			st.ReadLat, st.WriteLat, st.ExecLat)
	}
	if b.accesses != 0 {
		t.Fatalf("shed ops touched the backend %d times; drops must precede any engine access", b.accesses)
	}
}

// TestServeNoDeadlineNeverSheds: the zero value disables shedding — the
// pre-existing behavior every current caller relies on.
func TestServeNoDeadlineNeverSheds(t *testing.T) {
	b := newMemBackend()
	s := New([]Backend{b}, Config{})
	defer s.Close()
	for i := 0; i < 32; i++ {
		if err := s.Write(0, uint64(i), payload(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Sheds != 0 || st.Writes != 32 {
		t.Fatalf("deadline-free service shed: %+v", st)
	}
}

// deepMemBackend adds the DeepPrefetchBackend surface: vectored announces
// with a configurable acceptance cap, posmap groups from a lookup table,
// and shard-style claim accounting — a BeginRead consumes an outstanding
// announce, DropPrefetch releases one — so announce-window leaks are
// directly observable as a nonzero outstanding count. All mutation happens
// on the worker goroutine; tests read the fields after Close or via Sync.
type deepMemBackend struct {
	*prefetchMemBackend
	sets        [][]uint64          // every PrefetchSet call's accepted prefix
	dropped     []uint64            // DropPrefetch claims, in order
	outstanding map[uint64]int      // announced minus claimed/dropped, per id
	groups      map[uint64][]uint64 // PosmapGroup answers
	accept      int                 // max lines accepted per announce call (0 = all)
	claimed     int                 // BeginReads that consumed an announce
}

func newDeepMemBackend() *deepMemBackend {
	return &deepMemBackend{
		prefetchMemBackend: &prefetchMemBackend{stagedMemBackend: &stagedMemBackend{memBackend: newMemBackend()}},
		outstanding:        make(map[uint64]int),
		groups:             make(map[uint64][]uint64),
	}
}

func (d *deepMemBackend) PrefetchRead(local uint64) bool {
	if d.accept > 0 && d.totalOutstanding() >= d.accept {
		return false
	}
	d.announced = append(d.announced, local)
	d.outstanding[local]++
	return true
}

func (d *deepMemBackend) PrefetchSet(locals []uint64) int {
	n := len(locals)
	if d.accept > 0 && n > d.accept-d.totalOutstanding() {
		n = d.accept - d.totalOutstanding()
		if n < 0 {
			n = 0
		}
	}
	if n > 0 {
		d.sets = append(d.sets, append([]uint64(nil), locals[:n]...))
	}
	for _, l := range locals[:n] {
		d.announced = append(d.announced, l)
		d.outstanding[l]++
	}
	return n
}

func (d *deepMemBackend) DropPrefetch(local uint64) bool {
	if d.outstanding[local] == 0 {
		return false
	}
	d.outstanding[local]--
	d.dropped = append(d.dropped, local)
	return true
}

func (d *deepMemBackend) PosmapGroup(local uint64, dst []uint64) []uint64 {
	return append(dst, d.groups[local]...)
}

func (d *deepMemBackend) BeginRead(id uint64) (Access, error) {
	if d.outstanding[id] > 0 {
		d.outstanding[id]--
		d.claimed++
	}
	return d.stagedMemBackend.BeginRead(id)
}

func (d *deepMemBackend) totalOutstanding() int {
	n := 0
	for _, c := range d.outstanding {
		n += c
	}
	return n
}

// TestServeShedReleasesAnnounces is the announce-leak regression: a read
// announced by the planner and then shed at the admission deadline never
// reaches BeginRead, so its accepted announce must be released with
// DropPrefetch at batch end — otherwise each shed permanently burns a
// shard prefetch-window slot.
func TestServeShedReleasesAnnounces(t *testing.T) {
	b := newDeepMemBackend()
	s := New([]Backend{b}, Config{PipelineDepth: 4, Prefetch: true, AdmissionDeadline: 1}) // 1ns: shed everything
	for i := 0; i < 8; i++ {
		if _, err := s.Read(0, uint64(i)); !errors.Is(err, ErrRetry) {
			t.Fatalf("read %d under 1ns deadline = %v, want ErrRetry", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(b.announced) == 0 {
		t.Fatal("planner announced nothing; the regression is untested")
	}
	if n := b.totalOutstanding(); n != 0 {
		t.Fatalf("%d announce window slots leaked after sheds (announced %d, dropped %d, claimed %d)",
			n, len(b.announced), len(b.dropped), b.claimed)
	}
	if len(b.dropped) != len(b.announced) {
		t.Fatalf("dropped %d of %d announces; shed reads claim nothing", len(b.dropped), len(b.announced))
	}
}

// TestServeDeepPlannerBacklog: with PrefetchDepth 2 and MaxBatch 2, six
// queued reads chunk into three predicted batches and each id is announced
// exactly once, in arrival order, through vectored PrefetchSet calls — the
// look-ahead covers future batches without re-announcing ids already out.
func TestServeDeepPlannerBacklog(t *testing.T) {
	b := newDeepMemBackend()
	s := New([]Backend{b}, Config{
		PipelineDepth: 4, Prefetch: true, PrefetchDepth: 2,
		MaxBatch: 2, QueueDepth: 16,
	})
	// Park the worker in a Sync so the six submissions queue behind it and
	// the planner sees a real backlog when it wakes.
	gate := make(chan struct{})
	syncDone := make(chan error, 1)
	go func() { syncDone <- s.Sync(0, func() { <-gate }) }()
	var futs []*Future
	for id := uint64(10); id < 16; id++ {
		f, err := s.Submit(0, OpRead, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	close(gate)
	if err := <-syncDone; err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := []uint64{10, 11, 12, 13, 14, 15}
	if !reflect.DeepEqual(b.announced, want) {
		t.Fatalf("announced %v, want each id once in arrival order %v", b.announced, want)
	}
	if n := b.totalOutstanding(); n != 0 {
		t.Fatalf("%d announces neither claimed nor dropped", n)
	}
	if len(b.dropped) != 0 {
		t.Fatalf("dropped %v; every announced read was served and must claim", b.dropped)
	}
	if b.claimed != len(want) {
		t.Fatalf("claimed %d announces, want %d", b.claimed, len(want))
	}
}

// TestServeDeepPosmapSiblings: with PosmapPrefetch on, a read's announce
// set carries its posmap-group siblings. A sibling the batch also reads is
// claimed by that read (announced once, demand-promoted, never dropped); a
// sibling nobody reads expires with the planning horizon and is released.
func TestServeDeepPosmapSiblings(t *testing.T) {
	b := newDeepMemBackend()
	b.groups[7] = []uint64{7, 8}
	b.groups[20] = []uint64{20, 21}
	s := New([]Backend{b}, Config{PipelineDepth: 4, Prefetch: true, PosmapPrefetch: true})
	// Batch 1: reads 7 and 8 — 8 rides 7's group announce and is claimed
	// by its own read, not re-announced.
	futs, err := s.SubmitBatch(0, []Req{{Op: OpRead, ID: 7}, {Op: OpRead, ID: 8}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	var announced, dropped []uint64
	if err := s.Sync(0, func() {
		announced = append([]uint64(nil), b.announced...)
		dropped = append([]uint64(nil), b.dropped...)
	}); err != nil {
		t.Fatal(err)
	}
	if want := []uint64{7, 8}; !reflect.DeepEqual(announced, want) {
		t.Fatalf("announced %v, want %v (sibling announced once, as part of the set)", announced, want)
	}
	if len(dropped) != 0 {
		t.Fatalf("dropped %v; both lines were read and claimed", dropped)
	}
	// Batch 2: read 20 alone — sibling 21 is speculative, nobody reads it,
	// and it must be dropped when its horizon expires, freeing the slot.
	if _, err := s.Read(0, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(0, 5); err != nil { // one more batch pushes the horizon past 21
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	foundDrop := false
	for _, id := range b.dropped {
		if id == 21 {
			foundDrop = true
		}
	}
	if !foundDrop {
		t.Fatalf("speculative sibling 21 never released (dropped %v)", b.dropped)
	}
	if n := b.totalOutstanding(); n != 0 {
		t.Fatalf("%d announces leaked at close", n)
	}
}

// TestServeDeepWindowDecline: announce-set lines the backend declines
// (window full) are forgotten, the declined reads still serve as plain
// demand fetches, and nothing leaks or double-claims.
func TestServeDeepWindowDecline(t *testing.T) {
	b := newDeepMemBackend()
	b.accept = 1 // window of one: every multi-line set is truncated
	s := New([]Backend{b}, Config{PipelineDepth: 4, Prefetch: true, PrefetchDepth: 4})
	futs, err := s.SubmitBatch(0, []Req{{Op: OpRead, ID: 30}, {Op: OpRead, ID: 31}, {Op: OpRead, ID: 32}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(b.announced) != 1 || b.announced[0] != 30 {
		t.Fatalf("announced %v, want only the accepted prefix [30]", b.announced)
	}
	if b.claimed != 1 || b.totalOutstanding() != 0 {
		t.Fatalf("claim accounting wrong: claimed %d, outstanding %d", b.claimed, b.totalOutstanding())
	}
}
