package oram

import (
	"testing"

	"palermo/internal/rng"
)

// TestStagedAccessEquivalence: PlanAccess+Apply is Access, observable
// state transition for state transition — same leaves, same values, same
// traffic — and FetchSet names the access's data block group.
func TestStagedAccessEquivalence(t *testing.T) {
	mk := func() *Ring {
		cfg := PalermoRingConfig()
		cfg.NLines = 1 << 12
		e, err := NewRing(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	serial, staged := mk(), mk()
	r := rng.New(555)
	for i := 0; i < 2000; i++ {
		pa := r.Uint64n(1 << 10) // heavy reuse: stash hits, reshuffles, evictions
		write := r.Float64() < 0.4
		val := r.Uint64()

		want := serial.Access(pa, write, val)

		op := staged.PlanAccess(pa, write, val)
		var ids [1]uint64
		fetch := op.FetchSet(ids[:0])
		if len(fetch) != 1 || fetch[0] != pa/uint64(staged.Config().DataSlotLines) {
			t.Fatalf("op %d: FetchSet = %v, want the data block group of PA %d", i, fetch, pa)
		}
		if op.Write() != write {
			t.Fatalf("op %d: Write() = %v", i, op.Write())
		}
		got := op.Apply()

		if got.ReqID != want.ReqID || got.DataLeaf != want.DataLeaf ||
			got.Val != want.Val || got.FromStash != want.FromStash {
			t.Fatalf("op %d diverged: staged %+v, serial %+v", i, got, want)
		}
		if got.Reads() != want.Reads() || got.Writes() != want.Writes() {
			t.Fatalf("op %d traffic diverged: staged %d/%d, serial %d/%d",
				i, got.Reads(), got.Writes(), want.Reads(), want.Writes())
		}
	}
	for l := 0; l < serial.Levels(); l++ {
		if serial.StashLen(l) != staged.StashLen(l) {
			t.Fatalf("level %d stash diverged: serial %d, staged %d", l, serial.StashLen(l), staged.StashLen(l))
		}
	}
}

// TestStagedAccessApplyTwicePanics: the engine refuses a double Apply —
// it would corrupt commit order silently.
func TestStagedAccessApplyTwicePanics(t *testing.T) {
	cfg := DefaultRingConfig()
	cfg.NLines = 1 << 8
	e, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	op := e.PlanAccess(3, false, 0)
	op.Apply()
	defer func() {
		if recover() == nil {
			t.Fatal("second Apply did not panic")
		}
	}()
	op.Apply()
}
