package oram

import (
	"fmt"

	"palermo/internal/otree"
	"palermo/internal/posmap"
	"palermo/internal/rng"
	"palermo/internal/stash"
)

func stashEntry(e otree.BlockEntry, leaf uint64) stash.Entry {
	return stash.Entry{ID: e.ID, Leaf: leaf, Val: e.Val}
}

func stashEntryNew(id otree.BlockID, leaf uint64) stash.Entry {
	return stash.Entry{ID: id, Leaf: leaf}
}

// PathConfig parameterizes the PathORAM engine.
type PathConfig struct {
	NLines        uint64
	Z             int // bucket capacity (PathORAM has no dummy budget; S=0)
	PosLevels     int
	TreeTopBytes  uint64
	DataSlotLines int
	AlignBytes    uint64
	Seed          uint64

	// GroupLeafLines forces consecutive groups of this many cache lines to
	// share a mapped leaf (the PrORAM prefetch strategy, §III-B). 1 = the
	// original independent-uniform mapping. Unlike DataSlotLines, the tree
	// block stays one line wide — the group's blocks are distinct tree
	// blocks pinned to one path, which is what pressures the stash.
	GroupLeafLines int

	// FatRootScale > 1 builds the LAORAM fat tree (bigger buckets near the
	// root) to relieve that stash pressure.
	FatRootScale float64

	// MidShrink, if non-zero, shrinks buckets in the middle third of the
	// tree to this Z (IR-ORAM's bucket-size reduction).
	MidShrink int

	// SiblingReads adds the sibling bucket of every path node to the read
	// phase (PageORAM's sibling access, which rides row-buffer locality).
	SiblingReads bool

	// PackDepth, when > 0, stores aligned subtrees of that many levels
	// contiguously (PageORAM's DRAM-page-aware layout).
	PackDepth int
}

// Validate fills defaults and checks invariants.
func (c *PathConfig) Validate() error {
	if c.NLines == 0 {
		return fmt.Errorf("oram: NLines must be > 0")
	}
	if c.Z <= 0 {
		return fmt.Errorf("oram: Z must be positive")
	}
	if c.DataSlotLines == 0 {
		c.DataSlotLines = 1
	}
	if c.GroupLeafLines == 0 {
		c.GroupLeafLines = 1
	}
	if c.AlignBytes == 0 {
		c.AlignBytes = 32 << 10
	}
	if c.FatRootScale == 0 {
		c.FatRootScale = 1
	}
	return nil
}

// DefaultPathConfig is classic PathORAM (Z=4) on the Table III space.
func DefaultPathConfig() PathConfig {
	return PathConfig{
		NLines:       1 << 28,
		Z:            4,
		PosLevels:    2,
		TreeTopBytes: 256 << 10,
		Seed:         1,
	}
}

// Path is the PathORAM functional engine: every access reads the whole
// mapped path into the stash and immediately writes the same path back.
type Path struct {
	cfg    PathConfig
	r      *rng.Rand
	pm     *posmap.Hierarchy
	spaces []*Space
	reqID  uint64

	lastDataLeaf uint64          // leaf exposed by the most recent level-0 access
	pendGroup    []otree.BlockID // group members to prefetch during the access
}

// NewPath builds the engine.
func NewPath(cfg PathConfig) (*Path, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	dataBlocks := (cfg.NLines + uint64(cfg.DataSlotLines) - 1) / uint64(cfg.DataSlotLines)
	pm := posmap.New(dataBlocks, cfg.PosLevels, r)

	geos := make([]otree.Geometry, pm.Levels())
	for l := 0; l < pm.Levels(); l++ {
		lines := 1
		if l == 0 {
			lines = cfg.DataSlotLines
		}
		switch {
		case l == 0 && cfg.FatRootScale > 1:
			geos[l] = otree.FatTree(pm.Blocks(l), cfg.Z, 0, cfg.FatRootScale, 0, 0)
		case l == 0 && cfg.MidShrink > 0:
			geos[l] = midShrunkGeometry(pm.Blocks(l), cfg.Z, cfg.MidShrink)
		default:
			geos[l] = otree.UniformWide(pm.Blocks(l), cfg.Z, 0, lines, 0, 0)
			geos[l].PackDepth = cfg.PackDepth
		}
	}
	geos = Layout(geos, cfg.AlignBytes)

	e := &Path{cfg: cfg, r: r, pm: pm}
	for l, g := range geos {
		pm.Attach(l, g.NumLeaves())
		e.spaces = append(e.spaces, NewSpace(l, g, cfg.TreeTopBytes, r))
	}
	return e, nil
}

// midShrunkGeometry builds IR-ORAM's data tree: buckets in the middle third
// of levels shrink to zMid.
func midShrunkGeometry(nBlocks uint64, z, zMid int) otree.Geometry {
	depth := 0
	for uint64(z)<<depth < nBlocks {
		depth++
	}
	specs := make([]otree.LevelSpec, depth+1)
	lo, hi := depth/3, 2*depth/3
	for l := 0; l <= depth; l++ {
		zz := z
		if l >= lo && l < hi {
			zz = zMid
		}
		specs[l] = otree.LevelSpec{Z: zz, S: 0}
	}
	return otree.Custom(specs, 0, 0)
}

// Config returns the engine configuration (defaults filled).
func (e *Path) Config() PathConfig { return e.cfg }

// Space exposes a level's state.
func (e *Path) Space(level int) *Space { return e.spaces[level] }

// Posmap exposes the hierarchy.
func (e *Path) Posmap() *posmap.Hierarchy { return e.pm }

// Levels implements Engine.
func (e *Path) Levels() int { return len(e.spaces) }

// StashLen implements Engine.
func (e *Path) StashLen(level int) int { return e.spaces[level].Stash.Len() }

// StashMax implements Engine.
func (e *Path) StashMax(level int) int { return e.spaces[level].Stash.MaxSeen() }

// SampleStashes implements Engine.
func (e *Path) SampleStashes() {
	for _, sp := range e.spaces {
		sp.Stash.Sample()
	}
}

// StashSamples implements Engine.
func (e *Path) StashSamples(level int) []int { return e.spaces[level].Stash.Samples() }

// StashOverflows implements Engine.
func (e *Path) StashOverflows(level int) uint64 { return e.spaces[level].Stash.Overflows() }

// ResetPeaks implements Engine.
func (e *Path) ResetPeaks() {
	for _, sp := range e.spaces {
		sp.Stash.ResetPeak()
	}
}

// GroupIndex returns the data-space block index serving cache line pa.
func (e *Path) GroupIndex(pa uint64) uint64 { return pa / uint64(e.cfg.DataSlotLines) }

// Access implements Engine.
func (e *Path) Access(pa uint64, write bool, val uint64) *Plan {
	if pa >= e.cfg.NLines {
		panic(fmt.Sprintf("oram: PA %d outside protected space of %d lines", pa, e.cfg.NLines))
	}
	e.reqID++
	plan := &Plan{ReqID: e.reqID, PA: pa, Write: write, Levels: make([]LevelAccess, len(e.spaces))}
	groupIdx := pa / uint64(e.cfg.DataSlotLines)
	for l := len(e.spaces) - 1; l >= 0; l-- {
		idx := e.pm.Index(l, groupIdx)
		if l == 0 {
			plan.FromStash = e.spaces[0].Stash.Contains(otree.BlockID(idx))
		}
		la, got := e.accessLevel(l, idx, l == 0 && write, val)
		plan.Levels[l] = la
		if l == 0 {
			plan.Val = got
		}
	}
	plan.DataLeaf = e.lastDataLeaf
	e.fillStashAfter(plan)
	return plan
}

// AccessBypass performs a data-level-only access: the recursive posmap
// lookups are skipped because the block's position is tracked on-chip
// (IR-ORAM's tree-top PosMap bypass). Posmap levels appear in the plan as
// empty accesses.
func (e *Path) AccessBypass(pa uint64, write bool, val uint64) *Plan {
	if pa >= e.cfg.NLines {
		panic(fmt.Sprintf("oram: PA %d outside protected space of %d lines", pa, e.cfg.NLines))
	}
	e.reqID++
	plan := &Plan{ReqID: e.reqID, PA: pa, Write: write, Levels: make([]LevelAccess, len(e.spaces))}
	groupIdx := pa / uint64(e.cfg.DataSlotLines)
	for l := 1; l < len(e.spaces); l++ {
		plan.Levels[l] = LevelAccess{Level: l}
	}
	plan.FromStash = e.spaces[0].Stash.Contains(otree.BlockID(groupIdx))
	la, got := e.accessLevel(0, groupIdx, write, val)
	plan.Levels[0] = la
	plan.Val = got
	plan.DataLeaf = e.lastDataLeaf
	e.fillStashAfter(plan)
	return plan
}

// DummyAccess implements Engine: read-and-write a fresh uniform path at
// every level without serving a block. PrORAM injects these as background
// evictions; their write-back half is what drains the stash.
func (e *Path) DummyAccess() *Plan {
	e.reqID++
	plan := &Plan{ReqID: e.reqID, Dummy: true, Levels: make([]LevelAccess, len(e.spaces))}
	for l := len(e.spaces) - 1; l >= 0; l-- {
		leaf := e.r.Uint64n(e.spaces[l].Geo.NumLeaves())
		la, _ := e.accessLevelLeaf(l, otree.Dummy, leaf, false, 0)
		plan.Levels[l] = la
	}
	plan.DataLeaf = e.lastDataLeaf
	e.fillStashAfter(plan)
	return plan
}

func (e *Path) fillStashAfter(plan *Plan) {
	plan.StashAfter = make([]int, len(e.spaces))
	for l, sp := range e.spaces {
		plan.StashAfter[l] = sp.Stash.Len()
	}
}

// remapLevel assigns the block's next leaf. With group-leaf prefetching the
// whole group moves to one fresh leaf together (PrORAM's forced mapping);
// otherwise leaves are independent and uniform (the PathORAM proof's
// premise).
func (e *Path) remapLevel(l int, idx uint64) {
	if l == 0 && e.cfg.GroupLeafLines > 1 {
		group := uint64(e.cfg.GroupLeafLines) / uint64(e.cfg.DataSlotLines)
		if group <= 1 {
			e.pm.Remap(l, idx)
			return
		}
		leaf := e.r.Uint64n(e.spaces[l].Geo.NumLeaves())
		base := idx / group * group
		for i := uint64(0); i < group && base+i < e.pm.Blocks(l); i++ {
			e.pm.SetLeaf(l, base+i, leaf)
		}
		return
	}
	e.pm.Remap(l, idx)
}

func (e *Path) accessLevel(l int, idx uint64, storeWrite bool, val uint64) (LevelAccess, uint64) {
	leaf := e.pm.Leaf(l, idx)
	e.remapLevel(l, idx)
	if l == 0 && e.cfg.GroupLeafLines > 1 {
		// PrORAM: the single path read prefetches the whole group into the
		// stash (and on to the LLC). The group members now carry the shared
		// fresh leaf and sit in the stash until eviction finds buckets on
		// that one path — the contention that produces the paper's stash
		// pressure (§III-B, Fig 4).
		group := uint64(e.cfg.GroupLeafLines) / uint64(e.cfg.DataSlotLines)
		if group > 1 {
			base := idx / group * group
			for i := uint64(0); i < group && base+i < e.pm.Blocks(0); i++ {
				e.pendGroup = append(e.pendGroup, otree.BlockID(base+i))
			}
		}
	}
	return e.accessLevelLeaf(l, otree.BlockID(idx), leaf, storeWrite, val)
}

// accessLevelLeaf is one PathORAM access: pull every block on the path into
// the stash, serve the request, then push the path back greedily from the
// leaf up.
func (e *Path) accessLevelLeaf(l int, want otree.BlockID, leaf uint64, storeWrite bool, val uint64) (LevelAccess, uint64) {
	if l == 0 {
		e.lastDataLeaf = leaf
	}
	sp := e.spaces[l]
	sp.Accesses++
	la := LevelAccess{Level: l}
	path := sp.path(leaf)

	// RP: read every slot of every bucket on the path (plus siblings for
	// PageORAM) into the stash.
	rp := Phase{Kind: PhaseRP}
	pull := func(n uint64) {
		lvl := sp.Geo.NodeLevel(n)
		for _, be := range sp.Store.ResetPull(n) {
			sp.Stash.Put(stashEntry(be, e.pm.Leaf(l, uint64(be.ID))))
		}
		sp.emitBucketRead(&rp, lvl, n, sp.Geo.Levels[lvl].Z)
	}
	for _, n := range path {
		pull(n)
		if e.cfg.SiblingReads && n != 0 {
			pull(sp.Geo.Sibling(n))
		}
	}
	var got uint64
	if want != otree.Dummy {
		if se, ok := sp.Stash.Get(want); ok {
			got = se.Val
		} else {
			sp.Stash.Put(stashEntryNew(want, e.pm.Leaf(l, uint64(want))))
		}
		sp.Stash.Remap(want, e.pm.Leaf(l, uint64(want)))
		if storeWrite {
			se, _ := sp.Stash.Get(want)
			se.Val = val
			sp.Stash.Put(se)
		}
	}
	if l == 0 && len(e.pendGroup) > 0 {
		for _, id := range e.pendGroup {
			if !sp.Stash.Contains(id) {
				sp.Stash.Put(stashEntryNew(id, e.pm.Leaf(0, uint64(id))))
			} else {
				sp.Stash.Remap(id, e.pm.Leaf(0, uint64(id)))
			}
		}
		e.pendGroup = e.pendGroup[:0]
	}
	la.Phases = append(la.Phases, rp)

	// WB: write the same path (and pulled siblings) back, deepest first.
	wb := Phase{Kind: PhaseWB}
	writeBack := func(n uint64) {
		lvl := sp.Geo.NodeLevel(n)
		pushed := sp.Stash.EvictIntoNode(sp.Geo, n, sp.Geo.Levels[lvl].Z)
		sp.Store.WriteBucket(n, pushed)
		sp.emitBucketWrite(&wb, lvl, n, sp.Geo.Levels[lvl].Z)
	}
	for i := len(path) - 1; i >= 0; i-- {
		writeBack(path[i])
		if e.cfg.SiblingReads && path[i] != 0 {
			writeBack(sp.Geo.Sibling(path[i]))
		}
	}
	la.Phases = append(la.Phases, wb)
	return la, got
}
