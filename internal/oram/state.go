package oram

import (
	"fmt"

	"palermo/internal/otree"
	"palermo/internal/stash"
)

// SpaceState is the serializable protocol state of one hierarchy level: the
// eviction cadence, the deterministic eviction-leaf counter, the stash bank,
// and every materialized bucket (contents, consumed-slot bitset, touch
// count — the bucket permutation counters RingORAM's reshuffle rule needs).
type SpaceState struct {
	Accesses uint64
	Evictor  uint64
	Stash    stash.State
	Buckets  []otree.BucketState
}

// RingState is a complete functional checkpoint of a Ring engine. Together
// with the sealed payloads held by the storage backend it is sufficient to
// resume the protocol exactly: the restored engine produces the same leaf
// sequence, evictions, and reshuffles the uninterrupted engine would have.
//
// The state contains position maps and stash residency — trusted-controller
// secrets. Callers persisting it must seal it first (crypt.Sealer.Blob);
// handing it to an untrusted backend in plaintext would let the backend
// link block ids to their next paths.
type RingState struct {
	ReqID        uint64
	LastDataLeaf uint64
	RNG          [4]uint64
	Posmap       []map[uint64]uint32
	Spaces       []SpaceState
}

// State exports the engine's complete functional state for a checkpoint.
// Must be called at quiescence (no access in flight).
func (e *Ring) State() *RingState {
	st := &RingState{
		ReqID:        e.reqID,
		LastDataLeaf: e.lastDataLeaf,
		RNG:          e.r.State(),
		Posmap:       e.pm.State(),
		Spaces:       make([]SpaceState, len(e.spaces)),
	}
	for l, sp := range e.spaces {
		st.Spaces[l] = SpaceState{
			Accesses: sp.Accesses,
			Evictor:  sp.Evictor.State(),
			Stash:    sp.Stash.State(),
			Buckets:  sp.Store.State(),
		}
	}
	return st
}

// Restore overwrites a freshly built engine (same configuration as the one
// checkpointed) with a previously exported state.
func (e *Ring) Restore(st *RingState) error {
	if len(st.Spaces) != len(e.spaces) {
		return fmt.Errorf("oram: checkpoint has %d levels, engine has %d (configuration mismatch)",
			len(st.Spaces), len(e.spaces))
	}
	if err := e.pm.Restore(st.Posmap); err != nil {
		return err
	}
	e.r.Restore(st.RNG)
	e.reqID = st.ReqID
	e.lastDataLeaf = st.LastDataLeaf
	for l, sp := range e.spaces {
		ss := st.Spaces[l]
		for _, b := range ss.Buckets {
			if b.Node >= sp.Geo.NumNodes() {
				return fmt.Errorf("oram: checkpoint level %d bucket node %d outside tree of %d nodes",
					l, b.Node, sp.Geo.NumNodes())
			}
		}
		sp.Accesses = ss.Accesses
		sp.Evictor.Restore(ss.Evictor)
		sp.Stash.Restore(ss.Stash)
		sp.Store.Restore(ss.Buckets)
	}
	return nil
}
