package oram

import (
	"fmt"

	"palermo/internal/otree"
	"palermo/internal/posmap"
	"palermo/internal/rng"
)

// RingVariant selects the protocol ordering executed by the Ring engine.
type RingVariant int

// Variants.
const (
	// VariantBaseline is RingORAM Algorithm 1: ReadPath, then EvictPath
	// every A accesses, then EarlyReshuffle (reset at accessed == S).
	VariantBaseline RingVariant = iota
	// VariantPalermo is Algorithm 2: EarlyReshufflePreCheck is hoisted
	// before ReadPath (reset at accessed == S-1) so the write-to-read
	// critical section resolves as early as possible, and in-flight
	// (pending) PAs are read along a fresh uniform leaf.
	VariantPalermo
)

// RingConfig parameterizes the Ring engine.
type RingConfig struct {
	NLines        uint64 // protected cache lines (16 GB/64 B = 2^28 in Table III)
	Z, S, A       int    // bucket real capacity, dummy budget, eviction period
	PosLevels     int    // ORAM-resident posmap levels (paper: 2)
	TreeTopBytes  uint64 // per-level tree-top cache capacity
	DataSlotLines int    // prefetch width: cache lines per data-tree slot (>=1)
	AlignBytes    uint64 // physical region alignment (DRAM row span)
	Seed          uint64
	Variant       RingVariant

	// TreeTopLevels, when > 0, pins every level's tree-top cache to
	// exactly that many resident levels (clamped per tree to its depth),
	// overriding the TreeTopBytes budget — the serving path's explicit k
	// knob. The cache gates traffic emission only, never protocol state:
	// leaf sequences, stash contents, and checkpoint bytes are
	// bit-identical at every k.
	TreeTopLevels int

	// CountTraffic elides DRAM address lists from plans (Phase.NR/NW
	// carry the counts instead). For engines whose plans nobody replays —
	// the serving shards — this removes the dominant per-access
	// allocation; totals (Plan.Reads/Writes) are identical either way.
	CountTraffic bool
}

// Validate fills defaults and checks invariants.
func (c *RingConfig) Validate() error {
	if c.NLines == 0 {
		return fmt.Errorf("oram: NLines must be > 0")
	}
	if c.Z <= 0 || c.S <= 0 || c.A <= 0 {
		return fmt.Errorf("oram: Z/S/A must be positive, got (%d,%d,%d)", c.Z, c.S, c.A)
	}
	if c.PosLevels < 0 {
		return fmt.Errorf("oram: PosLevels must be >= 0")
	}
	if c.TreeTopLevels < 0 {
		return fmt.Errorf("oram: TreeTopLevels must be >= 0, got %d", c.TreeTopLevels)
	}
	if c.DataSlotLines == 0 {
		c.DataSlotLines = 1
	}
	if c.AlignBytes == 0 {
		c.AlignBytes = 32 << 10
	}
	return nil
}

// DefaultRingConfig is the classic RingORAM configuration (Z,S,A) = (4,5,3)
// protecting a 16 GB space with 3-level recursion and the paper's Table III
// cache provisioning.
func DefaultRingConfig() RingConfig {
	return RingConfig{
		NLines:       1 << 28,
		Z:            4,
		S:            5,
		A:            3,
		PosLevels:    2,
		TreeTopBytes: 256 << 10,
		Seed:         1,
	}
}

// BandwidthRingConfig is the bandwidth-optimal RingORAM configuration the
// paper's baseline uses — the large-Z setting from "Constants Count" that
// gives RingORAM its 42% traffic reduction over PathORAM ((Z,S,A) =
// (16,27,20), which Fig 14a also identifies as Palermo's sweet spot).
func BandwidthRingConfig() RingConfig {
	c := DefaultRingConfig()
	c.Z, c.S, c.A = 16, 27, 20
	return c
}

// PalermoRingConfig is the configuration Palermo adopts: (Z,S,A) =
// (16,27,20) with the Palermo protocol ordering.
func PalermoRingConfig() RingConfig {
	c := BandwidthRingConfig()
	c.Variant = VariantPalermo
	return c
}

// Ring is the RingORAM functional engine over a recursive posmap hierarchy.
type Ring struct {
	cfg    RingConfig
	r      *rng.Rand
	pm     *posmap.Hierarchy
	spaces []*Space
	reqID  uint64

	lastDataLeaf uint64 // leaf exposed by the most recent level-0 access
}

// NewRing builds the engine: one Space per hierarchy level with disjoint
// physical layout.
func NewRing(cfg RingConfig) (*Ring, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	dataBlocks := (cfg.NLines + uint64(cfg.DataSlotLines) - 1) / uint64(cfg.DataSlotLines)
	pm := posmap.New(dataBlocks, cfg.PosLevels, r)

	geos := make([]otree.Geometry, pm.Levels())
	for l := 0; l < pm.Levels(); l++ {
		lines := 1
		if l == 0 {
			lines = cfg.DataSlotLines
		}
		geos[l] = otree.UniformWide(pm.Blocks(l), cfg.Z, cfg.S, lines, 0, 0)
	}
	geos = Layout(geos, cfg.AlignBytes)

	e := &Ring{cfg: cfg, r: r, pm: pm}
	for l, g := range geos {
		pm.Attach(l, g.NumLeaves())
		sp := NewSpace(l, g, cfg.TreeTopBytes, r)
		if cfg.TreeTopLevels > 0 {
			sp.SetTopLevels(cfg.TreeTopLevels)
		}
		sp.CountOnly = cfg.CountTraffic
		e.spaces = append(e.spaces, sp)
	}
	return e, nil
}

// SetTopLevels pins every space's tree-top cache to exactly k levels
// (overriding the byte-budget default) and extends the dense resident
// bucket ranges to match. Traffic accounting is all it changes — protocol
// trajectories stay bit-identical — so it is safe to call on a live engine
// between accesses; callers normally invoke it right after NewRing.
func (e *Ring) SetTopLevels(k int) {
	for _, sp := range e.spaces {
		sp.SetTopLevels(k)
	}
}

// SetCountTraffic toggles count-only traffic mode (see RingConfig.CountTraffic).
func (e *Ring) SetCountTraffic(on bool) {
	for _, sp := range e.spaces {
		sp.CountOnly = on
	}
}

// TopHits returns the total 64-byte line movements the tree-top caches
// absorbed across all levels (the serving layer's cache-resident hit
// counter; bytes saved = 64 * TopHits).
func (e *Ring) TopHits() uint64 {
	var n uint64
	for _, sp := range e.spaces {
		n += sp.TopHits
	}
	return n
}

// Config returns the engine configuration (with defaults filled).
func (e *Ring) Config() RingConfig { return e.cfg }

// Space exposes a level's state (testing, controllers).
func (e *Ring) Space(level int) *Space { return e.spaces[level] }

// Posmap exposes the hierarchy (testing).
func (e *Ring) Posmap() *posmap.Hierarchy { return e.pm }

// Levels implements Engine.
func (e *Ring) Levels() int { return len(e.spaces) }

// StashLen implements Engine.
func (e *Ring) StashLen(level int) int { return e.spaces[level].Stash.Len() }

// StashMax implements Engine.
func (e *Ring) StashMax(level int) int { return e.spaces[level].Stash.MaxSeen() }

// SampleStashes implements Engine.
func (e *Ring) SampleStashes() {
	for _, sp := range e.spaces {
		sp.Stash.Sample()
	}
}

// StashSamples implements Engine.
func (e *Ring) StashSamples(level int) []int { return e.spaces[level].Stash.Samples() }

// StashOverflows implements Engine.
func (e *Ring) StashOverflows(level int) uint64 { return e.spaces[level].Stash.Overflows() }

// ResetPeaks implements Engine.
func (e *Ring) ResetPeaks() {
	for _, sp := range e.spaces {
		sp.Stash.ResetPeak()
	}
}

// Access implements Engine: one served LLC miss across the full hierarchy.
// It is the serial composition of the staged pipeline — Plan then Apply
// back to back with no I/O in between (see staged.go).
func (e *Ring) Access(pa uint64, write bool, val uint64) *Plan {
	op := e.PlanAccess(pa, write, val)
	return op.Apply()
}

// DummyAccess implements Engine: a full-protocol access along a fresh
// uniform path at every level, serving no block (the padding requests of
// §VI and the background requests of prefetch baselines).
func (e *Ring) DummyAccess() *Plan {
	e.reqID++
	plan := &Plan{ReqID: e.reqID, Dummy: true, Levels: make([]LevelAccess, len(e.spaces))}
	for l := len(e.spaces) - 1; l >= 0; l-- {
		la, _ := e.accessLevelLeaf(l, otree.Dummy, e.r.Uint64n(e.spaces[l].Geo.NumLeaves()), false, 0)
		plan.Levels[l] = la
	}
	plan.DataLeaf = e.lastDataLeaf
	e.fillStashAfter(plan)
	return plan
}

func (e *Ring) fillStashAfter(plan *Plan) {
	plan.StashAfter = make([]int, len(e.spaces))
	for l, sp := range e.spaces {
		plan.StashAfter[l] = sp.Stash.Len()
	}
}

// accessLevel performs the Ring protocol for block idx of level l.
func (e *Ring) accessLevel(l int, idx uint64, storeWrite bool, val uint64) (LevelAccess, uint64) {
	sp := e.spaces[l]
	var leaf uint64
	if e.cfg.Variant == VariantPalermo && sp.Stash.Contains(otree.BlockID(idx)) {
		// Algorithm 2 line 5: pending PAs read a fresh uniform leaf so two
		// overlapped accesses to one PA never expose the same path twice.
		leaf = e.r.Uint64n(sp.Geo.NumLeaves())
	} else {
		leaf = e.pm.Leaf(l, idx)
	}
	// Line 7-8: remap before the path access becomes visible on the bus.
	e.pm.Remap(l, idx)
	return e.accessLevelLeaf(l, otree.BlockID(idx), leaf, storeWrite, val)
}

// accessLevelLeaf executes the per-tree protocol along the given leaf.
// want == otree.Dummy performs a dummy access.
func (e *Ring) accessLevelLeaf(l int, want otree.BlockID, leaf uint64, storeWrite bool, val uint64) (LevelAccess, uint64) {
	if l == 0 {
		e.lastDataLeaf = leaf
	}
	sp := e.spaces[l]
	sp.Accesses++
	evict := sp.Accesses%uint64(e.cfg.A) == 0
	la := LevelAccess{Level: l, Evict: evict}
	leafOf := func(id otree.BlockID) uint64 { return e.pm.Leaf(l, uint64(id)) }

	path := sp.path(leaf)

	// LM: load node metadata along the path (path index == tree level).
	lm := Phase{Kind: PhaseLM}
	for l, n := range path {
		sp.emitMetaRead(&lm, l, n)
	}
	la.Phases = append(la.Phases, lm)

	// Palermo hoists the reshuffle before the reads (PreCheck at S-1).
	if e.cfg.Variant == VariantPalermo {
		er := Phase{Kind: PhaseER}
		for _, n := range path {
			if sp.Store.NeedsReset(n, 1) {
				sp.resetNode(&er, n, leaf, leafOf)
			}
		}
		la.Phases = append(la.Phases, er)
	}

	// RP: one slot per node; the real block (if tree-resident) moves to the
	// stash, everything else is a consumed dummy.
	rp := Phase{Kind: PhaseRP}
	found := false
	var got uint64
	for lv, n := range path {
		entry, slot, ok := sp.Store.ReadSlot(n, want)
		sp.emitSlotRead(&rp, lv, n, slot)
		if ok {
			found = true
			got = entry.Val
			sp.Stash.Put(stashEntry(entry, e.pm.Leaf(l, uint64(entry.ID))))
		}
	}
	if want != otree.Dummy {
		if !found {
			if se, ok := sp.Stash.Get(want); ok {
				got = se.Val
				sp.Stash.Remap(want, e.pm.Leaf(l, uint64(want)))
			} else {
				// First touch: the block exists nowhere yet; install it.
				sp.Stash.Put(stashEntryNew(want, e.pm.Leaf(l, uint64(want))))
			}
		} else {
			sp.Stash.Remap(want, e.pm.Leaf(l, uint64(want)))
		}
		if storeWrite {
			se, _ := sp.Stash.Get(want)
			se.Val = val
			sp.Stash.Put(se)
		}
	}
	la.Phases = append(la.Phases, rp)

	// EP: deterministic whole-path eviction every A accesses. The Palermo
	// protocol keeps EP serialized after RP to preserve the stash bound.
	if evict {
		ep := Phase{Kind: PhaseEP}
		sp.evictPath(&ep, leafOf)
		la.Phases = append(la.Phases, ep)
	}

	// Baseline EarlyReshuffle trails the access (Algorithm 1 line 16).
	if e.cfg.Variant == VariantBaseline {
		er := Phase{Kind: PhaseER}
		for _, n := range path {
			if sp.Store.NeedsReset(n, 0) {
				sp.resetNode(&er, n, leaf, leafOf)
			}
		}
		la.Phases = append(la.Phases, er)
	}
	return la, got
}
