package oram

import (
	"fmt"

	"palermo/internal/otree"
	"palermo/internal/posmap"
)

// This file splits Ring.Access into the explicit three-stage form the
// pipelined serving layer drives:
//
//	Plan  — bind the request, assign its commit-order id, and expose the
//	        backend-visible block set as an id vector (PlanAccess/FetchSet).
//	Fetch — the caller moves the vector through the storage backend
//	        (backend.VectorBackend.GetMany/PutMany); the engine is not
//	        involved, so this stage is free to run as an awaitable I/O
//	        unit on another goroutine.
//	Apply — the full deterministic engine transition: posmap lookups and
//	        remaps, slot selection, stash merge, eviction, reshuffles
//	        (StagedAccess.Apply).
//
// Determinism contract: the engine's state evolution (leaf draws, slot
// permutation draws, stash motion) happens entirely inside Apply, and the
// caller executes Plan(k); Apply(k); Plan(k+1); Apply(k+1); ... on one
// goroutine in commit order — exactly the operation order of the serial
// Access. The only thing a pipeline overlaps is the Fetch stage of access
// k with the Apply crypto of access k (and the commit of access k with the
// whole engine stage of access k+1), so per-shard leaf traces, counters,
// and checkpoints are bit-identical to the serial engine at any pipeline
// depth. The differential suite enforces this.

// StagedAccess is one access between its Plan and Apply stages. It is a
// value type so the serial Access composition stays allocation-free; the
// zero value is invalid.
type StagedAccess struct {
	e     *Ring
	reqID uint64
	pa    uint64
	write bool
	val   uint64
	done  bool
}

// PlanAccess begins a staged access: validates the PA, claims the next
// commit-order request id, and returns the handle whose FetchSet names the
// blocks the storage backend must move for this access. No engine state
// beyond the request counter changes until Apply.
func (e *Ring) PlanAccess(pa uint64, write bool, val uint64) StagedAccess {
	if pa >= e.cfg.NLines {
		panic(fmt.Sprintf("oram: PA %d outside protected space of %d lines", pa, e.cfg.NLines))
	}
	e.reqID++
	return StagedAccess{e: e, reqID: e.reqID, pa: pa, write: write, val: val}
}

// FetchSet appends the backend-visible block-id vector of this access to
// dst and returns it: the data-space blocks whose sealed payloads the
// storage backend serves. The recursive posmap levels are engine-resident
// state (their storage cost is modeled, not materialized), so the vector
// is the access's data block group — one id per DataSlotLines line group.
func (op *StagedAccess) FetchSet(dst []uint64) []uint64 {
	return append(dst, op.pa/uint64(op.e.cfg.DataSlotLines))
}

// Write reports whether the staged access is a write.
func (op *StagedAccess) Write() bool { return op.write }

// PosmapFetchSet appends the backend-visible data block ids covered by this
// access's position-map line at recursion level `level`: the PrORAM-style
// prefetch group. See Ring.PosmapGroup for the contract.
func (op *StagedAccess) PosmapFetchSet(level int, dst []uint64) []uint64 {
	return op.e.PosmapGroup(op.pa, level, dst)
}

// PosmapGroup appends the data-space block-group ids whose leaf assignments
// live on the position-map line an access to pa reads at recursion level
// `level` (1 = PosMap1). The recursive posmap levels themselves are
// engine-resident (FetchSet documents why), so "prefetching a posmap line"
// means warming the contiguous run of data blocks that line's 16 entries
// index — the paper's PrORAM group-prefetch insight: blocks sharing a
// posmap line are spatially adjacent, and an access to one predicts
// accesses to its siblings.
//
// The helper is pure — only integer division via pm.Index, never pm.Leaf
// or pm.Remap (which draw RNG and would perturb the engine's deterministic
// state evolution). It is safe to call at plan/announce time, before
// PlanAccess, on any goroutine. Out-of-range pa or level returns dst
// unchanged.
func (e *Ring) PosmapGroup(pa uint64, level int, dst []uint64) []uint64 {
	if pa >= e.cfg.NLines || level <= 0 || level >= e.pm.Levels() {
		return dst
	}
	groupIdx := pa / uint64(e.cfg.DataSlotLines)
	span := uint64(1)
	for l := 0; l < level; l++ {
		span *= posmap.EntriesPerBlock
	}
	start := e.pm.Index(level, groupIdx) * span
	end := start + span
	if n := e.pm.Blocks(0); end > n {
		end = n
	}
	for id := start; id < end; id++ {
		dst = append(dst, id)
	}
	return dst
}

// Apply executes the engine transition of the staged access — the posmap
// remaps, path reads, stash merge, and evictions of every hierarchy level,
// in exactly the operation order of the serial Access — and returns the
// traffic plan. Apply must run on the engine's owner goroutine, in
// PlanAccess order, exactly once.
func (op *StagedAccess) Apply() *Plan {
	if op.done {
		panic("oram: StagedAccess applied twice")
	}
	op.done = true
	e := op.e
	plan := &Plan{ReqID: op.reqID, PA: op.pa, Write: op.write, Levels: make([]LevelAccess, len(e.spaces))}
	groupIdx := op.pa / uint64(e.cfg.DataSlotLines)
	for l := len(e.spaces) - 1; l >= 0; l-- {
		idx := e.pm.Index(l, groupIdx)
		if l == 0 {
			plan.FromStash = e.spaces[0].Stash.Contains(otree.BlockID(idx))
		}
		la, got := e.accessLevel(l, idx, l == 0 && op.write, op.val)
		plan.Levels[l] = la
		if l == 0 {
			plan.Val = got
		}
	}
	plan.DataLeaf = e.lastDataLeaf
	e.fillStashAfter(plan)
	return plan
}
