package oram

import (
	"testing"
	"testing/quick"

	"palermo/internal/otree"
	"palermo/internal/rng"
)

func smallRing(variant RingVariant, seed uint64) *Ring {
	e, err := NewRing(RingConfig{
		NLines:    4096,
		Z:         4,
		S:         5,
		A:         3,
		PosLevels: 2,
		Seed:      seed,
		Variant:   variant,
	})
	if err != nil {
		panic(err)
	}
	return e
}

func smallPath(seed uint64) *Path {
	e, err := NewPath(PathConfig{
		NLines:    4096,
		Z:         4,
		PosLevels: 2,
		Seed:      seed,
	})
	if err != nil {
		panic(err)
	}
	return e
}

// checkAll reads every previously written PA and verifies the value.
func checkAll(t *testing.T, e Engine, ref map[uint64]uint64) {
	t.Helper()
	for pa, want := range ref {
		plan := e.Access(pa, false, 0)
		if plan.Val != want {
			t.Fatalf("read PA %d = %d, want %d", pa, plan.Val, want)
		}
	}
}

func TestRingReadYourWrites(t *testing.T) {
	for _, variant := range []RingVariant{VariantBaseline, VariantPalermo} {
		e := smallRing(variant, 7)
		r := rng.New(99)
		ref := make(map[uint64]uint64)
		for i := 0; i < 3000; i++ {
			pa := r.Uint64n(4096)
			if r.Float64() < 0.5 {
				val := r.Uint64()
				e.Access(pa, true, val)
				ref[pa] = val
			} else {
				plan := e.Access(pa, false, 0)
				if want, ok := ref[pa]; ok && plan.Val != want {
					t.Fatalf("variant %d: PA %d read %d, want %d (iter %d)", variant, pa, plan.Val, want, i)
				}
			}
		}
		checkAll(t, e, ref)
	}
}

func TestPathReadYourWrites(t *testing.T) {
	e := smallPath(3)
	r := rng.New(123)
	ref := make(map[uint64]uint64)
	for i := 0; i < 3000; i++ {
		pa := r.Uint64n(4096)
		val := r.Uint64()
		e.Access(pa, true, val)
		ref[pa] = val
	}
	checkAll(t, e, ref)
}

// The core ORAM invariant: every tree-resident block lies on the path from
// its currently mapped leaf to the root, and no block is in both the tree
// and the stash.
func checkInvariant(t *testing.T, spaces []*Space, leafOf func(l int, id uint64) uint64) {
	t.Helper()
	for l, sp := range spaces {
		sp.Store.ForEachBlock(func(node uint64, be otree.BlockEntry) {
			leaf := leafOf(l, uint64(be.ID))
			if !sp.Geo.OnPath(leaf, node) {
				t.Fatalf("level %d block %d at node %d not on path of leaf %d", l, be.ID, node, leaf)
			}
			if sp.Stash.Contains(be.ID) {
				t.Fatalf("level %d block %d in both tree and stash", l, be.ID)
			}
		})
	}
}

func TestRingPathInvariant(t *testing.T) {
	for _, variant := range []RingVariant{VariantBaseline, VariantPalermo} {
		e := smallRing(variant, 11)
		r := rng.New(5)
		for i := 0; i < 2000; i++ {
			e.Access(r.Uint64n(4096), r.Float64() < 0.3, r.Uint64())
		}
		leafOf := func(l int, id uint64) uint64 { return e.Posmap().Leaf(l, id) }
		checkInvariant(t, e.spaces, leafOf)
	}
}

func TestPathInvariant(t *testing.T) {
	e := smallPath(11)
	r := rng.New(5)
	for i := 0; i < 2000; i++ {
		e.Access(r.Uint64n(4096), r.Float64() < 0.3, r.Uint64())
	}
	leafOf := func(l int, id uint64) uint64 { return e.Posmap().Leaf(l, id) }
	checkInvariant(t, e.spaces, leafOf)
}

func TestRingStashBounded(t *testing.T) {
	for _, variant := range []RingVariant{VariantBaseline, VariantPalermo} {
		e := smallRing(variant, 21)
		r := rng.New(77)
		for i := 0; i < 5000; i++ {
			e.Access(r.Uint64n(4096), false, 0)
		}
		for l := 0; l < e.Levels(); l++ {
			if max := e.StashMax(l); max > 256 {
				t.Fatalf("variant %d level %d stash peaked at %d (> 256)", variant, l, max)
			}
		}
	}
}

func TestPathStashBounded(t *testing.T) {
	e := smallPath(21)
	r := rng.New(77)
	for i := 0; i < 5000; i++ {
		e.Access(r.Uint64n(4096), false, 0)
	}
	for l := 0; l < e.Levels(); l++ {
		if max := e.StashMax(l); max > 256 {
			t.Fatalf("level %d stash peaked at %d", l, max)
		}
	}
}

func TestRingFewerReadsThanPath(t *testing.T) {
	ring := smallRing(VariantBaseline, 1)
	path := smallPath(1)
	r1, r2 := rng.New(4), rng.New(4)
	ringReads, pathReads := 0, 0
	for i := 0; i < 500; i++ {
		ringReads += ring.Access(r1.Uint64n(4096), false, 0).Reads()
		pathReads += path.Access(r2.Uint64n(4096), false, 0).Reads()
	}
	if ringReads >= pathReads {
		t.Fatalf("Ring reads (%d) should be below Path reads (%d)", ringReads, pathReads)
	}
}

func TestRingPlanStructure(t *testing.T) {
	e := smallRing(VariantBaseline, 1)
	plan := e.Access(42, false, 0)
	if len(plan.Levels) != 3 {
		t.Fatalf("levels = %d", len(plan.Levels))
	}
	for l, la := range plan.Levels {
		if la.Level != l {
			t.Fatalf("level mismatch: %d vs %d", la.Level, l)
		}
		if la.Phases[0].Kind != PhaseLM {
			t.Fatalf("first phase = %v, want LM", la.Phases[0].Kind)
		}
		// Baseline ordering: LM, RP, [EP], ER.
		kinds := make([]PhaseKind, 0, 4)
		for _, ph := range la.Phases {
			kinds = append(kinds, ph.Kind)
		}
		if kinds[1] != PhaseRP || kinds[len(kinds)-1] != PhaseER {
			t.Fatalf("baseline phase order: %v", kinds)
		}
		// Path depth sanity: RP reads one line per uncached path node.
		depth := e.Space(l).Geo.Depth
		top := e.Space(l).Top.Levels()
		if got := len(la.Phases[1].Reads); got != depth+1-top {
			t.Fatalf("level %d RP reads = %d, want %d", l, got, depth+1-top)
		}
	}
}

func TestPalermoPlanOrdering(t *testing.T) {
	e := smallRing(VariantPalermo, 1)
	plan := e.Access(42, false, 0)
	for _, la := range plan.Levels {
		kinds := make([]PhaseKind, 0, 4)
		for _, ph := range la.Phases {
			kinds = append(kinds, ph.Kind)
		}
		// Palermo ordering: LM, ER (hoisted), RP, [EP].
		if kinds[0] != PhaseLM || kinds[1] != PhaseER || kinds[2] != PhaseRP {
			t.Fatalf("palermo phase order: %v", kinds)
		}
	}
}

func TestRingEvictionPeriod(t *testing.T) {
	e := smallRing(VariantBaseline, 1)
	evictions := 0
	const n = 30
	for i := 0; i < n; i++ {
		plan := e.Access(uint64(i), false, 0)
		if plan.Levels[0].Evict {
			evictions++
		}
	}
	if evictions != n/3 { // A = 3
		t.Fatalf("evictions = %d over %d accesses with A=3", evictions, n)
	}
}

func TestRingDeterminism(t *testing.T) {
	a := smallRing(VariantPalermo, 5)
	b := smallRing(VariantPalermo, 5)
	r1, r2 := rng.New(1), rng.New(1)
	for i := 0; i < 300; i++ {
		pa1, pa2 := r1.Uint64n(4096), r2.Uint64n(4096)
		p1 := a.Access(pa1, false, 0)
		p2 := b.Access(pa2, false, 0)
		if p1.Reads() != p2.Reads() || p1.Writes() != p2.Writes() {
			t.Fatalf("iteration %d: plans diverged (%d/%d vs %d/%d reads/writes)",
				i, p1.Reads(), p1.Writes(), p2.Reads(), p2.Writes())
		}
	}
}

func TestDummyAccessServesNothing(t *testing.T) {
	e := smallRing(VariantBaseline, 9)
	plan := e.DummyAccess()
	if !plan.Dummy {
		t.Fatal("dummy flag not set")
	}
	if plan.Reads() == 0 {
		t.Fatal("dummy access must still generate path traffic")
	}
}

func TestRingPrefetchWideSlots(t *testing.T) {
	cfg := RingConfig{
		NLines: 4096, Z: 4, S: 5, A: 3, PosLevels: 2, Seed: 1,
		DataSlotLines: 4, Variant: VariantPalermo,
	}
	e, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	ref := make(map[uint64]uint64)
	for i := 0; i < 1500; i++ {
		pa := r.Uint64n(4096)
		val := r.Uint64()
		e.Access(pa, true, val)
		// A whole slot group shares one tree block, so writes to any line
		// in the group store the group block's value.
		for g := pa / 4 * 4; g < pa/4*4+4; g++ {
			ref[g] = val
		}
	}
	checkAll(t, e, ref)
	// Wide data tree: RP reads 4 lines per uncached node at level 0.
	plan := e.Access(0, false, 0)
	depth := e.Space(0).Geo.Depth
	if got := len(plan.Levels[0].Phases[2].Reads); got != 4*(depth+1) {
		t.Fatalf("wide RP reads = %d, want %d", got, 4*(depth+1))
	}
	// Posmap trees stay narrow.
	if e.Space(1).Geo.SlotLines != 1 {
		t.Fatal("posmap trees must not widen")
	}
	// Stash tags stay bounded regardless of width (§VIII-B).
	if e.StashMax(0) > 256 {
		t.Fatalf("wide stash tags peaked at %d", e.StashMax(0))
	}
}

func TestPathGroupLeafSharesLeaf(t *testing.T) {
	cfg := DefaultPathConfig()
	cfg.NLines = 4096
	cfg.GroupLeafLines = 4
	e, err := NewPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Access(8, false, 0) // access remaps the whole group 8..11
	pm := e.Posmap()
	leaf := pm.Leaf(0, 8)
	for idx := uint64(9); idx < 12; idx++ {
		if pm.Leaf(0, idx) != leaf {
			t.Fatalf("group member %d not on shared leaf", idx)
		}
	}
}

func TestPathSiblingReads(t *testing.T) {
	cfg := DefaultPathConfig()
	cfg.NLines = 4096
	e1, _ := NewPath(cfg)
	cfg.SiblingReads = true
	e2, err := NewPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := rng.New(3), rng.New(3)
	base, sib := 0, 0
	for i := 0; i < 100; i++ {
		base += e1.Access(r1.Uint64n(4096), false, 0).Reads()
		sib += e2.Access(r2.Uint64n(4096), false, 0).Reads()
	}
	if sib <= base {
		t.Fatal("sibling reads must add traffic")
	}
	// Correctness must hold with sibling residency.
	ref := make(map[uint64]uint64)
	for i := 0; i < 1000; i++ {
		pa := r2.Uint64n(4096)
		v := r2.Uint64()
		e2.Access(pa, true, v)
		ref[pa] = v
	}
	checkAll(t, e2, ref)
}

func TestFatTreePathCorrectness(t *testing.T) {
	cfg := DefaultPathConfig()
	cfg.NLines = 4096
	cfg.GroupLeafLines = 4
	cfg.FatRootScale = 2
	e, err := NewPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	ref := make(map[uint64]uint64)
	for i := 0; i < 1500; i++ {
		pa := r.Uint64n(4096)
		v := r.Uint64()
		e.Access(pa, true, v)
		ref[pa] = v
	}
	checkAll(t, e, ref)
}

func TestMidShrinkGeometry(t *testing.T) {
	cfg := DefaultPathConfig()
	cfg.NLines = 1 << 16
	cfg.MidShrink = 2
	e, err := NewPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := e.Space(0).Geo
	if g.Levels[g.Depth/2].Z != 2 {
		t.Fatalf("mid-tree Z = %d, want 2", g.Levels[g.Depth/2].Z)
	}
	if g.Levels[0].Z != 4 || g.Levels[g.Depth].Z != 4 {
		t.Fatal("root/leaf Z must stay 4")
	}
	r := rng.New(31)
	ref := make(map[uint64]uint64)
	for i := 0; i < 800; i++ {
		pa := r.Uint64n(1 << 16)
		v := r.Uint64()
		e.Access(pa, true, v)
		ref[pa] = v
	}
	checkAll(t, e, ref)
}

func TestLayoutDisjoint(t *testing.T) {
	g1 := otree.Uniform(1024, 4, 5, 0, 0)
	g2 := otree.Uniform(256, 4, 5, 0, 0)
	laid := Layout([]otree.Geometry{g1, g2}, 4096)
	type region struct{ lo, hi uint64 }
	regions := []region{}
	for _, g := range laid {
		regions = append(regions, region{g.Base, g.Base + g.Footprint()})
		regions = append(regions, region{g.MetaBase, g.MetaBase + g.NumNodes()*otree.BlockBytes})
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("regions %d and %d overlap: %+v %+v", i, j, a, b)
			}
		}
	}
}

// Property: any interleaving of reads and writes over a small space keeps
// read-your-writes in the Palermo variant.
func TestPalermoRYWProperty(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		if len(ops) > 400 {
			ops = ops[:400]
		}
		e := smallRing(VariantPalermo, seed)
		ref := make(map[uint64]uint64)
		for i, op := range ops {
			pa := uint64(op) % 4096
			if i%2 == 0 {
				e.Access(pa, true, uint64(i)+1)
				ref[pa] = uint64(i) + 1
			} else {
				got := e.Access(pa, false, 0).Val
				if want, ok := ref[pa]; ok && got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFullScaleGeometryMemoryBounded(t *testing.T) {
	// The paper-scale 16 GB space must build and serve accesses without
	// materializing the tree.
	cfg := PalermoRingConfig()
	cfg.TreeTopBytes = 256 << 10
	e, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	for i := 0; i < 200; i++ {
		e.Access(r.Uint64n(cfg.NLines), false, 0)
	}
	if e.Space(0).Store.Materialized() > 200*64 {
		t.Fatalf("materialized %d buckets for 200 accesses", e.Space(0).Store.Materialized())
	}
}

// TestInvariantCheckerDetectsCorruption validates the test instrumentation
// itself: if the tree state is corrupted behind the protocol's back, the
// read path must surface it (a lost block reads as zero instead of its
// value), proving the correctness tests are actually sensitive.
func TestInvariantCheckerDetectsCorruption(t *testing.T) {
	e := smallRing(VariantPalermo, 99)
	e.Access(42, true, 12345)
	// Drain the stash so block 42 lands in the tree.
	for i := 0; i < 200; i++ {
		e.Access(uint64(i+100), false, 0)
	}
	if e.Space(0).Stash.Contains(42) {
		t.Skip("block 42 still stashed after drain; adjust iterations")
	}
	// Corrupt: remove the block from whichever bucket holds it.
	found := false
	e.Space(0).Store.ForEachBlock(func(node uint64, be otree.BlockEntry) {
		if be.ID == 42 {
			found = true
		}
	})
	if !found {
		t.Fatal("block 42 neither stashed nor in tree: invariant already broken")
	}
	leaf := e.Posmap().Leaf(0, 42)
	path := e.Space(0).Geo.PathNodes(nil, leaf)
	removed := false
	for _, n := range path {
		if e.Space(0).Store.Bucket(n).Contains(42) {
			entry, _, ok := e.Space(0).Store.ReadSlot(n, 42)
			if ok && entry.ID == 42 {
				removed = true // block consumed without entering the stash
			}
			break
		}
	}
	if !removed {
		t.Fatal("could not inject corruption")
	}
	if got := e.Access(42, false, 0).Val; got == 12345 {
		t.Fatal("read returned the value despite corruption: tests are not sensitive")
	}
}

// TestHierarchyIndexConsistency: the posmap levels consulted for a PA must
// cover it: level l's block index times 16^l contains the data group.
func TestHierarchyIndexConsistency(t *testing.T) {
	e := smallRing(VariantBaseline, 3)
	pm := e.Posmap()
	for _, pa := range []uint64{0, 1, 255, 256, 4095} {
		g := pa // DataSlotLines == 1
		i1 := pm.Index(1, g)
		i2 := pm.Index(2, g)
		if g/16 != i1 || i1/16 != i2 {
			t.Fatalf("pa %d: recursion indices %d/%d inconsistent", pa, i1, i2)
		}
	}
}
