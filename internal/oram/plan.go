// Package oram implements the functional ORAM protocol engines — PathORAM
// and RingORAM (Algorithm 1), including the recursive posmap hierarchy —
// in the functional-first, timing-replay architecture described in
// DESIGN.md §4.1: every logical ORAM access executes the real protocol
// (trees, stash, remapping) in commit order and emits an access Plan, the
// exact per-phase lists of DRAM reads and writes a timing controller must
// replay under its concurrency discipline.
package oram

import "fmt"

// PhaseKind identifies a protocol phase within one hierarchy level's access.
// The names follow the paper's PE pipeline (Fig 7/8).
type PhaseKind int

// Protocol phases.
const (
	PhaseLM PhaseKind = iota // Load Metadata: node metadata reads along the path
	PhaseER                  // Early Reshuffle: bucket resets (reads then writes)
	PhaseRP                  // Read Path: one (Ring) or all (Path) slots per node
	PhaseEP                  // Evict Path: periodic whole-path reset
	PhaseWB                  // Write Back: PathORAM's unconditional path write
)

// String implements fmt.Stringer.
func (k PhaseKind) String() string {
	switch k {
	case PhaseLM:
		return "LM"
	case PhaseER:
		return "ER"
	case PhaseRP:
		return "RP"
	case PhaseEP:
		return "EP"
	case PhaseWB:
		return "WB"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// Phase is one batch of DRAM traffic: the controller issues all Reads
// (waiting for them per its discipline) and then all Writes (fire and
// forget; ordering is enforced at the memory controller).
type Phase struct {
	Kind   PhaseKind
	Reads  []uint64
	Writes []uint64

	// NR/NW count line movements whose addresses were elided — the
	// serving engine's count-only mode (RingConfig.CountTraffic), where
	// nothing replays the plan and materializing per-access address lists
	// is pure allocation cost. Address-mode plans keep them zero, so
	// ReadCount/WriteCount are the mode-independent totals.
	NR, NW int
}

// ReadCount returns the phase's total line reads in either traffic mode.
func (ph *Phase) ReadCount() int { return len(ph.Reads) + ph.NR }

// WriteCount returns the phase's total line writes in either traffic mode.
func (ph *Phase) WriteCount() int { return len(ph.Writes) + ph.NW }

// LevelAccess is the traffic of one hierarchy level's tree access, with
// phases in protocol execution order.
type LevelAccess struct {
	Level  int // 0 = data, 1 = PosMap1, 2 = PosMap2
	Phases []Phase
	Evict  bool // an EP is part of this access (every A-th access)
}

// Plan is the complete traffic of one ORAM request across the hierarchy.
type Plan struct {
	ReqID uint64
	PA    uint64
	Write bool
	Dummy bool // background/padding request serving no LLC miss

	// Levels is indexed by hierarchy level (0 = data). Logical execution
	// order is deepest posmap first; concurrency is the controller's choice.
	Levels []LevelAccess

	// Val is the value returned for reads (correctness checking).
	Val uint64

	// FromStash reports whether the data-level block was already resident
	// in the stash when the access began (Table I's victim behaviour B).
	FromStash bool

	// DataLeaf is the ORAM leaf whose path the data-level access exposed
	// on the memory bus (the attacker-visible randomness, §VI).
	DataLeaf uint64

	// StashAfter is the per-level stash tag occupancy after the access.
	StashAfter []int
}

// Reads returns the total DRAM read count in the plan (both traffic modes).
func (p *Plan) Reads() int {
	n := 0
	for _, la := range p.Levels {
		for i := range la.Phases {
			n += la.Phases[i].ReadCount()
		}
	}
	return n
}

// Writes returns the total DRAM write count in the plan (both traffic modes).
func (p *Plan) Writes() int {
	n := 0
	for _, la := range p.Levels {
		for i := range la.Phases {
			n += la.Phases[i].WriteCount()
		}
	}
	return n
}

// Engine is a functional protocol engine: it executes accesses in commit
// order and emits replayable plans. Implementations: Ring (Algorithm 1 and
// the Palermo variant), Path, and the baseline wrappers in
// internal/baselines.
type Engine interface {
	// Access performs one logical access (a served LLC miss) and returns
	// its traffic plan. For writes, val is stored; for reads, plan.Val
	// holds the value read.
	Access(pa uint64, write bool, val uint64) *Plan
	// DummyAccess performs a padding/background access along a random path.
	DummyAccess() *Plan
	// Levels returns the number of hierarchy levels (data + ORAM posmaps).
	Levels() int
	// StashLen returns the current stash tag occupancy of a level.
	StashLen(level int) int
	// StashMax returns the peak stash occupancy of a level.
	StashMax(level int) int
	// SampleStashes records stash occupancy for Fig 12-style plots.
	SampleStashes()
	// StashSamples returns the recorded occupancy samples of a level.
	StashSamples(level int) []int
	// StashOverflows returns how many insertions exceeded the hardware tag
	// budget at a level (0 for a design respecting the bound).
	StashOverflows(level int) uint64
	// ResetPeaks clears stash peak tracking (warmup boundary).
	ResetPeaks()
}
