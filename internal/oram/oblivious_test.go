package oram

// Obliviousness tests: the DRAM traffic of an access must depend only on
// public state (leaf randomness, bucket access counters), never on the
// private inputs — which PA is accessed, whether it is a read or a write,
// or whether it hits the stash.

import (
	"testing"

	"palermo/internal/otree"
	"palermo/internal/rng"
)

// collectAddrs flattens a plan's reads and writes in order.
func collectAddrs(p *Plan) (reads, writes []uint64) {
	for _, la := range p.Levels {
		for _, ph := range la.Phases {
			reads = append(reads, ph.Reads...)
			writes = append(writes, ph.Writes...)
		}
	}
	return reads, writes
}

func sameAddrs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReadWriteTrafficIdentical: two identical engines fed the same PA
// sequence, one issuing reads and one writes, must emit bit-identical DRAM
// address streams (op type is invisible on the bus).
func TestReadWriteTrafficIdentical(t *testing.T) {
	for _, variant := range []RingVariant{VariantBaseline, VariantPalermo} {
		re := smallRing(variant, 42)
		we := smallRing(variant, 42)
		seq := rng.New(9)
		for i := 0; i < 500; i++ {
			pa := seq.Uint64n(4096)
			pr := re.Access(pa, false, 0)
			pw := we.Access(pa, true, uint64(i))
			r1, w1 := collectAddrs(pr)
			r2, w2 := collectAddrs(pw)
			if !sameAddrs(r1, r2) || !sameAddrs(w1, w2) {
				t.Fatalf("variant %d access %d: read/write traffic diverged", variant, i)
			}
		}
	}
}

func TestPathReadWriteTrafficIdentical(t *testing.T) {
	re := smallPath(42)
	we := smallPath(42)
	seq := rng.New(9)
	for i := 0; i < 300; i++ {
		pa := seq.Uint64n(4096)
		r1, w1 := collectAddrs(re.Access(pa, false, 0))
		r2, w2 := collectAddrs(we.Access(pa, true, uint64(i)))
		if !sameAddrs(r1, r2) || !sameAddrs(w1, w2) {
			t.Fatalf("access %d: read/write traffic diverged", i)
		}
	}
}

// TestConstantPerAccessShape: the LM and RP phases touch exactly one line
// (or slot group) per uncached path node on every access, no matter which
// PA is requested or whether the block was in the stash.
func TestConstantPerAccessShape(t *testing.T) {
	e := smallRing(VariantPalermo, 7)
	seq := rng.New(3)
	wantLM, wantRP := -1, -1
	for i := 0; i < 800; i++ {
		plan := e.Access(seq.Uint64n(4096), false, 0)
		for _, la := range plan.Levels {
			if la.Level != 0 {
				continue
			}
			var lm, rp int
			for _, ph := range la.Phases {
				switch ph.Kind {
				case PhaseLM:
					lm = len(ph.Reads)
				case PhaseRP:
					rp = len(ph.Reads)
				}
			}
			if wantLM == -1 {
				wantLM, wantRP = lm, rp
			}
			if lm != wantLM || rp != wantRP {
				t.Fatalf("access %d: LM/RP shape %d/%d differs from %d/%d (traffic leaks state)",
					i, lm, rp, wantLM, wantRP)
			}
		}
	}
}

// TestStashHitTrafficIndistinguishable: accessing a PA whose block sits in
// the stash produces the same per-phase traffic counts as a tree-resident
// access.
func TestStashHitTrafficIndistinguishable(t *testing.T) {
	e := smallRing(VariantPalermo, 5)
	// Access PA 7 twice in a row: the second access is a stash hit.
	first := e.Access(7, false, 0)
	second := e.Access(7, false, 0)
	if !second.FromStash {
		t.Skip("block was evicted between accesses; adjust A if this trips")
	}
	fr, _ := collectAddrs(first)
	sr, _ := collectAddrs(second)
	// Counts of LM and RP reads must match (addresses differ: fresh leaf).
	countKind := func(p *Plan, k PhaseKind) int {
		n := 0
		for _, la := range p.Levels {
			for _, ph := range la.Phases {
				if ph.Kind == k {
					n += len(ph.Reads)
				}
			}
		}
		return n
	}
	if countKind(first, PhaseLM) != countKind(second, PhaseLM) ||
		countKind(first, PhaseRP) != countKind(second, PhaseRP) {
		t.Fatal("stash hit changed LM/RP traffic counts")
	}
	_ = fr
	_ = sr
}

// TestDummyAccessShapeMatchesReal: a padding dummy access must have the
// same LM/RP footprint as a real access.
func TestDummyAccessShapeMatchesReal(t *testing.T) {
	e := smallRing(VariantPalermo, 5)
	real := e.Access(11, false, 0)
	dummy := e.DummyAccess()
	count := func(p *Plan, k PhaseKind) int {
		n := 0
		for _, la := range p.Levels {
			for _, ph := range la.Phases {
				if ph.Kind == k {
					n += len(ph.Reads)
				}
			}
		}
		return n
	}
	if count(real, PhaseLM) != count(dummy, PhaseLM) {
		t.Fatalf("dummy LM reads %d vs real %d", count(dummy, PhaseLM), count(real, PhaseLM))
	}
	if count(real, PhaseRP) != count(dummy, PhaseRP) {
		t.Fatalf("dummy RP reads %d vs real %d", count(dummy, PhaseRP), count(real, PhaseRP))
	}
}

// TestPlanAddressContainment: every address a plan emits must fall inside
// the tree or metadata region of its own level — trees never alias.
func TestPlanAddressContainment(t *testing.T) {
	e := smallRing(VariantPalermo, 13)
	type region struct{ lo, hi uint64 }
	regions := make([][2]region, e.Levels()) // [level]{tree, meta}
	for l := 0; l < e.Levels(); l++ {
		g := e.Space(l).Geo
		regions[l][0] = region{g.Base, g.Base + g.Footprint()}
		regions[l][1] = region{g.MetaBase, g.MetaBase + g.NumNodes()*otree.BlockBytes}
	}
	seq := rng.New(21)
	for i := 0; i < 500; i++ {
		plan := e.Access(seq.Uint64n(4096), i%2 == 0, 1)
		for _, la := range plan.Levels {
			check := func(addrs []uint64) {
				for _, a := range addrs {
					tr, mt := regions[la.Level][0], regions[la.Level][1]
					if (a < tr.lo || a >= tr.hi) && (a < mt.lo || a >= mt.hi) {
						t.Fatalf("level %d emitted address %#x outside its regions", la.Level, a)
					}
				}
			}
			for _, ph := range la.Phases {
				check(ph.Reads)
				check(ph.Writes)
			}
		}
	}
}

// TestLeafSequenceUniform: the exposed data-leaf stream over many accesses
// to a SINGLE hot PA must still be uniform (remap-on-access).
func TestLeafSequenceUniform(t *testing.T) {
	e := smallRing(VariantPalermo, 17)
	numLeaves := e.Space(0).Geo.NumLeaves()
	buckets := make([]uint64, 16)
	const n = 8000
	for i := 0; i < n; i++ {
		plan := e.Access(5, false, 0) // always the same PA
		buckets[plan.DataLeaf*16/numLeaves]++
	}
	for b, c := range buckets {
		expected := float64(n) / 16
		if float64(c) < expected*0.8 || float64(c) > expected*1.2 {
			t.Fatalf("leaf bucket %d count %d deviates >20%% from uniform (hot-PA linkability)", b, c)
		}
	}
}
