package oram

import (
	"reflect"
	"testing"

	"palermo/internal/rng"
)

func ringWith(t *testing.T, seed uint64, topLevels int, countTraffic bool) *Ring {
	t.Helper()
	e, err := NewRing(RingConfig{
		NLines:        4096,
		Z:             4,
		S:             5,
		A:             3,
		PosLevels:     2,
		Seed:          seed,
		Variant:       VariantPalermo,
		TreeTopLevels: topLevels,
		CountTraffic:  countTraffic,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

type accessTrace struct {
	leaves []uint64
	vals   []uint64
	reads  []int
	writes []int
}

func driveRing(e *Ring, n int) accessTrace {
	r := rng.New(31)
	var tr accessTrace
	for i := 0; i < n; i++ {
		pa := r.Uint64n(4096)
		var plan *Plan
		if r.Float64() < 0.4 {
			plan = e.Access(pa, true, r.Uint64())
		} else {
			plan = e.Access(pa, false, 0)
		}
		tr.leaves = append(tr.leaves, plan.DataLeaf)
		tr.vals = append(tr.vals, plan.Val)
		tr.reads = append(tr.reads, plan.Reads())
		tr.writes = append(tr.writes, plan.Writes())
	}
	return tr
}

// TestCountTrafficParity: count-only mode must report exactly the traffic
// totals of address mode, access by access, while producing the identical
// protocol trajectory (leaves and values).
func TestCountTrafficParity(t *testing.T) {
	addr := driveRing(ringWith(t, 5, 0, false), 2000)
	cnt := driveRing(ringWith(t, 5, 0, true), 2000)
	for i := range addr.leaves {
		if addr.leaves[i] != cnt.leaves[i] || addr.vals[i] != cnt.vals[i] {
			t.Fatalf("access %d: protocol trajectory diverged between traffic modes", i)
		}
		if addr.reads[i] != cnt.reads[i] || addr.writes[i] != cnt.writes[i] {
			t.Fatalf("access %d: traffic totals diverged: addr r/w=%d/%d count r/w=%d/%d",
				i, addr.reads[i], addr.writes[i], cnt.reads[i], cnt.writes[i])
		}
	}
}

// TestTreeTopLevelsNeutral: the tree-top cache gates traffic emission only.
// Any k must leave the attacker-visible leaf sequence, returned values, and
// exported engine state bit-identical; only DRAM traffic shrinks.
func TestTreeTopLevelsNeutral(t *testing.T) {
	base := ringWith(t, 9, 0, false)
	bt := driveRing(base, 2000)
	baseState := base.State()
	prevTraffic := -1
	for _, k := range []int{1, 2, 4, 8} {
		e := ringWith(t, 9, k, false)
		tr := driveRing(e, 2000)
		total := 0
		for i := range bt.leaves {
			if bt.leaves[i] != tr.leaves[i] {
				t.Fatalf("k=%d access %d: leaf sequence diverged (obliviousness-neutrality broken)", k, i)
			}
			if bt.vals[i] != tr.vals[i] {
				t.Fatalf("k=%d access %d: value diverged", k, i)
			}
			if tr.reads[i] > bt.reads[i] || tr.writes[i] > bt.writes[i] {
				t.Fatalf("k=%d access %d: cached config emitted MORE traffic", k, i)
			}
			total += tr.reads[i] + tr.writes[i]
		}
		if !reflect.DeepEqual(e.State(), baseState) {
			t.Fatalf("k=%d: exported engine state diverged from k=0", k)
		}
		if e.TopHits() == 0 {
			t.Fatalf("k=%d: no cache hits recorded", k)
		}
		if prevTraffic >= 0 && total > prevTraffic {
			t.Fatalf("k=%d: traffic grew relative to smaller cache (%d > %d)", k, total, prevTraffic)
		}
		prevTraffic = total
	}
}

// TestTreeTopHitsAccountTraffic: suppressed lines + emitted lines must equal
// the k=0 line totals exactly — the cache absorbs traffic, never loses it.
func TestTreeTopHitsAccountTraffic(t *testing.T) {
	base := ringWith(t, 13, 0, false)
	cached := ringWith(t, 13, 4, true)
	bt := driveRing(base, 1500)
	ct := driveRing(cached, 1500)
	baseLines, cachedLines := 0, 0
	for i := range bt.reads {
		baseLines += bt.reads[i] + bt.writes[i]
		cachedLines += ct.reads[i] + ct.writes[i]
	}
	if got := cachedLines + int(cached.TopHits()); got != baseLines {
		t.Fatalf("line accounting leak: emitted %d + absorbed %d = %d, want %d",
			cachedLines, cached.TopHits(), got, baseLines)
	}
	if cached.TopHits() == 0 {
		t.Fatal("expected nonzero absorbed traffic at k=4")
	}
}

// TestTreeTopCheckpointAcrossConfigs: a checkpoint taken at one k must
// restore into an engine configured with a different k and continue with a
// bit-identical trajectory (mixed-config durable reopen).
func TestTreeTopCheckpointAcrossConfigs(t *testing.T) {
	a := ringWith(t, 21, 0, false)
	driveRing(a, 800)
	st := a.State()
	reopened := ringWith(t, 99, 3, true) // different seed: RNG state comes from the checkpoint
	if err := reopened.Restore(st); err != nil {
		t.Fatal(err)
	}
	ta := driveRing(a, 400)
	tb := driveRing(reopened, 400)
	for i := range ta.leaves {
		if ta.leaves[i] != tb.leaves[i] || ta.vals[i] != tb.vals[i] {
			t.Fatalf("access %d after mixed-config restore diverged", i)
		}
	}
}
