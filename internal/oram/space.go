package oram

import (
	"palermo/internal/otree"
	"palermo/internal/rng"
	"palermo/internal/stash"
)

// Space bundles the per-level state every tree-based protocol needs: the
// tree geometry and bucket store, the level's stash bank, its tree-top
// cache, and the deterministic eviction counter.
type Space struct {
	Level   int
	Geo     otree.Geometry
	Store   *otree.Store
	Stash   *stash.Stash
	Top     otree.TreeTop
	Evictor *otree.BitRevCounter

	Accesses uint64 // accesses to this space (drives the A-period eviction)

	// CountOnly elides DRAM address materialization: phases carry line
	// counts (Phase.NR/NW) instead of address lists. The serving engine
	// sets it — nothing there replays addresses — so the hot path skips
	// the per-access slice growth; the simulator keeps full plans.
	CountOnly bool

	// TopHits counts the 64-byte line movements the tree-top cache
	// absorbed (traffic the protocol generated against levels resident
	// on-chip/in the per-shard cache, which therefore never reached DRAM
	// or the backend). Bytes saved = 64 * TopHits.
	TopHits uint64

	pathBuf []uint64 // per-access path scratch (engine-per-goroutine rule)
}

// NewSpace builds a space over the given geometry.
// HardwareStashTags is the Table III per-level stash budget.
const HardwareStashTags = 256

func NewSpace(level int, g otree.Geometry, treeTopBytes uint64, r *rng.Rand) *Space {
	st := stash.New()
	st.SetCapacity(HardwareStashTags)
	sp := &Space{
		Level:   level,
		Geo:     g,
		Store:   otree.NewStore(g, r),
		Stash:   st,
		Top:     otree.NewTreeTop(g, treeTopBytes),
		Evictor: otree.NewBitRevCounter(g.Depth),
	}
	sp.Store.EnableResidentTop(sp.Top.Levels())
	return sp
}

// SetTopLevels pins the space's tree-top cache to exactly k levels
// (overriding the byte-budget sizing) and extends the bucket store's dense
// resident range to match. Traffic emission is the only thing the cache
// gates — protocol state transitions never consult it — so any k yields
// bit-identical leaf sequences, stash states, and checkpoint bytes.
func (sp *Space) SetTopLevels(k int) {
	sp.Top = otree.NewTreeTopLevels(sp.Geo, k)
	sp.Store.EnableResidentTop(sp.Top.Levels())
}

// path fills the space's scratch path buffer for leaf (index = level).
func (sp *Space) path(leaf uint64) []uint64 {
	sp.pathBuf = sp.Geo.PathNodes(sp.pathBuf[:0], leaf)
	return sp.pathBuf
}

// emitSlotRead accounts one logical slot read of node at level lvl
// (SlotLines consecutive lines): tree-top-cached levels count as cache
// hits, count-only mode bumps the phase counter, address mode appends the
// DRAM addresses.
func (sp *Space) emitSlotRead(ph *Phase, lvl int, node uint64, slot int) {
	lines := sp.Geo.SlotLines
	if sp.Top.Cached(lvl) {
		sp.TopHits += uint64(lines)
		return
	}
	if sp.CountOnly {
		ph.NR += lines
		return
	}
	base := sp.Geo.SlotAddr(node, slot)
	for k := 0; k < lines; k++ {
		ph.Reads = append(ph.Reads, base+uint64(k)*otree.BlockBytes)
	}
}

// emitBucketRead accounts slot reads of slots 0..slots-1 of node (the
// padded whole-bucket pulls of resets and evictions).
func (sp *Space) emitBucketRead(ph *Phase, lvl int, node uint64, slots int) {
	lines := slots * sp.Geo.SlotLines
	if sp.Top.Cached(lvl) {
		sp.TopHits += uint64(lines)
		return
	}
	if sp.CountOnly {
		ph.NR += lines
		return
	}
	for s := 0; s < slots; s++ {
		base := sp.Geo.SlotAddr(node, s)
		for k := 0; k < sp.Geo.SlotLines; k++ {
			ph.Reads = append(ph.Reads, base+uint64(k)*otree.BlockBytes)
		}
	}
}

// emitBucketWrite accounts slot writes of slots 0..slots-1 of node (the
// fresh re-encryption of a whole bucket on reset/eviction write-back).
func (sp *Space) emitBucketWrite(ph *Phase, lvl int, node uint64, slots int) {
	lines := slots * sp.Geo.SlotLines
	if sp.Top.Cached(lvl) {
		sp.TopHits += uint64(lines)
		return
	}
	if sp.CountOnly {
		ph.NW += lines
		return
	}
	for s := 0; s < slots; s++ {
		base := sp.Geo.SlotAddr(node, s)
		for k := 0; k < sp.Geo.SlotLines; k++ {
			ph.Writes = append(ph.Writes, base+uint64(k)*otree.BlockBytes)
		}
	}
}

// emitMetaRead accounts the node-metadata line read.
func (sp *Space) emitMetaRead(ph *Phase, lvl int, node uint64) {
	if sp.Top.Cached(lvl) {
		sp.TopHits++
		return
	}
	if sp.CountOnly {
		ph.NR++
		return
	}
	ph.Reads = append(ph.Reads, sp.Geo.MetaAddr(node))
}

// emitMetaWrite accounts the node-metadata line rewrite.
func (sp *Space) emitMetaWrite(ph *Phase, lvl int, node uint64) {
	if sp.Top.Cached(lvl) {
		sp.TopHits++
		return
	}
	if sp.CountOnly {
		ph.NW++
		return
	}
	ph.Writes = append(ph.Writes, sp.Geo.MetaAddr(node))
}

// resetNode performs the functional half of ResetBucket (Algorithm 1 lines
// 42-50) on node along the path to leaf: pull the unused real blocks into
// the stash, push back eligible stash blocks, and emit the padded DRAM
// traffic (Z slot reads, full-bucket writes). leafOf supplies the current
// mapped leaf of a block for stash insertion.
func (sp *Space) resetNode(ph *Phase, node uint64, leaf uint64, leafOf func(otree.BlockID) uint64) {
	lvl := sp.Geo.NodeLevel(node)
	spec := sp.Geo.Levels[lvl]

	for _, e := range sp.Store.ResetPull(node) {
		sp.Stash.Put(stash.Entry{ID: e.ID, Leaf: leafOf(e.ID), Val: e.Val})
	}
	push := sp.Stash.EvictInto(sp.Geo, leaf, lvl, spec.Z)
	sp.Store.WriteBucket(node, push)

	// Pull traffic is padded to Z slots for obliviousness; push traffic
	// rewrites the whole bucket with fresh encryption.
	sp.emitBucketRead(ph, lvl, node, spec.Z)
	sp.emitBucketWrite(ph, lvl, node, spec.Slots())
	sp.emitMetaWrite(ph, lvl, node) // metadata reset
}

// evictPath performs EvictPath (Algorithm 1 lines 35-40): pull every bucket
// on the deterministic eviction leaf's path into the stash, then push back
// deepest-first so blocks settle as low as possible (pulling the whole path
// before pushing is what lets tree-top residents migrate toward leaves).
func (sp *Space) evictPath(ph *Phase, leafOf func(otree.BlockID) uint64) uint64 {
	g := sp.Evictor.Next()
	for l := 0; l <= sp.Geo.Depth; l++ {
		node := sp.Geo.NodeAt(g, l)
		for _, e := range sp.Store.ResetPull(node) {
			sp.Stash.Put(stashEntry(e, leafOf(e.ID)))
		}
		sp.emitBucketRead(ph, l, node, sp.Geo.Levels[l].Z)
	}
	for l := sp.Geo.Depth; l >= 0; l-- {
		node := sp.Geo.NodeAt(g, l)
		push := sp.Stash.EvictInto(sp.Geo, g, l, sp.Geo.Levels[l].Z)
		sp.Store.WriteBucket(node, push)
		sp.emitBucketWrite(ph, l, node, sp.Geo.Levels[l].Slots())
		sp.emitMetaWrite(ph, l, node)
	}
	return g
}

// Layout assigns disjoint physical regions to a set of geometries: bucket
// storage regions first, then metadata regions, each rounded up to a DRAM
// row multiple so trees never share rows.
func Layout(geos []otree.Geometry, rowBytes uint64) []otree.Geometry {
	out := make([]otree.Geometry, len(geos))
	next := uint64(0)
	align := func(v uint64) uint64 {
		if rowBytes == 0 {
			return v
		}
		return (v + rowBytes - 1) / rowBytes * rowBytes
	}
	bases := make([]uint64, len(geos))
	for i, g := range geos {
		bases[i] = next
		next = align(next + g.Footprint())
	}
	for i, g := range geos {
		metaBase := next
		next = align(next + g.NumNodes()*otree.BlockBytes)
		out[i] = g.WithBases(bases[i], metaBase)
	}
	return out
}
