package oram

import (
	"palermo/internal/otree"
	"palermo/internal/rng"
	"palermo/internal/stash"
)

// Space bundles the per-level state every tree-based protocol needs: the
// tree geometry and bucket store, the level's stash bank, its tree-top
// cache, and the deterministic eviction counter.
type Space struct {
	Level   int
	Geo     otree.Geometry
	Store   *otree.Store
	Stash   *stash.Stash
	Top     otree.TreeTop
	Evictor *otree.BitRevCounter

	Accesses uint64 // accesses to this space (drives the A-period eviction)
}

// NewSpace builds a space over the given geometry.
// HardwareStashTags is the Table III per-level stash budget.
const HardwareStashTags = 256

func NewSpace(level int, g otree.Geometry, treeTopBytes uint64, r *rng.Rand) *Space {
	st := stash.New()
	st.SetCapacity(HardwareStashTags)
	return &Space{
		Level:   level,
		Geo:     g,
		Store:   otree.NewStore(g, r),
		Stash:   st,
		Top:     otree.NewTreeTop(g, treeTopBytes),
		Evictor: otree.NewBitRevCounter(g.Depth),
	}
}

// appendSlotReads appends the DRAM addresses of one logical slot touch
// (SlotLines consecutive lines), skipping tree-top-cached levels.
func (sp *Space) appendSlotReads(dst []uint64, node uint64, slot int) []uint64 {
	lvl := sp.Geo.NodeLevel(node)
	if sp.Top.Cached(lvl) {
		return dst
	}
	base := sp.Geo.SlotAddr(node, slot)
	for k := 0; k < sp.Geo.SlotLines; k++ {
		dst = append(dst, base+uint64(k)*otree.BlockBytes)
	}
	return dst
}

// metaRead appends the node-metadata read address unless cached on-chip.
func (sp *Space) metaRead(dst []uint64, node uint64) []uint64 {
	if sp.Top.Cached(sp.Geo.NodeLevel(node)) {
		return dst
	}
	return append(dst, sp.Geo.MetaAddr(node))
}

// resetNode performs the functional half of ResetBucket (Algorithm 1 lines
// 42-50) on node along the path to leaf: pull the unused real blocks into
// the stash, push back eligible stash blocks, and emit the padded DRAM
// traffic (Z slot reads, full-bucket writes). leafOf supplies the current
// mapped leaf of a block for stash insertion.
func (sp *Space) resetNode(ph *Phase, node uint64, leaf uint64, leafOf func(otree.BlockID) uint64) {
	lvl := sp.Geo.NodeLevel(node)
	spec := sp.Geo.Levels[lvl]

	for _, e := range sp.Store.ResetPull(node) {
		sp.Stash.Put(stash.Entry{ID: e.ID, Leaf: leafOf(e.ID), Val: e.Val})
	}
	push := sp.Stash.EvictInto(sp.Geo, leaf, lvl, spec.Z)
	sp.Store.WriteBucket(node, push)

	if sp.Top.Cached(lvl) {
		return // on-chip: no DRAM traffic
	}
	// Pull traffic is padded to Z slots for obliviousness; push traffic
	// rewrites the whole bucket with fresh encryption.
	for s := 0; s < spec.Z; s++ {
		base := sp.Geo.SlotAddr(node, s)
		for k := 0; k < sp.Geo.SlotLines; k++ {
			ph.Reads = append(ph.Reads, base+uint64(k)*otree.BlockBytes)
		}
	}
	for s := 0; s < spec.Slots(); s++ {
		base := sp.Geo.SlotAddr(node, s)
		for k := 0; k < sp.Geo.SlotLines; k++ {
			ph.Writes = append(ph.Writes, base+uint64(k)*otree.BlockBytes)
		}
	}
	ph.Writes = append(ph.Writes, sp.Geo.MetaAddr(node)) // metadata reset
}

// evictPath performs EvictPath (Algorithm 1 lines 35-40): pull every bucket
// on the deterministic eviction leaf's path into the stash, then push back
// deepest-first so blocks settle as low as possible (pulling the whole path
// before pushing is what lets tree-top residents migrate toward leaves).
func (sp *Space) evictPath(ph *Phase, leafOf func(otree.BlockID) uint64) uint64 {
	g := sp.Evictor.Next()
	for l := 0; l <= sp.Geo.Depth; l++ {
		node := sp.Geo.NodeAt(g, l)
		for _, e := range sp.Store.ResetPull(node) {
			sp.Stash.Put(stashEntry(e, leafOf(e.ID)))
		}
		if !sp.Top.Cached(l) {
			for s := 0; s < sp.Geo.Levels[l].Z; s++ {
				base := sp.Geo.SlotAddr(node, s)
				for k := 0; k < sp.Geo.SlotLines; k++ {
					ph.Reads = append(ph.Reads, base+uint64(k)*otree.BlockBytes)
				}
			}
		}
	}
	for l := sp.Geo.Depth; l >= 0; l-- {
		node := sp.Geo.NodeAt(g, l)
		push := sp.Stash.EvictInto(sp.Geo, g, l, sp.Geo.Levels[l].Z)
		sp.Store.WriteBucket(node, push)
		if !sp.Top.Cached(l) {
			for s := 0; s < sp.Geo.Levels[l].Slots(); s++ {
				base := sp.Geo.SlotAddr(node, s)
				for k := 0; k < sp.Geo.SlotLines; k++ {
					ph.Writes = append(ph.Writes, base+uint64(k)*otree.BlockBytes)
				}
			}
			ph.Writes = append(ph.Writes, sp.Geo.MetaAddr(node))
		}
	}
	return g
}

// Layout assigns disjoint physical regions to a set of geometries: bucket
// storage regions first, then metadata regions, each rounded up to a DRAM
// row multiple so trees never share rows.
func Layout(geos []otree.Geometry, rowBytes uint64) []otree.Geometry {
	out := make([]otree.Geometry, len(geos))
	next := uint64(0)
	align := func(v uint64) uint64 {
		if rowBytes == 0 {
			return v
		}
		return (v + rowBytes - 1) / rowBytes * rowBytes
	}
	bases := make([]uint64, len(geos))
	for i, g := range geos {
		bases[i] = next
		next = align(next + g.Footprint())
	}
	for i, g := range geos {
		metaBase := next
		next = align(next + g.NumNodes()*otree.BlockBytes)
		out[i] = g.WithBases(bases[i], metaBase)
	}
	return out
}
