package hwmodel

import (
	"math"
	"strings"
	"testing"
)

func TestCalibratedTotals(t *testing.T) {
	m := New(8)
	if math.Abs(m.TotalArea()-5.78) > 0.01 {
		t.Fatalf("area = %.2f mm2, want 5.78 (Fig 15)", m.TotalArea())
	}
	if math.Abs(m.TotalPower()-2.14) > 0.01 {
		t.Fatalf("power = %.2f W, want 2.14 (Fig 15)", m.TotalPower())
	}
}

func TestDieFractionUnderTwoPercent(t *testing.T) {
	m := New(8)
	if f := m.DieFraction(); f >= 0.02 {
		t.Fatalf("die fraction = %.3f, paper claims < 2%%", f)
	}
}

func TestMemoriesDominate(t *testing.T) {
	m := New(8)
	var memArea float64
	for _, c := range m.Components {
		if c.Name == "tree-top caches" || c.Name == "PE array + data buffers" {
			memArea += c.AreaMM
		}
	}
	if memArea/m.TotalArea() < 0.5 {
		t.Fatalf("tree-top caches + PE buffers = %.0f%% of area, paper says they dominate",
			100*memArea/m.TotalArea())
	}
}

func TestColumnScaling(t *testing.T) {
	small, big := New(1), New(32)
	if small.TotalArea() >= New(8).TotalArea() {
		t.Fatal("fewer columns must shrink area")
	}
	if big.TotalPower() <= New(8).TotalPower() {
		t.Fatal("more columns must add power")
	}
	// SRAM blocks must not scale with columns.
	if small.Components[0].AreaMM != big.Components[0].AreaMM {
		t.Fatal("tree-top cache area must be column-independent")
	}
}

func TestDefaultColumns(t *testing.T) {
	if New(0).Columns != 8 {
		t.Fatal("default must be the Table III 3x8 configuration")
	}
}

func TestStringRendersTable(t *testing.T) {
	s := New(8).String()
	for _, want := range []string{"tree-top caches", "total", "5.78", "2.14", "Intel 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}

func TestMacroEstimatesTrackCalibration(t *testing.T) {
	// The CACTI-substitute macro model must independently land within 25%
	// of each calibrated Fig 15 memory component.
	calibrated := map[string][2]float64{
		"tree-top caches (macro est.)": {2.10, 0.72},
		"PosMap3 eDRAM (macro est.)":   {1.60, 0.45},
		"PE data buffers (macro est.)": {1.40, 0.70},
		"stash banks (macro est.)":     {0.28, 0.09},
	}
	for _, est := range Estimates() {
		want, ok := calibrated[est.Name]
		if !ok {
			t.Fatalf("unexpected estimate %q", est.Name)
		}
		if rel(est.AreaMM, want[0]) > 0.25 {
			t.Fatalf("%s area %.2f vs calibrated %.2f", est.Name, est.AreaMM, want[0])
		}
		if rel(est.PowerW, want[1]) > 0.35 {
			t.Fatalf("%s power %.2f vs calibrated %.2f", est.Name, est.PowerW, want[1])
		}
	}
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

func TestMacroScalingLaws(t *testing.T) {
	if SRAMArea(1<<20, 1, 1) >= SRAMArea(1<<20, 1, 2) {
		t.Fatal("port factor must grow area")
	}
	if SRAMArea(1<<20, 4, 1) <= SRAMArea(1<<20, 1, 1) {
		t.Fatal("banking must add overhead")
	}
	// eDRAM must be denser than SRAM at matching capacity.
	if EDRAMArea(16<<20, 16) >= SRAMArea(16<<20, 16, 1) {
		t.Fatal("eDRAM must beat SRAM density")
	}
	if SRAMPower(1<<20, 4, 0) >= SRAMPower(1<<20, 4, 1) {
		t.Fatal("activity must add power")
	}
}
