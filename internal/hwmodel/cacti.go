package hwmodel

// CACTI-substitute macro estimators (§VII-C uses CACTI for the SRAM
// caches). Each on-chip memory macro's area and power are estimated from
// first-order scaling laws at 28 nm: a per-bank fixed overhead (decoders,
// sense amps, peripheral logic) plus a per-capacity term, scaled by a port
// factor for multi-ported/high-associativity arrays. The constants are fit
// so the estimates land on the calibrated Fig 15 component table (the test
// suite asserts agreement within 20%), giving the same role CACTI plays in
// the paper: an independent sanity check on the floorplan numbers.

// Macro area constants at 28 nm.
const (
	sramBankOverheadMM  = 0.030 // mm² per bank
	sramDensityMMPerMB  = 1.84  // mm² per MB
	edramBankOverheadMM = 0.020
	edramDensityMMPerMB = 0.080
)

// Macro power constants at 1.6 GHz (leakage + averaged dynamic).
const (
	sramLeakWPerMB   = 0.40
	sramBankActiveW  = 0.0175
	edramLeakWPerMB  = 0.015
	edramBankActiveW = 0.013
)

func mb(bytes uint64) float64 { return float64(bytes) / (1 << 20) }

// SRAMArea estimates an SRAM macro's area in mm². portFactor >= 1 scales
// for multi-porting and high associativity (1.0 for simple scratchpads).
func SRAMArea(bytes uint64, banks int, portFactor float64) float64 {
	return (float64(banks)*sramBankOverheadMM + mb(bytes)*sramDensityMMPerMB) * portFactor
}

// SRAMPower estimates an SRAM macro's power in W. activity in [0,1] is the
// fraction of cycles each bank is accessed.
func SRAMPower(bytes uint64, banks int, activity float64) float64 {
	return mb(bytes)*sramLeakWPerMB + float64(banks)*activity*sramBankActiveW
}

// EDRAMArea estimates an eDRAM macro's area in mm².
func EDRAMArea(bytes uint64, banks int) float64 {
	return float64(banks)*edramBankOverheadMM + mb(bytes)*edramDensityMMPerMB
}

// EDRAMPower estimates an eDRAM macro's power in W (refresh included in
// the leakage term).
func EDRAMPower(bytes uint64, banks int, activity float64) float64 {
	return mb(bytes)*edramLeakWPerMB + float64(banks)*activity*edramBankActiveW
}

// Estimates returns macro-model estimates for the Table III memory
// structures, in the same order as the calibrated component table entries
// they correspond to: tree-top caches, PosMap3 eDRAM, PE data buffers,
// stash banks.
func Estimates() []Component {
	return []Component{
		{
			Name:   "tree-top caches (macro est.)",
			AreaMM: SRAMArea(768<<10, 24, 1.0),
			PowerW: SRAMPower(768<<10, 24, 0.95),
			Note:   "24 x 32 KB, single-ported scratchpads, near-continuous access",
		},
		{
			Name:   "PosMap3 eDRAM (macro est.)",
			AreaMM: EDRAMArea(16<<20, 16),
			PowerW: EDRAMPower(16<<20, 16, 1.0),
			Note:   "16 x 1 MB banks",
		},
		{
			Name:   "PE data buffers (macro est.)",
			AreaMM: SRAMArea(192<<10, 24, 1.25) + 24*0.005, // + per-PE FSM logic
			PowerW: SRAMPower(192<<10, 24, 1.0)*1.25 + 24*0.005*1.6,
			Note:   "24 x 8 KB double-buffered, 1.25x port factor",
		},
		{
			Name:   "stash banks (macro est.)",
			AreaMM: SRAMArea(48<<10, 3, 1.60),
			PowerW: SRAMPower(48<<10, 3, 1.0) * 1.60,
			Note:   "3 x 16 KB, high-associativity probe ports",
		},
	}
}
