// Package hwmodel is the analytical replacement for the paper's
// post-synthesis RTL and CACTI flow (§VII-C): a component-level area/power
// model of the Palermo ORAM controller in 28 nm at 1.6 GHz, calibrated to
// the published totals (Fig 15: 5.78 mm², 2.14 W), plus the technology
// scaling used for the "< 2% of a 12th-gen Intel CPU" claim.
package hwmodel

import "fmt"

// Component is one block of the controller floorplan.
type Component struct {
	Name   string
	AreaMM float64 // mm² at 28 nm
	PowerW float64 // leakage + average dynamic at 1.6 GHz
	Note   string
}

// Model is a controller configuration's area/power estimate.
type Model struct {
	Components []Component
	Columns    int // PE columns
}

// Reference PE-array geometry: Table III's 3 rows x 8 columns.
const refColumns = 8

// Per-component calibration. The tree-top caches and PE data buffers
// dominate, as the paper's Fig 15 discussion notes; the PE array and crypto
// scale with column count, the SRAM/eDRAM blocks do not.
var base = []Component{
	{"tree-top caches", 2.10, 0.72, "24 x 32 KB scratchpad banks (3 x 256 KB)"},
	{"PosMap3 eDRAM", 1.60, 0.45, "16 x 1 MB banks (16 MB on-chip map)"},
	{"PE array + data buffers", 1.40, 0.70, "3 x 8 PEs, 2D request pipeline"},
	{"stash banks", 0.28, 0.09, "3 x 16 KB high-associativity SRAM"},
	{"crypto units", 0.30, 0.15, "AES-CTR pipelines, one per column"},
	{"control + NoC", 0.10, 0.03, "FSMs, dependency mesh links"},
}

// scalesWithColumns reports whether a component grows with the PE column
// count.
func scalesWithColumns(name string) bool {
	return name == "PE array + data buffers" || name == "crypto units" || name == "control + NoC"
}

// New returns the model for a controller with the given PE column count.
func New(columns int) Model {
	if columns <= 0 {
		columns = refColumns
	}
	m := Model{Columns: columns}
	scale := float64(columns) / refColumns
	for _, c := range base {
		if scalesWithColumns(c.Name) {
			c.AreaMM *= scale
			c.PowerW *= scale
		}
		m.Components = append(m.Components, c)
	}
	return m
}

// TotalArea returns the controller area in mm² at 28 nm.
func (m Model) TotalArea() float64 {
	var a float64
	for _, c := range m.Components {
		a += c.AreaMM
	}
	return a
}

// TotalPower returns the controller power in W at 1.6 GHz.
func (m Model) TotalPower() float64 {
	var p float64
	for _, c := range m.Components {
		p += c.PowerW
	}
	return p
}

// TechNode is a process generation with an approximate logic-density scale
// factor relative to 28 nm.
type TechNode struct {
	Name      string
	AreaScale float64 // multiply 28 nm area by this
}

// Nodes used by the paper's scaling argument.
var (
	Node28nm   = TechNode{"28nm", 1.0}
	NodeIntel7 = TechNode{"Intel 7 (10ESF)", 0.25} // ~4x density over 28 nm logic+SRAM mix
)

// ScaledArea returns the controller area at the given node.
func (m Model) ScaledArea(n TechNode) float64 { return m.TotalArea() * n.AreaScale }

// AlderLakeDieMM is the 12th-gen (Alder Lake 8+8) die size used for the
// "< 2%" comparison.
const AlderLakeDieMM = 209.0

// DieFraction returns the controller's share of an Alder Lake die after
// scaling to Intel 7.
func (m Model) DieFraction() float64 {
	return m.ScaledArea(NodeIntel7) / AlderLakeDieMM
}

// String renders the Fig 15 table.
func (m Model) String() string {
	s := fmt.Sprintf("Palermo controller @28nm, 1.6GHz, %d PE columns\n", m.Columns)
	s += fmt.Sprintf("%-26s %9s %8s  %s\n", "component", "area mm2", "power W", "notes")
	for _, c := range m.Components {
		s += fmt.Sprintf("%-26s %9.2f %8.2f  %s\n", c.Name, c.AreaMM, c.PowerW, c.Note)
	}
	s += fmt.Sprintf("%-26s %9.2f %8.2f\n", "total", m.TotalArea(), m.TotalPower())
	s += fmt.Sprintf("scaled to %s: %.2f mm2 = %.2f%% of a %0.f mm2 12th-gen die\n",
		NodeIntel7.Name, m.ScaledArea(NodeIntel7), m.DieFraction()*100, AlderLakeDieMM)
	return s
}
