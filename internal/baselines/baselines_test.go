package baselines

import (
	"testing"

	"palermo/internal/oram"
	"palermo/internal/rng"
)

const testLines = 1 << 14

func TestPageORAMCorrectness(t *testing.T) {
	e, err := NewPageORAM(testLines, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	ref := make(map[uint64]uint64)
	for i := 0; i < 1500; i++ {
		pa := r.Uint64n(testLines)
		v := r.Uint64()
		e.Access(pa, true, v)
		ref[pa] = v
	}
	for pa, want := range ref {
		if got := e.Access(pa, false, 0).Val; got != want {
			t.Fatalf("PA %d = %d, want %d", pa, got, want)
		}
	}
	if e.Config().Z != 2 || !e.Config().SiblingReads {
		t.Fatal("PageORAM config wrong")
	}
}

func TestPageORAMSubtreeLayout(t *testing.T) {
	e, err := NewPageORAM(testLines, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Space(0).Geo.PackDepth == 0 {
		t.Fatal("PageORAM must use the page-aware subtree layout")
	}
}

func TestPrORAMSharedLeafGroups(t *testing.T) {
	e, err := NewPrORAM(testLines, 4, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	e.Access(16, false, 0)
	pm := e.Posmap()
	leaf := pm.Leaf(0, 16)
	for idx := uint64(17); idx < 20; idx++ {
		if pm.Leaf(0, idx) != leaf {
			t.Fatal("prefetch group must share one leaf")
		}
	}
}

func TestPrORAMGroupEntersStash(t *testing.T) {
	e, err := NewPrORAM(testLines, 8, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := e.StashLen(0)
	e.Access(64, false, 0)
	after := e.StashLen(0)
	// The whole 8-line group is prefetched through the stash; most of it
	// cannot be placed back on the old path (new shared leaf), so the net
	// occupancy grows by several tags.
	if after-before < 4 {
		t.Fatalf("stash grew by %d after a pf=8 access, want >= 4", after-before)
	}
}

func TestPrORAMFatTreeDrainsBetter(t *testing.T) {
	run := func(fat bool) int {
		e, err := NewPrORAM(testLines, 8, fat, 1)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(9)
		for i := 0; i < 800; i++ {
			// Streaming trace with the LLC filter effect: one miss per group.
			e.Access((uint64(i)*8)%testLines, false, 0)
			_ = r
		}
		return e.StashMax(0)
	}
	plain, fat := run(false), run(true)
	if fat >= plain {
		t.Fatalf("fat tree stash peak (%d) must be below plain PrORAM (%d)", fat, plain)
	}
}

func TestStashThresholdPolicy(t *testing.T) {
	e, err := NewPrORAM(testLines, 8, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	policy := StashThresholdPolicy(e, 10)
	if policy() {
		t.Fatal("empty stash must not trigger dummies")
	}
	for i := 0; i < 40; i++ {
		e.Access(uint64(i)*8, false, 0)
	}
	if e.StashLen(0) > 10 && !policy() {
		t.Fatal("policy must trigger above threshold")
	}
}

func TestIRORAMBypassesOnReuse(t *testing.T) {
	// Large enough that the posmap trees exceed the tree-top caches and
	// generate real DRAM traffic for the bypass to eliminate.
	e, err := NewIRORAM(1<<22, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	full := e.Access(5, false, 0)
	hit := e.Access(5, false, 0)
	if e.Hits != 1 || e.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", e.Hits, e.Misses)
	}
	// The bypassed access must skip the posmap levels entirely.
	if len(hit.Levels[1].Phases) != 0 || len(hit.Levels[2].Phases) != 0 {
		t.Fatal("bypass must not touch posmap trees")
	}
	if hit.Reads() >= full.Reads() {
		t.Fatalf("bypass reads %d must be below full access %d", hit.Reads(), full.Reads())
	}
}

func TestIRORAMTableEviction(t *testing.T) {
	e, err := NewIRORAM(testLines, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for pa := uint64(0); pa < 8; pa++ {
		e.Access(pa*64, false, 0) // distinct groups
	}
	// Table holds 4 entries; the first group must have been evicted.
	e.Hits, e.Misses = 0, 0
	e.Access(0, false, 0)
	if e.Hits != 0 || e.Misses != 1 {
		t.Fatal("evicted entry must miss the table")
	}
}

func TestIRORAMCorrectness(t *testing.T) {
	e, err := NewIRORAM(testLines, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	ref := make(map[uint64]uint64)
	for i := 0; i < 1500; i++ {
		pa := r.Uint64n(testLines / 8) // force reuse so bypasses happen
		v := r.Uint64()
		e.Access(pa, true, v)
		ref[pa] = v
	}
	if e.Hits == 0 {
		t.Fatal("reuse trace produced no bypasses")
	}
	for pa, want := range ref {
		if got := e.Access(pa, false, 0).Val; got != want {
			t.Fatalf("PA %d = %d, want %d", pa, got, want)
		}
	}
}

func TestIRORAMImplementsEngine(t *testing.T) {
	var _ oram.Engine = (*IRORAM)(nil)
	e, _ := NewIRORAM(testLines, 16, 1)
	if e.Levels() != 3 {
		t.Fatal("levels")
	}
	e.SampleStashes()
	if len(e.StashSamples(0)) != 1 {
		t.Fatal("stash sampling not delegated")
	}
	if _, err := NewIRORAM(testLines, 0, 1); err == nil {
		t.Fatal("zero table must error")
	}
}
