// Package baselines assembles the state-of-the-art ORAM designs the paper
// compares Palermo against (§VII-B), each as a configuration of the
// PathORAM/RingORAM functional engines plus the design's distinguishing
// policy:
//
//   - PageORAM  — PathORAM with sibling-node accesses and smaller buckets,
//     trading extra row-buffer-friendly traffic for residency options.
//   - IR-ORAM   — PathORAM with on-chip tracking of recently resolved
//     positions (tree-top PosMap bypass) and mid-tree bucket shrinking.
//   - PrORAM    — PathORAM that maps groups of consecutive physical
//     addresses to one leaf so a single path read prefetches the group;
//     the forced mapping pressures the stash, answered by background
//     dummy evictions beyond a threshold.
//   - LAORAM    — PrORAM over a fat tree (larger buckets toward the root)
//     to relieve that stash pressure.
package baselines

import (
	"fmt"

	"palermo/internal/oram"
)

// NewPageORAM builds the PageORAM engine: sibling reads with Z=2 buckets
// (the reduced bucket size its sibling residency enables).
func NewPageORAM(nLines uint64, seed uint64) (*oram.Path, error) {
	cfg := oram.DefaultPathConfig()
	cfg.NLines = nLines
	cfg.Seed = seed
	cfg.Z = 2
	cfg.SiblingReads = true
	cfg.PackDepth = 2 // page-aware layout: 2-level subtrees share DRAM rows
	return oram.NewPath(cfg)
}

// NewPrORAM builds the PrORAM engine with the given prefetch length. With
// fatTree the LAORAM fat-tree shape (2x root scale) is applied.
func NewPrORAM(nLines uint64, prefetch int, fatTree bool, seed uint64) (*oram.Path, error) {
	cfg := oram.DefaultPathConfig()
	cfg.NLines = nLines
	cfg.Seed = seed
	cfg.GroupLeafLines = prefetch
	if fatTree {
		cfg.FatRootScale = 2
	}
	return oram.NewPath(cfg)
}

// StashThresholdPolicy returns a DummyPolicy that injects a background
// eviction whenever the data-level stash holds more than threshold tags
// (PrORAM's background eviction; the paper's Fig 4 uses a 1024-entry stash).
func StashThresholdPolicy(e oram.Engine, threshold int) func() bool {
	return func() bool { return e.StashLen(0) > threshold }
}

// IRORAM wraps PathORAM with IR-ORAM's two reductions: a bounded on-chip
// table of recently resolved block positions that bypasses the recursive
// posmap ORAMs on a hit, and shrunken mid-tree buckets.
type IRORAM struct {
	path *oram.Path

	capacity int
	order    []uint64 // FIFO of resident group indices
	resident map[uint64]bool

	Hits, Misses uint64
}

// NewIRORAM builds the engine. tableEntries bounds the on-chip position
// table (the paper sizes it by the tree-top cache provisioning).
func NewIRORAM(nLines uint64, tableEntries int, seed uint64) (*IRORAM, error) {
	if tableEntries <= 0 {
		return nil, fmt.Errorf("baselines: IR-ORAM table must have entries")
	}
	cfg := oram.DefaultPathConfig()
	cfg.NLines = nLines
	cfg.Seed = seed
	cfg.MidShrink = 2
	p, err := oram.NewPath(cfg)
	if err != nil {
		return nil, err
	}
	return &IRORAM{path: p, capacity: tableEntries, resident: make(map[uint64]bool)}, nil
}

// Path exposes the wrapped engine.
func (e *IRORAM) Path() *oram.Path { return e.path }

func (e *IRORAM) touch(idx uint64) {
	if e.resident[idx] {
		return
	}
	e.resident[idx] = true
	e.order = append(e.order, idx)
	for len(e.resident) > e.capacity {
		old := e.order[0]
		e.order = e.order[1:]
		delete(e.resident, old)
	}
}

// Access implements oram.Engine: table hits skip the posmap ORAM levels.
func (e *IRORAM) Access(pa uint64, write bool, val uint64) *oram.Plan {
	idx := e.path.GroupIndex(pa)
	if e.resident[idx] {
		e.Hits++
		e.touch(idx)
		return e.path.AccessBypass(pa, write, val)
	}
	e.Misses++
	e.touch(idx)
	return e.path.Access(pa, write, val)
}

// DummyAccess implements oram.Engine.
func (e *IRORAM) DummyAccess() *oram.Plan { return e.path.DummyAccess() }

// Levels implements oram.Engine.
func (e *IRORAM) Levels() int { return e.path.Levels() }

// StashLen implements oram.Engine.
func (e *IRORAM) StashLen(level int) int { return e.path.StashLen(level) }

// StashMax implements oram.Engine.
func (e *IRORAM) StashMax(level int) int { return e.path.StashMax(level) }

// SampleStashes implements oram.Engine.
func (e *IRORAM) SampleStashes() { e.path.SampleStashes() }

// StashSamples implements oram.Engine.
func (e *IRORAM) StashSamples(level int) []int { return e.path.StashSamples(level) }

// StashOverflows implements oram.Engine.
func (e *IRORAM) StashOverflows(level int) uint64 { return e.path.StashOverflows(level) }

// ResetPeaks implements oram.Engine.
func (e *IRORAM) ResetPeaks() { e.path.ResetPeaks() }

// Ensure interface satisfaction.
var _ oram.Engine = (*IRORAM)(nil)
