package shard

import (
	"runtime"
	"sync"

	"palermo/internal/crypt"
)

// This file is the parallel seal/unseal pool hung off the staged
// executor (DESIGN.md §12): a bounded set of workers that run ONLY the
// pure ciphertext↔plaintext transforms — crypt.Sealer.SealAt and
// crypt.Sealer.Open over the sealer's immutable AES block — while every
// piece of protocol state stays exactly where the determinism contract
// (§5) confines it. The owner goroutine still assigns sealing epochs
// (the counter bump), runs every engine transition and RNG draw, and
// bumps every counter, in submission order; the I/O goroutine still
// issues every backend operation in queue order. A worker never sees a
// leaf, a position map, or an epoch it did not receive pre-assigned, so
// leaf traces, counters, ciphertexts, and checkpoint bytes are
// bit-identical at every worker count — the differential suite pins
// CryptoWorkers ∈ {0, 1, 4} against the serial executor.

// cryptoJob is one pre-assigned transform in flight: a seal (plaintext
// in, ciphertext out) or an open (ciphertext in, plaintext out) at a
// fixed (addr, epoch) IV. The in slice is owned by the job; done closes
// after out/err are set.
type cryptoJob struct {
	seal  bool
	addr  uint64
	epoch uint64
	in    []byte
	out   []byte
	err   error
	done  chan struct{}
}

// cryptoPool runs the workers. Submissions come from the owner
// goroutine (seals, at BeginWrite) and the I/O goroutine (speculative
// opens, as fetches complete); workers never block with a result, so
// submission can never deadlock against completion.
type cryptoPool struct {
	sealer *crypt.Sealer
	jobs   chan *cryptoJob
	wg     sync.WaitGroup
}

func newCryptoPool(sealer *crypt.Sealer, workers int) *cryptoPool {
	p := &cryptoPool{sealer: sealer, jobs: make(chan *cryptoJob, 4*workers)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

func (p *cryptoPool) run() {
	defer p.wg.Done()
	for j := range p.jobs {
		if j.seal {
			j.out, j.err = p.sealer.SealAt(j.addr, j.epoch, j.in)
		} else {
			j.out, j.err = p.sealer.Open(j.addr, j.epoch, j.in)
		}
		close(j.done)
	}
}

func (p *cryptoPool) submit(seal bool, addr, epoch uint64, in []byte) *cryptoJob {
	j := &cryptoJob{seal: seal, addr: addr, epoch: epoch, in: in, done: make(chan struct{})}
	p.jobs <- j
	return j
}

// close stops the workers. Callers must have resolved every submitted
// job first (the shard's Close barrier guarantees quiescence).
func (p *cryptoPool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// EnableCryptoPool offloads seal/unseal transforms to workers bounded
// goroutines. Requires EnablePipeline first (the pool hangs off the
// staged executor's queues); call once, before the shard starts
// serving. workers is capped at GOMAXPROCS; workers <= 0 keeps the
// inline crypto path.
func (s *Shard) EnableCryptoPool(workers int) {
	if s.ioq == nil || s.cpool != nil || workers <= 0 {
		return
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	s.cpool = newCryptoPool(s.sealer, workers)
}

// CryptoPooled reports whether the parallel seal/unseal pool is active.
func (s *Shard) CryptoPooled() bool { return s.cpool != nil }
