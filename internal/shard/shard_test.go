package shard

import (
	"bytes"
	"testing"

	"palermo/internal/backend/wal"
	"palermo/internal/rng"
)

var testKey = []byte("shard-test-key16")

func TestRouterPartition(t *testing.T) {
	const blocks, shards = 1000, 7
	r, err := NewRouter(blocks, shards)
	if err != nil {
		t.Fatal(err)
	}
	// Every id routes to exactly one in-range (shard, local) cell, Global
	// inverts Route, and per-shard capacities sum to the total.
	seen := make(map[[2]uint64]bool)
	for id := uint64(0); id < blocks; id++ {
		s, local := r.Route(id)
		if s < 0 || s >= shards {
			t.Fatalf("id %d routed to shard %d", id, s)
		}
		if local >= r.ShardBlocks(s) {
			t.Fatalf("id %d local %d exceeds shard %d capacity %d", id, local, s, r.ShardBlocks(s))
		}
		if g := r.Global(s, local); g != id {
			t.Fatalf("Global(Route(%d)) = %d", id, g)
		}
		cell := [2]uint64{uint64(s), local}
		if seen[cell] {
			t.Fatalf("cell %v hit twice", cell)
		}
		seen[cell] = true
	}
	var total uint64
	for s := 0; s < shards; s++ {
		total += r.ShardBlocks(s)
	}
	if total != blocks {
		t.Fatalf("shard capacities sum to %d, want %d", total, blocks)
	}
}

// TestRouterGlobalRouteRoundTrip property-tests the routing bijection:
// Global(Route(id)) == id for random ids over random (blocks, shards)
// configurations, including huge sparse id spaces.
func TestRouterGlobalRouteRoundTrip(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 200; trial++ {
		blocks := 1 + r.Uint64n(1<<40)
		shards := 1 + r.Intn(MaxTestShards)
		if uint64(shards) > blocks {
			shards = int(blocks)
		}
		rt, err := NewRouter(blocks, shards)
		if err != nil {
			t.Fatalf("NewRouter(%d, %d): %v", blocks, shards, err)
		}
		for i := 0; i < 64; i++ {
			id := r.Uint64n(blocks)
			s, local := rt.Route(id)
			if g := rt.Global(s, local); g != id {
				t.Fatalf("blocks=%d shards=%d: Global(Route(%d)) = %d", blocks, shards, id, g)
			}
			if local >= rt.ShardBlocks(s) {
				t.Fatalf("blocks=%d shards=%d: id %d local %d >= ShardBlocks(%d)=%d",
					blocks, shards, id, local, s, rt.ShardBlocks(s))
			}
		}
	}
}

// MaxTestShards bounds the property-test shard counts (mirrors the public
// MaxShards cap without importing the root package).
const MaxTestShards = 1024

// TestRouterShardBlocksSum property-tests capacity partitioning:
// ShardBlocks sums to Blocks() for every shard count from 1 up to and
// including the shards == blocks edge, over assorted capacities.
func TestRouterShardBlocksSum(t *testing.T) {
	r := rng.New(7)
	capacities := []uint64{1, 2, 3, 17, 64, 1000, 1 << 20}
	for trial := 0; trial < 50; trial++ {
		capacities = append(capacities, 1+r.Uint64n(1<<22))
	}
	for _, blocks := range capacities {
		shardCounts := []uint64{1, 2, blocks / 2, blocks - 1, blocks}
		for _, sc := range shardCounts {
			if sc < 1 || sc > blocks || sc > MaxTestShards {
				continue
			}
			rt, err := NewRouter(blocks, int(sc))
			if err != nil {
				t.Fatalf("NewRouter(%d, %d): %v", blocks, sc, err)
			}
			var total uint64
			for s := 0; s < int(sc); s++ {
				n := rt.ShardBlocks(s)
				if n == 0 {
					t.Fatalf("blocks=%d shards=%d: shard %d is empty", blocks, sc, s)
				}
				if sc == blocks && n != 1 {
					t.Fatalf("blocks=%d shards=%d: shard %d holds %d blocks, want exactly 1", blocks, sc, s, n)
				}
				total += n
			}
			if total != rt.Blocks() {
				t.Fatalf("blocks=%d shards=%d: ShardBlocks sums to %d, want %d", blocks, sc, total, rt.Blocks())
			}
		}
	}
}

func TestRouterRejects(t *testing.T) {
	if _, err := NewRouter(0, 1); err == nil {
		t.Fatal("zero capacity must error")
	}
	if _, err := NewRouter(10, 0); err == nil {
		t.Fatal("zero shards must error")
	}
	if _, err := NewRouter(3, 4); err == nil {
		t.Fatal("more shards than blocks must error")
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for base := uint64(1); base <= 4; base++ {
		for i := 0; i < 16; i++ {
			s := DeriveSeed(base, i)
			if s == 0 {
				t.Fatal("derived seed must be non-zero")
			}
			if seen[s] {
				t.Fatalf("seed collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
}

func TestShardRoundTrip(t *testing.T) {
	sh, err := New(1, 4, 1<<12, testKey, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, BlockBytes)
	if err := sh.Write(9, data); err != nil {
		t.Fatal(err)
	}
	got, err := sh.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip failed")
	}
	// Unwritten blocks read as zeros after a full-protocol access.
	zero, err := sh.Read(10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zero, make([]byte, BlockBytes)) {
		t.Fatal("unwritten block must read as zeros")
	}
	// Errors: out-of-range and short blocks.
	if err := sh.Write(1<<12, data); err == nil {
		t.Fatal("out-of-range write must error")
	}
	if _, err := sh.Read(1 << 12); err == nil {
		t.Fatal("out-of-range read must error")
	}
	if err := sh.Write(0, []byte("short")); err == nil {
		t.Fatal("short block must error")
	}
	c := sh.Snapshot()
	if c.Reads != 2 || c.Writes != 1 || c.DRAMReads == 0 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestShardDeterministicReplay(t *testing.T) {
	// The same op subsequence into two identically-seeded shards exposes
	// the same leaf sequence — the per-shard §5 determinism contract the
	// service layer relies on.
	run := func() *Trace {
		sh, err := New(2, 4, 1<<10, testKey, 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		sh.EnableTrace()
		data := bytes.Repeat([]byte{1}, BlockBytes)
		for i := 0; i < 200; i++ {
			local := uint64(i*37) % (1 << 10)
			if i%3 == 0 {
				if err := sh.Write(local, data); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := sh.Read(local); err != nil {
					t.Fatal(err)
				}
			}
		}
		return sh.Trace()
	}
	a, b := run(), run()
	if len(a.Leaves) != len(b.Leaves) || len(a.Leaves) != 200 {
		t.Fatalf("trace lengths %d vs %d", len(a.Leaves), len(b.Leaves))
	}
	for i := range a.Leaves {
		if a.Leaves[i] != b.Leaves[i] || a.Ops[i] != b.Ops[i] {
			t.Fatalf("trace diverged at op %d", i)
		}
	}
}

// TestShardCheckpointResumesExactly is the strongest restore property: a
// shard checkpointed mid-sequence and reopened from disk continues with
// the exact leaf trace an uninterrupted shard produces — engine RNG,
// posmap, stash, bucket counters, and eviction cadence all resume
// bit-exactly.
func TestShardCheckpointResumesExactly(t *testing.T) {
	const total, cut = 200, 120
	data := bytes.Repeat([]byte{9}, BlockBytes)
	step := func(sh *Shard, i int) {
		local := uint64(i*13) % (1 << 10)
		if i%3 != 2 {
			if err := sh.Write(local, data); err != nil {
				t.Fatal(err)
			}
		} else if _, err := sh.Read(local); err != nil {
			t.Fatal(err)
		}
	}

	// Uninterrupted reference run.
	ref, err := New(0, 1, 1<<10, testKey, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref.EnableTrace()
	for i := 0; i < total; i++ {
		step(ref, i)
	}

	// Durable run: cut at op `cut`, Close (checkpoint), reopen, continue.
	dir := t.TempDir()
	open := func() *Shard {
		be, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sh, err := New(0, 1, 1<<10, testKey, 5, be)
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	sh := open()
	for i := 0; i < cut; i++ {
		step(sh, i)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	sh = open()
	sh.EnableTrace()
	for i := cut; i < total; i++ {
		step(sh, i)
	}
	got := sh.Trace().Leaves
	wantLeaves := ref.Trace().Leaves[cut:]
	if len(got) != len(wantLeaves) {
		t.Fatalf("resumed trace has %d leaves, want %d", len(got), len(wantLeaves))
	}
	for i := range got {
		if got[i] != wantLeaves[i] {
			t.Fatalf("leaf trace diverged at post-restore op %d: %d != %d", i, got[i], wantLeaves[i])
		}
	}
	c := sh.Snapshot()
	if want := ref.Snapshot(); c != want {
		t.Fatalf("resumed counters %+v, want %+v", c, want)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestShardSeedsDecorrelated(t *testing.T) {
	// Identical op sequences on different shard indices must expose
	// different leaf sequences (private RNG streams).
	trace := func(index int) []uint64 {
		sh, err := New(index, 4, 1<<10, testKey, DeriveSeed(1, index), nil)
		if err != nil {
			t.Fatal(err)
		}
		sh.EnableTrace()
		for i := 0; i < 50; i++ {
			if _, err := sh.Read(uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		return sh.Trace().Leaves
	}
	a, b := trace(0), trace(3)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different shards produced identical leaf sequences")
	}
}
