package shard

import (
	"fmt"

	"palermo/internal/backend"
)

// This file is the shard's half of the pipelined executor (DESIGN.md §9):
// every access splits into an engine stage — seal, oram.PlanAccess,
// oram.Apply, counters, all on the shard's owner goroutine in submission
// order, exactly the serial operation order — and an I/O stage, the
// access's backend block vector, executed by a dedicated per-shard I/O
// goroutine so it is in flight while the owner runs the next access's
// engine stage. Consecutive queued puts coalesce into one
// backend.PutMany, so a burst of writes reaches a durable backend as
// CRC-framed record batches committed per access, not per block.
//
// Concurrency discipline: the ORAM engine, sealer, and counters stay
// confined to the owner goroutine (the engine-per-goroutine rule); once
// EnablePipeline is called, the backend is confined to the I/O goroutine
// and every touch — gets, puts, checkpoints, Len, Close — flows through
// the ordered request queue. Determinism is unchanged because the engine
// stage order is the serial order and the queue preserves backend
// operation order; only wall-clock overlap is new.

// ioKind selects an I/O-stage operation.
type ioKind uint8

const (
	ioPut ioKind = iota + 1
	ioGet
	ioPrefetch
	ioPrefetchSet // multi-line prefetch: one vectored GetMany, results to pfq in order
	ioLen
	ioCheckpoint
	ioClose
	ioSnapshot // migration phase 1: collect every stored sealed block (migrate.go)
)

// ioReq is one operation of the shard's I/O stage.
type ioReq struct {
	kind      ioKind
	put       backend.PutOp // ioPut
	seal      *cryptoJob    // ioPut under the crypto pool: in-flight ciphertext (crypto.go)
	local     uint64        // ioGet / ioPrefetch
	global    uint64        // ioGet / ioPrefetch: public id, the unseal IV address
	locals    []uint64      // ioPrefetchSet: the announced fetch set, in issue order
	globals   []uint64      // ioPrefetchSet: matching public ids
	meta      []byte        // ioCheckpoint
	metaEpoch uint64
	done      chan ioRes // barrier ops only; nil routes the result to the shard's FIFO results channel
}

// ioRes resolves an ioReq.
type ioRes struct {
	sb   backend.Sealed // ioGet
	ok   bool
	job  *cryptoJob    // speculative unseal in flight (crypto pool only)
	n    int           // ioLen
	snap []SealedBlock // ioSnapshot
	err  error
}

// EnablePipeline switches the shard to staged execution with the given
// pipeline depth: the I/O goroutine starts and owns the backend from here
// on. Call once, before the shard starts serving, with depth > 1 (lower
// depths keep the serial executor, which is the depth-1 pipeline).
func (s *Shard) EnablePipeline(depth int) {
	if depth <= 1 || s.ioq != nil {
		return
	}
	s.vbe = backend.Vector(s.be)
	s.ioq = make(chan ioReq, depth)
	// Access results resolve through one FIFO channel: Wait order equals
	// Begin order (the executor discipline), so per-access channels — an
	// allocation and a sync object per op — are unnecessary. Capacity
	// covers every outstanding access plus slack, so the I/O goroutine
	// never blocks publishing a result.
	s.resq = make(chan ioRes, depth+2)
	s.ioDone = make(chan struct{})
	go s.ioLoop()
}

// Pipelined reports whether staged execution is enabled.
func (s *Shard) Pipelined() bool { return s.ioq != nil }

// pfIssue is one planned prefetch awaiting its result: the shard-local id
// it fetched and the block's write-version at issue time (staleness guard).
type pfIssue struct {
	local uint64
	ver   uint64
}

// pfSlot is a prefetched payload drained off pfq but not yet consumed.
type pfSlot struct {
	res ioRes
	ver uint64
}

// EnablePrefetch turns on the Palermo-style prefetch planner hooks: the
// serving layer may announce upcoming reads with PrefetchRead, and the I/O
// goroutine fetches their sealed payloads ahead of the accesses' engine
// stages. window bounds how many prefetches may be outstanding (issued but
// not yet consumed by a BeginRead); past it PrefetchRead declines rather
// than blocks. Requires EnablePipeline first; call before serving starts.
//
// Determinism: a prefetch moves only backend Get traffic earlier. The
// engine transition (RNG draws, stash/tree mutation, leaf selection) still
// happens in Apply, on the owner goroutine, in submission order — so leaf
// traces, payloads, and checkpoints are bit-identical with prefetch on or
// off at any window (the differential suite pins this).
func (s *Shard) EnablePrefetch(window int) {
	if s.ioq == nil || s.pfq != nil || window < 1 {
		return
	}
	s.pfWindow = window
	s.pfq = make(chan ioRes, window)
	s.pfParked = make(map[uint64][]pfSlot)
	s.pfPending = make(map[uint64]int)
	s.pfVer = make(map[uint64]uint64)
}

// pfAdmit does the owner-side bookkeeping for one prefetch line: window
// check, per-line pending count, issue-order queue entry with the line's
// write-version at issue time. Reports whether the line was admitted.
func (s *Shard) pfAdmit(local uint64) bool {
	if local >= s.blocks || s.pfOutstanding >= s.pfWindow {
		return false
	}
	s.pfOutstanding++
	s.pfPending[local]++
	s.pfIssuedQ = append(s.pfIssuedQ, pfIssue{local: local, ver: s.pfVer[local]})
	s.pfIssuedN++
	return true
}

// PrefetchRead asks the I/O stage to fetch local's sealed payload ahead of
// the read access the caller is about to submit. Returns whether a fetch
// was issued (declined when the planner is off, the window is full, or the
// shard is wedged). Owner goroutine only.
//
// Every issued prefetch must eventually be claimed — by a BeginRead of the
// same local, or by DropPrefetch when the serve planner learns the read
// will never materialize (an overload shed, a dedup against an in-flight
// pipeline entry, an unread speculative group line). Either claim frees
// the line's window slot.
func (s *Shard) PrefetchRead(local uint64) bool {
	if s.pfq == nil || s.closed || s.ioErr != nil || !s.pfAdmit(local) {
		return false
	}
	s.ioq <- ioReq{kind: ioPrefetch, local: local, global: s.Global(local)}
	return true
}

// PrefetchSet announces a multi-line fetch set in one call: posmap-group
// siblings and deep-planned data lines ride one I/O request, which the I/O
// goroutine serves with a single vectored GetMany (consecutive locals
// coalesce into one pread on the blockfile engine). Lines are admitted in
// order until the window fills or an out-of-range id appears; the return
// value n means exactly locals[:n] were issued — the caller owns claiming
// each (BeginRead or DropPrefetch), the rest were declined. Owner
// goroutine only.
func (s *Shard) PrefetchSet(locals []uint64) int {
	if s.pfq == nil || s.closed || s.ioErr != nil {
		return 0
	}
	n := 0
	for _, local := range locals {
		if !s.pfAdmit(local) {
			break
		}
		n++
	}
	switch {
	case n == 0:
	case n == 1:
		s.ioq <- ioReq{kind: ioPrefetch, local: locals[0], global: s.Global(locals[0])}
	default:
		ls := append([]uint64(nil), locals[:n]...)
		gs := make([]uint64, n)
		for i, l := range ls {
			gs[i] = s.Global(l)
		}
		s.ioq <- ioReq{kind: ioPrefetchSet, locals: ls, globals: gs}
	}
	return n
}

// DropPrefetch claims and discards the oldest outstanding prefetch of
// local — the planner's release valve for an announce whose read never
// materialized. The discarded fetch counts as stale (it moved backend
// traffic nobody consumed) and its window slot frees. Blocks briefly when
// the line's payload has not yet arrived; bounded, because the I/O
// goroutine is already fetching it. Owner goroutine only. Reports whether
// an outstanding prefetch existed.
func (s *Shard) DropPrefetch(local uint64) bool {
	if s.pfq == nil || s.pfPending[local] == 0 {
		return false
	}
	s.takePrefetch(local, true)
	return true
}

// takePrefetch claims the oldest outstanding prefetch of local, draining
// pfq in issue order and parking other locals' results on the way. A result
// whose version predates a later write to the block is stale: discarded and
// counted, and the caller falls back to a demand fetch. With drop set the
// claim is a discard (DropPrefetch): the result is never delivered, so it
// counts as stale regardless of freshness. Returns (result, true) only for
// a fresh, non-dropped hit.
func (s *Shard) takePrefetch(local uint64, drop bool) (ioRes, bool) {
	if s.pfq == nil || s.pfPending[local] == 0 {
		return ioRes{}, false
	}
	for {
		if q := s.pfParked[local]; len(q) > 0 {
			sl := q[0]
			if len(q) == 1 {
				delete(s.pfParked, local)
			} else {
				s.pfParked[local] = q[1:]
			}
			return s.claimPrefetch(local, sl, drop)
		}
		iss := s.pfIssuedQ[0]
		s.pfIssuedQ = s.pfIssuedQ[1:]
		res := <-s.pfq
		if iss.local == local {
			return s.claimPrefetch(local, pfSlot{res: res, ver: iss.ver}, drop)
		}
		s.pfParked[iss.local] = append(s.pfParked[iss.local], pfSlot{res: res, ver: iss.ver})
	}
}

// claimPrefetch consumes one outstanding prefetch of local and applies the
// staleness check: fresh results are used, stale ones (a write to the block
// landed after the fetch was issued) are discarded so the caller demand-
// fetches the current payload. A drop claim frees the slot and counts the
// fetch as stale without delivering it.
func (s *Shard) claimPrefetch(local uint64, sl pfSlot, drop bool) (ioRes, bool) {
	s.pfOutstanding--
	fresh := sl.ver == s.pfVer[local]
	if s.pfPending[local]--; s.pfPending[local] == 0 {
		delete(s.pfPending, local)
		delete(s.pfVer, local)
	}
	if drop || !fresh {
		s.pfStaleN++
		return ioRes{}, false
	}
	s.pfUsedN++
	return sl.res, true
}

// PosmapGroup appends the shard-local fetch ids of local's level-1
// position-map group: the contiguous sibling run whose leaf assignments
// share the posmap line an access to local reads — the engine's
// PrORAM-style group helper surfaced at the shard boundary so the serve
// planner can announce the whole recursive hierarchy's backend lines.
// Pure (integer arithmetic only, no RNG, no engine state), so callable at
// announce time without perturbing determinism. Fetch ids equal shard
// locals because the shard pins DataSlotLines == 1.
func (s *Shard) PosmapGroup(local uint64, dst []uint64) []uint64 {
	if local >= s.blocks {
		return dst
	}
	return s.engine.PosmapGroup(local, 1, dst)
}

// ioLoop is the I/O stage: execute queued requests in order, coalescing
// consecutive puts into one vector so a durable backend frames and
// commits them as a batch. Exits on ioClose (after closing the backend)
// or when the queue is closed.
func (s *Shard) ioLoop() {
	defer close(s.ioDone)
	var puts []backend.PutOp
	var seals []*cryptoJob
	flush := func() {
		if len(puts) == 0 {
			return
		}
		// Under the crypto pool, coalescing bought the workers exactly the
		// pipeline's slack: every seal issued while earlier blocks were in
		// flight resolves here, before the vector reaches the backend.
		err := resolveSeals(puts, seals)
		if err == nil {
			err = s.vbe.PutMany(puts)
		}
		for range puts {
			s.resq <- ioRes{err: err}
		}
		puts, seals = puts[:0], seals[:0]
	}
	for req := range s.ioq {
		if req.kind != ioPut {
			if s.ioExec(req) {
				return
			}
			continue
		}
		puts, seals = append(puts, req.put), append(seals, req.seal)
	coalesce:
		for {
			select {
			case nxt, open := <-s.ioq:
				if !open {
					flush()
					return
				}
				if nxt.kind == ioPut {
					puts, seals = append(puts, nxt.put), append(seals, nxt.seal)
					continue
				}
				flush()
				if s.ioExec(nxt) {
					return
				}
				break coalesce
			default:
				flush()
				break coalesce
			}
		}
	}
	flush()
}

// resolveSeals waits for each put's in-flight seal and installs the
// ciphertext. Job order is put order, and epochs were pre-assigned on
// the owner, so the vector the backend sees is byte-identical to the
// inline-crypto executor's.
func resolveSeals(puts []backend.PutOp, seals []*cryptoJob) error {
	for i, j := range seals {
		if j == nil {
			continue
		}
		<-j.done
		if j.err != nil {
			return j.err
		}
		puts[i].Sb.Ct = j.out
	}
	return nil
}

// speculate hands a fetched sealed block to the crypto pool for unseal
// while it rides the result queue back to the owner: the slot header
// names the epoch, the request names the IV address. If the owner's
// epoch-consistency check rejects the block, the job's output is simply
// never read.
func (s *Shard) speculate(req ioReq, res *ioRes) {
	if s.cpool != nil && res.ok {
		res.job = s.cpool.submit(false, req.global, res.sb.Epoch, res.sb.Ct)
	}
}

// ioExec runs one non-put request on the I/O goroutine; reports whether
// the loop should exit (ioClose).
func (s *Shard) ioExec(req ioReq) (stop bool) {
	switch req.kind {
	case ioGet:
		var res ioRes
		res.sb, res.ok = s.vbe.Get(req.local)
		s.speculate(req, &res)
		s.resq <- res
	case ioPrefetch:
		// Prefetch results resolve through their own channel so they never
		// interleave with the access FIFO (resq's Wait-order discipline).
		// pfq's capacity covers the issue window, so this send never blocks.
		var res ioRes
		res.sb, res.ok = s.vbe.Get(req.local)
		s.speculate(req, &res)
		s.pfq <- res
	case ioPrefetchSet:
		// One vectored fetch for the whole announced set (consecutive locals
		// become a single pread on the blockfile engine), then the results
		// ride pfq individually in issue order — exactly what pfIssuedQ on
		// the owner side expects. The window bound covers the whole set, so
		// none of these sends block.
		n := len(req.locals)
		out := make([]backend.Sealed, n)
		oks := make([]bool, n)
		s.vbe.GetMany(req.locals, out, oks)
		for i := range req.locals {
			res := ioRes{sb: out[i], ok: oks[i]}
			s.speculate(ioReq{global: req.globals[i]}, &res)
			s.pfq <- res
		}
	case ioLen:
		req.done <- ioRes{n: s.vbe.Len()}
	case ioCheckpoint:
		req.done <- ioRes{err: s.vbe.Checkpoint(req.meta, req.metaEpoch)}
	case ioClose:
		req.done <- ioRes{err: s.vbe.Close()}
		return true
	case ioSnapshot:
		// Collected on the I/O goroutine — the backend's owner under the
		// pipeline — so the snapshot is consistent with every put queued
		// before this barrier (migrate.go, migration phase 1).
		req.done <- ioRes{snap: s.snapshotBlocks(s.vbe.Get)}
	}
	return false
}

// ioRound runs one I/O request as a barrier: every request queued before
// it (including coalesced puts) has executed when it returns.
func (s *Shard) ioRound(req ioReq) ioRes {
	req.done = make(chan ioRes, 1)
	s.ioq <- req
	return <-req.done
}

// beLen returns the backend's stored-block count through whichever
// executor owns the backend. Under the pipeline this is a barrier, so the
// count is exactly the serial executor's value at the same point of the
// operation stream (the compaction trigger stays deterministic at any
// depth).
func (s *Shard) beLen() int {
	if s.ioq != nil {
		return s.ioRound(ioReq{kind: ioLen}).n
	}
	return s.be.Len()
}

// Access is one staged oblivious operation between its engine stage
// (done when Begin returns) and its I/O completion. Wait must be called
// on the shard's owner goroutine, exactly once per access, in Begin order
// (the FIFO completion discipline both the serve worker and the
// synchronous Store follow), with at most the pipeline depth of accesses
// outstanding.
type Access struct {
	s      *Shard
	write  bool
	global uint64
	expect uint64 // reads: the epoch the engine transition predicts
	seq    uint64 // Begin order; Wait asserts FIFO discipline
	res    ioRes
	ready  bool
}

// BeginWrite runs the engine stage of an oblivious write — seal, the
// Plan/Apply engine transition, counters — and launches its backend store
// vector. The returned Access resolves when the record batch has been
// accepted by the backend (durability follows the backend's group-commit
// policy, as in the serial executor).
func (s *Shard) BeginWrite(local uint64, data []byte) (*Access, error) {
	if local >= s.blocks {
		return nil, fmt.Errorf("palermo: internal: block %d outside shard %d capacity %d", s.Global(local), s.index, s.blocks)
	}
	if len(data) != BlockBytes {
		return nil, fmt.Errorf("palermo: block must be %d bytes, got %d", BlockBytes, len(data))
	}
	if s.closed {
		return nil, fmt.Errorf("palermo: shard %d is closed", s.index)
	}
	if s.ioErr != nil {
		return nil, s.ioErr
	}
	global := s.Global(local)
	a := &Access{s: s, write: true, global: global}
	var epoch uint64
	if s.cpool != nil && !s.teeOn {
		// Crypto-pool path: the owner assigns the epoch — the counter is
		// owner-confined state, so the epoch stream is identical at every
		// worker count — and hands the pure transform to a worker; the I/O
		// stage installs the ciphertext before the vector reaches the
		// backend. A live migration tee needs the ciphertext at Begin, so
		// while teeOn the write falls back to the inline path below.
		epoch = s.sealer.Assign()
		job := s.cpool.submit(true, global, epoch, append([]byte(nil), data...))
		if s.pfq != nil && s.pfPending[local] > 0 {
			s.pfVer[local]++
		}
		s.beginSeq++
		a.seq = s.beginSeq
		s.ioq <- ioReq{kind: ioPut, put: backend.PutOp{Local: local, Sb: backend.Sealed{Epoch: epoch}}, seal: job}
	} else {
		ct, e, err := s.sealer.Seal(global, data)
		if err != nil {
			return nil, err
		}
		epoch = e
		if s.ioq != nil {
			if s.pfq != nil && s.pfPending[local] > 0 {
				// A prefetch of this block is in flight or parked; this write
				// supersedes its payload, so invalidate it (the consuming read
				// will discard it as stale and demand-fetch the fresh epoch).
				s.pfVer[local]++
			}
			s.beginSeq++
			a.seq = s.beginSeq
			s.ioq <- ioReq{kind: ioPut, put: backend.PutOp{Local: local, Sb: backend.Sealed{Ct: ct, Epoch: epoch}}}
			s.teeWrite(local, ct, epoch)
		} else {
			if err := s.be.Put(local, backend.Sealed{Ct: ct, Epoch: epoch}); err != nil {
				return nil, fmt.Errorf("palermo: backend write of block %d: %w", global, err)
			}
			s.teeWrite(local, ct, epoch)
			a.ready = true
		}
	}
	st := s.engine.PlanAccess(local, true, epoch)
	plan := st.Apply()
	s.writes++
	s.trafficR += uint64(plan.Reads())
	s.trafficW += uint64(plan.Writes())
	s.record(local, true, plan.DataLeaf)
	if err := s.maybeCheckpoint(global); err != nil {
		if s.ioq == nil {
			return nil, err
		}
		if s.beginSeq-s.waitSeq == 1 {
			// Only this access is outstanding: its completion slot can be
			// consumed in FIFO order, so the checkpoint failure surfaces on
			// this write exactly like the serial executor's.
			a.Wait()
			return nil, err
		}
		// Earlier accesses are still in flight (their completion slots are
		// owned by the caller), so consuming ours here would mis-pair every
		// outstanding access with the wrong I/O result. Wedge the shard
		// instead: this write is complete, and every later Begin fails
		// fast with the checkpoint error.
		if s.ioErr == nil {
			s.ioErr = err
		}
		return a, nil
	}
	return a, nil
}

// BeginRead runs the engine stage of an oblivious read and launches the
// fetch of the access's planned block vector, which is in flight while
// the engine transition (Apply) executes. Wait returns the plaintext.
func (s *Shard) BeginRead(local uint64) (*Access, error) {
	if local >= s.blocks {
		return nil, fmt.Errorf("palermo: internal: block %d outside shard %d capacity %d", s.Global(local), s.index, s.blocks)
	}
	if s.closed {
		return nil, fmt.Errorf("palermo: shard %d is closed", s.index)
	}
	if s.ioErr != nil {
		return nil, s.ioErr
	}
	a := &Access{s: s, global: s.Global(local)}
	st := s.engine.PlanAccess(local, false, 0)
	if s.ioq != nil {
		var ids [1]uint64
		fetch := st.FetchSet(ids[:0])
		if res, ok := s.takePrefetch(fetch[0], false); ok {
			// The planner already moved this payload: the access resolves
			// immediately and never enters the FIFO completion queue.
			a.res = res
			a.ready = true
		} else {
			s.beginSeq++
			a.seq = s.beginSeq
			s.ioq <- ioReq{kind: ioGet, local: fetch[0], global: a.global}
		}
	}
	plan := st.Apply()
	a.expect = plan.Val
	s.reads++
	s.trafficR += uint64(plan.Reads())
	s.trafficW += uint64(plan.Writes())
	s.record(local, false, plan.DataLeaf)
	if s.ioq == nil {
		a.res.sb, a.res.ok = s.be.Get(local)
		a.ready = true
	}
	return a, nil
}

// Wait resolves the access: the read plaintext (after the epoch
// consistency check and unseal) or the write's backend outcome. An I/O
// failure wedges the shard — every later Begin fails fast with the same
// error, because the engine has already advanced past the lost write.
func (a *Access) Wait() ([]byte, error) {
	s := a.s
	if !a.ready {
		s.waitSeq++
		if a.seq != s.waitSeq {
			panic(fmt.Sprintf("shard: Access.Wait out of Begin order (access %d, expected %d)", a.seq, s.waitSeq))
		}
		a.res = <-s.resq
		a.ready = true
	}
	if a.write {
		if a.res.err != nil {
			err := fmt.Errorf("palermo: backend write of block %d: %w", a.global, a.res.err)
			if s.ioErr == nil {
				s.ioErr = err
			}
			return nil, err
		}
		return nil, nil
	}
	if a.res.err != nil {
		if s.ioErr == nil {
			s.ioErr = a.res.err
		}
		return nil, a.res.err
	}
	if !a.res.ok {
		return make([]byte, BlockBytes), nil
	}
	if a.expect != a.res.sb.Epoch {
		return nil, fmt.Errorf("palermo: protocol state diverged for block %d (epoch %d != %d)",
			a.global, a.expect, a.res.sb.Epoch)
	}
	if j := a.res.job; j != nil {
		// The pool unsealed speculatively with the slot's own epoch; the
		// check above just proved that epoch is the one the engine
		// transition predicted, so the worker's plaintext is the answer.
		<-j.done
		return j.out, j.err
	}
	return s.sealer.Open(a.global, a.res.sb.Epoch, a.res.sb.Ct)
}
