package shard

import (
	"bytes"
	"reflect"
	"testing"

	"palermo/internal/rng"
)

func pfShard(t *testing.T, window int) *Shard {
	t.Helper()
	s, err := New(0, 1, 1<<10, []byte("palermo-demo-key"), 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableTrace()
	s.EnablePipeline(4)
	if window > 0 {
		s.EnablePrefetch(window)
	}
	return s
}

// TestPrefetchEquivalence announces every read to the planner on one shard
// and none on its twin: payloads, leaf traces, and protocol counters must
// be bit-identical — a prefetch moves backend I/O earlier, nothing else.
func TestPrefetchEquivalence(t *testing.T) {
	plain, pf := pfShard(t, 0), pfShard(t, 8)
	r := rng.New(3)
	data := make([]byte, BlockBytes)
	for i := 0; i < 600; i++ {
		id := r.Uint64n(1 << 8)
		if r.Float64() < 0.4 {
			for j := range data {
				data[j] = byte(i + j)
			}
			if err := plain.Write(id, data); err != nil {
				t.Fatal(err)
			}
			if err := pf.Write(id, data); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got1, err := plain.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		pf.PrefetchRead(id)
		got2, err := pf.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got1, got2) {
			t.Fatalf("op %d: payload diverged with prefetch on", i)
		}
	}
	if !reflect.DeepEqual(plain.Trace(), pf.Trace()) {
		t.Fatal("leaf trace diverged with prefetch on")
	}
	c1, c2 := plain.Snapshot(), pf.Snapshot()
	c2.PrefetchIssued, c2.PrefetchUsed, c2.PrefetchStale = 0, 0, 0
	if c1 != c2 {
		t.Fatalf("protocol counters diverged: %+v vs %+v", c1, c2)
	}
	used := pf.Snapshot().PrefetchUsed
	if used == 0 {
		t.Fatal("no prefetches were consumed")
	}
	if pf.Snapshot().PrefetchStale != 0 {
		t.Fatal("pure-read announcements produced stale prefetches")
	}
}

// TestPrefetchStaleOnWrite: a write landing between a prefetch's issue and
// its consuming read supersedes the fetched payload; the read must discard
// the stale copy and return the new value.
func TestPrefetchStaleOnWrite(t *testing.T) {
	s := pfShard(t, 4)
	old := bytes.Repeat([]byte{1}, BlockBytes)
	fresh := bytes.Repeat([]byte{2}, BlockBytes)
	if err := s.Write(5, old); err != nil {
		t.Fatal(err)
	}
	if !s.PrefetchRead(5) {
		t.Fatal("prefetch declined with empty window")
	}
	if err := s.Write(5, fresh); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("read returned the superseded payload")
	}
	c := s.Snapshot()
	if c.PrefetchStale != 1 || c.PrefetchUsed != 0 {
		t.Fatalf("stale accounting wrong: %+v", c)
	}
}

// TestPrefetchOutOfOrderConsumption: reads may consume prefetches in a
// different order than they were issued (the planner announces a batch up
// front; dedup and op order decide consumption).
func TestPrefetchOutOfOrderConsumption(t *testing.T) {
	s := pfShard(t, 4)
	a := bytes.Repeat([]byte{7}, BlockBytes)
	b := bytes.Repeat([]byte{9}, BlockBytes)
	if err := s.Write(10, a); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(20, b); err != nil {
		t.Fatal(err)
	}
	s.PrefetchRead(10)
	s.PrefetchRead(20)
	got, err := s.Read(20) // consumes out of issue order: 10's result parks
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("out-of-order consumption returned wrong payload")
	}
	got, err = s.Read(10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Fatal("parked prefetch returned wrong payload")
	}
	if c := s.Snapshot(); c.PrefetchUsed != 2 || c.PrefetchStale != 0 {
		t.Fatalf("prefetch accounting wrong: %+v", c)
	}
}

// TestPrefetchWindowBound: the planner declines past the outstanding
// window instead of blocking, and frees slots as reads consume.
func TestPrefetchWindowBound(t *testing.T) {
	s := pfShard(t, 2)
	if !s.PrefetchRead(1) || !s.PrefetchRead(2) {
		t.Fatal("window should admit two prefetches")
	}
	if s.PrefetchRead(3) {
		t.Fatal("window overcommitted")
	}
	if _, err := s.Read(1); err != nil {
		t.Fatal(err)
	}
	if !s.PrefetchRead(3) {
		t.Fatal("consumed slot was not freed")
	}
	if _, err := s.Read(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(3); err != nil {
		t.Fatal(err)
	}
	if c := s.Snapshot(); c.PrefetchIssued != 3 || c.PrefetchUsed != 3 {
		t.Fatalf("prefetch accounting wrong: %+v", c)
	}
}

// TestPrefetchRequiresPipeline: the planner is inert without the staged
// executor — announcements are declined, reads behave normally.
func TestPrefetchRequiresPipeline(t *testing.T) {
	s, err := New(0, 1, 1<<8, []byte("palermo-demo-key"), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.EnablePrefetch(4) // no pipeline: must be ignored
	if s.PrefetchRead(1) {
		t.Fatal("prefetch accepted without a pipeline")
	}
	if _, err := s.Read(1); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchSetEquivalence is TestPrefetchEquivalence for the vectored
// announce: every read's full fetch set — the line itself plus its
// posmap-group siblings — goes through one PrefetchSet call, and payloads,
// leaf traces, and protocol counters must still match the plain twin
// bit for bit. Sibling announces that no read consumes are released with
// DropPrefetch, exactly as the deep planner does at batch end.
func TestPrefetchSetEquivalence(t *testing.T) {
	plain, pf := pfShard(t, 0), pfShard(t, 64)
	r := rng.New(3)
	data := make([]byte, BlockBytes)
	var group []uint64
	for i := 0; i < 600; i++ {
		id := r.Uint64n(1 << 8)
		if r.Float64() < 0.4 {
			for j := range data {
				data[j] = byte(i + j)
			}
			if err := plain.Write(id, data); err != nil {
				t.Fatal(err)
			}
			if err := pf.Write(id, data); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got1, err := plain.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		group = append(group[:0], id)
		group = pf.PosmapGroup(id, group)
		n := pf.PrefetchSet(group)
		got2, err := pf.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got1, got2) {
			t.Fatalf("op %d: payload diverged with set prefetch on", i)
		}
		// Release every issued sibling the read did not consume.
		for _, l := range group[:n] {
			if l != id {
				pf.DropPrefetch(l)
			}
		}
	}
	if !reflect.DeepEqual(plain.Trace(), pf.Trace()) {
		t.Fatal("leaf trace diverged with set prefetch on")
	}
	c1, c2 := plain.Snapshot(), pf.Snapshot()
	c2.PrefetchIssued, c2.PrefetchUsed, c2.PrefetchStale = 0, 0, 0
	if c1 != c2 {
		t.Fatalf("protocol counters diverged: %+v vs %+v", c1, c2)
	}
	if pf.Snapshot().PrefetchUsed == 0 {
		t.Fatal("no prefetches were consumed")
	}
}

// TestPrefetchSetWindowEdge: a set larger than the remaining window is
// admitted as a prefix — the return value names exactly which lines were
// issued, and every issued line is claimable while the declined suffix is
// not outstanding.
func TestPrefetchSetWindowEdge(t *testing.T) {
	s := pfShard(t, 3)
	n := s.PrefetchSet([]uint64{1, 2, 3, 4, 5})
	if n != 3 {
		t.Fatalf("window 3 admitted %d of 5 lines", n)
	}
	if s.PrefetchRead(6) {
		t.Fatal("window overcommitted after a partial set")
	}
	if s.DropPrefetch(4) {
		t.Fatal("declined line was claimable")
	}
	for _, id := range []uint64{1, 2, 3} {
		if _, err := s.Read(id); err != nil {
			t.Fatal(err)
		}
	}
	if c := s.Snapshot(); c.PrefetchIssued != 3 || c.PrefetchUsed != 3 || c.PrefetchStale != 0 {
		t.Fatalf("prefetch accounting wrong: %+v", c)
	}
	// Slots freed: a fresh full-window set is admitted whole.
	if n := s.PrefetchSet([]uint64{7, 8, 9}); n != 3 {
		t.Fatalf("freed window admitted %d of 3 lines", n)
	}
	for _, id := range []uint64{7, 8, 9} {
		if !s.DropPrefetch(id) {
			t.Fatalf("issued line %d was not claimable", id)
		}
	}
}

// TestDropPrefetch: dropping an announce whose read never materialized
// frees its window slot and counts the fetch as stale — including a drop
// issued immediately after the announce, before the I/O goroutine has
// delivered the result (the claim drains the queue and parks nothing).
func TestDropPrefetch(t *testing.T) {
	s := pfShard(t, 2)
	if !s.PrefetchRead(1) {
		t.Fatal("prefetch declined with empty window")
	}
	if !s.DropPrefetch(1) { // result may still be in flight: claim must wait, not wedge
		t.Fatal("outstanding prefetch not droppable")
	}
	if s.DropPrefetch(1) {
		t.Fatal("double drop claimed a phantom prefetch")
	}
	c := s.Snapshot()
	if c.PrefetchIssued != 1 || c.PrefetchStale != 1 || c.PrefetchUsed != 0 {
		t.Fatalf("drop accounting wrong: %+v", c)
	}
	// Both slots free again: the window admits a full set.
	if n := s.PrefetchSet([]uint64{4, 5}); n != 2 {
		t.Fatalf("window after drop admitted %d of 2", n)
	}
	// A demand read still claims a set-issued line (drop is optional).
	if _, err := s.Read(4); err != nil {
		t.Fatal(err)
	}
	if !s.DropPrefetch(5) {
		t.Fatal("sibling line not droppable")
	}
	c = s.Snapshot()
	if c.PrefetchIssued != 3 || c.PrefetchUsed != 1 || c.PrefetchStale != 2 {
		t.Fatalf("final accounting wrong: %+v", c)
	}
}

// TestPosmapGroup: the posmap group of a line is the contiguous run of
// data lines indexed by the same level-1 position-map block — it contains
// the line itself, stays in range, and is identical for every member of
// the group (the planner dedups on that).
func TestPosmapGroup(t *testing.T) {
	s := pfShard(t, 64)
	g := s.PosmapGroup(40, nil)
	if len(g) == 0 {
		t.Skip("engine exposes no posmap levels at this geometry")
	}
	found := false
	for _, id := range g {
		if id == 40 {
			found = true
		}
		if id >= 1<<10 {
			t.Fatalf("group member %d out of range", id)
		}
	}
	if !found {
		t.Fatalf("group %v does not contain its own line", g)
	}
	for _, id := range g {
		peer := s.PosmapGroup(id, nil)
		if !reflect.DeepEqual(peer, g) {
			t.Fatalf("group of member %d = %v, want %v", id, peer, g)
		}
	}
	if s.PosmapGroup(1<<20, nil) != nil {
		t.Fatal("out-of-range line produced a posmap group")
	}
}
