package shard

import (
	"bytes"
	"reflect"
	"testing"

	"palermo/internal/backend/wal"
	"palermo/internal/rng"
)

// migratePayload is a deterministic 64-byte payload for (seed, id).
func migratePayload(seed, id uint64) []byte {
	r := rng.New(seed ^ 0x9e3779b97f4a7c15*(id+1))
	out := make([]byte, BlockBytes)
	for i := range out {
		out[i] = byte(r.Uint64n(256))
	}
	return out
}

// TestMigrateRoundTrip drives the full shard-level migration handoff —
// ExportBlocks + StartTee while writes keep landing, then StopTee +
// ExportMeta at the barrier, then ImportBlocks/RestoreMeta on a fresh
// shard — and demands the migrated shard continue the source's exact
// protocol history: byte-identical reads, element-wise identical leaf
// traces, and continued counters, against an unmigrated reference shard
// serving the same operation sequence.
func TestMigrateRoundTrip(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		name := "serial"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			const blocks, seed = 1 << 8, 17
			mk := func() *Shard {
				sh, err := New(1, 4, blocks, testKey, DeriveSeed(seed, 1), nil)
				if err != nil {
					t.Fatal(err)
				}
				sh.EnableTrace()
				if pipelined {
					sh.EnablePipeline(4)
				}
				return sh
			}
			ref, src := mk(), mk()
			both := func(f func(sh *Shard) error) {
				t.Helper()
				if err := f(ref); err != nil {
					t.Fatal(err)
				}
				if err := f(src); err != nil {
					t.Fatal(err)
				}
			}
			r := rng.New(99)
			randOps := func(n int) {
				for i := 0; i < n; i++ {
					local := r.Uint64n(blocks)
					if r.Intn(3) > 0 {
						pay := migratePayload(seed, local)
						both(func(sh *Shard) error { return sh.Write(local, pay) })
					} else {
						both(func(sh *Shard) error { _, err := sh.Read(local); return err })
					}
				}
			}

			// Prefix history on both shards.
			randOps(200)

			// Phase 1: snapshot the source while it keeps serving.
			snap, err := src.ExportBlocks()
			if err != nil {
				t.Fatal(err)
			}
			src.StartTee()
			randOps(120) // writes here reach the target only via the tee

			// Cutover barrier: capture the tail and the exact engine state.
			// (Write/Read above are Begin+Wait back to back, so the pipeline
			// is already drained — as it is inside the cluster node's Sync.)
			tail := src.StopTee()
			meta, metaEpoch, err := src.ExportMeta()
			if err != nil {
				t.Fatal(err)
			}
			// Keep ref's sealer counter aligned: ExportMeta consumed one blob
			// epoch on src, so mirror it on the reference shard.
			if _, _, err := ref.ExportMeta(); err != nil {
				t.Fatal(err)
			}

			// Rebuild on the "target": blocks first, tail over snapshot, then
			// the exact metadata.
			dst, err := New(1, 4, blocks, testKey, DeriveSeed(seed, 1), nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.ImportBlocks(snap); err != nil {
				t.Fatal(err)
			}
			if err := dst.ImportBlocks(tail); err != nil {
				t.Fatal(err)
			}
			if err := dst.RestoreMeta(meta, metaEpoch); err != nil {
				t.Fatal(err)
			}
			dst.EnableTrace()
			if pipelined {
				dst.EnablePipeline(4)
			}

			// The counters moved with the metadata.
			refSnap, dstSnap := ref.Snapshot(), dst.Snapshot()
			if refSnap.Reads != dstSnap.Reads || refSnap.Writes != dstSnap.Writes ||
				refSnap.DRAMReads != dstSnap.DRAMReads || refSnap.DRAMWrites != dstSnap.DRAMWrites {
				t.Fatalf("migrated counters diverge: ref %+v, dst %+v", refSnap, dstSnap)
			}

			// Suffix history: the migrated shard must continue the source's
			// protocol history bit-exactly.
			suffix := rng.New(7)
			for i := 0; i < 150; i++ {
				local := suffix.Uint64n(blocks)
				if suffix.Intn(3) > 0 {
					pay := migratePayload(seed+1, local)
					if err := ref.Write(local, pay); err != nil {
						t.Fatal(err)
					}
					if err := dst.Write(local, pay); err != nil {
						t.Fatal(err)
					}
				} else {
					a, err := ref.Read(local)
					if err != nil {
						t.Fatal(err)
					}
					b, err := dst.Read(local)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(a, b) {
						t.Fatalf("op %d: migrated read of %d diverges", i, local)
					}
				}
			}

			// Leaf traces: source prefix + target suffix == reference, element-wise.
			src.Retire()
			if err := src.Close(); err != nil {
				t.Fatal(err)
			}
			if err := dst.Close(); err != nil {
				t.Fatal(err)
			}
			if err := ref.Close(); err != nil {
				t.Fatal(err)
			}
			got := &Trace{
				Ops:    append(append([]TraceOp(nil), src.Trace().Ops...), dst.Trace().Ops...),
				Leaves: append(append([]uint64(nil), src.Trace().Leaves...), dst.Trace().Leaves...),
			}
			if !reflect.DeepEqual(got.Ops, ref.Trace().Ops) {
				t.Fatalf("op traces diverge: %d+%d ops vs %d", len(src.Trace().Ops), len(dst.Trace().Ops), len(ref.Trace().Ops))
			}
			if !reflect.DeepEqual(got.Leaves, ref.Trace().Leaves) {
				t.Fatalf("leaf traces diverge across migration")
			}
		})
	}
}

// TestRetireSuppressesCheckpoint pins the IV-reuse guard: once a shard is
// retired, checkpoint (and therefore Close's farewell checkpoint) is a
// no-op, so the surrendered sealing-epoch domain is never re-entered.
func TestRetireSuppressesCheckpoint(t *testing.T) {
	be, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := New(0, 1, 1<<6, testKey, 3, be)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Write(1, migratePayload(1, 1)); err != nil {
		t.Fatal(err)
	}
	before := sh.sealer.Epoch()
	sh.Retire()
	if err := sh.ForceCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sh.sealer.Epoch(); got != before {
		t.Fatalf("retired shard advanced its sealing counter: %d -> %d", before, got)
	}
}
