// Package shard partitions an oblivious block store across S independent
// ORAM shards so that independent requests can execute concurrently — the
// service-layer mirror of the paper's observation that ORAM throughput
// scales with request-level parallelism (the PE mesh exploits it inside one
// controller; sharding exploits it across controllers).
//
// Routing is a deterministic pure function of the public block id
// (round-robin striping: shard = id mod S, local = id div S), so the shard
// a request lands on reveals nothing beyond the id the client already
// presented in plaintext at the trusted service boundary. Each shard owns a
// private Ring engine, sealer counter-domain, and derived RNG seed; within
// a shard the backend-visible path sequence stays exactly the single-store
// guarantee (uniform, independent, remapped per access). DESIGN.md §6
// records the full obliviousness argument against internal/security's §VI
// framing.
package shard

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"palermo/internal/backend"
	"palermo/internal/backend/memory"
	"palermo/internal/crypt"
	"palermo/internal/oram"
)

// BlockBytes is the shard payload granularity (one cache line).
const BlockBytes = crypt.BlockBytes

// Router deterministically maps public block ids onto shards.
//
// Striping (id mod S) rather than range-partitioning keeps popular
// low-numbered ids — the head of any Zipfian workload — spread across all
// shards instead of piling onto shard 0.
type Router struct {
	shards int
	blocks uint64
}

// NewRouter builds a router over a capacity of blocks ids and S shards.
func NewRouter(blocks uint64, shards int) (Router, error) {
	if blocks == 0 {
		return Router{}, fmt.Errorf("shard: capacity must be > 0 blocks")
	}
	if shards < 1 {
		return Router{}, fmt.Errorf("shard: shard count must be >= 1, got %d", shards)
	}
	if uint64(shards) > blocks {
		return Router{}, fmt.Errorf("shard: %d shards exceed %d blocks (a shard would be empty)", shards, blocks)
	}
	return Router{shards: shards, blocks: blocks}, nil
}

// Shards returns the shard count.
func (r Router) Shards() int { return r.shards }

// Blocks returns the total capacity in blocks.
func (r Router) Blocks() uint64 { return r.blocks }

// Route maps a public block id to its (shard, shard-local id) coordinates.
// It does not range-check id; callers validate against Blocks().
func (r Router) Route(id uint64) (int, uint64) {
	return int(id % uint64(r.shards)), id / uint64(r.shards)
}

// Global inverts Route: the public id of a shard's local block.
func (r Router) Global(s int, local uint64) uint64 {
	return local*uint64(r.shards) + uint64(s)
}

// ShardBlocks returns shard s's capacity: the number of public ids in
// [0, Blocks) congruent to s mod Shards.
func (r Router) ShardBlocks(s int) uint64 {
	if uint64(s) >= r.blocks {
		return 0
	}
	return (r.blocks - uint64(s) + uint64(r.shards) - 1) / uint64(r.shards)
}

// DeriveSeed returns shard i's engine/leaf-selection seed: one splitmix64
// scramble of (base, i) so that adjacent base seeds or adjacent shard
// indices still yield decorrelated per-shard RNG streams.
func DeriveSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// TraceOp is one engine-touching operation in a shard's trace.
type TraceOp struct {
	Local uint64
	Write bool
}

// Trace records the engine-touching operation subsequence a shard served
// and the data-tree leaf each access exposed. Per-shard determinism (the
// §5 contract extended to the service layer) means replaying Ops serially
// into a fresh identically-seeded shard reproduces Leaves exactly.
type Trace struct {
	Ops    []TraceOp
	Leaves []uint64
}

// Counters is a snapshot of a shard's operation and traffic counters.
type Counters struct {
	Reads, Writes         uint64 // store operations served by the engine
	DRAMReads, DRAMWrites uint64 // 64-byte line movements the protocol generated
	StashPeak             int

	// TreeTopHits counts line movements the engine's tree-top cache
	// absorbed (traffic against resident top levels that never left the
	// controller; bytes saved = 64 * TreeTopHits). Since-open, like the
	// prefetch counters below — observability, not durable protocol state.
	TreeTopHits uint64

	// Prefetch planner counters (staged.go): issued backend fetches, how
	// many a read consumed, and how many were discarded as stale because a
	// write to the same block landed between issue and use.
	PrefetchIssued, PrefetchUsed, PrefetchStale uint64
}

// DefaultCheckpointEvery is how many writes a durable shard absorbs
// between automatic WAL-compaction checkpoints.
const DefaultCheckpointEvery = 4096

// Shard is one oblivious store partition: a private Palermo-variant Ring
// engine plus a private sealer counter-domain, with sealed payloads stored
// through a pluggable backend (process-private map by default, durable WAL
// optionally). Not safe for concurrent use — the service layer confines
// each shard to one worker goroutine (the same engine-per-goroutine
// discipline as the sweep runner).
type Shard struct {
	index   int // shard coordinate (the id residue this shard serves)
	stride  int // total shard count (for local -> global id recovery)
	blocks  uint64
	engine  *oram.Ring
	sealer  *crypt.Sealer
	be      backend.Backend
	durable bool

	// Staged-execution state (staged.go). Until EnablePipeline, ioq is nil
	// and the shard runs the serial executor.
	ioq      chan ioReq
	resq     chan ioRes // FIFO access results (Wait order == Begin order)
	ioDone   chan struct{}
	vbe      backend.VectorBackend
	beginSeq uint64
	waitSeq  uint64
	ioErr    error // first I/O-stage failure: the shard wedges fail-fast

	// Parallel seal/unseal pool (crypto.go). Until EnableCryptoPool,
	// cpool is nil and all crypto runs inline on the owner goroutine.
	cpool *cryptoPool

	// Prefetch planner state (staged.go). Until EnablePrefetch, pfq is nil
	// and PrefetchRead is a no-op. All fields owner-confined except pfq,
	// which the I/O goroutine publishes prefetched payloads through.
	pfq           chan ioRes
	pfWindow      int
	pfIssuedQ     []pfIssue           // issue-order FIFO (matches pfq result order)
	pfParked      map[uint64][]pfSlot // results drained for other locals
	pfPending     map[uint64]int      // issued-not-yet-consumed count per local
	pfVer         map[uint64]uint64   // bumped by a write while a prefetch is pending
	pfOutstanding int
	pfIssuedN     uint64
	pfUsedN       uint64
	pfStaleN      uint64

	ckptEvery uint64 // writes between automatic checkpoints (durable only)
	sinceCkpt uint64
	closed    bool
	retired   bool // surrendered by a completed migration: checkpoints become no-ops (migrate.go)

	// Migration tee state (migrate.go): while teeOn, every sealed write is
	// also appended to teeBuf for the in-flight migration's tail.
	teeOn  bool
	teeBuf []SealedBlock

	reads, writes      uint64
	trafficR, trafficW uint64
	topHitsBase        uint64 // checkpointed TopHits (engine counts since open)

	trace *Trace
}

// shardState is the gob-encoded controller metadata a durable backend
// checkpoints: the full ORAM engine state (leaf maps, stash residents,
// bucket permutation counters) plus the sealer counter and the shard's
// served-traffic counters. It is sealed before it leaves the trusted
// boundary — it contains position maps, which the untrusted backend must
// never see in plaintext.
type shardState struct {
	Index, Stride int
	Blocks        uint64
	SealEpoch     uint64
	Reads, Writes uint64
	TrafficR      uint64
	TrafficW      uint64
	TopHits       uint64 // tree-top-absorbed lines (TrafficR/W's missing half)
	Engine        *oram.RingState
}

// New builds shard index of stride total shards with the given local
// capacity and the exact engine seed to use (callers building a sharded
// set derive per-shard seeds with DeriveSeed; a 1-shard caller like
// palermo.Store passes its seed through unchanged). All shards share the
// AES key; IV uniqueness across shards holds because blocks are sealed
// under their global id (disjoint across shards), so independent
// per-shard epoch counters can never collide on an (addr, epoch) pair.
//
// be supplies sealed-payload storage; nil selects the default in-memory
// backend (the pre-backend behavior, byte for byte). A durable backend
// that recovered a checkpoint and/or a log tail is folded in here: the
// engine restores the checkpointed metadata exactly, then replays the
// tail's writes through the full protocol so metadata and payloads
// re-converge (see Close for what a clean shutdown persists).
func New(index, stride int, blocks uint64, key []byte, engineSeed uint64, be backend.Backend) (*Shard, error) {
	if index < 0 || stride < 1 || index >= stride {
		return nil, fmt.Errorf("shard: invalid coordinates index=%d stride=%d", index, stride)
	}
	if blocks == 0 {
		return nil, fmt.Errorf("shard: shard %d has zero capacity", index)
	}
	sealer, err := crypt.NewSealer(key)
	if err != nil {
		return nil, err
	}
	cfg := oram.PalermoRingConfig()
	cfg.NLines = blocks
	cfg.Seed = engineSeed
	// Nothing in the serving path replays per-access DRAM address lists —
	// shards consume only the plan's counts, value, and leaf — so the
	// engine runs in count-only traffic mode and skips the per-access
	// address-slice growth (the simulator keeps full address plans).
	cfg.CountTraffic = true
	engine, err := oram.NewRing(cfg)
	if err != nil {
		return nil, err
	}
	if engine.Config().DataSlotLines != 1 {
		// The shard stores one sealed payload per engine PA, so the staged
		// executor's FetchSet ids coincide with shard-local ids only at
		// slot width 1. A wider engine here would silently split the read
		// and write key spaces — refuse loudly instead.
		return nil, fmt.Errorf("shard: engine DataSlotLines must be 1, got %d", engine.Config().DataSlotLines)
	}
	if be == nil {
		be = memory.New()
	}
	s := &Shard{
		index:     index,
		stride:    stride,
		blocks:    blocks,
		engine:    engine,
		sealer:    sealer,
		be:        be,
		durable:   be.Durable(),
		ckptEvery: DefaultCheckpointEvery,
	}
	meta, metaEpoch, tail := be.Recovered()
	if meta != nil || len(tail) > 0 {
		if err := s.recover(meta, metaEpoch, tail); err != nil {
			return nil, err
		}
	}
	if be.Durable() && meta == nil {
		// Establish a sealed snapshot the moment a durable directory has
		// none — at creation, and again if a crash interrupted the
		// creation checkpoint itself (tail recovered, no snapshot yet).
		// Every later open then runs the checkpoint-decode key check, so a
		// wrong key fails loudly instead of opening sealed payloads into
		// silent garbage plaintext (AES-CTR carries no integrity).
		if err := s.checkpoint(); err != nil {
			be.Close()
			return nil, err
		}
	}
	return s, nil
}

// SetCheckpointEvery tunes how many writes pass between automatic
// WAL-compaction checkpoints (0 disables them; Close still checkpoints).
// Call before the shard starts serving.
func (s *Shard) SetCheckpointEvery(n uint64) { s.ckptEvery = n }

// SetTreeTopLevels pins the engine's tree-top cache to exactly k levels per
// space (k <= 0 keeps the byte-budget default). Purely a traffic-accounting
// change — leaf traces, payloads, and checkpoints are bit-identical at any
// k (DESIGN.md §10) — but call it before the shard starts serving so
// counter snapshots are taken against one consistent setting.
func (s *Shard) SetTreeTopLevels(k int) {
	if k > 0 {
		s.engine.SetTopLevels(k)
	}
}

// DataLeaves returns the data-tree leaf count of the shard's engine (the
// modulus for uniformity analysis of recorded leaf traces).
func (s *Shard) DataLeaves() uint64 {
	return s.engine.Space(0).Geo.NumLeaves()
}

// metaAddr is the shard's reserved sealing address for checkpoint blobs:
// counted down from ^0 per shard so it can never collide with a block's
// global id (capped at 2^40) and never collides across shards sharing one
// key even though their epoch domains overlap.
func (s *Shard) metaAddr() uint64 { return ^uint64(0) - uint64(s.index) }

// Blocks returns the shard-local capacity.
func (s *Shard) Blocks() uint64 { return s.blocks }

// EnableTrace starts recording the operation/leaf trace. Call before the
// shard starts serving (it is owned by the worker afterwards).
func (s *Shard) EnableTrace() { s.trace = &Trace{} }

// Trace returns the recorded trace (nil unless EnableTrace was called).
// Only safe once the shard is quiesced (service closed or via Sync).
func (s *Shard) Trace() *Trace { return s.trace }

// Write stores a 64-byte block obliviously under the shard-local id.
//
// Errors here surface verbatim through the public Store/ShardedStore API,
// so they carry the palermo: prefix and name the global (public) block id,
// never the shard-local one.
func (s *Shard) Write(local uint64, data []byte) error {
	if s.ioq != nil {
		// Staged executor owns the backend: route through it (Begin+Wait
		// back to back is the depth-1 schedule of the pipeline).
		a, err := s.BeginWrite(local, data)
		if err != nil {
			return err
		}
		_, err = a.Wait()
		return err
	}
	if local >= s.blocks {
		return fmt.Errorf("palermo: internal: block %d outside shard %d capacity %d", s.Global(local), s.index, s.blocks)
	}
	if len(data) != BlockBytes {
		return fmt.Errorf("palermo: block must be %d bytes, got %d", BlockBytes, len(data))
	}
	global := s.Global(local)
	ct, epoch, err := s.sealer.Seal(global, data)
	if err != nil {
		return err
	}
	if err := s.be.Put(local, backend.Sealed{Ct: ct, Epoch: epoch}); err != nil {
		return fmt.Errorf("palermo: backend write of block %d: %w", global, err)
	}
	s.teeWrite(local, ct, epoch)
	plan := s.engine.Access(local, true, epoch)
	s.writes++
	s.trafficR += uint64(plan.Reads())
	s.trafficW += uint64(plan.Writes())
	s.record(local, true, plan.DataLeaf)
	return s.maybeCheckpoint(global)
}

// maybeCheckpoint runs the deterministic compaction trigger after a
// durable write. Compact only once the log tail is also a meaningful
// fraction of the stored blocks: a snapshot rewrites every block, so a
// pure write-count trigger would cost O(store size) I/O every ckptEvery
// writes on a populated store. This keeps compaction I/O amortized O(1)
// per logged write. Under the pipeline, beLen is a queue barrier, so the
// trigger fires at exactly the same points of the operation stream as the
// serial executor.
func (s *Shard) maybeCheckpoint(global uint64) error {
	if s.ckptEvery == 0 || !s.durable {
		return nil
	}
	s.sinceCkpt++
	if s.sinceCkpt >= s.ckptEvery && s.sinceCkpt*4 >= uint64(s.beLen()) {
		if err := s.checkpoint(); err != nil {
			return fmt.Errorf("palermo: checkpoint after block %d: %w", global, err)
		}
	}
	return nil
}

// Read fetches a block obliviously by shard-local id. Unwritten blocks read
// as zeros after a full-protocol access, exactly like the single Store.
func (s *Shard) Read(local uint64) ([]byte, error) {
	if s.ioq != nil {
		a, err := s.BeginRead(local)
		if err != nil {
			return nil, err
		}
		return a.Wait()
	}
	if local >= s.blocks {
		return nil, fmt.Errorf("palermo: internal: block %d outside shard %d capacity %d", s.Global(local), s.index, s.blocks)
	}
	plan := s.engine.Access(local, false, 0)
	s.reads++
	s.trafficR += uint64(plan.Reads())
	s.trafficW += uint64(plan.Writes())
	s.record(local, false, plan.DataLeaf)
	sb, ok := s.be.Get(local)
	if !ok {
		return make([]byte, BlockBytes), nil
	}
	if plan.Val != sb.Epoch {
		return nil, fmt.Errorf("palermo: protocol state diverged for block %d (epoch %d != %d)",
			s.Global(local), plan.Val, sb.Epoch)
	}
	return s.sealer.Open(s.Global(local), sb.Epoch, sb.Ct)
}

// Global returns the public id of a shard-local block.
func (s *Shard) Global(local uint64) uint64 {
	return local*uint64(s.stride) + uint64(s.index)
}

// Snapshot returns the shard's counters. Must run on the owning worker
// goroutine (serve.Service.Sync) or after quiescence.
func (s *Shard) Snapshot() Counters {
	return Counters{
		Reads: s.reads, Writes: s.writes,
		DRAMReads: s.trafficR, DRAMWrites: s.trafficW,
		StashPeak:      s.engine.StashMax(0),
		TreeTopHits:    s.topHitsBase + s.engine.TopHits(),
		PrefetchIssued: s.pfIssuedN, PrefetchUsed: s.pfUsedN, PrefetchStale: s.pfStaleN,
	}
}

// checkpoint seals the shard's complete controller metadata and hands it
// to the backend together with an implicit copy of every sealed block
// (Backend.Checkpoint compacts the log around it). The blob's sealing
// epoch is reserved from the shard's own counter *before* the state is
// encoded, so the checkpointed SealEpoch already covers it and a restored
// sealer can never re-issue the blob's IV.
func (s *Shard) checkpoint() error {
	// A retired shard (surrendered by migration) must never seal another
	// checkpoint blob: the new owner continues this shard's sealing-epoch
	// counter, so a farewell blob here would reuse its next IV (migrate.go).
	if !s.durable || s.retired {
		return nil
	}
	blobEpoch := s.sealer.Epoch() + 1
	if blobEpoch >= 1<<40 {
		return fmt.Errorf("shard: sealing counter %d exhausted the 40-bit IV field; re-key the store", blobEpoch)
	}
	s.sealer.SetEpoch(blobEpoch)
	st := shardState{
		Index: s.index, Stride: s.stride, Blocks: s.blocks,
		SealEpoch: blobEpoch,
		Reads:     s.reads, Writes: s.writes,
		TrafficR: s.trafficR, TrafficW: s.trafficW,
		TopHits: s.topHitsBase + s.engine.TopHits(),
		Engine:  s.engine.State(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return fmt.Errorf("shard: encode checkpoint: %w", err)
	}
	if buf.Len() > crypt.MaxBlobBytes {
		return fmt.Errorf("shard: checkpoint state is %d bytes, beyond the %d-byte sealing span (shard too populated for durable checkpoints)",
			buf.Len(), crypt.MaxBlobBytes)
	}
	ct := s.sealer.Blob(s.metaAddr(), blobEpoch, buf.Bytes())
	if s.ioq != nil {
		// Barrier through the I/O stage: every put queued ahead is applied
		// before the backend snapshots, so the sealed engine state and the
		// persisted block set describe the same operation-stream point.
		if res := s.ioRound(ioReq{kind: ioCheckpoint, meta: ct, metaEpoch: blobEpoch}); res.err != nil {
			return res.err
		}
	} else if err := s.be.Checkpoint(ct, blobEpoch); err != nil {
		return err
	}
	s.sinceCkpt = 0
	return nil
}

// recover folds a durable backend's recovered state into the freshly built
// shard: restore the checkpointed engine/sealer/counters exactly, then
// replay the log tail's writes through the full ORAM protocol so the
// engine's per-block epochs re-converge with the recovered payloads. The
// replayed accesses draw fresh (deterministic) leaves — recovery is a new
// protocol history, not a replay of the lost one, which is exactly what
// obliviousness requires (DESIGN.md §7).
func (s *Shard) recover(meta []byte, metaEpoch uint64, tail []backend.TailOp) error {
	if meta != nil {
		if metaEpoch >= 1<<40 || len(meta) > crypt.MaxBlobBytes {
			// Out of the sealing scheme's domain: no shard this code built
			// could have written it. Surface the corrupt-store error path
			// instead of tripping crypt's internal-invariant panics.
			return fmt.Errorf("shard: checkpoint metadata out of range (epoch %d, %d bytes): corrupt store", metaEpoch, len(meta))
		}
		plain := s.sealer.Blob(s.metaAddr(), metaEpoch, meta)
		var st shardState
		if err := gob.NewDecoder(bytes.NewReader(plain)).Decode(&st); err != nil {
			return fmt.Errorf("shard: checkpoint undecodable (wrong key or corrupt store): %w", err)
		}
		if st.Index != s.index || st.Stride != s.stride || st.Blocks != s.blocks {
			return fmt.Errorf("shard: checkpoint is for shard %d/%d over %d blocks, opened as %d/%d over %d",
				st.Index, st.Stride, st.Blocks, s.index, s.stride, s.blocks)
		}
		if err := s.engine.Restore(st.Engine); err != nil {
			return fmt.Errorf("shard: %w", err)
		}
		s.sealer.SetEpoch(st.SealEpoch)
		s.reads, s.writes = st.Reads, st.Writes
		s.trafficR, s.trafficW = st.TrafficR, st.TrafficW
		s.topHitsBase = st.TopHits
	}
	replayed := uint64(0)
	for _, op := range tail {
		if op.Local == backend.EpochReserveLocal {
			// Epoch reservation from an interrupted checkpoint: advance the
			// sealer so the reserved IV is never re-issued; no block moved.
			if op.Epoch > s.sealer.Epoch() {
				s.sealer.SetEpoch(op.Epoch)
			}
			continue
		}
		if op.Local >= s.blocks {
			return fmt.Errorf("shard: recovered write to block %d outside shard %d capacity %d",
				op.Local, s.index, s.blocks)
		}
		plan := s.engine.Access(op.Local, true, op.Epoch)
		s.writes++
		replayed++
		s.trafficR += uint64(plan.Reads())
		s.trafficW += uint64(plan.Writes())
		if op.Epoch > s.sealer.Epoch() {
			s.sealer.SetEpoch(op.Epoch)
		}
	}
	// The replayed records are still in the log: prime the compaction
	// counter with them so a crash-looping service (always fewer than
	// CheckpointEvery writes per life) cannot grow the log — and the tail
	// replay time — without bound across restarts.
	s.sinceCkpt = replayed
	return nil
}

// Close checkpoints the shard's metadata (durable backends only) and
// releases the backend. After a clean Close, reopening the same directory
// restores the shard bit-exactly: payloads, protocol state, and traffic
// counters. Idempotent. Both the checkpoint's and the backend's close
// errors are surfaced — a wedged backend reports its root-cause error
// through Close, which must not be masked by the checkpoint's generic
// closed-guard failure.
func (s *Shard) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	ckErr := s.checkpoint()
	var clErr error
	if s.ioq != nil {
		clErr = s.ioRound(ioReq{kind: ioClose}).err
		<-s.ioDone
		if s.cpool != nil {
			// The I/O loop has exited and every access is resolved, so no
			// job is outstanding: the workers drain and exit.
			s.cpool.close()
			s.cpool = nil
		}
	} else {
		clErr = s.be.Close()
	}
	return errors.Join(ckErr, clErr)
}

func (s *Shard) record(local uint64, write bool, leaf uint64) {
	if s.trace == nil {
		return
	}
	s.trace.Ops = append(s.trace.Ops, TraceOp{Local: local, Write: write})
	s.trace.Leaves = append(s.trace.Leaves, leaf)
}
