// Package shard partitions an oblivious block store across S independent
// ORAM shards so that independent requests can execute concurrently — the
// service-layer mirror of the paper's observation that ORAM throughput
// scales with request-level parallelism (the PE mesh exploits it inside one
// controller; sharding exploits it across controllers).
//
// Routing is a deterministic pure function of the public block id
// (round-robin striping: shard = id mod S, local = id div S), so the shard
// a request lands on reveals nothing beyond the id the client already
// presented in plaintext at the trusted service boundary. Each shard owns a
// private Ring engine, sealer counter-domain, and derived RNG seed; within
// a shard the backend-visible path sequence stays exactly the single-store
// guarantee (uniform, independent, remapped per access). DESIGN.md §6
// records the full obliviousness argument against internal/security's §VI
// framing.
package shard

import (
	"fmt"

	"palermo/internal/crypt"
	"palermo/internal/oram"
)

// BlockBytes is the shard payload granularity (one cache line).
const BlockBytes = crypt.BlockBytes

// Router deterministically maps public block ids onto shards.
//
// Striping (id mod S) rather than range-partitioning keeps popular
// low-numbered ids — the head of any Zipfian workload — spread across all
// shards instead of piling onto shard 0.
type Router struct {
	shards int
	blocks uint64
}

// NewRouter builds a router over a capacity of blocks ids and S shards.
func NewRouter(blocks uint64, shards int) (Router, error) {
	if blocks == 0 {
		return Router{}, fmt.Errorf("shard: capacity must be > 0 blocks")
	}
	if shards < 1 {
		return Router{}, fmt.Errorf("shard: shard count must be >= 1, got %d", shards)
	}
	if uint64(shards) > blocks {
		return Router{}, fmt.Errorf("shard: %d shards exceed %d blocks (a shard would be empty)", shards, blocks)
	}
	return Router{shards: shards, blocks: blocks}, nil
}

// Shards returns the shard count.
func (r Router) Shards() int { return r.shards }

// Blocks returns the total capacity in blocks.
func (r Router) Blocks() uint64 { return r.blocks }

// Route maps a public block id to its (shard, shard-local id) coordinates.
// It does not range-check id; callers validate against Blocks().
func (r Router) Route(id uint64) (int, uint64) {
	return int(id % uint64(r.shards)), id / uint64(r.shards)
}

// Global inverts Route: the public id of a shard's local block.
func (r Router) Global(s int, local uint64) uint64 {
	return local*uint64(r.shards) + uint64(s)
}

// ShardBlocks returns shard s's capacity: the number of public ids in
// [0, Blocks) congruent to s mod Shards.
func (r Router) ShardBlocks(s int) uint64 {
	if uint64(s) >= r.blocks {
		return 0
	}
	return (r.blocks - uint64(s) + uint64(r.shards) - 1) / uint64(r.shards)
}

// DeriveSeed returns shard i's engine/leaf-selection seed: one splitmix64
// scramble of (base, i) so that adjacent base seeds or adjacent shard
// indices still yield decorrelated per-shard RNG streams.
func DeriveSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// TraceOp is one engine-touching operation in a shard's trace.
type TraceOp struct {
	Local uint64
	Write bool
}

// Trace records the engine-touching operation subsequence a shard served
// and the data-tree leaf each access exposed. Per-shard determinism (the
// §5 contract extended to the service layer) means replaying Ops serially
// into a fresh identically-seeded shard reproduces Leaves exactly.
type Trace struct {
	Ops    []TraceOp
	Leaves []uint64
}

// Counters is a snapshot of a shard's operation and traffic counters.
type Counters struct {
	Reads, Writes         uint64 // store operations served by the engine
	DRAMReads, DRAMWrites uint64 // 64-byte line movements the protocol generated
	StashPeak             int
}

// Shard is one oblivious store partition: a private Palermo-variant Ring
// engine plus a private sealer counter-domain. Not safe for concurrent
// use — the service layer confines each shard to one worker goroutine
// (the same engine-per-goroutine discipline as the sweep runner).
type Shard struct {
	index  int // shard coordinate (the id residue this shard serves)
	stride int // total shard count (for local -> global id recovery)
	blocks uint64
	engine *oram.Ring
	sealer *crypt.Sealer
	sealed map[uint64]sealedBlock

	reads, writes      uint64
	trafficR, trafficW uint64

	trace *Trace
}

type sealedBlock struct {
	ct    []byte
	epoch uint64
}

// New builds shard index of stride total shards with the given local
// capacity and the exact engine seed to use (callers building a sharded
// set derive per-shard seeds with DeriveSeed; a 1-shard caller like
// palermo.Store passes its seed through unchanged). All shards share the
// AES key; IV uniqueness across shards holds because blocks are sealed
// under their global id (disjoint across shards), so independent
// per-shard epoch counters can never collide on an (addr, epoch) pair.
func New(index, stride int, blocks uint64, key []byte, engineSeed uint64) (*Shard, error) {
	if index < 0 || stride < 1 || index >= stride {
		return nil, fmt.Errorf("shard: invalid coordinates index=%d stride=%d", index, stride)
	}
	if blocks == 0 {
		return nil, fmt.Errorf("shard: shard %d has zero capacity", index)
	}
	sealer, err := crypt.NewSealer(key)
	if err != nil {
		return nil, err
	}
	cfg := oram.PalermoRingConfig()
	cfg.NLines = blocks
	cfg.Seed = engineSeed
	engine, err := oram.NewRing(cfg)
	if err != nil {
		return nil, err
	}
	return &Shard{
		index:  index,
		stride: stride,
		blocks: blocks,
		engine: engine,
		sealer: sealer,
		sealed: make(map[uint64]sealedBlock),
	}, nil
}

// Blocks returns the shard-local capacity.
func (s *Shard) Blocks() uint64 { return s.blocks }

// EnableTrace starts recording the operation/leaf trace. Call before the
// shard starts serving (it is owned by the worker afterwards).
func (s *Shard) EnableTrace() { s.trace = &Trace{} }

// Trace returns the recorded trace (nil unless EnableTrace was called).
// Only safe once the shard is quiesced (service closed or via Sync).
func (s *Shard) Trace() *Trace { return s.trace }

// Write stores a 64-byte block obliviously under the shard-local id.
//
// Errors here surface verbatim through the public Store/ShardedStore API,
// so they carry the palermo: prefix and name the global (public) block id,
// never the shard-local one.
func (s *Shard) Write(local uint64, data []byte) error {
	if local >= s.blocks {
		return fmt.Errorf("palermo: internal: block %d outside shard %d capacity %d", s.Global(local), s.index, s.blocks)
	}
	if len(data) != BlockBytes {
		return fmt.Errorf("palermo: block must be %d bytes, got %d", BlockBytes, len(data))
	}
	global := s.Global(local)
	ct, epoch, err := s.sealer.Seal(global, data)
	if err != nil {
		return err
	}
	plan := s.engine.Access(local, true, epoch)
	s.sealed[local] = sealedBlock{ct: ct, epoch: epoch}
	s.writes++
	s.trafficR += uint64(plan.Reads())
	s.trafficW += uint64(plan.Writes())
	s.record(local, true, plan.DataLeaf)
	return nil
}

// Read fetches a block obliviously by shard-local id. Unwritten blocks read
// as zeros after a full-protocol access, exactly like the single Store.
func (s *Shard) Read(local uint64) ([]byte, error) {
	if local >= s.blocks {
		return nil, fmt.Errorf("palermo: internal: block %d outside shard %d capacity %d", s.Global(local), s.index, s.blocks)
	}
	plan := s.engine.Access(local, false, 0)
	s.reads++
	s.trafficR += uint64(plan.Reads())
	s.trafficW += uint64(plan.Writes())
	s.record(local, false, plan.DataLeaf)
	sb, ok := s.sealed[local]
	if !ok {
		return make([]byte, BlockBytes), nil
	}
	if plan.Val != sb.epoch {
		return nil, fmt.Errorf("palermo: protocol state diverged for block %d (epoch %d != %d)",
			s.Global(local), plan.Val, sb.epoch)
	}
	return s.sealer.Open(s.Global(local), sb.epoch, sb.ct)
}

// Global returns the public id of a shard-local block.
func (s *Shard) Global(local uint64) uint64 {
	return local*uint64(s.stride) + uint64(s.index)
}

// Snapshot returns the shard's counters. Must run on the owning worker
// goroutine (serve.Service.Sync) or after quiescence.
func (s *Shard) Snapshot() Counters {
	return Counters{
		Reads: s.reads, Writes: s.writes,
		DRAMReads: s.trafficR, DRAMWrites: s.trafficW,
		StashPeak: s.engine.StashMax(0),
	}
}

func (s *Shard) record(local uint64, write bool, leaf uint64) {
	if s.trace == nil {
		return
	}
	s.trace.Ops = append(s.trace.Ops, TraceOp{Local: local, Write: write})
	s.trace.Leaves = append(s.trace.Leaves, leaf)
}
