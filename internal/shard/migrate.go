package shard

// Live-migration primitives (DESIGN.md §11): a shard leaves its node as
// (1) a snapshot of every sealed block the backend stores, (2) a teed tail
// of the sealed writes that landed while the snapshot streamed, and (3) a
// sealed export of the exact controller metadata (ExportMeta — the
// checkpoint blob, returned instead of persisted). The receiving node
// rebuilds the shard with ImportBlocks + RestoreMeta: because the engine
// state is restored bit-exactly rather than re-derived by protocol replay,
// the migrated shard continues the SAME protocol history — leaf traces,
// counters, and sealing epochs pick up precisely where the source stopped,
// which is what lets the differential suite demand trace identity across a
// mid-sequence migration.
//
// Everything here is owner-goroutine-confined, like the rest of the shard:
// the cluster node calls these inside serve.Service.Sync closures.

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"palermo/internal/backend"
	"palermo/internal/crypt"
)

// SealedBlock is one sealed payload in migration transit: the shard-local
// id plus exactly what the untrusted backend stores — ciphertext and
// sealing epoch. Streaming these between nodes is obliviousness-neutral
// for the same reason persisting them is (DESIGN.md §7): it is the view
// the §VI untrusted party already observes.
type SealedBlock struct {
	Local uint64
	Epoch uint64
	Ct    []byte
}

// ExportBlocks snapshots every sealed block currently stored — migration
// phase 1, taken while the shard keeps serving. Under the pipeline it runs
// as an I/O-queue barrier, so the snapshot is consistent with every write
// queued before the call; pair it with StartTee in the same Sync closure
// and the snapshot plus the tee cover the write stream exactly once.
func (s *Shard) ExportBlocks() ([]SealedBlock, error) {
	if s.closed {
		return nil, fmt.Errorf("shard: shard %d is closed", s.index)
	}
	if s.ioErr != nil {
		return nil, s.ioErr
	}
	if s.ioq != nil {
		res := s.ioRound(ioReq{kind: ioSnapshot})
		return res.snap, res.err
	}
	return s.snapshotBlocks(s.be.Get), nil
}

// snapshotBlocks collects the stored blocks by probing every local id
// (backends expose no iterator; capacities are small enough that a linear
// probe is cheap). Ciphertexts are copied so the snapshot stays valid
// while the shard keeps writing.
func (s *Shard) snapshotBlocks(get func(uint64) (backend.Sealed, bool)) []SealedBlock {
	var out []SealedBlock
	for local := uint64(0); local < s.blocks; local++ {
		if sb, ok := get(local); ok {
			out = append(out, SealedBlock{
				Local: local,
				Epoch: sb.Epoch,
				Ct:    append([]byte(nil), sb.Ct...),
			})
		}
	}
	return out
}

// StartTee begins duplicating every subsequently sealed write into an
// owner-confined buffer, so the writes that land while the phase-1
// snapshot streams to the target are not lost. Call it in the same Sync
// closure as ExportBlocks; StopTee (under the cutover barrier) returns
// the buffered tail.
func (s *Shard) StartTee() {
	s.teeOn = true
	s.teeBuf = nil
}

// StopTee ends the tee and returns the sealed writes it captured, in
// arrival order (later entries supersede earlier ones for the same local,
// exactly like replaying the puts).
func (s *Shard) StopTee() []SealedBlock {
	buf := s.teeBuf
	s.teeOn = false
	s.teeBuf = nil
	return buf
}

// teeWrite records one sealed write while the tee is armed. The ct slice
// is aliased, not copied: the sealer allocates a fresh ciphertext per seal
// and no layer mutates it afterwards.
func (s *Shard) teeWrite(local uint64, ct []byte, epoch uint64) {
	if !s.teeOn {
		return
	}
	s.teeBuf = append(s.teeBuf, SealedBlock{Local: local, Epoch: epoch, Ct: ct})
}

// ExportMeta seals and returns the shard's exact controller metadata — the
// checkpoint blob, handed to the caller instead of the backend. Call it
// quiesced (inside a Sync closure, which drains the pipeline): the blob
// then describes the precise end of the shard's served history, and
// RestoreMeta on the receiving side continues that history bit-exactly.
// Like checkpoint, the blob's sealing epoch is reserved from the shard's
// own counter first, so a restored sealer can never re-issue its IV.
func (s *Shard) ExportMeta() ([]byte, uint64, error) {
	blobEpoch := s.sealer.Epoch() + 1
	if blobEpoch >= 1<<40 {
		return nil, 0, fmt.Errorf("shard: sealing counter %d exhausted the 40-bit IV field; re-key the store", blobEpoch)
	}
	s.sealer.SetEpoch(blobEpoch)
	st := shardState{
		Index: s.index, Stride: s.stride, Blocks: s.blocks,
		SealEpoch: blobEpoch,
		Reads:     s.reads, Writes: s.writes,
		TrafficR: s.trafficR, TrafficW: s.trafficW,
		TopHits: s.topHitsBase + s.engine.TopHits(),
		Engine:  s.engine.State(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, 0, fmt.Errorf("shard: encode migration state: %w", err)
	}
	if buf.Len() > crypt.MaxBlobBytes {
		return nil, 0, fmt.Errorf("shard: migration state is %d bytes, beyond the %d-byte sealing span",
			buf.Len(), crypt.MaxBlobBytes)
	}
	return s.sealer.Blob(s.metaAddr(), blobEpoch, buf.Bytes()), blobEpoch, nil
}

// ImportBlocks loads a migrated shard's sealed payloads into the backend.
// Pre-serving only: call on a freshly built shard, before EnablePipeline,
// followed by RestoreMeta (the payloads are meaningless until the engine
// metadata that indexes them is restored).
func (s *Shard) ImportBlocks(blocks []SealedBlock) error {
	if s.ioq != nil {
		return fmt.Errorf("shard: ImportBlocks must run before EnablePipeline")
	}
	for _, b := range blocks {
		if b.Local >= s.blocks {
			return fmt.Errorf("shard: imported block %d outside shard %d capacity %d", b.Local, s.index, s.blocks)
		}
		sb := backend.Sealed{Ct: append([]byte(nil), b.Ct...), Epoch: b.Epoch}
		if err := s.be.Put(b.Local, sb); err != nil {
			return fmt.Errorf("shard: import of block %d: %w", b.Local, err)
		}
	}
	return nil
}

// RestoreMeta restores a migrated shard's exact controller state from an
// ExportMeta blob: engine, sealer counter, and traffic counters, exactly
// the checkpoint-recovery path with no tail to replay. Pre-serving only.
func (s *Shard) RestoreMeta(meta []byte, metaEpoch uint64) error {
	if s.ioq != nil {
		return fmt.Errorf("shard: RestoreMeta must run before EnablePipeline")
	}
	return s.recover(meta, metaEpoch, nil)
}

// ForceCheckpoint persists a checkpoint now (durable backends; a no-op
// otherwise). The migration sink calls it right after RestoreMeta so the
// imported shard's first durable state is the migrated one — a crash
// before the first periodic checkpoint otherwise recovers the pre-import
// creation state.
func (s *Shard) ForceCheckpoint() error { return s.checkpoint() }

// Retire marks the shard surrendered by a completed migration: further
// checkpoints (including Close's farewell checkpoint) become no-ops. The
// new owner continues this shard's sealing-epoch domain from the exported
// counter, so a farewell checkpoint here would seal a second blob under
// the same (metaAddr, epoch) IV pair — AES-CTR IV reuse. A retired shard
// must serve no further operations (the node removes its slot first).
func (s *Shard) Retire() { s.retired = true }
