package shard

import (
	"bytes"
	"errors"
	"testing"

	"palermo/internal/backend"
	"palermo/internal/rng"
)

// TestStagedVsSerialShardEquivalence drives one shard serially and an
// identically-seeded shard through the staged executor with the same op
// sequence (via the routing Write/Read, which run Begin+Wait when the
// pipeline is on): payloads, counters, and the engine trace must be
// identical — the shard-level form of the pipeline determinism contract.
func TestStagedVsSerialShardEquivalence(t *testing.T) {
	key := []byte("palermo-demo-key")
	mk := func(depth int) *Shard {
		t.Helper()
		s, err := New(0, 1, 1<<10, key, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		s.EnableTrace()
		s.EnablePipeline(depth)
		return s
	}
	serial, staged := mk(1), mk(4)
	if serial.Pipelined() || !staged.Pipelined() {
		t.Fatal("pipeline gating wrong")
	}

	r := rng.New(7)
	data := make([]byte, BlockBytes)
	for i := 0; i < 800; i++ {
		id := r.Uint64n(1 << 8)
		if r.Float64() < 0.4 {
			for j := range data {
				data[j] = byte(i + j)
			}
			if err := serial.Write(id, data); err != nil {
				t.Fatal(err)
			}
			if err := staged.Write(id, data); err != nil {
				t.Fatal(err)
			}
			continue
		}
		a, errA := serial.Read(id)
		b, errB := staged.Read(id)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("op %d: errors diverged (%v vs %v)", i, errA, errB)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("op %d: payloads diverged", i)
		}
	}
	if serial.Snapshot() != staged.Snapshot() {
		t.Fatalf("counters diverged:\n serial %+v\n staged %+v", serial.Snapshot(), staged.Snapshot())
	}
	ts, tp := serial.Trace(), staged.Trace()
	if len(ts.Ops) == 0 || len(ts.Ops) != len(tp.Ops) {
		t.Fatalf("trace lengths: serial %d, staged %d", len(ts.Ops), len(tp.Ops))
	}
	for i := range ts.Ops {
		if ts.Ops[i] != tp.Ops[i] || ts.Leaves[i] != tp.Leaves[i] {
			t.Fatalf("trace diverged at %d", i)
		}
	}
	if err := serial.Close(); err != nil {
		t.Fatal(err)
	}
	if err := staged.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStagedOverlappedAccesses keeps the full pipeline window in flight
// explicitly (Begin, Begin, Wait, Wait) and checks the FIFO contract and
// payload correctness under overlap.
func TestStagedOverlappedAccesses(t *testing.T) {
	s, err := New(0, 1, 1<<10, []byte("palermo-demo-key"), 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.EnablePipeline(2)
	defer s.Close()

	w := func(id uint64, fill byte) *Access {
		t.Helper()
		a, err := s.BeginWrite(id, bytes.Repeat([]byte{fill}, BlockBytes))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1, a2 := w(5, 0xAA), w(6, 0xBB) // two writes in flight at once
	if _, err := a1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Wait(); err != nil {
		t.Fatal(err)
	}
	r1, err := s.BeginRead(5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.BeginRead(6)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := r1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, bytes.Repeat([]byte{0xAA}, BlockBytes)) ||
		!bytes.Equal(d2, bytes.Repeat([]byte{0xBB}, BlockBytes)) {
		t.Fatal("overlapped accesses returned wrong payloads")
	}
	// Unwritten blocks still read as zeros through the staged path.
	r3, err := s.BeginRead(999)
	if err != nil {
		t.Fatal(err)
	}
	z, err := r3.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(z, make([]byte, BlockBytes)) {
		t.Fatal("unwritten block not zero through staged read")
	}
}

// TestStagedValidationErrors: Begin rejects bad requests before touching
// the engine or the I/O stage, and a closed shard fails fast instead of
// deadlocking on a dead I/O goroutine.
func TestStagedValidationErrors(t *testing.T) {
	s, err := New(0, 1, 1<<4, []byte("palermo-demo-key"), 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.EnablePipeline(2)
	if _, err := s.BeginRead(1 << 4); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := s.BeginWrite(0, []byte("short")); err == nil {
		t.Fatal("undersized write accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginRead(0); err == nil {
		t.Fatal("read on closed shard accepted")
	}
	if _, err := s.BeginWrite(0, make([]byte, BlockBytes)); err == nil {
		t.Fatal("write on closed shard accepted")
	}
}

// failCkptBackend is a durable stub whose Checkpoint starts failing on
// command — the fault injection for the BeginWrite checkpoint-error path.
type failCkptBackend struct {
	blocks map[uint64]backend.Sealed
	meta   []byte
	epoch  uint64
	fail   bool
}

func newFailCkptBackend() *failCkptBackend {
	return &failCkptBackend{blocks: make(map[uint64]backend.Sealed)}
}

func (f *failCkptBackend) Get(local uint64) (backend.Sealed, bool) {
	sb, ok := f.blocks[local]
	return sb, ok
}
func (f *failCkptBackend) Put(local uint64, sb backend.Sealed) error {
	f.blocks[local] = sb
	return nil
}
func (f *failCkptBackend) Len() int      { return len(f.blocks) }
func (f *failCkptBackend) Durable() bool { return true }
func (f *failCkptBackend) Checkpoint(meta []byte, metaEpoch uint64) error {
	if f.fail {
		return errors.New("ckpt: injected failure")
	}
	f.meta = append([]byte(nil), meta...)
	f.epoch = metaEpoch
	return nil
}
func (f *failCkptBackend) Recovered() ([]byte, uint64, []backend.TailOp) { return nil, 0, nil }
func (f *failCkptBackend) Flush() error                                  { return nil }
func (f *failCkptBackend) Close() error                                  { return nil }

// TestStagedCheckpointFailureWithPipeInFlight: a checkpoint failure while
// earlier accesses are still in flight must not consume their completion
// slots (it used to panic the FIFO assertion); the shard wedges, the
// outstanding accesses resolve normally, and later Begins fail fast.
func TestStagedCheckpointFailureWithPipeInFlight(t *testing.T) {
	be := newFailCkptBackend()
	s, err := New(0, 1, 1<<10, []byte("palermo-demo-key"), 3, be)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCheckpointEvery(1) // every write crosses the threshold
	s.EnablePipeline(4)

	data := make([]byte, BlockBytes)
	a1, err := s.BeginWrite(1, data) // checkpoint succeeds
	if err != nil {
		t.Fatal(err)
	}
	be.fail = true
	// a1 is still outstanding: the failing checkpoint cannot drain it.
	a2, err := s.BeginWrite(2, data)
	if err != nil {
		t.Fatalf("BeginWrite with pipe in flight returned %v (must wedge, not error here)", err)
	}
	if s.ioErr == nil {
		t.Fatal("checkpoint failure did not wedge the shard")
	}
	if _, err := a1.Wait(); err != nil {
		t.Fatalf("outstanding access 1 failed: %v", err)
	}
	if _, err := a2.Wait(); err != nil {
		t.Fatalf("outstanding access 2 failed: %v", err)
	}
	if _, err := s.BeginWrite(3, data); err == nil {
		t.Fatal("Begin after wedge succeeded")
	}
	if _, err := s.BeginRead(1); err == nil {
		t.Fatal("read after wedge succeeded")
	}

	// With nothing outstanding, the same failure surfaces on the
	// triggering write itself, like the serial executor.
	be2 := newFailCkptBackend()
	s2, err := New(0, 1, 1<<10, []byte("palermo-demo-key"), 3, be2)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetCheckpointEvery(1)
	s2.EnablePipeline(4)
	be2.fail = true
	if err := s2.Write(1, data); err == nil {
		t.Fatal("solo write with failing checkpoint reported success")
	}
}
