package core

import (
	"testing"

	"palermo/internal/ctrl"
	"palermo/internal/dram"
	"palermo/internal/oram"
	"palermo/internal/rng"
	"palermo/internal/sim"
	"palermo/internal/workload"
)

func testPath(t *testing.T) *oram.Path {
	t.Helper()
	cfg := oram.DefaultPathConfig()
	cfg.NLines = testLines
	cfg.TreeTopBytes = 16 << 10
	e, err := oram.NewPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMeshRunsPathEngine(t *testing.T) {
	// §IV-E: the mesh must execute PathORAM plans correctly (WB fires the
	// tree-write clear), even though the gain is limited.
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	res := Mesh{Name: "path-mesh", Columns: 8}.Run(&eng, mem, testPath(t), randSource(2),
		ctrl.RunConfig{Requests: 300, Warmup: 150})
	if res.Requests != 300 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.Mem.Writes == 0 {
		t.Fatal("PathORAM write-backs missing")
	}
	for l, m := range res.StashMax {
		if m > 256 {
			t.Fatalf("level %d stash %d under path-mesh", l, m)
		}
	}
}

func TestMeshCoarseSlowerThanFull(t *testing.T) {
	run := func(coarse bool) ctrl.Result {
		var eng sim.Engine
		mem := dram.New(&eng, dram.DefaultConfig())
		return Mesh{Name: "m", Columns: 8, SoftwareCoarse: coarse}.Run(&eng, mem,
			testRing(t, oram.VariantPalermo, 1), randSource(2),
			ctrl.RunConfig{Requests: 300, Warmup: 150})
	}
	full, coarse := run(false), run(true)
	if coarse.Throughput() >= full.Throughput() {
		t.Fatalf("coarse sync (%.4g) must be slower than the full mesh (%.4g)",
			coarse.Throughput(), full.Throughput())
	}
}

func TestMeshPaddingKeepsBudget(t *testing.T) {
	gen, err := workload.New("rand", testLines, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := workload.NewBursty(gen, 1, 2) // 50% duty
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	res := Mesh{Name: "m", Columns: 4}.Run(&eng, mem, testRing(t, oram.VariantPalermo, 1), src,
		ctrl.RunConfig{Requests: 200, Warmup: 100})
	if res.Requests != 200 {
		t.Fatalf("padding consumed the real budget: %d", res.Requests)
	}
	// 50% duty: dummies ~= reals.
	if res.Dummies < 100 || res.Dummies > 400 {
		t.Fatalf("dummies = %d for 1-of-2 duty over 200 reals", res.Dummies)
	}
}

func TestMeshPaddingDeterministic(t *testing.T) {
	run := func() ctrl.Result {
		gen, _ := workload.New("pr", testLines, 1)
		src := workload.NewBursty(gen, 2, 3)
		var eng sim.Engine
		mem := dram.New(&eng, dram.DefaultConfig())
		return Mesh{Name: "m", Columns: 8}.Run(&eng, mem, testRing(t, oram.VariantPalermo, 1), src,
			ctrl.RunConfig{Requests: 200, Warmup: 100})
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Dummies != b.Dummies {
		t.Fatalf("padding nondeterministic: %d/%d vs %d/%d", a.Cycles, a.Dummies, b.Cycles, b.Dummies)
	}
}

func TestMeshTagCapture(t *testing.T) {
	a, _ := workload.New("stm", testLines, 1)
	b, _ := workload.New("rand", testLines, 2)
	mix := workload.NewTenants(rng.New(3), a, b)
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	res := Mesh{Name: "m", Columns: 8}.Run(&eng, mem, testRing(t, oram.VariantPalermo, 1), mix,
		ctrl.RunConfig{Requests: 300, Warmup: 150, KeepLatency: true})
	if len(res.Tags) != int(res.RespLat.N()) {
		t.Fatalf("tags %d vs latencies %d", len(res.Tags), res.RespLat.N())
	}
	seen := map[int]int{}
	for _, tg := range res.Tags {
		seen[tg]++
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Fatalf("tenant tags not captured: %v", seen)
	}
}

func TestMeshStashOverflowReported(t *testing.T) {
	res := runMesh(t, 8, 400)
	for l, ov := range res.StashOver {
		if ov != 0 {
			t.Fatalf("level %d overflowed the 256-tag budget %d times", l, ov)
		}
	}
}
