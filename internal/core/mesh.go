// Package core implements the paper's primary contribution: the Palermo
// ORAM controller — a 2D mesh of processing elements (PEs) that serves
// multiple ORAM requests concurrently while enforcing only the protocol's
// minimal dependencies (Fig 7/8).
//
// Geometry: each PE row serves one hierarchy level (Data, PosMap1, PosMap2);
// each PE column serves one in-flight ORAM request. Per-PE pipeline:
//
//	CP  — await the mapped leaf (on-chip PosMap3 for the deepest row;
//	      the child row's RP response otherwise)
//	LM  — after the west sibling's tree-write clear: load path metadata
//	ER  — hoisted early reshuffle (Algorithm 2's PreCheck); issuing its
//	      writes fires the east clear for non-evicting requests
//	RP  — read path; completing it answers the parent row's CP query and,
//	      on the data row, the LLC miss
//	EP  — every A-th request: evict path after RP; only then does the east
//	      clear fire (the stash-bound serialization of §IV-B)
//
// Functional state updates are committed in GlobalID order at issue time
// (the CommitHead discipline), so concurrency never changes logical
// outcomes — only DRAM timing.
package core

import (
	"palermo/internal/ctrl"
	"palermo/internal/dram"
	"palermo/internal/oram"
	"palermo/internal/sim"
	"palermo/internal/stats"
)

// CPHopLat is the PE-to-PE query/response latency in ticks.
const CPHopLat = 2

// Mesh is the Palermo PE-mesh timing controller.
type Mesh struct {
	Name    string
	Columns int // PE columns (Table III: 3 rows x 8 columns)

	// SoftwareCoarse models Palermo-SW (§IV-C): the protocol's
	// inter-request overlap survives, but the coarse software
	// synchronization around the PosMap check suppresses intra-request
	// parallelism — a hierarchy level must fully finish (including its
	// eviction writes) before its parent level may start, and the
	// tree-write clear passes to the next request only after the level
	// completes.
	SoftwareCoarse bool
}

type meshRun struct {
	cfg    ctrl.RunConfig
	eng    *sim.Engine
	mem    *dram.Memory
	oramE  oram.Engine
	src    ctrl.Source
	res    *ctrl.Result
	cols   int
	coarse bool

	levels     int
	total      int // real requests to issue (warmup + measured)
	realIssued int
	slot       int           // launch counter for round-robin column choice
	colFree    []*sim.Signal // per column: fires when its current request retires
	writeClear []*sim.Signal // per level: tree good-to-read for the next request
	prevIssued *sim.Signal   // commit-order chain

	measuring    bool
	measureStart sim.Tick
	finishedAt   sim.Tick
	retired      int
	dummyStreak  int
	padStreak    int // consecutive idle-padding dummies (bounded as a hang guard)
}

// Run executes the workload on the PE mesh.
func (m Mesh) Run(eng *sim.Engine, mem *dram.Memory, oramE oram.Engine, src ctrl.Source, cfg ctrl.RunConfig) ctrl.Result {
	if m.Columns <= 0 {
		m.Columns = 8
	}
	cfg.Requests = max(cfg.Requests, 1)
	applyDefaults(&cfg)
	r := &meshRun{
		cfg: cfg, eng: eng, mem: mem, oramE: oramE, src: src,
		cols:   m.Columns,
		coarse: m.SoftwareCoarse,
		levels: oramE.Levels(),
		total:  cfg.Requests + cfg.Warmup,
		res: &ctrl.Result{
			Protocol: m.Name,
			Levels:   make([]ctrl.LevelCycles, oramE.Levels()),
			RespLat:  stats.NewHistogram(256, 64),
		},
	}
	if cfg.KeepLatency {
		r.res.RespLat.KeepSamples()
	}
	for c := 0; c < r.cols; c++ {
		r.colFree = append(r.colFree, sim.NewFiredSignal(eng))
	}
	for l := 0; l < r.levels; l++ {
		r.writeClear = append(r.writeClear, sim.NewFiredSignal(eng))
	}
	r.prevIssued = sim.NewFiredSignal(eng)
	eng.At(eng.Now(), r.tryIssue)
	eng.Run()
	r.finish()
	return *r.res
}

func applyDefaults(c *ctrl.RunConfig) {
	if c.SampleEvery == 0 {
		c.SampleEvery = c.Requests/100 + 1
	}
	if c.PipelineLat == 0 {
		c.PipelineLat = 4
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// tryIssue assigns the next ORAM request (real or dummy) to its column as
// soon as both the column is free and the previous request has committed
// (GlobalID order).
func (r *meshRun) tryIssue() {
	if r.realIssued >= r.total {
		return
	}
	col := r.slot % r.cols
	r.slot++
	prev := r.prevIssued
	myIssued := sim.NewSignal(r.eng)
	r.prevIssued = myIssued
	sim.WaitAll(r.eng, []*sim.Signal{r.colFree[col], prev}, func() {
		r.launch(col)
		myIssued.Fire()
		r.tryIssue()
	})
}

// launch commits one request functionally and wires up its PE column.
// Dummy requests (background evictions) do not consume the real-request
// budget or the trace.
func (r *meshRun) launch(col int) {
	measured := r.realIssued >= r.cfg.Warmup

	var plan *oram.Plan
	tag := -1
	pad := false
	if is, ok := r.src.(ctrl.IdleSource); ok && is.Idle() && r.padStreak < 4096 {
		pad = true // constant-rate padding: LLC issued nothing this slot (§VI)
		r.padStreak++
	} else {
		r.padStreak = 0
	}
	if pad || (r.cfg.DummyPolicy != nil && r.dummyStreak < 64 && r.cfg.DummyPolicy()) {
		if !pad {
			r.dummyStreak++
		}
		plan = r.oramE.DummyAccess()
		if measured {
			r.res.Dummies++
		}
	} else {
		r.dummyStreak = 0
		if r.realIssued == r.cfg.Warmup {
			r.beginMeasuring()
		}
		r.realIssued++
		pa, write := r.src.Next()
		if ts, ok := r.src.(ctrl.TaggedSource); ok {
			tag = ts.Tag()
		}
		plan = r.oramE.Access(pa, write, pa^0x5bd1e995)
		if measured {
			r.res.Requests++
			r.res.ServedLines++
			if r.cfg.TrackStash && r.res.Requests%uint64(r.cfg.SampleEvery) == 0 {
				r.oramE.SampleStashes()
			}
		}
	}
	if measured {
		r.res.PlanReads += uint64(plan.Reads())
		r.res.PlanWrites += uint64(plan.Writes())
	}

	issueAt := r.eng.Now()
	retire := sim.NewBatch(r.eng, r.levels)
	freed := sim.NewSignal(r.eng)
	r.colFree[col] = freed
	retire.Sig().Wait(func() {
		r.retired++
		freed.Fire()
	})

	// CP chain: the deepest row reads on-chip PosMap3 after the query
	// propagates down; each shallower row's leaf arrives with its child's
	// RP response.
	leafReady := make([]*sim.Signal, r.levels)
	for l := 0; l < r.levels; l++ {
		leafReady[l] = sim.NewSignal(r.eng)
	}
	top := r.levels - 1
	r.eng.After(sim.Tick(top)*CPHopLat, leafReady[top].Fire)

	for l := 0; l < r.levels; l++ {
		l := l
		la := plan.Levels[l]
		prevClear := r.writeClear[l]
		myClear := sim.NewSignal(r.eng)
		r.writeClear[l] = myClear

		onRPDone := func() {
			if l > 0 {
				if !r.coarse {
					r.eng.After(CPHopLat, leafReady[l-1].Fire)
				}
				return
			}
			// Per-request captures happen here, at response time, so the
			// latency sample and its labels stay aligned even though
			// columns retire out of order.
			if measured && !plan.Dummy {
				r.res.RespLat.Add(float64(r.eng.Now() - issueAt))
				r.res.FromStash = append(r.res.FromStash, plan.FromStash)
				if r.cfg.KeepLatency {
					r.res.Leaves = append(r.res.Leaves, plan.DataLeaf)
					r.res.Tags = append(r.res.Tags, tag)
				}
			}
			if measured {
				r.finishedAt = r.eng.Now()
			}
		}
		onDone := func() { retire.Done() }
		if r.coarse {
			// Software: the parent level starts, and the next request's
			// same-level access unblocks, only after this level's whole
			// access (including eviction writes) has been issued — the
			// coarse lock region of Palermo-SW.
			onDone = func() {
				if l > 0 {
					r.eng.After(CPHopLat, leafReady[l-1].Fire)
				}
				myClear.Fire()
				retire.Done()
			}
		}
		sim.WaitAll(r.eng, []*sim.Signal{leafReady[l], prevClear}, func() {
			r.execPE(la, 0, myClear, onRPDone, onDone)
		})
	}
}

// execPE walks one PE's phases. myClear fires once the tree-modifying
// phases' writes are issued (ER for non-evict requests, EP otherwise);
// onRP fires when the RP reads complete; done fires after the last phase.
func (r *meshRun) execPE(la oram.LevelAccess, idx int, myClear *sim.Signal, onRP, done func()) {
	if idx >= len(la.Phases) {
		if !myClear.Fired() {
			myClear.Fire() // safety: a plan without ER/EP still unblocks the east PE
		}
		done()
		return
	}
	ph := la.Phases[idx]
	afterReads := func() {
		advance := func() {
			r.eng.After(r.cfg.PipelineLat, func() { r.execPE(la, idx+1, myClear, onRP, done) })
		}
		if r.coarse && len(ph.Writes) > 0 {
			// Software commits its tree writes synchronously before the
			// next protocol step; hardware fire-and-forgets them into the
			// memory controller.
			wb := sim.NewBatch(r.eng, len(ph.Writes))
			for _, w := range ph.Writes {
				r.mem.Submit(&dram.Request{Addr: w, Write: true, OnDone: func(sim.Tick) { wb.Done() }})
			}
			if ph.Kind == oram.PhaseRP {
				onRP()
			}
			wb.Sig().Wait(advance)
			return
		}
		for _, w := range ph.Writes {
			r.mem.Submit(&dram.Request{Addr: w, Write: true})
		}
		if !r.coarse {
			switch {
			case ph.Kind == oram.PhaseER && !la.Evict:
				myClear.Fire()
			case ph.Kind == oram.PhaseEP:
				myClear.Fire()
			case ph.Kind == oram.PhaseWB:
				// PathORAM plans: the unconditional write-back is the only
				// tree-modifying phase (§IV-E's PathORAM-mesh discussion).
				myClear.Fire()
			}
		}
		if ph.Kind == oram.PhaseRP {
			onRP()
		}
		advance()
	}
	if len(ph.Reads) == 0 {
		afterReads()
		return
	}
	batch := sim.NewBatch(r.eng, len(ph.Reads))
	for _, a := range ph.Reads {
		r.mem.Submit(&dram.Request{Addr: a, OnDone: func(sim.Tick) { batch.Done() }})
	}
	batch.Sig().Wait(afterReads)
}

func (r *meshRun) beginMeasuring() {
	r.measuring = true
	r.measureStart = r.eng.Now()
	r.mem.ResetStats()
	r.oramE.ResetPeaks()
	if r.cfg.OnMeasureStart != nil {
		r.cfg.OnMeasureStart()
	}
}

func (r *meshRun) finish() {
	if r.finishedAt > r.measureStart {
		r.res.Cycles = r.finishedAt - r.measureStart
	}
	r.res.Mem = r.mem.Stats()
	for l := 0; l < r.levels; l++ {
		r.res.StashMax = append(r.res.StashMax, r.oramE.StashMax(l))
		r.res.StashTrace = append(r.res.StashTrace, r.oramE.StashSamples(l))
		r.res.StashOver = append(r.res.StashOver, r.oramE.StashOverflows(l))
	}
}
