package core

import (
	"testing"

	"palermo/internal/ctrl"
	"palermo/internal/dram"
	"palermo/internal/oram"
	"palermo/internal/rng"
	"palermo/internal/sim"
)

const testLines = 1 << 16

func testRing(t *testing.T, variant oram.RingVariant, seed uint64) *oram.Ring {
	t.Helper()
	e, err := oram.NewRing(oram.RingConfig{
		NLines: testLines, Z: 4, S: 5, A: 3, PosLevels: 2, Seed: seed,
		TreeTopBytes: 16 << 10,
		Variant:      variant,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randSource(seed uint64) ctrl.Source {
	r := rng.New(seed)
	return ctrl.FuncSource(func() (uint64, bool) {
		return r.Uint64n(testLines), r.Float64() < 0.2
	})
}

func runSerial(t *testing.T, variant oram.RingVariant, overlap bool, reqs int) ctrl.Result {
	t.Helper()
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	s := ctrl.Serial{Name: "serial", OverlapDataRP: overlap}
	return s.Run(&eng, mem, testRing(t, variant, 1), randSource(2),
		ctrl.RunConfig{Requests: reqs, Warmup: reqs / 2, KeepLatency: true})
}

func runMesh(t *testing.T, cols, reqs int) ctrl.Result {
	t.Helper()
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	m := Mesh{Name: "palermo", Columns: cols}
	return m.Run(&eng, mem, testRing(t, oram.VariantPalermo, 1), randSource(2),
		ctrl.RunConfig{Requests: reqs, Warmup: reqs / 2, KeepLatency: true, TrackStash: true})
}

func TestSerialRunCompletes(t *testing.T) {
	res := runSerial(t, oram.VariantBaseline, false, 400)
	if res.Requests != 400 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles measured")
	}
	if res.Mem.BandwidthUtil <= 0 || res.Mem.BandwidthUtil >= 1 {
		t.Fatalf("bandwidth util = %f", res.Mem.BandwidthUtil)
	}
	if res.RespLat.N() != 400 {
		t.Fatalf("latency samples = %d", res.RespLat.N())
	}
}

func TestSerialRingSyncDominates(t *testing.T) {
	res := runSerial(t, oram.VariantBaseline, false, 400)
	// §III-A: the serialized RingORAM controller spends most of its time in
	// ORAM-sync stalls and utilizes well under half the DRAM bandwidth.
	if sf := res.SyncFraction(); sf < 0.5 {
		t.Fatalf("sync fraction = %.2f, want > 0.5", sf)
	}
	if res.Mem.BandwidthUtil > 0.45 {
		t.Fatalf("bandwidth util = %.2f, want < 0.45 for the serial baseline", res.Mem.BandwidthUtil)
	}
}

func TestMeshRunCompletes(t *testing.T) {
	res := runMesh(t, 8, 400)
	if res.Requests != 400 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles measured")
	}
	if res.RespLat.N() != 400 {
		t.Fatalf("latency samples = %d", res.RespLat.N())
	}
	if len(res.FromStash) != 400 {
		t.Fatalf("FromStash samples = %d", len(res.FromStash))
	}
}

func TestMeshOutperformsSerial(t *testing.T) {
	serial := runSerial(t, oram.VariantBaseline, false, 400)
	mesh := runMesh(t, 8, 400)
	speedup := mesh.Throughput() / serial.Throughput()
	if speedup < 1.5 {
		t.Fatalf("mesh speedup over serial = %.2fx, want > 1.5x", speedup)
	}
	if mesh.Mem.BandwidthUtil <= serial.Mem.BandwidthUtil {
		t.Fatalf("mesh BW %.2f must exceed serial BW %.2f",
			mesh.Mem.BandwidthUtil, serial.Mem.BandwidthUtil)
	}
	if mesh.Mem.AvgOutstanding <= serial.Mem.AvgOutstanding {
		t.Fatalf("mesh outstanding %.1f must exceed serial %.1f",
			mesh.Mem.AvgOutstanding, serial.Mem.AvgOutstanding)
	}
}

func TestMeshColumnScaling(t *testing.T) {
	one := runMesh(t, 1, 300)
	eight := runMesh(t, 8, 300)
	if eight.Throughput() <= one.Throughput()*1.2 {
		t.Fatalf("8 columns (%.3g) should clearly beat 1 column (%.3g)",
			eight.Throughput(), one.Throughput())
	}
}

func TestPalermoSWBetweenSerialAndMesh(t *testing.T) {
	serial := runSerial(t, oram.VariantBaseline, false, 400)
	sw := runSerial(t, oram.VariantPalermo, true, 400)
	mesh := runMesh(t, 8, 400)
	if sw.Throughput() <= serial.Throughput() {
		t.Fatalf("Palermo-SW (%.3g) should beat serial RingORAM (%.3g)",
			sw.Throughput(), serial.Throughput())
	}
	if mesh.Throughput() <= sw.Throughput() {
		t.Fatalf("Palermo mesh (%.3g) should beat Palermo-SW (%.3g)",
			mesh.Throughput(), sw.Throughput())
	}
}

func TestMeshStashBounded(t *testing.T) {
	res := runMesh(t, 8, 600)
	for l, m := range res.StashMax {
		if m > 256 {
			t.Fatalf("level %d stash peaked at %d under concurrency", l, m)
		}
	}
	if len(res.StashTrace[0]) == 0 {
		t.Fatal("stash trace not recorded")
	}
}

func TestMeshDummyPolicy(t *testing.T) {
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	m := Mesh{Name: "palermo", Columns: 4}
	ring := testRing(t, oram.VariantPalermo, 1)
	calls := 0
	cfg := ctrl.RunConfig{
		Requests: 100, Warmup: 50,
		DummyPolicy: func() bool { calls++; return calls%5 == 0 },
	}
	res := m.Run(&eng, mem, ring, randSource(2), cfg)
	if res.Dummies == 0 {
		t.Fatal("dummy policy produced no dummies")
	}
	if res.Requests != 100 {
		t.Fatalf("real requests = %d", res.Requests)
	}
}

func TestMeshDeterminism(t *testing.T) {
	a := runMesh(t, 8, 200)
	b := runMesh(t, 8, 200)
	if a.Cycles != b.Cycles || a.PlanReads != b.PlanReads {
		t.Fatalf("mesh nondeterministic: %d/%d vs %d/%d cycles/reads",
			a.Cycles, a.PlanReads, b.Cycles, b.PlanReads)
	}
}

func TestMeshLatencyIsolation(t *testing.T) {
	// §VI: response latencies must cluster tightly (no heavy tail from
	// concurrency interference).
	res := runMesh(t, 8, 600)
	med := res.RespLat.Median()
	p95 := res.RespLat.Percentile(95)
	if med == 0 {
		t.Fatal("no latency median")
	}
	if p95 > 4*med {
		t.Fatalf("p95 latency %.0f vs median %.0f: tail too heavy", p95, med)
	}
}
