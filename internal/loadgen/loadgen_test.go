package loadgen

import (
	"testing"

	"palermo"
)

func TestRunDrivesStore(t *testing.T) {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 12, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, err := Run(st, Options{
		Clients:   4,
		Ops:       500,
		ReadRatio: 0.8,
		ZipfTheta: 0.99,
		Batch:     4,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Reads + res.Stats.Writes; got != 500 {
		t.Fatalf("completed %d ops, want 500", got)
	}
	if res.OpsPerSec() <= 0 || res.Wall <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Traffic.DRAMReads == 0 {
		t.Fatal("no ORAM traffic recorded")
	}
	// The Zipf head concentrates duplicate ids inside the 4-wide read
	// batches, so fan-out dedup must fire at least occasionally.
	if res.Stats.DedupHits == 0 {
		t.Fatal("skewed batched reads produced no dedup fan-outs")
	}
}

// TestRunReportsDeltasOnWarmTarget: driving a target that already carries
// history (a long-lived server, a previous run) must report this run's
// operations, not the target's cumulative lifetime counters.
func TestRunReportsDeltasOnWarmTarget(t *testing.T) {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 12, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	opts := Options{Clients: 2, Ops: 300, ReadRatio: 0.5, Batch: 2, Seed: 1}
	if _, err := Run(st, opts); err != nil {
		t.Fatal(err) // warm the target with 300 ops of history
	}
	res, err := Run(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Reads + res.Stats.Writes; got != 300 {
		t.Fatalf("warm-target run reported %d ops, want its own 300", got)
	}
	if res.Stats.ReadLat.N != res.Stats.Reads {
		t.Fatalf("latency count %d does not match the run's %d reads",
			res.Stats.ReadLat.N, res.Stats.Reads)
	}
	if res.Traffic.DRAMReads == 0 || res.Traffic.AmplificationFactor <= 0 {
		t.Fatalf("run traffic not isolated from history: %+v", res.Traffic)
	}
}

// TestRunWarmTargetPercentilesAreRunLocal: against a warm target the
// service's cumulative histograms mix earlier runs' samples into the
// lifetime p50/p99, which two snapshots cannot un-mix. The driver's own
// per-call samples must take over: the reported percentiles come from
// RunReadLat/RunWriteLat, and those summaries count exactly this run's
// calls.
func TestRunWarmTargetPercentilesAreRunLocal(t *testing.T) {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 12, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	opts := Options{Clients: 2, Ops: 400, ReadRatio: 0.5, Batch: 2, Seed: 7}
	if _, err := Run(st, opts); err != nil {
		t.Fatal(err) // history the snapshots must factor out
	}
	res, err := Run(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	// One sample per ReadBatch call and per Write call: reads/Batch calls
	// (the op split guarantees whole batches here) plus the writes.
	wantReadCalls := res.Stats.Reads / uint64(opts.Batch)
	if res.RunReadLat.N != wantReadCalls {
		t.Fatalf("run-local read summary counted %d calls, want %d",
			res.RunReadLat.N, wantReadCalls)
	}
	if res.RunWriteLat.N != res.Stats.Writes {
		t.Fatalf("run-local write summary counted %d calls, want %d writes",
			res.RunWriteLat.N, res.Stats.Writes)
	}
	// The warm-target stats must carry the run-local percentiles, not the
	// lifetime-weighted ones.
	if res.Stats.ReadLat.P50Us != res.RunReadLat.P50Us ||
		res.Stats.ReadLat.P99Us != res.RunReadLat.P99Us {
		t.Fatalf("warm-target read percentiles %+v not substituted from run-local %+v",
			res.Stats.ReadLat, res.RunReadLat)
	}
	if res.Stats.WriteLat.P50Us != res.RunWriteLat.P50Us ||
		res.Stats.WriteLat.P99Us != res.RunWriteLat.P99Us {
		t.Fatalf("warm-target write percentiles %+v not substituted from run-local %+v",
			res.Stats.WriteLat, res.RunWriteLat)
	}
	if res.RunReadLat.P99Us < res.RunReadLat.P50Us || res.RunReadLat.MeanUs <= 0 {
		t.Fatalf("implausible run-local read summary: %+v", res.RunReadLat)
	}
}

func TestRunValidates(t *testing.T) {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 10, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, o := range []Options{
		{Clients: 0, Ops: 10, Batch: 1},
		{Clients: 1, Ops: 0, Batch: 1},
		{Clients: 1, Ops: 10, Batch: 0},
		{Clients: 1, Ops: 10, Batch: 1, ReadRatio: 1.5},
		{Clients: 1, Ops: 10, Batch: 1, ZipfTheta: -1},
	} {
		if _, err := Run(st, o); err == nil {
			t.Fatalf("options %+v must be rejected", o)
		}
	}
}
