package loadgen

import (
	"errors"
	"sync"
	"testing"
	"time"

	"palermo"
)

func TestRunDrivesStore(t *testing.T) {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 12, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, err := Run(st, Options{
		Clients:   4,
		Ops:       500,
		ReadRatio: 0.8,
		ZipfTheta: 0.99,
		Batch:     4,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Reads + res.Stats.Writes; got != 500 {
		t.Fatalf("completed %d ops, want 500", got)
	}
	if res.OpsPerSec() <= 0 || res.Wall <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Traffic.DRAMReads == 0 {
		t.Fatal("no ORAM traffic recorded")
	}
	// The Zipf head concentrates duplicate ids inside the 4-wide read
	// batches, so fan-out dedup must fire at least occasionally.
	if res.Stats.DedupHits == 0 {
		t.Fatal("skewed batched reads produced no dedup fan-outs")
	}
}

// TestRunReportsDeltasOnWarmTarget: driving a target that already carries
// history (a long-lived server, a previous run) must report this run's
// operations, not the target's cumulative lifetime counters.
func TestRunReportsDeltasOnWarmTarget(t *testing.T) {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 12, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	opts := Options{Clients: 2, Ops: 300, ReadRatio: 0.5, Batch: 2, Seed: 1}
	if _, err := Run(st, opts); err != nil {
		t.Fatal(err) // warm the target with 300 ops of history
	}
	res, err := Run(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Reads + res.Stats.Writes; got != 300 {
		t.Fatalf("warm-target run reported %d ops, want its own 300", got)
	}
	if res.Stats.ReadLat.N != res.Stats.Reads {
		t.Fatalf("latency count %d does not match the run's %d reads",
			res.Stats.ReadLat.N, res.Stats.Reads)
	}
	if res.Traffic.DRAMReads == 0 || res.Traffic.AmplificationFactor <= 0 {
		t.Fatalf("run traffic not isolated from history: %+v", res.Traffic)
	}
}

// TestRunWarmTargetPercentilesAreRunLocal: against a warm target the
// service's cumulative histograms mix earlier runs' samples into the
// lifetime p50/p99, which two snapshots cannot un-mix. The driver's own
// per-call samples must take over: the reported percentiles come from
// RunReadLat/RunWriteLat, and those summaries count exactly this run's
// calls.
func TestRunWarmTargetPercentilesAreRunLocal(t *testing.T) {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 12, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	opts := Options{Clients: 2, Ops: 400, ReadRatio: 0.5, Batch: 2, Seed: 7}
	if _, err := Run(st, opts); err != nil {
		t.Fatal(err) // history the snapshots must factor out
	}
	res, err := Run(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	// One sample per ReadBatch call and per Write call: reads/Batch calls
	// (the op split guarantees whole batches here) plus the writes.
	wantReadCalls := res.Stats.Reads / uint64(opts.Batch)
	if res.RunReadLat.N != wantReadCalls {
		t.Fatalf("run-local read summary counted %d calls, want %d",
			res.RunReadLat.N, wantReadCalls)
	}
	if res.RunWriteLat.N != res.Stats.Writes {
		t.Fatalf("run-local write summary counted %d calls, want %d writes",
			res.RunWriteLat.N, res.Stats.Writes)
	}
	// The warm-target stats must carry the run-local percentiles, not the
	// lifetime-weighted ones.
	if res.Stats.ReadLat.P50Us != res.RunReadLat.P50Us ||
		res.Stats.ReadLat.P99Us != res.RunReadLat.P99Us {
		t.Fatalf("warm-target read percentiles %+v not substituted from run-local %+v",
			res.Stats.ReadLat, res.RunReadLat)
	}
	if res.Stats.WriteLat.P50Us != res.RunWriteLat.P50Us ||
		res.Stats.WriteLat.P99Us != res.RunWriteLat.P99Us {
		t.Fatalf("warm-target write percentiles %+v not substituted from run-local %+v",
			res.Stats.WriteLat, res.RunWriteLat)
	}
	if res.RunReadLat.P99Us < res.RunReadLat.P50Us || res.RunReadLat.MeanUs <= 0 {
		t.Fatalf("implausible run-local read summary: %+v", res.RunReadLat)
	}
}

// glitchTarget is an in-memory Target whose call number failAt (1-based,
// counted across all clients) fails exactly once; every other call
// succeeds instantly. It isolates the abort path: exactly one client
// sees the error, and the question is what the others do about it.
type glitchTarget struct {
	mu     sync.Mutex
	calls  int
	failAt int
}

func (g *glitchTarget) Blocks() uint64 { return 1 << 10 }

func (g *glitchTarget) tick() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.calls++
	if g.calls == g.failAt {
		return errors.New("glitch: injected failure")
	}
	return nil
}

func (g *glitchTarget) Write(id uint64, data []byte) error { return g.tick() }

func (g *glitchTarget) ReadBatch(ids []uint64) ([][]byte, error) {
	if err := g.tick(); err != nil {
		return nil, err
	}
	out := make([][]byte, len(ids))
	for i := range out {
		out[i] = make([]byte, palermo.BlockSize)
	}
	return out, nil
}

func (g *glitchTarget) Snapshot() (palermo.ServiceStats, palermo.TrafficReport, error) {
	return palermo.ServiceStats{}, palermo.TrafficReport{}, nil
}

// TestTimedRunAbortsOnFirstError: regression for the stuck-soak bug. A
// time-bounded run used to let the surviving clients hammer the target
// until the deadline after one client had already failed — a 10-minute
// soak with an early error burned the full 10 minutes before reporting
// it. The first error must abort every client promptly.
func TestTimedRunAbortsOnFirstError(t *testing.T) {
	g := &glitchTarget{failAt: 50}
	start := time.Now()
	_, err := Run(g, Options{
		Clients: 4, Duration: 10 * time.Second, ReadRatio: 0.5, Batch: 1, Seed: 1,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run must surface the injected client error")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("run took %v to abort after the first error; the 10s deadline leaked into the failure path", elapsed)
	}
}

// TestOpBoundedRunAbortsOnFirstError: the op-bounded stopping rule must
// observe the same abort signal — with a large budget and fast ops, the
// surviving clients would otherwise spin through millions of calls.
func TestOpBoundedRunAbortsOnFirstError(t *testing.T) {
	g := &glitchTarget{failAt: 50}
	start := time.Now()
	_, err := Run(g, Options{
		Clients: 4, Ops: 50_000_000, ReadRatio: 0.5, Batch: 1, Seed: 1,
	})
	if err == nil {
		t.Fatal("run must surface the injected client error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("op-bounded run ground through its budget (%v) instead of aborting", elapsed)
	}
}

// TestArrivalOffsetsDeterministic: the open-loop arrival schedule is a
// pure function of (seed, client id, rate) — same inputs, identical
// intended send times; different client or seed, a different stream.
func TestArrivalOffsetsDeterministic(t *testing.T) {
	a := ArrivalOffsets(7, 0, 1000, 500)
	b := ArrivalOffsets(7, 0, 1000, 500)
	if len(a) != 500 {
		t.Fatalf("got %d offsets, want 500", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d differs between identical schedules: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0 || (i > 0 && a[i] < a[i-1]) {
			t.Fatalf("offsets must be nondecreasing and nonnegative: [%d]=%v", i, a[i])
		}
	}
	c := ArrivalOffsets(7, 1, 1000, 500)
	d := ArrivalOffsets(8, 0, 1000, 500)
	if a[10] == c[10] && a[11] == c[11] {
		t.Fatal("client 1's schedule must diverge from client 0's")
	}
	if a[10] == d[10] && a[11] == d[11] {
		t.Fatal("a different seed must produce a different schedule")
	}
	// Mean inter-arrival gap should approximate 1/rate (1ms at 1000/s).
	mean := a[len(a)-1] / time.Duration(len(a))
	if mean < 500*time.Microsecond || mean > 2*time.Millisecond {
		t.Fatalf("mean gap %v implausible for 1000 ops/s", mean)
	}
}

// TestOpenLoopRun drives a real store open-loop and checks the rate
// accounting: OfferedRate echoes the option, every attempt lands in
// exactly one of completed/shed, and intended-send summaries cover the
// completed ops.
func TestOpenLoopRun(t *testing.T) {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 12, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, err := Run(st, Options{
		Clients: 2, Ops: 400, ReadRatio: 0.7, Batch: 1, Seed: 3, Rate: 50_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OfferedRate != 50_000 {
		t.Fatalf("OfferedRate = %v, want 50000", res.OfferedRate)
	}
	if res.AchievedRate <= 0 {
		t.Fatalf("AchievedRate = %v, want > 0", res.AchievedRate)
	}
	done := res.Stats.Reads + res.Stats.Writes
	if done+res.ShedOps != 400 {
		t.Fatalf("completed %d + shed %d must account for all 400 attempts", done, res.ShedOps)
	}
	if res.RunReadLat.N+res.RunWriteLat.N != done {
		t.Fatalf("intended-send samples %d != completed ops %d",
			res.RunReadLat.N+res.RunWriteLat.N, done)
	}
}

// TestRunCountsShedsNotErrors: with an admission deadline no queued
// request can meet, every operation comes back palermo.ErrRetry — the
// run must complete normally, count the sheds, and keep them out of the
// latency summaries and the completed-op counters.
func TestRunCountsShedsNotErrors(t *testing.T) {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{
		Blocks: 1 << 12, Shards: 2, AdmissionDeadline: 1, // 1ns: sheds everything
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, err := Run(st, Options{Clients: 2, Ops: 200, ReadRatio: 0.5, Batch: 1, Seed: 5})
	if err != nil {
		t.Fatalf("shed operations must not be run errors: %v", err)
	}
	if res.ShedOps != 200 {
		t.Fatalf("ShedOps = %d, want all 200 attempts shed", res.ShedOps)
	}
	if got := res.Stats.Reads + res.Stats.Writes; got != 0 {
		t.Fatalf("%d ops reported completed; shed ops must not count", got)
	}
	if res.RunReadLat.N != 0 || res.RunWriteLat.N != 0 {
		t.Fatalf("shed ops leaked into latency summaries: %+v %+v",
			res.RunReadLat, res.RunWriteLat)
	}
	if res.Stats.Sheds != 200 {
		t.Fatalf("service counted %d sheds, want 200", res.Stats.Sheds)
	}
}

// TestRunMarksLifetimeWeightedQueueExec: regression for the warm-target
// percentile lie. QueueLat/ExecLat have no client-side observable, so on
// a warm target their p50/p99 stay lifetime-weighted — the result must
// say so instead of printing them indistinguishably from run-exact ones.
func TestRunMarksLifetimeWeightedQueueExec(t *testing.T) {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 12, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	opts := Options{Clients: 2, Ops: 200, ReadRatio: 0.5, Batch: 1, Seed: 2}
	res, err := Run(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueExecLifetime {
		t.Fatal("fresh target: queue/exec percentiles are run-exact, must not be flagged")
	}
	res, err = Run(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.QueueExecLifetime {
		t.Fatal("warm target: queue/exec percentiles are lifetime-weighted and must be flagged")
	}
}

func TestRunValidates(t *testing.T) {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 10, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, o := range []Options{
		{Clients: 0, Ops: 10, Batch: 1},
		{Clients: 1, Ops: 0, Batch: 1},
		{Clients: 1, Ops: 10, Batch: 0},
		{Clients: 1, Ops: 10, Batch: 1, ReadRatio: 1.5},
		{Clients: 1, Ops: 10, Batch: 1, ZipfTheta: -1},
		{Clients: 1, Ops: 10, Batch: 1, Rate: -1},
		{Clients: 1, Ops: 10, Batch: 4, Rate: 1000}, // open loop paces single ops
	} {
		if _, err := Run(st, o); err == nil {
			t.Fatalf("options %+v must be rejected", o)
		}
	}
}
