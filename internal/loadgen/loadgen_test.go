package loadgen

import (
	"testing"

	"palermo"
)

func TestRunDrivesStore(t *testing.T) {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 12, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, err := Run(st, Options{
		Clients:   4,
		Ops:       500,
		ReadRatio: 0.8,
		ZipfTheta: 0.99,
		Batch:     4,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Reads + res.Stats.Writes; got != 500 {
		t.Fatalf("completed %d ops, want 500", got)
	}
	if res.OpsPerSec() <= 0 || res.Wall <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Traffic.DRAMReads == 0 {
		t.Fatal("no ORAM traffic recorded")
	}
	// The Zipf head concentrates duplicate ids inside the 4-wide read
	// batches, so fan-out dedup must fire at least occasionally.
	if res.Stats.DedupHits == 0 {
		t.Fatal("skewed batched reads produced no dedup fan-outs")
	}
}

func TestRunValidates(t *testing.T) {
	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{Blocks: 1 << 10, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, o := range []Options{
		{Clients: 0, Ops: 10, Batch: 1},
		{Clients: 1, Ops: 0, Batch: 1},
		{Clients: 1, Ops: 10, Batch: 0},
		{Clients: 1, Ops: 10, Batch: 1, ReadRatio: 1.5},
		{Clients: 1, Ops: 10, Batch: 1, ZipfTheta: -1},
	} {
		if _, err := Run(st, o); err == nil {
			t.Fatalf("options %+v must be rejected", o)
		}
	}
}
