// Package loadgen is the shared closed-loop workload driver for the
// sharded oblivious store service: N client goroutines issue a read/write
// mix (optionally Zipf-skewed, optionally batch-read) against any Target —
// an in-process palermo.ShardedStore or a remote palermo.Client — and the
// driver reports wall-clock plus the service's own stats. cmd/palermo-load
// (both the in-process and the -addr socket mode) and cmd/palermo-bench's
// serving-path figure run through this one implementation, so the network
// tax is measured against an identical workload loop.
package loadgen

import (
	"fmt"
	"sync"
	"time"

	"palermo"
	"palermo/internal/rng"
)

// Target is the store surface a run drives. Both *palermo.ShardedStore
// and *palermo.Client satisfy it; Snapshot folds the two observability
// calls into one so a remote target pays a single wire round trip.
type Target interface {
	Blocks() uint64
	Write(id uint64, data []byte) error
	ReadBatch(ids []uint64) ([][]byte, error)
	Snapshot() (palermo.ServiceStats, palermo.TrafficReport, error)
}

// Options configures one closed-loop run. Exactly one of Ops (op-bounded)
// or Duration (time-bounded) selects the stopping rule.
type Options struct {
	Clients   int           // concurrent client goroutines (>= 1)
	Ops       int           // total operations across all clients (op-bounded runs)
	Duration  time.Duration // wall-clock budget (time-bounded runs, e.g. soaks)
	ReadRatio float64       // fraction of operations that are reads, in [0, 1]
	ZipfTheta float64       // Zipf skew over the id space (0 = uniform)
	Batch     int           // reads per ReadBatch call (1 = single-op loop)
	Seed      uint64        // base seed; client streams derive from it
}

func (o *Options) validate() error {
	if o.Clients < 1 || o.Batch < 1 {
		return fmt.Errorf("loadgen: Clients and Batch must be >= 1")
	}
	if (o.Ops >= 1) == (o.Duration > 0) {
		return fmt.Errorf("loadgen: exactly one of Ops and Duration must be set")
	}
	if o.Ops < 0 || o.Duration < 0 {
		return fmt.Errorf("loadgen: Ops and Duration must not be negative")
	}
	if o.ReadRatio < 0 || o.ReadRatio > 1 {
		return fmt.Errorf("loadgen: ReadRatio must be in [0, 1]")
	}
	if o.ZipfTheta < 0 {
		return fmt.Errorf("loadgen: ZipfTheta must be >= 0")
	}
	return nil
}

// Result is what a run measured. Stats/Traffic describe this run only:
// the target is snapshotted before the first client starts and after the
// last one finishes, and the counters are the difference — so driving a
// long-lived remote server (whose counters accumulate across runs and
// clients) reports this run's work, not the server's lifetime totals.
// Latency percentiles are the one exception: they condense the target's
// cumulative histogram and cannot be un-mixed from two snapshots, so they
// are exact for a fresh target and lifetime-weighted otherwise. The store
// is left open; the caller closes it.
type Result struct {
	Wall    time.Duration
	Stats   palermo.ServiceStats
	Traffic palermo.TrafficReport
}

// OpsPerSec returns completed operations per wall-clock second.
func (r Result) OpsPerSec() float64 {
	return float64(r.Stats.Reads+r.Stats.Writes) / r.Wall.Seconds()
}

// Run drives the store with o.Clients closed-loop clients until o.Ops
// operations have completed (op budget split evenly) or o.Duration
// wall-clock has elapsed — whichever stopping rule Options selects. Ids
// are drawn from the store's full capacity, so the run is valid for any
// store the caller built. The first client error aborts the run and is
// returned.
func Run(st Target, o Options) (Result, error) {
	if err := o.validate(); err != nil {
		return Result{}, err
	}
	baseStats, baseTraffic, err := st.Snapshot()
	if err != nil {
		return Result{}, fmt.Errorf("loadgen: baseline snapshot: %w", err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, o.Clients)
	start := time.Now()
	var deadline time.Time
	if o.Duration > 0 {
		deadline = start.Add(o.Duration)
	}
	for c := 0; c < o.Clients; c++ {
		share := o.Ops / o.Clients
		if c < o.Ops%o.Clients {
			share++
		}
		wg.Add(1)
		go func(c, share int) {
			defer wg.Done()
			if err := client(st, uint64(c), share, deadline, o); err != nil {
				errCh <- err
			}
		}(c, share)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	for err := range errCh {
		return Result{}, err
	}
	stats, traffic, err := st.Snapshot()
	if err != nil {
		return Result{}, fmt.Errorf("loadgen: final snapshot: %w", err)
	}
	return Result{
		Wall:    wall,
		Stats:   deltaStats(stats, baseStats),
		Traffic: deltaTraffic(traffic, baseTraffic),
	}, nil
}

// deltaStats subtracts the baseline snapshot so the result counts this
// run's operations only.
func deltaStats(end, base palermo.ServiceStats) palermo.ServiceStats {
	end.Reads -= base.Reads
	end.Writes -= base.Writes
	end.DedupHits -= base.DedupHits
	end.ReadLat = deltaLatency(end.ReadLat, base.ReadLat)
	end.WriteLat = deltaLatency(end.WriteLat, base.WriteLat)
	end.QueueLat = deltaLatency(end.QueueLat, base.QueueLat)
	end.ExecLat = deltaLatency(end.ExecLat, base.ExecLat)
	return end
}

// deltaLatency un-mixes the run's count and mean from the cumulative
// summaries. Percentiles summarize the target's whole-lifetime histogram
// and cannot be subtracted, so the end snapshot's values stand (exact
// when base.N is zero, i.e. a fresh target).
func deltaLatency(end, base palermo.LatencySummary) palermo.LatencySummary {
	if base.N == 0 {
		return end
	}
	out := palermo.LatencySummary{N: end.N - base.N, P50Us: end.P50Us, P99Us: end.P99Us}
	if out.N > 0 {
		out.MeanUs = (float64(end.N)*end.MeanUs - float64(base.N)*base.MeanUs) / float64(out.N)
	}
	return out
}

// deltaTraffic subtracts the baseline traffic counters and recomputes the
// amplification factor over the run's own operations. StashPeak is a
// lifetime high-water mark and is reported as-is.
func deltaTraffic(end, base palermo.TrafficReport) palermo.TrafficReport {
	end.Reads -= base.Reads
	end.Writes -= base.Writes
	end.DRAMReads -= base.DRAMReads
	end.DRAMWrites -= base.DRAMWrites
	end.AmplificationFactor = 0
	if ops := end.Reads + end.Writes; ops > 0 {
		end.AmplificationFactor = float64(end.DRAMReads+end.DRAMWrites) / float64(ops)
	}
	return end
}

// client runs one closed-loop client: pick an id (uniform or Zipfian over
// the store's capacity), issue a read or write, wait, repeat — until its
// op share is spent (op-bounded) or the deadline passes (time-bounded).
// Zipf rank 0 is the hottest id; striped routing spreads consecutive
// ranks across all shards.
func client(st Target, id uint64, ops int, deadline time.Time, o Options) error {
	blocks := st.Blocks()
	r := rng.New(o.Seed + 0x2545f4914f6cdd1d*(id+1))
	var z *rng.Zipf
	if o.ZipfTheta > 0 {
		z = rng.NewZipf(r, blocks, o.ZipfTheta)
	}
	next := func() uint64 {
		if z != nil {
			return z.Next()
		}
		return r.Uint64n(blocks)
	}
	timed := !deadline.IsZero()
	more := func(done int) bool {
		if timed {
			return time.Now().Before(deadline)
		}
		return done < ops
	}
	buf := make([]byte, palermo.BlockSize)
	ids := make([]uint64, 0, o.Batch)
	for done := 0; more(done); {
		if r.Float64() >= o.ReadRatio {
			buf[0] = byte(done)
			buf[palermo.BlockSize-1] = byte(id)
			if err := st.Write(next(), buf); err != nil {
				return err
			}
			done++
			continue
		}
		n := o.Batch
		if !timed {
			if remaining := ops - done; n > remaining {
				n = remaining
			}
		}
		ids = ids[:0]
		for i := 0; i < n; i++ {
			ids = append(ids, next())
		}
		if _, err := st.ReadBatch(ids); err != nil {
			return err
		}
		done += n
	}
	return nil
}
