// Package loadgen is the shared closed-loop workload driver for the
// sharded oblivious store service: N client goroutines issue a read/write
// mix (optionally Zipf-skewed, optionally batch-read) against any Target —
// an in-process palermo.ShardedStore or a remote palermo.Client — and the
// driver reports wall-clock plus the service's own stats. cmd/palermo-load
// (both the in-process and the -addr socket mode) and cmd/palermo-bench's
// serving-path figure run through this one implementation, so the network
// tax is measured against an identical workload loop.
package loadgen

import (
	"fmt"
	"sync"
	"time"

	"palermo"
	"palermo/internal/rng"
	"palermo/internal/stats"
)

// Target is the store surface a run drives. Both *palermo.ShardedStore
// and *palermo.Client satisfy it; Snapshot folds the two observability
// calls into one so a remote target pays a single wire round trip.
type Target interface {
	Blocks() uint64
	Write(id uint64, data []byte) error
	ReadBatch(ids []uint64) ([][]byte, error)
	Snapshot() (palermo.ServiceStats, palermo.TrafficReport, error)
}

// Options configures one closed-loop run. Exactly one of Ops (op-bounded)
// or Duration (time-bounded) selects the stopping rule.
type Options struct {
	Clients   int           // concurrent client goroutines (>= 1)
	Ops       int           // total operations across all clients (op-bounded runs)
	Duration  time.Duration // wall-clock budget (time-bounded runs, e.g. soaks)
	ReadRatio float64       // fraction of operations that are reads, in [0, 1]
	ZipfTheta float64       // Zipf skew over the id space (0 = uniform)
	Batch     int           // reads per ReadBatch call (1 = single-op loop)
	Seed      uint64        // base seed; client streams derive from it
}

func (o *Options) validate() error {
	if o.Clients < 1 || o.Batch < 1 {
		return fmt.Errorf("loadgen: Clients and Batch must be >= 1")
	}
	if (o.Ops >= 1) == (o.Duration > 0) {
		return fmt.Errorf("loadgen: exactly one of Ops and Duration must be set")
	}
	if o.Ops < 0 || o.Duration < 0 {
		return fmt.Errorf("loadgen: Ops and Duration must not be negative")
	}
	if o.ReadRatio < 0 || o.ReadRatio > 1 {
		return fmt.Errorf("loadgen: ReadRatio must be in [0, 1]")
	}
	if o.ZipfTheta < 0 {
		return fmt.Errorf("loadgen: ZipfTheta must be >= 0")
	}
	return nil
}

// Result is what a run measured. Stats/Traffic describe this run only:
// the target is snapshotted before the first client starts and after the
// last one finishes, and the counters are the difference — so driving a
// long-lived remote server (whose counters accumulate across runs and
// clients) reports this run's work, not the server's lifetime totals.
//
// Latency percentiles in Stats are delta-correct too: the driver samples
// every Write and ReadBatch call into its own run-local histograms
// (RunReadLat/RunWriteLat), and when the target was warm at run start —
// its cumulative histograms already held earlier runs' samples, which two
// snapshots cannot un-mix — the run-local p50/p99 replace the lifetime-
// weighted ones. Against a fresh target the server-side percentiles stand
// (they additionally exclude client-side call overhead). QueueLat/ExecLat
// split worker time and have no client-side observable, so they stay
// lifetime-weighted on warm targets. The store is left open; the caller
// closes it.
type Result struct {
	Wall    time.Duration
	Stats   palermo.ServiceStats
	Traffic palermo.TrafficReport

	// RunReadLat/RunWriteLat summarize this run's own call latencies,
	// sampled at the driver: one sample per ReadBatch call (so a batch
	// counts once) and one per Write call. Always exact for the run,
	// whatever the target's history.
	RunReadLat  palermo.LatencySummary
	RunWriteLat palermo.LatencySummary
}

// OpsPerSec returns completed operations per wall-clock second.
func (r Result) OpsPerSec() float64 {
	return float64(r.Stats.Reads+r.Stats.Writes) / r.Wall.Seconds()
}

// Run drives the store with o.Clients closed-loop clients until o.Ops
// operations have completed (op budget split evenly) or o.Duration
// wall-clock has elapsed — whichever stopping rule Options selects. Ids
// are drawn from the store's full capacity, so the run is valid for any
// store the caller built. The first client error aborts the run and is
// returned.
func Run(st Target, o Options) (Result, error) {
	if err := o.validate(); err != nil {
		return Result{}, err
	}
	baseStats, baseTraffic, err := st.Snapshot()
	if err != nil {
		return Result{}, fmt.Errorf("loadgen: baseline snapshot: %w", err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, o.Clients)
	samples := make([]*latSampler, o.Clients)
	start := time.Now()
	var deadline time.Time
	if o.Duration > 0 {
		deadline = start.Add(o.Duration)
	}
	for c := 0; c < o.Clients; c++ {
		share := o.Ops / o.Clients
		if c < o.Ops%o.Clients {
			share++
		}
		samples[c] = newLatSampler()
		wg.Add(1)
		go func(c, share int) {
			defer wg.Done()
			if err := client(st, uint64(c), share, deadline, o, samples[c]); err != nil {
				errCh <- err
			}
		}(c, share)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	for err := range errCh {
		return Result{}, err
	}
	endStats, traffic, err := st.Snapshot()
	if err != nil {
		return Result{}, fmt.Errorf("loadgen: final snapshot: %w", err)
	}
	res := Result{
		Wall:    wall,
		Traffic: deltaTraffic(traffic, baseTraffic),
	}
	reads, writes := newLatHistogram(), newLatHistogram()
	for _, s := range samples {
		reads.Merge(s.reads)
		writes.Merge(s.writes)
	}
	res.RunReadLat = summarize(reads)
	res.RunWriteLat = summarize(writes)
	res.Stats = deltaStats(endStats, baseStats, res.RunReadLat, res.RunWriteLat)
	return res, nil
}

// latSampler collects one client's call latencies (µs histograms, same
// bucketing as the service's own).
type latSampler struct {
	reads, writes *stats.Histogram
}

func newLatSampler() *latSampler {
	return &latSampler{reads: newLatHistogram(), writes: newLatHistogram()}
}

func newLatHistogram() *stats.Histogram { return stats.NewHistogram(4096, 5) }

func summarize(h *stats.Histogram) palermo.LatencySummary {
	return palermo.LatencySummary{
		N:      h.N(),
		MeanUs: h.Mean(),
		P50Us:  h.Quantile(0.50),
		P99Us:  h.Quantile(0.99),
	}
}

// deltaStats subtracts the baseline snapshot so the result counts this
// run's operations only. runRead/runWrite are the driver's run-local call
// summaries, substituted for the un-subtractable lifetime percentiles when
// the target was warm.
func deltaStats(end, base palermo.ServiceStats, runRead, runWrite palermo.LatencySummary) palermo.ServiceStats {
	end.Reads -= base.Reads
	end.Writes -= base.Writes
	end.DedupHits -= base.DedupHits
	end.PrefetchPlanned -= base.PrefetchPlanned
	end.ReadLat = deltaLatency(end.ReadLat, base.ReadLat, runRead)
	end.WriteLat = deltaLatency(end.WriteLat, base.WriteLat, runWrite)
	end.QueueLat = deltaLatency(end.QueueLat, base.QueueLat, palermo.LatencySummary{})
	end.ExecLat = deltaLatency(end.ExecLat, base.ExecLat, palermo.LatencySummary{})
	return end
}

// deltaLatency un-mixes the run's count and mean from the cumulative
// summaries. Percentiles summarize the target's whole-lifetime histogram
// and cannot be subtracted; against a fresh target (base.N == 0) the end
// snapshot's values are already exact and stand, otherwise the run-local
// sample percentiles replace them (when the caller measured any — the
// QueueLat/ExecLat split has no client-side observable and passes a zero
// summary, keeping the lifetime values).
func deltaLatency(end, base, run palermo.LatencySummary) palermo.LatencySummary {
	if base.N == 0 {
		return end
	}
	out := palermo.LatencySummary{N: end.N - base.N, P50Us: end.P50Us, P99Us: end.P99Us}
	if run.N > 0 {
		out.P50Us, out.P99Us = run.P50Us, run.P99Us
	}
	if out.N > 0 {
		out.MeanUs = (float64(end.N)*end.MeanUs - float64(base.N)*base.MeanUs) / float64(out.N)
	}
	return out
}

// deltaTraffic subtracts the baseline traffic counters and recomputes the
// amplification factor over the run's own operations. StashPeak is a
// lifetime high-water mark and is reported as-is.
func deltaTraffic(end, base palermo.TrafficReport) palermo.TrafficReport {
	end.Reads -= base.Reads
	end.Writes -= base.Writes
	end.DRAMReads -= base.DRAMReads
	end.DRAMWrites -= base.DRAMWrites
	end.TreeTopHits -= base.TreeTopHits
	end.PrefetchIssued -= base.PrefetchIssued
	end.PrefetchUsed -= base.PrefetchUsed
	end.PrefetchStale -= base.PrefetchStale
	end.AmplificationFactor = 0
	if ops := end.Reads + end.Writes; ops > 0 {
		end.AmplificationFactor = float64(end.DRAMReads+end.DRAMWrites) / float64(ops)
	}
	return end
}

// client runs one closed-loop client: pick an id (uniform or Zipfian over
// the store's capacity), issue a read or write, wait, repeat — until its
// op share is spent (op-bounded) or the deadline passes (time-bounded).
// Zipf rank 0 is the hottest id; striped routing spreads consecutive
// ranks across all shards.
func client(st Target, id uint64, ops int, deadline time.Time, o Options, s *latSampler) error {
	blocks := st.Blocks()
	r := rng.New(o.Seed + 0x2545f4914f6cdd1d*(id+1))
	var z *rng.Zipf
	if o.ZipfTheta > 0 {
		z = rng.NewZipf(r, blocks, o.ZipfTheta)
	}
	next := func() uint64 {
		if z != nil {
			return z.Next()
		}
		return r.Uint64n(blocks)
	}
	timed := !deadline.IsZero()
	more := func(done int) bool {
		if timed {
			return time.Now().Before(deadline)
		}
		return done < ops
	}
	buf := make([]byte, palermo.BlockSize)
	ids := make([]uint64, 0, o.Batch)
	for done := 0; more(done); {
		if r.Float64() >= o.ReadRatio {
			buf[0] = byte(done)
			buf[palermo.BlockSize-1] = byte(id)
			t0 := time.Now()
			if err := st.Write(next(), buf); err != nil {
				return err
			}
			s.writes.Add(float64(time.Since(t0).Microseconds()))
			done++
			continue
		}
		n := o.Batch
		if !timed {
			if remaining := ops - done; n > remaining {
				n = remaining
			}
		}
		ids = ids[:0]
		for i := 0; i < n; i++ {
			ids = append(ids, next())
		}
		t0 := time.Now()
		if _, err := st.ReadBatch(ids); err != nil {
			return err
		}
		s.reads.Add(float64(time.Since(t0).Microseconds()))
		done += n
	}
	return nil
}
