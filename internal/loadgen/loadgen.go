// Package loadgen is the shared workload driver for the sharded
// oblivious store service: N client goroutines issue a read/write mix
// (optionally Zipf-skewed, optionally batch-read) against any Target —
// an in-process palermo.ShardedStore or a remote palermo.Client — and
// the driver reports wall-clock plus the service's own stats.
// cmd/palermo-load (both the in-process and the -addr socket mode) and
// cmd/palermo-bench's serving-path figures run through this one
// implementation, so the network tax is measured against an identical
// workload loop.
//
// Two load models:
//
//   - Closed loop (default): each client issues its next operation as
//     soon as the previous one completes. Throughput is self-clocking,
//     but the model coordinates with the server — when the service
//     stalls, the clients stop sending, so the stall shows up in at
//     most Clients samples and the latency percentiles lie
//     (coordinated omission).
//   - Open loop (Options.Rate > 0): each client draws a deterministic
//     Poisson arrival schedule before-the-fact and sends at those
//     intended times regardless of completions; a client that falls
//     behind catches up in a burst, never skips. Latency is measured
//     from the *intended* send time, so server stalls are charged to
//     every sample they delayed — the wrk2/HdrHistogram correction.
package loadgen

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"palermo"
	"palermo/internal/rng"
	"palermo/internal/stats"
)

// Target is the store surface a run drives. Both *palermo.ShardedStore
// and *palermo.Client satisfy it; Snapshot folds the two observability
// calls into one so a remote target pays a single wire round trip.
type Target interface {
	Blocks() uint64
	Write(id uint64, data []byte) error
	ReadBatch(ids []uint64) ([][]byte, error)
	Snapshot() (palermo.ServiceStats, palermo.TrafficReport, error)
}

// Options configures one run. Exactly one of Ops (op-bounded) or
// Duration (time-bounded) selects the stopping rule; Rate selects the
// load model.
type Options struct {
	Clients   int           // concurrent client goroutines (>= 1)
	Ops       int           // total operations across all clients (op-bounded runs)
	Duration  time.Duration // wall-clock budget (time-bounded runs, e.g. soaks)
	ReadRatio float64       // fraction of operations that are reads, in [0, 1]
	ZipfTheta float64       // Zipf skew over the id space (0 = uniform)
	Batch     int           // reads per ReadBatch call (1 = single-op loop)
	Seed      uint64        // base seed; client streams derive from it

	// Rate switches the run to open-loop load generation: the total
	// offered rate in operations per second, split evenly across the
	// clients, each following its own deterministic Poisson arrival
	// schedule (see ArrivalOffsets). 0 = closed loop. Open-loop runs
	// require Batch == 1 (the schedule paces individual operations) and
	// report latency from the intended send time, so queueing delay a
	// closed loop would hide is charged to the samples.
	Rate float64
}

func (o *Options) validate() error {
	if o.Clients < 1 || o.Batch < 1 {
		return fmt.Errorf("loadgen: Clients and Batch must be >= 1")
	}
	if (o.Ops >= 1) == (o.Duration > 0) {
		return fmt.Errorf("loadgen: exactly one of Ops and Duration must be set")
	}
	if o.Ops < 0 || o.Duration < 0 {
		return fmt.Errorf("loadgen: Ops and Duration must not be negative")
	}
	if o.ReadRatio < 0 || o.ReadRatio > 1 {
		return fmt.Errorf("loadgen: ReadRatio must be in [0, 1]")
	}
	if o.ZipfTheta < 0 {
		return fmt.Errorf("loadgen: ZipfTheta must be >= 0")
	}
	if o.Rate < 0 {
		return fmt.Errorf("loadgen: Rate must be >= 0")
	}
	if o.Rate > 0 && o.Batch != 1 {
		return fmt.Errorf("loadgen: open-loop runs (Rate > 0) require Batch == 1")
	}
	return nil
}

// Result is what a run measured. Stats/Traffic describe this run only:
// the target is snapshotted before the first client starts and after the
// last one finishes, and the counters are the difference — so driving a
// long-lived remote server (whose counters accumulate across runs and
// clients) reports this run's work, not the server's lifetime totals.
//
// Latency percentiles in Stats are delta-correct too: the driver samples
// every Write and ReadBatch call into its own run-local histograms
// (RunReadLat/RunWriteLat), and when the target was warm at run start —
// its cumulative histograms already held earlier runs' samples, which two
// snapshots cannot un-mix — the run-local p50/p99 replace the lifetime-
// weighted ones. Against a fresh target the server-side percentiles stand
// (they additionally exclude client-side call overhead). QueueLat/ExecLat
// split worker time and have no client-side observable, so they stay
// lifetime-weighted on warm targets. The store is left open; the caller
// closes it.
type Result struct {
	Wall    time.Duration
	Stats   palermo.ServiceStats
	Traffic palermo.TrafficReport

	// RunReadLat/RunWriteLat summarize this run's own call latencies,
	// sampled at the driver: one sample per ReadBatch call (so a batch
	// counts once) and one per Write call. Always exact for the run,
	// whatever the target's history. In open-loop runs the sample is
	// measured from the operation's *intended* send time (coordinated-
	// omission corrected); shed operations are excluded.
	RunReadLat  palermo.LatencySummary
	RunWriteLat palermo.LatencySummary

	// QueueExecLifetime reports that the target was warm at run start:
	// its cumulative queue/exec histograms already held earlier runs'
	// samples, which two snapshots cannot un-mix, so Stats.QueueLat and
	// Stats.ExecLat percentiles are lifetime-weighted — they describe
	// the target's whole history, not this run alone. (Their N and mean
	// are still delta-correct, and ReadLat/WriteLat percentiles are
	// replaced by the run-local samples.) False against a fresh target,
	// where every percentile is run-exact.
	QueueExecLifetime bool

	// OfferedRate echoes Options.Rate (0 for closed-loop runs);
	// AchievedRate is the rate the service actually completed — admitted
	// operations per wall-clock second. The gap between them, together
	// with ShedOps, is the overload signature: an open-loop run past
	// saturation keeps offering, and the service sheds or queues the
	// excess.
	OfferedRate  float64
	AchievedRate float64

	// ShedOps counts operations the service shed under overload
	// (palermo.ErrRetry): attempted, never executed, excluded from every
	// latency summary and from Stats.Reads/Writes.
	ShedOps uint64
}

// OpsPerSec returns completed operations per wall-clock second.
func (r Result) OpsPerSec() float64 {
	return float64(r.Stats.Reads+r.Stats.Writes) / r.Wall.Seconds()
}

// Run drives the store with o.Clients clients until o.Ops operations
// have been attempted (op budget split evenly) or o.Duration wall-clock
// has elapsed — whichever stopping rule Options selects. Ids are drawn
// from the store's full capacity, so the run is valid for any store the
// caller built. The first client error aborts the whole run promptly —
// every other client observes the shared abort signal, time-bounded
// runs included — and is returned. Operations the service shed under
// overload (palermo.ErrRetry) are not errors: they are counted in
// Result.ShedOps and the run continues.
func Run(st Target, o Options) (Result, error) {
	if err := o.validate(); err != nil {
		return Result{}, err
	}
	baseStats, baseTraffic, err := st.Snapshot()
	if err != nil {
		return Result{}, fmt.Errorf("loadgen: baseline snapshot: %w", err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, o.Clients)
	samples := make([]*latSampler, o.Clients)
	sheds := make([]uint64, o.Clients)
	abort := make(chan struct{})
	var abortOnce sync.Once
	start := time.Now()
	var deadline time.Time
	if o.Duration > 0 {
		deadline = start.Add(o.Duration)
	}
	for c := 0; c < o.Clients; c++ {
		share := o.Ops / o.Clients
		if c < o.Ops%o.Clients {
			share++
		}
		samples[c] = newLatSampler()
		wg.Add(1)
		go func(c, share int) {
			defer wg.Done()
			cl := clientState{
				st: st, id: uint64(c), ops: share, deadline: deadline,
				start: start, o: o, s: samples[c], sheds: &sheds[c], abort: abort,
			}
			if err := cl.run(); err != nil {
				errCh <- err
				abortOnce.Do(func() { close(abort) })
			}
		}(c, share)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	for err := range errCh {
		return Result{}, err
	}
	endStats, traffic, err := st.Snapshot()
	if err != nil {
		return Result{}, fmt.Errorf("loadgen: final snapshot: %w", err)
	}
	res := Result{
		Wall:              wall,
		Traffic:           deltaTraffic(traffic, baseTraffic),
		QueueExecLifetime: baseStats.QueueLat.N > 0 || baseStats.ExecLat.N > 0,
		OfferedRate:       o.Rate,
	}
	reads, writes := newLatHistogram(), newLatHistogram()
	for _, s := range samples {
		reads.Merge(s.reads)
		writes.Merge(s.writes)
	}
	for _, n := range sheds {
		res.ShedOps += n
	}
	res.RunReadLat = summarize(reads)
	res.RunWriteLat = summarize(writes)
	res.Stats = deltaStats(endStats, baseStats, res.RunReadLat, res.RunWriteLat)
	res.AchievedRate = res.OpsPerSec()
	return res, nil
}

// latSampler collects one client's call latencies (µs histograms, same
// bucketing as the service's own).
type latSampler struct {
	reads, writes *stats.Histogram
}

func newLatSampler() *latSampler {
	return &latSampler{reads: newLatHistogram(), writes: newLatHistogram()}
}

func newLatHistogram() *stats.Histogram { return stats.NewHistogram(4096, 5) }

func summarize(h *stats.Histogram) palermo.LatencySummary {
	return palermo.LatencySummary{
		N:      h.N(),
		MeanUs: h.Mean(),
		P50Us:  h.Quantile(0.50),
		P99Us:  h.Quantile(0.99),
	}
}

// deltaStats subtracts the baseline snapshot so the result counts this
// run's operations only. runRead/runWrite are the driver's run-local call
// summaries, substituted for the un-subtractable lifetime percentiles when
// the target was warm.
func deltaStats(end, base palermo.ServiceStats, runRead, runWrite palermo.LatencySummary) palermo.ServiceStats {
	end.Reads -= base.Reads
	end.Writes -= base.Writes
	end.DedupHits -= base.DedupHits
	end.PrefetchPlanned -= base.PrefetchPlanned
	end.Sheds -= base.Sheds
	end.ReadLat = deltaLatency(end.ReadLat, base.ReadLat, runRead)
	end.WriteLat = deltaLatency(end.WriteLat, base.WriteLat, runWrite)
	end.QueueLat = deltaLatency(end.QueueLat, base.QueueLat, palermo.LatencySummary{})
	end.ExecLat = deltaLatency(end.ExecLat, base.ExecLat, palermo.LatencySummary{})
	return end
}

// deltaLatency un-mixes the run's count and mean from the cumulative
// summaries. Percentiles summarize the target's whole-lifetime histogram
// and cannot be subtracted; against a fresh target (base.N == 0) the end
// snapshot's values are already exact and stand, otherwise the run-local
// sample percentiles replace them (when the caller measured any — the
// QueueLat/ExecLat split has no client-side observable and passes a zero
// summary, keeping the lifetime values).
func deltaLatency(end, base, run palermo.LatencySummary) palermo.LatencySummary {
	if base.N == 0 {
		return end
	}
	out := palermo.LatencySummary{N: end.N - base.N, P50Us: end.P50Us, P99Us: end.P99Us}
	if run.N > 0 {
		out.P50Us, out.P99Us = run.P50Us, run.P99Us
	}
	if out.N > 0 {
		out.MeanUs = (float64(end.N)*end.MeanUs - float64(base.N)*base.MeanUs) / float64(out.N)
	}
	return out
}

// deltaTraffic subtracts the baseline traffic counters and recomputes the
// amplification factor over the run's own operations. StashPeak is a
// lifetime high-water mark and is reported as-is.
func deltaTraffic(end, base palermo.TrafficReport) palermo.TrafficReport {
	end.Reads -= base.Reads
	end.Writes -= base.Writes
	end.DRAMReads -= base.DRAMReads
	end.DRAMWrites -= base.DRAMWrites
	end.TreeTopHits -= base.TreeTopHits
	end.PrefetchIssued -= base.PrefetchIssued
	end.PrefetchUsed -= base.PrefetchUsed
	end.PrefetchStale -= base.PrefetchStale
	end.AmplificationFactor = 0
	if ops := end.Reads + end.Writes; ops > 0 {
		end.AmplificationFactor = float64(end.DRAMReads+end.DRAMWrites) / float64(ops)
	}
	return end
}

// opSeedMul and arrivalSeedMul derive each client's two independent
// deterministic streams from the base seed: the op-mix stream (which id,
// read or write) and the open-loop arrival schedule. Separate streams
// mean pacing a run does not perturb which ids its clients touch.
const (
	opSeedMul      = 0x2545f4914f6cdd1d
	arrivalSeedMul = 0x9e3779b97f4a7c15
)

// clientState is one workload client's parameters.
type clientState struct {
	st       Target
	id       uint64
	ops      int // this client's share of the op budget (op-bounded runs)
	deadline time.Time
	start    time.Time
	o        Options
	s        *latSampler
	sheds    *uint64
	abort    <-chan struct{} // closed when any client fails: stop now
}

// run dispatches on the load model.
func (c *clientState) run() error {
	if c.o.Rate > 0 {
		return c.runOpen()
	}
	return c.runClosed()
}

// aborted reports whether another client's error ended the run.
func (c *clientState) aborted() bool {
	select {
	case <-c.abort:
		return true
	default:
		return false
	}
}

// opMix builds the client's deterministic id/op-mix stream.
func (c *clientState) opMix() (r *rng.Rand, next func() uint64) {
	blocks := c.st.Blocks()
	r = rng.New(c.o.Seed + opSeedMul*(c.id+1))
	var z *rng.Zipf
	if c.o.ZipfTheta > 0 {
		z = rng.NewZipf(r, blocks, c.o.ZipfTheta)
	}
	next = func() uint64 {
		if z != nil {
			return z.Next()
		}
		return r.Uint64n(blocks)
	}
	return r, next
}

// runClosed is the closed-loop client: pick an id (uniform or Zipfian
// over the store's capacity), issue a read or write, wait, repeat —
// until its op share is spent (op-bounded) or the deadline passes
// (time-bounded). Zipf rank 0 is the hottest id; striped routing
// spreads consecutive ranks across all shards.
func (c *clientState) runClosed() error {
	r, next := c.opMix()
	timed := !c.deadline.IsZero()
	more := func(done int) bool {
		if c.aborted() {
			return false
		}
		if timed {
			return time.Now().Before(c.deadline)
		}
		return done < c.ops
	}
	buf := make([]byte, palermo.BlockSize)
	ids := make([]uint64, 0, c.o.Batch)
	for done := 0; more(done); {
		if r.Float64() >= c.o.ReadRatio {
			buf[0] = byte(done)
			buf[palermo.BlockSize-1] = byte(c.id)
			t0 := time.Now()
			err := c.st.Write(next(), buf)
			if errors.Is(err, palermo.ErrRetry) {
				*c.sheds++
				done++
				continue
			}
			if err != nil {
				return err
			}
			c.s.writes.Add(float64(time.Since(t0).Microseconds()))
			done++
			continue
		}
		n := c.o.Batch
		if !timed {
			if remaining := c.ops - done; n > remaining {
				n = remaining
			}
		}
		ids = ids[:0]
		for i := 0; i < n; i++ {
			ids = append(ids, next())
		}
		t0 := time.Now()
		_, err := c.st.ReadBatch(ids)
		if errors.Is(err, palermo.ErrRetry) {
			// At least one op of the call was shed; the op budget counts
			// attempts, so the call is spent either way.
			*c.sheds++
			done += n
			continue
		}
		if err != nil {
			return err
		}
		c.s.reads.Add(float64(time.Since(t0).Microseconds()))
		done += n
	}
	return nil
}

// runOpen is the open-loop client: follow the precomputed arrival
// schedule, sending each operation at (or as soon as possible after)
// its intended time, and charge every sample the interval from intended
// send to completion. A client running behind schedule catches up in a
// burst — arrivals are never skipped, so the offered op count is a pure
// function of (rate, elapsed time), not of the server's speed.
func (c *clientState) runOpen() error {
	r, next := c.opMix()
	ar := rng.New(c.o.Seed + arrivalSeedMul*(c.id+1))
	perClient := c.o.Rate / float64(c.o.Clients)
	timed := !c.deadline.IsZero()
	buf := make([]byte, palermo.BlockSize)
	ids := make([]uint64, 1)
	var offset time.Duration
	for done := 0; ; done++ {
		if !timed && done >= c.ops {
			return nil
		}
		offset += expGap(ar, perClient)
		intended := c.start.Add(offset)
		if timed && intended.After(c.deadline) {
			return nil
		}
		if !sleepUntil(intended, c.abort) {
			return nil
		}
		var err error
		isRead := r.Float64() < c.o.ReadRatio
		if isRead {
			ids[0] = next()
			_, err = c.st.ReadBatch(ids)
		} else {
			buf[0] = byte(done)
			buf[palermo.BlockSize-1] = byte(c.id)
			err = c.st.Write(next(), buf)
		}
		lat := float64(time.Since(intended).Microseconds())
		if errors.Is(err, palermo.ErrRetry) {
			*c.sheds++
			continue
		}
		if err != nil {
			return err
		}
		if isRead {
			c.s.reads.Add(lat)
		} else {
			c.s.writes.Add(lat)
		}
	}
}

// expGap draws one exponential inter-arrival gap (a Poisson process at
// the given rate in ops/s).
func expGap(r *rng.Rand, rate float64) time.Duration {
	u := r.Float64() // in [0, 1): log1p(-u) is finite
	return time.Duration(-math.Log1p(-u) / rate * float64(time.Second))
}

// sleepUntil blocks until t (or returns immediately when t has passed —
// the catch-up burst) unless abort closes first; it reports whether the
// client should proceed.
func sleepUntil(t time.Time, abort <-chan struct{}) bool {
	d := time.Until(t)
	if d <= 0 {
		select {
		case <-abort:
			return false
		default:
			return true
		}
	}
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return true
	case <-abort:
		return false
	}
}

// ArrivalOffsets returns the first n arrival offsets (run start to
// intended send) of client id's open-loop schedule under the given base
// seed and *per-client* rate. The schedule is a pure function of these
// arguments — the driver draws from the identical stream — so two runs
// with the same options intend exactly the same send times, and an
// open-loop run is reproducible in the same sense a seeded closed-loop
// run is.
func ArrivalOffsets(seed, id uint64, perClientRate float64, n int) []time.Duration {
	ar := rng.New(seed + arrivalSeedMul*(id+1))
	out := make([]time.Duration, n)
	var offset time.Duration
	for i := range out {
		offset += expGap(ar, perClientRate)
		out[i] = offset
	}
	return out
}
