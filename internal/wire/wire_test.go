package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func block(fill byte) []byte { return bytes.Repeat([]byte{fill}, BlockBytes) }

func roundTripFrame(t *testing.T, op byte, reqID uint64, payload []byte) Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, op, reqID, payload); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != op || f.ReqID != reqID || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("frame round trip mutated: %+v", f)
	}
	return f
}

func TestFrameRoundTrip(t *testing.T) {
	roundTripFrame(t, OpRead, 0, AppendReadReq(nil, 42))
	roundTripFrame(t, OpStats, ^uint64(0), nil)
	roundTripFrame(t, Resp(OpWrite), 7, AppendOKResp(nil, nil))
}

func TestReadFrameErrors(t *testing.T) {
	good := AppendFrame(nil, OpRead, 1, AppendReadReq(nil, 5))

	// Clean EOF between frames is io.EOF, not a typed corruption error.
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
	// Truncation inside the header and inside the payload.
	for _, cut := range []int{1, HeaderLen - 1, HeaderLen + 3} {
		if _, err := ReadFrame(bytes.NewReader(good[:cut])); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: %v", cut, err)
		}
	}
	// Corrupt magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatal("bad magic accepted")
	}
	// Unsupported version.
	bad = append([]byte(nil), good...)
	bad[2] = 9
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadVersion) {
		t.Fatal("bad version accepted")
	}
	// Oversized length field must be rejected before any allocation.
	bad = append([]byte(nil), good...)
	binary.BigEndian.PutUint32(bad[12:16], MaxPayload+1)
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("oversized length accepted")
	}
	if err := WriteFrame(io.Discard, OpRead, 1, make([]byte, MaxPayload+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("oversized write accepted")
	}
}

func TestRequestPayloadRoundTrips(t *testing.T) {
	if id, err := ParseReadReq(AppendReadReq(nil, 99)); err != nil || id != 99 {
		t.Fatalf("read req: %d %v", id, err)
	}
	id, blk, err := ParseWriteReq(AppendWriteReq(nil, 3, block(0xAB)))
	if err != nil || id != 3 || !bytes.Equal(blk, block(0xAB)) {
		t.Fatalf("write req: %d %v", id, err)
	}

	ids := []uint64{0, 1, ^uint64(0), 42}
	p, err := AppendReadBatchReq(nil, ids)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseReadBatchReq(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("read batch id %d mutated", i)
		}
	}

	blocks := [][]byte{block(1), block(2), block(3), block(4)}
	p, err = AppendWriteBatchReq(nil, ids, blocks)
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, gotBlocks, err := ParseWriteBatchReq(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if gotIDs[i] != ids[i] || !bytes.Equal(gotBlocks[i], blocks[i]) {
			t.Fatalf("write batch entry %d mutated", i)
		}
	}
}

func TestBatchBoundaries(t *testing.T) {
	// Empty and oversize batches are rejected at encode time.
	if _, err := AppendReadBatchReq(nil, nil); !errors.Is(err, ErrMalformed) {
		t.Fatal("empty batch accepted")
	}
	if _, err := AppendReadBatchReq(nil, make([]uint64, MaxOps+1)); !errors.Is(err, ErrMalformed) {
		t.Fatal("oversize batch accepted")
	}
	if _, err := AppendWriteBatchReq(nil, []uint64{1, 2}, [][]byte{block(0)}); !errors.Is(err, ErrMalformed) {
		t.Fatal("mismatched batch accepted")
	}
	if _, err := AppendWriteBatchReq(nil, []uint64{1}, [][]byte{[]byte("short")}); !errors.Is(err, ErrMalformed) {
		t.Fatal("short block accepted")
	}
	// MaxOps exactly is legal.
	big := make([]uint64, MaxOps)
	p, err := AppendReadBatchReq(nil, big)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ParseReadBatchReq(p); err != nil || len(got) != MaxOps {
		t.Fatalf("MaxOps batch: %d %v", len(got), err)
	}
	// A count prefix inconsistent with the body length is malformed.
	binary.BigEndian.PutUint32(p, MaxOps-1)
	if _, err := ParseReadBatchReq(p); !errors.Is(err, ErrMalformed) {
		t.Fatal("inconsistent count accepted")
	}
}

func TestResponses(t *testing.T) {
	st, body, _, err := ParseResp(AppendOKResp(nil, block(7)))
	if err != nil || st != StatusOK {
		t.Fatalf("ok resp: %v %v", st, err)
	}
	if blk, err := ParseReadResp(body); err != nil || !bytes.Equal(blk, block(7)) {
		t.Fatal("read resp body mutated")
	}

	st, _, msg, err := ParseResp(AppendErrResp(nil, StatusClosed, "drained"))
	if err != nil || st != StatusClosed || msg != "drained" {
		t.Fatalf("err resp: %v %q %v", st, msg, err)
	}
	// A StatusOK passed to AppendErrResp must not forge an OK response.
	st, _, _, err = ParseResp(AppendErrResp(nil, StatusOK, "oops"))
	if err != nil || st == StatusOK {
		t.Fatalf("forged OK: %v %v", st, err)
	}
	if _, _, _, err := ParseResp(nil); !errors.Is(err, ErrMalformed) {
		t.Fatal("empty response accepted")
	}
	if _, _, _, err := ParseResp([]byte{42}); !errors.Is(err, ErrMalformed) {
		t.Fatal("unknown status accepted")
	}

	blocks := [][]byte{block(9), block(8)}
	rb, err := AppendReadBatchResp(nil, blocks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseReadBatchResp(rb)
	if err != nil || len(got) != 2 || !bytes.Equal(got[1], block(8)) {
		t.Fatalf("read batch resp: %v", err)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	in := Stats{
		Blocks: 1 << 20, Shards: 8,
		Reads: 101, Writes: 17, DedupHits: 4,
		ReadLat:     Latency{N: 101, MeanUs: 12.5, P50Us: 10, P99Us: 95},
		WriteLat:    Latency{N: 17, MeanUs: 20.25, P50Us: 15, P99Us: 130},
		QueueLat:    Latency{N: 118, MeanUs: 3.5, P50Us: 2, P99Us: 40},
		ExecLat:     Latency{N: 118, MeanUs: 16.75, P50Us: 13, P99Us: 110},
		EngineReads: 97, EngineWrites: 17,
		DRAMReads: 12345, DRAMWrites: 6789, StashPeak: 33,
		MaxBatch:       4096,
		TreeTopHits:    543210,
		PrefetchIssued: 88, PrefetchUsed: 80, PrefetchStale: 3,
	}
	out, err := ParseStats(AppendStats(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("stats round trip mutated:\n in %+v\nout %+v", in, out)
	}
	if _, err := ParseStats([]byte{1, 2, 3}); !errors.Is(err, ErrMalformed) {
		t.Fatal("short stats accepted")
	}
}

// FuzzDecodeFrame feeds arbitrary bytes to the frame and payload decoders:
// they must return typed errors, never panic, and never over-allocate.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, OpRead, 1, AppendReadReq(nil, 5)))
	f.Add(AppendFrame(nil, OpWrite, 2, AppendWriteReq(nil, 3, block(1))))
	if p, err := AppendReadBatchReq(nil, []uint64{1, 2, 3}); err == nil {
		f.Add(AppendFrame(nil, OpReadBatch, 3, p))
	}
	f.Add(AppendFrame(nil, Resp(OpStats), 4, AppendOKResp(nil, AppendStats(nil, Stats{Blocks: 8}))))
	// Version-5 additions: a StatusRetry shed response and a stats body
	// carrying a nonzero shed counter.
	f.Add(AppendFrame(nil, Resp(OpWrite), 5, AppendErrResp(nil, StatusRetry, "request shed under overload")))
	f.Add(AppendFrame(nil, Resp(OpStats), 6, AppendOKResp(nil, AppendStats(nil, Stats{Blocks: 8, Sheds: 1 << 20}))))
	f.Add([]byte("PL\x01\x01garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			if err != io.EOF && !strings.HasPrefix(err.Error(), "wire: ") {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Whatever op the frame claims, every payload parser must be total.
		ParseReadReq(fr.Payload)
		ParseWriteReq(fr.Payload)
		ParseReadBatchReq(fr.Payload)
		ParseWriteBatchReq(fr.Payload)
		if st, body, _, err := ParseResp(fr.Payload); err == nil && st == StatusOK {
			ParseReadResp(body)
			ParseReadBatchResp(body)
			ParseStats(body)
		}
	})
}

// FuzzPayloadRoundTrip checks encode∘decode is the identity over all op
// codes and boundary sizes the fuzzer reaches.
func FuzzPayloadRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint16(1), byte(0))
	f.Add(^uint64(0), uint16(0xFFFF), byte(0xFF))
	f.Add(uint64(1<<40), uint16(7), byte(3))
	f.Fuzz(func(t *testing.T, base uint64, n uint16, fill byte) {
		if n == 0 {
			n = 1
		}
		ids := make([]uint64, n)
		blocks := make([][]byte, n)
		for i := range ids {
			ids[i] = base + uint64(i)
			blocks[i] = block(fill + byte(i))
		}
		p, err := AppendReadBatchReq(nil, ids)
		if err != nil {
			t.Fatal(err)
		}
		gotIDs, err := ParseReadBatchReq(p)
		if err != nil {
			t.Fatal(err)
		}
		wp, err := AppendWriteBatchReq(nil, ids, blocks)
		if err != nil {
			t.Fatal(err)
		}
		wIDs, wBlocks, err := ParseWriteBatchReq(wp)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ids {
			if gotIDs[i] != ids[i] || wIDs[i] != ids[i] || !bytes.Equal(wBlocks[i], blocks[i]) {
				t.Fatalf("entry %d mutated", i)
			}
		}
		// One full frame round trip through the stream layer.
		fr := roundTripFrameF(t, OpReadBatch, base, p)
		if !bytes.Equal(fr.Payload, p) {
			t.Fatal("frame payload mutated")
		}
	})
}

func roundTripFrameF(t *testing.T, op byte, reqID uint64, payload []byte) Frame {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, op, reqID, payload); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != op || f.ReqID != reqID {
		t.Fatalf("frame header mutated: %+v", f)
	}
	return f
}

// BenchmarkReadFrame measures the per-frame receive cost of the
// allocating decoder (the baseline the pooled variant is compared to).
func BenchmarkReadFrame(b *testing.B) {
	one := AppendFrame(nil, OpWrite, 7, AppendWriteReq(nil, 42, make([]byte, BlockBytes)))
	stream := bytes.Repeat(one, 1024)
	r := bytes.NewReader(stream)
	b.SetBytes(int64(len(one)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Len() < len(one) {
			r.Reset(stream)
		}
		if _, err := ReadFrame(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadFrameBuf is the pooled receive path netserve runs: the
// payload buffer is recycled frame to frame (allocs/op must drop to ~0
// against BenchmarkReadFrame).
func BenchmarkReadFrameBuf(b *testing.B) {
	one := AppendFrame(nil, OpWrite, 7, AppendWriteReq(nil, 42, make([]byte, BlockBytes)))
	stream := bytes.Repeat(one, 1024)
	r := bytes.NewReader(stream)
	var pool BufPool
	b.SetBytes(int64(len(one)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Len() < len(one) {
			r.Reset(stream)
		}
		_, fb, err := ReadFrameBuf(r, &pool)
		if err != nil {
			b.Fatal(err)
		}
		pool.Put(fb)
	}
}
