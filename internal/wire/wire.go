// Package wire is the palermo network protocol: a compact length-prefixed
// binary framing that carries oblivious-store operations between
// palermo.Client and the internal/netserve TCP server.
//
// A frame is a fixed 16-byte header followed by a payload:
//
//	offset  size  field
//	0       2     magic 0x504C ("PL"), big-endian
//	2       1     protocol version (1)
//	3       1     op code (request) or op|0x80 (response)
//	4       8     request id, big-endian (echoed verbatim by the response)
//	12      4     payload length, big-endian
//
// Request ids multiplex one connection: a client may pipeline many
// requests and match responses by id in whatever order they complete.
// Every decode path returns a typed error (ErrBadMagic, ErrBadVersion,
// ErrFrameTooLarge, ErrTruncated, ErrMalformed) and never panics on
// attacker-controlled bytes — the fuzz tests enforce it.
//
// The protocol deliberately carries only the §VI adversary's view:
// public block ids and sealed 64-byte payloads (DESIGN.md §8).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

const (
	// Magic is the first two bytes of every frame ("PL").
	Magic uint16 = 0x504C
	// Version is the protocol revision this package speaks. A frame with a
	// different version is rejected with ErrBadVersion so mixed deployments
	// fail loudly instead of misparsing payloads. Version 2 extended the
	// Stats body with the queue-wait/execute latency split; version 3
	// appended the tree-top cache and prefetch planner counters (both
	// incompatible fixed-width layout changes); version 4 added the cluster
	// layer: geometry epoch + owned-shard-range fields in Stats, the
	// Manifest op, the Migrate* op family, and StatusWrongEpoch; version 5
	// added overload shedding: StatusRetry and the Sheds counter in Stats.
	Version byte = 5
	// HeaderLen is the fixed frame-header size in bytes.
	HeaderLen = 16
	// BlockBytes is the store's payload granularity on the wire. A
	// compile-time assertion in the root package ties it to
	// palermo.BlockSize.
	BlockBytes = 64
	// MaxOps caps the operation count of one batch frame.
	MaxOps = 1 << 16
	// MaxPayload caps a frame's payload length: the largest legal frame is
	// a WriteBatch of MaxOps (id, block) pairs plus its count prefix.
	// Anything larger is rejected before allocation (ErrFrameTooLarge), so
	// a corrupt or hostile length field cannot balloon server memory.
	MaxPayload = 4 + MaxOps*(8+BlockBytes)
)

// Request op codes. A response echoes the request's op with RespFlag set.
const (
	OpRead       byte = 1
	OpWrite      byte = 2
	OpReadBatch  byte = 3
	OpWriteBatch byte = 4
	OpStats      byte = 5

	// OpManifest asks a node for its current placement manifest (the
	// response body is the manifest's canonical JSON encoding, opaque to
	// this package).
	OpManifest byte = 6

	// The migrate op family streams one shard's sealed state from its
	// owning node to a joining node (DESIGN.md §11). Begin opens a staging
	// session, Blocks carries sealed block records (snapshot and tail use
	// the same frame), Meta carries the sealed engine-state blob in chunks,
	// Commit installs the shard under the new geometry epoch, Abort
	// discards the staging session. OpMigrate is the admin trigger
	// (palermo-ctl -> source node): push the named shard to the target
	// address and cut over.
	OpMigrateBegin  byte = 7
	OpMigrateBlocks byte = 8
	OpMigrateMeta   byte = 9
	OpMigrateCommit byte = 10
	OpMigrateAbort  byte = 11
	OpMigrate       byte = 12

	// RespFlag marks a frame as a response to the op in the low bits.
	RespFlag byte = 0x80
)

// IsRequest reports whether op is a known request code.
func IsRequest(op byte) bool { return op >= OpRead && op <= OpMigrate }

// Resp returns the response op code for a request op.
func Resp(op byte) byte { return op | RespFlag }

// Status is the first payload byte of every response.
type Status byte

// Response status codes.
const (
	StatusOK         Status = 0 // op-specific body follows
	StatusClosed     Status = 1 // store is closed/draining; message follows
	StatusBad        Status = 2 // request was malformed or exceeded a limit
	StatusErr        Status = 3 // store rejected the op; message follows
	StatusWrongEpoch Status = 4 // node no longer owns the shard; refetch the manifest
	StatusRetry      Status = 5 // request shed under overload before execution; safe to retry
)

// Typed decode errors. Framing errors (magic/version/length/truncation)
// poison the stream — the peer must close the connection; ErrMalformed is
// scoped to one frame's payload and is answerable with StatusBad.
var (
	ErrBadMagic      = errors.New("wire: bad magic (not a palermo stream)")
	ErrBadVersion    = errors.New("wire: unsupported protocol version")
	ErrFrameTooLarge = errors.New("wire: frame exceeds the protocol size limit")
	ErrTruncated     = errors.New("wire: truncated frame")
	ErrMalformed     = errors.New("wire: malformed payload")
)

// Frame is one decoded protocol frame.
type Frame struct {
	Op      byte
	ReqID   uint64
	Payload []byte
}

// AppendFrame appends a complete frame (header + payload) to dst and
// returns the extended slice.
func AppendFrame(dst []byte, op byte, reqID uint64, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, op)
	dst = binary.BigEndian.AppendUint64(dst, reqID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, op byte, reqID uint64, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: payload is %d bytes, limit %d", ErrFrameTooLarge, len(payload), MaxPayload)
	}
	buf := AppendFrame(make([]byte, 0, HeaderLen+len(payload)), op, reqID, payload)
	_, err := w.Write(buf)
	return err
}

// readHeader reads and validates a frame header, returning the frame (with
// no payload yet) and the payload length.
func readHeader(r io.Reader) (Frame, uint32, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, 0, io.EOF
		}
		return Frame{}, 0, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if got := binary.BigEndian.Uint16(hdr[0:2]); got != Magic {
		return Frame{}, 0, fmt.Errorf("%w: got 0x%04x", ErrBadMagic, got)
	}
	if hdr[2] != Version {
		return Frame{}, 0, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, hdr[2], Version)
	}
	f := Frame{Op: hdr[3], ReqID: binary.BigEndian.Uint64(hdr[4:12])}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: payload length %d, limit %d", ErrFrameTooLarge, n, MaxPayload)
	}
	return f, n, nil
}

// ReadFrame reads and validates one frame from r. A clean EOF between
// frames is returned as io.EOF; EOF inside a frame is ErrTruncated. The
// returned payload is freshly allocated and owned by the caller.
func ReadFrame(r io.Reader) (Frame, error) {
	f, n, err := readHeader(r)
	if err != nil {
		return Frame{}, err
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
		}
	}
	return f, nil
}

// --- pooled frame buffers ---------------------------------------------

// FrameBuf is a pooled byte buffer carrying one frame payload (receive
// path) or one encoded frame (reply path). B is valid until the buffer is
// returned to its pool.
type FrameBuf struct{ B []byte }

// maxPooledBytes bounds what a pool retains: a rare multi-megabyte batch
// frame should be garbage, not pinned forever in a pool slot.
const maxPooledBytes = 64 << 10

// BufPool recycles FrameBufs across a connection's hot receive/reply
// path, eliminating the per-frame payload and response allocations. The
// zero value is ready to use; it is safe for concurrent use.
type BufPool struct{ p sync.Pool }

// Get returns an empty buffer with at least the given capacity.
func (bp *BufPool) Get(capacity int) *FrameBuf {
	if v := bp.p.Get(); v != nil {
		fb := v.(*FrameBuf)
		if cap(fb.B) < capacity {
			fb.B = make([]byte, 0, capacity)
		}
		fb.B = fb.B[:0]
		return fb
	}
	return &FrameBuf{B: make([]byte, 0, capacity)}
}

// Put releases a buffer for reuse. Callers must not touch fb.B afterwards.
func (bp *BufPool) Put(fb *FrameBuf) {
	if fb == nil || cap(fb.B) > maxPooledBytes {
		return
	}
	bp.p.Put(fb)
}

// ReadFrameBuf is ReadFrame with pooled payload storage: the returned
// frame's payload aliases fb.B, and the caller must Put fb back once the
// payload is dead. fb is nil exactly when err is non-nil or the payload
// is empty.
func ReadFrameBuf(r io.Reader, pool *BufPool) (f Frame, fb *FrameBuf, err error) {
	f, n, err := readHeader(r)
	if err != nil {
		return Frame{}, nil, err
	}
	if n > 0 {
		fb = pool.Get(int(n))
		fb.B = fb.B[:n]
		if _, err := io.ReadFull(r, fb.B); err != nil {
			pool.Put(fb)
			return Frame{}, nil, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
		}
		f.Payload = fb.B
	}
	return f, fb, nil
}

// BeginFrame appends a frame header with a zero payload length to dst, so
// a reply path can build the payload in place (one buffer, no copy) and
// seal it with EndFrame.
func BeginFrame(dst []byte, op byte, reqID uint64) []byte {
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, op)
	dst = binary.BigEndian.AppendUint64(dst, reqID)
	return binary.BigEndian.AppendUint32(dst, 0)
}

// EndFrame patches the payload length of the frame that starts at index
// start of buf (its header written by BeginFrame) and returns buf.
func EndFrame(buf []byte, start int) []byte {
	binary.BigEndian.PutUint32(buf[start+12:start+16], uint32(len(buf)-start-HeaderLen))
	return buf
}

// --- request payloads -------------------------------------------------

// AppendReadReq appends a Read request payload (the block id).
func AppendReadReq(dst []byte, id uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, id)
}

// ParseReadReq decodes a Read request payload.
func ParseReadReq(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: Read payload is %d bytes, want 8", ErrMalformed, len(p))
	}
	return binary.BigEndian.Uint64(p), nil
}

// AppendWriteReq appends a Write request payload (id + 64-byte block).
func AppendWriteReq(dst []byte, id uint64, block []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, id)
	return append(dst, block...)
}

// ParseWriteReq decodes a Write request payload. The returned block
// aliases p.
func ParseWriteReq(p []byte) (uint64, []byte, error) {
	if len(p) != 8+BlockBytes {
		return 0, nil, fmt.Errorf("%w: Write payload is %d bytes, want %d", ErrMalformed, len(p), 8+BlockBytes)
	}
	return binary.BigEndian.Uint64(p), p[8:], nil
}

// AppendReadBatchReq appends a ReadBatch request payload (count + ids).
func AppendReadBatchReq(dst []byte, ids []uint64) ([]byte, error) {
	if len(ids) == 0 || len(ids) > MaxOps {
		return dst, fmt.Errorf("%w: batch of %d ops, want 1..%d", ErrMalformed, len(ids), MaxOps)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = binary.BigEndian.AppendUint64(dst, id)
	}
	return dst, nil
}

// ParseReadBatchReq decodes a ReadBatch request payload.
func ParseReadBatchReq(p []byte) ([]uint64, error) {
	n, body, err := batchCount(p, 8)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = binary.BigEndian.Uint64(body[i*8:])
	}
	return ids, nil
}

// AppendWriteBatchReq appends a WriteBatch request payload
// (count + (id, block) pairs).
func AppendWriteBatchReq(dst []byte, ids []uint64, blocks [][]byte) ([]byte, error) {
	if len(ids) == 0 || len(ids) > MaxOps {
		return dst, fmt.Errorf("%w: batch of %d ops, want 1..%d", ErrMalformed, len(ids), MaxOps)
	}
	if len(ids) != len(blocks) {
		return dst, fmt.Errorf("%w: %d ids but %d blocks", ErrMalformed, len(ids), len(blocks))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ids)))
	for i, id := range ids {
		if len(blocks[i]) != BlockBytes {
			return dst, fmt.Errorf("%w: block %d is %d bytes, want %d", ErrMalformed, i, len(blocks[i]), BlockBytes)
		}
		dst = binary.BigEndian.AppendUint64(dst, id)
		dst = append(dst, blocks[i]...)
	}
	return dst, nil
}

// ParseWriteBatchReq decodes a WriteBatch request payload. Blocks alias p.
func ParseWriteBatchReq(p []byte) ([]uint64, [][]byte, error) {
	n, body, err := batchCount(p, 8+BlockBytes)
	if err != nil {
		return nil, nil, err
	}
	ids := make([]uint64, n)
	blocks := make([][]byte, n)
	for i := range ids {
		rec := body[i*(8+BlockBytes):]
		ids[i] = binary.BigEndian.Uint64(rec)
		blocks[i] = rec[8 : 8+BlockBytes]
	}
	return ids, blocks, nil
}

// batchCount validates a batch payload's count prefix against its body
// length and the MaxOps cap.
func batchCount(p []byte, recSize int) (int, []byte, error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("%w: batch payload is %d bytes, want >= 4", ErrMalformed, len(p))
	}
	n := binary.BigEndian.Uint32(p)
	if n == 0 || n > MaxOps {
		return 0, nil, fmt.Errorf("%w: batch count %d, want 1..%d", ErrMalformed, n, MaxOps)
	}
	if uint64(len(p)-4) != uint64(n)*uint64(recSize) {
		return 0, nil, fmt.Errorf("%w: batch of %d claims %d body bytes, has %d", ErrMalformed, n, uint64(n)*uint64(recSize), len(p)-4)
	}
	return int(n), p[4:], nil
}

// --- response payloads ------------------------------------------------

// AppendErrResp appends an error response payload: a non-OK status byte
// followed by the error message.
func AppendErrResp(dst []byte, st Status, msg string) []byte {
	if st == StatusOK {
		st = StatusErr
	}
	dst = append(dst, byte(st))
	return append(dst, msg...)
}

// AppendOKResp appends a StatusOK byte followed by the op-specific body
// (nil for Write/WriteBatch acks).
func AppendOKResp(dst []byte, body []byte) []byte {
	dst = append(dst, byte(StatusOK))
	return append(dst, body...)
}

// ParseResp splits a response payload into its status, the op-specific
// body (StatusOK), or the error message (otherwise).
func ParseResp(p []byte) (Status, []byte, string, error) {
	if len(p) < 1 {
		return 0, nil, "", fmt.Errorf("%w: empty response payload", ErrMalformed)
	}
	st := Status(p[0])
	if st == StatusOK {
		return st, p[1:], "", nil
	}
	if st != StatusClosed && st != StatusBad && st != StatusErr && st != StatusWrongEpoch && st != StatusRetry {
		return 0, nil, "", fmt.Errorf("%w: unknown status %d", ErrMalformed, st)
	}
	return st, nil, string(p[1:]), nil
}

// ParseReadResp decodes a Read response body (one block; aliases body).
func ParseReadResp(body []byte) ([]byte, error) {
	if len(body) != BlockBytes {
		return nil, fmt.Errorf("%w: Read response body is %d bytes, want %d", ErrMalformed, len(body), BlockBytes)
	}
	return body, nil
}

// AppendReadBatchResp appends a ReadBatch response body (count + blocks).
func AppendReadBatchResp(dst []byte, blocks [][]byte) ([]byte, error) {
	if len(blocks) == 0 || len(blocks) > MaxOps {
		return dst, fmt.Errorf("%w: batch of %d blocks, want 1..%d", ErrMalformed, len(blocks), MaxOps)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(blocks)))
	for i, b := range blocks {
		if len(b) != BlockBytes {
			return dst, fmt.Errorf("%w: block %d is %d bytes, want %d", ErrMalformed, i, len(b), BlockBytes)
		}
		dst = append(dst, b...)
	}
	return dst, nil
}

// ParseReadBatchResp decodes a ReadBatch response body. Blocks alias body.
func ParseReadBatchResp(body []byte) ([][]byte, error) {
	n, rest, err := batchCount(body, BlockBytes)
	if err != nil {
		return nil, err
	}
	blocks := make([][]byte, n)
	for i := range blocks {
		blocks[i] = rest[i*BlockBytes : (i+1)*BlockBytes]
	}
	return blocks, nil
}

// --- migration --------------------------------------------------------

const (
	// MaxMigrateBlocks caps the sealed block records one OpMigrateBlocks
	// frame may carry (8 + 80*count must stay under MaxPayload).
	MaxMigrateBlocks = 1 << 15
	// MaxMetaChunk caps one OpMigrateMeta chunk; engine-state blobs larger
	// than this are split across frames (crypt.MaxBlobBytes far exceeds
	// one frame's payload cap).
	MaxMetaChunk = 1 << 21

	migrateBlockRec = 8 + 8 + BlockBytes // local id, seal epoch, ciphertext
)

// MigrateBegin opens a migration staging session on the target node. The
// geometry fields let the target refuse a shard that cannot belong to its
// store (wrong stride, capacity, or an epoch at or behind its own).
type MigrateBegin struct {
	Shard       uint32 // global shard index being migrated
	Stride      uint32 // total shard count S of the cluster geometry
	Blocks      uint64 // global store capacity in blocks
	ShardBlocks uint64 // blocks local to this shard (Router.ShardBlocks)
	Epoch       uint64 // sender's current geometry epoch
}

// AppendMigrateBeginReq appends a MigrateBegin request payload.
func AppendMigrateBeginReq(dst []byte, mb MigrateBegin) []byte {
	dst = binary.BigEndian.AppendUint32(dst, mb.Shard)
	dst = binary.BigEndian.AppendUint32(dst, mb.Stride)
	dst = binary.BigEndian.AppendUint64(dst, mb.Blocks)
	dst = binary.BigEndian.AppendUint64(dst, mb.ShardBlocks)
	return binary.BigEndian.AppendUint64(dst, mb.Epoch)
}

// ParseMigrateBeginReq decodes a MigrateBegin request payload.
func ParseMigrateBeginReq(p []byte) (MigrateBegin, error) {
	if len(p) != 32 {
		return MigrateBegin{}, fmt.Errorf("%w: MigrateBegin payload is %d bytes, want 32", ErrMalformed, len(p))
	}
	return MigrateBegin{
		Shard:       binary.BigEndian.Uint32(p),
		Stride:      binary.BigEndian.Uint32(p[4:]),
		Blocks:      binary.BigEndian.Uint64(p[8:]),
		ShardBlocks: binary.BigEndian.Uint64(p[16:]),
		Epoch:       binary.BigEndian.Uint64(p[24:]),
	}, nil
}

// MigrateBlock is one sealed block record in an OpMigrateBlocks frame:
// the shard-local id, the seal epoch (IV component), and the 64-byte
// ciphertext exactly as the backend stores it.
type MigrateBlock struct {
	Local uint64
	Epoch uint64
	Ct    []byte
}

// AppendMigrateBlocksReq appends an OpMigrateBlocks request payload
// (shard + count + fixed-width records). Snapshot streaming and the
// cutover tail use the same frame.
func AppendMigrateBlocksReq(dst []byte, shard uint32, recs []MigrateBlock) ([]byte, error) {
	if len(recs) == 0 || len(recs) > MaxMigrateBlocks {
		return dst, fmt.Errorf("%w: %d migrate block records, want 1..%d", ErrMalformed, len(recs), MaxMigrateBlocks)
	}
	dst = binary.BigEndian.AppendUint32(dst, shard)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(recs)))
	for i, r := range recs {
		if len(r.Ct) != BlockBytes {
			return dst, fmt.Errorf("%w: record %d ciphertext is %d bytes, want %d", ErrMalformed, i, len(r.Ct), BlockBytes)
		}
		dst = binary.BigEndian.AppendUint64(dst, r.Local)
		dst = binary.BigEndian.AppendUint64(dst, r.Epoch)
		dst = append(dst, r.Ct...)
	}
	return dst, nil
}

// ParseMigrateBlocksReq decodes an OpMigrateBlocks request payload. The
// returned ciphertexts alias p.
func ParseMigrateBlocksReq(p []byte) (uint32, []MigrateBlock, error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("%w: MigrateBlocks payload is %d bytes, want >= 8", ErrMalformed, len(p))
	}
	shard := binary.BigEndian.Uint32(p)
	n := binary.BigEndian.Uint32(p[4:])
	if n == 0 || n > MaxMigrateBlocks {
		return 0, nil, fmt.Errorf("%w: migrate block count %d, want 1..%d", ErrMalformed, n, MaxMigrateBlocks)
	}
	body := p[8:]
	if uint64(len(body)) != uint64(n)*migrateBlockRec {
		return 0, nil, fmt.Errorf("%w: %d migrate records claim %d body bytes, have %d", ErrMalformed, n, uint64(n)*migrateBlockRec, len(body))
	}
	recs := make([]MigrateBlock, n)
	for i := range recs {
		rec := body[i*migrateBlockRec:]
		recs[i] = MigrateBlock{
			Local: binary.BigEndian.Uint64(rec),
			Epoch: binary.BigEndian.Uint64(rec[8:]),
			Ct:    rec[16 : 16+BlockBytes],
		}
	}
	return shard, recs, nil
}

// AppendMigrateMetaReq appends an OpMigrateMeta request payload: one
// chunk of the sealed engine-state blob. total is the full blob length,
// off this chunk's offset; the target reassembles in order.
func AppendMigrateMetaReq(dst []byte, shard uint32, metaEpoch uint64, total, off uint32, chunk []byte) ([]byte, error) {
	if len(chunk) == 0 || len(chunk) > MaxMetaChunk {
		return dst, fmt.Errorf("%w: meta chunk of %d bytes, want 1..%d", ErrMalformed, len(chunk), MaxMetaChunk)
	}
	if uint64(off)+uint64(len(chunk)) > uint64(total) {
		return dst, fmt.Errorf("%w: meta chunk [%d,%d) exceeds total %d", ErrMalformed, off, int(off)+len(chunk), total)
	}
	dst = binary.BigEndian.AppendUint32(dst, shard)
	dst = binary.BigEndian.AppendUint64(dst, metaEpoch)
	dst = binary.BigEndian.AppendUint32(dst, total)
	dst = binary.BigEndian.AppendUint32(dst, off)
	return append(dst, chunk...), nil
}

// ParseMigrateMetaReq decodes an OpMigrateMeta request payload. The chunk
// aliases p.
func ParseMigrateMetaReq(p []byte) (shard uint32, metaEpoch uint64, total, off uint32, chunk []byte, err error) {
	if len(p) < 21 {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: MigrateMeta payload is %d bytes, want >= 21", ErrMalformed, len(p))
	}
	shard = binary.BigEndian.Uint32(p)
	metaEpoch = binary.BigEndian.Uint64(p[4:])
	total = binary.BigEndian.Uint32(p[12:])
	off = binary.BigEndian.Uint32(p[16:])
	chunk = p[20:]
	if len(chunk) > MaxMetaChunk || uint64(off)+uint64(len(chunk)) > uint64(total) {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: meta chunk [%d,%d) against total %d", ErrMalformed, off, int(off)+len(chunk), total)
	}
	return shard, metaEpoch, total, off, chunk, nil
}

// AppendMigrateCommitReq appends an OpMigrateCommit request payload.
func AppendMigrateCommitReq(dst []byte, shard uint32, newEpoch uint64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, shard)
	return binary.BigEndian.AppendUint64(dst, newEpoch)
}

// ParseMigrateCommitReq decodes an OpMigrateCommit request payload.
func ParseMigrateCommitReq(p []byte) (uint32, uint64, error) {
	if len(p) != 12 {
		return 0, 0, fmt.Errorf("%w: MigrateCommit payload is %d bytes, want 12", ErrMalformed, len(p))
	}
	return binary.BigEndian.Uint32(p), binary.BigEndian.Uint64(p[4:]), nil
}

// AppendMigrateAbortReq appends an OpMigrateAbort request payload.
func AppendMigrateAbortReq(dst []byte, shard uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, shard)
}

// ParseMigrateAbortReq decodes an OpMigrateAbort request payload.
func ParseMigrateAbortReq(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("%w: MigrateAbort payload is %d bytes, want 4", ErrMalformed, len(p))
	}
	return binary.BigEndian.Uint32(p), nil
}

// maxMigrateAddr bounds the target address string in an OpMigrate admin
// request.
const maxMigrateAddr = 256

// AppendMigrateReq appends an OpMigrate admin request payload (shard +
// target node address).
func AppendMigrateReq(dst []byte, shard uint32, target string) ([]byte, error) {
	if target == "" || len(target) > maxMigrateAddr {
		return dst, fmt.Errorf("%w: migrate target address of %d bytes, want 1..%d", ErrMalformed, len(target), maxMigrateAddr)
	}
	dst = binary.BigEndian.AppendUint32(dst, shard)
	return append(dst, target...), nil
}

// ParseMigrateReq decodes an OpMigrate admin request payload.
func ParseMigrateReq(p []byte) (uint32, string, error) {
	if len(p) < 5 || len(p) > 4+maxMigrateAddr {
		return 0, "", fmt.Errorf("%w: Migrate payload is %d bytes, want 5..%d", ErrMalformed, len(p), 4+maxMigrateAddr)
	}
	return binary.BigEndian.Uint32(p), string(p[4:]), nil
}

// --- stats ------------------------------------------------------------

// Latency is one operation class's latency summary on the wire.
type Latency struct {
	N            uint64
	MeanUs       float64
	P50Us, P99Us float64
}

// Stats is the server snapshot a Stats op returns: store geometry and
// limits (which double as the client's handshake — capacity, shards, and
// the server's per-frame batch cap), service counters and latency
// summaries, and the shard-level traffic counters.
type Stats struct {
	Blocks uint64
	Shards uint32

	Reads, Writes uint64 // service-layer completed operations
	DedupHits     uint64
	ReadLat       Latency
	WriteLat      Latency
	QueueLat      Latency // shard-queue wait (submission -> worker pickup)
	ExecLat       Latency // execute (worker pickup -> completion)

	EngineReads, EngineWrites uint64 // shard engine operations
	DRAMReads, DRAMWrites     uint64 // 64-byte line movements
	StashPeak                 uint32

	// MaxBatch is the largest batch frame (in ops) the server accepts;
	// clients size their coalescing windows and reject oversized explicit
	// batches against it. 0 = unknown (a pre-limit server).
	MaxBatch uint32

	// Version 3 counters: protocol lines the resident tree-top cache
	// absorbed (bytes saved = 64 * TreeTopHits) and the prefetch planner's
	// issued/consumed/invalidated fetch accounting.
	TreeTopHits    uint64
	PrefetchIssued uint64
	PrefetchUsed   uint64
	PrefetchStale  uint64

	// Version 4 cluster fields. Epoch is the node's current geometry
	// epoch (0 = standalone, no placement manifest). FirstShard and
	// OwnedShards describe the contiguous shard range this node serves;
	// a standalone server reports 0..Shards. Clients pin the epoch at
	// handshake and treat any later change as a geometry change.
	Epoch       uint64
	FirstShard  uint32
	OwnedShards uint32

	// Version 5: operations the service shed under overload (admission
	// deadline expired in the shard queue) instead of executing. Shed
	// requests are answered StatusRetry and never touch an engine.
	Sheds uint64
}

// statsLen is the fixed encoded size of Stats.
const statsLen = 8 + 4 + 3*8 + 4*(8+3*8) + 4*8 + 4 + 4 + 4*8 + 8 + 4 + 4 + 8

// AppendStats appends the fixed-width Stats encoding.
func AppendStats(dst []byte, s Stats) []byte {
	dst = binary.BigEndian.AppendUint64(dst, s.Blocks)
	dst = binary.BigEndian.AppendUint32(dst, s.Shards)
	dst = binary.BigEndian.AppendUint64(dst, s.Reads)
	dst = binary.BigEndian.AppendUint64(dst, s.Writes)
	dst = binary.BigEndian.AppendUint64(dst, s.DedupHits)
	dst = appendLatency(dst, s.ReadLat)
	dst = appendLatency(dst, s.WriteLat)
	dst = appendLatency(dst, s.QueueLat)
	dst = appendLatency(dst, s.ExecLat)
	dst = binary.BigEndian.AppendUint64(dst, s.EngineReads)
	dst = binary.BigEndian.AppendUint64(dst, s.EngineWrites)
	dst = binary.BigEndian.AppendUint64(dst, s.DRAMReads)
	dst = binary.BigEndian.AppendUint64(dst, s.DRAMWrites)
	dst = binary.BigEndian.AppendUint32(dst, s.StashPeak)
	dst = binary.BigEndian.AppendUint32(dst, s.MaxBatch)
	dst = binary.BigEndian.AppendUint64(dst, s.TreeTopHits)
	dst = binary.BigEndian.AppendUint64(dst, s.PrefetchIssued)
	dst = binary.BigEndian.AppendUint64(dst, s.PrefetchUsed)
	dst = binary.BigEndian.AppendUint64(dst, s.PrefetchStale)
	dst = binary.BigEndian.AppendUint64(dst, s.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, s.FirstShard)
	dst = binary.BigEndian.AppendUint32(dst, s.OwnedShards)
	return binary.BigEndian.AppendUint64(dst, s.Sheds)
}

// ParseStats decodes a Stats response body.
func ParseStats(body []byte) (Stats, error) {
	if len(body) != statsLen {
		return Stats{}, fmt.Errorf("%w: Stats body is %d bytes, want %d", ErrMalformed, len(body), statsLen)
	}
	var s Stats
	s.Blocks = binary.BigEndian.Uint64(body)
	s.Shards = binary.BigEndian.Uint32(body[8:])
	s.Reads = binary.BigEndian.Uint64(body[12:])
	s.Writes = binary.BigEndian.Uint64(body[20:])
	s.DedupHits = binary.BigEndian.Uint64(body[28:])
	s.ReadLat = parseLatency(body[36:])
	s.WriteLat = parseLatency(body[68:])
	s.QueueLat = parseLatency(body[100:])
	s.ExecLat = parseLatency(body[132:])
	s.EngineReads = binary.BigEndian.Uint64(body[164:])
	s.EngineWrites = binary.BigEndian.Uint64(body[172:])
	s.DRAMReads = binary.BigEndian.Uint64(body[180:])
	s.DRAMWrites = binary.BigEndian.Uint64(body[188:])
	s.StashPeak = binary.BigEndian.Uint32(body[196:])
	s.MaxBatch = binary.BigEndian.Uint32(body[200:])
	s.TreeTopHits = binary.BigEndian.Uint64(body[204:])
	s.PrefetchIssued = binary.BigEndian.Uint64(body[212:])
	s.PrefetchUsed = binary.BigEndian.Uint64(body[220:])
	s.PrefetchStale = binary.BigEndian.Uint64(body[228:])
	s.Epoch = binary.BigEndian.Uint64(body[236:])
	s.FirstShard = binary.BigEndian.Uint32(body[244:])
	s.OwnedShards = binary.BigEndian.Uint32(body[248:])
	s.Sheds = binary.BigEndian.Uint64(body[252:])
	return s, nil
}

func appendLatency(dst []byte, l Latency) []byte {
	dst = binary.BigEndian.AppendUint64(dst, l.N)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(l.MeanUs))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(l.P50Us))
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(l.P99Us))
}

func parseLatency(p []byte) Latency {
	return Latency{
		N:      binary.BigEndian.Uint64(p),
		MeanUs: math.Float64frombits(binary.BigEndian.Uint64(p[8:])),
		P50Us:  math.Float64frombits(binary.BigEndian.Uint64(p[16:])),
		P99Us:  math.Float64frombits(binary.BigEndian.Uint64(p[24:])),
	}
}
