package workload

import (
	"testing"

	"palermo/internal/rng"
)

func TestTenantsMixAndTags(t *testing.T) {
	a, _ := New("stm", 1<<20, 1)
	b, _ := New("rand", 1<<20, 2)
	m := NewTenants(rng.New(3), a, b)
	counts := [2]int{}
	for i := 0; i < 10000; i++ {
		m.Next()
		tg := m.Tag()
		if tg < 0 || tg > 1 {
			t.Fatalf("bad tag %d", tg)
		}
		counts[tg]++
	}
	for i, c := range counts {
		if c < 4000 || c > 6000 {
			t.Fatalf("tenant %d drew %d/10000, want ~uniform", i, c)
		}
	}
	if m.Name() != "mix(stm+rand)" {
		t.Fatalf("name = %q", m.Name())
	}
}

func TestTenantsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTenants(rng.New(1))
}

func TestBurstyDutyCycle(t *testing.T) {
	g, _ := New("rand", 1<<20, 1)
	b := NewBursty(g, 3, 4)
	idle := 0
	for i := 0; i < 4000; i++ {
		if b.Idle() {
			idle++
		}
	}
	if idle != 1000 {
		t.Fatalf("idle slots = %d/4000, want 1000 (3-of-4 duty)", idle)
	}
}

func TestBurstyTagDelegation(t *testing.T) {
	a, _ := New("stm", 1<<20, 1)
	bgen, _ := New("rand", 1<<20, 2)
	m := NewTenants(rng.New(3), a, bgen)
	b := NewBursty(m, 1, 2)
	m.Next()
	if b.Tag() != m.Tag() {
		t.Fatal("bursty must delegate tags")
	}
	plain := NewBursty(a, 1, 2)
	if plain.Tag() != -1 {
		t.Fatal("untagged generator must report -1")
	}
}

func TestBurstyInvalidDutyPanics(t *testing.T) {
	g, _ := New("rand", 1<<20, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBursty(g, 4, 2)
}
