package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace file format: a compact binary encoding of an LLC-miss trace so
// that generated workloads can be recorded once and replayed bit-exactly
// (the equivalent of the paper's captured Sniper traces).
//
// Layout: 8-byte magic, 8-byte count, then per record a varint-encoded
// line address with the write flag in bit 0.

const traceMagic = "PLMTRC01"

// WriteTrace records n draws from gen to w.
func WriteTrace(w io.Writer, gen Generator, n uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], n)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	for i := uint64(0); i < n; i++ {
		pa, wr := gen.Next()
		v := pa << 1
		if wr {
			v |= 1
		}
		k := binary.PutUvarint(buf[:], v)
		if _, err := bw.Write(buf[:k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TraceReader replays a recorded trace as a Generator; it wraps around at
// the end so it can feed arbitrarily long simulations.
type TraceReader struct {
	name    string
	records []uint64
	pos     int
}

// ReadTrace loads a trace from r.
func ReadTrace(name string, r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("workload: reading trace magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %q", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	t := &TraceReader{name: name, records: make([]uint64, 0, n)}
	for i := uint64(0); i < n; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("workload: trace record %d: %w", i, err)
		}
		t.records = append(t.records, v)
	}
	return t, nil
}

// Name implements Generator.
func (t *TraceReader) Name() string { return t.name }

// Len returns the number of recorded references.
func (t *TraceReader) Len() int { return len(t.records) }

// Next implements Generator, wrapping at the end of the recording.
func (t *TraceReader) Next() (uint64, bool) {
	v := t.records[t.pos]
	t.pos = (t.pos + 1) % len(t.records)
	return v >> 1, v&1 == 1
}
