package workload

import "palermo/internal/rng"

// Tenants interleaves the miss streams of multiple co-located processes
// (§VI: "Palermo supports overlapping ORAM requests rooted from LLC misses
// issued by different processes ... for better resource availability in the
// cloud settings"). Each draw picks a tenant uniformly at random; Tag
// reports the origin of the most recent draw so isolation analyses can
// check that response latency carries no information about which tenant
// issued a request.
type Tenants struct {
	gens []Generator
	r    *rng.Rand
	last int
}

// NewTenants combines the given per-tenant generators.
func NewTenants(r *rng.Rand, gens ...Generator) *Tenants {
	if len(gens) == 0 {
		panic("workload: NewTenants with no tenants")
	}
	return &Tenants{gens: gens, r: r}
}

// Name identifies the mix.
func (m *Tenants) Name() string {
	s := "mix("
	for i, g := range m.gens {
		if i > 0 {
			s += "+"
		}
		s += g.Name()
	}
	return s + ")"
}

// Next draws from a uniformly chosen tenant.
func (m *Tenants) Next() (uint64, bool) {
	m.last = m.r.Intn(len(m.gens))
	return m.gens[m.last].Next()
}

// Tag reports the tenant of the most recent Next.
func (m *Tenants) Tag() int { return m.last }

// Bursty gates a generator with an on/off duty cycle, modelling a front end
// that issues misses only part of the time: during off slots the ORAM
// controller must pad with dummy requests to keep its issue rate constant
// (§VI). Out of every period slots, the first onSlots are active.
type Bursty struct {
	gen     Generator
	onSlots int
	period  int
	slot    int
}

// NewBursty wraps gen with an onSlots-out-of-period duty cycle.
func NewBursty(gen Generator, onSlots, period int) *Bursty {
	if onSlots <= 0 || period < onSlots {
		panic("workload: invalid duty cycle")
	}
	return &Bursty{gen: gen, onSlots: onSlots, period: period}
}

// Name identifies the wrapped generator.
func (b *Bursty) Name() string { return b.gen.Name() + "/bursty" }

// Idle reports whether the current slot has no pending miss; each call
// advances the slot (the controller polls once per issue opportunity).
func (b *Bursty) Idle() bool {
	idle := b.slot%b.period >= b.onSlots
	b.slot++
	return idle
}

// Next returns the next miss (only called on non-idle slots).
func (b *Bursty) Next() (uint64, bool) { return b.gen.Next() }

// Tag delegates to the wrapped generator's tenant label, if it has one.
func (b *Bursty) Tag() int {
	if t, ok := b.gen.(interface{ Tag() int }); ok {
		return t.Tag()
	}
	return -1
}
