// Package workload generates the LLC-miss address streams of the paper's
// Table II cloud services. Under ORAM every miss becomes a uniformly random
// tree path, so the only workload property that affects any result is the
// miss trace's locality signature — which is exactly what each generator
// reproduces (DESIGN.md §1):
//
//	mcf    — route planning: pointer chasing with short sequential bursts
//	lbm    — fluid dynamics: long strided streaming sweeps
//	pr     — PageRank on a power-law graph: Zipfian vertex loads mixed with
//	         sequential edge streaming
//	motif  — temporal motif mining: localized random walks over edge lists
//	rm1    — memory-bound DLRM: Zipfian embedding-row gathers (long rows)
//	rm2    — balanced DLRM: shorter rows, milder skew, denser reuse
//	llm    — GPT-2 token embeddings: Zipfian token ids, a whole embedding
//	         row (48 lines) streamed per token
//	redis  — KV access: Zipfian keys over a large keyspace, small values
//	stm    — synthetic streaming: consecutive cache lines (perfect locality)
//	rand   — synthetic uniform random (zero locality)
//
// Addresses are cache-line indices within the protected space.
package workload

import (
	"fmt"
	"sort"

	"palermo/internal/rng"
)

// Generator produces an infinite LLC-miss stream.
type Generator interface {
	// Next returns the missing cache-line address and whether it is a store.
	Next() (pa uint64, write bool)
	// Name returns the Table II short name.
	Name() string
}

// Names lists the Table II workloads in paper order.
func Names() []string {
	return []string{"mcf", "lbm", "pr", "motif", "rm1", "rm2", "llm", "redis", "stm", "rand"}
}

// New builds the named generator over a space of nLines cache lines.
func New(name string, nLines uint64, seed uint64) (Generator, error) {
	r := rng.New(seed ^ hashName(name))
	switch name {
	case "mcf":
		return newPointerChase(name, nLines, r, 4, 0.30), nil
	case "lbm":
		return newStream(name, nLines, r, 16, 3), nil
	case "pr":
		return newGraph(name, nLines, r, 0.99, 2), nil
	case "motif":
		return newGraph(name, nLines, r, 0.8, 3), nil
	case "rm1":
		return newEmbedding(name, nLines, r, 32, 0.9), nil
	case "rm2":
		return newEmbedding(name, nLines, r, 8, 0.7), nil
	case "llm":
		return newEmbedding(name, nLines, r, 48, 1.0), nil
	case "redis":
		return newKV(name, nLines, r, 0.99), nil
	case "stm":
		return newStream(name, nLines, r, 1<<20, 1), nil
	case "rand":
		return newUniform(name, nLines, r), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q (see Names())", name)
	}
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// uniform: every line equally likely (rand).
type uniform struct {
	name   string
	nLines uint64
	r      *rng.Rand
}

func newUniform(name string, n uint64, r *rng.Rand) *uniform {
	return &uniform{name: name, nLines: n, r: r}
}

func (g *uniform) Name() string { return g.name }

func (g *uniform) Next() (uint64, bool) {
	return g.r.Uint64n(g.nLines), g.r.Float64() < 0.2
}

// stream: sequential runs of runLen lines with the given stride, restarting
// at a random region when a run ends (stm, lbm).
type stream struct {
	name   string
	nLines uint64
	r      *rng.Rand
	runLen uint64
	stride uint64
	cur    uint64
	left   uint64
}

func newStream(name string, n uint64, r *rng.Rand, runLen, stride uint64) *stream {
	return &stream{name: name, nLines: n, r: r, runLen: runLen, stride: stride}
}

func (g *stream) Name() string { return g.name }

func (g *stream) Next() (uint64, bool) {
	if g.left == 0 {
		g.cur = g.r.Uint64n(g.nLines)
		g.left = g.runLen
	}
	pa := g.cur % g.nLines
	g.cur += g.stride
	g.left--
	return pa, g.r.Float64() < 0.3
}

// pointerChase: mcf-style — mostly dependent random hops, with occasional
// short sequential bursts (spatial locality of struct fields).
type pointerChase struct {
	name     string
	nLines   uint64
	r        *rng.Rand
	burstLen int
	pBurst   float64
	cur      uint64
	burst    int
}

func newPointerChase(name string, n uint64, r *rng.Rand, burstLen int, pBurst float64) *pointerChase {
	return &pointerChase{name: name, nLines: n, r: r, burstLen: burstLen, pBurst: pBurst}
}

func (g *pointerChase) Name() string { return g.name }

func (g *pointerChase) Next() (uint64, bool) {
	if g.burst > 0 {
		g.burst--
		g.cur = (g.cur + 1) % g.nLines
		return g.cur, false
	}
	g.cur = g.r.Uint64n(g.nLines)
	if g.r.Float64() < g.pBurst {
		g.burst = g.burstLen - 1
	}
	return g.cur, g.r.Float64() < 0.1
}

// graph: pr/motif-style — Zipfian vertex-property loads (power-law degree
// distribution) interleaved with short sequential edge-list scans.
type graph struct {
	name    string
	nLines  uint64
	r       *rng.Rand
	zip     *rng.Zipf
	edgeLen int
	vtxPart uint64 // vertex property region size in lines
	scan    int
	edgePos uint64
}

func newGraph(name string, n uint64, r *rng.Rand, theta float64, edgeLen int) *graph {
	vtx := n / 4 // a quarter of the space holds vertex properties
	if vtx == 0 {
		vtx = 1
	}
	return &graph{
		name: name, nLines: n, r: r,
		zip:     rng.NewZipf(r, vtx, theta),
		edgeLen: edgeLen, vtxPart: vtx,
	}
}

func (g *graph) Name() string { return g.name }

func (g *graph) Next() (uint64, bool) {
	if g.scan > 0 {
		g.scan--
		g.edgePos++
		return g.vtxPart + g.edgePos%(g.nLines-g.vtxPart), false
	}
	if g.r.Float64() < 0.4 {
		// Jump to a new edge-list region and scan it.
		g.edgePos = g.r.Uint64n(g.nLines - g.vtxPart)
		g.scan = g.edgeLen - 1
		return g.vtxPart + g.edgePos, false
	}
	return g.zip.Next(), g.r.Float64() < 0.3
}

// embedding: DLRM/LLM-style — a Zipfian row id selects an embedding row of
// rowLines consecutive cache lines, all streamed per lookup.
type embedding struct {
	name     string
	nLines   uint64
	r        *rng.Rand
	zip      *rng.Zipf
	rowLines uint64
	rows     uint64
	row      uint64
	off      uint64
}

func newEmbedding(name string, n uint64, r *rng.Rand, rowLines uint64, theta float64) *embedding {
	rows := n / rowLines
	if rows == 0 {
		rows = 1
	}
	return &embedding{
		name: name, nLines: n, r: r,
		zip: rng.NewZipf(r, rows, theta), rowLines: rowLines, rows: rows,
	}
}

func (g *embedding) Name() string { return g.name }

func (g *embedding) Next() (uint64, bool) {
	if g.off == 0 {
		g.row = g.zip.Next()
	}
	pa := (g.row*g.rowLines + g.off) % g.nLines
	g.off = (g.off + 1) % g.rowLines
	return pa, false
}

// RowLines returns the embedding row length of a workload (0 if it has no
// row structure). Fig 13 relates the best prefetch length to this.
func RowLines(name string) uint64 {
	switch name {
	case "rm1":
		return 32
	case "rm2":
		return 8
	case "llm":
		return 48
	default:
		return 0
	}
}

// kv: redis-style — Zipfian key popularity over the whole space, reads
// dominate, values one line.
type kv struct {
	name   string
	nLines uint64
	r      *rng.Rand
	zip    *rng.Zipf
	perm   []uint32 // scatter popular keys across the space
}

func newKV(name string, n uint64, r *rng.Rand, theta float64) *kv {
	// Scatter the popularity ranks through the address space with an
	// affine permutation so hot keys are not physically adjacent.
	return &kv{name: name, nLines: n, r: r, zip: rng.NewZipf(r, n, theta)}
}

func (g *kv) Name() string { return g.name }

func (g *kv) Next() (uint64, bool) {
	rank := g.zip.Next()
	// Affine scatter: rank -> (rank * oddConst) mod n.
	pa := (rank * 2654435761) % g.nLines
	return pa, g.r.Float64() < 0.15
}

// Locality measures the fraction of accesses within dist lines of the
// previous access over n draws (generator characterization).
func Locality(g Generator, n int, dist uint64) float64 {
	var prev uint64
	near := 0
	for i := 0; i < n; i++ {
		pa, _ := g.Next()
		if i > 0 {
			d := pa - prev
			if pa < prev {
				d = prev - pa
			}
			if d <= dist {
				near++
			}
		}
		prev = pa
	}
	return float64(near) / float64(n-1)
}

// UniqueFrac returns the fraction of distinct addresses over n draws
// (reuse characterization).
func UniqueFrac(g Generator, n int) float64 {
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		pa, _ := g.Next()
		seen[pa] = true
	}
	return float64(len(seen)) / float64(n)
}

// SortedNames returns Names() sorted (deterministic map-free iteration for
// callers that need it).
func SortedNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}
