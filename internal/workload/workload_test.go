package workload

import (
	"testing"
	"testing/quick"
)

const space = 1 << 24

func TestAllWorkloadsInBounds(t *testing.T) {
	for _, name := range Names() {
		g, err := New(name, space, 1)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name() != name {
			t.Fatalf("name mismatch: %q", g.Name())
		}
		for i := 0; i < 20000; i++ {
			pa, _ := g.Next()
			if pa >= space {
				t.Fatalf("%s produced out-of-range pa %d", name, pa)
			}
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := New("nope", space, 1); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, _ := New(name, space, 7)
		b, _ := New(name, space, 7)
		for i := 0; i < 1000; i++ {
			pa1, w1 := a.Next()
			pa2, w2 := b.Next()
			if pa1 != pa2 || w1 != w2 {
				t.Fatalf("%s not deterministic at %d", name, i)
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, _ := New("rand", space, 1)
	b, _ := New("rand", space, 2)
	same := 0
	for i := 0; i < 100; i++ {
		pa1, _ := a.Next()
		pa2, _ := b.Next()
		if pa1 == pa2 {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds collided %d/100", same)
	}
}

func TestLocalityOrdering(t *testing.T) {
	// The locality spectrum motivates the paper's evaluation: stm is
	// perfectly sequential, llm is row-sequential, rand has none.
	loc := map[string]float64{}
	for _, name := range Names() {
		g, _ := New(name, space, 3)
		loc[name] = Locality(g, 50000, 4)
	}
	if loc["stm"] < 0.95 {
		t.Fatalf("stm locality = %.2f, want ~1", loc["stm"])
	}
	if loc["rand"] > 0.05 {
		t.Fatalf("rand locality = %.2f, want ~0", loc["rand"])
	}
	if loc["llm"] < 0.8 {
		t.Fatalf("llm locality = %.2f, want high (row streaming)", loc["llm"])
	}
	if loc["mcf"] <= loc["rand"] || loc["mcf"] >= loc["stm"] {
		t.Fatalf("mcf locality = %.2f must sit between rand %.2f and stm %.2f",
			loc["mcf"], loc["rand"], loc["stm"])
	}
	if loc["redis"] > 0.2 {
		t.Fatalf("redis locality = %.2f, want low (scattered keys)", loc["redis"])
	}
}

func TestReuseSkew(t *testing.T) {
	// Zipfian workloads revisit hot items: distinct fraction well below 1.
	for _, name := range []string{"pr", "redis", "llm", "rm1"} {
		g, _ := New(name, space, 3)
		uf := UniqueFrac(g, 50000)
		if uf > 0.85 {
			t.Fatalf("%s unique fraction = %.2f, want skewed reuse", name, uf)
		}
	}
	g, _ := New("rand", space, 3)
	if uf := UniqueFrac(g, 50000); uf < 0.95 {
		t.Fatalf("rand unique fraction = %.2f, want ~1", uf)
	}
}

func TestEmbeddingRowStructure(t *testing.T) {
	g, _ := New("llm", space, 5)
	// llm must emit runs of 48 consecutive lines.
	prev, _ := g.Next()
	runs := 0
	cur := 1
	for i := 0; i < 48*100; i++ {
		pa, _ := g.Next()
		if pa == prev+1 {
			cur++
		} else {
			if cur == 48 {
				runs++
			}
			cur = 1
		}
		prev = pa
	}
	if runs < 50 {
		t.Fatalf("llm produced %d full 48-line runs, want >= 50", runs)
	}
	if RowLines("llm") != 48 || RowLines("rand") != 0 {
		t.Fatal("RowLines misreports")
	}
}

func TestPrefetchFilterStm(t *testing.T) {
	g, _ := New("stm", space, 1)
	f := NewPrefetchFilter(g, 4, 131072)
	for i := 0; i < 40000; i++ {
		f.Next()
	}
	// Perfect sequential locality: 3 of every 4 accesses hit.
	if hr := f.HitRate(); hr < 0.70 || hr > 0.78 {
		t.Fatalf("stm pf=4 hit rate = %.3f, want ~0.75", hr)
	}
}

func TestPrefetchFilterRand(t *testing.T) {
	g, _ := New("rand", space, 1)
	f := NewPrefetchFilter(g, 4, 131072)
	for i := 0; i < 40000; i++ {
		f.Next()
	}
	if hr := f.HitRate(); hr > 0.1 {
		t.Fatalf("rand pf=4 hit rate = %.3f, want ~0", hr)
	}
}

func TestPrefetchFilterDisabled(t *testing.T) {
	g, _ := New("stm", space, 1)
	f := NewPrefetchFilter(g, 1, 131072)
	for i := 0; i < 1000; i++ {
		f.Next()
	}
	if f.Hits != 0 || f.Misses != 1000 {
		t.Fatalf("pf=1 must not filter: hits=%d misses=%d", f.Hits, f.Misses)
	}
}

func TestPrefetchFilterBoundsProperty(t *testing.T) {
	f := func(seed uint64, pf uint8) bool {
		p := int(pf%16) + 1
		g, _ := New("pr", space, seed)
		flt := NewPrefetchFilter(g, p, 8192)
		for i := 0; i < 2000; i++ {
			pa, _ := flt.Next()
			if pa >= space {
				return false
			}
		}
		return flt.Misses == 2000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
