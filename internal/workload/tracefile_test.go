package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	g1, _ := New("pr", 1<<24, 7)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g1, 5000); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace("pr-replay", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 || tr.Name() != "pr-replay" {
		t.Fatalf("len=%d name=%q", tr.Len(), tr.Name())
	}
	// Replay must match a fresh generator with the same seed exactly.
	g2, _ := New("pr", 1<<24, 7)
	for i := 0; i < 5000; i++ {
		wantPA, wantWr := g2.Next()
		gotPA, gotWr := tr.Next()
		if gotPA != wantPA || gotWr != wantWr {
			t.Fatalf("record %d: got (%d,%v) want (%d,%v)", i, gotPA, gotWr, wantPA, wantWr)
		}
	}
}

func TestTraceWrapsAround(t *testing.T) {
	g, _ := New("stm", 1<<20, 1)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, 10); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var first []uint64
	for i := 0; i < 10; i++ {
		pa, _ := tr.Next()
		first = append(first, pa)
	}
	for i := 0; i < 10; i++ {
		pa, _ := tr.Next()
		if pa != first[i] {
			t.Fatal("wrap-around replay differs")
		}
	}
}

func TestTraceBadInput(t *testing.T) {
	if _, err := ReadTrace("x", strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("bad magic must error")
	}
	if _, err := ReadTrace("x", strings.NewReader(traceMagic)); err == nil {
		t.Fatal("truncated header must error")
	}
	if _, err := ReadTrace("x", strings.NewReader(traceMagic+"\x00\x00\x00\x00\x00\x00\x00\x00")); err == nil {
		t.Fatal("empty trace must error")
	}
	var buf bytes.Buffer
	g, _ := New("rand", 1<<20, 1)
	_ = WriteTrace(&buf, g, 100)
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadTrace("x", bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated records must error")
	}
}

// Property: every (address, write) pair survives encoding for arbitrary
// line addresses up to 2^62.
func TestTraceEncodingProperty(t *testing.T) {
	f := func(addrs []uint64, writes []bool) bool {
		if len(addrs) == 0 {
			return true
		}
		i := 0
		gen := genFunc(func() (uint64, bool) {
			pa := addrs[i%len(addrs)] >> 2
			wr := len(writes) > 0 && writes[i%max(len(writes), 1)]
			i++
			return pa, wr
		})
		var buf bytes.Buffer
		if err := WriteTrace(&buf, gen, uint64(len(addrs))); err != nil {
			return false
		}
		tr, err := ReadTrace("p", &buf)
		if err != nil {
			return false
		}
		for j := 0; j < len(addrs); j++ {
			wantPA := addrs[j] >> 2
			wantWr := len(writes) > 0 && writes[j%max(len(writes), 1)]
			pa, wr := tr.Next()
			if pa != wantPA || wr != wantWr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

type genFunc func() (uint64, bool)

func (g genFunc) Next() (uint64, bool) { return g() }
func (g genFunc) Name() string         { return "func" }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
