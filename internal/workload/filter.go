package workload

import "palermo/internal/cache"

// PrefetchFilter models the LLC's interaction with prefetching ORAM designs
// (PrORAM, Palermo+Prefetch): when an ORAM access fetches a group of
// prefetch-length consecutive lines, subsequent misses to lines of a
// recently fetched group hit in the LLC and bypass the ORAM protocol
// entirely (§III-B). The filter sits between a raw Generator and the ORAM
// controller: Next returns only the misses that reach the controller, and
// Hits counts the filtered accesses.
//
// Residency is tracked in a set-associative cache (internal/cache) indexed
// by group id, approximating the Table III shared L3.
type PrefetchFilter struct {
	gen      Generator
	prefetch uint64
	resident *cache.Cache

	Hits   uint64 // trace accesses served by the LLC
	Misses uint64 // trace accesses forwarded to the ORAM controller
}

// NewPrefetchFilter wraps gen. capacityLines approximates the LLC capacity
// available to prefetched data (Table III: 8 MB shared L3 = 131072 lines);
// prefetch is the group length in lines (1 disables filtering).
func NewPrefetchFilter(gen Generator, prefetch int, capacityLines uint64) *PrefetchFilter {
	if prefetch < 1 {
		prefetch = 1
	}
	groups := capacityLines / uint64(prefetch)
	ways := int(groups / 64) // 64-set organization, as before the refactor
	if ways < 1 {
		ways = 1
	}
	resident, err := cache.NewCache(cache.Level{
		Name:     "llc-groups",
		Capacity: maxU64(groups, uint64(ways)) * cache.LineBytes,
		Ways:     ways,
	})
	if err != nil {
		panic("workload: " + err.Error())
	}
	return &PrefetchFilter{gen: gen, prefetch: uint64(prefetch), resident: resident}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Name returns the underlying generator name.
func (f *PrefetchFilter) Name() string { return f.gen.Name() }

// Next returns the next miss that must be served by the ORAM controller,
// filtering accesses that hit a resident prefetched group.
func (f *PrefetchFilter) Next() (uint64, bool) {
	for {
		pa, wr := f.gen.Next()
		if f.prefetch == 1 {
			f.Misses++
			return pa, wr
		}
		group := pa / f.prefetch
		hit, _, _ := f.resident.Access(group)
		if hit {
			f.Hits++
			continue
		}
		f.Misses++
		return pa, wr
	}
}

// HitRate returns hits / (hits + misses).
func (f *PrefetchFilter) HitRate() float64 {
	total := f.Hits + f.Misses
	if total == 0 {
		return 0
	}
	return float64(f.Hits) / float64(total)
}
