package ctrl

import (
	"testing"

	"palermo/internal/dram"
	"palermo/internal/oram"
	"palermo/internal/rng"
	"palermo/internal/sim"
)

const testLines = 1 << 16

func ringEngine(t *testing.T, variant oram.RingVariant) *oram.Ring {
	t.Helper()
	e, err := oram.NewRing(oram.RingConfig{
		NLines: testLines, Z: 4, S: 5, A: 3, PosLevels: 2, Seed: 1,
		TreeTopBytes: 16 << 10, Variant: variant,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func pathEngine(t *testing.T) *oram.Path {
	t.Helper()
	cfg := oram.DefaultPathConfig()
	cfg.NLines = testLines
	cfg.TreeTopBytes = 16 << 10
	e, err := oram.NewPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func source(seed uint64) Source {
	r := rng.New(seed)
	return FuncSource(func() (uint64, bool) { return r.Uint64n(testLines), false })
}

func TestSerialBasics(t *testing.T) {
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	res := Serial{Name: "ring"}.Run(&eng, mem, ringEngine(t, oram.VariantBaseline), source(7),
		RunConfig{Requests: 200, Warmup: 100, KeepLatency: true})
	if res.Requests != 200 || res.ServedLines != 200 {
		t.Fatalf("requests=%d served=%d", res.Requests, res.ServedLines)
	}
	if res.Cycles == 0 || res.PlanReads == 0 || res.PlanWrites == 0 {
		t.Fatalf("empty measurements: %+v", res)
	}
	if len(res.FromStash) != 200 || len(res.Leaves) != 200 {
		t.Fatalf("per-request captures missing: %d/%d", len(res.FromStash), len(res.Leaves))
	}
	if res.RespLat.N() != 200 {
		t.Fatalf("latency samples %d", res.RespLat.N())
	}
}

func TestSerialLevelAttributionSumsToWall(t *testing.T) {
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	res := Serial{Name: "ring"}.Run(&eng, mem, ringEngine(t, oram.VariantBaseline), source(7),
		RunConfig{Requests: 150, Warmup: 50})
	var total sim.Tick
	for _, lc := range res.Levels {
		total += lc.Dram + lc.Sync
	}
	// Per-level intervals tile the serial request time; allow pipeline-
	// latency slack between phases/levels.
	if total > res.Cycles || total < res.Cycles/2 {
		t.Fatalf("level cycles %d vs wall %d", total, res.Cycles)
	}
	if res.SyncFraction() <= 0 || res.SyncFraction() >= 1 {
		t.Fatalf("sync fraction %f", res.SyncFraction())
	}
}

func TestSerialPathEngine(t *testing.T) {
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	res := Serial{Name: "path"}.Run(&eng, mem, pathEngine(t), source(3),
		RunConfig{Requests: 150, Warmup: 50})
	if res.Requests != 150 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.Mem.Writes == 0 {
		t.Fatal("PathORAM must write back paths")
	}
}

func TestSerialDummyPolicy(t *testing.T) {
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	n := 0
	cfg := RunConfig{Requests: 60, Warmup: 30, DummyPolicy: func() bool {
		n++
		return n%3 == 0
	}}
	res := Serial{Name: "pr"}.Run(&eng, mem, pathEngine(t), source(3), cfg)
	if res.Dummies == 0 {
		t.Fatal("no dummies injected")
	}
	if res.Requests != 60 {
		t.Fatalf("real requests = %d", res.Requests)
	}
	if res.DummyFraction() <= 0 || res.DummyFraction() >= 1 {
		t.Fatalf("dummy fraction %f", res.DummyFraction())
	}
}

func TestSerialDummyStreakBounded(t *testing.T) {
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	cfg := RunConfig{Requests: 10, Warmup: 0, DummyPolicy: func() bool { return true }}
	res := Serial{Name: "pr"}.Run(&eng, mem, pathEngine(t), source(3), cfg)
	if res.Requests != 10 {
		t.Fatal("always-true dummy policy must not starve real requests")
	}
}

func TestSerialOnMeasureStart(t *testing.T) {
	var eng sim.Engine
	mem := dram.New(&eng, dram.DefaultConfig())
	fired := 0
	cfg := RunConfig{Requests: 20, Warmup: 10, OnMeasureStart: func() { fired++ }}
	Serial{Name: "x"}.Run(&eng, mem, ringEngine(t, oram.VariantBaseline), source(1), cfg)
	if fired != 1 {
		t.Fatalf("OnMeasureStart fired %d times", fired)
	}
}

func TestSerialOverlapFasterOnPalermoVariant(t *testing.T) {
	run := func(overlap bool) Result {
		var eng sim.Engine
		mem := dram.New(&eng, dram.DefaultConfig())
		return Serial{Name: "x", OverlapDataRP: overlap}.Run(&eng, mem,
			ringEngine(t, oram.VariantPalermo), source(7),
			RunConfig{Requests: 200, Warmup: 100})
	}
	plain, fast := run(false), run(true)
	if fast.Cycles >= plain.Cycles {
		t.Fatalf("overlapped RP (%d) must be faster than strict serial (%d)",
			fast.Cycles, plain.Cycles)
	}
}

func TestThroughputAndRates(t *testing.T) {
	r := Result{Requests: 100, ServedLines: 400, Cycles: 1600}
	if r.Throughput() != 0.25 {
		t.Fatalf("throughput = %f", r.Throughput())
	}
	// 1600 ticks = 1000 ns; 400 lines / 1 us = 4e8/s.
	if mps := r.MissesPerSecond(); mps < 3.9e8 || mps > 4.1e8 {
		t.Fatalf("misses/s = %g", mps)
	}
	var zero Result
	if zero.Throughput() != 0 || zero.MissesPerSecond() != 0 || zero.SyncFraction() != 0 {
		t.Fatal("zero result must not divide by zero")
	}
}
