package otree

import (
	"reflect"
	"testing"

	"palermo/internal/rng"
)

// TestResidentTopParity drives two stores through an identical operation
// sequence — one plain, one with the dense resident top — and asserts the
// externally visible state is bit-identical: same reads, same exported
// State (so durable checkpoints cannot depend on the representation), same
// materialization count.
func TestResidentTopParity(t *testing.T) {
	g := UniformWide(1<<10, 4, 5, 1, 0, 0)
	a := NewStore(g, rng.New(7))
	b := NewStore(g, rng.New(7))
	b.EnableResidentTop(4)

	drive := func(s *Store) []BucketState {
		for leaf := uint64(0); leaf < g.NumLeaves(); leaf += 3 {
			for l := 0; l <= g.Depth; l++ {
				node := g.NodeAt(leaf, l)
				if s.NeedsReset(node, 1) {
					s.ResetPull(node)
					s.WriteBucket(node, []BlockEntry{{ID: BlockID(node), Val: leaf}})
				}
				e1, slot1, ok1 := s.ReadSlot(node, BlockID(node))
				_ = e1
				_ = slot1
				_ = ok1
			}
		}
		return s.State()
	}
	sa, sb := drive(a), drive(b)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("State diverged between map and resident-top representations: %d vs %d buckets", len(sa), len(sb))
	}
	if a.Materialized() != b.Materialized() {
		t.Fatalf("Materialized diverged: %d vs %d", a.Materialized(), b.Materialized())
	}

	// Restore into a resident-top store must round-trip through State.
	c := NewStore(g, rng.New(7))
	c.EnableResidentTop(4)
	c.Restore(sa)
	if got := c.State(); !reflect.DeepEqual(got, sa) {
		t.Fatalf("State/Restore round trip diverged with resident top enabled")
	}
}

// TestResidentTopLateEnable migrates existing map entries into the dense
// range when residency is enabled after population.
func TestResidentTopLateEnable(t *testing.T) {
	g := UniformWide(1<<8, 4, 5, 1, 0, 0)
	s := NewStore(g, rng.New(3))
	s.Bucket(0).Blocks = []BlockEntry{{ID: 42, Val: 9}}
	s.Bucket(5)
	s.EnableResidentTop(3) // nodes 0..6 dense
	if s.Occupancy(0) != 1 {
		t.Fatalf("bucket 0 lost its block across migration")
	}
	if s.Materialized() != 2 {
		t.Fatalf("Materialized = %d, want 2", s.Materialized())
	}
	if b := s.Bucket(0); len(b.Blocks) != 1 || b.Blocks[0].ID != 42 {
		t.Fatalf("migrated bucket contents diverged: %+v", s.Bucket(0))
	}
}

// TestNewTreeTopLevels clamps to the tree depth and disables at k <= 0.
func TestNewTreeTopLevels(t *testing.T) {
	g := UniformWide(1<<8, 4, 5, 1, 0, 0)
	if got := NewTreeTopLevels(g, 1000).Levels(); got != g.Depth+1 {
		t.Fatalf("Levels = %d, want clamp to %d", got, g.Depth+1)
	}
	if got := NewTreeTopLevels(g, -1).Levels(); got != 0 {
		t.Fatalf("Levels = %d, want 0 for negative k", got)
	}
	tt := NewTreeTopLevels(g, 2)
	if !tt.Cached(1) || tt.Cached(2) {
		t.Fatalf("Cached boundary wrong for k=2")
	}
}
