package otree

import (
	"testing"
	"testing/quick"
)

// Row span covering one DRAM row across 4 channels (dram.DefaultConfig).
const rowSpanBytes = 128 * 4 * 64

// rowOf maps an address to its row-span index (channel-interleaved rows).
func rowOf(addr uint64) uint64 { return addr / rowSpanBytes }

// TestPackedLayoutRowLocality: under the subtree-packed layout, a path's
// traversal of one band must touch far fewer distinct row spans than the
// level-major layout — that is PageORAM's entire point.
func TestPackedLayoutRowLocality(t *testing.T) {
	flat := Uniform(1<<16, 2, 0, 0, 1<<40)
	packed := flat
	packed.PackDepth = 4

	countRows := func(g Geometry, leaf uint64) int {
		rows := map[uint64]bool{}
		for l := 0; l <= g.Depth; l++ {
			n := g.NodeAt(leaf, l)
			for s := 0; s < g.Levels[l].Z; s++ {
				rows[rowOf(g.SlotAddr(n, s))] = true
			}
		}
		return len(rows)
	}
	var flatRows, packedRows int
	for leaf := uint64(0); leaf < 64; leaf++ {
		flatRows += countRows(flat, leaf*512%flat.NumLeaves())
		packedRows += countRows(packed, leaf*512%packed.NumLeaves())
	}
	if packedRows >= flatRows {
		t.Fatalf("packed layout rows %d must be below level-major %d", packedRows, flatRows)
	}
}

// Property: the packed layout remains a bijection for arbitrary pack depths
// and tree shapes.
func TestPackedBijectionProperty(t *testing.T) {
	f := func(depthRaw, packRaw uint8) bool {
		depth := int(depthRaw%8) + 2
		pack := int(packRaw%5) + 1
		g := Uniform(uint64(2)<<depth, 2, 0, 0, 1<<40)
		g.PackDepth = pack
		seen := make(map[uint64]bool, g.NumNodes())
		for n := uint64(0); n < g.NumNodes(); n++ {
			a := g.SlotAddr(n, 0)
			if seen[a] || a < g.Base || a >= g.Base+g.Footprint() {
				return false
			}
			seen[a] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFatTreeCapacityExceedsUniform: the fat tree must add real capacity
// toward the root (that is what absorbs PrORAM's same-leaf groups).
func TestFatTreeCapacityExceedsUniform(t *testing.T) {
	uni := Uniform(1<<12, 4, 0, 0, 1<<40)
	fat := FatTree(1<<12, 4, 0, 2.0, 0, 1<<40)
	capOf := func(g Geometry) int {
		total := 0
		for l := 0; l <= g.Depth; l++ {
			total += (1 << l) * g.Levels[l].Z
		}
		return total
	}
	if capOf(fat) <= capOf(uni) {
		t.Fatal("fat tree must hold more real blocks")
	}
	// And the extra capacity concentrates near the root.
	if fat.Levels[0].Z <= uni.Levels[0].Z {
		t.Fatal("root must be fatter")
	}
	if fat.Levels[fat.Depth].Z != uni.Levels[uni.Depth].Z {
		t.Fatal("leaf buckets must match the base Z")
	}
}

// TestWithBasesRelocation: relocating a geometry must shift every address
// by exactly the base delta.
func TestWithBasesRelocation(t *testing.T) {
	g := Uniform(1<<10, 4, 5, 0, 1<<40)
	moved := g.WithBases(1<<20, 1<<41)
	for _, n := range []uint64{0, 5, 100, g.NumNodes() - 1} {
		if moved.SlotAddr(n, 1)-g.SlotAddr(n, 1) != 1<<20 {
			t.Fatalf("node %d slot shifted wrongly", n)
		}
		if moved.MetaAddr(n)-g.MetaAddr(n) != 1<<41-1<<40 {
			t.Fatalf("node %d meta shifted wrongly", n)
		}
	}
}

// TestBitRevCounterWraps: after a full cycle the sequence repeats exactly.
func TestBitRevCounterWraps(t *testing.T) {
	c := NewBitRevCounter(5)
	var first []uint64
	for i := 0; i < 32; i++ {
		first = append(first, c.Next())
	}
	for i := 0; i < 32; i++ {
		if c.Next() != first[i] {
			t.Fatal("eviction sequence must be periodic")
		}
	}
}
