package otree

import (
	"testing"
	"testing/quick"

	"palermo/internal/rng"
)

func TestUniformGeometrySizing(t *testing.T) {
	g := Uniform(1024, 4, 5, 0, 1<<40)
	// Smallest depth with 4*2^D >= 1024 is D=8.
	if g.Depth != 8 {
		t.Fatalf("depth = %d, want 8", g.Depth)
	}
	if g.NumLeaves() != 256 || g.NumNodes() != 511 {
		t.Fatalf("leaves=%d nodes=%d", g.NumLeaves(), g.NumNodes())
	}
	if g.Footprint() != 511*9*BlockBytes {
		t.Fatalf("footprint = %d", g.Footprint())
	}
}

func TestPathNodes(t *testing.T) {
	g := Uniform(64, 4, 5, 0, 1<<40) // depth 4
	path := g.PathNodes(nil, 0)
	want := []uint64{0, 1, 3, 7, 15}
	if len(path) != len(want) {
		t.Fatalf("path len = %d", len(path))
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	last := g.PathNodes(nil, g.NumLeaves()-1)
	if last[g.Depth] != g.NumNodes()-1 {
		t.Fatalf("rightmost leaf node = %d, want %d", last[g.Depth], g.NumNodes()-1)
	}
}

func TestNodeLevelAndOnPath(t *testing.T) {
	g := Uniform(64, 4, 5, 0, 1<<40)
	for leaf := uint64(0); leaf < g.NumLeaves(); leaf++ {
		for l := 0; l <= g.Depth; l++ {
			n := g.NodeAt(leaf, l)
			if g.NodeLevel(n) != l {
				t.Fatalf("NodeLevel(%d) = %d, want %d", n, g.NodeLevel(n), l)
			}
			if !g.OnPath(leaf, n) {
				t.Fatalf("node %d should be on path of leaf %d", n, leaf)
			}
		}
	}
	if g.OnPath(0, g.NodeAt(g.NumLeaves()-1, g.Depth)) {
		t.Fatal("rightmost leaf node must not be on leaf 0's path")
	}
}

func TestSibling(t *testing.T) {
	g := Uniform(64, 4, 5, 0, 1<<40)
	if g.Sibling(0) != 0 {
		t.Fatal("root sibling must be root")
	}
	if g.Sibling(1) != 2 || g.Sibling(2) != 1 {
		t.Fatal("nodes 1,2 must be siblings")
	}
	if g.Sibling(7) != 8 || g.Sibling(8) != 7 {
		t.Fatal("nodes 7,8 must be siblings")
	}
}

func TestSlotAddrDisjoint(t *testing.T) {
	g := Uniform(256, 4, 5, 4096, 1<<40)
	seen := make(map[uint64]bool)
	for n := uint64(0); n < g.NumNodes(); n++ {
		lvl := g.NodeLevel(n)
		for s := 0; s < g.Levels[lvl].Slots(); s++ {
			a := g.SlotAddr(n, s)
			if a < g.Base || a >= g.Base+g.Footprint() {
				t.Fatalf("slot addr %d outside tree region", a)
			}
			if a%BlockBytes != 0 {
				t.Fatalf("unaligned slot addr %d", a)
			}
			if seen[a] {
				t.Fatalf("duplicate slot addr %d (node %d slot %d)", a, n, s)
			}
			seen[a] = true
		}
	}
}

func TestFatTreeShapes(t *testing.T) {
	g := FatTree(1024, 4, 5, 2.0, 0, 1<<40)
	if g.Levels[0].Z != 8 {
		t.Fatalf("root Z = %d, want 8 (2x scale)", g.Levels[0].Z)
	}
	if g.Levels[g.Depth].Z != 4 {
		t.Fatalf("leaf Z = %d, want 4", g.Levels[g.Depth].Z)
	}
	for l := 0; l < g.Depth; l++ {
		if g.Levels[l].Z < g.Levels[l+1].Z {
			t.Fatal("fat tree must taper toward leaves")
		}
	}
}

func TestCustomGeometry(t *testing.T) {
	specs := []LevelSpec{{4, 5}, {2, 3}, {4, 5}}
	g := Custom(specs, 0, 1<<40)
	if g.Depth != 2 {
		t.Fatalf("depth = %d", g.Depth)
	}
	// Level byte bases must account for the shrunken middle level.
	if got := g.SlotAddr(1, 0) - g.Base; got != uint64(9*BlockBytes) {
		t.Fatalf("level-1 base = %d", got)
	}
	if got := g.SlotAddr(3, 0) - g.Base; got != uint64((9+2*5)*BlockBytes) {
		t.Fatalf("level-2 base = %d", got)
	}
}

func TestBitRevCounterCoversAllLeaves(t *testing.T) {
	c := NewBitRevCounter(4)
	seen := make(map[uint64]bool)
	for i := 0; i < 16; i++ {
		seen[c.Next()] = true
	}
	if len(seen) != 16 {
		t.Fatalf("counter covered %d/16 leaves", len(seen))
	}
	// Sequence must alternate between far-apart subtrees (bit reversal).
	c2 := NewBitRevCounter(4)
	a, b := c2.Next(), c2.Next()
	if a != 0 || b != 8 {
		t.Fatalf("first two eviction leaves = %d,%d, want 0,8", a, b)
	}
}

func TestStoreReadSlotRealAndDummy(t *testing.T) {
	g := Uniform(64, 4, 5, 0, 1<<40)
	st := NewStore(g, rng.New(1))
	st.WriteBucket(3, []BlockEntry{{ID: 42, Val: 99}})
	e, slot, ok := st.ReadSlot(3, 42)
	if !ok || e.ID != 42 || e.Val != 99 {
		t.Fatalf("real read failed: %+v ok=%v", e, ok)
	}
	if slot < 0 || slot >= 9 {
		t.Fatalf("slot %d out of range", slot)
	}
	if st.Bucket(3).Contains(42) {
		t.Fatal("block must be removed after real read")
	}
	// Same block again: dummy.
	e, _, ok = st.ReadSlot(3, 42)
	if ok || e.ID != Dummy {
		t.Fatal("second read must be a dummy")
	}
	if st.Bucket(3).Accessed != 2 {
		t.Fatalf("accessed = %d, want 2", st.Bucket(3).Accessed)
	}
}

func TestStoreSlotsNeverRepeatBeforeReset(t *testing.T) {
	g := Uniform(64, 4, 5, 0, 1<<40)
	st := NewStore(g, rng.New(7))
	seen := make(map[int]bool)
	for i := 0; i < 9; i++ { // Z+S = 9 slots
		_, slot, _ := st.ReadSlot(5, Dummy-1)
		if seen[slot] {
			t.Fatalf("slot %d consumed twice before reset", slot)
		}
		seen[slot] = true
	}
}

func TestStoreResetRestoresSlots(t *testing.T) {
	g := Uniform(64, 4, 5, 0, 1<<40)
	st := NewStore(g, rng.New(7))
	for i := 0; i < 5; i++ {
		st.ReadSlot(2, Dummy-1)
	}
	if !st.NeedsReset(2, 0) {
		t.Fatal("bucket must need reset after S=5 touches")
	}
	pulled := st.ResetPull(2)
	if len(pulled) != 0 {
		t.Fatalf("empty bucket pulled %d blocks", len(pulled))
	}
	if st.Bucket(2).Accessed != 0 {
		t.Fatal("reset must clear accessed count")
	}
	for i := 0; i < 9; i++ {
		st.ReadSlot(2, Dummy-1) // must not panic: all slots fresh again
	}
}

func TestStoreResetPullReturnsBlocks(t *testing.T) {
	g := Uniform(64, 4, 5, 0, 1<<40)
	st := NewStore(g, rng.New(7))
	st.WriteBucket(4, []BlockEntry{{ID: 1, Val: 10}, {ID: 2, Val: 20}})
	pulled := st.ResetPull(4)
	if len(pulled) != 2 {
		t.Fatalf("pulled %d blocks, want 2", len(pulled))
	}
	if st.Occupancy(4) != 0 {
		t.Fatal("bucket must be empty after pull")
	}
}

func TestWriteBucketOverflowPanics(t *testing.T) {
	g := Uniform(64, 2, 3, 0, 1<<40)
	st := NewStore(g, rng.New(7))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Z overflow")
		}
	}()
	st.WriteBucket(0, []BlockEntry{{ID: 1}, {ID: 2}, {ID: 3}})
}

func TestTreeTopSizing(t *testing.T) {
	g := Uniform(1<<20, 4, 5, 0, 1<<40) // depth 18
	tt := NewTreeTop(g, 256<<10)
	if tt.Levels() == 0 {
		t.Fatal("256KB must cache at least the top levels")
	}
	if tt.Levels() > g.Depth {
		t.Fatal("cannot cache more levels than the tree has")
	}
	if !tt.Cached(0) {
		t.Fatal("root must be cached")
	}
	if tt.Cached(tt.Levels()) {
		t.Fatal("first uncached level reported cached")
	}
	// Capacity check: levels 0..K-1 must fit, K more levels must not.
	var used uint64
	for l := 0; l < tt.Levels(); l++ {
		used += (uint64(1) << l) * uint64(g.Levels[l].Slots()+1) * BlockBytes
	}
	if used > 256<<10 {
		t.Fatalf("cached levels use %d bytes > capacity", used)
	}
}

func TestLazyMaterialization(t *testing.T) {
	g := Uniform(1<<28, 16, 27, 0, 1<<40) // full-scale 16 GB space
	st := NewStore(g, rng.New(1))
	if st.Materialized() != 0 {
		t.Fatal("fresh store must have no buckets")
	}
	st.ReadSlot(12345, Dummy-1)
	st.ReadSlot(99999, Dummy-1)
	if st.Materialized() != 2 {
		t.Fatalf("materialized = %d, want 2", st.Materialized())
	}
}

// Property: for any leaf, consecutive path nodes are parent/child in heap
// numbering and levels ascend 0..Depth.
func TestPathStructureProperty(t *testing.T) {
	g := Uniform(1<<16, 4, 5, 0, 1<<40)
	f := func(rawLeaf uint32) bool {
		leaf := uint64(rawLeaf) % g.NumLeaves()
		path := g.PathNodes(nil, leaf)
		if path[0] != 0 {
			return false
		}
		for i := 1; i < len(path); i++ {
			parent := (path[i] - 1) / 2
			if parent != path[i-1] {
				return false
			}
		}
		return path[len(path)-1] == (uint64(1)<<g.Depth)-1+leaf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ReadSlot never returns ok for an absent block and always returns
// ok for a present one (immediately after WriteBucket).
func TestReadSlotPresenceProperty(t *testing.T) {
	g := Uniform(1<<12, 4, 5, 0, 1<<40)
	f := func(seed uint64, nodeRaw uint16, present bool) bool {
		node := uint64(nodeRaw) % g.NumNodes()
		st := NewStore(g, rng.New(seed))
		id := BlockID(7)
		if present {
			st.WriteBucket(node, []BlockEntry{{ID: id, Val: 1}})
		}
		_, _, ok := st.ReadSlot(node, id)
		return ok == present
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
