package otree

import (
	"fmt"
	"sort"

	"palermo/internal/rng"
)

// BlockEntry is a real block resident in a bucket.
type BlockEntry struct {
	ID  BlockID
	Val uint64 // payload carried through the simulator for correctness checks
}

// Bucket is the functional state of one tree node. A zero-value bucket is a
// freshly reset, empty bucket (all slots valid dummies). Slot permutation is
// tracked as a bitset of consumed slot offsets: RingORAM invalidates the
// touched slot on every access and never re-reads it before a reset.
type Bucket struct {
	Blocks   []BlockEntry // valid real blocks currently stored
	used     []uint64     // bitset of slot offsets consumed since the last reset
	Accessed int          // touches since the last reset
}

func (b *Bucket) usedBit(off int) bool { return b.used[off/64]&(1<<(off%64)) != 0 }

func (b *Bucket) setUsed(off int) {
	for len(b.used) <= off/64 {
		b.used = append(b.used, 0)
	}
	b.used[off/64] |= 1 << (off % 64)
}

func (b *Bucket) clearUsed() {
	for i := range b.used {
		b.used[i] = 0
	}
	b.Accessed = 0
}

// Store is a lazily-materialized bucket container for one ORAM tree. Buckets
// are created on first touch so full-scale (16 GB-space) geometries run in
// bounded memory. The top of the tree — the nodes every path traverses —
// can additionally be held in a dense resident array (EnableResidentTop),
// replacing the map lookup on the hottest nodes with an index; residency is
// a pure representation change and never alters which buckets exist.
type Store struct {
	g       Geometry
	buckets map[uint64]*Bucket
	top     []*Bucket // dense resident nodes [0, len(top)); nil = untouched
	r       *rng.Rand
}

// maxResidentNodes bounds the dense resident array so a deep tree with a
// large requested level count cannot allocate an absurd pointer table
// (2^20 nodes ~ 8 MB; levels beyond stay in the map, correctness
// unchanged).
const maxResidentNodes = 1 << 20

// NewStore creates an empty tree (every bucket holds only dummies).
func NewStore(g Geometry, r *rng.Rand) *Store {
	return &Store{g: g, buckets: make(map[uint64]*Bucket), r: r}
}

// Geometry returns the tree geometry.
func (s *Store) Geometry() Geometry { return s.g }

// EnableResidentTop keeps the top k levels' buckets (nodes 0..2^k-2 in the
// level-order numbering) in a dense array instead of the map. Call before
// or after population; existing map entries in the resident range migrate.
// Purely an access-path optimization: materialization order, State output,
// and protocol behavior are bit-identical with residency on or off.
func (s *Store) EnableResidentTop(levels int) {
	if levels <= 0 {
		return
	}
	if levels > s.g.Depth+1 {
		levels = s.g.Depth + 1
	}
	n := uint64(1)<<levels - 1
	if n > s.g.NumNodes() {
		n = s.g.NumNodes()
	}
	if n > maxResidentNodes {
		n = maxResidentNodes
	}
	if uint64(len(s.top)) >= n {
		return
	}
	top := make([]*Bucket, n)
	copy(top, s.top)
	s.top = top
	for node, b := range s.buckets {
		if node < n {
			s.top[node] = b
			delete(s.buckets, node)
		}
	}
}

// Bucket materializes and returns the bucket for node.
func (s *Store) Bucket(node uint64) *Bucket {
	if node < uint64(len(s.top)) {
		b := s.top[node]
		if b == nil {
			b = &Bucket{}
			s.top[node] = b
		}
		return b
	}
	b, ok := s.buckets[node]
	if !ok {
		b = &Bucket{}
		s.buckets[node] = b
	}
	return b
}

// peek returns the bucket for node without materializing it.
func (s *Store) peek(node uint64) (*Bucket, bool) {
	if node < uint64(len(s.top)) {
		b := s.top[node]
		return b, b != nil
	}
	b, ok := s.buckets[node]
	return b, ok
}

// Materialized returns the number of buckets touched so far.
func (s *Store) Materialized() int {
	n := len(s.buckets)
	for _, b := range s.top {
		if b != nil {
			n++
		}
	}
	return n
}

// find returns the index of id in b.Blocks, or -1.
func (b *Bucket) find(id BlockID) int {
	for i := range b.Blocks {
		if b.Blocks[i].ID == id {
			return i
		}
	}
	return -1
}

// Contains reports whether the bucket currently holds id as a valid block.
func (b *Bucket) Contains(id BlockID) bool { return b.find(id) >= 0 }

// freeSlot picks an arbitrary unconsumed slot offset (the functional model
// does not track the real permutation; any distinct offset is equivalent for
// timing and the permutation is re-randomized on reset).
func (s *Store) freeSlot(b *Bucket, slots int) int {
	// Pick a random unconsumed offset to model the random permutation's
	// effect on DRAM addresses within the bucket.
	free := slots - b.Accessed
	if free <= 0 {
		panic("otree: ReadSlot on exhausted bucket (protocol must reset first)")
	}
	for len(b.used) <= (slots-1)/64 {
		b.used = append(b.used, 0)
	}
	k := s.r.Intn(free)
	for off := 0; off < slots; off++ {
		if b.usedBit(off) {
			continue
		}
		if k == 0 {
			return off
		}
		k--
	}
	panic("unreachable")
}

// ReadSlot performs RingORAM's ReadBucket: it consumes exactly one slot of
// node. If want is present in the bucket the real block is removed and
// returned with ok=true; otherwise an unused dummy is consumed. The returned
// slot offset determines the DRAM address touched.
//
// The RingORAM invariant guarantees a usable slot exists whenever
// Accessed < S at entry (the early-reshuffle rule resets before exhaustion).
func (s *Store) ReadSlot(node uint64, want BlockID) (e BlockEntry, slot int, ok bool) {
	b := s.Bucket(node)
	lvl := s.g.NodeLevel(node)
	slots := s.g.Levels[lvl].Slots()
	slot = s.freeSlot(b, slots)
	b.setUsed(slot)
	b.Accessed++
	if i := b.find(want); i >= 0 {
		e = b.Blocks[i]
		b.Blocks = append(b.Blocks[:i], b.Blocks[i+1:]...)
		return e, slot, true
	}
	return BlockEntry{ID: Dummy}, slot, false
}

// NeedsReset reports whether the node has consumed its guaranteed dummy
// budget: after S touches a further ReadSlot may find no unused dummy.
func (s *Store) NeedsReset(node uint64, margin int) bool {
	b, ok := s.peek(node)
	if !ok {
		return false
	}
	lvl := s.g.NodeLevel(node)
	return b.Accessed >= s.g.Levels[lvl].S-margin
}

// ResetPull removes and returns all valid real blocks from node, modelling
// ResetBucket's pull step (the DRAM traffic is padded to Z reads by the
// caller for obliviousness). The bucket's access state is cleared.
func (s *Store) ResetPull(node uint64) []BlockEntry {
	b := s.Bucket(node)
	blocks := b.Blocks
	b.Blocks = nil
	b.clearUsed()
	return blocks
}

// WriteBucket installs blocks into node after a reset. len(blocks) must not
// exceed the level's Z.
func (s *Store) WriteBucket(node uint64, blocks []BlockEntry) {
	lvl := s.g.NodeLevel(node)
	if len(blocks) > s.g.Levels[lvl].Z {
		panic(fmt.Sprintf("otree: writing %d blocks into Z=%d bucket", len(blocks), s.g.Levels[lvl].Z))
	}
	b := s.Bucket(node)
	b.Blocks = append(b.Blocks[:0], blocks...)
	b.clearUsed()
}

// BucketState is the serializable form of one materialized bucket, used by
// durable-store checkpoints. Used mirrors the consumed-slot bitset.
type BucketState struct {
	Node     uint64
	Blocks   []BlockEntry
	Used     []uint64
	Accessed int
}

// State exports every materialized bucket, sorted by node id so the
// checkpoint layout is deterministic. Slices are copied.
func (s *Store) State() []BucketState {
	out := make([]BucketState, 0, s.Materialized())
	export := func(node uint64, b *Bucket) {
		out = append(out, BucketState{
			Node:     node,
			Blocks:   append([]BlockEntry(nil), b.Blocks...),
			Used:     append([]uint64(nil), b.used...),
			Accessed: b.Accessed,
		})
	}
	for node, b := range s.top {
		if b != nil {
			export(uint64(node), b)
		}
	}
	for node, b := range s.buckets {
		export(node, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Restore replaces the store's contents with a previously exported State.
// A configured resident top is kept (and repopulated from the state).
func (s *Store) Restore(bs []BucketState) {
	s.buckets = make(map[uint64]*Bucket, len(bs))
	for i := range s.top {
		s.top[i] = nil
	}
	for _, st := range bs {
		b := &Bucket{
			Blocks:   append([]BlockEntry(nil), st.Blocks...),
			used:     append([]uint64(nil), st.Used...),
			Accessed: st.Accessed,
		}
		if st.Node < uint64(len(s.top)) {
			s.top[st.Node] = b
		} else {
			s.buckets[st.Node] = b
		}
	}
}

// Occupancy returns the number of valid real blocks in node (0 for
// untouched buckets).
func (s *Store) Occupancy(node uint64) int {
	b, ok := s.peek(node)
	if !ok {
		return 0
	}
	return len(b.Blocks)
}

// ForEachBlock calls fn for every valid real block in every materialized
// bucket (testing/invariant checking).
func (s *Store) ForEachBlock(fn func(node uint64, e BlockEntry)) {
	for node, b := range s.top {
		if b == nil {
			continue
		}
		for _, e := range b.Blocks {
			fn(uint64(node), e)
		}
	}
	for node, b := range s.buckets {
		for _, e := range b.Blocks {
			fn(node, e)
		}
	}
}

// TreeTop models the on-chip tree-top cache: the top K levels of the tree
// (bucket payloads and metadata) live in scratchpad, so accesses to them
// cost no DRAM traffic.
type TreeTop struct {
	levels int
}

// NewTreeTop sizes the cache: the largest K such that levels 0..K-1 fit in
// capacityBytes given the geometry's bucket sizes (metadata included, one
// line per node).
func NewTreeTop(g Geometry, capacityBytes uint64) TreeTop {
	var used uint64
	k := 0
	for l := 0; l <= g.Depth; l++ {
		levelBytes := (uint64(1) << l) * uint64(g.Levels[l].Slots()*g.SlotLines+1) * BlockBytes
		if used+levelBytes > capacityBytes {
			break
		}
		used += levelBytes
		k++
	}
	return TreeTop{levels: k}
}

// NewTreeTopLevels pins the cache to exactly k levels (clamped to the
// tree's depth+1), bypassing the byte-budget sizing — the serving-path
// TreeTopLevels knob. k <= 0 disables the cache entirely.
func NewTreeTopLevels(g Geometry, k int) TreeTop {
	if k < 0 {
		k = 0
	}
	if k > g.Depth+1 {
		k = g.Depth + 1
	}
	return TreeTop{levels: k}
}

// Levels returns how many top levels are cached.
func (t TreeTop) Levels() int { return t.levels }

// Cached reports whether a node at the given level is served on-chip.
func (t TreeTop) Cached(level int) bool { return level < t.levels }
