// Package otree implements the ORAM binary-tree substrate shared by every
// protocol in this repository: tree geometry (node addressing, path
// enumeration, physical DRAM layout), a lazily-materialized bucket store with
// RingORAM-style per-node metadata, and the on-chip tree-top cache model.
//
// Terminology follows the paper: the tree has depth D (root at level 0,
// leaves at level D); each node is a bucket of Z real-capacity slots plus at
// least S dummy slots; a block's position invariant is that it lies on the
// path from its mapped leaf to the root, or in the stash.
package otree

import "fmt"

// BlockID identifies a logical block within one protected memory space.
// The dummy marker is ^BlockID(0).
type BlockID uint64

// Dummy is the reserved BlockID for dummy slots.
const Dummy = ^BlockID(0)

// BlockBytes is the cache-line block size.
const BlockBytes = 64

// LevelSpec gives the bucket shape at one tree level (fat-tree protocols use
// different shapes per level).
type LevelSpec struct {
	Z int // real-block capacity
	S int // guaranteed dummy slots
}

// Slots returns the physical slot count of a bucket at this level.
func (l LevelSpec) Slots() int { return l.Z + l.S }

// Geometry describes an ORAM tree's shape and physical layout. All DRAM
// addresses derived from a Geometry are contained in
// [Base, Base+Footprint()).
type Geometry struct {
	Depth     int         // leaves are at this level; levels = Depth+1
	Levels    []LevelSpec // len Depth+1, indexed by level
	Base      uint64      // physical byte address of bucket storage
	MetaBase  uint64      // physical byte address of node metadata (1 line/node)
	SlotLines int         // cache lines per slot (prefetch width; 1 normally)
	PackDepth int         // 0: level-major layout; k>0: aligned subtrees of k
	// levels stored contiguously so path segments share DRAM rows
	// (PageORAM's page-aware layout). Requires uniform bucket sizes.

	// levelByteBase[l] is the byte offset of level l's buckets from Base,
	// precomputed because fat trees have non-uniform bucket sizes.
	levelByteBase []uint64
}

// Uniform builds a geometry with identical Z and S at every level, sized to
// hold nBlocks logical blocks: the leaf count is the smallest power of two
// with nBlocks <= Z * leaves (the RingORAM provisioning rule, which keeps
// tree utilization at or below 50% counting non-leaf capacity).
func Uniform(nBlocks uint64, z, s int, base, metaBase uint64) Geometry {
	return UniformWide(nBlocks, z, s, 1, base, metaBase)
}

// UniformWide is Uniform with slotLines cache lines per slot: the prefetch
// configuration maps slotLines consecutive cache lines to one tree block, so
// every slot touch moves slotLines bursts (Palermo §V-C).
func UniformWide(nBlocks uint64, z, s, slotLines int, base, metaBase uint64) Geometry {
	if nBlocks == 0 || z <= 0 || s < 0 || slotLines <= 0 {
		panic(fmt.Sprintf("otree: invalid geometry nBlocks=%d Z=%d S=%d lines=%d", nBlocks, z, s, slotLines))
	}
	depth := 0
	for uint64(z)<<depth < nBlocks {
		depth++
	}
	specs := make([]LevelSpec, depth+1)
	for i := range specs {
		specs[i] = LevelSpec{Z: z, S: s}
	}
	return build(depth, specs, base, metaBase, slotLines)
}

// FatTree builds a LAORAM-style geometry where the root-level bucket has
// rootScale times the real capacity of the leaf level, tapering linearly
// toward the leaves. Dummy slots scale proportionally.
func FatTree(nBlocks uint64, z, s int, rootScale float64, base, metaBase uint64) Geometry {
	if rootScale < 1 {
		panic("otree: FatTree rootScale must be >= 1")
	}
	depth := 0
	for uint64(z)<<depth < nBlocks {
		depth++
	}
	specs := make([]LevelSpec, depth+1)
	for l := 0; l <= depth; l++ {
		// Linear taper: scale = rootScale at level 0, 1.0 at level depth.
		frac := 1.0
		if depth > 0 {
			frac = float64(depth-l) / float64(depth)
		}
		scale := 1 + (rootScale-1)*frac
		zz := int(float64(z)*scale + 0.5)
		ss := int(float64(s)*scale + 0.5)
		specs[l] = LevelSpec{Z: zz, S: ss}
	}
	return build(depth, specs, base, metaBase, 1)
}

// Custom builds a geometry from explicit per-level specs (IR-ORAM shrinks
// mid-tree buckets).
func Custom(specs []LevelSpec, base, metaBase uint64) Geometry {
	if len(specs) == 0 {
		panic("otree: Custom requires at least one level")
	}
	return build(len(specs)-1, specs, base, metaBase, 1)
}

func build(depth int, specs []LevelSpec, base, metaBase uint64, slotLines int) Geometry {
	g := Geometry{Depth: depth, Levels: specs, Base: base, MetaBase: metaBase, SlotLines: slotLines}
	g.levelByteBase = make([]uint64, depth+2)
	off := uint64(0)
	for l := 0; l <= depth; l++ {
		g.levelByteBase[l] = off
		off += (uint64(1) << l) * uint64(specs[l].Slots()*slotLines) * BlockBytes
	}
	g.levelByteBase[depth+1] = off
	return g
}

// WithBases returns a copy of g relocated to the given physical bases
// (geometries are sized first, then laid out disjointly; see oram.Layout).
func (g Geometry) WithBases(base, metaBase uint64) Geometry {
	g.Base = base
	g.MetaBase = metaBase
	return g
}

// NumLeaves returns the leaf count (2^Depth).
func (g Geometry) NumLeaves() uint64 { return 1 << g.Depth }

// NumNodes returns the total node count (2^(Depth+1) - 1).
func (g Geometry) NumNodes() uint64 { return (1 << (g.Depth + 1)) - 1 }

// Footprint returns the byte size of bucket storage.
func (g Geometry) Footprint() uint64 { return g.levelByteBase[g.Depth+1] }

// NodeLevel returns the tree level of a node in heap numbering.
func (g Geometry) NodeLevel(node uint64) int {
	l := 0
	for node >= (uint64(1)<<(l+1))-1 {
		l++
	}
	return l
}

// NodeAt returns the node index at the given level along the path to leaf.
func (g Geometry) NodeAt(leaf uint64, level int) uint64 {
	return (uint64(1) << level) - 1 + (leaf >> (g.Depth - level))
}

// PathNodes appends the nodes on the root→leaf path to dst and returns it.
func (g Geometry) PathNodes(dst []uint64, leaf uint64) []uint64 {
	for l := 0; l <= g.Depth; l++ {
		dst = append(dst, g.NodeAt(leaf, l))
	}
	return dst
}

// Sibling returns the sibling of node (root is its own sibling).
func (g Geometry) Sibling(node uint64) uint64 {
	if node == 0 {
		return 0
	}
	if node%2 == 1 { // left child
		return node + 1
	}
	return node - 1
}

// OnPath reports whether node lies on the path from leaf to the root.
func (g Geometry) OnPath(leaf uint64, node uint64) bool {
	l := g.NodeLevel(node)
	return g.NodeAt(leaf, l) == node
}

// SlotAddr returns the physical DRAM address of the first cache line of
// slot i of node; a wide slot occupies SlotLines consecutive lines from it.
func (g Geometry) SlotAddr(node uint64, slot int) uint64 {
	l := g.NodeLevel(node)
	idxInLevel := node - ((uint64(1) << l) - 1)
	if g.PackDepth > 0 {
		return g.Base + g.packedBucketIndex(l, idxInLevel)*
			uint64(g.Levels[0].Slots()*g.SlotLines)*BlockBytes +
			uint64(slot*g.SlotLines)*BlockBytes
	}
	return g.Base + g.levelByteBase[l] +
		idxInLevel*uint64(g.Levels[l].Slots()*g.SlotLines)*BlockBytes +
		uint64(slot*g.SlotLines)*BlockBytes
}

// packedBucketIndex linearizes (level, index) under the subtree-packed
// layout: levels are partitioned into bands of PackDepth levels; within a
// band, each aligned subtree's buckets are contiguous, so one path's
// traversal of the band touches one contiguous region (DRAM row locality).
func (g Geometry) packedBucketIndex(level int, idxInLevel uint64) uint64 {
	k := g.PackDepth
	band := level / k
	bandLo := band * k
	bandLevels := k
	if bandLo+bandLevels > g.Depth+1 {
		bandLevels = g.Depth + 1 - bandLo
	}
	// Buckets before this band.
	bandBase := (uint64(1) << bandLo) - 1
	// Subtrees in this band are rooted at level bandLo.
	subtreeSize := (uint64(1) << bandLevels) - 1
	d := level - bandLo
	subtree := idxInLevel >> d
	posInSubtree := (uint64(1) << d) - 1 + (idxInLevel & ((uint64(1) << d) - 1))
	return bandBase + subtree*subtreeSize + posInSubtree
}

// MetaAddr returns the physical DRAM address of node's metadata line.
func (g Geometry) MetaAddr(node uint64) uint64 {
	return g.MetaBase + node*BlockBytes
}

// BitRevCounter generates RingORAM's deterministic eviction-leaf sequence:
// successive counter values in bit-reversed order cover the leaves in the
// reverse-lexicographic pattern that balances evictions across subtrees.
type BitRevCounter struct {
	n     uint64
	depth int
}

// NewBitRevCounter creates a counter for a tree of the given depth.
func NewBitRevCounter(depth int) *BitRevCounter { return &BitRevCounter{depth: depth} }

// State returns the counter position for checkpointing.
func (c *BitRevCounter) State() uint64 { return c.n }

// Restore sets the counter position from a checkpoint.
func (c *BitRevCounter) Restore(n uint64) { c.n = n % (1 << c.depth) }

// Next returns the next eviction leaf.
func (c *BitRevCounter) Next() uint64 {
	v := c.n
	c.n = (c.n + 1) % (1 << c.depth)
	return reverseBits(v, c.depth)
}

func reverseBits(v uint64, bits int) uint64 {
	var r uint64
	for i := 0; i < bits; i++ {
		r = (r << 1) | (v & 1)
		v >>= 1
	}
	return r
}
