// Package cluster holds the multi-node placement layer of the oblivious
// store: a manifest mapping contiguous shard ranges onto node addresses
// under a monotonically increasing geometry epoch, and the declarative
// server configuration the nodes and the cluster-routing client share.
//
// The placement map is deliberately tiny and public. Which node serves a
// shard is a deterministic pure function of the public block id (the §6
// striping router composed with the range lookup here), so placement
// reveals nothing beyond the id the client already presented in plaintext
// at the trusted boundary — each node's backend still observes exactly one
// uniform path per access for the shards it owns (DESIGN.md §11).
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Range assigns the contiguous shard interval [From, To) to one node.
type Range struct {
	From uint32 `json:"from"` // first shard, inclusive
	To   uint32 `json:"to"`   // last shard, exclusive
	Addr string `json:"addr"` // node address as clients dial it (host:port)
}

// Manifest is the cluster placement map: the store geometry every node
// must agree on, plus the shard→node assignment, versioned by a geometry
// epoch that only ever increases. Every live migration bumps Epoch by one
// when the placement flips, so any two manifests are ordered and a client
// holding a stale one fails loudly (StatusWrongEpoch) instead of reading
// from a node that surrendered the shard.
type Manifest struct {
	Epoch  uint64  `json:"epoch"`
	Blocks uint64  `json:"blocks"`
	Shards uint32  `json:"shards"`
	Ranges []Range `json:"ranges"`
}

// Validate checks the manifest's internal consistency: a positive
// geometry, and ranges that exactly tile [0, Shards) in order with no
// overlap, no gap, and no empty or unaddressed range. A node may own
// several (non-adjacent) ranges — the normal state after migrations.
func (m *Manifest) Validate() error {
	if m.Blocks == 0 {
		return fmt.Errorf("cluster: manifest has zero blocks")
	}
	if m.Shards == 0 {
		return fmt.Errorf("cluster: manifest has zero shards")
	}
	if uint64(m.Shards) > m.Blocks {
		return fmt.Errorf("cluster: %d shards exceed %d blocks", m.Shards, m.Blocks)
	}
	if len(m.Ranges) == 0 {
		return fmt.Errorf("cluster: manifest has no ranges")
	}
	next := uint32(0)
	for i, r := range m.Ranges {
		if r.Addr == "" {
			return fmt.Errorf("cluster: range %d ([%d,%d)) has no node address", i, r.From, r.To)
		}
		if r.From != next {
			return fmt.Errorf("cluster: range %d starts at shard %d, want %d (ranges must tile [0,%d) in order)",
				i, r.From, next, m.Shards)
		}
		if r.To <= r.From {
			return fmt.Errorf("cluster: range %d ([%d,%d)) is empty", i, r.From, r.To)
		}
		next = r.To
	}
	if next != m.Shards {
		return fmt.Errorf("cluster: ranges cover [0,%d) but the manifest has %d shards", next, m.Shards)
	}
	return nil
}

// Owner returns the address of the node owning shard s ("" if s is out of
// range). The manifest must be valid.
func (m *Manifest) Owner(s int) string {
	for _, r := range m.Ranges {
		if uint32(s) >= r.From && uint32(s) < r.To {
			return r.Addr
		}
	}
	return ""
}

// Nodes returns the distinct node addresses in first-appearance order.
func (m *Manifest) Nodes() []string {
	var out []string
	seen := make(map[string]bool)
	for _, r := range m.Ranges {
		if !seen[r.Addr] {
			seen[r.Addr] = true
			out = append(out, r.Addr)
		}
	}
	return out
}

// Owned returns the shards addr owns, ascending.
func (m *Manifest) Owned(addr string) []int {
	var out []int
	for _, r := range m.Ranges {
		if r.Addr != addr {
			continue
		}
		for s := r.From; s < r.To; s++ {
			out = append(out, int(s))
		}
	}
	sort.Ints(out)
	return out
}

// WithOwner returns a copy of the manifest with shard s reassigned to addr
// and the epoch set to newEpoch — the placement flip a completed migration
// commits. Ranges are re-normalized (split around s, adjacent same-owner
// ranges merged), so the result is valid whenever the input was.
func (m *Manifest) WithOwner(s int, addr string, newEpoch uint64) *Manifest {
	// Expand to a per-shard owner table, flip one entry, and run-length
	// encode it back: obviously correct, and S is capped at a few thousand.
	owners := make([]string, m.Shards)
	for _, r := range m.Ranges {
		for i := r.From; i < r.To && int(i) < len(owners); i++ {
			owners[i] = r.Addr
		}
	}
	if s >= 0 && s < len(owners) {
		owners[s] = addr
	}
	out := &Manifest{Epoch: newEpoch, Blocks: m.Blocks, Shards: m.Shards}
	for i := 0; i < len(owners); {
		j := i
		for j < len(owners) && owners[j] == owners[i] {
			j++
		}
		out.Ranges = append(out.Ranges, Range{From: uint32(i), To: uint32(j), Addr: owners[i]})
		i = j
	}
	return out
}

// EvenSplit builds an initial manifest at epoch 1 that deals the shards
// out to the nodes in contiguous, near-equal ranges (the first
// shards%len(addrs) nodes get one extra).
func EvenSplit(blocks uint64, shards uint32, addrs []string) (*Manifest, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: EvenSplit needs at least one node address")
	}
	if uint32(len(addrs)) > shards {
		return nil, fmt.Errorf("cluster: %d nodes exceed %d shards (a node would own nothing)", len(addrs), shards)
	}
	m := &Manifest{Epoch: 1, Blocks: blocks, Shards: shards}
	per, extra := shards/uint32(len(addrs)), shards%uint32(len(addrs))
	from := uint32(0)
	for i, addr := range addrs {
		n := per
		if uint32(i) < extra {
			n++
		}
		m.Ranges = append(m.Ranges, Range{From: from, To: from + n, Addr: addr})
		from += n
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Encode renders the manifest as canonical indented JSON (the wire body of
// the Manifest op and the on-disk format of Save).
func (m *Manifest) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("cluster: encode manifest: %w", err)
	}
	return append(buf, '\n'), nil
}

// Decode parses and validates a manifest. Unknown fields are rejected so a
// typo in a hand-edited manifest fails loudly instead of silently defaulting.
func Decode(data []byte) (*Manifest, error) {
	var m Manifest
	if err := strictUnmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: decode manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Load reads and validates a manifest file.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	m, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("cluster: manifest %s: %w", path, err)
	}
	return m, nil
}

// Save writes the manifest atomically (temp file + rename in the target
// directory), so a crash mid-write never leaves a torn manifest behind.
func (m *Manifest) Save(path string) error {
	buf, err := m.Encode()
	if err != nil {
		return err
	}
	return atomicWrite(path, buf)
}

// atomicWrite writes data to path via a same-directory temp file + rename.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("cluster: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("cluster: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("cluster: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("cluster: %w", err)
	}
	return nil
}
