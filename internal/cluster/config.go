package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ServerConfig is the declarative form of cmd/palermo-server's flag set:
// one reviewed JSON artifact instead of a dozen flags (ROADMAP item 5b),
// shared between standalone servers and cluster nodes. Zero values mean
// the same defaults as the corresponding flags. The field comments name
// the flag each key mirrors.
type ServerConfig struct {
	Addr string `json:"addr,omitempty"` // -addr: TCP listen address (and, in cluster mode, this node's manifest identity)

	Shards          int    `json:"shards,omitempty"`           // -shards
	Blocks          uint64 `json:"blocks,omitempty"`           // -blocks
	Seed            uint64 `json:"seed,omitempty"`             // -seed
	Queue           int    `json:"queue,omitempty"`            // -queue
	Pipeline        int    `json:"pipeline,omitempty"`         // -pipeline
	TreeTop         int    `json:"treetop,omitempty"`          // -treetop
	Prefetch        bool   `json:"prefetch,omitempty"`         // -prefetch
	PrefetchDepth   int    `json:"prefetch_depth,omitempty"`   // -prefetch-depth: planner look-ahead in predicted batches
	PosmapPrefetch  bool   `json:"posmap_prefetch,omitempty"`  // -posmap-prefetch: announce posmap-group siblings too
	Dir             string `json:"dir,omitempty"`              // -dir: durable store directory
	Engine          string `json:"engine,omitempty"`           // -engine: "wal" (default with Dir) or "blockfile"
	GroupCommit     int    `json:"group_commit,omitempty"`     // -group-commit
	CheckpointEvery int    `json:"checkpoint_every,omitempty"` // -checkpoint-every
	CryptoWorkers   int    `json:"crypto_workers,omitempty"`   // -crypto-workers
	SlotCache       int    `json:"slot_cache,omitempty"`       // -slot-cache: blockfile slot read-cache bytes per shard

	MaxInFlight int      `json:"max_inflight,omitempty"` // -max-inflight
	MaxBatch    int      `json:"max_batch,omitempty"`    // -max-batch
	Idle        Duration `json:"idle,omitempty"`         // -idle, as a Go duration string ("2m")
	Admission   Duration `json:"admission,omitempty"`    // -admission: overload-shedding deadline ("0" = disabled)

	Metrics string `json:"metrics,omitempty"` // -metrics: operability listener address
	Pprof   bool   `json:"pprof,omitempty"`   // -pprof: mount /debug/pprof on the metrics listener

	// Manifest selects cluster mode: the path of the placement manifest
	// this node loads at startup (see Manifest/Load). The node serves only
	// the shard ranges the manifest assigns to Addr.
	Manifest string `json:"manifest,omitempty"`
}

// LoadConfig reads and strictly parses a ServerConfig file: unknown keys
// are rejected so a typo fails loudly instead of silently defaulting.
func LoadConfig(path string) (*ServerConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	var c ServerConfig
	if err := strictUnmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("cluster: config %s: %w", path, err)
	}
	return &c, nil
}

// strictUnmarshal is json.Unmarshal with unknown fields rejected.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// Duration is a time.Duration that marshals as a Go duration string
// ("2m", "90s") and unmarshals from either a string or integer
// nanoseconds, so configs read the way the flags do.
type Duration time.Duration

// MarshalJSON renders the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "2m"-style strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		dd, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("cluster: bad duration %q: %w", s, err)
		}
		*d = Duration(dd)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("cluster: duration must be a string like \"2m\" or integer nanoseconds")
	}
	*d = Duration(n)
	return nil
}
