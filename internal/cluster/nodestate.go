package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// nodeStateName is the per-node durable cluster state file inside a
// node's store directory.
const nodeStateName = "cluster.json"

// NodeState is the slice of cluster state one durable node persists
// alongside its WAL shards: its own manifest identity and the newest
// placement manifest it has committed to. A restarting node adopts the
// higher-epoch manifest of {startup file, persisted state}, so a node
// that flipped placement during a previous life never resurrects a stale
// shard assignment; an offline verifier reads the same file to learn
// which shards the directory is supposed to hold.
type NodeState struct {
	Addr     string    `json:"addr"`
	Manifest *Manifest `json:"manifest"`
}

// LoadNodeState reads dir's persisted node state. A directory without one
// (a first boot) returns (nil, nil).
func LoadNodeState(dir string) (*NodeState, error) {
	data, err := os.ReadFile(filepath.Join(dir, nodeStateName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	var ns NodeState
	if err := strictUnmarshal(data, &ns); err != nil {
		return nil, fmt.Errorf("cluster: node state %s: %w", filepath.Join(dir, nodeStateName), err)
	}
	if ns.Addr == "" || ns.Manifest == nil {
		return nil, fmt.Errorf("cluster: node state %s is incomplete", filepath.Join(dir, nodeStateName))
	}
	if err := ns.Manifest.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: node state %s: %w", filepath.Join(dir, nodeStateName), err)
	}
	return &ns, nil
}

// Save persists the node state atomically into dir.
func (ns *NodeState) Save(dir string) error {
	buf, err := json.MarshalIndent(ns, "", "  ")
	if err != nil {
		return fmt.Errorf("cluster: encode node state: %w", err)
	}
	return atomicWrite(filepath.Join(dir, nodeStateName), append(buf, '\n'))
}
