package cluster

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testManifest() *Manifest {
	return &Manifest{
		Epoch: 1, Blocks: 1 << 12, Shards: 4,
		Ranges: []Range{
			{From: 0, To: 2, Addr: "a:1"},
			{From: 2, To: 4, Addr: "b:2"},
		},
	}
}

func TestManifestValidate(t *testing.T) {
	if err := testManifest().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	bad := []func(*Manifest){
		func(m *Manifest) { m.Blocks = 0 },
		func(m *Manifest) { m.Shards = 0 },
		func(m *Manifest) { m.Blocks = 2 }, // shards > blocks
		func(m *Manifest) { m.Ranges = nil },
		func(m *Manifest) { m.Ranges[0].Addr = "" },
		func(m *Manifest) { m.Ranges[1].From = 3 },                                // gap
		func(m *Manifest) { m.Ranges[1].From = 1 },                                // overlap
		func(m *Manifest) { m.Ranges[1].To = 3 },                                  // under-cover
		func(m *Manifest) { m.Ranges[1].To = 5 },                                  // over-cover
		func(m *Manifest) { m.Ranges[0].To = 0 },                                  // empty range
		func(m *Manifest) { m.Ranges[0], m.Ranges[1] = m.Ranges[1], m.Ranges[0] }, // out of order
	}
	for i, mutate := range bad {
		m := testManifest()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d: invalid manifest accepted", i)
		}
	}
}

func TestManifestOwnerAndOwned(t *testing.T) {
	m := testManifest()
	wantOwners := []string{"a:1", "a:1", "b:2", "b:2"}
	for s, want := range wantOwners {
		if got := m.Owner(s); got != want {
			t.Errorf("Owner(%d) = %q, want %q", s, got, want)
		}
	}
	if got := m.Owner(4); got != "" {
		t.Errorf("Owner(4) = %q, want empty", got)
	}
	if got := m.Owned("a:1"); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Owned(a:1) = %v", got)
	}
	if got := m.Nodes(); !reflect.DeepEqual(got, []string{"a:1", "b:2"}) {
		t.Errorf("Nodes() = %v", got)
	}
}

func TestManifestWithOwner(t *testing.T) {
	m := testManifest()
	// Move shard 1 to b:2: a's range splits, and shard 1..4 merge under b.
	m2 := m.WithOwner(1, "b:2", 2)
	if err := m2.Validate(); err != nil {
		t.Fatalf("WithOwner produced an invalid manifest: %v", err)
	}
	if m2.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", m2.Epoch)
	}
	want := []Range{{From: 0, To: 1, Addr: "a:1"}, {From: 1, To: 4, Addr: "b:2"}}
	if !reflect.DeepEqual(m2.Ranges, want) {
		t.Fatalf("ranges = %+v, want %+v", m2.Ranges, want)
	}
	// The original is untouched.
	if m.Epoch != 1 || m.Owner(1) != "a:1" {
		t.Fatalf("WithOwner mutated its receiver: %+v", m)
	}
	// Moving a middle shard leaves the owner with two disjoint ranges.
	m3 := m2.WithOwner(2, "a:1", 3)
	if err := m3.Validate(); err != nil {
		t.Fatalf("split ownership invalid: %v", err)
	}
	if got := m3.Owned("a:1"); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Owned(a:1) = %v, want [0 2]", got)
	}
}

func TestManifestEncodeDecodeRoundTrip(t *testing.T) {
	m := testManifest()
	buf, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatalf("round trip diverged: %+v vs %+v", m, m2)
	}
	if _, err := Decode([]byte(`{"epoch":1,"blocks":4,"shards":4,"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestManifestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	m := testManifest()
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatalf("save/load diverged")
	}
	// No temp litter.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries after Save, want 1", len(ents))
	}
}

func TestEvenSplit(t *testing.T) {
	m, err := EvenSplit(1<<12, 5, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	want := []Range{{From: 0, To: 3, Addr: "a"}, {From: 3, To: 5, Addr: "b"}}
	if !reflect.DeepEqual(m.Ranges, want) {
		t.Fatalf("ranges = %+v, want %+v", m.Ranges, want)
	}
	if _, err := EvenSplit(1<<12, 1, []string{"a", "b"}); err == nil {
		t.Fatal("more nodes than shards accepted")
	}
}

func TestServerConfigLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "server.json")
	body := `{
  "addr": "127.0.0.1:7071",
  "shards": 4,
  "blocks": 4096,
  "dir": "/tmp/x",
  "idle": "2m",
  "manifest": "manifest.json"
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Addr != "127.0.0.1:7071" || c.Shards != 4 || c.Blocks != 4096 || c.Manifest != "manifest.json" {
		t.Fatalf("config parsed wrong: %+v", c)
	}
	if got := int64(c.Idle); got != int64(2*60*1e9) {
		t.Fatalf("idle = %d ns", got)
	}
	if err := os.WriteFile(path, []byte(`{"addrs": "typo"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("unknown config key accepted")
	}
}
