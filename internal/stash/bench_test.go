package stash

import (
	"testing"

	"palermo/internal/otree"
)

// BenchmarkStashEvict measures the eviction scan: EvictInto is called once
// per bucket per eviction path on every ORAM access, so its per-bucket cost
// is a first-order term in single-run throughput. The workload keeps ~260
// live entries under constant churn (puts + path evictions), which is the
// regime where a tombstone-accumulating layout degrades.
func BenchmarkStashEvict(b *testing.B) {
	g := otree.Uniform(1<<20, 16, 27, 0, 1<<40)
	s := New()
	leaves := g.NumLeaves()
	x := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	id := otree.BlockID(1)
	for i := 0; i < 256; i++ {
		s.Put(Entry{ID: id, Leaf: next() % leaves})
		id++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			s.Put(Entry{ID: id, Leaf: next() % leaves, Val: x})
			id++
		}
		evictLeaf := next() % leaves
		for lvl := g.Depth; lvl >= 0; lvl-- {
			s.EvictInto(g, evictLeaf, lvl, 16)
		}
	}
}

// BenchmarkStashChurn measures the Put/Remove pair in isolation (the
// PosMap-hit fast path touches the stash without evicting).
func BenchmarkStashChurn(b *testing.B) {
	s := New()
	for i := 0; i < 256; i++ {
		s.Put(Entry{ID: otree.BlockID(i), Leaf: uint64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := otree.BlockID(256 + i%1024)
		s.Put(Entry{ID: id, Leaf: uint64(i)})
		s.Remove(id)
	}
}
