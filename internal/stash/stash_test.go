package stash

import (
	"testing"
	"testing/quick"

	"palermo/internal/otree"
)

func TestPutGetRemove(t *testing.T) {
	s := New()
	s.Put(Entry{ID: 1, Leaf: 5, Val: 100})
	s.Put(Entry{ID: 2, Leaf: 6, Val: 200})
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	e, ok := s.Get(1)
	if !ok || e.Val != 100 || e.Leaf != 5 {
		t.Fatalf("get(1) = %+v ok=%v", e, ok)
	}
	if !s.Remove(1) || s.Remove(1) {
		t.Fatal("remove semantics wrong")
	}
	if s.Len() != 1 || s.Contains(1) {
		t.Fatal("stash state wrong after remove")
	}
}

func TestPutReplaces(t *testing.T) {
	s := New()
	s.Put(Entry{ID: 1, Leaf: 5, Val: 100})
	s.Put(Entry{ID: 1, Leaf: 9, Val: 300})
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
	e, _ := s.Get(1)
	if e.Val != 300 || e.Leaf != 9 {
		t.Fatalf("replace failed: %+v", e)
	}
}

func TestPutDummyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Put(Entry{ID: otree.Dummy})
}

func TestMaxSeen(t *testing.T) {
	s := New()
	for i := otree.BlockID(0); i < 10; i++ {
		s.Put(Entry{ID: i})
	}
	for i := otree.BlockID(0); i < 8; i++ {
		s.Remove(i)
	}
	if s.MaxSeen() != 10 || s.Len() != 2 {
		t.Fatalf("max=%d len=%d", s.MaxSeen(), s.Len())
	}
	s.ResetPeak()
	if s.MaxSeen() != 2 {
		t.Fatalf("max after reset = %d", s.MaxSeen())
	}
}

func TestRemap(t *testing.T) {
	s := New()
	s.Put(Entry{ID: 4, Leaf: 1})
	s.Remap(4, 77)
	e, _ := s.Get(4)
	if e.Leaf != 77 {
		t.Fatalf("leaf = %d", e.Leaf)
	}
}

func TestRemapAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Remap(1, 2)
}

func TestEvictIntoPathEligibility(t *testing.T) {
	g := otree.Uniform(64, 4, 5, 0, 1<<40) // depth 4
	s := New()
	// Leaf 5 path at level 2 covers leaves sharing top-2 bits: 4..7.
	s.Put(Entry{ID: 1, Leaf: 4}) // eligible at level 2
	s.Put(Entry{ID: 2, Leaf: 7}) // eligible at level 2
	s.Put(Entry{ID: 3, Leaf: 8}) // not eligible
	s.Put(Entry{ID: 4, Leaf: 5}) // eligible
	out := s.EvictInto(g, 5, 2, 4)
	if len(out) != 3 {
		t.Fatalf("evicted %d blocks, want 3", len(out))
	}
	if s.Contains(1) || s.Contains(2) || s.Contains(4) || !s.Contains(3) {
		t.Fatal("wrong blocks evicted")
	}
}

func TestEvictIntoRespectsMax(t *testing.T) {
	g := otree.Uniform(64, 4, 5, 0, 1<<40)
	s := New()
	for i := otree.BlockID(0); i < 10; i++ {
		s.Put(Entry{ID: i, Leaf: 3})
	}
	out := s.EvictInto(g, 3, 4, 4)
	if len(out) != 4 || s.Len() != 6 {
		t.Fatalf("evicted %d, remaining %d", len(out), s.Len())
	}
}

func TestEvictIntoRootTakesAnything(t *testing.T) {
	g := otree.Uniform(64, 4, 5, 0, 1<<40)
	s := New()
	s.Put(Entry{ID: 1, Leaf: 0})
	s.Put(Entry{ID: 2, Leaf: 15})
	out := s.EvictInto(g, 7, 0, 4)
	if len(out) != 2 {
		t.Fatalf("root eviction took %d, want 2 (all leaves share the root)", len(out))
	}
}

func TestEvictDeterministicOldestFirst(t *testing.T) {
	g := otree.Uniform(64, 4, 5, 0, 1<<40)
	s := New()
	for i := otree.BlockID(0); i < 6; i++ {
		s.Put(Entry{ID: i, Leaf: 2})
	}
	out := s.EvictInto(g, 2, 4, 3)
	for i, e := range out {
		if e.ID != otree.BlockID(i) {
			t.Fatalf("eviction not oldest-first: %v", out)
		}
	}
}

func TestSlotReuse(t *testing.T) {
	s := New()
	for i := otree.BlockID(0); i < 1000; i++ {
		s.Put(Entry{ID: i, Leaf: uint64(i)})
		if i >= 1 {
			s.Remove(i - 1)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if len(s.slab) > 64 {
		t.Fatalf("slab grew to %d slots despite free-list reuse", len(s.slab))
	}
	e, ok := s.Get(999)
	if !ok || e.Leaf != 999 {
		t.Fatal("live entry lost during slot reuse")
	}
}

func TestSamples(t *testing.T) {
	s := New()
	s.Put(Entry{ID: 1})
	s.Sample()
	s.Put(Entry{ID: 2})
	s.Sample()
	got := s.Samples()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("samples = %v", got)
	}
}

// Property: Len always equals the number of distinct IDs inserted minus
// removed, and ForEach visits exactly the live set.
func TestStashAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := New()
		ref := make(map[otree.BlockID]bool)
		for _, op := range ops {
			id := otree.BlockID(op % 100)
			if op%2 == 0 {
				s.Put(Entry{ID: id, Leaf: uint64(op)})
				ref[id] = true
			} else {
				s.Remove(id)
				delete(ref, id)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		seen := 0
		okAll := true
		s.ForEach(func(e Entry) {
			seen++
			if !ref[e.ID] {
				okAll = false
			}
		})
		return okAll && seen == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityOverflowTracking(t *testing.T) {
	s := New()
	s.SetCapacity(4)
	for i := otree.BlockID(0); i < 6; i++ {
		s.Put(Entry{ID: i})
	}
	if s.Overflows() != 2 {
		t.Fatalf("overflows = %d, want 2", s.Overflows())
	}
	// Below capacity again: no further counting.
	s.Remove(0)
	s.Remove(1)
	s.Remove(2)
	s.Put(Entry{ID: 100})
	if s.Overflows() != 2 {
		t.Fatalf("overflow counted below capacity: %d", s.Overflows())
	}
}

func TestCapacityUntrackedByDefault(t *testing.T) {
	s := New()
	for i := otree.BlockID(0); i < 1000; i++ {
		s.Put(Entry{ID: i})
	}
	if s.Overflows() != 0 {
		t.Fatal("untracked stash must not count overflows")
	}
}
