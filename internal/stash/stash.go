// Package stash implements the on-chip stash: the small trusted buffer that
// temporarily holds blocks streamed between the ORAM tree and the secure
// processor. A high-performance hardware stash must stay small (the paper
// argues 256 entries with overflow probability < 2^-103 for RingORAM); the
// implementation therefore tracks peak occupancy and reports overflow so
// protocols can trigger background evictions (PrORAM) or fail loudly.
//
// Storage is insertion-ordered (slice + index map) rather than map-iterated
// so eviction selection — and therefore every downstream simulation result —
// is deterministic for a given seed.
package stash

import (
	"fmt"

	"palermo/internal/otree"
)

// Entry is a stashed block: its identity, current mapped leaf, and payload.
// With prefetch, one tag covers a group of cache lines; the tag count is
// what bounds the hardware structure.
type Entry struct {
	ID   otree.BlockID
	Leaf uint64
	Val  uint64
}

// Stash holds blocks between tree pulls and pushes.
type Stash struct {
	order    []Entry               // insertion order; holes marked by index map absence
	index    map[otree.BlockID]int // id -> position in order
	live     int
	maxSeen  int
	samples  []int
	capacity int // 0 = untracked; otherwise hardware tag budget
	overflow uint64
}

// New creates an empty stash.
func New() *Stash {
	return &Stash{index: make(map[otree.BlockID]int)}
}

// SetCapacity declares the hardware tag budget (256 in Table III). The
// stash keeps functioning past it — RingORAM's guarantee is probabilistic
// — but every Put that lands above capacity is counted, so a design whose
// protocol breaks the bound (e.g. PrORAM without background evictions)
// fails loudly in tests instead of silently assuming bigger silicon.
func (s *Stash) SetCapacity(n int) { s.capacity = n }

// Overflows returns how many insertions exceeded the declared capacity.
func (s *Stash) Overflows() uint64 { return s.overflow }

// Len returns the current tag occupancy.
func (s *Stash) Len() int { return s.live }

// MaxSeen returns the peak occupancy observed since creation (or ResetPeak).
func (s *Stash) MaxSeen() int { return s.maxSeen }

// ResetPeak clears the peak-occupancy tracker (warmup boundary).
func (s *Stash) ResetPeak() { s.maxSeen = s.live }

// Put inserts or replaces a block.
func (s *Stash) Put(e Entry) {
	if e.ID == otree.Dummy {
		panic("stash: Put of dummy block")
	}
	if i, ok := s.index[e.ID]; ok {
		s.order[i] = e
		return
	}
	s.index[e.ID] = len(s.order)
	s.order = append(s.order, e)
	s.live++
	if s.live > s.maxSeen {
		s.maxSeen = s.live
	}
	if s.capacity > 0 && s.live > s.capacity {
		s.overflow++
	}
	s.maybeCompact()
}

// Get returns the entry for id, if present.
func (s *Stash) Get(id otree.BlockID) (Entry, bool) {
	i, ok := s.index[id]
	if !ok {
		return Entry{}, false
	}
	return s.order[i], true
}

// Contains reports whether id is stashed.
func (s *Stash) Contains(id otree.BlockID) bool {
	_, ok := s.index[id]
	return ok
}

// Remove deletes id, reporting whether it was present.
func (s *Stash) Remove(id otree.BlockID) bool {
	i, ok := s.index[id]
	if !ok {
		return false
	}
	delete(s.index, id)
	s.order[i].ID = otree.Dummy // tombstone
	s.live--
	return true
}

// Remap updates the mapped leaf of a stashed block.
func (s *Stash) Remap(id otree.BlockID, leaf uint64) {
	i, ok := s.index[id]
	if !ok {
		panic(fmt.Sprintf("stash: Remap of absent block %d", id))
	}
	s.order[i].Leaf = leaf
}

// maybeCompact drops tombstones once they dominate the backing slice.
func (s *Stash) maybeCompact() {
	if len(s.order) < 64 || s.live*2 > len(s.order) {
		return
	}
	compacted := make([]Entry, 0, s.live)
	for _, e := range s.order {
		if e.ID != otree.Dummy {
			s.index[e.ID] = len(compacted)
			compacted = append(compacted, e)
		}
	}
	s.order = compacted
}

// EvictInto selects up to max blocks eligible for the bucket at the given
// level along the path to evictLeaf — blocks whose mapped leaf shares the
// length-(level) path prefix — removes them from the stash, and returns
// them. Selection is oldest-first, which is deterministic. This is the push
// half of ResetBucket/EvictPath.
func (s *Stash) EvictInto(g otree.Geometry, evictLeaf uint64, level, max int) []otree.BlockEntry {
	return s.EvictIntoNode(g, g.NodeAt(evictLeaf, level), max)
}

// EvictIntoNode is EvictInto addressed by node rather than (leaf, level):
// a block is eligible if node lies on its mapped leaf's path. PageORAM uses
// this for sibling buckets that are not on the accessed path.
func (s *Stash) EvictIntoNode(g otree.Geometry, node uint64, max int) []otree.BlockEntry {
	if max <= 0 {
		return nil
	}
	level := g.NodeLevel(node)
	prefix := node - ((uint64(1) << level) - 1)
	shift := uint(g.Depth - level)
	var out []otree.BlockEntry
	for i := 0; i < len(s.order) && len(out) < max; i++ {
		e := s.order[i]
		if e.ID == otree.Dummy {
			continue
		}
		if (e.Leaf >> shift) == prefix {
			out = append(out, otree.BlockEntry{ID: e.ID, Val: e.Val})
			delete(s.index, e.ID)
			s.order[i].ID = otree.Dummy
			s.live--
		}
	}
	return out
}

// Sample records the current occupancy for stash-over-time plots (Fig 12).
func (s *Stash) Sample() { s.samples = append(s.samples, s.live) }

// Samples returns recorded occupancy samples.
func (s *Stash) Samples() []int { return s.samples }

// ForEach iterates over all entries in insertion order.
func (s *Stash) ForEach(fn func(Entry)) {
	for _, e := range s.order {
		if e.ID != otree.Dummy {
			fn(e)
		}
	}
}
