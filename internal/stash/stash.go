// Package stash implements the on-chip stash: the small trusted buffer that
// temporarily holds blocks streamed between the ORAM tree and the secure
// processor. A high-performance hardware stash must stay small (the paper
// argues 256 entries with overflow probability < 2^-103 for RingORAM); the
// implementation therefore tracks peak occupancy and reports overflow so
// protocols can trigger background evictions (PrORAM) or fail loudly.
//
// Storage is an insertion-ordered intrusive list over a slab (slice of
// slots + free list) with an id index, rather than map-iterated, so
// eviction selection — and therefore every downstream simulation result —
// is deterministic for a given seed. The list layout keeps the per-bucket
// eviction scan (EvictIntoNode, called once per bucket per eviction path on
// every access) proportional to live occupancy: removed entries unlink in
// O(1) instead of leaving tombstones that later scans must skip.
package stash

import (
	"fmt"

	"palermo/internal/otree"
)

// Entry is a stashed block: its identity, current mapped leaf, and payload.
// With prefetch, one tag covers a group of cache lines; the tag count is
// what bounds the hardware structure.
type Entry struct {
	ID   otree.BlockID
	Leaf uint64
	Val  uint64
}

// none is the nil slot index for the intrusive list.
const none = -1

// slot is one slab cell: an entry threaded into either the insertion-order
// list (live) or the free list (dead, next only).
type slot struct {
	e          Entry
	prev, next int
}

// Stash holds blocks between tree pulls and pushes.
type Stash struct {
	slab       []slot
	head, tail int // live entries in insertion order
	free       int // reusable slots
	index      map[otree.BlockID]int
	live       int
	maxSeen    int
	samples    []int
	capacity   int // 0 = untracked; otherwise hardware tag budget
	overflow   uint64
}

// New creates an empty stash.
func New() *Stash {
	return &Stash{head: none, tail: none, free: none, index: make(map[otree.BlockID]int)}
}

// SetCapacity declares the hardware tag budget (256 in Table III). The
// stash keeps functioning past it — RingORAM's guarantee is probabilistic
// — but every Put that lands above capacity is counted, so a design whose
// protocol breaks the bound (e.g. PrORAM without background evictions)
// fails loudly in tests instead of silently assuming bigger silicon.
func (s *Stash) SetCapacity(n int) { s.capacity = n }

// Overflows returns how many insertions exceeded the declared capacity.
func (s *Stash) Overflows() uint64 { return s.overflow }

// Len returns the current tag occupancy.
func (s *Stash) Len() int { return s.live }

// MaxSeen returns the peak occupancy observed since creation (or ResetPeak).
func (s *Stash) MaxSeen() int { return s.maxSeen }

// ResetPeak clears the peak-occupancy tracker (warmup boundary).
func (s *Stash) ResetPeak() { s.maxSeen = s.live }

// alloc takes a slot from the free list, growing the slab if needed.
func (s *Stash) alloc() int {
	if s.free != none {
		i := s.free
		s.free = s.slab[i].next
		return i
	}
	s.slab = append(s.slab, slot{})
	return len(s.slab) - 1
}

// unlink removes slot i from the live list and pushes it onto the free list.
func (s *Stash) unlink(i int) {
	sl := &s.slab[i]
	if sl.prev != none {
		s.slab[sl.prev].next = sl.next
	} else {
		s.head = sl.next
	}
	if sl.next != none {
		s.slab[sl.next].prev = sl.prev
	} else {
		s.tail = sl.prev
	}
	sl.e = Entry{}
	sl.next = s.free
	s.free = i
	s.live--
}

// Put inserts or replaces a block.
func (s *Stash) Put(e Entry) {
	if e.ID == otree.Dummy {
		panic("stash: Put of dummy block")
	}
	if i, ok := s.index[e.ID]; ok {
		s.slab[i].e = e // replace in place, keeping insertion order
		return
	}
	i := s.alloc()
	s.slab[i] = slot{e: e, prev: s.tail, next: none}
	if s.tail != none {
		s.slab[s.tail].next = i
	} else {
		s.head = i
	}
	s.tail = i
	s.index[e.ID] = i
	s.live++
	if s.live > s.maxSeen {
		s.maxSeen = s.live
	}
	if s.capacity > 0 && s.live > s.capacity {
		s.overflow++
	}
}

// Get returns the entry for id, if present.
func (s *Stash) Get(id otree.BlockID) (Entry, bool) {
	i, ok := s.index[id]
	if !ok {
		return Entry{}, false
	}
	return s.slab[i].e, true
}

// Contains reports whether id is stashed.
func (s *Stash) Contains(id otree.BlockID) bool {
	_, ok := s.index[id]
	return ok
}

// Remove deletes id, reporting whether it was present.
func (s *Stash) Remove(id otree.BlockID) bool {
	i, ok := s.index[id]
	if !ok {
		return false
	}
	delete(s.index, id)
	s.unlink(i)
	return true
}

// Remap updates the mapped leaf of a stashed block.
func (s *Stash) Remap(id otree.BlockID, leaf uint64) {
	i, ok := s.index[id]
	if !ok {
		panic(fmt.Sprintf("stash: Remap of absent block %d", id))
	}
	s.slab[i].e.Leaf = leaf
}

// EvictInto selects up to max blocks eligible for the bucket at the given
// level along the path to evictLeaf — blocks whose mapped leaf shares the
// length-(level) path prefix — removes them from the stash, and returns
// them. Selection is oldest-first, which is deterministic. This is the push
// half of ResetBucket/EvictPath.
func (s *Stash) EvictInto(g otree.Geometry, evictLeaf uint64, level, max int) []otree.BlockEntry {
	return s.EvictIntoNode(g, g.NodeAt(evictLeaf, level), max)
}

// EvictIntoNode is EvictInto addressed by node rather than (leaf, level):
// a block is eligible if node lies on its mapped leaf's path. PageORAM uses
// this for sibling buckets that are not on the accessed path. The scan
// walks only live entries (oldest first); selected entries unlink in O(1).
func (s *Stash) EvictIntoNode(g otree.Geometry, node uint64, max int) []otree.BlockEntry {
	if max <= 0 || s.live == 0 {
		return nil
	}
	level := g.NodeLevel(node)
	prefix := node - ((uint64(1) << level) - 1)
	shift := uint(g.Depth - level)
	var out []otree.BlockEntry
	for i := s.head; i != none && len(out) < max; {
		next := s.slab[i].next
		if e := s.slab[i].e; (e.Leaf >> shift) == prefix {
			out = append(out, otree.BlockEntry{ID: e.ID, Val: e.Val})
			delete(s.index, e.ID)
			s.unlink(i)
		}
		i = next
	}
	return out
}

// State is the serializable stash state for durable-store checkpoints:
// live entries in insertion order plus the statistics the serving layer
// reports across a restart.
type State struct {
	Entries  []Entry
	MaxSeen  int
	Overflow uint64
}

// State exports the current state. Entries are in insertion order, so
// restoring them with Put reproduces the eviction-selection order exactly.
func (s *Stash) State() State {
	st := State{MaxSeen: s.maxSeen, Overflow: s.overflow}
	st.Entries = make([]Entry, 0, s.live)
	s.ForEach(func(e Entry) { st.Entries = append(st.Entries, e) })
	return st
}

// Restore replaces the stash contents and statistics with a previously
// exported State. The configured capacity is kept.
func (s *Stash) Restore(st State) {
	s.slab = s.slab[:0]
	s.head, s.tail, s.free = none, none, none
	s.live = 0
	s.index = make(map[otree.BlockID]int, len(st.Entries))
	for _, e := range st.Entries {
		s.Put(e)
	}
	// Put tracks peaks/overflow as if the entries were new insertions;
	// the checkpointed statistics are authoritative.
	s.maxSeen = st.MaxSeen
	s.overflow = st.Overflow
}

// Sample records the current occupancy for stash-over-time plots (Fig 12).
func (s *Stash) Sample() { s.samples = append(s.samples, s.live) }

// Samples returns recorded occupancy samples.
func (s *Stash) Samples() []int { return s.samples }

// ForEach iterates over all entries in insertion order.
func (s *Stash) ForEach(fn func(Entry)) {
	for i := s.head; i != none; i = s.slab[i].next {
		fn(s.slab[i].e)
	}
}
