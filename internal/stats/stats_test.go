package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean must be 0")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		m.Add(v)
	}
	if m.Value() != 2.5 || m.N() != 4 {
		t.Fatalf("mean = %v n = %d, want 2.5 / 4", m.Value(), m.N())
	}
}

func TestTimeWeighted(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 10) // 10 during [0,10)
	w.Set(10, 0) // 0 during [10,20)
	if got := w.Avg(20); got != 5 {
		t.Fatalf("avg = %v, want 5", got)
	}
}

func TestTimeWeightedPartialTail(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 4)
	// Value still 4 at query time 8: integral extends to query point.
	if got := w.Avg(8); got != 4 {
		t.Fatalf("avg = %v, want 4", got)
	}
}

func TestTimeWeightedReset(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 100)
	w.Reset(50)
	w.Set(60, 0) // 100 over [50,60), 0 over [60,100)
	if got := w.Avg(100); got != 20 {
		t.Fatalf("avg after reset = %v, want 20", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 1.0)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile must be 0")
	}
	// 100 observations, one per value 0.5, 1.5, ..., in bucket i for i/10.
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	// Each bucket holds 10; the 50th smallest sits in bucket 4 -> edge 5.
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("Q(0.5) = %v, want 5", got)
	}
	if got := h.Quantile(0.99); got != 10 {
		t.Fatalf("Q(0.99) = %v, want 10", got)
	}
	if got := h.Quantile(0.01); got != 1 {
		t.Fatalf("Q(0.01) = %v, want 1", got)
	}
	// Overflowed observations clamp to the range maximum.
	for i := 0; i < 1000; i++ {
		h.Add(1e9)
	}
	if h.Overflow() != 1000 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	if got := h.Quantile(0.99); got != 10 {
		t.Fatalf("overflow Q(0.99) = %v, want clamp to 10", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10, 1.0)
	b := NewHistogram(10, 1.0)
	for i := 0; i < 50; i++ {
		a.Add(1.5) // bucket 1
		b.Add(7.5) // bucket 7
	}
	b.Add(100) // overflow
	a.Merge(b)
	if a.N() != 101 || a.Bucket(1) != 50 || a.Bucket(7) != 50 || a.Overflow() != 1 {
		t.Fatalf("merge: n=%d b1=%d b7=%d of=%d", a.N(), a.Bucket(1), a.Bucket(7), a.Overflow())
	}
	if got := a.Quantile(0.5); got != 8 {
		t.Fatalf("merged Q(0.5) = %v, want 8", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched layouts must panic")
		}
	}()
	a.Merge(NewHistogram(5, 1.0))
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10, 1.0)
	h.KeepSamples()
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5, 100} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Bucket(0) != 1 || h.Bucket(1) != 1 {
		t.Fatal("bucket counts wrong")
	}
	if h.overflow != 1 {
		t.Fatalf("overflow = %d, want 1", h.overflow)
	}
	if h.Median() != 2.5 {
		t.Fatalf("median = %v, want 2.5", h.Median())
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(10, 10)
	h.KeepSamples()
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if p := h.Percentile(0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Fatalf("p100 = %v", p)
	}
	if p := h.Percentile(50); math.Abs(p-50) > 2 {
		t.Fatalf("p50 = %v", p)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean(1,4) = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("geomean of empty must be 0")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestMutualInfoZeroWhenIndistinguishable(t *testing.T) {
	// p1 == p2 means the observation carries no information about B.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if m := MutualInfo(p, p); math.Abs(m) > 1e-12 {
			t.Fatalf("MI(p=%v,p) = %v, want 0", p, m)
		}
	}
}

func TestMutualInfoOneWhenDeterministic(t *testing.T) {
	// Perfectly distinguishing observation carries 1 bit.
	if m := MutualInfo(1, 0); math.Abs(m-1) > 1e-12 {
		t.Fatalf("MI(1,0) = %v, want 1", m)
	}
	if m := MutualInfo(0, 1); math.Abs(m-1) > 1e-12 {
		t.Fatalf("MI(0,1) = %v, want 1", m)
	}
}

// Property: mutual information is symmetric in (p1,p2), bounded in [0,1],
// and monotone as the gap |p1-p2| widens around 0.5.
func TestMutualInfoProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		p1 := float64(a) / 65535
		p2 := float64(b) / 65535
		m := MutualInfo(p1, p2)
		msym := MutualInfo(p2, p1)
		if math.Abs(m-msym) > 1e-9 {
			return false
		}
		return m >= -1e-12 && m <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if MutualInfo(0.5-0.1, 0.5+0.1) >= MutualInfo(0.5-0.3, 0.5+0.3) {
		t.Fatal("wider gap must carry more information")
	}
}

func TestChiSquareUniform(t *testing.T) {
	chi2, dof := ChiSquareUniform([]uint64{100, 100, 100, 100})
	if chi2 != 0 || dof != 3 {
		t.Fatalf("uniform counts: chi2=%v dof=%d", chi2, dof)
	}
	chi2, _ = ChiSquareUniform([]uint64{400, 0, 0, 0})
	if chi2 <= 100 {
		t.Fatalf("concentrated counts should have large chi2, got %v", chi2)
	}
	chi2, dof = ChiSquareUniform(nil)
	if chi2 != 0 || dof != 0 {
		t.Fatal("empty input should be zero")
	}
}
