// Package stats provides the measurement primitives used across the
// simulator: counters, histograms, time-weighted means, geometric means, and
// the mutual-information computation from the paper's Eq. 1.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean is a running arithmetic mean.
type Mean struct {
	n   uint64
	sum float64
}

// Add records one observation.
func (m *Mean) Add(v float64) { m.n++; m.sum += v }

// N returns the number of observations.
func (m *Mean) N() uint64 { return m.n }

// Value returns the mean, or 0 with no observations.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// TimeWeighted integrates a piecewise-constant quantity over time, yielding
// its time-weighted average (e.g., queue occupancy, outstanding requests).
type TimeWeighted struct {
	lastT    uint64
	lastV    float64
	integral float64
	started  bool
	startT   uint64
}

// Set records that the quantity changed to v at time t.
func (w *TimeWeighted) Set(t uint64, v float64) {
	if !w.started {
		w.started = true
		w.startT = t
	} else if t > w.lastT {
		w.integral += w.lastV * float64(t-w.lastT)
	}
	w.lastT = t
	w.lastV = v
}

// Avg returns the time-weighted average over [start, t].
func (w *TimeWeighted) Avg(t uint64) float64 {
	if !w.started || t <= w.startT {
		return 0
	}
	integral := w.integral
	if t > w.lastT {
		integral += w.lastV * float64(t-w.lastT)
	}
	return integral / float64(t-w.startT)
}

// Reset restarts integration at time t keeping the current value.
func (w *TimeWeighted) Reset(t uint64) {
	w.integral = 0
	w.startT = t
	w.lastT = t
	w.started = true
}

// Histogram is a fixed-width-bucket histogram over [0, max).
type Histogram struct {
	bucketWidth float64
	buckets     []uint64
	overflow    uint64
	n           uint64
	sum         float64
	samples     []float64 // retained when sampling is enabled
	keep        bool
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(nBuckets int, width float64) *Histogram {
	return &Histogram{bucketWidth: width, buckets: make([]uint64, nBuckets)}
}

// KeepSamples retains raw samples (needed for medians/mutual information).
func (h *Histogram) KeepSamples() { h.keep = true }

// Add records an observation.
func (h *Histogram) Add(v float64) {
	h.n++
	h.sum += v
	if h.keep {
		h.samples = append(h.samples, v)
	}
	idx := int(v / h.bucketWidth)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[idx]++
}

// N returns the observation count.
func (h *Histogram) N() uint64 { return h.n }

// Mean returns the arithmetic mean of observations.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Median returns the exact median; requires KeepSamples.
func (h *Histogram) Median() float64 {
	if !h.keep || len(h.samples) == 0 {
		return 0
	}
	s := make([]float64, len(h.samples))
	copy(s, h.samples)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Percentile returns the p-th percentile (0..100); requires KeepSamples.
func (h *Histogram) Percentile(p float64) float64 {
	if !h.keep || len(h.samples) == 0 {
		return 0
	}
	s := make([]float64, len(h.samples))
	copy(s, h.samples)
	sort.Float64s(s)
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

// Samples returns the retained raw observations (nil unless KeepSamples).
func (h *Histogram) Samples() []float64 { return h.samples }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Overflow returns the count of observations at or above the bucketed
// range.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Merge folds other's observations into h. Both histograms must have the
// same bucket layout. Retained samples are merged only if h keeps them.
func (h *Histogram) Merge(other *Histogram) {
	if h.bucketWidth != other.bucketWidth || len(h.buckets) != len(other.buckets) {
		panic(fmt.Sprintf("stats: Merge of mismatched histograms (%d x %g vs %d x %g)",
			len(h.buckets), h.bucketWidth, len(other.buckets), other.bucketWidth))
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.overflow += other.overflow
	h.n += other.n
	h.sum += other.sum
	if h.keep {
		h.samples = append(h.samples, other.samples...)
	}
}

// Quantile returns an upper bound on the q-th quantile (0 < q <= 1) from
// bucket counts alone: the upper edge of the bucket containing the
// ceil(q*N)-th smallest observation. Observations beyond the bucketed
// range clamp to the range maximum. Unlike Percentile it needs no
// retained samples, so memory stays bounded regardless of N; the result
// is exact to within one bucket width.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			return float64(i+1) * h.bucketWidth
		}
	}
	return float64(len(h.buckets)) * h.bucketWidth
}

// GeoMean returns the geometric mean of vs; zero/negative inputs are invalid.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", v))
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// MutualInfo computes the paper's Eq. 1: the mutual information (in bits)
// between a binary victim behaviour B and a binary attacker observation O,
// where p1 = P(O=long | B=stash) and p2 = P(O=long | B=tree), assuming the
// two behaviours are a-priori equally likely.
//
// M = Σ over the four (B,O) cells of P(B,O) log2( P(B,O) / (P(B)P(O)) ).
func MutualInfo(p1, p2 float64) float64 {
	term := func(p, q float64) float64 {
		// p/2 * log2(2p/(p+q)), with 0 log 0 = 0.
		if p == 0 {
			return 0
		}
		return p / 2 * math.Log2(2*p/(p+q))
	}
	return term(p1, p2) + term(p2, p1) + term(1-p1, 1-p2) + term(1-p2, 1-p1)
}

// ChiSquareUniform returns the chi-square statistic for observed counts
// against a uniform expectation, and the degrees of freedom.
func ChiSquareUniform(counts []uint64) (chi2 float64, dof int) {
	total := uint64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(counts) < 2 {
		return 0, 0
	}
	expected := float64(total) / float64(len(counts))
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2, len(counts) - 1
}
