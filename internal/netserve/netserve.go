// Package netserve is the TCP serving layer over a concurrent oblivious
// store: it speaks the internal/wire protocol, pipelines requests, and
// applies the same bounded-queue back-pressure discipline as the in-process
// service layer (internal/serve), extended across a socket.
//
// Connection anatomy: each accepted connection gets a reader goroutine
// (decodes frames, dispatches requests) and a writer goroutine (serializes
// responses). Requests execute on their own goroutines — the store is
// already concurrent — bounded by a per-connection in-flight window: when
// MaxInFlight requests are outstanding the reader stops reading, TCP flow
// control fills the client's send window, and a pipelining client blocks
// exactly like an in-process submitter at a full shard queue.
//
// Failure discipline: a payload the store rejects is answered with a typed
// status and the connection continues; a framing violation (bad magic,
// wrong version, oversized length, truncation) poisons the stream, so the
// connection is closed — but never the server. Close drains: in-flight
// requests complete, their responses flush, then connections and the
// listener shut down. DESIGN.md §8 records why this layer observes only
// the §VI adversary's view.
package netserve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"palermo/internal/serve"
	"palermo/internal/wire"
)

// ErrServerClosed is returned by Serve after Close, like net/http's.
var ErrServerClosed = errors.New("netserve: server closed")

// ErrWrongEpoch marks a request that named a shard this node does not own
// at its current geometry epoch — the shard migrated away (or never landed
// here). Stores wrap it so errResp answers with wire.StatusWrongEpoch, the
// loud-failure half of the cluster re-route contract: the client refetches
// the placement manifest and retries against the new owner. A frame
// answered this way executed none of its operations, so the retry can
// never duplicate work.
var ErrWrongEpoch = errors.New("wrong geometry epoch: shard not owned by this node")

// Store is the concurrent oblivious store a server fronts. It must be safe
// for concurrent use; *palermo.ShardedStore (behind the root package's
// adapter) is the canonical implementation.
type Store interface {
	Read(id uint64) ([]byte, error)
	Write(id uint64, data []byte) error
	ReadBatch(ids []uint64) ([][]byte, error)
	WriteBatch(ids []uint64, blocks [][]byte) error
	Stats() wire.Stats
}

// ExtStore is the optional Store extension for request ops beyond the core
// read/write/stats set — the cluster layer's manifest fetch and migration
// frames. ServeExt receives the op and its payload verbatim (the payload
// aliases a pooled frame buffer: copy anything retained past the call) and
// the returned body is sent as the StatusOK response payload. Errors map
// through the same status table as core ops (ErrWrongEpoch →
// StatusWrongEpoch, serve.ErrClosed → StatusClosed, else StatusErr).
// Stores that do not implement ExtStore answer such ops with StatusBad.
type ExtStore interface {
	ServeExt(op byte, payload []byte) ([]byte, error)
}

// Config tunes a server. The zero value uses the defaults.
type Config struct {
	// MaxInFlight bounds each connection's outstanding requests (frames
	// dispatched but not yet answered). A full window stops the reader —
	// socket-level back-pressure. Default 64.
	MaxInFlight int
	// MaxBatch caps the operation count one batch frame may carry; larger
	// batches are answered with StatusBad. Default 4096 (the wire format
	// itself never exceeds wire.MaxOps).
	MaxBatch int
	// IdleTimeout closes a connection that sends no frame for this long.
	// Zero means no idle deadline.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write, so a client that stops
	// reading cannot wedge a connection's writer forever. Default 30s.
	WriteTimeout time.Duration
}

func (c *Config) defaults() {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 4096
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
}

// Validate rejects nonsensical limits with a descriptive error.
func (c Config) Validate() error {
	if c.MaxInFlight < 0 || c.MaxBatch < 0 {
		return fmt.Errorf("netserve: MaxInFlight/MaxBatch must be >= 0")
	}
	if c.MaxBatch > wire.MaxOps {
		return fmt.Errorf("netserve: MaxBatch %d exceeds the wire format's %d-op frame limit", c.MaxBatch, wire.MaxOps)
	}
	if c.IdleTimeout < 0 || c.WriteTimeout < 0 {
		return fmt.Errorf("netserve: IdleTimeout/WriteTimeout must be >= 0")
	}
	return nil
}

// Server serves one Store over TCP.
type Server struct {
	st   Store
	cfg  Config
	pool wire.BufPool // frame buffers recycled across all connections

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*conn]struct{}
	closed bool
	done   chan struct{}
	connWG sync.WaitGroup
}

// New builds a server (validating cfg). Call Serve to start accepting.
func New(st Store, cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	return &Server{
		st:    st,
		cfg:   cfg,
		conns: make(map[*conn]struct{}),
		done:  make(chan struct{}),
	}, nil
}

// Serve accepts connections on ln until Close, then returns
// ErrServerClosed. Each connection is handled on its own goroutines.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return ErrServerClosed
			default:
				return err
			}
		}
		c := &conn{
			srv:        s,
			nc:         nc,
			out:        make(chan *wire.FrameBuf, s.cfg.MaxInFlight),
			sem:        make(chan struct{}, s.cfg.MaxInFlight),
			writerDead: make(chan struct{}),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go c.run()
	}
}

// Addr returns the listener's address once Serve has been called
// (nil before).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close gracefully shuts the server down: stop accepting, stop reading new
// requests, let every in-flight request complete and its response flush,
// then close all connections and return. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
		if s.ln != nil {
			s.ln.Close()
		}
		// Unblock readers parked in ReadFrame: an immediate read deadline
		// makes the blocking read return without tearing the socket down,
		// so queued responses still flush. The write sweep likewise fails
		// a writer currently wedged in nc.Write against a peer that
		// stopped reading — otherwise Close would wait out the full
		// WriteTimeout. A healthy writer re-arms its own deadline before
		// every write, so only the stuck write is aborted.
		for c := range s.conns {
			c.nc.SetReadDeadline(time.Now())
			c.nc.SetWriteDeadline(time.Now())
		}
	}
	s.mu.Unlock()
	s.connWG.Wait()
	return nil
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// conn is one client connection.
type conn struct {
	srv        *Server
	nc         net.Conn
	out        chan *wire.FrameBuf // encoded response frames awaiting the writer
	sem        chan struct{}       // in-flight window tokens
	writerDead chan struct{}       // closed by the writer on its first write error
	wg         sync.WaitGroup
}

// send queues a response frame for the writer. Every send selects on
// writerDead so a connection whose writer can no longer deliver (write
// error — the peer is gone or stopped reading) never parks the sender on
// a full out channel: the frame is discarded instead. This matters most
// for the reader's unknown-op reply path, which queues responses without
// holding a window token and could otherwise block forever where Close's
// read-deadline sweep cannot reach it.
func (c *conn) send(out *wire.FrameBuf) {
	select {
	case c.out <- out:
	case <-c.writerDead:
		c.srv.pool.Put(out)
	}
}

// run owns the connection lifecycle: spawn the writer, run the read loop,
// then drain — wait for in-flight requests, flush their responses, close.
func (c *conn) run() {
	defer c.srv.connWG.Done()
	defer c.srv.removeConn(c)
	writerDone := make(chan struct{})
	go c.writer(writerDone)
	c.readLoop()
	c.wg.Wait()  // every dispatched request has queued its response
	close(c.out) // writer flushes the tail and exits
	<-writerDone
	c.nc.Close()
}

// readLoop decodes frames and dispatches requests until the stream ends,
// a framing violation poisons it, or the server begins closing.
func (c *conn) readLoop() {
	br := bufio.NewReader(c.nc)
	for {
		if !c.armReadDeadline() {
			return // server closing: don't overwrite Close's immediate deadline
		}
		f, fb, err := wire.ReadFrameBuf(br, &c.srv.pool)
		if err != nil {
			// io.EOF: client closed cleanly. Deadline: idle or server
			// close. Typed wire errors: stream poisoned. All end the
			// connection; none end the server.
			return
		}
		if !wire.IsRequest(f.Op) {
			// Framing is intact, so the request id is trustworthy and the
			// connection recoverable: answer and continue.
			c.srv.pool.Put(fb)
			out := c.beginResp(f.Op, f.ReqID, 32)
			out.B = wire.AppendErrResp(out.B, wire.StatusBad, fmt.Sprintf("unknown op %d", f.Op))
			out.B = wire.EndFrame(out.B, 0)
			c.send(out)
			continue
		}
		select {
		case c.sem <- struct{}{}: // in-flight window slot
		case <-c.srv.done:
			c.srv.pool.Put(fb)
			return
		}
		c.wg.Add(1)
		go func(f wire.Frame, fb *wire.FrameBuf) {
			defer c.wg.Done()
			defer func() { <-c.sem }()
			out := c.serve(f)
			// The store copied what it needed (write payloads are copied at
			// submission); the request frame is dead once served.
			c.srv.pool.Put(fb)
			c.send(out)
		}(f, fb)
	}
}

// armReadDeadline re-arms the idle deadline for the next frame read and
// reports whether the reader should continue. Lock-free — the hot receive
// path must not serialize every connection on the server mutex. The
// ordering still protects Close's immediate deadline: close(s.done)
// happens before Close's deadline sweep, so a reader whose idle deadline
// could have overwritten the sweep necessarily observes done closed in
// the re-check below and exits instead of parking for up to IdleTimeout.
func (c *conn) armReadDeadline() bool {
	s := c.srv
	if idle := s.cfg.IdleTimeout; idle > 0 {
		c.nc.SetReadDeadline(time.Now().Add(idle))
	}
	select {
	case <-s.done:
		return false
	default:
		return true
	}
}

// beginResp takes a pooled buffer and opens a response frame in it: the
// caller appends the payload in place and seals it with wire.EndFrame —
// one buffer per response, recycled after the write, no intermediate
// payload allocation. sizeHint covers header + expected payload. Queueing
// on c.out cannot deadlock: the writer drains out until it is closed, and
// out is closed only after wg observes every dispatched request done.
func (c *conn) beginResp(op byte, reqID uint64, sizeHint int) *wire.FrameBuf {
	fb := c.srv.pool.Get(wire.HeaderLen + sizeHint)
	fb.B = wire.BeginFrame(fb.B, wire.Resp(op), reqID)
	return fb
}

// writer serializes response frames, returning each buffer to the pool
// once written. After a write error it closes writerDead (so senders stop
// queueing into a channel nobody will deliver from) and the socket — so
// the reader stops feeding a connection whose responses can no longer be
// delivered — and keeps draining (discarding) so request goroutines never
// block on the dead connection.
func (c *conn) writer(done chan struct{}) {
	defer close(done)
	failed := false
	for fb := range c.out {
		if !failed {
			c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
			if _, err := c.nc.Write(fb.B); err != nil {
				failed = true
				close(c.writerDead)
				c.nc.Close()
			}
		}
		c.srv.pool.Put(fb)
	}
}

// serve executes one request and returns its fully encoded response frame
// in a pooled buffer (built in place: header, status, body — no
// intermediate payload allocation).
func (c *conn) serve(f wire.Frame) *wire.FrameBuf {
	switch f.Op {
	case wire.OpRead:
		id, err := wire.ParseReadReq(f.Payload)
		if err != nil {
			return c.badResp(f, err.Error())
		}
		data, err := c.srv.st.Read(id)
		if err != nil {
			return c.errResp(f, err)
		}
		out := c.beginResp(f.Op, f.ReqID, 1+wire.BlockBytes)
		out.B = wire.AppendOKResp(out.B, data)
		return c.endResp(out)

	case wire.OpWrite:
		id, block, err := wire.ParseWriteReq(f.Payload)
		if err != nil {
			return c.badResp(f, err.Error())
		}
		if err := c.srv.st.Write(id, block); err != nil {
			return c.errResp(f, err)
		}
		out := c.beginResp(f.Op, f.ReqID, 1)
		out.B = wire.AppendOKResp(out.B, nil)
		return c.endResp(out)

	case wire.OpReadBatch:
		ids, err := wire.ParseReadBatchReq(f.Payload)
		if err != nil {
			return c.badResp(f, err.Error())
		}
		if len(ids) > c.srv.cfg.MaxBatch {
			return c.badResp(f, fmt.Sprintf("batch of %d ops exceeds the server limit of %d", len(ids), c.srv.cfg.MaxBatch))
		}
		blocks, err := c.srv.st.ReadBatch(ids)
		if err != nil {
			return c.errResp(f, err)
		}
		out := c.beginResp(f.Op, f.ReqID, 1+4+len(blocks)*wire.BlockBytes)
		out.B = append(out.B, byte(wire.StatusOK))
		out.B, err = wire.AppendReadBatchResp(out.B, blocks)
		if err != nil {
			c.srv.pool.Put(out)
			return c.errResp(f, err)
		}
		return c.endResp(out)

	case wire.OpWriteBatch:
		ids, blocks, err := wire.ParseWriteBatchReq(f.Payload)
		if err != nil {
			return c.badResp(f, err.Error())
		}
		if len(ids) > c.srv.cfg.MaxBatch {
			return c.badResp(f, fmt.Sprintf("batch of %d ops exceeds the server limit of %d", len(ids), c.srv.cfg.MaxBatch))
		}
		if err := c.srv.st.WriteBatch(ids, blocks); err != nil {
			return c.errResp(f, err)
		}
		out := c.beginResp(f.Op, f.ReqID, 1)
		out.B = wire.AppendOKResp(out.B, nil)
		return c.endResp(out)

	case wire.OpStats:
		ws := c.srv.st.Stats()
		// Stamp the server's own limit so the handshake teaches clients
		// how large a batch frame this server accepts.
		ws.MaxBatch = uint32(c.srv.cfg.MaxBatch)
		out := c.beginResp(f.Op, f.ReqID, 256)
		out.B = append(out.B, byte(wire.StatusOK))
		out.B = wire.AppendStats(out.B, ws)
		return c.endResp(out)
	}
	// Every other op wire.IsRequest admits (manifest fetch, the migrate
	// family) belongs to the store's extension surface, if it has one.
	if ext, ok := c.srv.st.(ExtStore); ok {
		body, err := ext.ServeExt(f.Op, f.Payload)
		if err != nil {
			return c.errResp(f, err)
		}
		out := c.beginResp(f.Op, f.ReqID, 1+len(body))
		out.B = wire.AppendOKResp(out.B, body)
		return c.endResp(out)
	}
	return c.badResp(f, fmt.Sprintf("unknown op %d", f.Op))
}

// endResp seals a response frame opened by beginResp.
func (c *conn) endResp(out *wire.FrameBuf) *wire.FrameBuf {
	out.B = wire.EndFrame(out.B, 0)
	return out
}

// badResp encodes a StatusBad response for a malformed-but-framed request.
func (c *conn) badResp(f wire.Frame, msg string) *wire.FrameBuf {
	out := c.beginResp(f.Op, f.ReqID, 1+len(msg))
	out.B = wire.AppendErrResp(out.B, wire.StatusBad, msg)
	return c.endResp(out)
}

// errResp maps a store error onto a wire status: a closed/draining store
// is distinguishable (the client maps it back to palermo.ErrClosed);
// everything else carries its message.
func (c *conn) errResp(f wire.Frame, err error) *wire.FrameBuf {
	st := wire.StatusErr
	switch {
	case errors.Is(err, serve.ErrClosed):
		st = wire.StatusClosed
	case errors.Is(err, ErrWrongEpoch):
		st = wire.StatusWrongEpoch
	case errors.Is(err, serve.ErrRetry):
		st = wire.StatusRetry
	}
	msg := err.Error()
	out := c.beginResp(f.Op, f.ReqID, 1+len(msg))
	out.B = wire.AppendErrResp(out.B, st, msg)
	return c.endResp(out)
}
