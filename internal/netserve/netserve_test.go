package netserve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"palermo/internal/serve"
	"palermo/internal/wire"
)

// fakeStore is a map-backed Store so these tests exercise the network
// layer in isolation from the ORAM stack.
type fakeStore struct {
	mu     sync.Mutex
	blocks map[uint64][]byte
	reads  uint64
	writes uint64

	gate   chan struct{} // when non-nil, Read blocks until the gate closes
	closed bool
}

func newFakeStore() *fakeStore {
	return &fakeStore{blocks: make(map[uint64][]byte)}
}

func (f *fakeStore) Read(id uint64) ([]byte, error) {
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, serve.ErrClosed
	}
	f.reads++
	if b, ok := f.blocks[id]; ok {
		return append([]byte(nil), b...), nil
	}
	return make([]byte, wire.BlockBytes), nil
}

func (f *fakeStore) Write(id uint64, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return serve.ErrClosed
	}
	if len(data) != wire.BlockBytes {
		return fmt.Errorf("fake: bad block size %d", len(data))
	}
	f.writes++
	f.blocks[id] = append([]byte(nil), data...)
	return nil
}

func (f *fakeStore) ReadBatch(ids []uint64) ([][]byte, error) {
	out := make([][]byte, len(ids))
	for i, id := range ids {
		b, err := f.Read(id)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

func (f *fakeStore) WriteBatch(ids []uint64, blocks [][]byte) error {
	for i, id := range ids {
		if err := f.Write(id, blocks[i]); err != nil {
			return err
		}
	}
	return nil
}

func (f *fakeStore) Stats() wire.Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return wire.Stats{Blocks: 1 << 12, Shards: 1, Reads: f.reads, Writes: f.writes}
}

// startServer runs a server over a loopback listener and returns its
// address plus a shutdown func.
func startServer(t *testing.T, st Store, cfg Config) (string, *Server) {
	t.Helper()
	srv, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return ln.Addr().String(), srv
}

func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

// request writes one frame and reads one response frame.
func request(t *testing.T, nc net.Conn, op byte, reqID uint64, payload []byte) wire.Frame {
	t.Helper()
	if err := wire.WriteFrame(nc, op, reqID, payload); err != nil {
		t.Fatal(err)
	}
	return readResp(t, nc)
}

func readResp(t *testing.T, nc net.Conn) wire.Frame {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// expectClosed asserts the server closes the connection (EOF/reset) rather
// than hanging or answering.
func expectClosed(t *testing.T, nc net.Conn) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if f, err := wire.ReadFrame(nc); err == nil {
		t.Fatalf("expected connection close, got frame op=%d", f.Op)
	}
}

// countGoroutines snapshots the goroutine count after a settle loop so
// runtime bookkeeping goroutines don't flake the leak check.
func countGoroutines() int {
	runtime.GC()
	return runtime.NumGoroutine()
}

// waitGoroutines asserts the goroutine count returns to (at most) base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		if n = countGoroutines(); n <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after", base, n)
}

func TestServeRoundTrip(t *testing.T) {
	addr, _ := startServer(t, newFakeStore(), Config{})
	nc := dialRaw(t, addr)

	blk := bytes.Repeat([]byte{0x5A}, wire.BlockBytes)
	f := request(t, nc, wire.OpWrite, 1, wire.AppendWriteReq(nil, 7, blk))
	if st, _, msg, _ := wire.ParseResp(f.Payload); st != wire.StatusOK {
		t.Fatalf("write failed: %v %q", st, msg)
	}
	f = request(t, nc, wire.OpRead, 2, wire.AppendReadReq(nil, 7))
	if f.ReqID != 2 || f.Op != wire.Resp(wire.OpRead) {
		t.Fatalf("response header: %+v", f)
	}
	_, body, _, err := wire.ParseResp(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.ParseReadResp(body)
	if err != nil || !bytes.Equal(got, blk) {
		t.Fatal("read returned wrong payload")
	}
	// Stats carries the handshake geometry and the server's batch limit.
	f = request(t, nc, wire.OpStats, 3, nil)
	_, body, _, _ = wire.ParseResp(f.Payload)
	stats, err := wire.ParseStats(body)
	if err != nil || stats.Blocks != 1<<12 || stats.Writes != 1 {
		t.Fatalf("stats: %+v %v", stats, err)
	}
	if stats.MaxBatch != 4096 { // the config default, stamped by the server
		t.Fatalf("handshake MaxBatch = %d, want 4096", stats.MaxBatch)
	}
}

// TestClosePromptDespiteIdleDeadline: Close must not wait for a parked
// reader's idle deadline — the shutdown path serializes deadline writes so
// Close's immediate one wins.
func TestClosePromptDespiteIdleDeadline(t *testing.T) {
	st := newFakeStore()
	srv, err := New(st, Config{IdleTimeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	nc := dialRaw(t, ln.Addr().String())
	// One request so the reader has looped and re-armed its idle deadline.
	request(t, nc, wire.OpStats, 1, nil)
	t0 := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("Close took %v with an idle connection open", d)
	}
	if err := <-done; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve: %v", err)
	}
}

// TestStalledReaderTornDown: a client that pipelines requests but never
// reads responses must not wedge the connection forever — the writer's
// deadline fires, the socket closes, and Close stays prompt.
func TestStalledReaderTornDown(t *testing.T) {
	base := countGoroutines()
	st := newFakeStore()
	srv, err := New(st, Config{MaxBatch: 4096, WriteTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	nc, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Pipeline several megabytes of ReadBatch responses and read none of
	// them: the kernel buffers fill, the server's writer blocks, and its
	// write deadline must tear the connection down.
	ids := make([]uint64, 4096)
	payload, err := wire.AppendReadBatchReq(nil, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		if err := wire.WriteFrame(nc, wire.OpReadBatch, i, payload); err != nil {
			break // server already closed its side — that's the point
		}
	}
	t0 := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > 10*time.Second {
		t.Fatalf("Close took %v with a stalled-reader connection", d)
	}
	if err := <-done; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve: %v", err)
	}
	nc.Close()
	waitGoroutines(t, base)
}

// TestCloseNotWedgedByStalledUnknownOpFlood: regression for the
// unwindowed reply path. Unknown-op replies are queued by the reader
// itself, without an in-flight window token — so a peer that floods
// unknown ops and never reads used to park the reader on a full response
// channel while the writer sat in a blocked nc.Write, a state Close's
// read-deadline sweep could not reach: Close waited out the full
// WriteTimeout (a minute here). The writer-dead channel plus Close's
// write-deadline sweep must unwedge it promptly.
func TestCloseNotWedgedByStalledUnknownOpFlood(t *testing.T) {
	st := newFakeStore()
	srv, err := New(st, Config{MaxInFlight: 1, WriteTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	nc, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// A tiny receive window caps how many responses the kernel absorbs, so
	// the server's writer blocks after a bounded flood.
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetReadBuffer(4 << 10)
	}
	// Flood unknown-op frames and never read a response. The wedge has
	// formed once our own sends stall: the server's reader has stopped
	// reading (parked on its full response channel), so TCP back-pressure
	// reaches us.
	wedged := make(chan struct{})
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		frame := wire.AppendFrame(nil, 99, 1, nil) // not a request op
		chunk := bytes.Repeat(frame, 1024)
		for {
			nc.SetWriteDeadline(time.Now().Add(3 * time.Second))
			if _, err := nc.Write(chunk); err != nil {
				close(wedged)
				return
			}
		}
	}()
	select {
	case <-wedged:
	case <-time.After(30 * time.Second):
		t.Fatal("flood never stalled; cannot form the wedge this test guards")
	}
	t0 := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > 10*time.Second {
		t.Fatalf("Close took %v with a reader parked on the unwindowed reply path; the WriteTimeout leaked into shutdown", d)
	}
	if err := <-done; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve: %v", err)
	}
	nc.Close()
	<-pumpDone
}

// TestSocketKillMidResponseNoLeak aborts the connection (RST, not FIN)
// while responses — batch payloads and unwindowed unknown-op replies —
// are streaming, and asserts every connection goroutine unwinds and the
// server still serves. Under -race this also shakes out unsynchronized
// teardown between the writer's error path and the reader's reply path.
func TestSocketKillMidResponseNoLeak(t *testing.T) {
	base := countGoroutines()
	st := newFakeStore()
	srv, err := New(st, Config{MaxInFlight: 2, WriteTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	for round := 0; round < 4; round++ {
		nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		tc := nc.(*net.TCPConn)
		tc.SetReadBuffer(4 << 10)
		tc.SetLinger(0) // Close sends RST: the abortive kill
		// Interleave heavy batch reads with unknown-op frames so both the
		// windowed and the unwindowed reply paths are live at kill time.
		ids := make([]uint64, 512)
		batch, err := wire.AppendReadBatchReq(nil, ids)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 64; i++ {
			nc.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
			if err := wire.WriteFrame(nc, wire.OpReadBatch, i, batch); err != nil {
				break // server-side back-pressure: the wedge is live, kill now
			}
			if wire.WriteFrame(nc, 99, i, nil) != nil {
				break
			}
		}
		// Read one response so the writer is mid-stream, then kill.
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		wire.ReadFrame(nc)
		nc.Close()
	}
	// The server survives every kill: a fresh connection still serves.
	nc2, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(nc2, wire.OpStats, 1, nil); err != nil {
		t.Fatal(err)
	}
	nc2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(nc2); err != nil {
		t.Fatalf("server wedged after socket kills: %v", err)
	}
	nc2.Close()
	t0 := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > 10*time.Second {
		t.Fatalf("Close took %v after mid-response socket kills", d)
	}
	if err := <-done; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve: %v", err)
	}
	waitGoroutines(t, base)
}

// TestPipelining sends a window of requests before reading any response
// and matches responses back by request id.
func TestPipelining(t *testing.T) {
	addr, _ := startServer(t, newFakeStore(), Config{MaxInFlight: 8})
	nc := dialRaw(t, addr)
	const n = 32
	for i := uint64(0); i < n; i++ {
		if err := wire.WriteFrame(nc, wire.OpRead, i, wire.AppendReadReq(nil, i)); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		f := readResp(t, nc)
		if f.Op != wire.Resp(wire.OpRead) || seen[f.ReqID] {
			t.Fatalf("bad or duplicate response: %+v", f)
		}
		seen[f.ReqID] = true
	}
	if len(seen) != n {
		t.Fatalf("answered %d of %d pipelined requests", len(seen), n)
	}
}

// TestInFlightWindow proves back-pressure: with MaxInFlight=2 and a gated
// store, the server must never execute more than 2 requests concurrently.
func TestInFlightWindow(t *testing.T) {
	st := newFakeStore()
	st.gate = make(chan struct{})
	addr, _ := startServer(t, st, Config{MaxInFlight: 2})
	nc := dialRaw(t, addr)
	for i := uint64(0); i < 16; i++ {
		if err := wire.WriteFrame(nc, wire.OpRead, i, wire.AppendReadReq(nil, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Give the reader time to dispatch as much as it will.
	time.Sleep(100 * time.Millisecond)
	st.mu.Lock()
	dispatched := st.reads // gated reads increment only after the gate opens
	st.mu.Unlock()
	if dispatched != 0 {
		t.Fatalf("gated store served %d reads early", dispatched)
	}
	close(st.gate)
	for i := 0; i < 16; i++ {
		readResp(t, nc)
	}
}

func TestCorruptMagicClosesConn(t *testing.T) {
	st := newFakeStore()
	addr, _ := startServer(t, st, Config{})
	nc := dialRaw(t, addr)
	nc.Write(bytes.Repeat([]byte{0xFF}, wire.HeaderLen))
	expectClosed(t, nc)

	// The server survives: a fresh connection works.
	nc2 := dialRaw(t, addr)
	f := request(t, nc2, wire.OpStats, 1, nil)
	if st, _, _, _ := wire.ParseResp(f.Payload); st != wire.StatusOK {
		t.Fatal("server did not survive a corrupt-magic connection")
	}
}

func TestBadVersionClosesConn(t *testing.T) {
	addr, _ := startServer(t, newFakeStore(), Config{})
	nc := dialRaw(t, addr)
	hdr := wire.AppendFrame(nil, wire.OpStats, 1, nil)
	hdr[2] = 99 // future protocol version
	nc.Write(hdr)
	expectClosed(t, nc)
}

func TestTruncatedFrameClosesConn(t *testing.T) {
	addr, _ := startServer(t, newFakeStore(), Config{})
	// Truncate at several points: mid-header and mid-payload.
	full := wire.AppendFrame(nil, wire.OpWrite, 1,
		wire.AppendWriteReq(nil, 3, make([]byte, wire.BlockBytes)))
	for _, cut := range []int{3, wire.HeaderLen - 1, wire.HeaderLen + 10} {
		nc := dialRaw(t, addr)
		nc.Write(full[:cut])
		if cw, ok := nc.(*net.TCPConn); ok {
			cw.CloseWrite()
		}
		expectClosed(t, nc)
	}
}

func TestOversizedLengthClosesConn(t *testing.T) {
	addr, _ := startServer(t, newFakeStore(), Config{})
	nc := dialRaw(t, addr)
	hdr := wire.AppendFrame(nil, wire.OpRead, 1, nil)
	binary.BigEndian.PutUint32(hdr[12:16], ^uint32(0)) // 4 GB claim
	nc.Write(hdr)
	expectClosed(t, nc)
}

// TestMalformedPayloadAnswered: framing is intact, so a bad payload gets a
// typed StatusBad answer and the connection stays usable.
func TestMalformedPayloadAnswered(t *testing.T) {
	addr, _ := startServer(t, newFakeStore(), Config{MaxBatch: 4})
	nc := dialRaw(t, addr)
	cases := []struct {
		op      byte
		payload []byte
	}{
		{wire.OpRead, []byte{1, 2, 3}},             // short id
		{wire.OpWrite, wire.AppendReadReq(nil, 1)}, // missing block
		{wire.OpReadBatch, []byte{0, 0, 0, 0}},     // zero-count batch
		{99, nil},                                  // unknown op
		{wire.Resp(wire.OpRead), nil},              // a response sent as a request
	}
	for i, tc := range cases {
		f := request(t, nc, tc.op, uint64(i+1), tc.payload)
		st, _, msg, err := wire.ParseResp(f.Payload)
		if err != nil || st != wire.StatusBad {
			t.Fatalf("case %d: status %v (%q), err %v", i, st, msg, err)
		}
	}
	// Over-limit batch: parseable, but beyond the server's MaxBatch.
	big, err := wire.AppendReadBatchReq(nil, make([]uint64, 5))
	if err != nil {
		t.Fatal(err)
	}
	f := request(t, nc, wire.OpReadBatch, 42, big)
	if st, _, _, _ := wire.ParseResp(f.Payload); st != wire.StatusBad {
		t.Fatalf("over-limit batch: %v", st)
	}
	// Connection is still good.
	f = request(t, nc, wire.OpStats, 43, nil)
	if st, _, _, _ := wire.ParseResp(f.Payload); st != wire.StatusOK {
		t.Fatal("connection poisoned by malformed payload")
	}
}

// TestClosedStoreStatus: a draining store's error maps to StatusClosed.
func TestClosedStoreStatus(t *testing.T) {
	st := newFakeStore()
	st.closed = true
	addr, _ := startServer(t, st, Config{})
	nc := dialRaw(t, addr)
	f := request(t, nc, wire.OpRead, 1, wire.AppendReadReq(nil, 0))
	if code, _, _, _ := wire.ParseResp(f.Payload); code != wire.StatusClosed {
		t.Fatalf("closed store answered %v, want StatusClosed", code)
	}
}

// TestMidRequestKill kills the connection while a request is executing:
// the server must neither panic nor deadlock, and the follow-up check
// proves it still serves.
func TestMidRequestKill(t *testing.T) {
	st := newFakeStore()
	st.gate = make(chan struct{})
	addr, srv := startServer(t, st, Config{})
	nc := dialRaw(t, addr)
	if err := wire.WriteFrame(nc, wire.OpRead, 1, wire.AppendReadReq(nil, 0)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the request reach the gated store
	nc.Close()                        // kill mid-request
	close(st.gate)

	nc2 := dialRaw(t, addr)
	f := request(t, nc2, wire.OpStats, 1, nil)
	if code, _, _, _ := wire.ParseResp(f.Payload); code != wire.StatusOK {
		t.Fatal("server wedged after mid-request kill")
	}
	_ = srv
}

// TestIdleTimeout: a silent connection is reaped; an active one is not.
func TestIdleTimeout(t *testing.T) {
	addr, _ := startServer(t, newFakeStore(), Config{IdleTimeout: 100 * time.Millisecond})
	nc := dialRaw(t, addr)
	expectClosed(t, nc) // no traffic: the idle deadline closes it

	nc2 := dialRaw(t, addr)
	for i := 0; i < 3; i++ {
		time.Sleep(50 * time.Millisecond) // under the idle limit each time
		f := request(t, nc2, wire.OpStats, uint64(i), nil)
		if code, _, _, _ := wire.ParseResp(f.Payload); code != wire.StatusOK {
			t.Fatal("active connection reaped")
		}
	}
}

// TestGracefulDrain: Close must let an in-flight request finish and flush
// its response before tearing the connection down.
func TestGracefulDrain(t *testing.T) {
	st := newFakeStore()
	st.gate = make(chan struct{})
	srv, err := New(st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	nc := dialRaw(t, ln.Addr().String())
	if err := wire.WriteFrame(nc, wire.OpRead, 9, wire.AppendReadReq(nil, 1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // request is now parked on the gate
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	time.Sleep(20 * time.Millisecond)
	close(st.gate) // let the in-flight request complete

	f := readResp(t, nc) // its response must still arrive
	if f.ReqID != 9 {
		t.Fatalf("drained response id %d, want 9", f.ReqID)
	}
	<-closed
	if err := <-done; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve: %v", err)
	}
}

// TestNoGoroutineLeak runs every fault path above a shared baseline and
// asserts the goroutine count returns to it — under -race this also shakes
// out unsynchronized teardown.
func TestNoGoroutineLeak(t *testing.T) {
	base := countGoroutines()
	st := newFakeStore()
	srv, err := New(st, Config{MaxInFlight: 4, IdleTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				return
			}
			defer nc.Close()
			switch i % 4 {
			case 0: // healthy pipelined traffic
				for j := uint64(0); j < 8; j++ {
					wire.WriteFrame(nc, wire.OpRead, j, wire.AppendReadReq(nil, j))
				}
				for j := 0; j < 8; j++ {
					nc.SetReadDeadline(time.Now().Add(2 * time.Second))
					if _, err := wire.ReadFrame(nc); err != nil {
						return
					}
				}
			case 1: // corrupt magic
				nc.Write(bytes.Repeat([]byte{0xAB}, wire.HeaderLen))
			case 2: // truncated frame then abandon
				full := wire.AppendFrame(nil, wire.OpRead, 1, wire.AppendReadReq(nil, 0))
				nc.Write(full[:wire.HeaderLen+2])
			case 3: // mid-request kill
				wire.WriteFrame(nc, wire.OpRead, 1, wire.AppendReadReq(nil, 0))
			}
		}(i)
	}
	wg.Wait()
	srv.Close()
	if err := <-done; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve: %v", err)
	}
	waitGoroutines(t, base)
}

func TestConfigValidate(t *testing.T) {
	for i, cfg := range []Config{
		{MaxInFlight: -1},
		{MaxBatch: -1},
		{MaxBatch: wire.MaxOps + 1},
		{IdleTimeout: -time.Second},
		{WriteTimeout: -time.Second},
	} {
		if _, err := New(newFakeStore(), cfg); err == nil {
			t.Fatalf("case %d: config %+v must be rejected", i, cfg)
		}
	}
}

// BenchmarkServeLoopback measures one pipelined connection's round-trip
// cost (and allocations) through the full server path: pooled frame
// receive, request dispatch, in-place pooled response encode, writer.
// The allocs/op figure is the pooled reply path's budget guard.
func BenchmarkServeLoopback(b *testing.B) {
	st := newFakeStore()
	srv, err := New(st, Config{})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-done
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer nc.Close()
	bw := bufio.NewWriter(nc)
	br := bufio.NewReader(nc)
	req := wire.AppendFrame(nil, wire.OpWrite, 1, wire.AppendWriteReq(nil, 7, make([]byte, wire.BlockBytes)))

	// Keep a modest request window in flight so the server's read, serve,
	// and write stages all stay busy, like a real pipelining client.
	const window = 16
	b.ReportAllocs()
	b.ResetTimer()
	inflight := 0
	for i := 0; i < b.N; i++ {
		if _, err := bw.Write(req); err != nil {
			b.Fatal(err)
		}
		inflight++
		if inflight == window {
			if err := bw.Flush(); err != nil {
				b.Fatal(err)
			}
			for ; inflight > 0; inflight-- {
				if _, err := wire.ReadFrame(br); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	bw.Flush()
	for ; inflight > 0; inflight-- {
		if _, err := wire.ReadFrame(br); err != nil {
			b.Fatal(err)
		}
	}
}
