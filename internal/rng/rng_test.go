package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	f := func(seed uint64, n uint32) bool {
		if n == 0 {
			return true
		}
		r := New(seed)
		for i := 0; i < 50; i++ {
			if r.Uint64n(uint64(n)) >= uint64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(7)
	const n, draws = 16, 160000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, szRaw uint8) bool {
		sz := int(szRaw%64) + 1
		r := New(seed)
		p := make([]int, sz)
		r.Perm(p)
		seen := make([]bool, sz)
		for _, v := range p {
			if v < 0 || v >= sz || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(3)
	z := NewZipf(r, 1000, 0.99)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(5)
	const n = 10000
	z := NewZipf(r, n, 0.99)
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must be sampled far more often than the uniform rate, and the
	// top-100 ranks must hold a large share of the mass.
	if counts[0] < draws/n*20 {
		t.Fatalf("rank-0 count %d not skewed (uniform would be %d)", counts[0], draws/n)
	}
	top := 0
	for k, c := range counts {
		if k < 100 {
			top += c
		}
	}
	if float64(top)/draws < 0.30 {
		t.Fatalf("top-100 share = %f, want >= 0.30 for theta=0.99", float64(top)/draws)
	}
}

func TestZipfLowSkewIsFlatter(t *testing.T) {
	r := New(11)
	const n = 1000
	zHi := NewZipf(New(11), n, 1.2)
	zLo := NewZipf(r, n, 0.4)
	hi0, lo0 := 0, 0
	for i := 0; i < 100000; i++ {
		if zHi.Next() == 0 {
			hi0++
		}
		if zLo.Next() == 0 {
			lo0++
		}
	}
	if hi0 <= lo0 {
		t.Fatalf("higher theta should concentrate rank 0: hi=%d lo=%d", hi0, lo0)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipf(b *testing.B) {
	z := NewZipf(New(1), 1<<24, 0.99)
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
