// Package rng provides deterministic, seedable random number generation for
// the simulator: a xoshiro256** core, uniform helpers, and a Zipfian sampler
// used by the workload generators.
//
// The simulator cannot use math/rand's global state because experiments must
// be reproducible bit-for-bit across runs and independent across components
// (e.g., leaf selection must not perturb workload generation).
package rng

import "math"

// Rand is a xoshiro256** PRNG. Create with New; the zero value is invalid.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64 expansion.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state (cannot happen with splitmix64, but be safe).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// State returns the generator's internal xoshiro256** state for
// checkpointing (durable-store snapshots capture it so a restored engine
// continues the exact random stream it would have produced).
func (r *Rand) State() [4]uint64 { return r.s }

// Restore overwrites the generator with a previously captured State.
func (r *Rand) Restore(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		panic("rng: Restore of all-zero state")
	}
	r.s = s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n(0)")
	}
	// Lemire's nearly-divisionless bounded generation with rejection.
	hi, lo := mul128(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul128(r.Uint64(), n)
		}
	}
	_ = lo
	return hi
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	w0 := t & mask
	k := t >> 32
	t = aHi*bLo + k
	w1 := t & mask
	w2 := t >> 32
	t = aLo*bHi + w1
	k = t >> 32
	hi = aHi*bHi + w2 + k
	lo = (t << 32) + w0
	return hi, lo
}

// Intn returns a uniform int in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm fills p with a uniform random permutation of 0..len(p)-1.
func (r *Rand) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Zipf samples from a Zipfian distribution over [0, n) with exponent theta
// using rejection-inversion (Hörmann). It models popularity-skewed access
// (graph vertices, embedding rows, KV keys).
type Zipf struct {
	r             *Rand
	n             uint64
	theta         float64
	oneMinusTheta float64
	hIntegralX1   float64
	hIntegralN    float64
	s             float64
}

// NewZipf creates a Zipfian sampler over [0, n) with skew theta in (0, 1) ∪ (1, ∞).
// theta near 0.99 approximates YCSB-style skew.
func NewZipf(r *Rand, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("rng: NewZipf(n=0)")
	}
	if theta <= 0 {
		panic("rng: NewZipf theta must be > 0")
	}
	z := &Zipf{r: r, n: n, theta: theta, oneMinusTheta: 1 - theta}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(float64(n) + 0.5)
	z.s = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.theta * math.Log(x)) }

// hIntegral is the antiderivative of h: ∫x^-θ dx = (x^(1-θ) - 1)/(1-θ),
// computed in the numerically stable helper form.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.theta)*logX) * logX
}

func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * (1 - z.theta)
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1/3.0-x*0.25))
}

func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1/3.0)*(1+x*0.25))
}

// Next samples a rank in [0, n); rank 0 is the most popular item.
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegralN + z.r.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.s || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k) - 1
		}
	}
}
