// Command palermo-sec runs the §VI security analyses on a Palermo
// simulation: response-timing mutual information (Table I / Eq. 1) and
// leaf-stream uniformity.
//
// Usage:
//
//	palermo-sec -workload redis -requests 4000
//	palermo-sec -workload llm -protocol RingORAM
//	palermo-sec -serve-trace traces.json
//
// -serve-trace switches the audit target from the simulator to the live
// serving path: it consumes the per-shard leaf traces a
// `palermo-load -trace FILE` run recorded (any config — tree-top cache
// and prefetch planner included, since neither touches leaf selection)
// and asserts each shard's exposed leaf stream is statistically uniform.
// A non-uniform shard exits non-zero, so CI can gate on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"palermo"
	"palermo/internal/security"
)

func main() {
	wl := flag.String("workload", "redis", "Table II workload")
	protoName := flag.String("protocol", "Palermo", "protocol to analyze")
	requests := flag.Int("requests", 4000, "measured ORAM requests")
	seed := flag.Uint64("seed", 1, "simulation seed")
	serveTrace := flag.String("serve-trace", "", "audit recorded serving leaf traces (palermo-load -trace output) instead of simulating")
	flag.Parse()

	if *serveTrace != "" {
		if err := auditServingTraces(*serveTrace); err != nil {
			fatal(err)
		}
		return
	}

	var proto palermo.Protocol
	found := false
	for _, p := range palermo.Protocols() {
		if strings.EqualFold(p.String(), *protoName) {
			proto, found = p, true
			break
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown protocol %q", *protoName))
	}

	res, err := palermo.Run(proto, *wl, palermo.Options{
		Requests: *requests, Seed: *seed, KeepLatency: true,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s on %s: %d requests measured\n", proto, *wl, res.Requests)

	tim, err := security.AnalyzeTiming(res.RespLat.Samples(), res.FromStash)
	if err != nil {
		fatal(err)
	}
	fmt.Println("timing channel:", tim)
	if tim.MutualInfo < 0.01 {
		fmt.Println("  PASS: attacker gains no better than random from response timings")
	} else {
		fmt.Println("  WARNING: elevated mutual information (small-sample noise shrinks with -requests)")
	}

	leaf, err := security.AnalyzeLeaves(res.Leaves, res.NumLeaves, 64)
	if err != nil {
		fatal(err)
	}
	fmt.Println("leaf stream:   ", leaf)
	if leaf.Uniform(0.001) {
		fmt.Println("  PASS: exposed path selections indistinguishable from uniform")
	} else {
		fmt.Println("  FAIL: leaf stream deviates from uniform")
	}

	fmt.Printf("DRAM view:      row-hit %.1f%%, bank-conflict %.1f%% (workload-independent under ORAM)\n",
		res.Mem.RowHitRate*100, res.Mem.RowConflictRate*100)
}

// auditServingTraces runs the leaf-uniformity analysis over recorded
// serving traces, one verdict per shard. Every shard must pass: the
// serving path's obliviousness argument is per-shard (each shard is an
// independent ORAM over its own id subspace), so a single skewed stream
// is a finding even if the union happens to average out.
func auditServingTraces(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var traces []palermo.LeafTrace
	if err := json.Unmarshal(buf, &traces); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if len(traces) == 0 {
		return fmt.Errorf("%s holds no shard traces", path)
	}
	failed := 0
	for _, tr := range traces {
		if len(tr.Leaves) == 0 {
			return fmt.Errorf("shard %d recorded no leaf observations — re-run palermo-load with -trace and a read workload", tr.Shard)
		}
		leaf, err := security.AnalyzeLeaves(tr.Leaves, tr.NumLeaves, 64)
		if err != nil {
			return fmt.Errorf("shard %d: %w", tr.Shard, err)
		}
		verdict := "PASS"
		if !leaf.Uniform(0.001) {
			verdict, failed = "FAIL", failed+1
		}
		fmt.Printf("shard %d: %d leaf observations over %d leaves — %s (%v)\n",
			tr.Shard, len(tr.Leaves), tr.NumLeaves, verdict, leaf)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d shard leaf streams deviate from uniform", failed, len(traces))
	}
	fmt.Printf("serving path: all %d shard leaf streams indistinguishable from uniform\n", len(traces))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "palermo-sec:", err)
	os.Exit(1)
}
