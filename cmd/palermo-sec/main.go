// Command palermo-sec runs the §VI security analyses on a Palermo
// simulation: response-timing mutual information (Table I / Eq. 1) and
// leaf-stream uniformity.
//
// Usage:
//
//	palermo-sec -workload redis -requests 4000
//	palermo-sec -workload llm -protocol RingORAM
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"palermo"
	"palermo/internal/security"
)

func main() {
	wl := flag.String("workload", "redis", "Table II workload")
	protoName := flag.String("protocol", "Palermo", "protocol to analyze")
	requests := flag.Int("requests", 4000, "measured ORAM requests")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	var proto palermo.Protocol
	found := false
	for _, p := range palermo.Protocols() {
		if strings.EqualFold(p.String(), *protoName) {
			proto, found = p, true
			break
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown protocol %q", *protoName))
	}

	res, err := palermo.Run(proto, *wl, palermo.Options{
		Requests: *requests, Seed: *seed, KeepLatency: true,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s on %s: %d requests measured\n", proto, *wl, res.Requests)

	tim, err := security.AnalyzeTiming(res.RespLat.Samples(), res.FromStash)
	if err != nil {
		fatal(err)
	}
	fmt.Println("timing channel:", tim)
	if tim.MutualInfo < 0.01 {
		fmt.Println("  PASS: attacker gains no better than random from response timings")
	} else {
		fmt.Println("  WARNING: elevated mutual information (small-sample noise shrinks with -requests)")
	}

	leaf, err := security.AnalyzeLeaves(res.Leaves, res.NumLeaves, 64)
	if err != nil {
		fatal(err)
	}
	fmt.Println("leaf stream:   ", leaf)
	if leaf.Uniform(0.001) {
		fmt.Println("  PASS: exposed path selections indistinguishable from uniform")
	} else {
		fmt.Println("  FAIL: leaf stream deviates from uniform")
	}

	fmt.Printf("DRAM view:      row-hit %.1f%%, bank-conflict %.1f%% (workload-independent under ORAM)\n",
		res.Mem.RowHitRate*100, res.Mem.RowConflictRate*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "palermo-sec:", err)
	os.Exit(1)
}
