// Command palermo-load is a closed-loop load generator for the sharded
// oblivious store service: N client goroutines issue read/write requests
// against palermo.ShardedStore and the tool reports ops/sec plus latency
// percentiles — the throughput-vs-parallelism scalability methodology of
// the ThunderX2 HPC study applied to the serving path.
//
// Usage:
//
//	palermo-load                                  # 8 clients, 4 shards, 20000 ops
//	palermo-load -shards 1 -clients 8             # the no-sharding baseline
//	palermo-load -zipf 0.99 -read-ratio 0.95      # YCSB-style skewed reads
//	palermo-load -batch 16                        # reads issued as 16-id batches
//	palermo-load -json out/                       # also write out/BENCH_load.json
//
// Every run is deterministic for a given -seed: client RNG streams are
// derived per client, and per-shard ORAM sequences depend only on each
// shard's request subsequence (arrival interleaving varies, results and
// obliviousness do not). The workload loop itself is internal/loadgen,
// shared with palermo-bench's serving-path figure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"palermo"
	"palermo/internal/loadgen"
)

func main() {
	clients := flag.Int("clients", 8, "closed-loop client goroutines")
	shards := flag.Int("shards", 4, "independent ORAM shards")
	blocks := flag.Uint64("blocks", 1<<18, "store capacity in 64-byte blocks (0 = store default)")
	ops := flag.Int("ops", 20000, "total operations across all clients")
	readRatio := flag.Float64("read-ratio", 0.9, "fraction of operations that are reads")
	zipf := flag.Float64("zipf", 0, "Zipf skew theta (0 = uniform; 0.99 ~ YCSB)")
	batch := flag.Int("batch", 1, "reads per ReadBatch call (1 = single-op loop)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	seed := flag.Uint64("seed", 1, "base seed (store shards and client streams derive from it)")
	jsonDir := flag.String("json", "", "directory to write the BENCH_load.json perf record into")
	flag.Parse()

	st, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{
		Blocks:     *blocks,
		Shards:     *shards,
		Seed:       *seed,
		QueueDepth: *queue,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("palermo-load: %d shards, %d clients, %d ops (%.0f%% reads, zipf %.2f, batch %d) over %d blocks\n",
		st.Shards(), *clients, *ops, *readRatio*100, *zipf, *batch, st.Blocks())

	res, err := loadgen.Run(st, loadgen.Options{
		Clients:   *clients,
		Ops:       *ops,
		ReadRatio: *readRatio,
		ZipfTheta: *zipf,
		Batch:     *batch,
		Seed:      *seed,
	})
	if err != nil {
		fatal(err)
	}
	if err := st.Close(); err != nil {
		fatal(err)
	}

	stats := res.Stats
	fmt.Printf("  wall %.2fs  ops/sec %.0f  (%d reads, %d writes, %d dedup fan-outs)\n",
		res.Wall.Seconds(), res.OpsPerSec(), stats.Reads, stats.Writes, stats.DedupHits)
	fmt.Printf("  read  lat p50 %.0fµs  p99 %.0fµs  mean %.0fµs  (n=%d)\n",
		stats.ReadLat.P50Us, stats.ReadLat.P99Us, stats.ReadLat.MeanUs, stats.ReadLat.N)
	if stats.WriteLat.N > 0 {
		fmt.Printf("  write lat p50 %.0fµs  p99 %.0fµs  mean %.0fµs  (n=%d)\n",
			stats.WriteLat.P50Us, stats.WriteLat.P99Us, stats.WriteLat.MeanUs, stats.WriteLat.N)
	}
	fmt.Printf("  DRAM lines/op %.1f  stash peak %d\n",
		res.Traffic.AmplificationFactor, res.Traffic.StashPeak)

	if *jsonDir != "" {
		if err := writeRecord(*jsonDir, *ops, *seed, st.Shards(), res, map[string]float64{
			"ops_per_sec":  res.OpsPerSec(),
			"clients":      float64(*clients),
			"read_ratio":   *readRatio,
			"zipf_theta":   *zipf,
			"read_p50_us":  stats.ReadLat.P50Us,
			"read_p99_us":  stats.ReadLat.P99Us,
			"write_p50_us": stats.WriteLat.P50Us,
			"write_p99_us": stats.WriteLat.P99Us,
			"dedup_hits":   float64(stats.DedupHits),
			"lines_per_op": res.Traffic.AmplificationFactor,
		}); err != nil {
			fatal(err)
		}
	}
}

// benchRecord matches the BENCH_*.json schema palermo-bench writes, so the
// serving path joins the same perf trajectory.
type benchRecord struct {
	Figure      string             `json:"figure"`
	Requests    int                `json:"requests"`
	Seed        uint64             `json:"seed"`
	Workers     int                `json:"workers"` // shard workers here
	Cores       int                `json:"cores"`
	WallSeconds float64            `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics"`
}

func writeRecord(dir string, ops int, seed uint64, shards int, res loadgen.Result, metrics map[string]float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	rec := benchRecord{
		Figure:      "load",
		Requests:    ops,
		Seed:        seed,
		Workers:     shards,
		Cores:       runtime.GOMAXPROCS(0),
		WallSeconds: res.Wall.Seconds(),
		Metrics:     metrics,
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_load.json"), append(buf, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "palermo-load:", err)
	os.Exit(1)
}
