// Command palermo-load is a load generator for the sharded oblivious
// store service: N client goroutines issue read/write requests against
// palermo.ShardedStore and the tool reports ops/sec plus latency
// percentiles — the throughput-vs-parallelism scalability methodology of
// the ThunderX2 HPC study applied to the serving path.
//
// Usage:
//
//	palermo-load                                  # 8 clients, 4 shards, 20000 ops
//	palermo-load -shards 1 -clients 8             # the no-sharding baseline
//	palermo-load -zipf 0.99 -read-ratio 0.95      # YCSB-style skewed reads
//	palermo-load -batch 16                        # reads issued as 16-id batches
//	palermo-load -duration 30s                    # time-bounded soak (no op arithmetic)
//	palermo-load -rate 50000 -duration 10s        # open-loop: offer 50k ops/s regardless of completions
//	palermo-load -admission 20ms                  # shed queued requests older than 20ms (in-process)
//	palermo-load -json out/                       # also write out/BENCH_load.json
//	palermo-load -dir /data/palermo               # durable WAL backend under -dir
//	palermo-load -dir /data/palermo -verify       # reopen a -dir store and verify it
//	palermo-load -addr 127.0.0.1:7070             # drive a palermo-server over TCP
//	palermo-load -addr HOST:PORT -conns 4 -stamp  # pooled sockets + stamp for -verify
//	palermo-load -addr A:7070,B:7070 -stamp       # drive a cluster through DialCluster
//
// With -addr the generator dials a running cmd/palermo-server instead of
// building an in-process store: the same closed-loop workload runs over
// real sockets through palermo.Client (request pipelining, automatic
// batching of concurrent small ops), and the perf record is written as
// BENCH_net.json instead of BENCH_load.json — so the network tax over the
// in-process numbers is one diff away. Comma-separated addresses select
// the cluster-routing client instead: every id is routed to its owning
// node via the placement manifest, batches scatter/gather across nodes,
// live migrations mid-run are ridden out transparently, and the record
// becomes BENCH_cluster.json. Store geometry (shards, blocks,
// durable dir) belongs to the server in this mode; the handshake reports
// it back. Counters are snapshotted before and after the run and recorded
// as deltas, so driving a long-lived server (whose cumulative stats span
// prior runs and other clients) still reports this run's work; latency
// percentiles are exact only against a freshly started server (they
// condense the server's lifetime histogram). -stamp writes the same deterministic verification payloads the
// -dir mode stamps, so a durable server that is then shut down can be
// re-verified locally with -dir/-verify (the net-smoke CI job's flow).
//
// By default the clients are closed-loop: each issues its next request
// when the previous completes, so the measured latency coordinates with
// the server and hides queueing delay under overload. -rate switches to
// open-loop generation: the run offers a fixed total rate on a
// deterministic Poisson schedule and measures latency from each
// operation's *intended* send time (the coordinated-omission
// correction), reporting offered vs achieved rate and any operations the
// server shed with a retry status.
//
// Every run is deterministic for a given -seed: client RNG streams are
// derived per client (open-loop arrival schedules included), and
// per-shard ORAM sequences depend only on each shard's request
// subsequence (arrival interleaving varies, results and obliviousness do
// not). The workload loop itself is internal/loadgen, shared with
// palermo-bench's serving-path figures.
//
// With -dir, the run finishes with a deterministic stamp pass: payloads
// derived from (-seed, id) are written to the first min(blocks, 1024) ids
// before Close checkpoints the store. A second process running with the
// same -dir/-seed/-shards/-blocks and -verify reopens the directory and
// checks every stamped block reads back byte-identical — the
// crash-recovery smoke CI runs on every push.
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"strings"

	"palermo"
	"palermo/internal/cluster"
	"palermo/internal/loadgen"
	"palermo/internal/rng"
)

// stampBlocks is how many ids the durable stamp pass writes.
const stampBlocks = 1024

func main() {
	clients := flag.Int("clients", 8, "closed-loop client goroutines")
	shards := flag.Int("shards", 4, "independent ORAM shards")
	blocks := flag.Uint64("blocks", 1<<18, "store capacity in 64-byte blocks (0 = store default)")
	ops := flag.Int("ops", 20000, "total operations across all clients (mutually exclusive with -duration)")
	duration := flag.Duration("duration", 0, "time-bounded run length, e.g. 30s (mutually exclusive with -ops)")
	readRatio := flag.Float64("read-ratio", 0.9, "fraction of operations that are reads")
	zipf := flag.Float64("zipf", 0, "Zipf skew theta (0 = uniform; 0.99 ~ YCSB)")
	batch := flag.Int("batch", 1, "reads per ReadBatch call (1 = single-op loop)")
	rate := flag.Float64("rate", 0, "open-loop offered load in total ops/sec (0 = closed loop; requires -batch 1)")
	admission := flag.Duration("admission", 0, "overload-shedding admission deadline for the in-process store (0 = never shed)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	pipeline := flag.Int("pipeline", 0, "per-shard pipeline depth (0 = default, 1 = serial workers)")
	treetop := flag.Int("treetop", 0, "resident tree-top cache levels per engine space (0 = byte-budget default)")
	prefetch := flag.Bool("prefetch", false, "enable the batch-admission prefetch planner (needs pipeline depth > 1)")
	prefetchDepth := flag.Int("prefetch-depth", 0, "planner look-ahead in predicted batches (0/1 = one-batch planner; needs -prefetch)")
	posmapPrefetch := flag.Bool("posmap-prefetch", false, "also announce each planned read's posmap-group sibling lines (needs -prefetch)")
	seed := flag.Uint64("seed", 1, "base seed (store shards and client streams derive from it)")
	jsonDir := flag.String("json", "", "directory to write the BENCH_load.json perf record into")
	figure := flag.String("figure", "", "override the perf-record figure name (default: load, or net with -addr)")
	traceFile := flag.String("trace", "", "record per-shard serving leaf traces to this JSON file (in-process mode)")
	dir := flag.String("dir", "", "durable store directory (selects a durable engine; see -engine)")
	engine := flag.String("engine", "", `storage engine with -dir: "wal" (default) or "blockfile"; reopen auto-detects from the manifest`)
	groupCommit := flag.Int("group-commit", 0, "durable-log appends per fsync batch (0 = default)")
	cryptoWorkers := flag.Int("crypto-workers", 0, "parallel seal/unseal workers per shard (0 = inline; needs pipeline depth > 1)")
	slotCache := flag.Int("slot-cache", 0, "blockfile slot read-cache budget in bytes per shard (0 = off; needs -engine blockfile)")
	verify := flag.Bool("verify", false, "reopen the -dir store and verify the stamped blocks instead of generating load")
	addr := flag.String("addr", "", "drive a remote palermo-server at HOST:PORT instead of an in-process store")
	conns := flag.Int("conns", 1, "client connection-pool size (-addr mode)")
	stamp := flag.Bool("stamp", false, "write the deterministic verification stamp after the run (implied by -dir; with -addr it lands in the server's durable dir)")
	flag.Parse()

	opsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "ops" {
			opsSet = true
		}
		if *addr != "" {
			switch f.Name {
			case "shards", "blocks", "queue", "dir", "engine", "group-commit", "crypto-workers", "verify", "treetop", "prefetch", "prefetch-depth", "posmap-prefetch", "slot-cache", "trace", "admission":
				fatal(fmt.Errorf("-%s configures an in-process store; with -addr it belongs to the server", f.Name))
			}
		}
	})
	if *duration > 0 && opsSet {
		fatal(fmt.Errorf("-ops and -duration are mutually exclusive; pick one stopping rule"))
	}
	if *duration > 0 {
		*ops = 0
	}
	if *addr != "" {
		addrs := splitAddrs(*addr)
		fig := "net"
		if len(addrs) > 1 {
			fig = "cluster"
		}
		if *figure != "" {
			fig = *figure
		}
		runRemote(addrs, *conns, *clients, *ops, *duration, *readRatio, *zipf, *batch, *rate, *seed, *stamp, *jsonDir, fig)
		return
	}

	cfg := palermo.ShardedStoreConfig{
		Blocks:            *blocks,
		Shards:            *shards,
		Seed:              *seed,
		QueueDepth:        *queue,
		PipelineDepth:     *pipeline,
		TreeTopLevels:     *treetop,
		Prefetch:          *prefetch,
		PrefetchDepth:     *prefetchDepth,
		PosmapPrefetch:    *posmapPrefetch,
		CryptoWorkers:     *cryptoWorkers,
		AdmissionDeadline: *admission,
	}
	if *dir != "" {
		// An explicit -engine wins; otherwise an existing directory's
		// manifest decides (so -verify never needs the flag restated) and
		// a fresh directory defaults to the WAL engine.
		cfg.Engine = *engine
		if cfg.Engine == "" {
			cfg.Engine = palermo.DetectEngine(*dir)
		}
		cfg.Dir = *dir
		cfg.GroupCommit = *groupCommit
		cfg.SlotCacheBytes = *slotCache
	} else if *engine != "" && *engine != palermo.BackendMemory {
		fatal(fmt.Errorf("-engine %s requires -dir", *engine))
	} else if *slotCache != 0 {
		fatal(fmt.Errorf("-slot-cache requires -dir with -engine blockfile"))
	}

	if *verify {
		if *dir == "" {
			fatal(fmt.Errorf("-verify requires -dir"))
		}
		// A directory a cluster node wrote carries its persisted node
		// state; verify it as that node (only its owned shards exist).
		ns, err := cluster.LoadNodeState(*dir)
		if err != nil {
			fatal(err)
		}
		if ns != nil {
			err = verifyClusterNode(ns, cfg, *seed)
		} else {
			err = verifyStore(cfg, *seed)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	st, err := palermo.NewShardedStore(cfg)
	if err != nil {
		fatal(err)
	}
	if *traceFile != "" {
		st.EnableTraces()
	}

	bound := fmt.Sprintf("%d ops", *ops)
	if *duration > 0 {
		bound = (*duration).String()
	}
	fmt.Printf("palermo-load: %d shards, %d clients, %s (%.0f%% reads, zipf %.2f, batch %d) over %d blocks\n",
		st.Shards(), *clients, bound, *readRatio*100, *zipf, *batch, st.Blocks())

	res, err := loadgen.Run(st, loadgen.Options{
		Clients:   *clients,
		Ops:       *ops,
		Duration:  *duration,
		ReadRatio: *readRatio,
		ZipfTheta: *zipf,
		Batch:     *batch,
		Rate:      *rate,
		Seed:      *seed,
	})
	if err != nil {
		fatal(err)
	}
	if *dir != "" || *stamp {
		if err := stampTarget(st, *seed); err != nil {
			fatal(err)
		}
	}
	if *traceFile != "" {
		if err := writeTraces(*traceFile, st); err != nil {
			fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		fatal(err)
	}

	printResult(res)
	if *jsonDir != "" {
		fig := "load"
		if *figure != "" {
			fig = *figure
		}
		if err := writeRecord(*jsonDir, fig, *ops, *seed, st.Shards(), res,
			loadMetrics(res, *clients, *readRatio, *zipf)); err != nil {
			fatal(err)
		}
	}
}

// writeTraces records every shard's serving leaf trace as JSON, the input
// cmd/palermo-sec -serve consumes for the uniformity audit of the live
// path. Captured after the run but before Close, while the workers are
// idle — the traces cover the measured workload plus any stamp pass.
func writeTraces(path string, st *palermo.ShardedStore) error {
	traces := st.LeafTraces()
	buf, err := json.MarshalIndent(traces, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	total := 0
	for _, tr := range traces {
		total += len(tr.Leaves)
	}
	fmt.Printf("  recorded %d serving leaf observations across %d shards to %s\n",
		total, len(traces), path)
	return nil
}

// remoteTarget is what runRemote needs from a dialed handle; both
// *palermo.Client (one address) and *palermo.ClusterClient (several)
// provide it.
type remoteTarget interface {
	loadgen.Target
	Shards() int
	NetStats() palermo.ClientNetStats
	Close() error
}

// runRemote is the -addr mode: the identical closed-loop workload driven
// through palermo.Client over real sockets against a running
// cmd/palermo-server, recorded as BENCH_net.json. Several comma-separated
// addresses dial the cluster-routing client instead (BENCH_cluster.json).
func runRemote(addrs []string, conns, clients, ops int, duration time.Duration, readRatio, zipf float64, batch int, rate float64, seed uint64, stamp bool, jsonDir, figure string) {
	var cl remoteTarget
	var where string
	if len(addrs) > 1 {
		cc, err := palermo.DialCluster(addrs, palermo.ClientConfig{Conns: conns})
		if err != nil {
			fatal(err)
		}
		cl = cc
		where = fmt.Sprintf("cluster %s (epoch %d)", strings.Join(addrs, ","), cc.Epoch())
	} else {
		c, err := palermo.Dial(addrs[0], palermo.ClientConfig{Conns: conns})
		if err != nil {
			fatal(err)
		}
		cl = c
		where = "remote " + addrs[0]
	}
	bound := fmt.Sprintf("%d ops", ops)
	if duration > 0 {
		bound = duration.String()
	}
	fmt.Printf("palermo-load: %s (%d shards, %d conns), %d clients, %s (%.0f%% reads, zipf %.2f, batch %d) over %d blocks\n",
		where, cl.Shards(), conns, clients, bound, readRatio*100, zipf, batch, cl.Blocks())

	res, err := loadgen.Run(cl, loadgen.Options{
		Clients:   clients,
		Ops:       ops,
		Duration:  duration,
		ReadRatio: readRatio,
		ZipfTheta: zipf,
		Batch:     batch,
		Rate:      rate,
		Seed:      seed,
	})
	if err != nil {
		fatal(err)
	}
	// Snapshot the wire counters before the stamp pass so the recorded
	// frame statistics describe the measured workload only.
	net := cl.NetStats()
	if stamp {
		if err := stampTarget(cl, seed); err != nil {
			fatal(err)
		}
	}
	shards := cl.Shards()
	if err := cl.Close(); err != nil {
		fatal(err)
	}

	printResult(res)
	fmt.Printf("  wire: %d frames for %d ops (%d coalesced into shared batch frames)\n",
		net.FramesSent, net.Ops, net.MergedOps)
	if jsonDir != "" {
		metrics := loadMetrics(res, clients, readRatio, zipf)
		metrics["conns"] = float64(conns)
		metrics["frames_sent"] = float64(net.FramesSent)
		metrics["merged_ops"] = float64(net.MergedOps)
		if err := writeRecord(jsonDir, figure, ops, seed, shards, res, metrics); err != nil {
			fatal(err)
		}
	}
}

// stampTarget writes the deterministic verification payloads a later
// -verify pass recomputes. Works over both in-process stores and remote
// clients (the stamp then lands in the server's durable dir).
func stampTarget(st loadgen.Target, seed uint64) error {
	n := stampCount(st.Blocks())
	for id := uint64(0); id < n; id++ {
		if err := st.Write(id, stampPayload(seed, id)); err != nil {
			return err
		}
	}
	fmt.Printf("  stamped %d verification blocks\n", n)
	return nil
}

func printResult(res loadgen.Result) {
	stats := res.Stats
	fmt.Printf("  wall %.2fs  ops/sec %.0f  (%d reads, %d writes, %d dedup fan-outs)\n",
		res.Wall.Seconds(), res.OpsPerSec(), stats.Reads, stats.Writes, stats.DedupHits)
	if res.OfferedRate > 0 {
		fmt.Printf("  open loop: offered %.0f ops/sec, achieved %.0f (%d shed under overload)\n",
			res.OfferedRate, res.AchievedRate, res.ShedOps)
		fmt.Printf("  intended-send lat: read p50 %.0fµs  p99 %.0fµs (n=%d)  |  write p50 %.0fµs  p99 %.0fµs (n=%d)\n",
			res.RunReadLat.P50Us, res.RunReadLat.P99Us, res.RunReadLat.N,
			res.RunWriteLat.P50Us, res.RunWriteLat.P99Us, res.RunWriteLat.N)
	} else if res.ShedOps > 0 {
		fmt.Printf("  %d ops shed under overload (excluded from counts and latency)\n", res.ShedOps)
	}
	fmt.Printf("  read  lat p50 %.0fµs  p99 %.0fµs  mean %.0fµs  (n=%d)\n",
		stats.ReadLat.P50Us, stats.ReadLat.P99Us, stats.ReadLat.MeanUs, stats.ReadLat.N)
	if stats.WriteLat.N > 0 {
		fmt.Printf("  write lat p50 %.0fµs  p99 %.0fµs  mean %.0fµs  (n=%d)\n",
			stats.WriteLat.P50Us, stats.WriteLat.P99Us, stats.WriteLat.MeanUs, stats.WriteLat.N)
	}
	// A warm target's queue/exec percentiles mix every prior run's samples
	// (two snapshots cannot un-mix a histogram) — say so instead of letting
	// them read as run-exact next to numbers that are.
	qualifier := ""
	if res.QueueExecLifetime {
		qualifier = "  (lifetime-weighted: target was warm)"
	}
	fmt.Printf("  queue wait p50 %.0fµs  p99 %.0fµs  |  execute p50 %.0fµs  p99 %.0fµs%s\n",
		stats.QueueLat.P50Us, stats.QueueLat.P99Us, stats.ExecLat.P50Us, stats.ExecLat.P99Us, qualifier)
	fmt.Printf("  DRAM lines/op %.1f  stash peak %d\n",
		res.Traffic.AmplificationFactor, res.Traffic.StashPeak)
	tr := res.Traffic
	if tr.TreeTopHits > 0 || tr.PrefetchIssued > 0 {
		fmt.Printf("  tree-top hits %d (%.1f KiB of path I/O absorbed)  prefetch issued %d / used %d / stale %d\n",
			tr.TreeTopHits, float64(tr.TreeTopHits)*palermo.BlockSize/1024,
			tr.PrefetchIssued, tr.PrefetchUsed, tr.PrefetchStale)
	}
	if tr.SlotCacheHits+tr.SlotCacheMisses > 0 {
		fmt.Printf("  slot cache hits %d / misses %d (%.1f%% of slot reads served resident)\n",
			tr.SlotCacheHits, tr.SlotCacheMisses,
			100*float64(tr.SlotCacheHits)/float64(tr.SlotCacheHits+tr.SlotCacheMisses))
	}
}

func loadMetrics(res loadgen.Result, clients int, readRatio, zipf float64) map[string]float64 {
	stats := res.Stats
	m := map[string]float64{
		"ops_per_sec":       res.OpsPerSec(),
		"clients":           float64(clients),
		"read_ratio":        readRatio,
		"zipf_theta":        zipf,
		"read_p50_us":       stats.ReadLat.P50Us,
		"read_p99_us":       stats.ReadLat.P99Us,
		"write_p50_us":      stats.WriteLat.P50Us,
		"write_p99_us":      stats.WriteLat.P99Us,
		"queue_p50_us":      stats.QueueLat.P50Us,
		"queue_p99_us":      stats.QueueLat.P99Us,
		"exec_p50_us":       stats.ExecLat.P50Us,
		"exec_p99_us":       stats.ExecLat.P99Us,
		"dedup_hits":        float64(stats.DedupHits),
		"shed_ops":          float64(res.ShedOps),
		"lines_per_op":      res.Traffic.AmplificationFactor,
		"tree_top_hits":     float64(res.Traffic.TreeTopHits),
		"bytes_saved":       float64(res.Traffic.TreeTopHits) * palermo.BlockSize,
		"prefetch_issued":   float64(res.Traffic.PrefetchIssued),
		"prefetch_used":     float64(res.Traffic.PrefetchUsed),
		"prefetch_stale":    float64(res.Traffic.PrefetchStale),
		"prefetch_planned":  float64(stats.PrefetchPlanned),
		"slot_cache_hits":   float64(res.Traffic.SlotCacheHits),
		"slot_cache_misses": float64(res.Traffic.SlotCacheMisses),
	}
	if res.QueueExecLifetime {
		// Flags the queue/exec percentiles above as lifetime-weighted (the
		// target was warm); consumers comparing runs should prefer the
		// run-exact read/write numbers.
		m["queue_exec_lifetime"] = 1
	}
	if res.OfferedRate > 0 {
		m["offered_rate"] = res.OfferedRate
		m["achieved_rate"] = res.AchievedRate
		m["openloop_read_p50_us"] = res.RunReadLat.P50Us
		m["openloop_read_p99_us"] = res.RunReadLat.P99Us
		m["openloop_write_p50_us"] = res.RunWriteLat.P50Us
		m["openloop_write_p99_us"] = res.RunWriteLat.P99Us
	}
	return m
}

func stampCount(blocks uint64) uint64 {
	if blocks < stampBlocks {
		return blocks
	}
	return stampBlocks
}

// stampPayload derives the deterministic 64-byte verification payload for
// (seed, id); the -verify process recomputes it independently.
func stampPayload(seed, id uint64) []byte {
	r := rng.New(seed ^ (0x9e3779b97f4a7c15 * (id + 1)))
	buf := make([]byte, palermo.BlockSize)
	for off := 0; off < palermo.BlockSize; off += 8 {
		binary.LittleEndian.PutUint64(buf[off:], r.Uint64())
	}
	return buf
}

// verifyStore reopens a durable store and checks the stamp pass survived:
// every stamped block must read back byte-identical, and the recovered
// traffic counters must show the pre-restart history.
func verifyStore(cfg palermo.ShardedStoreConfig, seed uint64) (err error) {
	t0 := time.Now()
	st, err := palermo.NewShardedStore(cfg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := st.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("verify: close: %w", cerr)
		}
	}()
	rep := st.Traffic()
	if rep.Writes == 0 {
		return fmt.Errorf("verify: reopened store recovered zero writes — nothing persisted in %s", cfg.Dir)
	}
	n := stampCount(st.Blocks())
	for id := uint64(0); id < n; id++ {
		got, err := st.Read(id)
		if err != nil {
			return fmt.Errorf("verify: read of stamped block %d: %w", id, err)
		}
		if want := stampPayload(seed, id); !bytes.Equal(got, want) {
			return fmt.Errorf("verify: stamped block %d diverged after recovery", id)
		}
	}
	fmt.Printf("palermo-load: verified %d stamped blocks in %.2fs (recovered history: %d reads, %d writes, stash peak %d)\n",
		n, time.Since(t0).Seconds(), rep.Reads, rep.Writes, rep.StashPeak)
	return nil
}

// verifyClusterNode reopens one cluster node's directory offline (no
// listener) and checks every stamped block among the shards the node's
// persisted manifest assigns to it. Ids the node does not own live on
// other nodes and are skipped — each node's directory verifies its own
// slice, and running -verify per node covers the whole stamp.
func verifyClusterNode(ns *cluster.NodeState, cfg palermo.ShardedStoreConfig, seed uint64) (err error) {
	t0 := time.Now()
	// Geometry is the manifest's, not the flags' (the flag defaults are
	// for standalone stores and need not match this cluster).
	cfg.Blocks, cfg.Shards = 0, 0
	node, err := palermo.NewClusterNode(palermo.ClusterNodeConfig{Addr: ns.Addr, Store: cfg}, ns.Manifest)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := node.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("verify: close: %w", cerr)
		}
	}()
	rep := node.Traffic()
	if rep.Writes == 0 {
		return fmt.Errorf("verify: reopened node recovered zero writes — nothing persisted in %s", cfg.Dir)
	}
	n := stampCount(node.Blocks())
	checked := uint64(0)
	for id := uint64(0); id < n; id++ {
		if !node.Owns(id) {
			continue
		}
		got, err := node.Read(id)
		if err != nil {
			return fmt.Errorf("verify: read of stamped block %d: %w", id, err)
		}
		if want := stampPayload(seed, id); !bytes.Equal(got, want) {
			return fmt.Errorf("verify: stamped block %d diverged after recovery", id)
		}
		checked++
	}
	if checked == 0 {
		return fmt.Errorf("verify: node %s owns none of the %d stamped blocks", ns.Addr, n)
	}
	fmt.Printf("palermo-load: verified %d of %d stamped blocks on node %s in %.2fs (epoch %d, shards %v; recovered history: %d reads, %d writes)\n",
		checked, n, ns.Addr, time.Since(t0).Seconds(), node.Epoch(), node.OwnedShards(), rep.Reads, rep.Writes)
	return nil
}

// splitAddrs parses the -addr flag's comma-separated address list.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// benchRecord matches the BENCH_*.json schema palermo-bench writes, so the
// serving path joins the same perf trajectory. The figure name ("load" for
// in-process, "net" for -addr) doubles as the file name suffix, so one
// sweep leaves both records side by side for the network-tax diff.
type benchRecord struct {
	Figure      string             `json:"figure"`
	Requests    int                `json:"requests"`
	Seed        uint64             `json:"seed"`
	Workers     int                `json:"workers"` // shard workers here
	Cores       int                `json:"cores"`
	WallSeconds float64            `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics"`
}

func writeRecord(dir, figure string, ops int, seed uint64, shards int, res loadgen.Result, metrics map[string]float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if ops == 0 { // time-bounded run: record the completed count
		ops = int(res.Stats.Reads + res.Stats.Writes)
	}
	rec := benchRecord{
		Figure:      figure,
		Requests:    ops,
		Seed:        seed,
		Workers:     shards,
		Cores:       runtime.GOMAXPROCS(0),
		WallSeconds: res.Wall.Seconds(),
		Metrics:     metrics,
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	name := "BENCH_" + figure + ".json"
	return os.WriteFile(filepath.Join(dir, name), append(buf, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "palermo-load:", err)
	os.Exit(1)
}
