// Command palermo-trace generates and characterizes the Table II LLC-miss
// workload traces.
//
// Usage:
//
//	palermo-trace -list
//	palermo-trace -workload llm -n 20           # dump addresses
//	palermo-trace -characterize                 # locality/reuse table
package main

import (
	"flag"
	"fmt"
	"os"

	"palermo/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list workloads")
	name := flag.String("workload", "", "workload to dump")
	n := flag.Int("n", 20, "addresses to dump")
	char := flag.Bool("characterize", false, "print locality/reuse characteristics")
	lines := flag.Uint64("lines", 1<<28, "protected space in cache lines")
	seed := flag.Uint64("seed", 1, "trace seed")
	record := flag.String("record", "", "record -workload to this trace file (-n references)")
	replay := flag.String("replay", "", "replay a recorded trace file (dumps -n references)")
	flag.Parse()

	switch {
	case *record != "":
		g, err := workload.New(*name, *lines, *seed)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := workload.WriteTrace(f, g, uint64(*n)); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d references of %s to %s\n", *n, *name, *record)
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := workload.ReadTrace(*replay, f)
		if err != nil {
			fatal(err)
		}
		limit := *n
		if limit > tr.Len() {
			limit = tr.Len()
		}
		for i := 0; i < limit; i++ {
			pa, wr := tr.Next()
			op := "R"
			if wr {
				op = "W"
			}
			fmt.Printf("%s 0x%012x\n", op, pa*64)
		}
	case *list:
		for _, wl := range workload.Names() {
			fmt.Println(wl)
		}
	case *char:
		fmt.Printf("%-8s %12s %12s %12s\n", "workload", "locality@4", "locality@64", "unique-frac")
		for _, wl := range workload.Names() {
			g1, err := workload.New(wl, *lines, *seed)
			if err != nil {
				fatal(err)
			}
			g2, _ := workload.New(wl, *lines, *seed)
			g3, _ := workload.New(wl, *lines, *seed)
			fmt.Printf("%-8s %11.1f%% %11.1f%% %11.1f%%\n", wl,
				workload.Locality(g1, 50000, 4)*100,
				workload.Locality(g2, 50000, 64)*100,
				workload.UniqueFrac(g3, 50000)*100)
		}
	case *name != "":
		g, err := workload.New(*name, *lines, *seed)
		if err != nil {
			fatal(err)
		}
		for i := 0; i < *n; i++ {
			pa, wr := g.Next()
			op := "R"
			if wr {
				op = "W"
			}
			fmt.Printf("%s 0x%012x\n", op, pa*64)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "palermo-trace:", err)
	os.Exit(1)
}
