// Command palermo-ctl administers a palermo cluster: it writes the
// initial placement manifest, inspects a live node's manifest, and
// triggers live shard migrations.
//
// Usage:
//
//	palermo-ctl init -blocks 262144 -shards 4 -nodes 127.0.0.1:7070,127.0.0.1:7071 -o manifest.json
//	palermo-ctl manifest -addr 127.0.0.1:7070
//	palermo-ctl migrate -from 127.0.0.1:7070 -shard 2 -to 127.0.0.1:7071
//
// init splits the shard space into contiguous ranges across the listed
// nodes (geometry epoch 1) and writes the manifest file every
// `palermo-server -manifest` node loads at startup. manifest prints the
// placement a running node is serving under — after migrations this is
// the authority, not the startup file. migrate asks the source node to
// stream one shard to the target and flip ownership live; clients learn
// the new placement through wrong-epoch rejections and manifest refetch.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"palermo"
	"palermo/internal/cluster"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "init":
		cmdInit(os.Args[2:])
	case "manifest":
		cmdManifest(os.Args[2:])
	case "migrate":
		cmdMigrate(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `palermo-ctl: cluster administration
  palermo-ctl init -blocks N -shards S -nodes a,b,... -o manifest.json
  palermo-ctl manifest -addr host:port
  palermo-ctl migrate -from host:port -shard S -to host:port`)
	os.Exit(2)
}

func cmdInit(args []string) {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	blocks := fs.Uint64("blocks", 1<<18, "store capacity in 64-byte blocks")
	shards := fs.Int("shards", 4, "independent ORAM shards")
	nodes := fs.String("nodes", "", "comma-separated node addresses, in shard-range order")
	out := fs.String("o", "manifest.json", "output manifest path")
	fs.Parse(args)
	addrs := splitAddrs(*nodes)
	if len(addrs) == 0 {
		fatal(fmt.Errorf("init needs -nodes a,b,..."))
	}
	if *shards <= 0 {
		fatal(fmt.Errorf("init needs -shards > 0"))
	}
	man, err := cluster.EvenSplit(*blocks, uint32(*shards), addrs)
	if err != nil {
		fatal(err)
	}
	if err := man.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("palermo-ctl: wrote %s (epoch %d, %d blocks, %d shards across %d nodes)\n",
		*out, man.Epoch, man.Blocks, man.Shards, len(addrs))
	for _, addr := range man.Nodes() {
		fmt.Printf("  %s: shards %v\n", addr, man.Owned(addr))
	}
}

func cmdManifest(args []string) {
	fs := flag.NewFlagSet("manifest", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "cluster node address")
	fs.Parse(args)
	cl, err := palermo.Dial(*addr, palermo.ClientConfig{})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	raw, err := cl.Manifest()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *addr, err))
	}
	os.Stdout.Write(raw)
	if len(raw) > 0 && raw[len(raw)-1] != '\n' {
		fmt.Println()
	}
}

func cmdMigrate(args []string) {
	fs := flag.NewFlagSet("migrate", flag.ExitOnError)
	from := fs.String("from", "", "source node address (current shard owner)")
	shard := fs.Int("shard", -1, "shard index to migrate")
	to := fs.String("to", "", "target node address")
	fs.Parse(args)
	if *from == "" || *to == "" || *shard < 0 {
		fatal(fmt.Errorf("migrate needs -from, -shard, and -to"))
	}
	cl, err := palermo.Dial(*from, palermo.ClientConfig{})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	if err := cl.Migrate(*shard, *to); err != nil {
		fatal(fmt.Errorf("migrate shard %d %s -> %s: %w", *shard, *from, *to, err))
	}
	fmt.Printf("palermo-ctl: shard %d migrated %s -> %s\n", *shard, *from, *to)
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "palermo-ctl:", err)
	os.Exit(1)
}
