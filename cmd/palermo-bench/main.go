// Command palermo-bench regenerates the paper's evaluation figures and
// tables as text output.
//
// Usage:
//
//	palermo-bench -fig 10              # one figure (3,4,9,10,11,12,13,14a,14b,15)
//	palermo-bench -all                 # everything
//	palermo-bench -fig 10 -requests 2000
//	palermo-bench -run Palermo:llm     # one protocol on one workload
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"palermo"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 3, 4, 9, 10, 11, 12, 13, 14a, 14b, 15, tab2, tab3, ablations, tenants")
	all := flag.Bool("all", false, "regenerate every figure and table")
	requests := flag.Int("requests", 800, "measured ORAM requests per data point")
	run := flag.String("run", "", "single run as Protocol:workload (e.g. Palermo:llm)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	asCSV := flag.Bool("csv", false, "emit CSV instead of text tables (figures 3,4,9,10,11,12,13,14a,14b)")
	flag.Parse()

	o := palermo.Options{Requests: *requests, Seed: *seed}
	csvOut = *asCSV

	if *run != "" {
		if err := single(*run, o); err != nil {
			fatal(err)
		}
		return
	}
	if *all {
		for _, f := range []string{"tab2", "tab3", "3", "4", "9", "10", "11", "12", "13", "14a", "14b", "15", "ablations", "tenants"} {
			if err := figure(f, o); err != nil {
				fatal(err)
			}
		}
		return
	}
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := figure(*fig, o); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "palermo-bench:", err)
	os.Exit(1)
}

func single(spec string, o palermo.Options) error {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want Protocol:workload, got %q", spec)
	}
	var proto palermo.Protocol
	found := false
	for _, p := range palermo.Protocols() {
		if strings.EqualFold(p.String(), parts[0]) {
			proto, found = p, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown protocol %q", parts[0])
	}
	res, err := palermo.Run(proto, parts[1], o)
	if err != nil {
		return err
	}
	fmt.Println(res.Result)
	fmt.Printf("  served lines: %d (%d LLC hits filtered), dummies: %d\n",
		res.ServedLines, res.LLCHits, res.Dummies)
	fmt.Printf("  row-hit %.1f%%, conflicts %.1f%%, avg outstanding %.1f, stash max %v\n",
		res.Mem.RowHitRate*100, res.Mem.RowConflictRate*100, res.Mem.AvgOutstanding, res.StashMax)
	return nil
}

// csvOut selects CSV emission (set from the -csv flag).
var csvOut bool

// csvAble is a result that can render both as a text table and as CSV.
type csvAble interface {
	fmt.Stringer
	CSV(io.Writer) error
}

func emit(r csvAble) error {
	if csvOut {
		return r.CSV(os.Stdout)
	}
	fmt.Println(r)
	return nil
}

func figure(f string, o palermo.Options) error {
	switch f {
	case "3":
		r, err := palermo.Fig3(o)
		if err != nil {
			return err
		}
		return emit(r)
	case "4":
		r, err := palermo.Fig4(o)
		if err != nil {
			return err
		}
		return emit(r)
	case "9":
		r, err := palermo.Fig9(o)
		if err != nil {
			return err
		}
		return emit(r)
	case "10":
		r, err := palermo.Fig10(o)
		if err != nil {
			return err
		}
		return emit(r)
	case "11":
		r, err := palermo.Fig11(o)
		if err != nil {
			return err
		}
		return emit(r)
	case "12":
		r, err := palermo.Fig12(o)
		if err != nil {
			return err
		}
		return emit(r)
	case "13":
		r, err := palermo.Fig13(o)
		if err != nil {
			return err
		}
		return emit(r)
	case "14a":
		r, err := palermo.Fig14a(o)
		if err != nil {
			return err
		}
		return emit(r)
	case "14b":
		r, err := palermo.Fig14b(o)
		if err != nil {
			return err
		}
		return emit(r)
	case "15":
		fmt.Println(palermo.Fig15(8))
	case "tab2":
		fmt.Println(palermo.TableII())
	case "tab3":
		fmt.Println(palermo.TableIII())
	case "ablations":
		for _, fn := range []func(palermo.Options) (palermo.AblationResult, error){
			palermo.AblationHoisting, palermo.AblationTreeTop, palermo.AblationCommitGranularity,
		} {
			r, err := fn(o)
			if err != nil {
				return err
			}
			fmt.Println(r)
		}
		pg, rg, err := palermo.AblationPathMesh(o)
		if err != nil {
			return err
		}
		fmt.Println(pg)
		fmt.Println(rg)
	case "tenants":
		r, err := palermo.TenantIsolation(o)
		if err != nil {
			return err
		}
		fmt.Println(r)
	default:
		return fmt.Errorf("unknown figure %q", f)
	}
	return nil
}
