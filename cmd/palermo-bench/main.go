// Command palermo-bench regenerates the paper's evaluation figures and
// tables as text output.
//
// Usage:
//
//	palermo-bench -fig 10              # one figure (3,4,9,10,11,12,13,14a,14b,15)
//	palermo-bench -all                 # everything
//	palermo-bench -fig 10 -requests 2000
//	palermo-bench -fig 10 -parallel 8  # sweep cells on 8 workers (0 = all cores)
//	palermo-bench -fig 10 -json out/   # also write out/BENCH_fig10.json
//	palermo-bench -run Palermo:llm     # one protocol on one workload
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"palermo"
	"palermo/internal/loadgen"
	"palermo/internal/rng"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 3, 4, 9, 10, 11, 12, 13, 14a, 14b, 15, tab2, tab3, ablations, tenants, store, openloop")
	all := flag.Bool("all", false, "regenerate every figure and table")
	requests := flag.Int("requests", 800, "measured ORAM requests per data point")
	run := flag.String("run", "", "single run as Protocol:workload (e.g. Palermo:llm)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 0, "sweep worker pool size: 0 = all cores, 1 = serial (results are identical either way)")
	asCSV := flag.Bool("csv", false, "emit CSV instead of text tables (figures 3,4,9,10,11,12,13,14a,14b)")
	jsonDir := flag.String("json", "", "directory to write BENCH_<fig>.json perf/metric records into (empty = disabled)")
	flag.Parse()

	o := palermo.Options{Requests: *requests, Seed: *seed, Workers: *parallel}
	csvOut = *asCSV
	benchDir = *jsonDir

	if *run != "" {
		if err := single(*run, o); err != nil {
			fatal(err)
		}
		return
	}
	if *all {
		for _, f := range []string{"tab2", "tab3", "3", "4", "9", "10", "11", "12", "13", "14a", "14b", "15", "ablations", "tenants", "store", "openloop"} {
			if err := figure(f, o); err != nil {
				fatal(err)
			}
		}
		return
	}
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := figure(*fig, o); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "palermo-bench:", err)
	os.Exit(1)
}

func single(spec string, o palermo.Options) error {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want Protocol:workload, got %q", spec)
	}
	var proto palermo.Protocol
	found := false
	for _, p := range palermo.Protocols() {
		if strings.EqualFold(p.String(), parts[0]) {
			proto, found = p, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown protocol %q", parts[0])
	}
	res, err := palermo.Run(proto, parts[1], o)
	if err != nil {
		return err
	}
	fmt.Println(res.Result)
	fmt.Printf("  served lines: %d (%d LLC hits filtered), dummies: %d\n",
		res.ServedLines, res.LLCHits, res.Dummies)
	fmt.Printf("  row-hit %.1f%%, conflicts %.1f%%, avg outstanding %.1f, stash max %v\n",
		res.Mem.RowHitRate*100, res.Mem.RowConflictRate*100, res.Mem.AvgOutstanding, res.StashMax)
	return nil
}

// csvOut selects CSV emission (set from the -csv flag).
var csvOut bool

// benchDir, when non-empty, receives one BENCH_<fig>.json per figure run
// (set from the -json flag).
var benchDir string

// csvAble is a result that can render both as a text table and as CSV.
type csvAble interface {
	fmt.Stringer
	CSV(io.Writer) error
}

func emit(r csvAble) error {
	if csvOut {
		return r.CSV(os.Stdout)
	}
	fmt.Println(r)
	return nil
}

// benchRecord is the machine-readable perf/metric record written per
// figure, so the evaluation's headline numbers and wall-clock trajectory
// can be tracked across revisions.
type benchRecord struct {
	Figure      string             `json:"figure"`
	Requests    int                `json:"requests"`
	Seed        uint64             `json:"seed"`
	Workers     int                `json:"workers"` // 0 = all cores
	Cores       int                `json:"cores"`
	WallSeconds float64            `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics"`
}

// writeRecord writes BENCH_<fig>.json into benchDir.
func writeRecord(f string, o palermo.Options, wall time.Duration, metrics map[string]float64) error {
	if benchDir == "" || len(metrics) == 0 {
		return nil
	}
	if err := os.MkdirAll(benchDir, 0o755); err != nil {
		return err
	}
	rec := benchRecord{
		Figure:      f,
		Requests:    o.Requests,
		Seed:        o.Seed,
		Workers:     o.Workers,
		Cores:       runtime.GOMAXPROCS(0),
		WallSeconds: wall.Seconds(),
		Metrics:     metrics,
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	base := "BENCH_fig" + strings.ReplaceAll(f, "/", "_")
	if f == "openloop" {
		// The open-loop sweep is a methodology artifact, not a paper
		// figure; it keeps its own well-known record name.
		base = "BENCH_openloop"
	}
	name := filepath.Join(benchDir, base+".json")
	return os.WriteFile(name, append(buf, '\n'), 0o644)
}

// storeBench measures the serving path: ops/sec through the synchronous
// Store and through ShardedStore at 1 and 4 shards (GOMAXPROCS closed-loop
// clients), mirroring BenchmarkStoreOps/BenchmarkShardedStoreOps so the
// service layer joins the BENCH perf trajectory. -requests sets the op
// count per configuration.
func storeBench(o palermo.Options, metrics map[string]float64) error {
	const blocks = 1 << 16
	ops := o.Requests * 4 // store ops are far cheaper than simulated requests

	st, err := palermo.NewStore(palermo.StoreConfig{Blocks: blocks, Seed: o.Seed})
	if err != nil {
		return err
	}
	buf := make([]byte, palermo.BlockSize)
	r := rng.New(o.Seed)
	start := time.Now()
	for i := 0; i < ops; i++ {
		id := r.Uint64n(blocks)
		if id%10 == 0 {
			err = st.Write(id, buf)
		} else {
			_, err = st.Read(id)
		}
		if err != nil {
			return err
		}
	}
	storeOps := float64(ops) / time.Since(start).Seconds()
	metrics["store_ops_per_sec"] = storeOps
	fmt.Printf("Store                 %10.0f ops/sec (%d ops, amplification %.1f)\n",
		storeOps, ops, st.Traffic().AmplificationFactor)

	for _, shards := range []int{1, 4} {
		if err := shardedBenchOne(o, shards, blocks, ops, metrics); err != nil {
			return err
		}
	}
	if base := metrics["sharded1_ops_per_sec"]; base > 0 {
		metrics["shard_scaling_x"] = metrics["sharded4_ops_per_sec"] / base
		fmt.Printf("scaling 1 -> 4 shards %9.2fx\n", metrics["shard_scaling_x"])
	}
	return nil
}

// shardedBenchOne measures one ShardedStore configuration through the
// shared internal/loadgen driver; the deferred Close keeps error paths
// from leaking shard workers into later figures.
func shardedBenchOne(o palermo.Options, shards int, blocks uint64, ops int, metrics map[string]float64) error {
	sst, err := palermo.NewShardedStore(palermo.ShardedStoreConfig{
		Blocks: blocks, Shards: shards, Seed: o.Seed,
	})
	if err != nil {
		return err
	}
	defer sst.Close()
	clients := runtime.GOMAXPROCS(0) * 2
	res, err := loadgen.Run(sst, loadgen.Options{
		Clients:   clients,
		Ops:       ops,
		ReadRatio: 0.9,
		Batch:     1,
		Seed:      o.Seed,
	})
	if err != nil {
		return err
	}
	metrics[fmt.Sprintf("sharded%d_ops_per_sec", shards)] = res.OpsPerSec()
	fmt.Printf("ShardedStore shards=%d %10.0f ops/sec (p50 %.0fµs, p99 %.0fµs, %d clients)\n",
		shards, res.OpsPerSec(), res.Stats.ReadLat.P50Us, res.Stats.ReadLat.P99Us, clients)
	return nil
}

// openLoopBench is the coordinated-omission sweep: measure the store's
// closed-loop saturation throughput, then drive fresh stores open-loop
// at offered rates spanning saturation (0.5x to 2x) and record the
// intended-send-time latency curve plus the overload-shedding response.
// With -json the record lands in BENCH_openloop.json. Each rate gets a
// fresh store so every percentile is run-exact (never lifetime-
// weighted), and the admission deadline keeps the overloaded points
// shedding instead of queueing without bound — the admitted ops' p99
// stays bounded while the shed count carries the excess.
func openLoopBench(o palermo.Options, metrics map[string]float64) error {
	const (
		blocks    = 1 << 16
		shards    = 4
		perRate   = 1500 * time.Millisecond
		admission = 200 * time.Microsecond
		queue     = 8
	)
	// Open-loop clients issue synchronously, so each contributes at most
	// one outstanding operation: offering genuine overload needs many
	// more clients than the closed-loop sweeps use. The shallow queue +
	// tight admission deadline make the overloaded points shed (bounded
	// queue wait for admitted ops) instead of queueing without bound.
	clients := runtime.GOMAXPROCS(0) * 8
	if clients < 64 {
		clients = 64
	}
	newStore := func() (*palermo.ShardedStore, error) {
		return palermo.NewShardedStore(palermo.ShardedStoreConfig{
			Blocks: blocks, Shards: shards, Seed: o.Seed,
			QueueDepth: queue, AdmissionDeadline: admission,
		})
	}

	// Closed-loop saturation reference: self-clocking clients going as
	// fast as completions allow. Its throughput anchors the sweep and its
	// p99 is the number coordinated omission flatters.
	st, err := newStore()
	if err != nil {
		return err
	}
	res, err := loadgen.Run(st, loadgen.Options{
		Clients: clients, Ops: o.Requests * 4, ReadRatio: 0.9, Batch: 1, Seed: o.Seed,
	})
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	sat := res.OpsPerSec()
	closedP99 := res.Stats.ReadLat.P99Us
	metrics["closedloop_ops_per_sec"] = sat
	metrics["closedloop_read_p99_us"] = closedP99
	fmt.Printf("closed-loop saturation %9.0f ops/sec (read p99 %.0fµs, %d clients, admission %v)\n",
		sat, closedP99, clients, admission)
	fmt.Printf("%8s %12s %12s %10s %22s\n", "offered", "rate", "achieved", "shed", "read p99 intended (µs)")
	for _, mul := range []float64{0.5, 0.9, 1.2, 2.0} {
		rate := sat * mul
		st, err := newStore()
		if err != nil {
			return err
		}
		r, err := loadgen.Run(st, loadgen.Options{
			Clients: clients, Duration: perRate, ReadRatio: 0.9, Batch: 1,
			Rate: rate, Seed: o.Seed,
		})
		if cerr := st.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		key := fmt.Sprintf("x%03d", int(mul*100+0.5))
		metrics["offered_"+key] = r.OfferedRate
		metrics["achieved_"+key] = r.AchievedRate
		metrics["shed_"+key] = float64(r.ShedOps)
		metrics["openloop_read_p99_us_"+key] = r.RunReadLat.P99Us
		metrics["admitted_read_p99_us_"+key] = r.Stats.ReadLat.P99Us
		metrics["queue_p99_us_"+key] = r.Stats.QueueLat.P99Us
		fmt.Printf("  %.2fx %12.0f %12.0f %10d %22.0f\n",
			mul, rate, r.AchievedRate, r.ShedOps, r.RunReadLat.P99Us)
	}
	return nil
}

// figure regenerates one figure, emits it, and (with -json) records its
// headline metrics — the same ones bench_test.go reports — plus wall-clock.
func figure(f string, o palermo.Options) error {
	start := time.Now()
	metrics := map[string]float64{}
	switch f {
	case "3":
		r, err := palermo.Fig3(o)
		if err != nil {
			return err
		}
		metrics["sync_pct"] = r.SyncTotal() * 100
		metrics["row_hit_pct"] = r.RowHit * 100
		if err := emit(r); err != nil {
			return err
		}
	case "4":
		r, err := palermo.Fig4(o)
		if err != nil {
			return err
		}
		metrics["peak_dummy_pct"] = 0 // max over both arms; 0 is a valid record
		for _, d := range append(append([]float64{}, r.PrDummy...), r.FatDummy...) {
			if d*100 > metrics["peak_dummy_pct"] {
				metrics["peak_dummy_pct"] = d * 100
			}
		}
		if err := emit(r); err != nil {
			return err
		}
	case "9":
		r, err := palermo.Fig9(o)
		if err != nil {
			return err
		}
		metrics["worst_mutual_info_bits"] = 0 // MI ~ 0 is the expected result
		for _, row := range r.Rows {
			if row.MutualInfo > metrics["worst_mutual_info_bits"] {
				metrics["worst_mutual_info_bits"] = row.MutualInfo
			}
		}
		if err := emit(r); err != nil {
			return err
		}
	case "10":
		r, err := palermo.Fig10(o)
		if err != nil {
			return err
		}
		for p, proto := range r.Protocols {
			switch proto {
			case palermo.ProtoPalermo:
				metrics["palermo_gmean_x"] = r.GMean[p]
			case palermo.ProtoPalermoPF:
				metrics["palermo_pf_gmean_x"] = r.GMean[p]
			}
		}
		if err := emit(r); err != nil {
			return err
		}
	case "11":
		r, err := palermo.Fig11(o)
		if err != nil {
			return err
		}
		metrics["outstanding_ratio_x"], metrics["bandwidth_ratio_x"] = r.Ratios()
		if err := emit(r); err != nil {
			return err
		}
	case "12":
		r, err := palermo.Fig12(o)
		if err != nil {
			return err
		}
		metrics["max_stash_tags"] = 0
		for _, m := range r.Max {
			if float64(m) > metrics["max_stash_tags"] {
				metrics["max_stash_tags"] = float64(m)
			}
		}
		if err := emit(r); err != nil {
			return err
		}
	case "13":
		r, err := palermo.Fig13(o)
		if err != nil {
			return err
		}
		metrics["llm_best_speedup_x"] = 0
		for w, wl := range r.Workloads {
			if wl != "llm" {
				continue
			}
			for _, v := range r.Speedup[w] {
				if v > metrics["llm_best_speedup_x"] {
					metrics["llm_best_speedup_x"] = v
				}
			}
		}
		if err := emit(r); err != nil {
			return err
		}
	case "14a":
		r, err := palermo.Fig14a(o)
		if err != nil {
			return err
		}
		metrics["z16_speedup_x"] = r.Speedup[2]
		if err := emit(r); err != nil {
			return err
		}
	case "14b":
		r, err := palermo.Fig14b(o)
		if err != nil {
			return err
		}
		metrics["pe8_speedup_x"] = r.Speedup[3]
		if err := emit(r); err != nil {
			return err
		}
	case "15":
		m := palermo.Fig15(8)
		metrics["area_mm2"], metrics["power_w"] = m.TotalArea(), m.TotalPower()
		fmt.Println(m)
	case "tab2":
		fmt.Println(palermo.TableII())
	case "tab3":
		fmt.Println(palermo.TableIII())
	case "ablations":
		for _, fn := range []func(palermo.Options) (palermo.AblationResult, error){
			palermo.AblationHoisting, palermo.AblationTreeTop, palermo.AblationCommitGranularity,
		} {
			r, err := fn(o)
			if err != nil {
				return err
			}
			fmt.Println(r)
		}
		pg, rg, err := palermo.AblationPathMesh(o)
		if err != nil {
			return err
		}
		metrics["path_mesh_gain_x"], metrics["ring_mesh_gain_x"] = pg.Gain(), rg.Gain()
		fmt.Println(pg)
		fmt.Println(rg)
	case "store":
		if err := storeBench(o, metrics); err != nil {
			return err
		}
	case "openloop":
		if err := openLoopBench(o, metrics); err != nil {
			return err
		}
	case "tenants":
		r, err := palermo.TenantIsolation(o)
		if err != nil {
			return err
		}
		metrics["tenant_mi_bits"] = r.MutualInfo
		fmt.Println(r)
	default:
		return fmt.Errorf("unknown figure %q", f)
	}
	return writeRecord(f, o, time.Since(start), metrics)
}
