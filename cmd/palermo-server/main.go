// Command palermo-server serves a sharded oblivious store over TCP: the
// wire-protocol front end that turns the in-process ShardedStore into a
// network service palermo.Client (and palermo-load -addr) can drive.
//
// Usage:
//
//	palermo-server                                  # 4 shards, 2^18 blocks on 127.0.0.1:7070
//	palermo-server -addr :7070 -shards 8            # public listener, 8 shards
//	palermo-server -dir /data/palermo               # durable WAL backend under -dir
//	palermo-server -max-inflight 128 -idle 5m       # per-conn window + idle reaping
//	palermo-server -pipeline 4 -treetop 6 -prefetch # serving-path optimizations (§10)
//
// The server prints one "listening on" line once the socket is bound (CI
// and scripts wait for it), then serves until SIGINT/SIGTERM. Shutdown is
// graceful and ordered: the network layer drains first (in-flight
// requests complete and their responses flush), then the store closes —
// with -dir that final close checkpoints every shard, so a clean stop is
// always recoverable with `palermo-load -dir ... -verify`.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"palermo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "TCP listen address")
	shards := flag.Int("shards", 4, "independent ORAM shards")
	blocks := flag.Uint64("blocks", 1<<18, "store capacity in 64-byte blocks (0 = store default)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	pipeline := flag.Int("pipeline", 0, "per-shard pipeline depth (0 = default, 1 = serial workers)")
	treetop := flag.Int("treetop", 0, "resident tree-top cache levels per engine space (0 = byte-budget default)")
	prefetch := flag.Bool("prefetch", false, "enable the batch-admission prefetch planner (needs pipeline depth > 1)")
	seed := flag.Uint64("seed", 1, "base seed (shards derive theirs from it)")
	dir := flag.String("dir", "", "durable store directory (selects the WAL backend)")
	groupCommit := flag.Int("group-commit", 0, "WAL appends per fsync batch (0 = default)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "writes between WAL compaction checkpoints (0 = default, <0 disables)")
	maxInFlight := flag.Int("max-inflight", 0, "per-connection in-flight request window (0 = default 64)")
	maxBatch := flag.Int("max-batch", 0, "largest accepted batch frame in ops (0 = default 4096)")
	idle := flag.Duration("idle", 2*time.Minute, "close connections idle for this long (0 = never)")
	flag.Parse()

	cfg := palermo.ShardedStoreConfig{
		Blocks:          *blocks,
		Shards:          *shards,
		Seed:            *seed,
		QueueDepth:      *queue,
		PipelineDepth:   *pipeline,
		TreeTopLevels:   *treetop,
		Prefetch:        *prefetch,
		CheckpointEvery: *checkpointEvery,
	}
	if *dir != "" {
		cfg.Backend = palermo.BackendWAL
		cfg.Dir = *dir
		cfg.GroupCommit = *groupCommit
	}
	st, err := palermo.NewShardedStore(cfg)
	if err != nil {
		fatal(err)
	}
	srv, err := palermo.NewServer(st, palermo.ServerConfig{
		MaxInFlight: *maxInFlight,
		MaxBatch:    *maxBatch,
		IdleTimeout: *idle,
	})
	if err != nil {
		st.Close()
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		st.Close()
		fatal(err)
	}
	durability := "in-memory"
	if *dir != "" {
		durability = "durable in " + *dir
	}
	fmt.Printf("palermo-server: listening on %s (%d shards, %d blocks, %s)\n",
		ln.Addr(), st.Shards(), st.Blocks(), durability)

	// Serve until a signal, then drain the network layer before the store
	// so every accepted request completes against an open store.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case sig := <-sigc:
		fmt.Printf("palermo-server: %v — draining\n", sig)
	case err := <-serveErr:
		st.Close()
		fatal(err)
	}
	if err := srv.Close(); err != nil {
		st.Close()
		fatal(err)
	}
	ss := st.Stats()
	if err := st.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("palermo-server: stopped (%d reads, %d writes served)\n", ss.Reads, ss.Writes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "palermo-server:", err)
	os.Exit(1)
}
