// Command palermo-server serves a sharded oblivious store over TCP: the
// wire-protocol front end that turns the in-process ShardedStore into a
// network service palermo.Client (and palermo-load -addr) can drive.
//
// Usage:
//
//	palermo-server                                  # 4 shards, 2^18 blocks on 127.0.0.1:7070
//	palermo-server -addr :7070 -shards 8            # public listener, 8 shards
//	palermo-server -dir /data/palermo               # durable WAL backend under -dir
//	palermo-server -max-inflight 128 -idle 5m       # per-conn window + idle reaping
//	palermo-server -pipeline 4 -treetop 6 -prefetch # serving-path optimizations (§10)
//	palermo-server -admission 50ms                  # shed queued requests older than 50ms (retry status)
//	palermo-server -metrics 127.0.0.1:9090 -pprof   # plain-text /metrics + pprof operability listener
//	palermo-server -config node.json                # flags from a reviewed JSON file
//	palermo-server -manifest cluster.json -addr ... # cluster node: serve owned shards only
//
// -config loads the same keys as the flags from a JSON file (see
// internal/cluster.ServerConfig); a flag explicitly set on the command
// line overrides its file value, so `-config node.json -addr :7071`
// reuses one file across nodes.
//
// -manifest selects cluster mode: the node loads the placement manifest
// (palermo-ctl init writes one), serves only the contiguous shard ranges
// the manifest assigns to -addr, answers manifest fetches, and accepts
// live shard migrations. Requests for shards it does not own are rejected
// with a wrong-epoch status so stale clients refetch and re-route.
//
// The server prints one "listening on" line once the socket is bound (CI
// and scripts wait for it), then serves until SIGINT/SIGTERM. Shutdown is
// graceful and ordered: the network layer drains first (in-flight
// requests complete and their responses flush), then the store closes —
// with -dir that final close checkpoints every shard, so a clean stop is
// always recoverable with `palermo-load -dir ... -verify`.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"palermo"
	"palermo/internal/cluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "TCP listen address")
	shards := flag.Int("shards", 4, "independent ORAM shards")
	blocks := flag.Uint64("blocks", 1<<18, "store capacity in 64-byte blocks (0 = store default)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	pipeline := flag.Int("pipeline", 0, "per-shard pipeline depth (0 = default, 1 = serial workers)")
	treetop := flag.Int("treetop", 0, "resident tree-top cache levels per engine space (0 = byte-budget default)")
	prefetch := flag.Bool("prefetch", false, "enable the batch-admission prefetch planner (needs pipeline depth > 1)")
	prefetchDepth := flag.Int("prefetch-depth", 0, "planner look-ahead in predicted batches (0/1 = one-batch planner; needs -prefetch)")
	posmapPrefetch := flag.Bool("posmap-prefetch", false, "also announce each planned read's posmap-group sibling lines (needs -prefetch)")
	seed := flag.Uint64("seed", 1, "base seed (shards derive theirs from it)")
	dir := flag.String("dir", "", "durable store directory (selects a durable engine; see -engine)")
	engine := flag.String("engine", "", `storage engine with -dir: "wal" (default) or "blockfile" (paged direct-I/O slots)`)
	groupCommit := flag.Int("group-commit", 0, "durable-log appends per fsync batch (0 = default)")
	cryptoWorkers := flag.Int("crypto-workers", 0, "parallel seal/unseal workers per shard (0 = inline; needs pipeline depth > 1)")
	slotCache := flag.Int("slot-cache", 0, "blockfile slot read-cache budget in bytes per shard (0 = off; needs -engine blockfile)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "writes between WAL compaction checkpoints (0 = default, <0 disables)")
	maxInFlight := flag.Int("max-inflight", 0, "per-connection in-flight request window (0 = default 64)")
	maxBatch := flag.Int("max-batch", 0, "largest accepted batch frame in ops (0 = default 4096)")
	idle := flag.Duration("idle", 2*time.Minute, "close connections idle for this long (0 = never)")
	admission := flag.Duration("admission", 0, "overload-shedding admission deadline: queued requests older than this are dropped with a retry status (0 = never shed)")
	metricsAddr := flag.String("metrics", "", "operability listener address serving plain-text /metrics (empty = off)")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof on the -metrics listener (keep it private)")
	configPath := flag.String("config", "", "JSON config file; explicitly-set flags override its values")
	manifest := flag.String("manifest", "", "placement manifest path (selects cluster mode)")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *configPath != "" {
		fc, err := cluster.LoadConfig(*configPath)
		if err != nil {
			fatal(err)
		}
		// A flag given on the command line wins over its config-file value.
		applyConfig(fc, set, addr, shards, blocks, queue, pipeline, treetop, prefetch,
			prefetchDepth, posmapPrefetch, slotCache,
			seed, dir, engine, groupCommit, checkpointEvery, cryptoWorkers, maxInFlight, maxBatch, idle,
			admission, metricsAddr, pprofOn, manifest)
		if fc.Blocks != 0 {
			set["blocks"] = true
		}
		if fc.Shards != 0 {
			set["shards"] = true
		}
	}

	storeCfg := palermo.ShardedStoreConfig{
		Blocks:            *blocks,
		Shards:            *shards,
		Seed:              *seed,
		QueueDepth:        *queue,
		PipelineDepth:     *pipeline,
		TreeTopLevels:     *treetop,
		Prefetch:          *prefetch,
		PrefetchDepth:     *prefetchDepth,
		PosmapPrefetch:    *posmapPrefetch,
		CheckpointEvery:   *checkpointEvery,
		CryptoWorkers:     *cryptoWorkers,
		AdmissionDeadline: *admission,
	}
	if *dir != "" {
		storeCfg.Engine = resolveEngineFlag(*dir, *engine)
		storeCfg.Dir = *dir
		storeCfg.GroupCommit = *groupCommit
		storeCfg.SlotCacheBytes = *slotCache
	} else if *engine != "" && *engine != palermo.BackendMemory {
		fatal(fmt.Errorf("-engine %s requires -dir", *engine))
	} else if *slotCache != 0 {
		fatal(fmt.Errorf("-slot-cache requires -dir with -engine blockfile"))
	}
	srvCfg := palermo.ServerConfig{
		MaxInFlight: *maxInFlight,
		MaxBatch:    *maxBatch,
		IdleTimeout: *idle,
	}
	durability := "in-memory"
	if *dir != "" {
		durability = fmt.Sprintf("durable in %s (%s engine)", *dir, storeCfg.Engine)
	}

	if *manifest != "" {
		// Geometry belongs to the manifest in cluster mode: the flag
		// defaults give way, while explicitly-set values are validated
		// against it (a mismatch is a configuration error, not adapted to).
		if !set["blocks"] {
			storeCfg.Blocks = 0
		}
		if !set["shards"] {
			storeCfg.Shards = 0
		}
		runCluster(*addr, *manifest, storeCfg, srvCfg, durability, *metricsAddr, *pprofOn)
		return
	}

	st, err := palermo.NewShardedStore(storeCfg)
	if err != nil {
		fatal(err)
	}
	startMetrics(*metricsAddr, palermo.MetricsVars{
		Service:     st.Stats,
		Traffic:     st.Traffic,
		QueueDepths: st.QueueDepths,
		FsyncLag:    st.FsyncLag,
	}, *pprofOn)
	srv, err := palermo.NewServer(st, srvCfg)
	if err != nil {
		st.Close()
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		st.Close()
		fatal(err)
	}
	fmt.Printf("palermo-server: listening on %s (%d shards, %d blocks, %s)\n",
		ln.Addr(), st.Shards(), st.Blocks(), durability)
	serveLoop(ln, srv, st.Close, func() (uint64, uint64) {
		ss := st.Stats()
		return ss.Reads, ss.Writes
	})
}

// startMetrics binds the operability listener when -metrics is set. The
// listener lives for the whole process: scrapes race shutdown at worst,
// and every source it reads stays safe to call after Close.
func startMetrics(addr string, vars palermo.MetricsVars, pprofOn bool) {
	if addr == "" {
		return
	}
	ms, err := palermo.ServeMetrics(addr, vars, pprofOn)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("palermo-server: metrics on http://%s/metrics\n", ms.Addr())
}

// runCluster serves one cluster node: the manifest decides which shards
// this address owns, and the node handles manifest fetches, wrong-epoch
// rejection of misrouted requests, and live shard migration.
func runCluster(addr, manifestPath string, storeCfg palermo.ShardedStoreConfig, srvCfg palermo.ServerConfig, durability, metricsAddr string, pprofOn bool) {
	man, err := cluster.Load(manifestPath)
	if err != nil {
		fatal(err)
	}
	node, err := palermo.NewClusterNode(palermo.ClusterNodeConfig{Addr: addr, Store: storeCfg}, man)
	if err != nil {
		fatal(err)
	}
	startMetrics(metricsAddr, palermo.MetricsVars{
		Service:     node.ServiceStats,
		Traffic:     node.Traffic,
		QueueDepths: node.QueueDepths,
		FsyncLag:    node.FsyncLag,
	}, pprofOn)
	srv, err := palermo.NewClusterServer(node, srvCfg)
	if err != nil {
		node.Close()
		fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		node.Close()
		fatal(err)
	}
	fmt.Printf("palermo-server: listening on %s (cluster node %s, epoch %d, owns shards %v of %d, %d blocks, %s)\n",
		ln.Addr(), node.Addr(), node.Epoch(), node.OwnedShards(), node.Shards(), node.Blocks(), durability)
	serveLoop(ln, srv, node.Close, func() (uint64, uint64) {
		ws := node.Stats()
		return ws.Reads, ws.Writes
	})
}

// serveLoop serves until a signal, then drains the network layer before
// closing the store so every accepted request completes against an open
// store.
func serveLoop(ln net.Listener, srv *palermo.Server, closeStore func() error, stats func() (uint64, uint64)) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case sig := <-sigc:
		fmt.Printf("palermo-server: %v — draining\n", sig)
	case err := <-serveErr:
		closeStore()
		fatal(err)
	}
	if err := srv.Close(); err != nil {
		closeStore()
		fatal(err)
	}
	reads, writes := stats()
	if err := closeStore(); err != nil {
		fatal(err)
	}
	fmt.Printf("palermo-server: stopped (%d reads, %d writes served)\n", reads, writes)
}

// applyConfig copies every config-file value whose flag the command line
// did not explicitly set. Zero-valued config keys leave the flag default
// alone (the file mirrors the flags' zero-means-default convention).
func applyConfig(fc *cluster.ServerConfig, set map[string]bool,
	addr *string, shards *int, blocks *uint64, queue, pipeline, treetop *int, prefetch *bool,
	prefetchDepth *int, posmapPrefetch *bool, slotCache *int,
	seed *uint64, dir, engine *string, groupCommit, checkpointEvery, cryptoWorkers, maxInFlight, maxBatch *int,
	idle *time.Duration, admission *time.Duration, metricsAddr *string, pprofOn *bool, manifest *string) {
	if !set["addr"] && fc.Addr != "" {
		*addr = fc.Addr
	}
	if !set["shards"] && fc.Shards != 0 {
		*shards = fc.Shards
	}
	if !set["blocks"] && fc.Blocks != 0 {
		*blocks = fc.Blocks
	}
	if !set["queue"] && fc.Queue != 0 {
		*queue = fc.Queue
	}
	if !set["pipeline"] && fc.Pipeline != 0 {
		*pipeline = fc.Pipeline
	}
	if !set["treetop"] && fc.TreeTop != 0 {
		*treetop = fc.TreeTop
	}
	if !set["prefetch"] && fc.Prefetch {
		*prefetch = true
	}
	if !set["prefetch-depth"] && fc.PrefetchDepth != 0 {
		*prefetchDepth = fc.PrefetchDepth
	}
	if !set["posmap-prefetch"] && fc.PosmapPrefetch {
		*posmapPrefetch = true
	}
	if !set["slot-cache"] && fc.SlotCache != 0 {
		*slotCache = fc.SlotCache
	}
	if !set["seed"] && fc.Seed != 0 {
		*seed = fc.Seed
	}
	if !set["dir"] && fc.Dir != "" {
		*dir = fc.Dir
	}
	if !set["engine"] && fc.Engine != "" {
		*engine = fc.Engine
	}
	if !set["group-commit"] && fc.GroupCommit != 0 {
		*groupCommit = fc.GroupCommit
	}
	if !set["crypto-workers"] && fc.CryptoWorkers != 0 {
		*cryptoWorkers = fc.CryptoWorkers
	}
	if !set["checkpoint-every"] && fc.CheckpointEvery != 0 {
		*checkpointEvery = fc.CheckpointEvery
	}
	if !set["max-inflight"] && fc.MaxInFlight != 0 {
		*maxInFlight = fc.MaxInFlight
	}
	if !set["max-batch"] && fc.MaxBatch != 0 {
		*maxBatch = fc.MaxBatch
	}
	if !set["idle"] && fc.Idle != 0 {
		*idle = time.Duration(fc.Idle)
	}
	if !set["admission"] && fc.Admission != 0 {
		*admission = time.Duration(fc.Admission)
	}
	if !set["metrics"] && fc.Metrics != "" {
		*metricsAddr = fc.Metrics
	}
	if !set["pprof"] && fc.Pprof {
		*pprofOn = true
	}
	if !set["manifest"] && fc.Manifest != "" {
		*manifest = fc.Manifest
	}
}

// resolveEngineFlag picks the storage engine for -dir: an explicit
// -engine wins; otherwise an existing directory's manifest decides (so
// reopening a blockfile store needs no flag), and a fresh directory gets
// the historical WAL default.
func resolveEngineFlag(dir, engine string) string {
	if engine != "" {
		return engine
	}
	return palermo.DetectEngine(dir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "palermo-server:", err)
	os.Exit(1)
}
