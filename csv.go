package palermo

// CSV export for every experiment result, so figures can be re-plotted
// outside the text renderings (palermo-bench -csv).

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// CSV writes Fig 3 as rows of workload bandwidth plus breakdown rows.
func (r Fig3Result) CSV(w io.Writer) error {
	rows := [][]string{}
	for i, wl := range r.Workloads {
		rows = append(rows, []string{"bandwidth", wl, f(r.Bandwidth[i])})
	}
	labels := []string{"data", "pos1", "pos2"}
	for l := 0; l < 3; l++ {
		rows = append(rows, []string{"dram_frac", labels[l], f(r.DramFrac[l])})
		rows = append(rows, []string{"sync_frac", labels[l], f(r.SyncFrac[l])})
	}
	return writeCSV(w, []string{"series", "key", "value"}, rows)
}

// CSV writes Fig 4 as one row per prefetch length.
func (r Fig4Result) CSV(w io.Writer) error {
	rows := [][]string{}
	for i, pf := range r.Lengths {
		rows = append(rows, []string{
			strconv.Itoa(pf),
			f(r.PrSpeedup[i]), f(r.PrDummy[i]),
			f(r.FatSpeedup[i]), f(r.FatDummy[i]),
		})
	}
	return writeCSV(w, []string{"pf", "proram_speedup", "proram_dummy", "laoram_speedup", "laoram_dummy"}, rows)
}

// CSV writes Fig 9 as one row per workload.
func (r Fig9Result) CSV(w io.Writer) error {
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload, f(row.RowHit), f(row.BankConf), f(row.MutualInfo),
			f(row.P1), f(row.P2), f(row.LatMedian), f(row.LatP10), f(row.LatP90),
			f(row.LeafChi2P),
		})
	}
	return writeCSV(w, []string{"workload", "row_hit", "bank_conflict", "mutual_info",
		"p1", "p2", "lat_median", "lat_p10", "lat_p90", "leaf_p"}, rows)
}

// CSV writes Fig 10 as one row per (protocol, workload) cell.
func (r Fig10Result) CSV(w io.Writer) error {
	rows := [][]string{}
	for p, proto := range r.Protocols {
		for wi, wl := range r.Workloads {
			rows = append(rows, []string{proto.String(), wl, f(r.Speedup[p][wi])})
		}
		rows = append(rows, []string{proto.String(), "gmean", f(r.GMean[p])})
	}
	return writeCSV(w, []string{"protocol", "workload", "speedup"}, rows)
}

// CSV writes Fig 11 as one row per workload.
func (r Fig11Result) CSV(w io.Writer) error {
	rows := [][]string{}
	for i, wl := range r.Workloads {
		rows = append(rows, []string{wl, f(r.RingBW[i]), f(r.PalBW[i]), f(r.RingOut[i]), f(r.PalOut[i])})
	}
	return writeCSV(w, []string{"workload", "ring_bw", "palermo_bw", "ring_outstanding", "palermo_outstanding"}, rows)
}

// CSV writes Fig 12 as one row per (workload, progress%) sample.
func (r Fig12Result) CSV(w io.Writer) error {
	rows := [][]string{}
	for i, wl := range r.Workloads {
		for j, v := range r.Samples[i] {
			rows = append(rows, []string{wl, strconv.Itoa(j), strconv.Itoa(v)})
		}
	}
	return writeCSV(w, []string{"workload", "sample", "stash_tags"}, rows)
}

// CSV writes Fig 13 as one row per (workload, prefetch) cell.
func (r Fig13Result) CSV(w io.Writer) error {
	rows := [][]string{}
	for i, wl := range r.Workloads {
		for j, pf := range r.Lengths {
			rows = append(rows, []string{wl, strconv.Itoa(pf), f(r.Speedup[i][j])})
		}
	}
	return writeCSV(w, []string{"workload", "pf", "speedup"}, rows)
}

// CSV writes Fig 14a as one row per configuration.
func (r Fig14aResult) CSV(w io.Writer) error {
	rows := [][]string{}
	for i, zsa := range r.ZSA {
		rows = append(rows, []string{
			strconv.Itoa(zsa[0]), strconv.Itoa(zsa[1]), strconv.Itoa(zsa[2]),
			f(r.Speedup[i]), strconv.Itoa(r.Stash[i]),
		})
	}
	return writeCSV(w, []string{"z", "s", "a", "speedup", "stash_max"}, rows)
}

// CSV writes Fig 14b as one row per column count.
func (r Fig14bResult) CSV(w io.Writer) error {
	rows := [][]string{}
	for i, c := range r.Columns {
		rows = append(rows, []string{strconv.Itoa(c), f(r.Speedup[i]), f(r.BW[i])})
	}
	return writeCSV(w, []string{"columns", "speedup", "bandwidth"}, rows)
}

// ResultCSVHeader is the per-run export header used by RunResult.CSVRow.
var ResultCSVHeader = []string{
	"protocol", "workload", "prefetch", "requests", "served_lines", "dummies",
	"cycles", "miss_per_s", "bandwidth", "row_hit", "queue_occ", "sync_frac",
	"stash_max0", "stash_over0",
}

// CSVRow flattens a run for spreadsheet-style aggregation.
func (r RunResult) CSVRow() []string {
	row := []string{
		r.Protocol.String(), r.Workload, strconv.Itoa(r.Prefetch),
		strconv.FormatUint(r.Requests, 10),
		strconv.FormatUint(r.ServedLines, 10),
		strconv.FormatUint(r.Dummies, 10),
		fmt.Sprintf("%d", r.Cycles),
		f(r.MissesPerSecond()),
		f(r.Mem.BandwidthUtil),
		f(r.Mem.RowHitRate),
		f(r.Mem.AvgQueueOcc),
		f(r.SyncFraction()),
	}
	if len(r.StashMax) > 0 {
		row = append(row, strconv.Itoa(r.StashMax[0]))
	} else {
		row = append(row, "0")
	}
	if len(r.StashOver) > 0 {
		row = append(row, strconv.FormatUint(r.StashOver[0], 10))
	} else {
		row = append(row, "0")
	}
	return row
}
