package palermo

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"palermo/internal/rng"
	"palermo/internal/shard"
)

func testShardedStore(t *testing.T, shards int) *ShardedStore {
	t.Helper()
	st, err := NewShardedStore(ShardedStoreConfig{Blocks: 1 << 14, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestShardedStoreRoundTrip(t *testing.T) {
	st := testShardedStore(t, 4)
	if err := st.Write(7, block(0xAA)); err != nil {
		t.Fatal(err)
	}
	got, err := st.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block(0xAA)) {
		t.Fatal("round trip failed")
	}
	// Unwritten blocks read as zeros, like Store.
	zero, err := st.Read(4242)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zero, make([]byte, BlockSize)) {
		t.Fatal("unwritten block must read as zeros")
	}
}

func TestShardedStoreErrors(t *testing.T) {
	st := testShardedStore(t, 2)
	if err := st.Write(1<<14, block(0)); err == nil {
		t.Fatal("out-of-range write must error")
	}
	if _, err := st.Read(1 << 14); err == nil {
		t.Fatal("out-of-range read must error")
	}
	if err := st.Write(0, []byte("short")); err == nil {
		t.Fatal("short block must error")
	}
	if _, err := st.ReadBatch([]uint64{0, 1 << 14}); err == nil {
		t.Fatal("out-of-range batch read must error")
	}
	if err := st.WriteBatch([]uint64{0, 1}, [][]byte{block(0)}); err == nil {
		t.Fatal("mismatched batch lengths must error")
	}
}

// TestShardedStoreConfigValidation table-drives every ShardedStoreConfig
// field's rejection path; the valid-edge companion cases live below.
func TestShardedStoreConfigValidation(t *testing.T) {
	rejected := []struct {
		field string
		cfg   ShardedStoreConfig
	}{
		{"Shards negative", ShardedStoreConfig{Blocks: 1 << 10, Shards: -1}},
		{"Shards beyond MaxShards", ShardedStoreConfig{Blocks: 1 << 10, Shards: MaxShards + 1}},
		{"Shards exceed Blocks", ShardedStoreConfig{Blocks: 2, Shards: 4}}, // a shard would be empty
		{"Blocks overflow", ShardedStoreConfig{Blocks: MaxBlocks * 2}},
		{"Blocks just past cap", ShardedStoreConfig{Blocks: MaxBlocks + 1}},
		{"Key bad length", ShardedStoreConfig{Blocks: 1 << 10, Key: []byte("not-a-valid-aes-key")}},
		{"QueueDepth negative", ShardedStoreConfig{Blocks: 1 << 10, QueueDepth: -1}},
		{"MaxBatch negative", ShardedStoreConfig{Blocks: 1 << 10, MaxBatch: -1}},
		{"PipelineDepth negative", ShardedStoreConfig{Blocks: 1 << 10, PipelineDepth: -1}},
		{"PipelineDepth beyond cap", ShardedStoreConfig{Blocks: 1 << 10, PipelineDepth: MaxPipelineDepth + 1}},
		{"Backend unknown", ShardedStoreConfig{Blocks: 1 << 10, Backend: "etcd"}},
		{"Backend memory with Dir", ShardedStoreConfig{Blocks: 1 << 10, Backend: BackendMemory, Dir: t.TempDir()}},
		{"Backend wal without Dir", ShardedStoreConfig{Blocks: 1 << 10, Backend: BackendWAL}},
	}
	for _, tc := range rejected {
		_, err := NewShardedStore(tc.cfg)
		if err == nil {
			t.Fatalf("%s: config %+v must be rejected", tc.field, tc.cfg)
		}
		if !strings.HasPrefix(err.Error(), "palermo:") {
			t.Fatalf("%s: error %q lacks palermo: prefix", tc.field, err)
		}
	}
	accepted := []struct {
		field string
		cfg   ShardedStoreConfig
	}{
		{"zero value defaults", ShardedStoreConfig{}},
		{"Shards equal Blocks", ShardedStoreConfig{Blocks: 8, Shards: 8}},
		{"QueueDepth explicit", ShardedStoreConfig{Blocks: 1 << 10, QueueDepth: 1}},
		{"MaxBatch explicit", ShardedStoreConfig{Blocks: 1 << 10, MaxBatch: 1}},
		{"PipelineDepth serial", ShardedStoreConfig{Blocks: 1 << 10, PipelineDepth: 1}},
		{"PipelineDepth max", ShardedStoreConfig{Blocks: 1 << 10, PipelineDepth: MaxPipelineDepth}},
		{"CheckpointEvery negative disables", ShardedStoreConfig{Blocks: 1 << 10, Shards: 2, Backend: BackendWAL, Dir: t.TempDir(), CheckpointEvery: -1}},
		{"GroupCommit negative defaults", ShardedStoreConfig{Blocks: 1 << 10, Shards: 2, Backend: BackendWAL, Dir: t.TempDir(), GroupCommit: -1}},
	}
	for _, tc := range accepted {
		st, err := NewShardedStore(tc.cfg)
		if err != nil {
			t.Fatalf("%s: config %+v rejected: %v", tc.field, tc.cfg, err)
		}
		st.Close()
	}
}

func TestShardedStoreDefaults(t *testing.T) {
	st, err := NewShardedStore(ShardedStoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Blocks() != 1<<20 || st.Shards() != 4 {
		t.Fatalf("defaults: %d blocks, %d shards", st.Blocks(), st.Shards())
	}
}

// TestShardedStoreMatchesReference drives a serial mixed workload and
// checks every read against a plain map reference.
func TestShardedStoreMatchesReference(t *testing.T) {
	st := testShardedStore(t, 3)
	r := rng.New(11)
	ref := make(map[uint64]byte)
	for i := 0; i < 1500; i++ {
		id := r.Uint64n(1 << 14)
		if r.Uint64()%2 == 0 {
			fill := byte(r.Uint64())
			if err := st.Write(id, block(fill)); err != nil {
				t.Fatal(err)
			}
			ref[id] = fill
		} else {
			got, err := st.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			want := byte(0)
			if f, ok := ref[id]; ok {
				want = f
			}
			if got[0] != want || got[BlockSize-1] != want {
				t.Fatalf("block %d corrupted at op %d", id, i)
			}
		}
	}
}

// TestShardedStoreConcurrentHammer has N goroutines hammer the store on
// disjoint id sets so each can verify reads exactly; the race detector
// guards the shared machinery.
func TestShardedStoreConcurrentHammer(t *testing.T) {
	st := testShardedStore(t, 4)
	const clients = 8
	const opsPer = 300
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(uint64(100 + c))
			last := make(map[uint64]byte)
			for i := 0; i < opsPer; i++ {
				// ids congruent to c mod clients: disjoint ownership, but
				// spread across every shard (4 shards vs 8 clients).
				id := r.Uint64n(1<<14/clients)*clients + uint64(c)
				if r.Uint64()%3 == 0 {
					fill := byte(r.Uint64())
					if err := st.Write(id, block(fill)); err != nil {
						errs <- err
						return
					}
					last[id] = fill
				} else {
					got, err := st.Read(id)
					if err != nil {
						errs <- err
						return
					}
					want := last[id] // zero value if never written
					if got[0] != want || got[BlockSize-1] != want {
						errs <- fmt.Errorf("client %d: block %d corrupted", c, id)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	rep := st.Traffic()
	if rep.Reads+rep.Writes != clients*opsPer {
		t.Fatalf("traffic ops = %d+%d, want %d", rep.Reads, rep.Writes, clients*opsPer)
	}
	// Per-shard trees hold 2^14/4 blocks, so amplification is lower than
	// the single 2^14 store's — but still clearly ORAM-shaped.
	if rep.DRAMReads == 0 || rep.AmplificationFactor < 5 {
		t.Fatalf("implausible traffic: %+v", rep)
	}
}

// TestShardedStoreBatchDedup checks the tentpole dedup invariant: duplicate
// ids in one batch are served by a single ORAM access whose payload fans
// out identically to every waiter.
func TestShardedStoreBatchDedup(t *testing.T) {
	st := testShardedStore(t, 2)
	if err := st.Write(6, block(0x3C)); err != nil {
		t.Fatal(err)
	}
	before := st.Traffic()
	ids := make([]uint64, 40)
	for i := range ids {
		ids[i] = 6 // all route to one shard, one batch
	}
	got, err := st.ReadBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if !bytes.Equal(g, block(0x3C)) {
			t.Fatalf("waiter %d got wrong payload", i)
		}
	}
	after := st.Traffic()
	if n := after.Reads - before.Reads; n != 1 {
		t.Fatalf("40 duplicate reads performed %d ORAM accesses, want 1", n)
	}
	if st.Stats().DedupHits < 39 {
		t.Fatalf("dedup hits = %d, want >= 39", st.Stats().DedupHits)
	}
	// Waiters own private buffers.
	got[0][0] ^= 0xFF
	if bytes.Equal(got[0], got[1]) {
		t.Fatal("batch waiters share a buffer")
	}
}

func TestShardedStoreBatchMixed(t *testing.T) {
	st := testShardedStore(t, 4)
	ids := []uint64{1, 2, 3, 100, 101, 2, 1}
	blocks := make([][]byte, len(ids))
	for i, id := range ids {
		blocks[i] = block(byte(id))
	}
	if err := st.WriteBatch(ids, blocks); err != nil {
		t.Fatal(err)
	}
	got, err := st.ReadBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if !bytes.Equal(got[i], block(byte(id))) {
			t.Fatalf("position %d (id %d) wrong payload", i, id)
		}
	}
}

// TestShardedStorePathDeterminism extends the §5 determinism contract to
// the service layer: whatever per-shard op subsequence a concurrent run
// produced, replaying it serially into a fresh identically-seeded shard
// reproduces the exact leaf sequence the run exposed.
func TestShardedStorePathDeterminism(t *testing.T) {
	const shards = 3
	const seed = 9
	cfg := ShardedStoreConfig{Blocks: 1 << 12, Shards: shards, Seed: seed}
	st, err := NewShardedStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range st.shards {
		sh.EnableTrace() // before any request: the workers are idle
	}
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(uint64(c + 1))
			for i := 0; i < 150; i++ {
				id := r.Uint64n(1 << 12)
				if r.Uint64()%4 == 0 {
					st.Write(id, block(byte(i)))
				} else {
					st.Read(id)
				}
			}
		}(c)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	for i, sh := range st.shards {
		trace := sh.Trace()
		if len(trace.Ops) == 0 {
			t.Fatalf("shard %d served nothing", i)
		}
		replay, err := shard.New(i, shards, st.router.ShardBlocks(i), []byte("palermo-demo-key"), shard.DeriveSeed(seed, i), nil)
		if err != nil {
			t.Fatal(err)
		}
		replay.EnableTrace()
		for _, op := range trace.Ops {
			if op.Write {
				if err := replay.Write(op.Local, block(0)); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := replay.Read(op.Local); err != nil {
					t.Fatal(err)
				}
			}
		}
		got := replay.Trace().Leaves
		for j := range trace.Leaves {
			if got[j] != trace.Leaves[j] {
				t.Fatalf("shard %d: leaf sequence diverged at op %d (%d != %d)",
					i, j, got[j], trace.Leaves[j])
			}
		}
	}
}

func TestShardedStoreClosed(t *testing.T) {
	st := testShardedStore(t, 2)
	if err := st.Write(1, block(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal("close must be idempotent")
	}
	if _, err := st.Read(1); err == nil {
		t.Fatal("read after close must error")
	}
	if err := st.Write(1, block(1)); err == nil {
		t.Fatal("write after close must error")
	}
	// Traffic still reports the pre-close counters.
	if rep := st.Traffic(); rep.Writes != 1 {
		t.Fatalf("post-close traffic: %+v", rep)
	}
}

// ExampleShardedStore demonstrates the concurrent service API.
func ExampleShardedStore() {
	st, err := NewShardedStore(ShardedStoreConfig{Blocks: 1 << 12, Shards: 2})
	if err != nil {
		panic(err)
	}
	defer st.Close()
	secret := make([]byte, BlockSize)
	copy(secret, "attack at dawn")
	if err := st.Write(7, secret); err != nil {
		panic(err)
	}
	// The duplicate id shares one ORAM access; both copies match.
	got, err := st.ReadBatch([]uint64{7, 7})
	if err != nil {
		panic(err)
	}
	fmt.Println(string(got[0][:14]), bytes.Equal(got[0], got[1]))
	// Output: attack at dawn true
}
